/**
 * @file
 * DRAM energy report: run one workload under several page policies
 * and schedulers and print the estimated DRAM energy breakdown. The
 * paper defers energy to future work while arguing the simplest
 * policies would also be the cheapest; this example quantifies the
 * DRAM-side of that claim for any workload.
 *
 * Usage: energy_report [workload-acronym]
 *   e.g. energy_report MS
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "dram/energy.hh"
#include "sim/options.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

struct Variant
{
    std::string label;
    SimConfig cfg;
};

/** Sum the energy estimate over every channel of a finished system. */
DramEnergyBreakdown
systemEnergy(System &sys, const DramPowerParams &power)
{
    DramEnergyBreakdown total;
    for (std::uint32_t ch = 0; ch < sys.numControllers(); ++ch) {
        const Channel &channel = sys.controller(ch).channel();
        const DramEnergyModel model(power, channel.timings(),
                                    channel.geometry().ranksPerChannel,
                                    channel.geometry().banksPerRank,
                                    channel.clocks());
        const DramEnergyBreakdown e =
            model.estimate(channel.stats(), sys.now());
        total.actPreNj += e.actPreNj;
        total.readNj += e.readNj;
        total.writeNj += e.writeNj;
        total.refreshNj += e.refreshNj;
        total.backgroundNj += e.backgroundNj;
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string wanted = argc > 1 ? argv[1] : "MS";
    if (wanted == "--help" || wanted == "--list") {
        std::printf("usage: energy_report [workload]\n\n%s",
                    ExperimentOptions::listText().c_str());
        return 0;
    }
    WorkloadId id = WorkloadId::MS;
    bool found = false;
    for (auto w : kAllWorkloads) {
        if (wanted == workloadAcronym(w)) {
            id = w;
            found = true;
            break;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown workload '%s'\n", wanted.c_str());
        return 1;
    }

    SimConfig base = SimConfig::baseline();
    base.warmupCoreCycles = 500'000;
    base.measureCoreCycles = 2'000'000;

    std::vector<Variant> variants;
    variants.push_back({"OpenAdaptive", base});
    for (auto pp : {PagePolicyKind::CloseAdaptive, PagePolicyKind::Open,
                    PagePolicyKind::Close, PagePolicyKind::Timer,
                    PagePolicyKind::History}) {
        Variant v{pagePolicyKindName(pp), base};
        v.cfg.pagePolicy = pp;
        variants.push_back(std::move(v));
    }

    TextTable table;
    table.setHeader({"policy", "ipc", "act+pre uJ", "rd uJ", "wr uJ",
                     "refresh uJ", "background uJ", "total uJ",
                     "avg mW", "nJ/read"});
    std::printf("DRAM energy report: %s "
                "(Micron TN-41-01 core-energy model)\n\n",
                workloadAcronym(id));

    for (auto &v : variants) {
        System sys(v.cfg, workloadPreset(id));
        const MetricSet m = sys.run();
        const DramEnergyBreakdown e = systemEnergy(sys, v.cfg.power);
        const double measuredNs =
            static_cast<double>(
                v.cfg.clocks.coreToTicks(v.cfg.measureCoreCycles)
                    .count()) *
            v.cfg.clocks.nsPerTick();
        table.addRow(
            {v.label, TextTable::num(m.userIpc, 3),
             TextTable::num(e.actPreNj / 1000.0, 1),
             TextTable::num(e.readNj / 1000.0, 1),
             TextTable::num(e.writeNj / 1000.0, 1),
             TextTable::num(e.refreshNj / 1000.0, 1),
             TextTable::num(e.backgroundNj / 1000.0, 1),
             TextTable::num(e.totalNj() / 1000.0, 1),
             TextTable::num(e.avgPowerMw(measuredNs), 0),
             TextTable::num(
                 m.memReads ? e.totalNj() / static_cast<double>(m.memReads)
                            : 0.0,
                 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("note: DRAM core energy only (no I/O or termination); "
                "compare columns, not absolute watts.\n");
    return 0;
}
