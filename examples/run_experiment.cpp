/**
 * @file
 * Generic experiment runner: simulate any (workload, scheduler, page
 * policy, mapping, device, channel count) point from the command
 * line — or a whole declarative sweep from a spec file — and print
 * the metric set(s). The repo's swiss-army knife for one-off
 * questions ("what does TCM + History do to TPC-H Q6 on 2 channels of
 * DDR4-2400?") without writing code.
 *
 * Usage: run_experiment [workload] [--scheduler S] [--policy P]
 *                       [--mapping M] [--device D] [--channels N] [...]
 *        run_experiment --config sweep.spec [--csv]
 *
 * With --config the spec's cross product (devices x schedulers x
 * policies x mappings x channels x workloads) runs as one parallel
 * batch through ExperimentRunner::runAll and prints one row per
 * point. Run with --help for the full flag list and --list for every
 * legal name.
 */

#include <cstdio>

#include "sim/options.hh"
#include "sim/spec.hh"
#include "sim/system.hh"

using namespace mcsim;

namespace {

/** Mapping column label; "+gp" marks the group-packed placement. */
std::string
mappingLabel(const SimConfig &cfg)
{
    std::string label = mappingSchemeName(cfg.mapping);
    if (cfg.bankGroupMapping == BankGroupMapping::GroupPacked &&
        cfg.dram.bankGroupsPerRank > 1) {
        label += "+gp";
    }
    return label;
}

int
runSweep(const ExperimentOptions &opts)
{
    // Re-seat the sweep's base on the fully-parsed config so scalar
    // flags given after --config (--warmup/--measure/--seed/--fast)
    // apply to every point; the axis lists stay the spec's (already
    // collapsed by any axis flags parsed after --config).
    ExperimentSpec spec = opts.spec;
    spec.base = opts.config;
    spec.fairness = spec.fairness || opts.fairness;
    const auto points = spec.points();
    std::printf("run_experiment: sweeping %zu point(s) from spec%s\n",
                points.size(),
                spec.fairness ? " (with alone-run baselines)" : "");
    ExperimentRunner runner;
    const auto results = runner.runAll(points);

    if (opts.csv) {
        std::printf("workload,device,scheduler,policy,mapping,channels,"
                    "ipc,read_latency,row_hit_pct,bw_util_pct,"
                    "energy_uj%s\n",
                    spec.fairness ? ",weighted_speedup,harmonic_speedup,"
                                    "max_slowdown"
                                  : "");
    } else {
        std::printf("%-8s %-12s %-10s %-13s %-11s %3s %7s %9s %7s %7s "
                    "%9s",
                    "wl", "device", "scheduler", "policy", "mapping",
                    "ch", "ipc", "lat(cyc)", "hit%", "bw%", "uJ");
        if (spec.fairness)
            std::printf(" %7s %7s %7s", "wspd", "hspd", "maxsd");
        std::printf("\n");
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SimConfig &cfg = points[i].cfg;
        const MetricSet &m = results[i];
        std::printf(opts.csv ? "%s,%s,%s,%s,%s,%u,%.4f,%.1f,%.2f,%.2f,"
                               "%.1f"
                             : "%-8s %-12s %-10s %-13s %-11s %3u %7.3f "
                               "%9.1f %7.2f %7.2f %9.1f",
                    workloadAcronym(points[i].workload),
                    cfg.deviceName.c_str(),
                    schedulerKindName(cfg.scheduler),
                    pagePolicyKindName(cfg.pagePolicy),
                    mappingLabel(cfg).c_str(), cfg.dram.channels,
                    m.userIpc, m.avgReadLatency, m.rowHitRatePct,
                    m.bwUtilPct, m.dramEnergyNj / 1000.0);
        if (spec.fairness) {
            std::printf(opts.csv ? ",%.4f,%.4f,%.4f"
                                 : " %7.3f %7.3f %7.3f",
                        m.weightedSpeedup, m.harmonicSpeedup,
                        m.maxSlowdown);
        }
        std::printf("\n");
    }
    std::printf("(%llu simulated, %llu cache hits)\n",
                static_cast<unsigned long long>(runner.simulationsRun()),
                static_cast<unsigned long long>(runner.cacheHits()));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentOptions opts;
    const std::string err = opts.parse(argc - 1, argv + 1);
    if (!err.empty()) {
        std::fprintf(stderr, "error: %s\n\n%s", err.c_str(),
                     ExperimentOptions::usage("run_experiment").c_str());
        return 1;
    }
    if (opts.helpRequested) {
        std::fputs(ExperimentOptions::usage("run_experiment").c_str(),
                   stdout);
        return 0;
    }
    if (opts.listRequested) {
        std::fputs(ExperimentOptions::listText().c_str(), stdout);
        return 0;
    }
    if (opts.hasSpec)
        return runSweep(opts);

    const WorkloadParams workload = workloadPreset(opts.workload);
    const SimConfig &cfg = opts.config;
    std::printf("run_experiment: %s | %s | %s | %s | %s | %u channel(s)\n",
                workload.acronym.c_str(), cfg.deviceName.c_str(),
                schedulerKindName(cfg.scheduler),
                pagePolicyKindName(cfg.pagePolicy),
                mappingLabel(cfg).c_str(), cfg.dram.channels);

    System sys(cfg, workload);
    MetricSet m = sys.run();
    if (opts.fairness) {
        // Derive the slowdown/fairness block against the single-core
        // alone run directly, so --fairness changes nothing about the
        // base run's semantics (same windows, no CLOUDMC_FAST
        // division, no results-cache traffic).
        WorkloadParams alone = workload;
        alone.cores = 1;
        System aloneSys(cfg, alone);
        const MetricSet aloneM = aloneSys.run();
        deriveFairnessMetrics(m, {{0, workload.cores, &aloneM}});
    }

    if (opts.csv) {
        std::printf("metric,value\n");
        std::printf("user_ipc,%.5f\n", m.userIpc);
        std::printf("avg_read_latency_cycles,%.2f\n", m.avgReadLatency);
        std::printf("read_latency_p50,%.1f\n", m.readLatencyP50);
        std::printf("read_latency_p95,%.1f\n", m.readLatencyP95);
        std::printf("read_latency_p99,%.1f\n", m.readLatencyP99);
        std::printf("row_hit_rate_pct,%.2f\n", m.rowHitRatePct);
        std::printf("l2_mpki,%.3f\n", m.l2Mpki);
        std::printf("avg_read_queue,%.3f\n", m.avgReadQueue);
        std::printf("avg_write_queue,%.3f\n", m.avgWriteQueue);
        std::printf("bw_util_pct,%.2f\n", m.bwUtilPct);
        std::printf("single_access_pct,%.2f\n", m.singleAccessPct);
        std::printf("ipc_disparity,%.4f\n", m.ipcDisparity);
        std::printf("dram_energy_uj,%.2f\n", m.dramEnergyNj / 1000.0);
        std::printf("dram_power_mw,%.1f\n", m.dramAvgPowerMw);
        if (m.hasFairness()) {
            std::printf("weighted_speedup,%.4f\n", m.weightedSpeedup);
            std::printf("harmonic_speedup,%.4f\n", m.harmonicSpeedup);
            std::printf("max_slowdown,%.4f\n", m.maxSlowdown);
        }
        return 0;
    }

    std::printf("\n  user IPC                  : %.3f\n", m.userIpc);
    std::printf("  avg read latency          : %.1f core cycles\n",
                m.avgReadLatency);
    std::printf("  read latency p50/p95/p99  : %.0f / %.0f / %.0f\n",
                m.readLatencyP50, m.readLatencyP95, m.readLatencyP99);
    std::printf("  row-buffer hit rate       : %.1f %%\n",
                m.rowHitRatePct);
    std::printf("  L2 MPKI                   : %.2f\n", m.l2Mpki);
    std::printf("  read / write queue (avg)  : %.2f / %.2f\n",
                m.avgReadQueue, m.avgWriteQueue);
    std::printf("  memory bandwidth util     : %.1f %%\n", m.bwUtilPct);
    std::printf("  single-access activations : %.1f %%\n",
                m.singleAccessPct);
    std::printf("  per-core IPC min/max      : %.3f\n", m.ipcDisparity);
    std::printf("  DRAM energy / avg power   : %.1f uJ / %.1f mW\n",
                m.dramEnergyNj / 1000.0, m.dramAvgPowerMw);
    if (m.hasFairness()) {
        std::printf("  weighted / harmonic spdup : %.3f / %.3f\n",
                    m.weightedSpeedup, m.harmonicSpeedup);
        std::printf("  max slowdown (vs alone)   : %.3f\n",
                    m.maxSlowdown);
    }
    return 0;
}
