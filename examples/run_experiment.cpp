/**
 * @file
 * Generic experiment runner: simulate any (workload, scheduler, page
 * policy, mapping, channel count) point from the command line and
 * print the full metric set — the repo's swiss-army knife for
 * one-off questions ("what does TCM + History do to TPC-H Q6 on 2
 * channels?") without writing code.
 *
 * Usage: run_experiment [workload] [--scheduler S] [--policy P]
 *                       [--mapping M] [--channels N] [...]
 *   e.g. run_experiment TPCH-Q6 --scheduler TCM --policy History \
 *            --channels 2 --mapping PermBaXor
 * Run with --help for the full flag list.
 */

#include <cstdio>

#include "sim/options.hh"
#include "sim/system.hh"

using namespace mcsim;

int
main(int argc, char **argv)
{
    ExperimentOptions opts;
    const std::string err = opts.parse(argc - 1, argv + 1);
    if (!err.empty()) {
        std::fprintf(stderr, "error: %s\n\n%s", err.c_str(),
                     ExperimentOptions::usage("run_experiment").c_str());
        return 1;
    }
    if (opts.helpRequested) {
        std::fputs(ExperimentOptions::usage("run_experiment").c_str(),
                   stdout);
        return 0;
    }

    const WorkloadParams workload = workloadPreset(opts.workload);
    const SimConfig &cfg = opts.config;
    std::printf("run_experiment: %s | %s | %s | %s | %u channel(s)\n",
                workload.acronym.c_str(),
                schedulerKindName(cfg.scheduler),
                pagePolicyKindName(cfg.pagePolicy),
                mappingSchemeName(cfg.mapping), cfg.dram.channels);

    System sys(cfg, workload);
    const MetricSet m = sys.run();

    if (opts.csv) {
        std::printf("metric,value\n");
        std::printf("user_ipc,%.5f\n", m.userIpc);
        std::printf("avg_read_latency_cycles,%.2f\n", m.avgReadLatency);
        std::printf("read_latency_p50,%.1f\n", m.readLatencyP50);
        std::printf("read_latency_p95,%.1f\n", m.readLatencyP95);
        std::printf("read_latency_p99,%.1f\n", m.readLatencyP99);
        std::printf("row_hit_rate_pct,%.2f\n", m.rowHitRatePct);
        std::printf("l2_mpki,%.3f\n", m.l2Mpki);
        std::printf("avg_read_queue,%.3f\n", m.avgReadQueue);
        std::printf("avg_write_queue,%.3f\n", m.avgWriteQueue);
        std::printf("bw_util_pct,%.2f\n", m.bwUtilPct);
        std::printf("single_access_pct,%.2f\n", m.singleAccessPct);
        std::printf("ipc_disparity,%.4f\n", m.ipcDisparity);
        std::printf("dram_energy_uj,%.2f\n", m.dramEnergyNj / 1000.0);
        std::printf("dram_power_mw,%.1f\n", m.dramAvgPowerMw);
        return 0;
    }

    std::printf("\n  user IPC                  : %.3f\n", m.userIpc);
    std::printf("  avg read latency          : %.1f core cycles\n",
                m.avgReadLatency);
    std::printf("  read latency p50/p95/p99  : %.0f / %.0f / %.0f\n",
                m.readLatencyP50, m.readLatencyP95, m.readLatencyP99);
    std::printf("  row-buffer hit rate       : %.1f %%\n",
                m.rowHitRatePct);
    std::printf("  L2 MPKI                   : %.2f\n", m.l2Mpki);
    std::printf("  read / write queue (avg)  : %.2f / %.2f\n",
                m.avgReadQueue, m.avgWriteQueue);
    std::printf("  memory bandwidth util     : %.1f %%\n", m.bwUtilPct);
    std::printf("  single-access activations : %.1f %%\n",
                m.singleAccessPct);
    std::printf("  per-core IPC min/max      : %.3f\n", m.ipcDisparity);
    std::printf("  DRAM energy / avg power   : %.1f uJ / %.1f mW\n",
                m.dramEnergyNj / 1000.0, m.dramAvgPowerMw);
    return 0;
}
