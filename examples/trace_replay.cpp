/**
 * @file
 * Trace capture and replay: run a synthetic workload while recording
 * its instruction/address stream to a binary trace, then replay the
 * trace through a fresh system and confirm the replayed run reproduces
 * the captured run's metrics. This is the workflow for studying a
 * fixed request stream under many controller configurations (every
 * configuration sees byte-identical traffic), and doubles as an
 * end-to-end determinism check.
 *
 * Usage: trace_replay [workload-acronym] [trace-path]
 *   e.g. trace_replay MS /tmp/ms.trace
 */

#include <cstdio>
#include <string>

#include "sim/options.hh"
#include "sim/system.hh"
#include "workload/presets.hh"
#include "workload/trace.hh"

using namespace mcsim;

namespace {

void
printRow(const char *label, const MetricSet &m)
{
    std::printf("  %-8s ipc %.4f  lat %.1f  rowhit %.1f%%  mpki %.2f  "
                "reads %llu\n",
                label, m.userIpc, m.avgReadLatency, m.rowHitRatePct,
                m.l2Mpki, static_cast<unsigned long long>(m.memReads));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string wanted = argc > 1 ? argv[1] : "MS";
    if (wanted == "--help" || wanted == "--list") {
        std::printf("usage: trace_replay [workload] [trace-path]\n\n%s",
                    ExperimentOptions::listText().c_str());
        return 0;
    }
    const std::string path =
        argc > 2 ? argv[2] : "/tmp/cloudmc_example.trace";

    WorkloadId id = WorkloadId::MS;
    bool found = false;
    for (auto w : kAllWorkloads) {
        if (wanted == workloadAcronym(w)) {
            id = w;
            found = true;
            break;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown workload '%s'\n", wanted.c_str());
        return 1;
    }

    SimConfig cfg = SimConfig::baseline();
    cfg.warmupCoreCycles = 200'000;
    cfg.measureCoreCycles = 800'000;
    const WorkloadParams params = workloadPreset(id);

    // Pass 1: capture. The recording wrapper taps the generator the
    // cores actually drive, so the trace holds exactly the stream the
    // captured run consumed.
    std::printf("capturing %s to %s ...\n", workloadAcronym(id),
                path.c_str());
    MetricSet captured;
    std::uint64_t recorded = 0;
    {
        SyntheticWorkload inner(params, 16ull << 30);
        TraceWriter writer(path, params.cores);
        RecordingWorkload recorder(inner, writer);
        System sys(cfg, recorder, params.cores);
        captured = sys.run();
        recorded = writer.recordsWritten();
    }
    printRow("capture", captured);
    std::printf("  %llu trace records written\n",
                static_cast<unsigned long long>(recorded));

    // Pass 2: replay the trace through a fresh system. The replayed
    // stream is identical, so the metrics must match exactly.
    std::printf("replaying ...\n");
    TraceWorkload replay(path);
    System sys(cfg, replay, replay.numCores());
    const MetricSet replayed = sys.run();
    printRow("replay", replayed);

    const bool match =
        captured.committedInstructions == replayed.committedInstructions &&
        captured.memReads == replayed.memReads &&
        captured.userIpc == replayed.userIpc;
    std::printf(match ? "replay matches capture: deterministic\n"
                      : "MISMATCH between capture and replay\n");

    // Bonus: the captured stream under a different controller. This is
    // the methodological point of traces — configuration studies on a
    // frozen request stream.
    SimConfig close = cfg;
    close.pagePolicy = PagePolicyKind::CloseAdaptive;
    TraceWorkload replay2(path);
    System sys2(close, replay2, replay2.numCores());
    printRow("close-pg", sys2.run());
    std::remove(path.c_str());
    return match ? 0 : 2;
}
