/**
 * @file
 * Quickstart: simulate one CloudSuite workload on the paper's Table 2
 * baseline system and print every metric the study tracks.
 *
 * Usage: quickstart [workload-acronym]
 *   e.g. quickstart DS        (default)
 *        quickstart TPCH-Q6
 */

#include <cstdio>
#include <string>

#include "sim/options.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

int
main(int argc, char **argv)
{
    const std::string wanted = argc > 1 ? argv[1] : "DS";
    if (wanted == "--help" || wanted == "--list") {
        std::printf("usage: quickstart [workload-acronym]\n\n%s",
                    ExperimentOptions::listText().c_str());
        return 0;
    }
    WorkloadId id = WorkloadId::DS;
    bool found = false;
    for (auto w : kAllWorkloads) {
        if (wanted == workloadAcronym(w)) {
            id = w;
            found = true;
            break;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown workload '%s'; choose from:",
                     wanted.c_str());
        for (auto w : kAllWorkloads)
            std::fprintf(stderr, " %s", workloadAcronym(w));
        std::fprintf(stderr, "\n");
        return 1;
    }

    const WorkloadParams workload = workloadPreset(id);
    SimConfig cfg = SimConfig::baseline();

    std::printf("cloudmc quickstart\n");
    std::printf("  workload   : %s (%s, %s)\n", workload.name.c_str(),
                workload.acronym.c_str(),
                workloadCategoryName(workload.category));
    std::printf("  system     : %u in-order cores @2GHz, 4MB L2, "
                "%u-channel DDR3-1600\n",
                workload.cores, cfg.dram.channels);
    std::printf("  controller : %s scheduling, %s page policy, %s\n",
                schedulerKindName(cfg.scheduler),
                pagePolicyKindName(cfg.pagePolicy),
                mappingSchemeName(cfg.mapping));
    std::printf("  window     : %llu warmup + %llu measured core cycles\n",
                static_cast<unsigned long long>(cfg.warmupCoreCycles),
                static_cast<unsigned long long>(cfg.measureCoreCycles));

    System system(cfg, workload);
    const MetricSet m = system.run();

    std::printf("\nresults\n");
    std::printf("  user IPC (aggregate)      : %.3f\n", m.userIpc);
    std::printf("  avg read latency          : %.1f core cycles\n",
                m.avgReadLatency);
    std::printf("  row-buffer hit rate       : %.1f %%\n",
                m.rowHitRatePct);
    std::printf("  L2 MPKI                   : %.2f\n", m.l2Mpki);
    std::printf("  avg read queue length     : %.2f\n", m.avgReadQueue);
    std::printf("  avg write queue length    : %.2f\n", m.avgWriteQueue);
    std::printf("  memory bandwidth util     : %.1f %%\n", m.bwUtilPct);
    std::printf("  single-access activations : %.1f %%\n",
                m.singleAccessPct);
    std::printf("  DRAM reads / writes       : %llu / %llu\n",
                static_cast<unsigned long long>(m.memReads),
                static_cast<unsigned long long>(m.memWrites));
    std::printf("  per-core IPC              :");
    for (double ipc : m.perCoreIpc)
        std::printf(" %.2f", ipc);
    std::printf("\n");
    return 0;
}
