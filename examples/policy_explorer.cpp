/**
 * @file
 * Policy explorer: sweep every scheduler x page-policy combination for
 * one workload and print the user-IPC grid, normalized to the paper's
 * FR-FCFS + open-adaptive baseline. The tool a controller architect
 * would reach for when asking "which pairing suits my workload?".
 *
 * Usage: policy_explorer [workload-acronym] [--fast N]
 *   e.g. policy_explorer WS
 *        policy_explorer TPCH-Q6 --fast 4
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/options.hh"
#include "sim/experiment.hh"

using namespace mcsim;

namespace {

constexpr std::array<SchedulerKind, 9> kSchedulers = {
    SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks, SchedulerKind::Fcfs,
    SchedulerKind::ParBs,  SchedulerKind::Atlas,     SchedulerKind::Rl,
    SchedulerKind::Fqm,    SchedulerKind::Tcm,       SchedulerKind::Stfm};

constexpr std::array<PagePolicyKind, 8> kPolicies = {
    PagePolicyKind::OpenAdaptive, PagePolicyKind::CloseAdaptive,
    PagePolicyKind::Rbpp,         PagePolicyKind::Abpp,
    PagePolicyKind::Open,         PagePolicyKind::Close,
    PagePolicyKind::Timer,        PagePolicyKind::History};

} // namespace

int
main(int argc, char **argv)
{
    std::string wanted = "DS";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "--list") == 0) {
            std::printf("usage: policy_explorer [workload] [--fast N]"
                        "\n\n%s",
                        ExperimentOptions::listText().c_str());
            return 0;
        } else if (std::strcmp(argv[i], "--fast") == 0 && i + 1 < argc) {
            setenv("CLOUDMC_FAST", argv[++i], 1);
        } else {
            wanted = argv[i];
        }
    }

    WorkloadId id = WorkloadId::DS;
    bool found = false;
    for (auto w : kAllWorkloads) {
        if (wanted == workloadAcronym(w)) {
            id = w;
            found = true;
            break;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown workload '%s'; choose from:",
                     wanted.c_str());
        for (auto w : kAllWorkloads)
            std::fprintf(stderr, " %s", workloadAcronym(w));
        std::fprintf(stderr, "\n");
        return 1;
    }

    ExperimentRunner runner;
    SimConfig base = SimConfig::baseline();
    const double baseIpc = runner.run(id, base).userIpc;

    // Simulate the whole scheduler x policy grid as one parallel
    // batch; the table loop below resolves from the memo cache.
    if (runner.cachingEnabled()) {
        std::vector<ExperimentRunner::Point> points;
        for (auto sched : kSchedulers) {
            for (auto pp : kPolicies) {
                SimConfig cfg = base;
                cfg.scheduler = sched;
                cfg.pagePolicy = pp;
                points.push_back({id, cfg});
            }
        }
        (void)runner.runAll(points);
    }

    TextTable table;
    std::vector<std::string> header{"scheduler \\ policy"};
    for (auto pp : kPolicies)
        header.emplace_back(pagePolicyKindName(pp));
    table.setHeader(std::move(header));

    double bestIpc = 0.0;
    std::string bestLabel;
    for (auto sched : kSchedulers) {
        std::vector<std::string> row{schedulerKindName(sched)};
        for (auto pp : kPolicies) {
            SimConfig cfg = base;
            cfg.scheduler = sched;
            cfg.pagePolicy = pp;
            const double ipc = runner.run(id, cfg).userIpc;
            if (ipc > bestIpc) {
                bestIpc = ipc;
                bestLabel = std::string(schedulerKindName(sched)) + " + " +
                            pagePolicyKindName(pp);
            }
            row.push_back(TextTable::num(ipc / baseIpc, 3));
        }
        table.addRow(std::move(row));
    }

    std::printf("policy explorer: %s\n", workloadAcronym(id));
    std::printf("user IPC normalized to FR-FCFS + OpenAdaptive "
                "(baseline IPC %.3f)\n\n%s\n",
                baseIpc, table.render().c_str());
    std::printf("best pairing: %s (%.1f%% vs baseline)\n",
                bestLabel.c_str(), 100.0 * (bestIpc / baseIpc - 1.0));
    std::printf("[%llu simulations run, %llu from cache]\n",
                static_cast<unsigned long long>(runner.simulationsRun()),
                static_cast<unsigned long long>(runner.cacheHits()));
    return 0;
}
