/**
 * @file
 * Baseline workload characterization: runs all twelve paper workloads
 * on the Table 2 baseline and prints the characteristics the study is
 * calibrated against (row-buffer hit rate, L2 MPKI, single-access
 * activation fraction, bandwidth utilization), next to the targets
 * read off the paper's figures (DESIGN.md section 6).
 *
 * Usage: characterize [--fast N]   (N divides the simulation windows)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/options.hh"
#include "sim/experiment.hh"

using namespace mcsim;

namespace {

struct Target
{
    double rowHit, mpki, single, bw;
};

Target
targetFor(WorkloadId id)
{
    switch (id) {
      case WorkloadId::DS: return {30, 6, 88, 35};
      case WorkloadId::MR: return {30, 4, 88, 25};
      case WorkloadId::SS: return {25, 6, 90, 50};
      case WorkloadId::WF: return {55, 3, 77, 14};
      case WorkloadId::WS: return {35, 3, 85, 20};
      case WorkloadId::MS: return {50, 5, 76, 40};
      case WorkloadId::WSPEC99: return {35, 6, 80, 30};
      case WorkloadId::TPCC1: return {30, 9, 85, 35};
      case WorkloadId::TPCC2: return {33, 9, 82, 37};
      case WorkloadId::TPCHQ2: return {28, 16, 85, 50};
      case WorkloadId::TPCHQ6: return {27, 20, 86, 58};
      case WorkloadId::TPCHQ17: return {28, 18, 85, 54};
    }
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && (std::string(argv[1]) == "--help" ||
                     std::string(argv[1]) == "--list")) {
        std::printf("usage: characterize [--fast N]\n\n%s",
                    ExperimentOptions::listText().c_str());
        return 0;
    }
    if (argc > 2 && std::string(argv[1]) == "--fast")
        setenv("CLOUDMC_FAST", argv[2], 1);

    ExperimentRunner runner;
    const SimConfig cfg = SimConfig::baseline();

    // Uncached workloads simulate concurrently as one batch.
    std::vector<ExperimentRunner::Point> points;
    for (auto id : kAllWorkloads)
        points.push_back({id, cfg});
    const auto metrics = runner.runAll(points);

    TextTable table;
    table.setHeader({"workload", "IPC", "rowhit%", "(tgt)", "MPKI",
                     "(tgt)", "1acc%", "(tgt)", "bw%", "(tgt)", "lat",
                     "rdQ", "wrQ"});
    std::size_t idx = 0;
    for (auto id : kAllWorkloads) {
        const MetricSet m = metrics[idx++];
        const Target t = targetFor(id);
        table.addRow({workloadAcronym(id), TextTable::num(m.userIpc, 2),
                      TextTable::num(m.rowHitRatePct, 1),
                      TextTable::num(t.rowHit, 0),
                      TextTable::num(m.l2Mpki, 1), TextTable::num(t.mpki, 0),
                      TextTable::num(m.singleAccessPct, 1),
                      TextTable::num(t.single, 0),
                      TextTable::num(m.bwUtilPct, 1),
                      TextTable::num(t.bw, 0),
                      TextTable::num(m.avgReadLatency, 0),
                      TextTable::num(m.avgReadQueue, 1),
                      TextTable::num(m.avgWriteQueue, 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("simulated %llu points, %llu from cache\n",
                static_cast<unsigned long long>(runner.simulationsRun()),
                static_cast<unsigned long long>(runner.cacheHits()));
    return 0;
}
