/**
 * @file
 * DRAM device model tests: bank FSM, rank constraints, channel-level
 * command legality, refresh, and bus turnaround.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"
#include "dram/dram_params.hh"

using namespace mcsim;

namespace {

DramGeometry
smallGeom()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 2;
    g.banksPerRank = 8;
    g.rowsPerBank = 1u << 12;
    return g;
}

DramCommand
rd(std::uint32_t rank, std::uint32_t bank, std::uint64_t row,
   std::uint32_t col)
{
    DramCoord c;
    c.rank = rank;
    c.bank = bank;
    c.row = row;
    c.column = col;
    return DramCommand::read(c);
}

DramCommand
act(std::uint32_t rank, std::uint32_t bank, std::uint64_t row)
{
    DramCoord c;
    c.rank = rank;
    c.bank = bank;
    c.row = row;
    return DramCommand::activate(c);
}

} // namespace

class ChannelTest : public ::testing::Test
{
  protected:
    ChannelTest() : chan(smallGeom(), DramTimings::ddr3_1600(), false) {}

    /** @p n DRAM cycles as a tick span. */
    TickSpan
    cyc(std::uint32_t n) const
    {
        return kBaselineClocks.dramToTicks(n);
    }

    /** The instant @p n DRAM cycles after the time origin. */
    Tick
    at(std::uint32_t n) const
    {
        return Tick{} + cyc(n);
    }

    Channel chan;
    DramTimings tm = DramTimings::ddr3_1600();
};

TEST_F(ChannelTest, ActivateOnlyOnClosedBank)
{
    EXPECT_TRUE(chan.canIssue(act(0, 0, 5), Tick{}));
    chan.issue(act(0, 0, 5), Tick{});
    EXPECT_FALSE(chan.canIssue(act(0, 0, 6), at(tm.tRC)));
}

TEST_F(ChannelTest, ReadRequiresTrcd)
{
    chan.issue(act(0, 0, 5), Tick{});
    EXPECT_FALSE(chan.canIssue(rd(0, 0, 5, 0), at(tm.tRCD) - TickSpan{1}));
    EXPECT_TRUE(chan.canIssue(rd(0, 0, 5, 0), at(tm.tRCD)));
}

TEST_F(ChannelTest, ReadNeedsMatchingRow)
{
    chan.issue(act(0, 0, 5), Tick{});
    EXPECT_FALSE(chan.canIssue(rd(0, 0, 6, 0), at(tm.tRCD)));
}

TEST_F(ChannelTest, PrechargeRequiresTras)
{
    chan.issue(act(0, 0, 5), Tick{});
    const auto pre = DramCommand::precharge(0, 0);
    EXPECT_FALSE(chan.canIssue(pre, at(tm.tRAS) - TickSpan{1}));
    EXPECT_TRUE(chan.canIssue(pre, at(tm.tRAS)));
}

TEST_F(ChannelTest, ActAfterPrechargeRespectsTrp)
{
    chan.issue(act(0, 0, 5), Tick{});
    chan.issue(DramCommand::precharge(0, 0), at(tm.tRAS));
    EXPECT_FALSE(chan.canIssue(act(0, 0, 6),
                               at(tm.tRAS) + cyc(tm.tRP) - TickSpan{1}));
    EXPECT_TRUE(chan.canIssue(act(0, 0, 6), at(tm.tRAS) + cyc(tm.tRP)));
}

TEST_F(ChannelTest, TrrdBetweenActsOnSameRank)
{
    chan.issue(act(0, 0, 5), Tick{});
    EXPECT_FALSE(chan.canIssue(act(0, 1, 3), at(tm.tRRD) - TickSpan{1}));
    EXPECT_TRUE(chan.canIssue(act(0, 1, 3), at(tm.tRRD)));
}

TEST_F(ChannelTest, DifferentRankNotBoundByTrrd)
{
    chan.issue(act(0, 0, 5), Tick{});
    // Only the command bus (1 cycle) gates the other rank.
    EXPECT_TRUE(chan.canIssue(act(1, 0, 5), at(1)));
}

TEST_F(ChannelTest, TfawLimitsActivateBursts)
{
    // Issue 4 activates spaced by tRRD; the 5th must wait for tFAW.
    Tick t{};
    for (std::uint32_t b = 0; b < 4; ++b) {
        chan.issue(act(0, b, 1), t);
        t += cyc(tm.tRRD);
    }
    // 4 ACTs at 0, tRRD, 2tRRD, 3tRRD; the 5th is legal only at
    // first-ACT + tFAW.
    EXPECT_FALSE(chan.canIssue(act(0, 4, 1), t));
    EXPECT_TRUE(chan.canIssue(act(0, 4, 1), at(tm.tFAW)));
}

TEST_F(ChannelTest, ReadReturnsDataAtClPlusBurst)
{
    chan.issue(act(0, 0, 5), Tick{});
    const Tick t = at(tm.tRCD);
    const auto res = chan.issue(rd(0, 0, 5, 0), t);
    EXPECT_EQ(res.dataReadyAt, t + cyc(tm.tCAS) + cyc(tm.tBURST));
}

TEST_F(ChannelTest, TccdBetweenReads)
{
    chan.issue(act(0, 0, 5), Tick{});
    const Tick t = at(tm.tRCD);
    chan.issue(rd(0, 0, 5, 0), t);
    EXPECT_FALSE(
        chan.canIssue(rd(0, 0, 5, 1), t + cyc(tm.tCCD) - TickSpan{1}));
    EXPECT_TRUE(chan.canIssue(rd(0, 0, 5, 1), t + cyc(tm.tCCD)));
}

TEST_F(ChannelTest, WriteToReadTurnaroundSameRank)
{
    chan.issue(act(0, 0, 5), Tick{});
    const Tick t = at(tm.tRCD);
    chan.issue(DramCommand::write({0, 0, 0, 5, 0}), t);
    const Tick wtrDone = t + cyc(tm.tCWL + tm.tBURST + tm.tWTR);
    EXPECT_FALSE(chan.canIssue(rd(0, 0, 5, 1), wtrDone - TickSpan{1}));
    EXPECT_TRUE(chan.canIssue(rd(0, 0, 5, 1), wtrDone));
}

TEST_F(ChannelTest, ReadToWriteTurnaround)
{
    chan.issue(act(0, 0, 5), Tick{});
    const Tick t = at(tm.tRCD);
    chan.issue(rd(0, 0, 5, 0), t);
    const auto wr = DramCommand::write({0, 0, 0, 5, 1});
    EXPECT_FALSE(chan.canIssue(wr, t + cyc(tm.tRTW) - TickSpan{1}));
    EXPECT_TRUE(chan.canIssue(wr, t + cyc(tm.tRTW)));
}

TEST_F(ChannelTest, WriteRecoveryBeforePrecharge)
{
    chan.issue(act(0, 0, 5), Tick{});
    const Tick t = at(tm.tRCD + 20); // After tRAS concerns.
    chan.issue(DramCommand::write({0, 0, 0, 5, 0}), t);
    const Tick wrDone = t + cyc(tm.tCWL + tm.tBURST + tm.tWR);
    const auto pre = DramCommand::precharge(0, 0);
    EXPECT_FALSE(chan.canIssue(pre, wrDone - TickSpan{1}));
    EXPECT_TRUE(chan.canIssue(pre, wrDone));
}

TEST_F(ChannelTest, CommandBusOneCommandPerCycle)
{
    chan.issue(act(0, 0, 5), Tick{});
    EXPECT_FALSE(chan.canIssue(act(1, 0, 5), Tick{}));
    EXPECT_FALSE(chan.canIssue(act(1, 0, 5), at(1) - TickSpan{1}));
    EXPECT_TRUE(chan.canIssue(act(1, 0, 5), at(1)));
}

TEST_F(ChannelTest, RefreshRequiresAllBanksClosed)
{
    chan.issue(act(0, 0, 5), Tick{});
    EXPECT_FALSE(chan.canIssue(DramCommand::refresh(0), at(2)));
    chan.issue(DramCommand::precharge(0, 0), at(tm.tRAS));
    const Tick closed = at(tm.tRAS) + cyc(tm.tRP);
    EXPECT_TRUE(chan.canIssue(DramCommand::refresh(0), closed));
}

TEST_F(ChannelTest, RefreshBlocksActivates)
{
    chan.issue(DramCommand::refresh(0), Tick{});
    EXPECT_FALSE(chan.canIssue(act(0, 0, 1), at(tm.tRFC) - TickSpan{1}));
    EXPECT_TRUE(chan.canIssue(act(0, 0, 1), at(tm.tRFC)));
}

TEST_F(ChannelTest, RefreshSchedulingStaggersRanks)
{
    Channel c(smallGeom(), tm, true);
    EXPECT_EQ(c.refreshDueRank(Tick{}), -1);
    const TickSpan interval = kBaselineClocks.dramToTicks(tm.tREFI);
    EXPECT_EQ(c.refreshDueRank(Tick{} + interval), 0);
    // Rank 1 is due half an interval later.
    EXPECT_EQ(c.refreshDueRank(Tick{} + interval + interval / 2), 0);
}

TEST_F(ChannelTest, StatsCountCommands)
{
    chan.issue(act(0, 0, 5), Tick{});
    chan.issue(rd(0, 0, 5, 0), at(tm.tRCD));
    EXPECT_EQ(chan.stats().activates, 1u);
    EXPECT_EQ(chan.stats().reads, 1u);
    EXPECT_EQ(chan.stats().dataBusBusyTicks, cyc(tm.tBURST));
}

TEST_F(ChannelTest, BusUtilizationFractionOfWindow)
{
    chan.issue(act(0, 0, 5), Tick{});
    chan.issue(rd(0, 0, 5, 0), at(tm.tRCD));
    const Tick window = at(100);
    const double util = chan.stats().busUtilization(window);
    EXPECT_NEAR(util,
                static_cast<double>(cyc(tm.tBURST).count()) /
                    static_cast<double>((window - Tick{}).count()),
                1e-9);
}

TEST(BankTest, AccessCounterTracksActivation)
{
    Bank b;
    EXPECT_FALSE(b.isOpen());
    b.activate(7, Tick{}, TickSpan{10}, TickSpan{20}, TickSpan{30});
    EXPECT_TRUE(b.isOpen());
    EXPECT_EQ(b.openRow(), 7u);
    EXPECT_EQ(b.accessesThisActivation(), 0u);
    b.read(Tick{15}, TickSpan{5});
    b.read(Tick{25}, TickSpan{5});
    EXPECT_EQ(b.accessesThisActivation(), 2u);
    b.precharge(Tick{40}, TickSpan{10});
    EXPECT_FALSE(b.isOpen());
    EXPECT_EQ(b.accessesThisActivation(), 0u);
}

TEST(RankTest, AllBanksClosedTracksState)
{
    Rank r(4, 1);
    EXPECT_TRUE(r.allBanksClosed());
    r.bank(2).activate(1, Tick{}, TickSpan{10}, TickSpan{20}, TickSpan{30});
    EXPECT_FALSE(r.allBanksClosed());
    r.bank(2).precharge(Tick{50}, TickSpan{10});
    EXPECT_TRUE(r.allBanksClosed());
}
