/**
 * @file
 * DRAM energy model tests: per-event energies, background accounting
 * against the channel's rank-active tracking, and policy-level
 * invariants (close-page spends more activate energy but less
 * active-standby energy than open-page on single-access streams).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "dram/channel.hh"
#include "dram/devices.hh"
#include "dram/energy.hh"

using namespace mcsim;

namespace {

DramEnergyModel
model()
{
    return DramEnergyModel(DramPowerParams::ddr3_1600(),
                           DramTimings::ddr3_1600(), 2, 8);
}

/** Issue ACT(row) + RD + PRE on (rank 0, bank 0), waiting as needed. */
Tick
actReadPre(Channel &ch, Tick start, std::uint64_t row)
{
    Tick t = start;
    const auto step = [&](const DramCommand &cmd) {
        while (!ch.canIssue(cmd, t))
            t += kBaselineClocks.ticksPerDram;
        ch.issue(cmd, t);
        t += kBaselineClocks.ticksPerDram;
    };
    DramCoord c;
    c.row = row;
    step(DramCommand::activate(c));
    step(DramCommand::read(c));
    step(DramCommand::precharge(0, 0));
    return t;
}

} // namespace

TEST(Energy, PerEventEnergiesArePositiveAndOrdered)
{
    const DramEnergyModel m = model();
    EXPECT_GT(m.actPreEnergyNj(), 0.0);
    EXPECT_GT(m.readEnergyNj(), 0.0);
    EXPECT_GT(m.writeEnergyNj(), 0.0);
    EXPECT_GT(m.refreshEnergyNj(), 0.0);
    // A refresh (all banks, tRFC long) dwarfs one CAS burst.
    EXPECT_GT(m.refreshEnergyNj(), m.readEnergyNj());
    // An ACT/PRE pair costs more than one CAS burst on DDR3.
    EXPECT_GT(m.actPreEnergyNj(), m.readEnergyNj());
}

TEST(Energy, ZeroActivityIsPureBackground)
{
    const DramEnergyModel m = model();
    ChannelStats s;
    const Tick window = Tick{} + kBaselineClocks.dramToTicks(10'000);
    const DramEnergyBreakdown e = m.estimate(s, window);
    EXPECT_EQ(e.actPreNj, 0.0);
    EXPECT_EQ(e.readNj, 0.0);
    EXPECT_EQ(e.writeNj, 0.0);
    EXPECT_EQ(e.refreshNj, 0.0);
    EXPECT_GT(e.backgroundNj, 0.0);
    EXPECT_DOUBLE_EQ(e.totalNj(), e.backgroundNj);
}

TEST(Energy, CommandCountsScaleLinearly)
{
    const DramEnergyModel m = model();
    ChannelStats s;
    s.activates = 10;
    s.reads = 20;
    s.writes = 5;
    s.refreshes = 2;
    const Tick window = Tick{} + kBaselineClocks.dramToTicks(100'000);
    const DramEnergyBreakdown e1 = m.estimate(s, window);
    s.activates *= 3;
    s.reads *= 3;
    s.writes *= 3;
    s.refreshes *= 3;
    const DramEnergyBreakdown e3 = m.estimate(s, window);
    EXPECT_DOUBLE_EQ(e3.actPreNj, 3.0 * e1.actPreNj);
    EXPECT_DOUBLE_EQ(e3.readNj, 3.0 * e1.readNj);
    EXPECT_DOUBLE_EQ(e3.writeNj, 3.0 * e1.writeNj);
    EXPECT_DOUBLE_EQ(e3.refreshNj, 3.0 * e1.refreshNj);
    EXPECT_DOUBLE_EQ(e3.backgroundNj, e1.backgroundNj);
}

TEST(Energy, ActiveStandbyCostsMoreThanPrechargeStandby)
{
    const DramEnergyModel m = model();
    ChannelStats idle;
    ChannelStats active;
    const TickSpan window = kBaselineClocks.dramToTicks(50'000);
    active.rankActiveTicks = window; // One rank open the whole time.
    EXPECT_GT(m.estimate(active, Tick{} + window).backgroundNj,
              m.estimate(idle, Tick{} + window).backgroundNj);
}

TEST(Energy, BackgroundClampsAtFullActiveTime)
{
    const DramEnergyModel m = model();
    ChannelStats s;
    const TickSpan window = kBaselineClocks.dramToTicks(1'000);
    s.rankActiveTicks = window * 100; // Corrupt input: beyond 2 ranks.
    ChannelStats full;
    full.rankActiveTicks = window * 2; // Both ranks open throughout.
    EXPECT_DOUBLE_EQ(m.estimate(s, Tick{} + window).backgroundNj,
                     m.estimate(full, Tick{} + window).backgroundNj);
}

TEST(Energy, AvgPowerMatchesEnergyOverTime)
{
    DramEnergyBreakdown e;
    e.actPreNj = 500.0;
    e.backgroundNj = 500.0;
    // 1000 nJ = 1 uJ over 1 ms is 1 mW.
    EXPECT_DOUBLE_EQ(e.avgPowerMw(1e6), 1.0);
    // 1000 nJ over 1 us is 1 W = 1000 mW.
    EXPECT_DOUBLE_EQ(e.avgPowerMw(1e3), 1000.0);
    EXPECT_DOUBLE_EQ(e.avgPowerMw(0.0), 0.0);
}

TEST(Energy, ChannelTracksRankActiveTime)
{
    Channel ch(DramGeometry{}, DramTimings::ddr3_1600(), false);
    const Tick end = actReadPre(ch, Tick{}, 3);
    // The bank was open from the ACT to the PRE: a nonzero, bounded
    // active-standby interval must be recorded.
    EXPECT_GT(ch.stats().rankActiveTicks, TickSpan{0});
    EXPECT_LE(ch.stats().rankActiveTicks, end - Tick{});
    EXPECT_EQ(ch.stats().activates, 1u);
    EXPECT_EQ(ch.stats().precharges, 1u);
}

TEST(Energy, ResetStatsRestartsActivePeriods)
{
    Channel ch(DramGeometry{}, DramTimings::ddr3_1600(), false);
    DramCoord c;
    c.row = 9;
    Tick t{};
    while (!ch.canIssue(DramCommand::activate(c), t))
        t += kBaselineClocks.ticksPerDram;
    ch.issue(DramCommand::activate(c), t);

    // Reset mid-activation: the active period must restart at the
    // window boundary, not reach back to the ACT.
    const Tick resetAt = t + kBaselineClocks.dramToTicks(1'000);
    ch.resetStats(resetAt);
    Tick u = resetAt;
    const auto pre = DramCommand::precharge(0, 0);
    while (!ch.canIssue(pre, u))
        u += kBaselineClocks.ticksPerDram;
    ch.issue(pre, u);
    EXPECT_LE(ch.stats().rankActiveTicks, u - resetAt);
}

TEST(Energy, MoreActivationsMoreTotalEnergy)
{
    // Eight single-access activations versus one: the energy model
    // must charge visibly more for the activation-heavy stream.
    const DramEnergyModel m = model();
    Channel one(DramGeometry{}, DramTimings::ddr3_1600(), false);
    Channel eight(DramGeometry{}, DramTimings::ddr3_1600(), false);
    Tick tEnd1 = actReadPre(one, Tick{}, 1);
    Tick tEnd8{};
    for (std::uint64_t r = 0; r < 8; ++r)
        tEnd8 = actReadPre(eight, tEnd8, r);
    const Tick horizon = std::max(tEnd1, tEnd8);
    EXPECT_GT(m.estimate(eight.stats(), horizon).totalNj(),
              m.estimate(one.stats(), horizon).totalNj());
}

TEST(EnergyModel, PerBankRefreshScalesBurstCurrent)
{
    // A REFpb burst refreshes 1/banks of the die, so its per-event
    // energy is the all-bank burst's scaled by (tRFCpb / tRFC) / banks
    // (the IDD5PB approximation) — not a full-rank burst charged per
    // bank, which would inflate LPDDR3 refresh energy ~banks-fold.
    const DramDevice &lp = dramDeviceOrDie("LPDDR3-1600");
    ASSERT_TRUE(lp.timings.perBankRefresh);
    const ClockDomains clk = ClockDomains::fromMhz(2000, lp.busMhz);
    const std::uint32_t banks = lp.geometry.banksPerRank;
    const DramEnergyModel perBank(lp.power, lp.timings,
                                  lp.geometry.ranksPerChannel, banks,
                                  clk);
    DramTimings allBankTm = lp.timings;
    allBankTm.perBankRefresh = false;
    const DramEnergyModel allBank(lp.power, allBankTm,
                                  lp.geometry.ranksPerChannel, banks,
                                  clk);
    const double expected = allBank.refreshEnergyNj() *
                            static_cast<double>(lp.timings.tRFCpb) /
                            static_cast<double>(lp.timings.tRFC) /
                            static_cast<double>(banks);
    EXPECT_NEAR(perBank.refreshEnergyNj(), expected,
                1e-9 * allBank.refreshEnergyNj());
}
