/**
 * @file
 * DRAM geometry robustness sweep: the full system must run sanely and
 * protocol-legally on organizations other than the paper's Table 2
 * (fewer/more ranks and banks, smaller/larger row buffers, different
 * capacities). Catches geometry-dependent arithmetic bugs (bit-field
 * widths, tFAW windows with few banks, refresh with many ranks).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "dram/timing_checker.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

struct GeometryCase
{
    std::uint32_t ranks;
    std::uint32_t banks;
    std::uint32_t rowBytes;
};

std::string
caseName(const ::testing::TestParamInfo<GeometryCase> &info)
{
    return std::to_string(info.param.ranks) + "r" +
           std::to_string(info.param.banks) + "b" +
           std::to_string(info.param.rowBytes) + "row";
}

} // namespace

class GeometrySweep : public ::testing::TestWithParam<GeometryCase>
{
};

TEST_P(GeometrySweep, SystemRunsSanelyAndLegally)
{
    const GeometryCase &gc = GetParam();
    SimConfig cfg = SimConfig::baseline();
    cfg.dram.ranksPerChannel = gc.ranks;
    cfg.dram.banksPerRank = gc.banks;
    cfg.dram.rowBufferBytes = gc.rowBytes;
    // Hold capacity at the baseline 8 GiB so the workload footprint
    // and the DMA buffer still fit; the sweep varies organization,
    // not size (the paper's machines have 32-64 GB regardless).
    cfg.dram.rowsPerBank = (8ull << 30) / (std::uint64_t{gc.ranks} *
                                           gc.banks * gc.rowBytes);
    cfg.warmupCoreCycles = 30'000;
    cfg.measureCoreCycles = 120'000;

    System sys(cfg, workloadPreset(WorkloadId::DS));

    // Independent protocol referee on the channel.
    TimingChecker checker(cfg.dram, cfg.timings);
    int violations = 0;
    std::string firstError;
    sys.controller(0).channel().setCommandHook(
        [&](const DramCommand &cmd, Tick now) {
            const std::string err = checker.check(cmd, now);
            if (!err.empty() && violations++ == 0)
                firstError = err;
        });

    const MetricSet m = sys.run();
    EXPECT_EQ(violations, 0) << firstError;
    EXPECT_GT(m.userIpc, 0.05);
    EXPECT_GT(m.memReads, 100u);
    EXPECT_GE(m.rowHitRatePct, 0.0);
    EXPECT_LE(m.rowHitRatePct, 100.0);
    EXPECT_LE(m.bwUtilPct, 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, GeometrySweep,
    ::testing::Values(GeometryCase{1, 8, 8192},   // Single rank.
                      GeometryCase{4, 8, 8192},   // Four ranks.
                      GeometryCase{2, 4, 8192},   // Few banks: tFAW hot.
                      GeometryCase{2, 16, 8192},  // Many banks.
                      GeometryCase{2, 8, 2048},   // Small rows.
                      GeometryCase{2, 8, 16384},  // Large rows.
                      GeometryCase{1, 4, 2048}),  // Everything small.
    caseName);

TEST(GeometrySweep, MoreBanksNeverHurtThroughputMuch)
{
    // Bank-level parallelism: 16 banks must be at least as good as 4
    // (modulo noise) for a bank-parallel workload.
    SimConfig few = SimConfig::baseline();
    few.dram.banksPerRank = 4;
    few.dram.rowsPerBank = 1u << 17; // Keep the 8 GiB capacity.
    few.warmupCoreCycles = 100'000;
    few.measureCoreCycles = 400'000;
    SimConfig many = few;
    many.dram.banksPerRank = 16;
    many.dram.rowsPerBank = 1u << 15;
    System a(few, workloadPreset(WorkloadId::TPCHQ6));
    System b(many, workloadPreset(WorkloadId::TPCHQ6));
    const double ipcFew = a.run().userIpc;
    const double ipcMany = b.run().userIpc;
    EXPECT_GT(ipcMany, ipcFew * 0.98);
}
