/**
 * @file
 * Declarative experiment specs: parsing, cross-product expansion,
 * base-config shaping, and the error paths (unknown key, bad value,
 * missing file) that must produce line-numbered diagnostics instead
 * of silently mis-running a study.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/spec.hh"

using namespace mcsim;

namespace {

std::string
tempSpecPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/cloudmc_spec_" + tag +
           ".spec";
}

} // namespace

TEST(Spec, EmptyTextIsTheBaselinePoint)
{
    ExperimentSpec spec;
    ASSERT_EQ(parseExperimentSpec("", spec), "");
    EXPECT_EQ(spec.pointCount(), 1u);
    const auto points = spec.points();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].cfg.deviceName, "DDR3-1600");
    EXPECT_EQ(points[0].workload, WorkloadId::DS);
}

TEST(Spec, CommentsAndBlanksAreIgnored)
{
    ExperimentSpec spec;
    ASSERT_EQ(parseExperimentSpec("# a comment\n"
                                  "\n"
                                  "scheduler = ATLAS  # trailing\n",
                                  spec),
              "");
    ASSERT_EQ(spec.schedulers.size(), 1u);
    EXPECT_EQ(spec.schedulers[0], SchedulerKind::Atlas);
    EXPECT_EQ(spec.base.scheduler, SchedulerKind::Atlas);
}

TEST(Spec, CrossProductExpandsEveryAxis)
{
    ExperimentSpec spec;
    ASSERT_EQ(parseExperimentSpec(
                  "devices = DDR3-1600, DDR4-2400\n"
                  "schedulers = FR-FCFS, ATLAS, TCM\n"
                  "channels = 1, 2\n"
                  "workloads = WS, DS\n"
                  "measure = 400000\n"
                  "seed = 7\n",
                  spec),
              "");
    EXPECT_EQ(spec.pointCount(), 2u * 3u * 2u * 2u);
    const auto points = spec.points();
    ASSERT_EQ(points.size(), 24u);
    // Every point carries the scalar overrides and its own device.
    std::size_t ddr4 = 0;
    for (const auto &p : points) {
        EXPECT_EQ(p.cfg.measureCoreCycles, 400'000u);
        EXPECT_EQ(p.cfg.seed, 7u);
        if (p.cfg.deviceName == "DDR4-2400") {
            ++ddr4;
            EXPECT_EQ(p.cfg.clocks.dramMhz, 1200u);
            EXPECT_EQ(p.cfg.timings.tCAS, 17u);
        }
    }
    EXPECT_EQ(ddr4, 12u);
}

TEST(Spec, SingleValuedAxesShapeTheBaseConfig)
{
    ExperimentSpec spec;
    ASSERT_EQ(parseExperimentSpec("device = LPDDR3-1600\n"
                                  "policy = Close\n"
                                  "channels = 2\n"
                                  "core_mhz = 3000\n"
                                  "refresh = off\n",
                                  spec),
              "");
    EXPECT_EQ(spec.base.deviceName, "LPDDR3-1600");
    EXPECT_EQ(spec.base.pagePolicy, PagePolicyKind::Close);
    EXPECT_EQ(spec.base.dram.channels, 2u);
    EXPECT_EQ(spec.base.clocks.coreMhz, 3000u);
    EXPECT_FALSE(spec.base.refreshEnabled);
}

TEST(Spec, UnknownKeyIsALineNumberedError)
{
    ExperimentSpec spec;
    const std::string err =
        parseExperimentSpec("seed = 1\nfrobnicate = 9\n", spec);
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("unknown key 'frobnicate'"), std::string::npos)
        << err;
}

TEST(Spec, BadValuesAreLineNumberedErrors)
{
    ExperimentSpec spec;
    std::string err = parseExperimentSpec("device = DDR9-9999\n", spec);
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;
    EXPECT_NE(err.find("DDR9-9999"), std::string::npos) << err;

    err = parseExperimentSpec("schedulers = FR-FCFS, NOPE\n", spec);
    EXPECT_NE(err.find("unknown scheduler 'NOPE'"), std::string::npos)
        << err;

    err = parseExperimentSpec("channels = 3\n", spec);
    EXPECT_NE(err.find("channel count"), std::string::npos) << err;

    err = parseExperimentSpec("measure = zero\n", spec);
    EXPECT_NE(err.find("measure"), std::string::npos) << err;

    err = parseExperimentSpec("refresh = maybe\n", spec);
    EXPECT_NE(err.find("refresh"), std::string::npos) << err;

    err = parseExperimentSpec("just some words\n", spec);
    EXPECT_NE(err.find("expected 'key = value'"), std::string::npos)
        << err;

    err = parseExperimentSpec("workload =\n", spec);
    EXPECT_NE(err.find("missing value"), std::string::npos) << err;
}

TEST(Spec, MissingFileIsAnError)
{
    ExperimentSpec spec;
    const std::string err =
        loadExperimentSpec("/nonexistent/path/x.spec", spec);
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST(Spec, LoadsFromDiskAndRoundTrips)
{
    const std::string path = tempSpecPath("roundtrip");
    {
        std::ofstream out(path);
        out << "# device sweep\n"
            << "devices = DDR3-1600, DDR3-1866\n"
            << "workload = WS\n";
    }
    ExperimentSpec spec;
    ASSERT_EQ(loadExperimentSpec(path, spec), "");
    EXPECT_EQ(spec.pointCount(), 2u);
    ASSERT_EQ(spec.workloads.size(), 1u);
    EXPECT_EQ(spec.workloads[0], WorkloadId::WS);
    std::remove(path.c_str());
}

TEST(Spec, GroupMappingAxisExpandsAndShapesBase)
{
    ExperimentSpec spec;
    ASSERT_EQ(parseExperimentSpec("device = DDR4-2400\n"
                                  "group_mappings = GroupInterleaved, "
                                  "GroupPacked\n"
                                  "workload = WS\n",
                                  spec),
              "");
    EXPECT_EQ(spec.pointCount(), 2u);
    const auto points = spec.points();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].cfg.bankGroupMapping,
              BankGroupMapping::GroupInterleaved);
    EXPECT_EQ(points[1].cfg.bankGroupMapping,
              BankGroupMapping::GroupPacked);

    // A single-valued axis (short form accepted) shapes the base.
    ExperimentSpec one;
    ASSERT_EQ(parseExperimentSpec("group_mapping = packed\n", one), "");
    EXPECT_EQ(one.base.bankGroupMapping, BankGroupMapping::GroupPacked);
}

TEST(Spec, BadGroupMappingIsALineNumberedError)
{
    ExperimentSpec spec;
    const std::string err =
        parseExperimentSpec("group_mapping = diagonal\n", spec);
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;
    EXPECT_NE(err.find("bank-group mapping"), std::string::npos) << err;
}

TEST(Spec, StackedBackendSelectsTheReferencePart)
{
    // `backend = stacked` with no device axis means "the stacked
    // reference part"; the vault axis expands per point.
    ExperimentSpec spec;
    ASSERT_EQ(parseExperimentSpec("backend = stacked\n"
                                  "vaults = 16, 8, 4\n"
                                  "remap = on\n"
                                  "workload = WS\n",
                                  spec),
              "");
    EXPECT_EQ(spec.base.deviceName, "HMC2-8GB");
    EXPECT_EQ(spec.base.backend, MemBackendKind::StackedDram);
    EXPECT_TRUE(spec.base.remap.enabled);
    EXPECT_EQ(spec.pointCount(), 3u);
    const auto points = spec.points();
    ASSERT_EQ(points.size(), 3u);
    std::uint64_t capacity = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].cfg.backend, MemBackendKind::StackedDram);
        EXPECT_TRUE(points[i].cfg.remap.enabled);
        // The vault sweep preserves capacity (rows scale inversely).
        if (i == 0)
            capacity = points[i].cfg.dram.capacityBytes();
        EXPECT_EQ(points[i].cfg.dram.capacityBytes(), capacity);
    }
    EXPECT_EQ(points[0].cfg.dram.vaultsPerStack, 16u);
    EXPECT_EQ(points[1].cfg.dram.vaultsPerStack, 8u);
    EXPECT_EQ(points[2].cfg.dram.vaultsPerStack, 4u);
}

TEST(Spec, RemapOnFlatBackendIsANamedError)
{
    // A silently ignored remap key would masquerade as a null result;
    // the loader must reject it by name.
    ExperimentSpec spec;
    std::string err = parseExperimentSpec("remap = on\n", spec);
    EXPECT_NE(err.find("remap applies to the stacked backend only"),
              std::string::npos)
        << err;

    // Even `remap = off` names a knob the flat backend does not have.
    err = parseExperimentSpec("remap = off\n", spec);
    EXPECT_NE(err.find("remap applies to the stacked backend only"),
              std::string::npos)
        << err;

    err = parseExperimentSpec("device = DDR4-2400\nremap = on\n", spec);
    EXPECT_NE(err.find("DDR4-2400"), std::string::npos) << err;

    err = parseExperimentSpec("vaults = 8\n", spec);
    EXPECT_NE(err.find("vaults applies to the stacked backend only"),
              std::string::npos)
        << err;
}

TEST(Spec, BackendDeviceMismatchesAreNamedErrors)
{
    ExperimentSpec spec;
    std::string err = parseExperimentSpec("backend = stacked\n"
                                          "device = DDR3-1600\n",
                                          spec);
    EXPECT_NE(err.find("flat JEDEC part"), std::string::npos) << err;

    err = parseExperimentSpec("backend = flat\n"
                              "device = HMC2-8GB\n",
                              spec);
    EXPECT_NE(err.find("stacked part"), std::string::npos) << err;

    err = parseExperimentSpec("backend = sideways\n", spec);
    EXPECT_NE(err.find("backend must be 'flat' or 'stacked'"),
              std::string::npos)
        << err;

    // A stacked device without the backend key still works: the
    // backend kind follows the device geometry.
    ASSERT_EQ(parseExperimentSpec("device = HMC2-8GB\nremap = on\n",
                                  spec),
              "");
    EXPECT_EQ(spec.base.backend, MemBackendKind::StackedDram);
    EXPECT_TRUE(spec.base.remap.enabled);
}

TEST(Spec, TierKeysShapeTheBaseConfig)
{
    ExperimentSpec spec;
    ASSERT_EQ(parseExperimentSpec("tier = on\n"
                                  "tier_policy = alloy_cache\n"
                                  "tier_latency = 120\n"
                                  "tier_bw = 40\n"
                                  "tier_capacity_pct = 25\n"
                                  "tier_hot_factor = 3.5\n"
                                  "tier_migration_cycles = 32\n"
                                  "monitor_sample = 8\n"
                                  "monitor_window = 512\n"
                                  "monitor_min_regions = 8\n"
                                  "monitor_max_regions = 64\n",
                                  spec),
              "");
    EXPECT_TRUE(spec.base.tier.enabled);
    EXPECT_EQ(spec.base.tier.policy, TierPolicy::AlloyCache);
    EXPECT_EQ(spec.base.tier.slowLatencyDramCycles, 120u);
    EXPECT_EQ(spec.base.tier.slowBwPct, 40u);
    EXPECT_EQ(spec.base.tier.fastCapacityPct, 25u);
    EXPECT_DOUBLE_EQ(spec.base.tier.hotFactor, 3.5);
    EXPECT_EQ(spec.base.tier.migrationCyclesPerRow, 32u);
    EXPECT_EQ(spec.base.tier.monitorSampleEvery, 8u);
    EXPECT_EQ(spec.base.tier.monitorWindowSamples, 512u);
    EXPECT_EQ(spec.base.tier.monitorMinRegions, 8u);
    EXPECT_EQ(spec.base.tier.monitorMaxRegions, 64u);

    // Every expanded point carries the tier shape.
    const auto points = spec.points();
    ASSERT_FALSE(points.empty());
    EXPECT_TRUE(points[0].cfg.tier.enabled);
    EXPECT_EQ(points[0].cfg.tier.fastCapacityPct, 25u);

    // 'tier = off' alone is legal: explicitly declining the tiered
    // backend is not a tiered-only key.
    ExperimentSpec off;
    ASSERT_EQ(parseExperimentSpec("tier = off\n", off), "");
    EXPECT_FALSE(off.base.tier.enabled);
}

TEST(Spec, TierPolicyNamesAllParse)
{
    const struct {
        const char *name;
        TierPolicy policy;
    } cases[] = {
        {"static_split", TierPolicy::StaticSplit},
        {"hotness_based", TierPolicy::HotnessBased},
        {"alloy_cache", TierPolicy::AlloyCache},
    };
    for (const auto &c : cases) {
        ExperimentSpec spec;
        const std::string text =
            std::string("tier = on\ntier_policy = ") + c.name + "\n";
        ASSERT_EQ(parseExperimentSpec(text, spec), "") << c.name;
        EXPECT_EQ(spec.base.tier.policy, c.policy) << c.name;
    }
}

TEST(Spec, BadTierValuesAreLineNumberedErrors)
{
    const struct {
        const char *line;
        const char *expect;
    } cases[] = {
        {"tier = maybe", "tier must be 'on' or 'off'"},
        {"tier_policy = lru", "tier_policy must be"},
        {"tier_latency = -1", "tier_latency needs"},
        {"tier_latency = 1000001", "tier_latency needs"},
        {"tier_bw = 0", "tier_bw needs a percentage in [1, 100]"},
        {"tier_bw = 101", "tier_bw needs a percentage in [1, 100]"},
        {"tier_capacity_pct = 0", "tier_capacity_pct needs"},
        {"tier_capacity_pct = 150", "tier_capacity_pct needs"},
        {"tier_hot_factor = 0", "tier_hot_factor needs a number > 0"},
        {"tier_hot_factor = bogus", "tier_hot_factor needs"},
        {"tier_migration_cycles = 0", "tier_migration_cycles needs"},
        {"monitor_sample = 0", "monitor_sample needs"},
        {"monitor_window = 0", "monitor_window needs"},
        {"monitor_min_regions = 0", "monitor_min_regions needs"},
        {"monitor_max_regions = 0", "monitor_max_regions needs"},
    };
    for (const auto &c : cases) {
        ExperimentSpec spec;
        const std::string text = std::string("tier = on\n") + c.line + "\n";
        const std::string errText = parseExperimentSpec(text, spec);
        EXPECT_NE(errText.find(c.expect), std::string::npos)
            << c.line << " -> " << errText;
        EXPECT_NE(errText.find("line 2"), std::string::npos)
            << c.line << " -> " << errText;
    }
}

TEST(Spec, TierOnlyKeysWithoutTierAreNamedErrors)
{
    // Mirrors RemapOnFlatBackendIsANamedError: a tier-only knob on a
    // config that never composes the tiered backend is a spec bug.
    const char *lines[] = {
        "tier_policy = hotness_based", "tier_latency = 64",
        "tier_bw = 50",                "tier_capacity_pct = 50",
        "tier_hot_factor = 2.0",       "tier_migration_cycles = 64",
        "monitor_sample = 4",          "monitor_window = 2048",
        "monitor_min_regions = 16",    "monitor_max_regions = 256",
    };
    for (const char *line : lines) {
        ExperimentSpec spec;
        const std::string errText =
            parseExperimentSpec(std::string(line) + "\n", spec);
        EXPECT_NE(errText.find("applies to the tiered backend only"),
                  std::string::npos)
            << line << " -> " << errText;
        EXPECT_NE(errText.find("put 'tier = on' first"),
                  std::string::npos)
            << line << " -> " << errText;
    }

    // The error names the FIRST tier-only key seen, and fires even
    // when 'tier = off' appears explicitly afterwards.
    ExperimentSpec spec;
    const std::string errText = parseExperimentSpec(
        "tier_bw = 50\ntier = off\ntier_latency = 64\n", spec);
    EXPECT_NE(errText.find("'tier_bw'"), std::string::npos) << errText;
}

TEST(Spec, MonitorRegionBoundsMismatchIsANamedError)
{
    ExperimentSpec spec;
    const std::string errText =
        parseExperimentSpec("tier = on\n"
                            "monitor_min_regions = 64\n"
                            "monitor_max_regions = 16\n",
                            spec);
    EXPECT_NE(errText.find("monitor_max_regions"), std::string::npos)
        << errText;
    EXPECT_NE(errText.find("monitor_min_regions"), std::string::npos)
        << errText;
}

TEST(Spec, TieredSpecWorksOnTheStackedBackend)
{
    // The fast tier can itself be the stacked backend; the two layers'
    // keys compose in one spec.
    ExperimentSpec spec;
    ASSERT_EQ(parseExperimentSpec("device = HMC2-8GB\n"
                                  "tier = on\n"
                                  "tier_policy = static_split\n",
                                  spec),
              "");
    EXPECT_EQ(spec.base.backend, MemBackendKind::StackedDram);
    EXPECT_TRUE(spec.base.tier.enabled);
    EXPECT_EQ(spec.base.tier.policy, TierPolicy::StaticSplit);
}
