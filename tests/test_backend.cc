/**
 * @file
 * The pluggable memory backend: the flat/stacked factory split, the
 * stacked registry entry, capacity-preserving vault overrides, static
 * vault-interleave routing, the dynamic remapper (migration counters
 * and the availableAt cost model), and stacked-backend runs agreeing
 * across the reference, event, and parallel kernels.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/devices.hh"
#include "mem/backend.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

/** A small stacked configuration: one stack, four vaults. */
SimConfig
stackedConfig(std::uint32_t vaults = 4)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.applyDevice(dramDeviceOrDie("HMC2-8GB"));
    cfg.setVaults(vaults);
    cfg.warmupCoreCycles = 20'000;
    cfg.measureCoreCycles = 50'000;
    return cfg;
}

} // namespace

TEST(Backend, RegistryCarriesAStackedPart)
{
    const DramDevice &dev = dramDeviceOrDie("HMC2-8GB");
    EXPECT_EQ(dev.geometry.vaultsPerStack, 16u);
    EXPECT_EQ(dev.geometry.ranksPerChannel, 1u);
    EXPECT_GT(dev.timings.tTSV, 0u);
    // One stack is 8 GiB: 16 vaults x 8 banks x 2^18 rows x 256 B.
    EXPECT_EQ(dev.geometry.capacityBytes(), 8ull << 30);
}

TEST(Backend, KindFollowsDeviceGeometry)
{
    SimConfig flat = SimConfig::baseline();
    EXPECT_EQ(flat.backend, MemBackendKind::FlatDram);
    flat.applyDevice(dramDeviceOrDie("DDR4-2400"));
    EXPECT_EQ(flat.backend, MemBackendKind::FlatDram);

    SimConfig hmc = SimConfig::baseline();
    hmc.applyDevice(dramDeviceOrDie("HMC2-8GB"));
    EXPECT_EQ(hmc.backend, MemBackendKind::StackedDram);
    // Moving back to a flat part flips the kind back.
    hmc.applyDevice(dramDeviceOrDie("DDR3-1600"));
    EXPECT_EQ(hmc.backend, MemBackendKind::FlatDram);
}

TEST(Backend, FactoryBuildsTheSelectedBackend)
{
    SimConfig flat = SimConfig::baseline();
    flat.dram.channels = 2;
    auto fb = makeMemBackend(flat, flat.numCores);
    ASSERT_TRUE(fb);
    EXPECT_EQ(fb->kind(), MemBackendKind::FlatDram);
    EXPECT_EQ(fb->numQueues(), 2u);

    SimConfig hmc = stackedConfig(/*vaults=*/8);
    hmc.dram.channels = 2; // Two stacks.
    auto sb = makeMemBackend(hmc, hmc.numCores);
    ASSERT_TRUE(sb);
    EXPECT_EQ(sb->kind(), MemBackendKind::StackedDram);
    EXPECT_EQ(sb->numQueues(), 16u); // 2 stacks x 8 vaults.
    EXPECT_EQ(sb->capacityBytes(), 16ull << 30);
}

TEST(Backend, SetVaultsPreservesCapacity)
{
    const std::uint64_t full =
        dramDeviceOrDie("HMC2-8GB").geometry.capacityBytes();
    for (std::uint32_t v : {4u, 8u, 16u}) {
        SimConfig cfg = SimConfig::baseline();
        cfg.applyDevice(dramDeviceOrDie("HMC2-8GB"));
        cfg.setVaults(v);
        EXPECT_EQ(cfg.dram.vaultsPerStack, v);
        EXPECT_EQ(cfg.dram.capacityBytes(), full) << v << " vaults";
    }
}

TEST(Backend, StaticRoutingIsAVaultInterleave)
{
    // With remapping off, routing is a pure function of the address:
    // stable across calls, covering every vault queue, and never
    // stamping a migration delay.
    SimConfig cfg = stackedConfig(/*vaults=*/4);
    auto be = makeMemBackend(cfg, cfg.numCores);
    ASSERT_EQ(be->numQueues(), 4u);

    std::set<std::uint32_t> queues;
    for (std::uint64_t i = 0; i < 4096; ++i) {
        Request req;
        req.addr = i * cfg.dram.blockBytes;
        be->route(req, Tick{});
        ASSERT_LT(req.coord.channel, be->numQueues());
        EXPECT_EQ(req.availableAt, Tick{});
        queues.insert(req.coord.channel);

        Request again;
        again.addr = req.addr;
        be->route(again, Tick{});
        EXPECT_EQ(again.coord.channel, req.coord.channel);
        EXPECT_EQ(again.coord.bank, req.coord.bank);
        EXPECT_EQ(again.coord.row, req.coord.row);
    }
    EXPECT_EQ(queues.size(), 4u) << "interleave missed a vault";
}

TEST(Backend, RemapperMigratesHotSlotsAndChargesTheCopy)
{
    // Hammer one logical bank slot: once the window closes, the
    // remapper must swap it toward a cold vault, count the migration,
    // and stamp subsequent requests with the copy's earliest-service
    // tick (the availableAt cost model).
    SimConfig cfg = stackedConfig(/*vaults=*/4);
    cfg.remap.enabled = true;
    cfg.remap.windowAccesses = 64;
    cfg.remap.hotFactor = 2.0;
    auto be = makeMemBackend(cfg, cfg.numCores);

    Request probe;
    probe.addr = 0;
    be->route(probe, Tick{});
    const std::uint32_t homeQueue = probe.coord.channel;

    // 100 more accesses: the window closes once (at the 64th total
    // access), so exactly one swap fires and every later access to the
    // still-copying slot is charged the migration delay.
    bool sawMigrationDelay = false;
    for (int i = 0; i < 100; ++i) {
        Request req;
        req.addr = 0; // One slot soaks every access.
        be->route(req, Tick{});
        if (req.availableAt > Tick{})
            sawMigrationDelay = true;
    }
    EXPECT_TRUE(sawMigrationDelay)
        << "no routed request was charged a migration delay";

    MetricSet m;
    be->collect(m, Tick{});
    EXPECT_EQ(m.remapMigrations, 1u);
    EXPECT_EQ(m.remapMigratedRows, 2ull * cfg.remap.migrationRows);

    // The hot slot moved: its physical queue differs from its static
    // home.
    Request after;
    after.addr = 0;
    be->route(after, Tick{});
    EXPECT_NE(after.coord.channel, homeQueue);
}

TEST(Backend, RemapRoutingIsDeterministic)
{
    // Two identically-configured backends fed the identical request
    // sequence must route identically — the property that makes
    // route-on-alloc safe under every kernel.
    SimConfig cfg = stackedConfig(/*vaults=*/8);
    cfg.remap.enabled = true;
    cfg.remap.windowAccesses = 32;
    auto a = makeMemBackend(cfg, cfg.numCores);
    auto b = makeMemBackend(cfg, cfg.numCores);

    for (std::uint64_t i = 0; i < 2048; ++i) {
        // A skewed pattern: half the accesses hit one block.
        const Addr addr =
            (i % 2 ? 0 : i * 7919) * cfg.dram.blockBytes;
        Request ra, rb;
        ra.addr = rb.addr = addr;
        a->route(ra, Tick{});
        b->route(rb, Tick{});
        ASSERT_EQ(ra.coord.channel, rb.coord.channel) << "request " << i;
        ASSERT_EQ(ra.coord.bank, rb.coord.bank) << "request " << i;
        ASSERT_EQ(ra.availableAt, rb.availableAt) << "request " << i;
    }
}

TEST(Backend, StackedRunAgreesAcrossAllKernels)
{
    // End-to-end: a stacked system with remapping on produces
    // bit-identical metrics under the tick-by-tick reference loop, the
    // serial event kernel, and the epoch-sharded parallel kernel.
    SimConfig cfg = stackedConfig(/*vaults=*/4);
    cfg.remap.enabled = true;
    cfg.remap.windowAccesses = 512;

    const auto runOnce = [&](bool reference, std::uint32_t threads) {
        SimConfig c = cfg;
        c.kernelThreads = threads;
        System sys(c, workloadPreset(WorkloadId::WS));
        sys.useReferenceKernel(reference);
        return sys.run();
    };
    const MetricSet ref = runOnce(true, 1);
    const MetricSet ev = runOnce(false, 1);
    const MetricSet par = runOnce(false, 4);

    for (const MetricSet *m : {&ev, &par}) {
        EXPECT_EQ(m->committedInstructions, ref.committedInstructions);
        EXPECT_EQ(m->memReads, ref.memReads);
        EXPECT_EQ(m->memWrites, ref.memWrites);
        EXPECT_EQ(m->userIpc, ref.userIpc);
        EXPECT_EQ(m->avgReadLatency, ref.avgReadLatency);
        EXPECT_EQ(m->bwUtilPct, ref.bwUtilPct);
        EXPECT_EQ(m->dramEnergyNj, ref.dramEnergyNj);
        EXPECT_EQ(m->remapMigrations, ref.remapMigrations);
        EXPECT_EQ(m->remapMigratedRows, ref.remapMigratedRows);
        EXPECT_EQ(m->vaultQueueImbalance, ref.vaultQueueImbalance);
        ASSERT_EQ(m->perVaultReadQueue.size(),
                  ref.perVaultReadQueue.size());
        for (std::size_t i = 0; i < ref.perVaultReadQueue.size(); ++i)
            EXPECT_EQ(m->perVaultReadQueue[i], ref.perVaultReadQueue[i]);
    }
    EXPECT_EQ(ref.perVaultReadQueue.size(), 4u);
    EXPECT_GT(ref.memReads, 0u);
}

TEST(Backend, FlatRunsReportNoStackedQuantities)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.warmupCoreCycles = 20'000;
    cfg.measureCoreCycles = 50'000;
    System sys(cfg, workloadPreset(WorkloadId::DS));
    const MetricSet m = sys.run();
    EXPECT_TRUE(m.perVaultReadQueue.empty());
    EXPECT_EQ(m.vaultQueueImbalance, 0.0);
    EXPECT_EQ(m.remapMigrations, 0u);
    EXPECT_EQ(m.remapMigratedRows, 0u);
    EXPECT_GT(m.memReads, 0u);
}
