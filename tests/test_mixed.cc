/**
 * @file
 * MixedWorkload tests: routing, address partitioning, determinism,
 * and the end-to-end heterogeneous-mix system run.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/system.hh"
#include "workload/mixed.hh"

using namespace mcsim;

namespace {

constexpr Addr kSpace = 16ull << 30;

std::vector<MixPart>
twoPartMix()
{
    return {{WorkloadId::WS, 8}, {WorkloadId::TPCHQ6, 8}};
}

} // namespace

TEST(Mixed, CoreRoutingCoversAllParts)
{
    MixedWorkload mix(twoPartMix(), kSpace);
    EXPECT_EQ(mix.totalCores(), 16u);
    EXPECT_EQ(mix.numParts(), 2u);
    for (CoreId c = 0; c < 8; ++c)
        EXPECT_EQ(mix.partOf(c), 0u);
    for (CoreId c = 8; c < 16; ++c)
        EXPECT_EQ(mix.partOf(c), 1u);
    EXPECT_STREQ(mix.name(), "Mix(WS:8,TPCH-Q6:8)");
}

TEST(Mixed, PartsLiveInDisjointAddressSlices)
{
    MixedWorkload mix(twoPartMix(), kSpace);
    const Addr base1 = mix.partBase(1);
    EXPECT_GT(base1, 0u);
    for (int i = 0; i < 5000; ++i) {
        for (CoreId c : {CoreId{0}, CoreId{12}}) {
            const Op op = mix.nextOp(c);
            if (op.kind == Op::Kind::Compute)
                continue;
            if (mix.partOf(c) == 0) {
                EXPECT_LT(op.addr, base1);
            } else {
                EXPECT_GE(op.addr, base1);
                EXPECT_LT(op.addr, kSpace);
            }
        }
    }
}

TEST(Mixed, FetchStreamsAreAlsoPartitioned)
{
    MixedWorkload mix(twoPartMix(), kSpace);
    const Addr base1 = mix.partBase(1);
    for (int i = 0; i < 500; ++i) {
        EXPECT_LT(mix.nextFetchBlock(0), base1);
        EXPECT_GE(mix.nextFetchBlock(15), base1);
    }
}

TEST(Mixed, DeterministicForSeedSalt)
{
    MixedWorkload a(twoPartMix(), kSpace, 3);
    MixedWorkload b(twoPartMix(), kSpace, 3);
    for (int i = 0; i < 1000; ++i) {
        const Op oa = a.nextOp(i % 16);
        const Op ob = b.nextOp(i % 16);
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind));
    }
}

TEST(Mixed, SeedSaltSeparatesRepeatedParts)
{
    // The same preset twice in one mix must not produce mirrored
    // streams: the per-part seed salt decorrelates them.
    std::vector<MixPart> parts{{WorkloadId::DS, 8}, {WorkloadId::DS, 8}};
    MixedWorkload mix(parts, kSpace);
    const Addr base1 = mix.partBase(1);
    std::set<Addr> left, right;
    for (int i = 0; i < 2000; ++i) {
        const Op a = mix.nextOp(0);
        const Op b = mix.nextOp(8);
        if (a.kind != Op::Kind::Compute)
            left.insert(a.addr);
        if (b.kind != Op::Kind::Compute)
            right.insert(b.addr - base1);
    }
    // Identical streams would make the offset-adjusted sets equal.
    EXPECT_NE(left, right);
}

TEST(Mixed, HeterogeneousMixRunsEndToEnd)
{
    MixedWorkload mix(twoPartMix(), kSpace);
    SimConfig cfg = SimConfig::baseline();
    cfg.warmupCoreCycles = 100'000;
    cfg.measureCoreCycles = 200'000;
    System sys(cfg, mix, mix.totalCores());
    const MetricSet m = sys.run();
    EXPECT_GT(m.userIpc, 0.1);
    EXPECT_GT(m.memReads, 0u);
    EXPECT_EQ(m.perCoreIpc.size(), 16u);
    // The two halves behave differently: decision support cores are
    // slower than web search cores under contention.
    double wsAvg = 0.0, dspAvg = 0.0;
    for (int c = 0; c < 8; ++c)
        wsAvg += m.perCoreIpc[c];
    for (int c = 8; c < 16; ++c)
        dspAvg += m.perCoreIpc[c];
    EXPECT_GT(wsAvg, dspAvg);
}

TEST(Mixed, SinglePartBehavesLikeWrappedPreset)
{
    std::vector<MixPart> one{{WorkloadId::MR, 16}};
    MixedWorkload mix(one, kSpace);
    EXPECT_EQ(mix.totalCores(), 16u);
    EXPECT_EQ(mix.partBase(0), 0u);
    // Addresses stay within the (power-of-two trimmed) slice.
    for (int i = 0; i < 2000; ++i) {
        const Op op = mix.nextOp(i % 16);
        if (op.kind != Op::Kind::Compute) {
            EXPECT_LT(op.addr, kSpace);
        }
    }
}
