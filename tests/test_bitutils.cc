/**
 * @file
 * Unit and property tests for bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "common/bitutils.hh"

using namespace mcsim;

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(BitUtils, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(BitUtils, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1ull << 20), 20u);
}

TEST(BitUtils, ExtractBasic)
{
    EXPECT_EQ(extractBits(0xFF00, 8, 8), 0xFFu);
    EXPECT_EQ(extractBits(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(extractBits(0xABCD, 0, 0), 0u);
    EXPECT_EQ(extractBits(~0ull, 0, 64), ~0ull);
}

TEST(BitUtils, InsertBasic)
{
    EXPECT_EQ(insertBits(0, 8, 8, 0xFF), 0xFF00u);
    EXPECT_EQ(insertBits(0xFFFF, 4, 4, 0), 0xFF0Fu);
    EXPECT_EQ(insertBits(0x1234, 0, 0, 0xF), 0x1234u);
}

/** Property: insert-then-extract returns the inserted field. */
class BitFieldRoundtrip
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(BitFieldRoundtrip, InsertExtract)
{
    const auto [lsb, width] = GetParam();
    const std::uint64_t pattern = 0xA5A5A5A5A5A5A5A5ull;
    const std::uint64_t field = pattern >> (64 - std::min(width, 63u));
    const std::uint64_t v = insertBits(0xDEADBEEFCAFEF00Dull, lsb, width,
                                       field);
    if (width > 0) {
        EXPECT_EQ(extractBits(v, lsb, width),
                  field & ((width >= 64 ? ~0ull
                                        : ((1ull << width) - 1))));
    }
    // Bits outside the field are untouched.
    if (lsb > 0) {
        EXPECT_EQ(extractBits(v, 0, lsb),
                  extractBits(0xDEADBEEFCAFEF00Dull, 0, lsb));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitFieldRoundtrip,
    ::testing::Combine(::testing::Values(0u, 1u, 6u, 13u, 31u, 47u),
                       ::testing::Values(1u, 3u, 8u, 16u)));
