/**
 * @file
 * DramSystem facade tests: channel ownership, aggregate bus
 * utilization, and stats reset across channels.
 */

#include <gtest/gtest.h>

#include "dram/dram_system.hh"

using namespace mcsim;

namespace {

DramGeometry
geomWithChannels(std::uint32_t channels)
{
    DramGeometry g;
    g.channels = channels;
    g.rowsPerBank = 1u << 12;
    return g;
}

/** Issue ACT+RD on (rank 0, bank 0) of @p ch starting at @p start. */
Tick
driveOneRead(Channel &ch, Tick start)
{
    DramCoord c;
    c.row = 1;
    Tick t = start;
    for (const DramCommand &cmd :
         {DramCommand::activate(c), DramCommand::read(c)}) {
        while (!ch.canIssue(cmd, t))
            t += kBaselineClocks.ticksPerDram;
        ch.issue(cmd, t);
        t += kBaselineClocks.ticksPerDram;
    }
    return t;
}

} // namespace

TEST(DramSystem, OwnsRequestedChannelCount)
{
    DramSystem sys(geomWithChannels(4), DramTimings::ddr3_1600(), false);
    EXPECT_EQ(sys.numChannels(), 4u);
    for (std::uint32_t c = 0; c < 4; ++c) {
        EXPECT_EQ(sys.channel(c).geometry().ranksPerChannel, 2u);
        EXPECT_EQ(sys.channel(c).stats().reads, 0u);
    }
}

TEST(DramSystem, ChannelsAreIndependent)
{
    DramSystem sys(geomWithChannels(2), DramTimings::ddr3_1600(), false);
    driveOneRead(sys.channel(0), Tick{});
    EXPECT_EQ(sys.channel(0).stats().reads, 1u);
    EXPECT_EQ(sys.channel(1).stats().reads, 0u);
    // Channel 1's buses are untouched by channel 0's traffic: an
    // immediate command is legal there.
    DramCoord c;
    c.row = 7;
    EXPECT_TRUE(sys.channel(1).canIssue(DramCommand::activate(c), Tick{}));
}

TEST(DramSystem, BusUtilizationAveragesChannels)
{
    DramSystem sys(geomWithChannels(2), DramTimings::ddr3_1600(), false);
    const Tick end = driveOneRead(sys.channel(0), Tick{});
    const Tick window = end + kBaselineClocks.dramToTicks(100);
    const double oneBusy = sys.channel(0).stats().busUtilization(window);
    ASSERT_GT(oneBusy, 0.0);
    // The idle second channel halves the average.
    EXPECT_DOUBLE_EQ(sys.busUtilization(window), oneBusy / 2.0);
}

TEST(DramSystem, ResetStatsClearsEveryChannel)
{
    DramSystem sys(geomWithChannels(2), DramTimings::ddr3_1600(), false);
    driveOneRead(sys.channel(0), Tick{});
    driveOneRead(sys.channel(1), Tick{});
    sys.resetStats(Tick{} + kBaselineClocks.dramToTicks(1'000));
    for (std::uint32_t c = 0; c < 2; ++c) {
        EXPECT_EQ(sys.channel(c).stats().reads, 0u);
        EXPECT_EQ(sys.channel(c).stats().activates, 0u);
        EXPECT_EQ(sys.channel(c).stats().dataBusBusyTicks, TickSpan{0});
    }
}

TEST(DramSystem, GeometryAndTimingsExposed)
{
    const auto g = geomWithChannels(1);
    const auto tm = DramTimings::ddr3_1600();
    DramSystem sys(g, tm, true);
    EXPECT_EQ(sys.geometry().banksPerRank, g.banksPerRank);
    EXPECT_EQ(sys.timings().tCAS, tm.tCAS);
    EXPECT_EQ(sys.geometry().capacityBytes(), g.capacityBytes());
}
