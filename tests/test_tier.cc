/**
 * @file
 * The tiered memory backend and its DAMON-style monitor: region
 * split/merge/aging, the zero-region degenerate span, tier routing
 * under all three policies, the migration cost model, determinism,
 * collect() idempotence, the empty-set metric edges, and tiered runs
 * agreeing bit-for-bit across the reference, event, and parallel
 * kernels.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/devices.hh"
#include "mem/backend.hh"
#include "mem/hotness_monitor.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

/** A small tiered configuration over the flat DDR3 baseline. */
SimConfig
tieredConfig(TierPolicy policy = TierPolicy::HotnessBased)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.tier.enabled = true;
    cfg.tier.policy = policy;
    cfg.tier.monitorSampleEvery = 1;
    cfg.tier.monitorWindowSamples = 256;
    cfg.warmupCoreCycles = 20'000;
    cfg.measureCoreCycles = 50'000;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------- monitor

TEST(HotnessMonitor, InitialRegionsCoverTheSpan)
{
    const Addr span = 1 << 20, grain = 1 << 12;
    MonitorConfig cfg;
    cfg.minRegions = 16;
    HotnessMonitor mon(span, grain, cfg);
    const auto &regions = mon.regions();
    ASSERT_EQ(regions.size(), 16u);
    EXPECT_EQ(regions.front().start, 0u);
    EXPECT_EQ(regions.back().end, span);
    for (std::size_t i = 1; i < regions.size(); ++i) {
        EXPECT_EQ(regions[i].start, regions[i - 1].end);
        EXPECT_EQ(regions[i].start % grain, 0u);
    }
}

TEST(HotnessMonitor, ZeroRegionSpanIsANoOp)
{
    // A span smaller than one grain yields no regions; record() must
    // never close a window and densityAt() reports 0.
    HotnessMonitor mon(/*span=*/16, /*grain=*/4096, MonitorConfig{});
    EXPECT_TRUE(mon.regions().empty());
    for (int i = 0; i < 100'000; ++i)
        EXPECT_FALSE(mon.record(0));
    EXPECT_EQ(mon.windowsClosed(), 0u);
    EXPECT_EQ(mon.densityAt(0), 0.0);
}

TEST(HotnessMonitor, SamplingCountsEveryNth)
{
    MonitorConfig cfg;
    cfg.sampleEvery = 4;
    cfg.windowSamples = 8;
    cfg.minRegions = 1;
    HotnessMonitor mon(1 << 16, 1 << 12, cfg);
    // The countdown starts armed, so accesses 1, 5, 9, ... are the
    // counted ones; the 8th counted sample is access 29, which closes
    // the window.
    for (int i = 0; i < 28; ++i)
        EXPECT_FALSE(mon.record(0)) << "access " << i;
    EXPECT_TRUE(mon.record(0));
    EXPECT_EQ(mon.regions().front().count, 8u);
    mon.closeWindow();
}

TEST(HotnessMonitor, HotRegionsSplitAndColdRegionsMerge)
{
    MonitorConfig cfg;
    cfg.sampleEvery = 1;
    cfg.windowSamples = 1024;
    cfg.minRegions = 4;
    cfg.maxRegions = 64;
    const Addr span = 1 << 20, grain = 1 << 12;
    HotnessMonitor mon(span, grain, cfg);
    const std::size_t initial = mon.regions().size();

    // Hammer one grain; everything else stays cold.
    for (int w = 0; w < 8; ++w) {
        bool closed = false;
        for (int i = 0; i < 1024 && !closed; ++i)
            closed = mon.record(grain / 2);
        ASSERT_TRUE(closed);
        mon.closeWindow();
    }
    // The hot end of the space splits into finer regions while the
    // uniform cold remainder merges, so the hot grain's region is
    // finer than an initial region.
    const auto &regions = mon.regions();
    ASSERT_GE(regions.size(), cfg.minRegions);
    ASSERT_LE(regions.size(), cfg.maxRegions);
    EXPECT_LT(regions.front().end - regions.front().start,
              span / initial);
    EXPECT_GT(mon.densityAt(grain / 2), mon.densityAt(span - 1));
}

TEST(HotnessMonitor, AgingHalvesCountsEachWindow)
{
    MonitorConfig cfg;
    cfg.sampleEvery = 1;
    cfg.windowSamples = 64;
    cfg.minRegions = 1;
    cfg.maxRegions = 1; // No splits: one region keeps the arithmetic plain.
    HotnessMonitor mon(1 << 16, 1 << 12, cfg);
    for (int i = 0; i < 63; ++i)
        mon.record(0);
    ASSERT_TRUE(mon.record(0));
    EXPECT_EQ(mon.regions().front().count, 64u);
    mon.closeWindow();
    EXPECT_EQ(mon.regions().front().count, 32u);
    mon.closeWindow();
    EXPECT_EQ(mon.regions().front().count, 16u);
}

// ---------------------------------------------------------------- backend

TEST(TieredBackend, FactoryComposesFastAndSlowTiers)
{
    SimConfig cfg = tieredConfig();
    cfg.dram.channels = 2;
    auto be = makeMemBackend(cfg, cfg.numCores);
    ASSERT_TRUE(be);
    EXPECT_EQ(be->kind(), MemBackendKind::Tiered);
    // 2 fast channels + 2 slow channels.
    EXPECT_EQ(be->numQueues(), 4u);
    // 50% fast share: the address space is twice the fast capacity.
    EXPECT_EQ(be->capacityBytes(), 2 * cfg.dram.capacityBytes());
}

TEST(TieredBackend, StackedFastTierComposes)
{
    SimConfig cfg = tieredConfig();
    cfg.applyDevice(dramDeviceOrDie("HMC2-8GB"));
    cfg.setVaults(4);
    auto be = makeMemBackend(cfg, cfg.numCores);
    ASSERT_TRUE(be);
    EXPECT_EQ(be->kind(), MemBackendKind::Tiered);
    // 4 vault queues + 1 slow channel per stack.
    EXPECT_EQ(be->numQueues(), 5u);
}

TEST(TieredBackend, StaticSplitSpreadsFastTilesAndNeverMigrates)
{
    SimConfig cfg = tieredConfig(TierPolicy::StaticSplit);
    auto be = makeMemBackend(cfg, cfg.numCores);
    const std::uint32_t fastQueues = cfg.dram.channels;

    // A well-spread probe wave (odd-constant multiply is a bijection
    // mod the power-of-two capacity) must see both tiers, stamp no
    // migration delay, and route every address identically on repeat.
    std::uint64_t fastSeen = 0, slowSeen = 0;
    for (std::uint64_t i = 0; i < 4096; ++i) {
        Request req;
        req.addr = (i * 0x9E3779B97F4A7C15ull) % be->capacityBytes();
        be->route(req, Tick{});
        ASSERT_LT(req.coord.channel, be->numQueues());
        EXPECT_EQ(req.availableAt, Tick{});
        ++(req.coord.channel < fastQueues ? fastSeen : slowSeen);

        Request again;
        again.addr = req.addr;
        be->route(again, Tick{});
        EXPECT_EQ(again.coord.channel, req.coord.channel);
        EXPECT_EQ(again.coord.bank, req.coord.bank);
    }
    // A 50% share splits the wave roughly in half.
    EXPECT_GT(fastSeen, 4096u / 4);
    EXPECT_GT(slowSeen, 4096u / 4);

    MetricSet m;
    be->collect(m, Tick{});
    EXPECT_EQ(m.tierMigrations, 0u);
    EXPECT_EQ(m.tierMigratedRows, 0u);
    EXPECT_GT(m.fastTierHitPct, 0.0);
    EXPECT_LT(m.fastTierHitPct, 100.0);
}

TEST(TieredBackend, HotnessPolicyPromotesAHammeredSlowTile)
{
    SimConfig cfg = tieredConfig(TierPolicy::HotnessBased);
    auto be = makeMemBackend(cfg, cfg.numCores);
    const std::uint32_t fastQueues = cfg.dram.channels;

    // Find a slow-resident address by probing a well-spread wave.
    Addr hot = 0;
    for (std::uint64_t i = 1; i < 4096 && !hot; ++i) {
        Request probe;
        probe.addr = (i * 0x9E3779B97F4A7C15ull) % be->capacityBytes();
        be->route(probe, Tick{});
        if (probe.coord.channel >= fastQueues)
            hot = probe.addr;
    }
    ASSERT_NE(hot, 0u) << "no slow-resident address found";

    // Hammer it; sprinkle a little background traffic over the rest of
    // the space so the cold fast end exists.
    bool promoted = false, sawMigrationDelay = false;
    for (std::uint64_t i = 0; i < 200'000 && !promoted; ++i) {
        Request req;
        req.addr = (i % 8 == 0) ? (i * 0x9E3779B97F4A7C15ull) %
                                      be->capacityBytes()
                                : hot;
        be->route(req, Tick{});
        if (req.availableAt > Tick{})
            sawMigrationDelay = true;
        if (req.addr == hot && req.coord.channel < fastQueues)
            promoted = true;
    }
    EXPECT_TRUE(promoted) << "hot slow tile never moved to the fast tier";
    EXPECT_TRUE(sawMigrationDelay)
        << "no routed request was charged the tile-copy delay";
    MetricSet m;
    be->collect(m, Tick{});
    EXPECT_GE(m.tierMigrations, 1u);
    EXPECT_GT(m.tierMigratedRows, 0u);
}

TEST(TieredBackend, AlloyCacheFillsOnMissAndHitsAfter)
{
    SimConfig cfg = tieredConfig(TierPolicy::AlloyCache);
    auto be = makeMemBackend(cfg, cfg.numCores);
    const std::uint32_t fastQueues = cfg.dram.channels;

    Request miss;
    miss.addr = cfg.dram.capacityBytes() + 64; // Beyond any warm tag.
    be->route(miss, Tick{});
    EXPECT_GE(miss.coord.channel, fastQueues) << "first touch must miss";

    Request hit;
    hit.addr = miss.addr;
    be->route(hit, Tick{});
    EXPECT_LT(hit.coord.channel, fastQueues) << "second touch must hit";
    // The hit lands while the fill is still in flight, so it waits.
    EXPECT_GT(hit.availableAt, Tick{});

    MetricSet m;
    be->collect(m, Tick{});
    EXPECT_GE(m.tierMigrations, 1u);
}

TEST(TieredBackend, RoutingIsDeterministic)
{
    for (TierPolicy p : {TierPolicy::StaticSplit, TierPolicy::HotnessBased,
                         TierPolicy::AlloyCache}) {
        SimConfig cfg = tieredConfig(p);
        auto a = makeMemBackend(cfg, cfg.numCores);
        auto b = makeMemBackend(cfg, cfg.numCores);
        for (std::uint64_t i = 0; i < 4096; ++i) {
            const Addr addr = ((i % 2 ? 0 : i * 7919) * cfg.dram.blockBytes) %
                              a->capacityBytes();
            Request ra, rb;
            ra.addr = rb.addr = addr;
            a->route(ra, Tick{});
            b->route(rb, Tick{});
            ASSERT_EQ(ra.coord.channel, rb.coord.channel)
                << tierPolicyName(p) << " request " << i;
            ASSERT_EQ(ra.coord.bank, rb.coord.bank)
                << tierPolicyName(p) << " request " << i;
            ASSERT_EQ(ra.availableAt, rb.availableAt)
                << tierPolicyName(p) << " request " << i;
        }
    }
}

TEST(TieredBackend, RunAgreesAcrossAllKernels)
{
    // End-to-end: a tiered system (hotness policy, small windows so
    // migrations actually fire) produces bit-identical metrics under
    // the reference loop, the event kernel, and the parallel kernel.
    SimConfig cfg = tieredConfig(TierPolicy::HotnessBased);
    cfg.dram.channels = 2;

    const auto runOnce = [&](bool reference, std::uint32_t threads) {
        SimConfig c = cfg;
        c.kernelThreads = threads;
        System sys(c, workloadPreset(WorkloadId::WS));
        sys.useReferenceKernel(reference);
        return sys.run();
    };
    const MetricSet ref = runOnce(true, 1);
    const MetricSet ev = runOnce(false, 1);
    const MetricSet par = runOnce(false, 4);

    for (const MetricSet *m : {&ev, &par}) {
        EXPECT_EQ(m->committedInstructions, ref.committedInstructions);
        EXPECT_EQ(m->memReads, ref.memReads);
        EXPECT_EQ(m->memWrites, ref.memWrites);
        EXPECT_EQ(m->userIpc, ref.userIpc);
        EXPECT_EQ(m->avgReadLatency, ref.avgReadLatency);
        EXPECT_EQ(m->bwUtilPct, ref.bwUtilPct);
        EXPECT_EQ(m->dramEnergyNj, ref.dramEnergyNj);
        EXPECT_EQ(m->fastTierHitPct, ref.fastTierHitPct);
        EXPECT_EQ(m->slowTierReadLatencyP99, ref.slowTierReadLatencyP99);
        EXPECT_EQ(m->tierMigrations, ref.tierMigrations);
        EXPECT_EQ(m->tierMigratedRows, ref.tierMigratedRows);
    }
    EXPECT_GT(ref.memReads, 0u);
    EXPECT_GT(ref.fastTierHitPct, 0.0);
}

// ------------------------------------------------------- collect() edges

TEST(TieredBackend, CollectIsIdempotent)
{
    SimConfig cfg = tieredConfig(TierPolicy::HotnessBased);
    System sys(cfg, workloadPreset(WorkloadId::DS));
    const MetricSet once = sys.run();
    EXPECT_GT(once.memReads, 0u);
    EXPECT_GT(once.fastTierHitPct, 0.0);
    EXPECT_GT(once.slowTierReadLatencyP99, 0.0);
}

TEST(TieredBackend, FullFastCapacityReportsZeroSlowTail)
{
    // 100% fast share: no slow tile exists, so the slow tier serves
    // nothing and its p99 (an empty histogram's percentile) is 0 while
    // the hit fraction is exactly 100.
    SimConfig cfg = tieredConfig(TierPolicy::HotnessBased);
    cfg.tier.fastCapacityPct = 100;
    System sys(cfg, workloadPreset(WorkloadId::DS));
    const MetricSet m = sys.run();
    EXPECT_GT(m.memReads, 0u);
    EXPECT_EQ(m.fastTierHitPct, 100.0);
    EXPECT_EQ(m.slowTierReadLatencyP99, 0.0);
    EXPECT_EQ(m.tierMigrations, 0u);
}

TEST(TieredBackend, CollectWithNoTrafficReportsZeros)
{
    // The zero-routed-accesses edge: no division blows up and every
    // ratio reports 0.
    SimConfig cfg = tieredConfig(TierPolicy::HotnessBased);
    auto be = makeMemBackend(cfg, cfg.numCores);
    MetricSet m;
    be->collect(m, Tick{});
    EXPECT_EQ(m.fastTierHitPct, 0.0);
    EXPECT_EQ(m.slowTierReadLatencyP99, 0.0);
    EXPECT_EQ(m.tierMigrations, 0u);
    EXPECT_EQ(m.tierMigratedRows, 0u);
}

TEST(Backend, StackedCollectTwiceIsIdentical)
{
    // Regression: StackedDramBackend::collect used to append to
    // perVaultReadQueue without clearing and accumulate energy and the
    // remap counters, so a second collect() on the same MetricSet
    // duplicated every vault entry and doubled the sums.
    SimConfig cfg = SimConfig::baseline();
    cfg.applyDevice(dramDeviceOrDie("HMC2-8GB"));
    cfg.setVaults(4);
    cfg.remap.enabled = true;
    cfg.remap.windowAccesses = 64;
    cfg.remap.hotFactor = 2.0;
    auto be = makeMemBackend(cfg, cfg.numCores);
    for (int i = 0; i < 200; ++i) {
        Request req;
        req.addr = 0; // Hammer one slot so a migration fires.
        be->route(req, Tick{});
    }

    MetricSet twice, once;
    be->collect(twice, Tick{});
    be->collect(twice, Tick{}); // Must be a no-op repeat.
    be->collect(once, Tick{});
    ASSERT_GE(once.remapMigrations, 1u);
    EXPECT_EQ(twice.remapMigrations, once.remapMigrations);
    EXPECT_EQ(twice.remapMigratedRows, once.remapMigratedRows);
    EXPECT_EQ(twice.dramEnergyNj, once.dramEnergyNj);
    EXPECT_EQ(twice.vaultQueueImbalance, once.vaultQueueImbalance);
    ASSERT_EQ(twice.perVaultReadQueue.size(), once.perVaultReadQueue.size());
    for (std::size_t i = 0; i < once.perVaultReadQueue.size(); ++i)
        EXPECT_EQ(twice.perVaultReadQueue[i], once.perVaultReadQueue[i]);
}

TEST(Backend, FlatAndTieredCollectTwiceIsIdentical)
{
    for (const bool tiered : {false, true}) {
        SimConfig cfg = SimConfig::baseline();
        cfg.tier.enabled = tiered;
        auto be = makeMemBackend(cfg, cfg.numCores);
        for (std::uint64_t i = 0; i < 512; ++i) {
            Request req;
            req.addr = (i * 7919 * cfg.dram.blockBytes) %
                       be->capacityBytes();
            be->route(req, Tick{});
        }
        MetricSet twice, once;
        be->collect(twice, Tick{});
        be->collect(twice, Tick{});
        be->collect(once, Tick{});
        EXPECT_EQ(twice.dramEnergyNj, once.dramEnergyNj);
        EXPECT_EQ(twice.bwUtilPct, once.bwUtilPct);
        EXPECT_EQ(twice.fastTierHitPct, once.fastTierHitPct);
        EXPECT_EQ(twice.tierMigrations, once.tierMigrations);
        EXPECT_EQ(twice.perVaultReadQueue.size(),
                  once.perVaultReadQueue.size());
    }
}
