/**
 * @file
 * Experiment harness robustness: the on-disk results cache must
 * survive corruption, format drift and concurrent-ish appends without
 * ever returning garbage — a corrupt row re-simulates, it never
 * poisons a figure.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/synthetic.hh"

using namespace mcsim;

namespace {

std::string
tempCachePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/cloudmc_expcache_" +
           tag + ".csv";
}

SimConfig
tinyConfig()
{
    SimConfig cfg = SimConfig::baseline();
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 100'000;
    return cfg;
}

} // namespace

TEST(ExperimentCache, CorruptLinesAreIgnored)
{
    const std::string path = tempCachePath("corrupt");
    {
        std::ofstream out(path);
        out << "not a csv line at all\n";
        out << "key-without-values,\n";
        out << "half,1.0,2.0\n";
        out << "\n";
    }
    ExperimentRunner runner(path);
    const MetricSet m = runner.run(WorkloadId::WS, tinyConfig());
    // The corrupt rows never match; a real simulation ran.
    EXPECT_EQ(runner.simulationsRun(), 1u);
    EXPECT_EQ(runner.cacheHits(), 0u);
    EXPECT_GT(m.userIpc, 0.0);
    std::remove(path.c_str());
}

TEST(ExperimentCache, OldFormatRowsResimulate)
{
    // A row with the key of a current configuration but too few value
    // fields (a pre-energy-model cache) must be dropped, not half-read.
    const std::string path = tempCachePath("oldformat");
    const SimConfig cfg = tinyConfig();
    const std::string key = ExperimentRunner::configKey(WorkloadId::WS, cfg);
    {
        std::ofstream out(path);
        out << key << ",1.5,100,30,5,1,10,20,80,1000,2000,30,40\n";
    }
    ExperimentRunner runner(path);
    (void)runner.run(WorkloadId::WS, cfg);
    EXPECT_EQ(runner.simulationsRun(), 1u);
    std::remove(path.c_str());
}

TEST(ExperimentCache, EnergyFieldsRoundtrip)
{
    const std::string path = tempCachePath("energy");
    std::remove(path.c_str());
    const SimConfig cfg = tinyConfig();
    MetricSet fresh;
    {
        ExperimentRunner runner(path);
        fresh = runner.run(WorkloadId::MS, cfg);
        EXPECT_GT(fresh.dramEnergyNj, 0.0);
        EXPECT_GT(fresh.dramAvgPowerMw, 0.0);
        EXPECT_GT(fresh.ipcDisparity, 0.0);
        EXPECT_LE(fresh.ipcDisparity, 1.0);
    }
    {
        ExperimentRunner runner(path);
        const MetricSet cached = runner.run(WorkloadId::MS, cfg);
        EXPECT_EQ(runner.simulationsRun(), 0u);
        // The CSV stores ~6 significant digits; compare relatively.
        EXPECT_NEAR(cached.dramEnergyNj, fresh.dramEnergyNj,
                    1e-5 * fresh.dramEnergyNj);
        EXPECT_NEAR(cached.dramAvgPowerMw, fresh.dramAvgPowerMw,
                    1e-5 * fresh.dramAvgPowerMw);
        EXPECT_NEAR(cached.ipcDisparity, fresh.ipcDisparity, 1e-5);
    }
    std::remove(path.c_str());
}

TEST(ExperimentCache, LatencyPercentilesRoundtrip)
{
    // Schema v2 persists the read-latency percentiles; a reloaded
    // entry must carry them instead of silently reporting 0.
    const std::string path = tempCachePath("percentiles");
    std::remove(path.c_str());
    const SimConfig cfg = tinyConfig();
    MetricSet fresh;
    {
        ExperimentRunner runner(path);
        fresh = runner.run(WorkloadId::DS, cfg);
        EXPECT_GT(fresh.readLatencyP50, 0.0);
        EXPECT_GE(fresh.readLatencyP95, fresh.readLatencyP50);
        EXPECT_GE(fresh.readLatencyP99, fresh.readLatencyP95);
    }
    {
        ExperimentRunner runner(path);
        const MetricSet cached = runner.run(WorkloadId::DS, cfg);
        EXPECT_EQ(runner.simulationsRun(), 0u);
        EXPECT_NEAR(cached.readLatencyP50, fresh.readLatencyP50,
                    1e-5 * fresh.readLatencyP50);
        EXPECT_NEAR(cached.readLatencyP95, fresh.readLatencyP95,
                    1e-5 * fresh.readLatencyP95);
        EXPECT_NEAR(cached.readLatencyP99, fresh.readLatencyP99,
                    1e-5 * fresh.readLatencyP99);
    }
    std::remove(path.c_str());
}

TEST(ExperimentCache, V1RowsStillLoadWithZeroPercentiles)
{
    // Pre-percentile (15-field) rows remain valid cache entries; only
    // the percentile fields default to 0.
    const std::string path = tempCachePath("v1row");
    const SimConfig cfg = tinyConfig();
    const std::string key =
        ExperimentRunner::configKey(WorkloadId::WS, cfg);
    {
        std::ofstream out(path);
        out << key
            << ",1.5,100,30,5,1,2,10,20,1000,2000,30,40,0.9,5000,120\n";
    }
    ExperimentRunner runner(path);
    const MetricSet m = runner.run(WorkloadId::WS, cfg);
    EXPECT_EQ(runner.simulationsRun(), 0u);
    EXPECT_EQ(runner.cacheHits(), 1u);
    EXPECT_DOUBLE_EQ(m.userIpc, 1.5);
    EXPECT_DOUBLE_EQ(m.dramAvgPowerMw, 120.0);
    EXPECT_DOUBLE_EQ(m.readLatencyP50, 0.0);
    EXPECT_DOUBLE_EQ(m.readLatencyP95, 0.0);
    EXPECT_DOUBLE_EQ(m.readLatencyP99, 0.0);
    std::remove(path.c_str());
}

TEST(ExperimentParallel, CustomGeneratorPointsRunUncached)
{
    // Custom-generator points (mixed workloads) go through the same
    // batch machinery; with an empty customKey they are never
    // memoized, and their results match a direct System run. The
    // runner scales windows by CLOUDMC_FAST but the direct System
    // does not, so pin the divisor for the comparison.
    const char *fastEnv = std::getenv("CLOUDMC_FAST");
    const std::string savedFast = fastEnv ? fastEnv : "";
    unsetenv("CLOUDMC_FAST");

    ExperimentRunner runner("-");
    ExperimentRunner::Point p;
    p.cfg = tinyConfig();
    p.makeGenerator = [] {
        return std::make_unique<SyntheticWorkload>(
            workloadPreset(WorkloadId::WS), 8ull << 30);
    };
    p.customCores = workloadPreset(WorkloadId::WS).cores;
    const auto batch =
        runner.runAll({p, p}, 2); // Same point twice: both simulate.
    EXPECT_EQ(runner.simulationsRun(), 2u);
    EXPECT_EQ(runner.cacheHits(), 0u);

    SimConfig cfg = tinyConfig();
    SyntheticWorkload gen(workloadPreset(WorkloadId::WS), 8ull << 30);
    System direct(cfg, gen, p.customCores);
    const MetricSet md = direct.run();
    EXPECT_EQ(batch[0].committedInstructions, md.committedInstructions);
    EXPECT_EQ(batch[0].memReads, md.memReads);
    EXPECT_EQ(batch[1].committedInstructions, md.committedInstructions);

    if (!savedFast.empty())
        setenv("CLOUDMC_FAST", savedFast.c_str(), 1);
}

TEST(ExperimentCache, MissingFileStartsEmpty)
{
    const std::string path = tempCachePath("missing");
    std::remove(path.c_str());
    ExperimentRunner runner(path);
    EXPECT_EQ(runner.cacheHits(), 0u);
    EXPECT_EQ(runner.simulationsRun(), 0u);
}

namespace {

/** Field-by-field equality, including the per-core vector. */
void
expectIdentical(const MetricSet &a, const MetricSet &b)
{
    EXPECT_EQ(a.userIpc, b.userIpc);
    EXPECT_EQ(a.avgReadLatency, b.avgReadLatency);
    EXPECT_EQ(a.readLatencyP50, b.readLatencyP50);
    EXPECT_EQ(a.readLatencyP95, b.readLatencyP95);
    EXPECT_EQ(a.readLatencyP99, b.readLatencyP99);
    EXPECT_EQ(a.rowHitRatePct, b.rowHitRatePct);
    EXPECT_EQ(a.l2Mpki, b.l2Mpki);
    EXPECT_EQ(a.avgReadQueue, b.avgReadQueue);
    EXPECT_EQ(a.avgWriteQueue, b.avgWriteQueue);
    EXPECT_EQ(a.bwUtilPct, b.bwUtilPct);
    EXPECT_EQ(a.singleAccessPct, b.singleAccessPct);
    EXPECT_EQ(a.perCoreIpc, b.perCoreIpc);
    EXPECT_EQ(a.ipcDisparity, b.ipcDisparity);
    EXPECT_EQ(a.dramEnergyNj, b.dramEnergyNj);
    EXPECT_EQ(a.dramAvgPowerMw, b.dramAvgPowerMw);
    EXPECT_EQ(a.committedInstructions, b.committedInstructions);
    EXPECT_EQ(a.measuredCycles, b.measuredCycles);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWrites, b.memWrites);
}

/** A 2-scheduler x 2-workload sweep of tiny simulation points. */
std::vector<ExperimentRunner::Point>
tinySweep()
{
    std::vector<ExperimentRunner::Point> points;
    for (auto kind : {SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks}) {
        for (auto wl : {WorkloadId::WS, WorkloadId::TPCC1}) {
            SimConfig cfg = tinyConfig();
            cfg.scheduler = kind;
            ExperimentRunner::Point p;
            p.workload = wl;
            p.cfg = cfg;
            points.push_back(std::move(p));
        }
    }
    return points;
}

} // namespace

TEST(ExperimentParallel, RunAllMatchesSerialLoop)
{
    const auto points = tinySweep();

    // Serial reference: independent runner, caching disabled so every
    // point actually simulates.
    ExperimentRunner serial("-");
    std::vector<MetricSet> expected;
    for (const auto &p : points)
        expected.push_back(serial.run(p.workload, p.cfg));

    ExperimentRunner parallel("-");
    const auto got = parallel.runAll(points, 4);

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(got[i], expected[i]);
    }
    EXPECT_EQ(parallel.simulationsRun(), points.size());
    EXPECT_EQ(parallel.cacheHits(), 0u);
}

TEST(ExperimentParallel, CountersConsistentUnderConcurrency)
{
    const std::string path = tempCachePath("parallel");
    std::remove(path.c_str());

    const auto sweep = tinySweep();
    // Submit each point twice in one batch: 4 unique simulations, 4
    // duplicate references that must resolve as cache hits — exactly
    // what a serial run() loop over the same list would count.
    std::vector<ExperimentRunner::Point> points = sweep;
    points.insert(points.end(), sweep.begin(), sweep.end());

    {
        ExperimentRunner runner(path);
        const auto got = runner.runAll(points, 4);
        ASSERT_EQ(got.size(), points.size());
        EXPECT_EQ(runner.simulationsRun(), sweep.size());
        EXPECT_EQ(runner.cacheHits(), sweep.size());
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            SCOPED_TRACE(i);
            expectIdentical(got[i], got[i + sweep.size()]);
        }
    }

    // A fresh runner replays the whole batch from the on-disk cache.
    {
        ExperimentRunner runner(path);
        const auto got = runner.runAll(points, 4);
        EXPECT_EQ(runner.simulationsRun(), 0u);
        EXPECT_EQ(runner.cacheHits(), points.size());
        ASSERT_EQ(got.size(), points.size());
        for (const auto &m : got)
            EXPECT_GT(m.userIpc, 0.0);
    }
    std::remove(path.c_str());
}

TEST(ExperimentParallel, CacheFileHasNoPartialLines)
{
    const std::string path = tempCachePath("lines");
    std::remove(path.c_str());
    {
        ExperimentRunner runner(path);
        (void)runner.runAll(tinySweep(), 4);
    }
    // Every record must parse back; a fresh runner recalls all four.
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::size_t lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_NE(line.find(','), std::string::npos);
    }
    EXPECT_EQ(lines, 4u);

    ExperimentRunner runner(path);
    (void)runner.runAll(tinySweep(), 2);
    EXPECT_EQ(runner.simulationsRun(), 0u);
    EXPECT_EQ(runner.cacheHits(), 4u);
    std::remove(path.c_str());
}

TEST(ExperimentParallel, SingleThreadAndZeroThreadsStillWork)
{
    const auto points = tinySweep();
    ExperimentRunner one("-");
    const auto a = one.runAll(points, 1);
    ExperimentRunner zero("-");
    const auto b = zero.runAll(points, 0);
    ASSERT_EQ(a.size(), points.size());
    ASSERT_EQ(b.size(), points.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(a[i], b[i]);
    }
}

TEST(ExperimentCache, KeyEncodesEveryStudiedDimension)
{
    // Beyond the basic distinctions (covered in test_system.cc), the
    // key must separate the extension dimensions too.
    const SimConfig a = SimConfig::baseline();
    SimConfig tcm = a;
    tcm.scheduler = SchedulerKind::Tcm;
    SimConfig hist = a;
    hist.pagePolicy = PagePolicyKind::History;
    SimConfig perm = a;
    perm.mapping = MappingScheme::PermBaXor;
    const auto ka = ExperimentRunner::configKey(WorkloadId::DS, a);
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::DS, tcm));
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::DS, hist));
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::DS, perm));
}

TEST(ExperimentCache, KeyFingerprintsFullParameterSet)
{
    // Regression: the old key carried only the ATLAS quantum, so
    // sweeps over any other scheduler/controller tunable aliased to
    // one cached row and silently returned stale metrics.
    const SimConfig base = SimConfig::baseline();
    const auto kb = ExperimentRunner::configKey(WorkloadId::DS, base);

    SimConfig stfmAlpha = base;
    stfmAlpha.schedulerParams.stfm.alpha = 2.0;
    SimConfig tcmCluster = base;
    tcmCluster.schedulerParams.tcm.clusterFrac = 0.35;
    SimConfig tcmQuantum = base;
    tcmQuantum.schedulerParams.tcm.quantumCycles = 200'000;
    SimConfig rlEpsilon = base;
    rlEpsilon.schedulerParams.rl.epsilon = 0.2;
    SimConfig parbsCap = base;
    parbsCap.schedulerParams.parBs.batchingCap = 9;
    SimConfig drain = base;
    drain.controller.writeDrainHigh = 32;
    SimConfig refreshOff = base;
    refreshOff.refreshEnabled = false;
    SimConfig xbar = base;
    xbar.xbarLatencyCycles = 8;
    SimConfig ranks = base;
    ranks.dram.ranksPerChannel = 1;

    for (const SimConfig *cfg :
         {&stfmAlpha, &tcmCluster, &tcmQuantum, &rlEpsilon, &parbsCap,
          &drain, &refreshOff, &xbar, &ranks}) {
        EXPECT_NE(kb, ExperimentRunner::configKey(WorkloadId::DS, *cfg));
    }
    // And the fingerprint is stable: same parameters, same key.
    EXPECT_EQ(kb, ExperimentRunner::configKey(WorkloadId::DS,
                                              SimConfig::baseline()));
}

TEST(ExperimentCache, PreParamsHashKeysMigrateToBaselineRow)
{
    // Schema v1-v3 keys lack the trailing parameter-hash segment; on
    // load they migrate to the baseline parameter set's fingerprint
    // (the only set the old benches could cache unambiguously) and
    // still satisfy a baseline-parameter lookup — but never one with
    // tuned parameters.
    const std::string path = tempCachePath("paramsmigrate");
    const SimConfig cfg = tinyConfig();
    std::string key = ExperimentRunner::configKey(WorkloadId::WS, cfg);
    const std::size_t tag = key.rfind("|p");
    ASSERT_NE(tag, std::string::npos);
    key.resize(tag); // Strip the v4 segment: a v3-format key.
    {
        std::ofstream out(path);
        out << key
            << ",1.5,100,30,5,1,2,10,20,1000,2000,30,40,0.9,5000,120,"
               "55,77,99\n";
    }
    ExperimentRunner runner(path);
    const MetricSet hit = runner.run(WorkloadId::WS, cfg);
    EXPECT_EQ(runner.simulationsRun(), 0u);
    EXPECT_EQ(runner.cacheHits(), 1u);
    EXPECT_DOUBLE_EQ(hit.userIpc, 1.5);
    EXPECT_DOUBLE_EQ(hit.readLatencyP99, 99.0);

    // Tuned parameters miss the migrated row and re-simulate.
    SimConfig tuned = cfg;
    tuned.schedulerParams.stfm.alpha = 5.0;
    (void)runner.run(WorkloadId::WS, tuned);
    EXPECT_EQ(runner.simulationsRun(), 1u);
    std::remove(path.c_str());
}

TEST(ExperimentCache, FairnessColumnsRoundtrip)
{
    // Schema v4 rows carry the fairness scalars and the per-core IPC /
    // slowdown lists; a reloaded entry must reproduce them.
    const std::string path = tempCachePath("v4roundtrip");
    std::remove(path.c_str());
    SimConfig cfg = tinyConfig();
    ExperimentRunner::Point p(WorkloadId::WS, cfg);
    ExperimentRunner::attachAloneBaseline(p);

    MetricSet fresh;
    {
        ExperimentRunner runner(path);
        fresh = runner.runAll({p}, 1).front();
        ASSERT_TRUE(fresh.hasFairness());
    }
    {
        ExperimentRunner runner(path);
        const MetricSet cached = runner.runAll({p}, 1).front();
        EXPECT_EQ(runner.simulationsRun(), 0u);
        ASSERT_EQ(cached.perCoreIpc.size(), fresh.perCoreIpc.size());
        ASSERT_EQ(cached.perCoreSlowdown.size(),
                  fresh.perCoreSlowdown.size());
        for (std::size_t c = 0; c < fresh.perCoreIpc.size(); ++c) {
            EXPECT_NEAR(cached.perCoreIpc[c], fresh.perCoreIpc[c],
                        1e-5 * fresh.perCoreIpc[c]);
            EXPECT_NEAR(cached.perCoreSlowdown[c],
                        fresh.perCoreSlowdown[c],
                        1e-5 * fresh.perCoreSlowdown[c]);
        }
        EXPECT_NEAR(cached.weightedSpeedup, fresh.weightedSpeedup,
                    1e-5 * fresh.weightedSpeedup);
        EXPECT_NEAR(cached.harmonicSpeedup, fresh.harmonicSpeedup,
                    1e-5 * fresh.harmonicSpeedup);
        EXPECT_NEAR(cached.maxSlowdown, fresh.maxSlowdown,
                    1e-5 * fresh.maxSlowdown);
    }
    std::remove(path.c_str());
}

TEST(ExperimentCache, KeySeparatesBankGroupAxes)
{
    // Schema v5: the bank-group count and the group-mapping option are
    // part of the key, so a grouped-timing run can never alias a row
    // simulated under the single-tCCD model or the other placement.
    const SimConfig base = SimConfig::baseline();
    SimConfig ddr4 = base;
    ddr4.applyDevice(dramDeviceOrDie("DDR4-2400"));
    SimConfig ddr4Packed = ddr4;
    ddr4Packed.bankGroupMapping = BankGroupMapping::GroupPacked;
    SimConfig ddr5 = base;
    ddr5.applyDevice(dramDeviceOrDie("DDR5-4800"));

    const auto kb = ExperimentRunner::configKey(WorkloadId::DS, base);
    const auto k4 = ExperimentRunner::configKey(WorkloadId::DS, ddr4);
    const auto k4p =
        ExperimentRunner::configKey(WorkloadId::DS, ddr4Packed);
    const auto k5 = ExperimentRunner::configKey(WorkloadId::DS, ddr5);
    EXPECT_NE(kb.find("|bg=1i"), std::string::npos) << kb;
    EXPECT_NE(k4.find("|bg=4i"), std::string::npos) << k4;
    EXPECT_NE(k4p.find("|bg=4p"), std::string::npos) << k4p;
    EXPECT_NE(k5.find("|bg=8i"), std::string::npos) << k5;
    EXPECT_NE(k4, k4p);

    // On a single-group device the two placements are the same
    // physical layout; the key normalizes so they share one row.
    SimConfig basePacked = base;
    basePacked.bankGroupMapping = BankGroupMapping::GroupPacked;
    EXPECT_EQ(kb, ExperimentRunner::configKey(WorkloadId::DS,
                                              basePacked));
}

TEST(ExperimentCache, V4KeysMigrateToSingleGroupFingerprint)
{
    // A v4-format row — key with device + params-hash segments but no
    // bank-group segment, 23 value columns — must load, satisfy a
    // baseline (single-group) lookup with sameGroupCasPct zeroed, and
    // never satisfy a grouped-device lookup.
    const std::string path = tempCachePath("v4migrate");
    const SimConfig cfg = tinyConfig();
    std::string key = ExperimentRunner::configKey(WorkloadId::WS, cfg);
    const std::size_t bg = key.find("|bg=1i");
    ASSERT_NE(bg, std::string::npos);
    key.erase(bg, 6); // Strip the v5 segment...
    const std::size_t be = key.find("|be=flat");
    ASSERT_NE(be, std::string::npos);
    key.erase(be, 8); // ...and the v6 segment: a v4-format key.
    {
        std::ofstream out(path);
        out << key
            << ",1.5,100,30,5,1,2,10,20,1000,2000,30,40,0.9,5000,120,"
               "55,77,99,1.1,1.2,1.3,,\n";
    }
    ExperimentRunner runner(path);
    const MetricSet hit = runner.run(WorkloadId::WS, cfg);
    EXPECT_EQ(runner.simulationsRun(), 0u);
    EXPECT_EQ(runner.cacheHits(), 1u);
    EXPECT_DOUBLE_EQ(hit.userIpc, 1.5);
    EXPECT_DOUBLE_EQ(hit.weightedSpeedup, 1.1);
    EXPECT_DOUBLE_EQ(hit.sameGroupCasPct, 0.0); // Pre-v5 column.

    // The same point on a grouped device misses and re-simulates.
    SimConfig ddr4 = cfg;
    ddr4.applyDevice(dramDeviceOrDie("DDR4-2400"));
    (void)runner.run(WorkloadId::WS, ddr4);
    EXPECT_EQ(runner.simulationsRun(), 1u);
    std::remove(path.c_str());
}

TEST(ExperimentCache, SameGroupCasColumnRoundtrips)
{
    // Schema v5 rows persist sameGroupCasPct; a reloaded entry must
    // reproduce it (single-group baseline: every CAS follows a CAS in
    // the only group, so the value is large and nonzero).
    const std::string path = tempCachePath("v5roundtrip");
    std::remove(path.c_str());
    const SimConfig cfg = tinyConfig();
    MetricSet fresh;
    {
        ExperimentRunner runner(path);
        fresh = runner.run(WorkloadId::WS, cfg);
        EXPECT_GT(fresh.sameGroupCasPct, 0.0);
    }
    {
        ExperimentRunner runner(path);
        const MetricSet cached = runner.run(WorkloadId::WS, cfg);
        EXPECT_EQ(runner.simulationsRun(), 0u);
        EXPECT_NEAR(cached.sameGroupCasPct, fresh.sameGroupCasPct,
                    1e-4 * fresh.sameGroupCasPct);
    }
    std::remove(path.c_str());
}

TEST(ExperimentCache, KeySeparatesBackends)
{
    // Schema v6: the memory backend (and, stacked, the vault geometry
    // plus the remap flag) is part of the key, so a stacked-backend
    // run can never alias a row simulated under the flat JEDEC model.
    const SimConfig base = SimConfig::baseline();
    SimConfig hmc = base;
    hmc.applyDevice(dramDeviceOrDie("HMC2-8GB"));
    SimConfig hmc8 = hmc;
    hmc8.setVaults(8);
    SimConfig hmcRemap = hmc;
    hmcRemap.remap.enabled = true;

    const auto kb = ExperimentRunner::configKey(WorkloadId::DS, base);
    const auto kh = ExperimentRunner::configKey(WorkloadId::DS, hmc);
    const auto k8 = ExperimentRunner::configKey(WorkloadId::DS, hmc8);
    const auto kr =
        ExperimentRunner::configKey(WorkloadId::DS, hmcRemap);
    EXPECT_NE(kb.find("|be=flat"), std::string::npos) << kb;
    EXPECT_NE(kh.find("|be=st16v8b|"), std::string::npos) << kh;
    EXPECT_NE(k8.find("|be=st8v8b|"), std::string::npos) << k8;
    EXPECT_NE(kr.find("|be=st16v8br|"), std::string::npos) << kr;
    EXPECT_NE(kh, k8);
    EXPECT_NE(kh, kr);

    // Remap *tuning* changes the parameter hash even though the
    // readable segment only carries the on/off flag.
    SimConfig tuned = hmcRemap;
    tuned.remap.hotFactor = 8.0;
    EXPECT_NE(kr, ExperimentRunner::configKey(WorkloadId::DS, tuned));
    // And the remap knobs are hashed only on the stacked backend, so
    // flat keys are byte-identical whatever the dormant struct holds.
    SimConfig flatTuned = base;
    flatTuned.remap.hotFactor = 8.0;
    EXPECT_EQ(kb, ExperimentRunner::configKey(WorkloadId::DS, flatTuned));
}

TEST(ExperimentCache, V5KeysMigrateToFlatFingerprint)
{
    // A v5-format row — key without the backend segment, 24 value
    // columns — must load, satisfy a flat-backend lookup with the
    // stacked columns zeroed, and never satisfy a stacked lookup.
    const std::string path = tempCachePath("v5migrate");
    const SimConfig cfg = tinyConfig();
    std::string key = ExperimentRunner::configKey(WorkloadId::WS, cfg);
    const std::size_t be = key.find("|be=flat");
    ASSERT_NE(be, std::string::npos);
    key.erase(be, 8); // Strip the v6 segment: a v5-format key.
    {
        std::ofstream out(path);
        out << key
            << ",1.5,100,30,5,1,2,10,20,1000,2000,30,40,0.9,5000,120,"
               "55,77,99,1.1,1.2,1.3,,,42.5\n";
    }
    ExperimentRunner runner(path);
    const MetricSet hit = runner.run(WorkloadId::WS, cfg);
    EXPECT_EQ(runner.simulationsRun(), 0u);
    EXPECT_EQ(runner.cacheHits(), 1u);
    EXPECT_DOUBLE_EQ(hit.userIpc, 1.5);
    EXPECT_DOUBLE_EQ(hit.sameGroupCasPct, 42.5);
    // Pre-v6 columns default to empty/zero.
    EXPECT_TRUE(hit.perVaultReadQueue.empty());
    EXPECT_EQ(hit.remapMigrations, 0u);
    EXPECT_DOUBLE_EQ(hit.vaultQueueImbalance, 0.0);

    // The same point on the stacked backend misses and re-simulates.
    SimConfig hmc = cfg;
    hmc.applyDevice(dramDeviceOrDie("HMC2-8GB"));
    hmc.setVaults(4);
    (void)runner.run(WorkloadId::WS, hmc);
    EXPECT_EQ(runner.simulationsRun(), 1u);
    std::remove(path.c_str());
}

TEST(ExperimentCache, StackedColumnsRoundtrip)
{
    // Schema v6 rows persist the per-vault occupancy list, the
    // imbalance scalar and the remap counters; a reloaded stacked row
    // must reproduce all of them.
    const std::string path = tempCachePath("v6roundtrip");
    std::remove(path.c_str());
    SimConfig cfg = tinyConfig();
    cfg.applyDevice(dramDeviceOrDie("HMC2-8GB"));
    cfg.setVaults(4);
    cfg.remap.enabled = true;
    cfg.remap.windowAccesses = 256; // Migrate within the tiny window.
    MetricSet fresh;
    {
        ExperimentRunner runner(path);
        fresh = runner.run(WorkloadId::WS, cfg);
        EXPECT_EQ(fresh.perVaultReadQueue.size(), 4u);
        EXPECT_GT(fresh.vaultQueueImbalance, 0.0);
    }
    {
        ExperimentRunner runner(path);
        const MetricSet cached = runner.run(WorkloadId::WS, cfg);
        EXPECT_EQ(runner.simulationsRun(), 0u);
        EXPECT_EQ(runner.cacheHits(), 1u);
        EXPECT_NEAR(cached.vaultQueueImbalance, fresh.vaultQueueImbalance,
                    1e-5 * fresh.vaultQueueImbalance);
        EXPECT_EQ(cached.remapMigrations, fresh.remapMigrations);
        EXPECT_EQ(cached.remapMigratedRows, fresh.remapMigratedRows);
        ASSERT_EQ(cached.perVaultReadQueue.size(),
                  fresh.perVaultReadQueue.size());
        for (std::size_t i = 0; i < fresh.perVaultReadQueue.size(); ++i) {
            EXPECT_NEAR(cached.perVaultReadQueue[i],
                        fresh.perVaultReadQueue[i],
                        1e-5 * fresh.perVaultReadQueue[i] + 1e-9);
        }
    }
    std::remove(path.c_str());
}

TEST(ExperimentCache, KeySeparatesDevicesAndClocks)
{
    // Schema v3: two devices (or two core clocks) must never alias to
    // one cached row — before the device axis existed they would have.
    const SimConfig base = SimConfig::baseline();
    SimConfig ddr4 = base;
    ddr4.applyDevice(dramDeviceOrDie("DDR4-2400"));
    SimConfig lp = base;
    lp.applyDevice(dramDeviceOrDie("LPDDR3-1600"));
    SimConfig fastCore = base;
    fastCore.setCoreMhz(3000);

    const auto kb = ExperimentRunner::configKey(WorkloadId::DS, base);
    EXPECT_NE(kb, ExperimentRunner::configKey(WorkloadId::DS, ddr4));
    EXPECT_NE(kb, ExperimentRunner::configKey(WorkloadId::DS, lp));
    EXPECT_NE(kb, ExperimentRunner::configKey(WorkloadId::DS, fastCore));
    // LPDDR3-1600 shares DDR3-1600's bus clock; only the name differs.
    EXPECT_NE(ExperimentRunner::configKey(WorkloadId::DS, ddr4),
              ExperimentRunner::configKey(WorkloadId::DS, lp));
    EXPECT_NE(kb.find("dev=DDR3-1600@2000:800"), std::string::npos);
}

TEST(ExperimentCache, LegacyKeysLoadAsBaselineDevice)
{
    // v1/v2-era rows had no device segment; everything they recorded
    // ran the DDR3-1600 baseline, so they migrate to that key instead
    // of being dropped — and never satisfy a different device.
    const std::string path = tempCachePath("legacykey");
    const SimConfig cfg = tinyConfig();
    std::string key = ExperimentRunner::configKey(WorkloadId::WS, cfg);
    const std::size_t tag = key.find("|dev=");
    ASSERT_NE(tag, std::string::npos);
    key.resize(tag); // Strip the v3 segment: a legacy-format key.
    {
        std::ofstream out(path);
        out << key
            << ",1.5,100,30,5,1,2,10,20,1000,2000,30,40,0.9,5000,120\n";
    }
    ExperimentRunner runner(path);
    const MetricSet hit = runner.run(WorkloadId::WS, cfg);
    EXPECT_EQ(runner.simulationsRun(), 0u);
    EXPECT_EQ(runner.cacheHits(), 1u);
    EXPECT_DOUBLE_EQ(hit.userIpc, 1.5);

    // The same point on another device misses and re-simulates.
    SimConfig ddr4 = cfg;
    ddr4.applyDevice(dramDeviceOrDie("DDR4-2400"));
    (void)runner.run(WorkloadId::WS, ddr4);
    EXPECT_EQ(runner.simulationsRun(), 1u);
    std::remove(path.c_str());
}

TEST(ExperimentCache, V6RowsLoadWithZeroTierColumns)
{
    // A v6-format row — 28 value columns, no tier counters — must
    // satisfy a non-tiered lookup with the schema-v7 columns zeroed:
    // non-tiered keys are byte-identical across v6 and v7.
    const std::string path = tempCachePath("v6migrate");
    const SimConfig cfg = tinyConfig();
    const std::string key =
        ExperimentRunner::configKey(WorkloadId::WS, cfg);
    EXPECT_EQ(key.find("+t"), std::string::npos) << key;
    {
        std::ofstream out(path);
        out << key
            << ",1.5,100,30,5,1,2,10,20,1000,2000,30,40,0.9,5000,120,"
               "55,77,99,1.1,1.2,1.3,,,42.5,0.25,3,7,\n";
    }
    ExperimentRunner runner(path);
    const MetricSet hit = runner.run(WorkloadId::WS, cfg);
    EXPECT_EQ(runner.simulationsRun(), 0u);
    EXPECT_EQ(runner.cacheHits(), 1u);
    EXPECT_DOUBLE_EQ(hit.userIpc, 1.5);
    EXPECT_EQ(hit.remapMigrations, 3u);
    // Schema-v7 columns default to zero.
    EXPECT_DOUBLE_EQ(hit.fastTierHitPct, 0.0);
    EXPECT_DOUBLE_EQ(hit.slowTierReadLatencyP99, 0.0);
    EXPECT_EQ(hit.tierMigrations, 0u);
    EXPECT_EQ(hit.tierMigratedRows, 0u);
    std::remove(path.c_str());
}

TEST(ExperimentCache, TierColumnsRoundtrip)
{
    // Schema v7 rows persist the tier hit fraction, the slow-tier p99
    // and the migration counters; a reloaded tiered row must
    // reproduce all of them.
    const std::string path = tempCachePath("v7roundtrip");
    std::remove(path.c_str());
    SimConfig cfg = tinyConfig();
    cfg.tier.enabled = true;
    cfg.tier.policy = TierPolicy::HotnessBased;
    cfg.tier.monitorWindowSamples = 64; // Migrate within a tiny run.
    MetricSet fresh;
    {
        ExperimentRunner runner(path);
        fresh = runner.run(WorkloadId::WS, cfg);
        EXPECT_GT(fresh.fastTierHitPct, 0.0);
        EXPECT_LT(fresh.fastTierHitPct, 100.0);
        EXPECT_GT(fresh.slowTierReadLatencyP99, 0.0);
    }
    {
        ExperimentRunner runner(path);
        const MetricSet cached = runner.run(WorkloadId::WS, cfg);
        EXPECT_EQ(runner.simulationsRun(), 0u);
        EXPECT_EQ(runner.cacheHits(), 1u);
        EXPECT_NEAR(cached.fastTierHitPct, fresh.fastTierHitPct,
                    1e-5 * fresh.fastTierHitPct);
        EXPECT_NEAR(cached.slowTierReadLatencyP99,
                    fresh.slowTierReadLatencyP99,
                    1e-5 * fresh.slowTierReadLatencyP99);
        EXPECT_EQ(cached.tierMigrations, fresh.tierMigrations);
        EXPECT_EQ(cached.tierMigratedRows, fresh.tierMigratedRows);
    }
    std::remove(path.c_str());
}

TEST(ExperimentCache, KeySeparatesTiers)
{
    // Schema v7: a tiered run never aliases the plain fast-tier row,
    // and policies / capacity splits / tier knobs never alias each
    // other — while non-tiered keys ignore the dormant tier struct.
    const SimConfig base = SimConfig::baseline();
    SimConfig tiered = base;
    tiered.tier.enabled = true;
    SimConfig alloy = tiered;
    alloy.tier.policy = TierPolicy::AlloyCache;
    SimConfig slim = tiered;
    slim.tier.fastCapacityPct = 25;
    SimConfig tuned = tiered;
    tuned.tier.slowLatencyDramCycles = 256;

    const auto kb = ExperimentRunner::configKey(WorkloadId::DS, base);
    const auto kt = ExperimentRunner::configKey(WorkloadId::DS, tiered);
    EXPECT_NE(kb, kt);
    EXPECT_NE(kt.find("+t50h"), std::string::npos) << kt;
    EXPECT_NE(kt, ExperimentRunner::configKey(WorkloadId::DS, alloy));
    EXPECT_NE(kt, ExperimentRunner::configKey(WorkloadId::DS, slim));
    EXPECT_NE(kt, ExperimentRunner::configKey(WorkloadId::DS, tuned));
    // Tier knobs are hashed only when the composition is enabled, so
    // non-tiered keys are byte-identical whatever the struct holds.
    SimConfig dormant = base;
    dormant.tier.fastCapacityPct = 25;
    dormant.tier.hotFactor = 8.0;
    EXPECT_EQ(kb, ExperimentRunner::configKey(WorkloadId::DS, dormant));
}
