/**
 * @file
 * Experiment harness robustness: the on-disk results cache must
 * survive corruption, format drift and concurrent-ish appends without
 * ever returning garbage — a corrupt row re-simulates, it never
 * poisons a figure.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/experiment.hh"

using namespace mcsim;

namespace {

std::string
tempCachePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/cloudmc_expcache_" +
           tag + ".csv";
}

SimConfig
tinyConfig()
{
    SimConfig cfg = SimConfig::baseline();
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 100'000;
    return cfg;
}

} // namespace

TEST(ExperimentCache, CorruptLinesAreIgnored)
{
    const std::string path = tempCachePath("corrupt");
    {
        std::ofstream out(path);
        out << "not a csv line at all\n";
        out << "key-without-values,\n";
        out << "half,1.0,2.0\n";
        out << "\n";
    }
    ExperimentRunner runner(path);
    const MetricSet m = runner.run(WorkloadId::WS, tinyConfig());
    // The corrupt rows never match; a real simulation ran.
    EXPECT_EQ(runner.simulationsRun(), 1u);
    EXPECT_EQ(runner.cacheHits(), 0u);
    EXPECT_GT(m.userIpc, 0.0);
    std::remove(path.c_str());
}

TEST(ExperimentCache, OldFormatRowsResimulate)
{
    // A row with the key of a current configuration but too few value
    // fields (a pre-energy-model cache) must be dropped, not half-read.
    const std::string path = tempCachePath("oldformat");
    const SimConfig cfg = tinyConfig();
    const std::string key = ExperimentRunner::configKey(WorkloadId::WS, cfg);
    {
        std::ofstream out(path);
        out << key << ",1.5,100,30,5,1,10,20,80,1000,2000,30,40\n";
    }
    ExperimentRunner runner(path);
    (void)runner.run(WorkloadId::WS, cfg);
    EXPECT_EQ(runner.simulationsRun(), 1u);
    std::remove(path.c_str());
}

TEST(ExperimentCache, EnergyFieldsRoundtrip)
{
    const std::string path = tempCachePath("energy");
    std::remove(path.c_str());
    const SimConfig cfg = tinyConfig();
    MetricSet fresh;
    {
        ExperimentRunner runner(path);
        fresh = runner.run(WorkloadId::MS, cfg);
        EXPECT_GT(fresh.dramEnergyNj, 0.0);
        EXPECT_GT(fresh.dramAvgPowerMw, 0.0);
        EXPECT_GT(fresh.ipcDisparity, 0.0);
        EXPECT_LE(fresh.ipcDisparity, 1.0);
    }
    {
        ExperimentRunner runner(path);
        const MetricSet cached = runner.run(WorkloadId::MS, cfg);
        EXPECT_EQ(runner.simulationsRun(), 0u);
        // The CSV stores ~6 significant digits; compare relatively.
        EXPECT_NEAR(cached.dramEnergyNj, fresh.dramEnergyNj,
                    1e-5 * fresh.dramEnergyNj);
        EXPECT_NEAR(cached.dramAvgPowerMw, fresh.dramAvgPowerMw,
                    1e-5 * fresh.dramAvgPowerMw);
        EXPECT_NEAR(cached.ipcDisparity, fresh.ipcDisparity, 1e-5);
    }
    std::remove(path.c_str());
}

TEST(ExperimentCache, MissingFileStartsEmpty)
{
    const std::string path = tempCachePath("missing");
    std::remove(path.c_str());
    ExperimentRunner runner(path);
    EXPECT_EQ(runner.cacheHits(), 0u);
    EXPECT_EQ(runner.simulationsRun(), 0u);
}

TEST(ExperimentCache, KeyEncodesEveryStudiedDimension)
{
    // Beyond the basic distinctions (covered in test_system.cc), the
    // key must separate the extension dimensions too.
    const SimConfig a = SimConfig::baseline();
    SimConfig tcm = a;
    tcm.scheduler = SchedulerKind::Tcm;
    SimConfig hist = a;
    hist.pagePolicy = PagePolicyKind::History;
    SimConfig perm = a;
    perm.mapping = MappingScheme::PermBaXor;
    const auto ka = ExperimentRunner::configKey(WorkloadId::DS, a);
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::DS, tcm));
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::DS, hist));
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::DS, perm));
}
