/**
 * @file
 * Tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "common/table.hh"

using namespace mcsim;

TEST(AverageStat, Empty)
{
    AverageStat s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(AverageStat, Mean)
{
    AverageStat s;
    s.sample(1.0);
    s.sample(2.0);
    s.sample(6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_EQ(s.count(), 3u);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(TimeWeightedStat, ConstantValue)
{
    TimeWeightedStat s;
    s.update(Tick{0}, 5.0);
    EXPECT_DOUBLE_EQ(s.mean(Tick{100}), 5.0);
}

TEST(TimeWeightedStat, StepChange)
{
    TimeWeightedStat s;
    s.update(Tick{0}, 0.0);
    s.update(Tick{50}, 10.0); // 0 for [0,50), 10 for [50,100).
    EXPECT_DOUBLE_EQ(s.mean(Tick{100}), 5.0);
}

TEST(TimeWeightedStat, MeanIsIdempotent)
{
    TimeWeightedStat s;
    s.update(Tick{0}, 2.0);
    s.update(Tick{10}, 4.0);
    const double m1 = s.mean(Tick{20});
    const double m2 = s.mean(Tick{20});
    EXPECT_DOUBLE_EQ(m1, m2);
    EXPECT_DOUBLE_EQ(m1, 3.0);
}

TEST(TimeWeightedStat, ResetRestartsWindow)
{
    TimeWeightedStat s;
    s.update(Tick{0}, 100.0);
    s.reset(Tick{50});
    s.update(Tick{50}, 2.0);
    EXPECT_DOUBLE_EQ(s.mean(Tick{100}), 2.0);
}

TEST(SmallHistogram, BucketsAndOverflow)
{
    SmallHistogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(3);
    h.sample(9); // Overflow.
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 0.4);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 1 + 3 + 9) / 5.0);
}

TEST(SmallHistogram, ResetClears)
{
    SmallHistogram h(4);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.fractionAt(2), 0.0);
}

TEST(LogHistogram, EmptyReportsZero)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, MeanIsExact)
{
    LogHistogram h;
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_EQ(h.count(), 3u);
}

TEST(LogHistogram, PercentileBoundsSample)
{
    LogHistogram h;
    for (int i = 0; i < 1000; ++i)
        h.sample(100); // Bucket [64, 128).
    for (double q : {0.01, 0.5, 0.99}) {
        const double p = h.percentile(q);
        EXPECT_GE(p, 64.0);
        EXPECT_LE(p, 128.0);
    }
}

TEST(LogHistogram, TailSeparatesFromBody)
{
    LogHistogram h;
    for (int i = 0; i < 990; ++i)
        h.sample(100);
    for (int i = 0; i < 10; ++i)
        h.sample(100'000); // 1% extreme tail.
    EXPECT_LT(h.percentile(0.50), 200.0);
    EXPECT_GT(h.percentile(0.995), 60'000.0);
}

TEST(LogHistogram, PercentilesAreMonotonic)
{
    LogHistogram h;
    for (std::uint64_t v = 1; v < 4000; v = v * 3 / 2 + 1)
        h.sample(v);
    double prev = 0.0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const double p = h.percentile(q);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(LogHistogram, MergeCombinesCounts)
{
    LogHistogram a, b;
    for (int i = 0; i < 100; ++i)
        a.sample(10);
    for (int i = 0; i < 100; ++i)
        b.sample(10'000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_LT(a.percentile(0.25), 20.0);
    EXPECT_GT(a.percentile(0.75), 8'000.0);
}

TEST(LogHistogram, ResetClears)
{
    LogHistogram h;
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.9), 0.0);
}

TEST(LogHistogram, TopBucketIsReachableFromSample)
{
    // Regression: the old clamp stopped sample() one bucket short, so
    // only merge() could ever populate the top (saturation) bucket and
    // saturated percentiles under-reported by 2x.
    LogHistogram h{8}; // Top bucket covers [128, inf).
    h.sample(128);
    h.sample(1'000'000);
    EXPECT_EQ(h.count(), 2u);
    for (double q : {0.1, 0.9}) {
        EXPECT_GE(h.percentile(q), 128.0);
        EXPECT_LE(h.percentile(q), 256.0);
    }
}

TEST(LogHistogram, SaturatedPercentileReportsTopBucket)
{
    LogHistogram h{8};
    for (int i = 0; i < 990; ++i)
        h.sample(2); // Bucket [2, 4).
    for (int i = 0; i < 10; ++i)
        h.sample(1u << 20); // Saturates into [128, inf).
    EXPECT_LT(h.percentile(0.5), 4.0);
    EXPECT_GE(h.percentile(0.999), 128.0);
}

TEST(LogHistogram, MergeAndSampleAgreeOnSaturation)
{
    // A big value folded in via merge() from a wider histogram must
    // land where sample() would have put it: the top bucket.
    LogHistogram sampled{8};
    sampled.sample(1u << 20);

    LogHistogram wide{32};
    wide.sample(1u << 20);
    LogHistogram merged{8};
    merged.merge(wide);

    EXPECT_EQ(sampled.count(), merged.count());
    EXPECT_DOUBLE_EQ(sampled.percentile(1.0), merged.percentile(1.0));
    EXPECT_GE(sampled.percentile(1.0), 128.0);
}

TEST(LogHistogram, ZeroLandsInBucketZero)
{
    // Documented behavior: v = 0 shares bucket 0 with v = 1, so the
    // percentile estimate floors at bucket 0's lower edge of 1.
    LogHistogram h{8};
    h.sample(0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.percentile(0.5), 1.0);
    EXPECT_LE(h.percentile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(TextTable, AlignedRender)
{
    TextTable t;
    t.setHeader({"a", "bbbb"});
    t.addRow({"xx", "1"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("xx"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, CsvRender)
{
    TextTable t;
    t.setHeader({"h1", "h2"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "h1,h2\n1,2\n");
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::num(3.0, 0), "3");
}
