/**
 * @file
 * Unit tests for the strong tick-domain types: Duration/Instant affine
 * arithmetic, sentinels, and the ClockDomains conversions that form
 * the only bridge between domains. The negative side — cross-domain
 * arithmetic and implicit integer conversion failing to *compile* —
 * lives in tests/compile_fail/ and runs as the compile_fail_* ctest
 * entries.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <type_traits>

#include "common/types.hh"

using namespace mcsim;

TEST(Duration, DefaultIsZero)
{
    EXPECT_EQ(TickSpan{}.count(), 0u);
    EXPECT_EQ(CoreCycles{}.count(), 0u);
    EXPECT_EQ(DramCycles{}.count(), 0u);
}

TEST(Duration, AdditiveArithmetic)
{
    constexpr TickSpan a{30};
    constexpr TickSpan b{12};
    static_assert((a + b).count() == 42, "constexpr add");
    static_assert((a - b).count() == 18, "constexpr sub");
    TickSpan acc{5};
    acc += a;
    EXPECT_EQ(acc, TickSpan{35});
    acc -= b;
    EXPECT_EQ(acc, TickSpan{23});
}

TEST(Duration, ScalarScaling)
{
    constexpr TickSpan d{7};
    static_assert((d * 3).count() == 21, "span * k");
    static_assert((3 * d).count() == 21, "k * span");
    static_assert((d / 2).count() == 3, "span / k rounds down");
}

TEST(Duration, RatioAndModuloAreUnitAware)
{
    constexpr TickSpan d{45};
    constexpr TickSpan step{10};
    // span / span is a unitless count; span % span stays a span.
    static_assert(std::is_same_v<decltype(d / step), std::uint64_t>);
    static_assert(std::is_same_v<decltype(d % step), TickSpan>);
    EXPECT_EQ(d / step, 4u);
    EXPECT_EQ(d % step, TickSpan{5});
}

TEST(Duration, Comparisons)
{
    constexpr TickSpan lo{3};
    constexpr TickSpan hi{9};
    EXPECT_LT(lo, hi);
    EXPECT_LE(lo, lo);
    EXPECT_GT(hi, lo);
    EXPECT_GE(hi, hi);
    EXPECT_NE(lo, hi);
    EXPECT_EQ(kMaxTickSpan, TickSpan::max());
    EXPECT_EQ(kMaxTickSpan.count(),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Instant, AffineArithmetic)
{
    constexpr Tick t0{100};
    constexpr TickSpan d{25};
    // instant + span and instant - span are instants; instant -
    // instant is a span. (instant + instant does not compile; see
    // tests/compile_fail/instant_plus_instant.cc.)
    static_assert(std::is_same_v<decltype(t0 + d), Tick>);
    static_assert(std::is_same_v<decltype(t0 - d), Tick>);
    static_assert(std::is_same_v<decltype(t0 - Tick{40}), TickSpan>);
    static_assert((t0 + d).count() == 125, "shift forward");
    static_assert((t0 - d).count() == 75, "shift back");
    static_assert((t0 - Tick{40}).count() == 60, "difference");
    Tick t = t0;
    t += d;
    EXPECT_EQ(t, Tick{125});
    t -= TickSpan{5};
    EXPECT_EQ(t, Tick{120});
}

TEST(Instant, PhaseWithinGrid)
{
    // now % period: the phase used by refresh and quantum schedules.
    constexpr Tick now{1037};
    constexpr TickSpan period{100};
    static_assert(std::is_same_v<decltype(now % period), TickSpan>);
    EXPECT_EQ(now % period, TickSpan{37});
}

TEST(Instant, ComparisonsAndSentinel)
{
    EXPECT_LT(Tick{1}, Tick{2});
    EXPECT_EQ(kMaxTick, Tick::max());
    EXPECT_GT(kMaxTick, Tick{0});
    // The sentinel is the natural "never" for next-event scans.
    Tick soonest = kMaxTick;
    for (const Tick t : {Tick{70}, Tick{30}, Tick{50}})
        soonest = std::min(soonest, t);
    EXPECT_EQ(soonest, Tick{30});
}

TEST(Instant, StreamsAsRawCount)
{
    std::ostringstream os;
    os << Tick{42} << "/" << TickSpan{7};
    EXPECT_EQ(os.str(), "42/7");
}

TEST(TickTypes, ZeroOverheadLayout)
{
    // The wrappers must stay single-word and trivially copyable so
    // they compile to the raw integers they replaced.
    static_assert(sizeof(Tick) == sizeof(std::uint64_t));
    static_assert(sizeof(TickSpan) == sizeof(std::uint64_t));
    static_assert(std::is_trivially_copyable_v<Tick>);
    static_assert(std::is_trivially_copyable_v<TickSpan>);
    static_assert(std::is_trivially_destructible_v<Tick>);
    SUCCEED();
}

TEST(ClockDomainsBridge, SpanRoundTripsAreExactOnTheGrid)
{
    for (const auto &clk :
         {kBaselineClocks, ClockDomains::fromMhz(2000, 1200),
          ClockDomains::fromMhz(2000, 2400),
          ClockDomains::fromMhz(2000, 533)}) {
        for (std::uint64_t n : {0ull, 1ull, 13ull, 4096ull, 999'983ull}) {
            EXPECT_EQ(clk.ticksToCore(clk.coreToTicks(CoreCycles{n})),
                      CoreCycles{n});
            EXPECT_EQ(clk.ticksToDram(clk.dramToTicks(DramCycles{n})),
                      DramCycles{n});
            EXPECT_EQ(clk.ticksToCore(clk.coreToTicks(CoreCycle{n})),
                      CoreCycle{n});
            EXPECT_EQ(clk.ticksToDram(clk.dramToTicks(DramCycle{n})),
                      DramCycle{n});
        }
    }
}

TEST(ClockDomainsBridge, RawAndTypedOverloadsAgree)
{
    const ClockDomains clk = ClockDomains::fromMhz(2000, 1200);
    EXPECT_EQ(clk.coreToTicks(77u), clk.coreToTicks(CoreCycles{77}));
    EXPECT_EQ(clk.dramToTicks(77u), clk.dramToTicks(DramCycles{77}));
}

TEST(ClockDomainsBridge, InstantConversionPreservesOrigin)
{
    // Converting an absolute cycle index lands on the tick grid with
    // the shared origin 0, consistent with the span conversion.
    const ClockDomains clk = kBaselineClocks;
    EXPECT_EQ(clk.coreToTicks(CoreCycle{10}),
              Tick{} + clk.coreToTicks(CoreCycles{10}));
    EXPECT_EQ(clk.dramToTicks(DramCycle{10}),
              Tick{} + clk.dramToTicks(DramCycles{10}));
}

TEST(ClockDomainsBridge, MidCycleTicksRoundDown)
{
    const ClockDomains clk = kBaselineClocks; // 2 and 5 ticks/cycle.
    EXPECT_EQ(clk.ticksToDram(Tick{4}), DramCycle{0});
    EXPECT_EQ(clk.ticksToDram(Tick{5}), DramCycle{1});
    EXPECT_EQ(clk.ticksToCore(TickSpan{3}), CoreCycles{1});
}
