/**
 * @file
 * Slowdown/fairness subsystem tests: the deriveFairnessMetrics math,
 * the alone-run baseline pipeline in ExperimentRunner (scheduling,
 * memoization, schema-v4 persistence), MixedWorkload part-isolated
 * baselines, event-vs-reference kernel equality of the derived
 * quantities, and STFM's online slowdown estimate against the
 * measured truth.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mem/sched_stfm.hh"
#include "sim/experiment.hh"
#include "sim/spec.hh"
#include "sim/system.hh"
#include "workload/mixed.hh"

using namespace mcsim;

namespace {

std::string
tempCachePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/cloudmc_fair_" + tag +
           ".csv";
}

SimConfig
tinyConfig()
{
    SimConfig cfg = SimConfig::baseline();
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 150'000;
    return cfg;
}

/** Pin CLOUDMC_FAST so runner windows match direct System runs. */
class FastEnvGuard
{
  public:
    FastEnvGuard()
    {
        const char *v = std::getenv("CLOUDMC_FAST");
        saved_ = v ? v : "";
        unsetenv("CLOUDMC_FAST");
    }
    ~FastEnvGuard()
    {
        if (!saved_.empty())
            setenv("CLOUDMC_FAST", saved_.c_str(), 1);
    }

  private:
    std::string saved_;
};

MetricSet
makeShared(std::vector<double> ipc)
{
    MetricSet m;
    m.perCoreIpc = std::move(ipc);
    return m;
}

} // namespace

TEST(DeriveFairness, SingleCoreBaselineBroadcasts)
{
    MetricSet shared = makeShared({0.5, 0.25});
    MetricSet alone = makeShared({1.0});
    ASSERT_TRUE(deriveFairnessMetrics(shared, {{0, 2, &alone}}));
    ASSERT_EQ(shared.perCoreSlowdown.size(), 2u);
    EXPECT_DOUBLE_EQ(shared.perCoreSlowdown[0], 2.0);
    EXPECT_DOUBLE_EQ(shared.perCoreSlowdown[1], 4.0);
    EXPECT_DOUBLE_EQ(shared.maxSlowdown, 4.0);
    EXPECT_DOUBLE_EQ(shared.weightedSpeedup, 0.75);
    EXPECT_DOUBLE_EQ(shared.harmonicSpeedup, 2.0 / 6.0);
    EXPECT_TRUE(shared.hasFairness());
}

TEST(DeriveFairness, PartIsolatedBaselinesMapPerCore)
{
    MetricSet shared = makeShared({0.5, 0.2, 0.8, 0.4});
    MetricSet aloneA = makeShared({1.0, 0.4});
    MetricSet aloneB = makeShared({1.6, 1.6});
    ASSERT_TRUE(deriveFairnessMetrics(
        shared, {{0, 2, &aloneA}, {2, 2, &aloneB}}));
    EXPECT_DOUBLE_EQ(shared.perCoreSlowdown[0], 2.0);
    EXPECT_DOUBLE_EQ(shared.perCoreSlowdown[1], 2.0);
    EXPECT_DOUBLE_EQ(shared.perCoreSlowdown[2], 2.0);
    EXPECT_DOUBLE_EQ(shared.perCoreSlowdown[3], 4.0);
    EXPECT_DOUBLE_EQ(shared.maxSlowdown, 4.0);
    EXPECT_DOUBLE_EQ(shared.harmonicSpeedup, 4.0 / 10.0);
}

TEST(DeriveFairness, StarvedCoreScoresMaximalFiniteSlowdown)
{
    // A core starved to zero committed instructions while its alone
    // run makes progress must inflate maxSlowdown (as if it committed
    // one instruction over the window), not report slowdown 1.
    MetricSet shared = makeShared({0.5, 0.0});
    shared.measuredCycles = 1'000'000;
    MetricSet alone = makeShared({1.0});
    ASSERT_TRUE(deriveFairnessMetrics(shared, {{0, 2, &alone}}));
    EXPECT_DOUBLE_EQ(shared.perCoreSlowdown[0], 2.0);
    EXPECT_DOUBLE_EQ(shared.perCoreSlowdown[1], 1'000'000.0);
    EXPECT_DOUBLE_EQ(shared.maxSlowdown, 1'000'000.0);
    // The starved core contributes nothing to throughput...
    EXPECT_DOUBLE_EQ(shared.weightedSpeedup, 0.5);
    // ...and its huge slowdown crushes the harmonic-mean speedup.
    EXPECT_LT(shared.harmonicSpeedup, 1e-5);

    // An idle *application* (alone run committed nothing) still
    // scores a neutral 1.
    MetricSet idle = makeShared({0.0});
    MetricSet idleAlone = makeShared({0.0});
    ASSERT_TRUE(deriveFairnessMetrics(idle, {{0, 1, &idleAlone}}));
    EXPECT_DOUBLE_EQ(idle.perCoreSlowdown[0], 1.0);
}

TEST(DeriveFairness, RejectsBadCoverage)
{
    MetricSet aloneOk = makeShared({1.0});

    // Uncovered core.
    MetricSet shared = makeShared({0.5, 0.5});
    EXPECT_FALSE(deriveFairnessMetrics(shared, {{0, 1, &aloneOk}}));
    EXPECT_FALSE(shared.hasFairness());
    EXPECT_DOUBLE_EQ(shared.maxSlowdown, 0.0);

    // Overlapping baselines.
    shared = makeShared({0.5, 0.5});
    EXPECT_FALSE(deriveFairnessMetrics(
        shared, {{0, 2, &aloneOk}, {1, 1, &aloneOk}}));

    // Range past the end.
    shared = makeShared({0.5, 0.5});
    EXPECT_FALSE(deriveFairnessMetrics(shared, {{1, 2, &aloneOk}}));

    // Baseline with neither 1 nor numCores entries.
    shared = makeShared({0.5, 0.5, 0.5});
    MetricSet aloneBad = makeShared({1.0, 1.0});
    EXPECT_FALSE(deriveFairnessMetrics(shared, {{0, 3, &aloneBad}}));

    // No per-core data on the shared run (a pre-v4 cache row).
    shared = MetricSet{};
    EXPECT_FALSE(deriveFairnessMetrics(shared, {{0, 1, &aloneOk}}));
}

TEST(DeriveFairness, DivisionEdgesNeverProduceNanOrInf)
{
    // measuredCycles == 0 (a degenerate window) with a starved core:
    // the floor IPC falls back to 1.0 instead of dividing by zero, so
    // the slowdown stays finite and equal to the alone IPC.
    MetricSet shared = makeShared({0.0});
    shared.measuredCycles = 0;
    MetricSet alone = makeShared({2.0});
    ASSERT_TRUE(deriveFairnessMetrics(shared, {{0, 1, &alone}}));
    EXPECT_DOUBLE_EQ(shared.perCoreSlowdown[0], 2.0);
    EXPECT_TRUE(std::isfinite(shared.maxSlowdown));
    EXPECT_TRUE(std::isfinite(shared.harmonicSpeedup));

    // Every core idle in both runs: slowdownSum lands on the core
    // count (all neutral 1s), never a 0/0.
    MetricSet allIdle = makeShared({0.0, 0.0});
    MetricSet idleAlone = makeShared({0.0});
    ASSERT_TRUE(deriveFairnessMetrics(allIdle, {{0, 2, &idleAlone}}));
    EXPECT_DOUBLE_EQ(allIdle.harmonicSpeedup, 1.0);
    EXPECT_DOUBLE_EQ(allIdle.weightedSpeedup, 0.0);
    EXPECT_DOUBLE_EQ(allIdle.maxSlowdown, 1.0);

    // Empty baseline list: rejected before any division happens.
    MetricSet noBase = makeShared({0.5});
    EXPECT_FALSE(deriveFairnessMetrics(noBase, {}));
    EXPECT_FALSE(noBase.hasFairness());

    // A baseline part declaring zero cores is malformed coverage.
    MetricSet zeroPart = makeShared({0.5});
    EXPECT_FALSE(deriveFairnessMetrics(zeroPart, {{0, 0, &alone}}));
}

TEST(Fairness, PresetPointMeasuresRealSlowdowns)
{
    FastEnvGuard guard;
    ExperimentRunner runner("-");
    ExperimentRunner::Point p(WorkloadId::WS, tinyConfig());
    ExperimentRunner::attachAloneBaseline(p);
    ASSERT_EQ(p.baselines.size(), 1u);
    EXPECT_EQ(p.baselines[0].numCores,
              workloadPreset(WorkloadId::WS).cores);
    EXPECT_EQ(p.baselines[0].run.presetCores, 1u);

    const MetricSet m = runner.runAll({p}, 2).front();
    EXPECT_EQ(runner.simulationsRun(), 2u); // Shared + alone baseline.
    ASSERT_TRUE(m.hasFairness());
    ASSERT_EQ(m.perCoreSlowdown.size(),
              workloadPreset(WorkloadId::WS).cores);
    // 16 cores contend for one channel, so the pod as a whole must run
    // slower than the alone baseline. Individual cores can dip just
    // below 1: the baseline is the preset's mean-intensity single
    // core, while spread presets give their lightest cores less memory
    // work than that.
    std::size_t slowed = 0;
    for (double s : m.perCoreSlowdown) {
        EXPECT_GT(s, 0.5);
        slowed += s > 1.0 ? 1 : 0;
    }
    EXPECT_GE(2 * slowed, m.perCoreSlowdown.size());
    EXPECT_GT(m.maxSlowdown, 1.0);
    EXPECT_GT(m.weightedSpeedup, 0.0);
    EXPECT_LT(m.weightedSpeedup,
              static_cast<double>(m.perCoreSlowdown.size()));
    EXPECT_GT(m.harmonicSpeedup, 0.0);
    EXPECT_LT(m.harmonicSpeedup, 1.0);
}

TEST(Fairness, PerCoreBreakdownsBackThePerCoreIpc)
{
    SimConfig cfg = tinyConfig();
    System sys(cfg, workloadPreset(WorkloadId::DS));
    const MetricSet m = sys.run();
    ASSERT_EQ(m.perCoreCommitted.size(), m.perCoreIpc.size());
    ASSERT_EQ(m.perCoreCycles.size(), m.perCoreIpc.size());
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < m.perCoreIpc.size(); ++c) {
        total += m.perCoreCommitted[c];
        EXPECT_EQ(m.perCoreCycles[c], m.measuredCycles);
        const double ipc =
            static_cast<double>(m.perCoreCommitted[c]) /
            static_cast<double>(m.perCoreCycles[c]);
        EXPECT_DOUBLE_EQ(m.perCoreIpc[c], ipc);
    }
    EXPECT_EQ(total, m.committedInstructions);
}

TEST(Fairness, BaselinesMemoizeAcrossRepeatedSweeps)
{
    FastEnvGuard guard;
    const std::string path = tempCachePath("memo");
    std::remove(path.c_str());

    // Two schedulers over one workload, fairness attached: 2 shared
    // runs + 2 alone baselines (the baseline key includes the
    // scheduler, so they do not collapse).
    std::vector<ExperimentRunner::Point> points;
    for (auto sched : {SchedulerKind::FrFcfs, SchedulerKind::Atlas}) {
        SimConfig cfg = tinyConfig();
        cfg.scheduler = sched;
        ExperimentRunner::Point p(WorkloadId::WS, cfg);
        ExperimentRunner::attachAloneBaseline(p);
        points.push_back(std::move(p));
    }

    MetricSet first;
    {
        ExperimentRunner runner(path);
        first = runner.runAll(points, 2).front();
        EXPECT_EQ(runner.simulationsRun(), 4u);
        EXPECT_EQ(runner.cacheHits(), 0u);
        ASSERT_TRUE(first.hasFairness());
    }
    // A fresh runner replays shared runs AND baselines from disk.
    {
        ExperimentRunner runner(path);
        const MetricSet again = runner.runAll(points, 2).front();
        EXPECT_EQ(runner.simulationsRun(), 0u);
        EXPECT_EQ(runner.cacheHits(), 4u);
        ASSERT_TRUE(again.hasFairness());
        ASSERT_EQ(again.perCoreSlowdown.size(),
                  first.perCoreSlowdown.size());
        for (std::size_t c = 0; c < first.perCoreSlowdown.size(); ++c) {
            EXPECT_NEAR(again.perCoreSlowdown[c],
                        first.perCoreSlowdown[c],
                        1e-5 * first.perCoreSlowdown[c]);
        }
        EXPECT_NEAR(again.weightedSpeedup, first.weightedSpeedup,
                    1e-5 * first.weightedSpeedup);
        EXPECT_NEAR(again.harmonicSpeedup, first.harmonicSpeedup,
                    1e-5 * first.harmonicSpeedup);
        EXPECT_NEAR(again.maxSlowdown, first.maxSlowdown,
                    1e-5 * first.maxSlowdown);
    }
    std::remove(path.c_str());
}

TEST(Fairness, MetricsBitIdenticalAcrossKernels)
{
    FastEnvGuard guard;
    const SimConfig cfg = tinyConfig();
    WorkloadParams shared = workloadPreset(WorkloadId::TPCC1);
    WorkloadParams alone = shared;
    alone.cores = 1;

    const auto runBoth = [&](const WorkloadParams &params,
                             bool reference) {
        System sys(cfg, params);
        sys.useReferenceKernel(reference);
        return sys.run();
    };
    MetricSet evShared = runBoth(shared, false);
    MetricSet refShared = runBoth(shared, true);
    const MetricSet evAlone = runBoth(alone, false);
    const MetricSet refAlone = runBoth(alone, true);

    ASSERT_TRUE(deriveFairnessMetrics(
        evShared, {{0, shared.cores, &evAlone}}));
    ASSERT_TRUE(deriveFairnessMetrics(
        refShared, {{0, shared.cores, &refAlone}}));
    EXPECT_EQ(evShared.perCoreSlowdown, refShared.perCoreSlowdown);
    EXPECT_EQ(evShared.weightedSpeedup, refShared.weightedSpeedup);
    EXPECT_EQ(evShared.harmonicSpeedup, refShared.harmonicSpeedup);
    EXPECT_EQ(evShared.maxSlowdown, refShared.maxSlowdown);
}

TEST(Fairness, MixedPartsUseTheirIsolatedBaselines)
{
    FastEnvGuard guard;
    const std::vector<MixPart> parts = {{WorkloadId::WS, 2},
                                        {WorkloadId::TPCHQ6, 2}};
    const SimConfig cfg = tinyConfig();
    ExperimentRunner::Point p =
        ExperimentRunner::mixedFairnessPoint(parts, cfg, 16ull << 30);
    ASSERT_EQ(p.baselines.size(), 2u);
    EXPECT_EQ(p.baselines[0].run.workload, WorkloadId::WS);
    EXPECT_EQ(p.baselines[0].run.presetCores, 2u);
    EXPECT_EQ(p.baselines[0].firstCore, 0u);
    EXPECT_EQ(p.baselines[1].run.workload, WorkloadId::TPCHQ6);
    EXPECT_EQ(p.baselines[1].run.presetCores, 2u);
    EXPECT_EQ(p.baselines[1].firstCore, 2u);
    EXPECT_EQ(p.customCores, 4u);
    EXPECT_FALSE(p.customKey.empty());

    ExperimentRunner runner("-");
    const MetricSet m = runner.runAll({p}, 2).front();
    ASSERT_TRUE(m.hasFairness());
    ASSERT_EQ(m.perCoreSlowdown.size(), 4u);

    // Recompute the slowdowns from independently-run part baselines:
    // each part's cores must be normalized by *that part's* alone run.
    ExperimentRunner aloneRunner("-");
    const auto aloneMetrics = aloneRunner.runAll(
        {p.baselines[0].run, p.baselines[1].run}, 2);
    for (std::uint32_t part = 0; part < 2; ++part) {
        for (std::uint32_t l = 0; l < 2; ++l) {
            const std::uint32_t c = part * 2 + l;
            const double expected =
                aloneMetrics[part].perCoreIpc[l] / m.perCoreIpc[c];
            EXPECT_DOUBLE_EQ(m.perCoreSlowdown[c], expected)
                << "core " << c;
        }
    }
}

TEST(Fairness, StfmEstimateTracksMeasuredSlowdown)
{
    FastEnvGuard guard;
    // STFM's online estimate covers *memory service* slowdown only; a
    // core's whole-execution slowdown dilutes that with compute time.
    // Mapping the estimate through the core's measured memory-stall
    // fraction f gives a predicted execution slowdown
    //     S_pred = 1 / (1 - f + f / S_stfm)
    // which must track the measured (alone-baseline) slowdown within a
    // tolerance band. TPC-H Q6 is the right probe: streaming scans
    // with little LLC reuse, so the single-core baseline is not
    // distorted by the constructive cache sharing scale-out presets
    // enjoy (which would push measured slowdowns below 1).
    SimConfig cfg = SimConfig::baseline();
    cfg.scheduler = SchedulerKind::Stfm;
    cfg.warmupCoreCycles = 200'000;
    cfg.measureCoreCycles = 400'000;
    WorkloadParams shared = workloadPreset(WorkloadId::TPCHQ6);
    WorkloadParams alone = shared;
    alone.cores = 1;

    System sys(cfg, shared);
    MetricSet sharedM = sys.run();
    System aloneSys(cfg, alone);
    const MetricSet aloneM = aloneSys.run();
    ASSERT_TRUE(deriveFairnessMetrics(
        sharedM, {{0, shared.cores, &aloneM}}));

    const auto *stfm = dynamic_cast<const StfmScheduler *>(
        &sys.controller(0).scheduler());
    ASSERT_NE(stfm, nullptr);
    for (std::uint32_t c = 0; c < shared.cores; ++c) {
        const double estimated = stfm->slowdownOf(c);
        const double measured = sharedM.perCoreSlowdown[c];
        EXPECT_GE(estimated, 1.0);
        EXPECT_GT(measured, 0.95);

        const CoreStats &cs = sys.core(c).stats();
        const double f =
            static_cast<double>(cs.loadMissStallCycles +
                                cs.fetchStallCycles) /
            static_cast<double>(cs.cycles);
        const double predicted = 1.0 / (1.0 - f + f / estimated);
        // Observed ~1.1-1.5x on this configuration; the band leaves
        // headroom for model drift without accepting a broken
        // estimator.
        EXPECT_LT(predicted, 2.5 * measured) << "core " << c;
        EXPECT_GT(predicted, 0.75 * measured) << "core " << c;
    }
}

TEST(Fairness, SpecFairnessKeyAttachesBaselines)
{
    ExperimentSpec spec;
    const std::string err = parseExperimentSpec(
        "workloads = WS, DS\nfairness = on\n", spec);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_TRUE(spec.fairness);
    const auto points = spec.points();
    ASSERT_EQ(points.size(), 2u);
    for (const auto &p : points) {
        ASSERT_EQ(p.baselines.size(), 1u);
        EXPECT_EQ(p.baselines[0].run.presetCores, 1u);
        EXPECT_EQ(p.baselines[0].numCores,
                  workloadPreset(p.workload).cores);
    }

    ExperimentSpec off;
    ASSERT_TRUE(parseExperimentSpec("fairness = off\n", off).empty());
    EXPECT_FALSE(off.fairness);
    EXPECT_TRUE(off.points().front().baselines.empty());

    ExperimentSpec bad;
    EXPECT_FALSE(parseExperimentSpec("fairness = maybe\n", bad).empty());
}
