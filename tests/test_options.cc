/**
 * @file
 * ExperimentOptions tests: flag parsing, every name table, error
 * reporting, and usage generation.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dram/devices.hh"
#include "sim/options.hh"

using namespace mcsim;

namespace {

/** Run parse() over a list of string arguments. */
std::string
parseArgs(ExperimentOptions &opts, std::vector<std::string> args)
{
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (auto &a : args)
        argv.push_back(a.data());
    return opts.parse(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Options, DefaultsMatchBaseline)
{
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {}), "");
    EXPECT_EQ(opts.workload, WorkloadId::DS);
    EXPECT_EQ(opts.config.scheduler, SchedulerKind::FrFcfs);
    EXPECT_EQ(opts.config.pagePolicy, PagePolicyKind::OpenAdaptive);
    EXPECT_EQ(opts.config.dram.channels, 1u);
    EXPECT_FALSE(opts.csv);
    EXPECT_FALSE(opts.helpRequested);
}

TEST(Options, ParsesFullConfiguration)
{
    ExperimentOptions opts;
    const std::string err = parseArgs(
        opts, {"--workload", "TPCH-Q6", "--scheduler", "TCM", "--policy",
               "History", "--mapping", "PermBaXor", "--channels", "4",
               "--warmup", "123000", "--measure", "456000", "--seed",
               "42", "--csv"});
    EXPECT_EQ(err, "");
    EXPECT_EQ(opts.workload, WorkloadId::TPCHQ6);
    EXPECT_EQ(opts.config.scheduler, SchedulerKind::Tcm);
    EXPECT_EQ(opts.config.pagePolicy, PagePolicyKind::History);
    EXPECT_EQ(opts.config.mapping, MappingScheme::PermBaXor);
    EXPECT_EQ(opts.config.dram.channels, 4u);
    EXPECT_EQ(opts.config.warmupCoreCycles, 123'000u);
    EXPECT_EQ(opts.config.measureCoreCycles, 456'000u);
    EXPECT_EQ(opts.config.seed, 42u);
    EXPECT_TRUE(opts.csv);
}

TEST(Options, BareAcronymSelectsWorkload)
{
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {"WSPEC99"}), "");
    EXPECT_EQ(opts.workload, WorkloadId::WSPEC99);
    EXPECT_TRUE(opts.positional.empty());
}

TEST(Options, UnknownPositionalIsKept)
{
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {"some-file.trace"}), "");
    ASSERT_EQ(opts.positional.size(), 1u);
    EXPECT_EQ(opts.positional[0], "some-file.trace");
}

TEST(Options, EveryNameTableRoundtrips)
{
    for (auto w : kAllWorkloads) {
        ExperimentOptions opts;
        EXPECT_EQ(parseArgs(opts, {"--workload", workloadAcronym(w)}),
                  "");
        EXPECT_EQ(opts.workload, w);
    }
    for (auto k : {SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks,
                   SchedulerKind::ParBs, SchedulerKind::Atlas,
                   SchedulerKind::Rl, SchedulerKind::Fcfs,
                   SchedulerKind::Fqm, SchedulerKind::Tcm}) {
        ExperimentOptions opts;
        EXPECT_EQ(parseArgs(opts, {"--scheduler", schedulerKindName(k)}),
                  "");
        EXPECT_EQ(opts.config.scheduler, k);
    }
    for (auto s : kExtendedMappingSchemes) {
        ExperimentOptions opts;
        EXPECT_EQ(parseArgs(opts, {"--mapping", mappingSchemeName(s)}),
                  "");
        EXPECT_EQ(opts.config.mapping, s);
    }
}

TEST(Options, RejectsBadValues)
{
    const std::array<std::vector<std::string>, 7> bad = {{
        {"--workload", "NOPE"},
        {"--scheduler", "LRU"},
        {"--policy", "YOLO"},
        {"--mapping", "RoWrong"},
        {"--channels", "3"},
        {"--measure", "0"},
        {"--flag-that-does-not-exist"},
    }};
    for (const auto &args : bad) {
        ExperimentOptions opts;
        EXPECT_NE(parseArgs(opts, args), "") << args[0];
    }
}

TEST(Options, RejectsMissingValues)
{
    for (const char *flag : {"--workload", "--scheduler", "--policy",
                             "--mapping", "--channels", "--seed"}) {
        ExperimentOptions opts;
        EXPECT_NE(parseArgs(opts, {flag}), "") << flag;
    }
}

TEST(Options, FastDividesWindows)
{
    ExperimentOptions opts;
    const auto warm = opts.config.warmupCoreCycles;
    const auto meas = opts.config.measureCoreCycles;
    EXPECT_EQ(parseArgs(opts, {"--fast", "4"}), "");
    EXPECT_EQ(opts.config.warmupCoreCycles, warm / 4);
    EXPECT_EQ(opts.config.measureCoreCycles, meas / 4);
}

TEST(Options, FastClampsMeasureFloor)
{
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {"--fast", "1000000"}), "");
    EXPECT_EQ(opts.config.measureCoreCycles, 100'000u);
}

TEST(Options, FairnessFlagPropagatesToSpec)
{
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {"--fairness"}), "");
    EXPECT_TRUE(opts.fairness);

    // --fairness before --config marks the loaded sweep too.
    const std::string path =
        std::string(::testing::TempDir()) + "/cloudmc_fairopts.spec";
    {
        std::ofstream out(path);
        out << "workload = WS\n";
    }
    ExperimentOptions before;
    EXPECT_EQ(parseArgs(before, {"--fairness", "--config", path}), "");
    EXPECT_TRUE(before.fairness);
    EXPECT_TRUE(before.spec.fairness);

    // A spec with `fairness = on` turns the option on as well.
    {
        std::ofstream out(path);
        out << "fairness = on\n";
    }
    ExperimentOptions fromSpec;
    EXPECT_EQ(parseArgs(fromSpec, {"--config", path}), "");
    EXPECT_TRUE(fromSpec.fairness);
    EXPECT_TRUE(fromSpec.spec.fairness);
    std::remove(path.c_str());
}

TEST(Options, HelpFlagSetsRequest)
{
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {"--help"}), "");
    EXPECT_TRUE(opts.helpRequested);
}

TEST(Options, UsageListsEverything)
{
    const std::string u = ExperimentOptions::usage("tool");
    EXPECT_NE(u.find("tool"), std::string::npos);
    for (auto w : kAllWorkloads)
        EXPECT_NE(u.find(workloadAcronym(w)), std::string::npos);
    EXPECT_NE(u.find("TCM"), std::string::npos);
    EXPECT_NE(u.find("History"), std::string::npos);
    EXPECT_NE(u.find("PermChBaXor"), std::string::npos);
    // Devices joined the enumerations with the registry refactor.
    EXPECT_NE(u.find("DDR4-2400"), std::string::npos);
    EXPECT_NE(u.find("LPDDR3-1600"), std::string::npos);
}

TEST(Options, ListFlagEnumeratesEverything)
{
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {"--list"}), "");
    EXPECT_TRUE(opts.listRequested);
    const std::string l = ExperimentOptions::listText();
    for (const DramDevice &d : dramDeviceRegistry())
        EXPECT_NE(l.find(d.name), std::string::npos);
    EXPECT_NE(l.find("schedulers:"), std::string::npos);
    EXPECT_NE(l.find("policies:"), std::string::npos);
    EXPECT_NE(l.find("mappings:"), std::string::npos);
    EXPECT_NE(l.find("workloads:"), std::string::npos);
}

TEST(Options, DeviceFlagAppliesRegistryEntry)
{
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {"--device", "DDR4-2400", "--channels",
                               "2"}),
              "");
    EXPECT_EQ(opts.config.deviceName, "DDR4-2400");
    EXPECT_EQ(opts.config.clocks.dramMhz, 1200u);
    EXPECT_EQ(opts.config.dram.channels, 2u);
    EXPECT_EQ(opts.config.dram.banksPerRank, 16u);

    ExperimentOptions bad;
    EXPECT_NE(parseArgs(bad, {"--device", "SDRAM-133"}), "");
    EXPECT_NE(parseArgs(bad, {"--device"}), "");
}

TEST(Options, ConfigFlagLoadsASpec)
{
    const std::string path = std::string(::testing::TempDir()) +
                             "/cloudmc_optspec.spec";
    {
        std::ofstream out(path);
        out << "devices = DDR3-1600, DDR4-2400\n"
            << "workload = WS\n"
            << "seed = 11\n";
    }
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {"--config", path}), "");
    EXPECT_TRUE(opts.hasSpec);
    EXPECT_EQ(opts.spec.pointCount(), 2u);
    EXPECT_EQ(opts.workload, WorkloadId::WS);
    EXPECT_EQ(opts.config.seed, 11u); // Scalars merge into config.

    ExperimentOptions missing;
    const std::string err =
        parseArgs(missing, {"--config", "/no/such.spec"});
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(Options, AxisFlagsAfterConfigCollapseTheSweep)
{
    const std::string path = std::string(::testing::TempDir()) +
                             "/cloudmc_optspec_override.spec";
    {
        std::ofstream out(path);
        out << "devices = DDR3-1600, DDR4-2400, LPDDR3-1600\n"
            << "schedulers = FR-FCFS, ATLAS\n"
            << "workloads = WS, DS\n";
    }
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {"--config", path, "--device",
                               "DDR4-2400", "--workload", "WS"}),
              "");
    // Each axis flag after --config narrows that axis to one value;
    // untouched axes keep the spec's lists.
    ASSERT_EQ(opts.spec.devices.size(), 1u);
    EXPECT_EQ(opts.spec.devices[0], "DDR4-2400");
    ASSERT_EQ(opts.spec.workloads.size(), 1u);
    EXPECT_EQ(opts.spec.workloads[0], WorkloadId::WS);
    EXPECT_EQ(opts.spec.schedulers.size(), 2u);
    EXPECT_EQ(opts.spec.pointCount(), 2u);
    std::remove(path.c_str());
}

TEST(Options, NegativeNumbersAreRejected)
{
    ExperimentOptions opts;
    EXPECT_NE(parseArgs(opts, {"--seed", "-3"}), "");
    EXPECT_NE(parseArgs(opts, {"--measure", "-1"}), "");
}

TEST(Options, BackendFlagSelectsStackedPart)
{
    ExperimentOptions opts;
    EXPECT_EQ(parseArgs(opts, {"--backend", "stacked", "--vaults", "8",
                               "--remap", "on"}),
              "");
    EXPECT_EQ(opts.config.deviceName, "HMC2-8GB");
    EXPECT_EQ(opts.config.backend, MemBackendKind::StackedDram);
    EXPECT_EQ(opts.config.dram.vaultsPerStack, 8u);
    EXPECT_TRUE(opts.config.remap.enabled);

    // --backend flat on the (flat) baseline is a no-op.
    ExperimentOptions flat;
    EXPECT_EQ(parseArgs(flat, {"--backend", "flat"}), "");
    EXPECT_EQ(flat.config.backend, MemBackendKind::FlatDram);
}

TEST(Options, StackedOnlyFlagsAreNamedErrorsOnFlat)
{
    ExperimentOptions opts;
    std::string err = parseArgs(opts, {"--remap", "on"});
    EXPECT_NE(err.find("stacked backend only"), std::string::npos)
        << err;

    err = parseArgs(opts, {"--vaults", "8"});
    EXPECT_NE(err.find("stacked backend only"), std::string::npos)
        << err;

    err = parseArgs(opts, {"--vaults", "3", "--backend", "stacked"});
    EXPECT_NE(err.find("power-of-two"), std::string::npos) << err;

    err = parseArgs(opts, {"--device", "HMC2-8GB", "--backend", "flat"});
    EXPECT_NE(err.find("stacked device"), std::string::npos) << err;

    err = parseArgs(opts, {"--backend", "diagonal"});
    EXPECT_NE(err.find("'flat' or 'stacked'"), std::string::npos) << err;
}

TEST(Options, ListShowsBackendAndVaultColumns)
{
    const std::string l = ExperimentOptions::listText();
    // Flat parts show a '-' vault column; the stacked part shows its
    // geometry and the TSV timing.
    EXPECT_NE(l.find("flat backend, vaults -"), std::string::npos) << l;
    EXPECT_NE(l.find("stacked backend, vaults 16 x 8 banks"),
              std::string::npos)
        << l;
    EXPECT_NE(l.find("tTSV"), std::string::npos) << l;
    EXPECT_NE(l.find("HMC2-8GB"), std::string::npos) << l;
}
