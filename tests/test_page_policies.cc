/**
 * @file
 * Page management policy tests: closure rules for all seven policies
 * and the learning behavior of the predictive ones.
 */

#include <gtest/gtest.h>

#include "mem/factory.hh"
#include "mem/page_policies.hh"

using namespace mcsim;

namespace {

PageQuery
query(std::uint32_t accesses, bool pendingHit, bool pendingConflict,
      std::uint64_t row = 7, Tick now = Tick{1000},
      Tick lastAccess = Tick{1000})
{
    PageQuery q;
    q.rank = 0;
    q.bank = 0;
    q.openRow = row;
    q.accessesThisActivation = accesses;
    q.pendingHit = pendingHit;
    q.pendingConflict = pendingConflict;
    q.now = now;
    q.lastAccessAt = lastAccess;
    return q;
}

} // namespace

TEST(OpenPolicy, NeverCloses)
{
    OpenPolicy p;
    EXPECT_FALSE(p.shouldClose(query(5, false, true)));
    EXPECT_FALSE(p.shouldClose(query(0, false, true)));
}

TEST(ClosePolicy, ClosesAfterFirstAccess)
{
    ClosePolicy p;
    EXPECT_FALSE(p.shouldClose(query(0, false, false)));
    EXPECT_TRUE(p.shouldClose(query(1, true, false)));
    EXPECT_TRUE(p.shouldClose(query(1, false, true)));
}

TEST(OpenAdaptive, ClosesOnlyOnConflictWithoutHits)
{
    OpenAdaptivePolicy p;
    EXPECT_FALSE(p.shouldClose(query(1, false, false))); // Idle: stay.
    EXPECT_FALSE(p.shouldClose(query(1, true, true)));   // Hit waiting.
    EXPECT_TRUE(p.shouldClose(query(1, false, true)));   // Conflict only.
}

TEST(CloseAdaptive, ClosesWhenNoPendingHit)
{
    CloseAdaptivePolicy p;
    EXPECT_TRUE(p.shouldClose(query(1, false, false)));
    EXPECT_FALSE(p.shouldClose(query(1, true, false)));
    EXPECT_FALSE(p.shouldClose(query(0, false, false))); // Unused row.
}

TEST(Timer, ClosesAfterIdleInterval)
{
    TimerPolicy p(10); // 10 DRAM cycles.
    const Tick last{1000};
    EXPECT_FALSE(p.shouldClose(
        query(1, false, false, 7, last + kBaselineClocks.dramToTicks(5), last)));
    EXPECT_TRUE(p.shouldClose(
        query(1, false, false, 7, last + kBaselineClocks.dramToTicks(10), last)));
    // A pending hit always holds the row open.
    EXPECT_FALSE(p.shouldClose(
        query(1, true, false, 7, last + kBaselineClocks.dramToTicks(100), last)));
}

TEST(Rbpp, UntrackedRowBehavesOpenAdaptive)
{
    RbppPolicy p;
    EXPECT_FALSE(p.shouldClose(query(1, false, false)));
    EXPECT_TRUE(p.shouldClose(query(1, false, true)));
}

TEST(Rbpp, RecordsOnlyRowsWithHits)
{
    RbppPolicy p;
    p.onPrecharge(0, 0, 7, 1); // Single access: not recorded.
    EXPECT_EQ(p.predictedHits(0, 0, 7), -1);
    p.onPrecharge(0, 0, 9, 4); // 3 hits: recorded.
    EXPECT_EQ(p.predictedHits(0, 0, 9), 3);
}

TEST(Rbpp, PredictionDrivesClosure)
{
    RbppPolicy p;
    p.onPrecharge(0, 0, 7, 3); // Predict 2 hits next time.
    // With 2 accesses done (1 hit so far), stay open.
    EXPECT_FALSE(p.shouldClose(query(2, false, false)));
    // After 3 accesses (first + 2 hits), close even without conflict.
    EXPECT_TRUE(p.shouldClose(query(3, false, false)));
    // But never while a hit is queued.
    EXPECT_FALSE(p.shouldClose(query(3, true, false)));
}

TEST(Rbpp, SingleAccessActivationRetiresStaleEntry)
{
    RbppPolicy p;
    p.onPrecharge(0, 0, 7, 4);
    EXPECT_EQ(p.predictedHits(0, 0, 7), 3);
    p.onPrecharge(0, 0, 7, 1); // This activation saw no hits.
    EXPECT_EQ(p.predictedHits(0, 0, 7), -1);
}

TEST(Rbpp, MarrCapacityEvictsLru)
{
    RbppPolicy p(2); // Two registers per bank.
    p.onPrecharge(0, 0, 1, 2);
    p.onPrecharge(0, 0, 2, 3);
    p.onPrecharge(0, 0, 3, 4); // Evicts row 1.
    EXPECT_EQ(p.predictedHits(0, 0, 1), -1);
    EXPECT_EQ(p.predictedHits(0, 0, 2), 2);
    EXPECT_EQ(p.predictedHits(0, 0, 3), 3);
}

TEST(Abpp, RecordsZeroHitRows)
{
    AbppPolicy p;
    p.onPrecharge(0, 0, 7, 1); // Zero hits: ABPP still records.
    EXPECT_EQ(p.predictedHits(0, 0, 7), 0);
    // Prediction of 0 hits means close right after the first access.
    EXPECT_TRUE(p.shouldClose(query(1, false, false)));
}

TEST(Abpp, PerBankTablesAreIndependent)
{
    AbppPolicy p;
    p.onPrecharge(0, 0, 7, 5);
    EXPECT_EQ(p.predictedHits(0, 0, 7), 4);
    EXPECT_EQ(p.predictedHits(0, 1, 7), -1);
    EXPECT_EQ(p.predictedHits(1, 0, 7), -1);
}

TEST(Abpp, UpdatesExistingEntry)
{
    AbppPolicy p;
    p.onPrecharge(0, 0, 7, 5);
    p.onPrecharge(0, 0, 7, 2);
    EXPECT_EQ(p.predictedHits(0, 0, 7), 1);
}

TEST(History, PriorPredictsSingleAccess)
{
    HistoryPolicy p;
    // Fresh predictor: weakly "single access", so close eagerly.
    EXPECT_TRUE(p.predictsSingleAccess(0, 0));
    EXPECT_TRUE(p.shouldClose(query(1, false, false)));
    EXPECT_FALSE(p.shouldClose(query(0, false, false))); // Unaccessed.
    EXPECT_FALSE(p.shouldClose(query(1, true, false)));  // Hit waiting.
}

TEST(History, LearnsMultiAccessPattern)
{
    HistoryPolicy p(2);
    // A steady run of multi-access activations flips the counters for
    // the histories the run walks through.
    for (int i = 0; i < 16; ++i)
        p.onPrecharge(0, 0, 7, 5);
    EXPECT_FALSE(p.predictsSingleAccess(0, 0));
    // Predicted reuse: fall back to open-adaptive behavior.
    EXPECT_FALSE(p.shouldClose(query(1, false, false)));
    EXPECT_TRUE(p.shouldClose(query(1, false, true)));
}

TEST(History, RelearnsSingleAccessPattern)
{
    HistoryPolicy p(2);
    for (int i = 0; i < 16; ++i)
        p.onPrecharge(0, 0, 7, 4);
    EXPECT_FALSE(p.predictsSingleAccess(0, 0));
    for (int i = 0; i < 16; ++i)
        p.onPrecharge(0, 0, 7, 1);
    EXPECT_TRUE(p.predictsSingleAccess(0, 0));
    EXPECT_TRUE(p.shouldClose(query(1, false, false)));
}

TEST(History, BankPredictorsAreIndependent)
{
    HistoryPolicy p(2);
    for (int i = 0; i < 16; ++i)
        p.onPrecharge(0, 0, 7, 5); // Bank 0 learns multi-access.
    EXPECT_FALSE(p.predictsSingleAccess(0, 0));
    EXPECT_TRUE(p.predictsSingleAccess(0, 1)); // Bank 1 untouched.
    EXPECT_TRUE(p.predictsSingleAccess(1, 0)); // Other rank untouched.
}

TEST(History, AlternatingPatternTracksPerHistoryCounters)
{
    // Alternate single / multi: with 2 history bits the histories
    // 0b10 (multi last) and 0b01 (single last) each converge to
    // predicting the *next* outcome in the cycle.
    HistoryPolicy p(2);
    for (int i = 0; i < 64; ++i)
        p.onPrecharge(0, 0, 7, (i % 2) ? 3 : 1);
    // The loop ends on a multi outcome: history 0b10, and the next
    // outcome in the cycle is single.
    EXPECT_TRUE(p.predictsSingleAccess(0, 0));
    p.onPrecharge(0, 0, 7, 1);
    // One more single: history 0b01, next in the cycle is multi.
    EXPECT_FALSE(p.predictsSingleAccess(0, 0));
}

TEST(Factory, AllPoliciesConstructible)
{
    for (auto kind :
         {PagePolicyKind::OpenAdaptive, PagePolicyKind::CloseAdaptive,
          PagePolicyKind::Rbpp, PagePolicyKind::Abpp,
          PagePolicyKind::Open, PagePolicyKind::Close,
          PagePolicyKind::Timer, PagePolicyKind::History}) {
        auto p = makePagePolicy(kind);
        ASSERT_NE(p, nullptr);
        EXPECT_STREQ(p->name(), pagePolicyKindName(kind));
        EXPECT_EQ(pagePolicyKindFromName(p->name()), kind);
    }
}
