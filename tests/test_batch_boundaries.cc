/**
 * @file
 * Batched-execution boundary conditions: every way a core's batched
 * run can terminate must leave the simulation bit-identical to the
 * per-cycle reference kernel — metrics AND exact DRAM command traces
 * — on both the DDR3-1600 baseline grid (2:5) and the DDR5-4800 grid
 * (6:5). Covered terminators:
 *  - a run ending at an L1-missing access (the op latches and executes
 *    at the core's next ordered tick),
 *  - scheduler quantum/decay/shuffle deadlines (ATLAS, TCM, RL, STFM)
 *    that the kernel must wake for regardless of how far cores batched,
 *  - refresh-induced stalls (batching must never skip a core past a
 *    refresh deadline's side effects),
 *  - the simulation end tick (batches clamp at the advance window so
 *    statistics windows close exactly like the reference loop).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dram/channel.hh"
#include "dram/devices.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

SimConfig
smallConfig(const char *device)
{
    SimConfig cfg = SimConfig::baseline();
    if (device)
        cfg.applyDevice(dramDeviceOrDie(device));
    cfg.warmupCoreCycles = 20'000;
    cfg.measureCoreCycles = 100'000;
    return cfg;
}

/** Every metric must match to the last bit, not approximately. */
void
expectIdentical(const MetricSet &ev, const MetricSet &ref)
{
    EXPECT_EQ(ev.userIpc, ref.userIpc);
    EXPECT_EQ(ev.avgReadLatency, ref.avgReadLatency);
    EXPECT_EQ(ev.readLatencyP99, ref.readLatencyP99);
    EXPECT_EQ(ev.rowHitRatePct, ref.rowHitRatePct);
    EXPECT_EQ(ev.l2Mpki, ref.l2Mpki);
    EXPECT_EQ(ev.bwUtilPct, ref.bwUtilPct);
    EXPECT_EQ(ev.committedInstructions, ref.committedInstructions);
    EXPECT_EQ(ev.measuredCycles, ref.measuredCycles);
    EXPECT_EQ(ev.memReads, ref.memReads);
    EXPECT_EQ(ev.memWrites, ref.memWrites);
    ASSERT_EQ(ev.perCoreIpc.size(), ref.perCoreIpc.size());
    for (std::size_t i = 0; i < ev.perCoreIpc.size(); ++i) {
        EXPECT_EQ(ev.perCoreIpc[i], ref.perCoreIpc[i]);
        EXPECT_EQ(ev.perCoreCommitted[i], ref.perCoreCommitted[i]);
        EXPECT_EQ(ev.perCoreCycles[i], ref.perCoreCycles[i]);
    }
}

struct TraceEntry
{
    DramCommandType type;
    std::uint32_t rank, bank;
    Tick tick;
    bool
    operator==(const TraceEntry &o) const
    {
        return type == o.type && rank == o.rank && bank == o.bank &&
               tick == o.tick;
    }
};

struct TracedRun
{
    MetricSet metrics;
    std::vector<TraceEntry> trace;
    KernelStats kernel;
    Tick end{};
};

TracedRun
runTraced(const SimConfig &cfg, WorkloadId wl, bool reference)
{
    System sys(cfg, workloadPreset(wl));
    sys.useReferenceKernel(reference);
    TracedRun r;
    sys.controller(0).channel().setCommandHook(
        [&r](const DramCommand &cmd, Tick now) {
            r.trace.push_back({cmd.type, cmd.rank, cmd.bank, now});
        });
    r.metrics = sys.run();
    r.kernel = sys.kernelStats();
    r.end = sys.now();
    return r;
}

/** Run both kernels; require identical metrics and command streams. */
TracedRun
expectEquivalent(const SimConfig &cfg, WorkloadId wl)
{
    const TracedRun ev = runTraced(cfg, wl, false);
    const TracedRun ref = runTraced(cfg, wl, true);
    EXPECT_EQ(ev.end, ref.end);
    expectIdentical(ev.metrics, ref.metrics);
    EXPECT_EQ(ev.trace.size(), ref.trace.size());
    const std::size_t n = std::min(ev.trace.size(), ref.trace.size());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(ev.trace[i] == ref.trace[i])
            << "command " << i << " diverges";
        if (!(ev.trace[i] == ref.trace[i]))
            break;
    }
    return ev;
}

} // namespace

class BatchBoundary : public ::testing::TestWithParam<const char *>
{
};

/**
 * Miss-terminated runs: WS's shared L2 traffic means every few dozen
 * instructions an access leaves the L1s, latches, and executes at the
 * ordered tick. The event run must still batch (or the scenario tests
 * nothing) and must still reach DRAM (so latched ops really were
 * misses, not just L2 hits).
 */
TEST_P(BatchBoundary, MissTerminatedRunsStayBitIdentical)
{
    const SimConfig cfg = smallConfig(GetParam());
    const TracedRun ev = expectEquivalent(cfg, WorkloadId::WS);
    EXPECT_GT(ev.kernel.coreBatchRuns, 0u);
    EXPECT_GT(ev.kernel.coreCyclesBatched, ev.kernel.coreBatchRuns);
    EXPECT_GT(ev.metrics.memReads, 0u);
}

/**
 * Scheduler deadline boundaries: ATLAS quanta, TCM's ranking shuffle,
 * RL's learning epochs and STFM's continuous fairness estimation all
 * report nextEventAt deadlines the kernel must execute no matter how
 * far ahead the cores batched.
 */
TEST_P(BatchBoundary, SchedulerDeadlinesStayBitIdentical)
{
    for (const SchedulerKind kind :
         {SchedulerKind::Atlas, SchedulerKind::Tcm, SchedulerKind::Rl,
          SchedulerKind::Stfm}) {
        SimConfig cfg = smallConfig(GetParam());
        cfg.scheduler = kind;
        const TracedRun ev = expectEquivalent(cfg, WorkloadId::WS);
        EXPECT_GT(ev.kernel.coreCyclesBatched, 0u);
    }
}

/**
 * Refresh-induced stalls: a refresh blocks banks for tRFC, so reads
 * queue up and the resulting stalls must land on exactly the same
 * cycles in both kernels. The trace must actually contain refreshes.
 */
TEST_P(BatchBoundary, RefreshStallsStayBitIdentical)
{
    SimConfig cfg = smallConfig(GetParam());
    cfg.refreshEnabled = true;
    cfg.measureCoreCycles = 150'000; // Spans several tREFI periods.
    const TracedRun ev = expectEquivalent(cfg, WorkloadId::WS);
    std::size_t refreshes = 0;
    for (const TraceEntry &e : ev.trace) {
        if (e.type == DramCommandType::Refresh)
            ++refreshes;
    }
    EXPECT_GT(refreshes, 0u) << "trace never exercised a refresh";
    EXPECT_GT(ev.kernel.coreCyclesBatched, 0u);
}

/**
 * Simulation end tick: batches are clamped to the advance window's
 * final core cycle, so ragged windows (prime-sized chunks that never
 * line up with batch sizes or the tick grid's LCM) must close every
 * statistics window on exactly the same cycle as the reference loop.
 */
TEST_P(BatchBoundary, WindowEndClampsBatches)
{
    const SimConfig cfg = smallConfig(GetParam());
    System ev(cfg, workloadPreset(WorkloadId::WS));
    System ref(cfg, workloadPreset(WorkloadId::WS));
    ref.useReferenceKernel(true);
    for (const std::uint64_t chunk :
         {std::uint64_t{9973}, std::uint64_t{1}, std::uint64_t{2},
          std::uint64_t{15013}, std::uint64_t{3}, std::uint64_t{30011}}) {
        ev.advance(chunk);
        ref.advance(chunk);
        ASSERT_EQ(ev.now(), ref.now());
        expectIdentical(ev.collect(), ref.collect());
    }
    ev.resetStats();
    ref.resetStats();
    ev.advance(50'000);
    ref.advance(50'000);
    expectIdentical(ev.collect(), ref.collect());
    EXPECT_GT(ev.kernelStats().coreCyclesBatched, 0u);
}

INSTANTIATE_TEST_SUITE_P(Devices, BatchBoundary,
                         ::testing::Values("DDR3-1600", "DDR5-4800"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return name;
                         });
