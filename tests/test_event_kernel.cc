/**
 * @file
 * Event-scheduled kernel tests: the idle-skip kernel must produce
 * bit-identical results to the tick-by-tick reference loop across
 * every scheduler, page policy, refresh setting and IO-enabled
 * workload; the kernel must never skip past a refresh deadline or a
 * crossbar-latch delivery (checked via exact command traces); and
 * Channel::nextLegalAt must agree with canIssue() constraint for
 * constraint.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

SimConfig
smallConfig()
{
    SimConfig cfg = SimConfig::baseline();
    cfg.warmupCoreCycles = 30'000;
    cfg.measureCoreCycles = 120'000;
    return cfg;
}

/** Every metric must match to the last bit, not approximately. */
void
expectIdentical(const MetricSet &ev, const MetricSet &ref)
{
    EXPECT_EQ(ev.userIpc, ref.userIpc);
    EXPECT_EQ(ev.avgReadLatency, ref.avgReadLatency);
    EXPECT_EQ(ev.readLatencyP50, ref.readLatencyP50);
    EXPECT_EQ(ev.readLatencyP95, ref.readLatencyP95);
    EXPECT_EQ(ev.readLatencyP99, ref.readLatencyP99);
    EXPECT_EQ(ev.rowHitRatePct, ref.rowHitRatePct);
    EXPECT_EQ(ev.l2Mpki, ref.l2Mpki);
    EXPECT_EQ(ev.avgReadQueue, ref.avgReadQueue);
    EXPECT_EQ(ev.avgWriteQueue, ref.avgWriteQueue);
    EXPECT_EQ(ev.bwUtilPct, ref.bwUtilPct);
    EXPECT_EQ(ev.singleAccessPct, ref.singleAccessPct);
    EXPECT_EQ(ev.sameGroupCasPct, ref.sameGroupCasPct);
    EXPECT_EQ(ev.ipcDisparity, ref.ipcDisparity);
    EXPECT_EQ(ev.dramEnergyNj, ref.dramEnergyNj);
    EXPECT_EQ(ev.dramAvgPowerMw, ref.dramAvgPowerMw);
    EXPECT_EQ(ev.committedInstructions, ref.committedInstructions);
    EXPECT_EQ(ev.measuredCycles, ref.measuredCycles);
    EXPECT_EQ(ev.memReads, ref.memReads);
    EXPECT_EQ(ev.memWrites, ref.memWrites);
    ASSERT_EQ(ev.perCoreIpc.size(), ref.perCoreIpc.size());
    for (std::size_t i = 0; i < ev.perCoreIpc.size(); ++i)
        EXPECT_EQ(ev.perCoreIpc[i], ref.perCoreIpc[i]);
}

void
runBothAndCompare(const SimConfig &cfg, WorkloadId wl)
{
    System ev(cfg, workloadPreset(wl));
    System ref(cfg, workloadPreset(wl));
    ref.useReferenceKernel(true);
    const MetricSet me = ev.run();
    const MetricSet mr = ref.run();
    expectIdentical(me, mr);
    EXPECT_EQ(ev.now(), ref.now());
}

} // namespace

/**
 * Golden equivalence across the scheduler matrix. WS exercises the
 * plain compute/cache path; WF runs 8 cores plus the DMA/IO engine,
 * so latch-ready and IO-issue events gate the skip logic too.
 */
class KernelSchedulerEquivalence
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, bool>>
{
};

TEST_P(KernelSchedulerEquivalence, BitIdenticalToReference)
{
    const auto [sched, refresh] = GetParam();
    SimConfig cfg = smallConfig();
    cfg.scheduler = sched;
    cfg.refreshEnabled = refresh;
    runBothAndCompare(cfg, WorkloadId::WS);
    runBothAndCompare(cfg, WorkloadId::WF); // IO engine enabled.
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, KernelSchedulerEquivalence,
    ::testing::Combine(
        ::testing::Values(SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks,
                          SchedulerKind::ParBs, SchedulerKind::Atlas,
                          SchedulerKind::Rl, SchedulerKind::Fcfs,
                          SchedulerKind::Fqm, SchedulerKind::Tcm,
                          SchedulerKind::Stfm),
        ::testing::Bool()),
    [](const auto &info) {
        std::string name = schedulerKindName(std::get<0>(info.param));
        name += std::get<1>(info.param) ? "_refresh" : "_norefresh";
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/**
 * Golden equivalence across the page policies; the Timer policy is
 * the one genuinely time-driven closure source the kernel must wake
 * for, and History/RBPP/ABPP exercise predictor state.
 */
class KernelPolicyEquivalence
    : public ::testing::TestWithParam<PagePolicyKind>
{
};

TEST_P(KernelPolicyEquivalence, BitIdenticalToReference)
{
    SimConfig cfg = smallConfig();
    cfg.pagePolicy = GetParam();
    runBothAndCompare(cfg, WorkloadId::DS);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, KernelPolicyEquivalence,
    ::testing::Values(PagePolicyKind::OpenAdaptive,
                      PagePolicyKind::CloseAdaptive, PagePolicyKind::Rbpp,
                      PagePolicyKind::Abpp, PagePolicyKind::Open,
                      PagePolicyKind::Close, PagePolicyKind::Timer,
                      PagePolicyKind::History),
    [](const auto &info) { return pagePolicyKindName(info.param); });

/**
 * Golden equivalence on non-baseline clock ratios: the kernel's
 * domain walk must be exact for any core:DRAM tick ratio, not just
 * the baseline's 2:5. DDR4-2400 runs 3:5 on a 166.7 ps tick (plus 16
 * banks/rank); LPDDR3-1600 keeps 2:5 but changes every timing;
 * DDR3-1066's 533 MHz bus is coprime with 2000 MHz cores, so its grid
 * degenerates to 533:2000 — the stress case for the boundary walk.
 */
class KernelDeviceEquivalence
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(KernelDeviceEquivalence, BitIdenticalToReference)
{
    SimConfig cfg = smallConfig();
    cfg.applyDevice(dramDeviceOrDie(GetParam()));
    runBothAndCompare(cfg, WorkloadId::WS);
    runBothAndCompare(cfg, WorkloadId::WF); // IO engine enabled.
}

INSTANTIATE_TEST_SUITE_P(NonBaselineDevices, KernelDeviceEquivalence,
                         ::testing::Values("DDR4-2400", "DDR5-4800",
                                           "LPDDR3-1600", "DDR3-1066"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return name;
                         });

/** Device sweeps must also hold under the time-driven page policy and
 *  a quantum scheduler, the two event sources with cycle-denominated
 *  deadlines that the clock refactor re-derives. */
TEST(KernelDeviceEquivalence, TimerPolicyAndAtlasOnDdr4)
{
    SimConfig cfg = smallConfig();
    cfg.applyDevice(dramDeviceOrDie("DDR4-2400"));
    cfg.pagePolicy = PagePolicyKind::Timer;
    cfg.scheduler = SchedulerKind::Atlas;
    runBothAndCompare(cfg, WorkloadId::DS);
}

/** Multi-channel configurations exercise per-controller due tracking. */
TEST(EventKernel, MultiChannelBitIdentical)
{
    SimConfig cfg = smallConfig();
    cfg.dram.channels = 4;
    cfg.mapping = MappingScheme::RoChRaBaCo;
    runBothAndCompare(cfg, WorkloadId::DS);
}

/** Repeated short advance() calls must land on the same state as the
 *  reference loop at every boundary, not just at run() end. */
TEST(EventKernel, IncrementalAdvanceMatches)
{
    SimConfig cfg = smallConfig();
    System ev(cfg, workloadPreset(WorkloadId::WS));
    System ref(cfg, workloadPreset(WorkloadId::WS));
    ref.useReferenceKernel(true);
    for (int chunk = 0; chunk < 8; ++chunk) {
        ev.advance(7'501); // Deliberately ragged chunks.
        ref.advance(7'501);
        EXPECT_EQ(ev.now(), ref.now());
    }
    ev.resetStats();
    ref.resetStats();
    ev.advance(40'000);
    ref.advance(40'000);
    expectIdentical(ev.collect(), ref.collect());
}

/**
 * Exact command-trace equality: the kernel must issue every DRAM
 * command — including every refresh — at exactly the tick the
 * reference loop issues it. A kernel that skipped past a refresh
 * deadline or a latch-ready tick would shift this sequence.
 */
namespace {

struct TraceEntry
{
    DramCommandType type;
    std::uint32_t rank, bank;
    Tick tick;
    bool operator==(const TraceEntry &o) const
    {
        return type == o.type && rank == o.rank && bank == o.bank &&
               tick == o.tick;
    }
};

/** Run DS on both kernels and require identical command streams. */
void
expectTraceIdentical(const char *device)
{
    auto trace = [device](bool reference) {
        SimConfig cfg = smallConfig();
        if (device)
            cfg.applyDevice(dramDeviceOrDie(device));
        cfg.measureCoreCycles = 200'000; // Spans several tREFI periods.
        System sys(cfg, workloadPreset(WorkloadId::DS));
        sys.useReferenceKernel(reference);
        std::vector<TraceEntry> out;
        sys.controller(0).channel().setCommandHook(
            [&out](const DramCommand &cmd, Tick now) {
                out.push_back({cmd.type, cmd.rank, cmd.bank, now});
            });
        (void)sys.run();
        return out;
    };
    const auto ev = trace(false);
    const auto ref = trace(true);
    ASSERT_EQ(ev.size(), ref.size());
    std::size_t refreshes = 0;
    for (std::size_t i = 0; i < ev.size(); ++i) {
        ASSERT_TRUE(ev[i] == ref[i]) << "command " << i << " diverges";
        if (ev[i].type == DramCommandType::Refresh)
            ++refreshes;
    }
    EXPECT_GT(refreshes, 0u) << "trace never exercised a refresh";
}

} // namespace

TEST(EventKernel, CommandTraceIdenticalIncludingRefresh)
{
    expectTraceIdentical(nullptr); // Baseline DDR3-1600.
}

TEST(EventKernel, CommandTraceIdenticalOnDdr4)
{
    // 3:5 tick ratio, 4 bank groups with real tCCD_L/tRRD_L/tWTR_L.
    expectTraceIdentical("DDR4-2400");
}

TEST(EventKernel, CommandTraceIdenticalOnDdr5)
{
    // 6:5 tick ratio, 8 groups x 4 banks, BL16.
    expectTraceIdentical("DDR5-4800");
}

TEST(EventKernel, CommandTraceIdenticalOnLpddr3)
{
    // Per-bank refresh: REFpb every tREFI/8 per rank, round-robin.
    expectTraceIdentical("LPDDR3-1600");
}

/**
 * Channel::nextLegalAt must agree with canIssue(): illegal strictly
 * before the reported tick, legal exactly at it (absent intervening
 * commands).
 */
class NextLegalTest : public ::testing::Test
{
  protected:
    NextLegalTest()
        : chan(geom(), DramTimings::ddr3_1600(), false)
    {
    }

    static DramGeometry
    geom()
    {
        DramGeometry g;
        g.channels = 1;
        g.ranksPerChannel = 2;
        g.banksPerRank = 8;
        g.rowsPerBank = 1u << 12;
        return g;
    }

    static DramCoord
    coord(std::uint32_t rank, std::uint32_t bank, std::uint64_t row)
    {
        DramCoord c;
        c.rank = rank;
        c.bank = bank;
        c.row = row;
        c.column = 3;
        return c;
    }

    void
    expectConsistent(const DramCommand &cmd, Tick now)
    {
        const Tick legal = chan.nextLegalAt(cmd, now);
        ASSERT_NE(legal, kMaxTick);
        EXPECT_TRUE(chan.canIssue(cmd, legal))
            << dramCommandName(cmd.type) << " not legal at its own "
            << "nextLegalAt " << legal;
        for (Tick t = now; t < legal; t += TickSpan{1}) {
            EXPECT_FALSE(chan.canIssue(cmd, t))
                << dramCommandName(cmd.type) << " already legal at " << t
                << " but nextLegalAt said " << legal;
        }
    }

    Channel chan;
};

TEST_F(NextLegalTest, ActivateReadPrechargeChain)
{
    const auto c = coord(0, 2, 7);
    expectConsistent(DramCommand::activate(c), Tick{});
    chan.issue(DramCommand::activate(c), Tick{});

    // Read gated by tRCD and the command bus.
    expectConsistent(DramCommand::read(c), Tick{1});
    const Tick rdAt = chan.nextLegalAt(DramCommand::read(c), Tick{1});
    chan.issue(DramCommand::read(c), rdAt);

    // Precharge gated by tRTP; next activate by tRP + tRC.
    expectConsistent(DramCommand::precharge(0, 2), rdAt + TickSpan{1});
    const Tick preAt =
        chan.nextLegalAt(DramCommand::precharge(0, 2), rdAt + TickSpan{1});
    chan.issue(DramCommand::precharge(0, 2), preAt);
    expectConsistent(DramCommand::activate(coord(0, 2, 9)),
                     preAt + TickSpan{1});
}

TEST_F(NextLegalTest, WriteToReadTurnaround)
{
    const auto c = coord(1, 4, 11);
    chan.issue(DramCommand::activate(c),
               chan.nextLegalAt(DramCommand::activate(c), Tick{}));
    const Tick wrAt = chan.nextLegalAt(DramCommand::write(c), Tick{});
    chan.issue(DramCommand::write(c), wrAt);
    // Same-rank read now gated by tWTR and the data bus.
    expectConsistent(DramCommand::read(c), wrAt + TickSpan{1});
}

TEST_F(NextLegalTest, FawGatesFifthActivate)
{
    // Four activates to distinct banks as fast as legality allows;
    // the fifth must report a tFAW-gated next-legal tick.
    Tick now{};
    for (std::uint32_t b = 0; b < 4; ++b) {
        const auto cmd = DramCommand::activate(coord(0, b, 1));
        now = chan.nextLegalAt(cmd, now);
        chan.issue(cmd, now);
    }
    expectConsistent(DramCommand::activate(coord(0, 4, 1)),
                     now + TickSpan{1});
}

TEST_F(NextLegalTest, StateMismatchesReportNever)
{
    const auto c = coord(0, 0, 5);
    // CAS/PRE to a closed bank can never become legal on their own.
    EXPECT_EQ(chan.nextLegalAt(DramCommand::read(c), Tick{}), kMaxTick);
    EXPECT_EQ(chan.nextLegalAt(DramCommand::precharge(0, 0), Tick{}),
              kMaxTick);
    chan.issue(DramCommand::activate(c), Tick{});
    // An activate to the now-open bank can't either.
    EXPECT_EQ(chan.nextLegalAt(DramCommand::activate(c), Tick{1}),
              kMaxTick);
    // A CAS to the wrong row is likewise stuck until a precharge.
    EXPECT_EQ(chan.nextLegalAt(DramCommand::read(coord(0, 0, 6)), Tick{1}),
              kMaxTick);
}

/** The reported skip statistics must show the kernel actually skips. */
TEST(EventKernel, SkipCountersShowIdleSkipping)
{
    SimConfig cfg = smallConfig();
    System sys(cfg, workloadPreset(WorkloadId::WS));
    (void)sys.run();
    const KernelStats &k = sys.kernelStats();
    const std::uint64_t coreCycles =
        kBaselineClocks.ticksToCore(sys.now()).count();
    const std::uint64_t dramCycles =
        kBaselineClocks.ticksToDram(sys.now()).count();
    // Every executed step is counted...
    EXPECT_GT(k.coreStepsRun, 0u);
    EXPECT_LE(k.coreStepsRun, coreCycles);
    EXPECT_LE(k.ctlTicksRun, dramCycles);
    // ...and a meaningful fraction of core ticks is skipped (WS cores
    // are blocked or compute-running most of the time).
    EXPECT_LT(k.coreTicksRun, coreCycles * sys.numCores() / 2);
}
