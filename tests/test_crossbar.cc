/**
 * @file
 * Crossbar link tests: delivery timing, FIFO order, move-only
 * payloads, and zero-latency edge behavior.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/crossbar.hh"

using namespace mcsim;

TEST(Crossbar, DeliversAfterExactLatency)
{
    CrossbarLink<int> link(8);
    link.push(100, 42);
    EXPECT_FALSE(link.ready(100));
    EXPECT_FALSE(link.ready(107));
    EXPECT_TRUE(link.ready(108));
    EXPECT_EQ(link.pop(), 42);
    EXPECT_FALSE(link.ready(200));
}

TEST(Crossbar, PreservesFifoOrder)
{
    CrossbarLink<int> link(4);
    link.push(0, 1);
    link.push(0, 2);
    link.push(1, 3);
    ASSERT_TRUE(link.ready(10));
    EXPECT_EQ(link.pop(), 1);
    EXPECT_EQ(link.pop(), 2);
    EXPECT_EQ(link.pop(), 3);
    EXPECT_EQ(link.size(), 0u);
}

TEST(Crossbar, HeadOfLineBlocksYoungerPayloads)
{
    // In-order delivery: the second payload is not visible before the
    // first is popped, even once its own deadline has passed.
    CrossbarLink<int> link(10);
    link.push(0, 1);  // Ready at 10.
    link.push(5, 2);  // Ready at 15.
    EXPECT_TRUE(link.ready(20));
    EXPECT_EQ(link.pop(), 1);
    EXPECT_TRUE(link.ready(20));
    EXPECT_EQ(link.pop(), 2);
}

TEST(Crossbar, ZeroLatencyDeliversSameTick)
{
    CrossbarLink<int> link(0);
    link.push(7, 9);
    EXPECT_TRUE(link.ready(7));
    EXPECT_EQ(link.pop(), 9);
}

TEST(Crossbar, MoveOnlyPayloadsSupported)
{
    CrossbarLink<std::unique_ptr<int>> link(2);
    link.push(0, std::make_unique<int>(5));
    ASSERT_TRUE(link.ready(2));
    auto p = link.pop();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 5);
}

TEST(Crossbar, SizeTracksOccupancy)
{
    CrossbarLink<int> link(3);
    EXPECT_EQ(link.size(), 0u);
    for (int i = 0; i < 5; ++i)
        link.push(i, i);
    EXPECT_EQ(link.size(), 5u);
    (void)link.pop();
    EXPECT_EQ(link.size(), 4u);
    EXPECT_EQ(link.latency(), 3u);
}
