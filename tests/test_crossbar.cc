/**
 * @file
 * Crossbar link tests: delivery timing, FIFO order, move-only
 * payloads, and zero-latency edge behavior.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/crossbar.hh"

using namespace mcsim;

TEST(Crossbar, DeliversAfterExactLatency)
{
    CrossbarLink<int> link(TickSpan{8});
    link.push(Tick{100}, 42);
    EXPECT_FALSE(link.ready(Tick{100}));
    EXPECT_FALSE(link.ready(Tick{107}));
    EXPECT_TRUE(link.ready(Tick{108}));
    EXPECT_EQ(link.pop(), 42);
    EXPECT_FALSE(link.ready(Tick{200}));
}

TEST(Crossbar, PreservesFifoOrder)
{
    CrossbarLink<int> link(TickSpan{4});
    link.push(Tick{0}, 1);
    link.push(Tick{0}, 2);
    link.push(Tick{1}, 3);
    ASSERT_TRUE(link.ready(Tick{10}));
    EXPECT_EQ(link.pop(), 1);
    EXPECT_EQ(link.pop(), 2);
    EXPECT_EQ(link.pop(), 3);
    EXPECT_EQ(link.size(), 0u);
}

TEST(Crossbar, HeadOfLineBlocksYoungerPayloads)
{
    // In-order delivery: the second payload is not visible before the
    // first is popped, even once its own deadline has passed.
    CrossbarLink<int> link(TickSpan{10});
    link.push(Tick{0}, 1);  // Ready at 10.
    link.push(Tick{5}, 2);  // Ready at 15.
    EXPECT_TRUE(link.ready(Tick{20}));
    EXPECT_EQ(link.pop(), 1);
    EXPECT_TRUE(link.ready(Tick{20}));
    EXPECT_EQ(link.pop(), 2);
}

TEST(Crossbar, ZeroLatencyDeliversSameTick)
{
    CrossbarLink<int> link(TickSpan{0});
    link.push(Tick{7}, 9);
    EXPECT_TRUE(link.ready(Tick{7}));
    EXPECT_EQ(link.pop(), 9);
}

TEST(Crossbar, MoveOnlyPayloadsSupported)
{
    CrossbarLink<std::unique_ptr<int>> link(TickSpan{2});
    link.push(Tick{0}, std::make_unique<int>(5));
    ASSERT_TRUE(link.ready(Tick{2}));
    auto p = link.pop();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 5);
}

TEST(Crossbar, SizeTracksOccupancy)
{
    CrossbarLink<int> link(TickSpan{3});
    EXPECT_EQ(link.size(), 0u);
    for (int i = 0; i < 5; ++i)
        link.push(Tick{static_cast<std::uint64_t>(i)}, i);
    EXPECT_EQ(link.size(), 5u);
    (void)link.pop();
    EXPECT_EQ(link.size(), 4u);
    EXPECT_EQ(link.latency(), TickSpan{3});
}
