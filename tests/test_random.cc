/**
 * @file
 * Tests for the deterministic RNG and Zipfian sampler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"

using namespace mcsim;

TEST(Pcg32, DeterministicAcrossInstances)
{
    Pcg32 a(42, 7), b(42, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU32(), b.nextU32());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU32() == b.nextU32();
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BelowRespectsBound)
{
    Pcg32 rng(123);
    for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1u << 30}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Pcg32, Below64RespectsBound)
{
    Pcg32 rng(321);
    for (std::uint64_t bound :
         {1ull, 3ull, 1ull << 33, (1ull << 40) + 12345}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below64(bound), bound);
    }
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Pcg32, ChanceExtremes)
{
    Pcg32 rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Pcg32, BelowIsRoughlyUniform)
{
    Pcg32 rng(77);
    constexpr int kBuckets = 8;
    constexpr int kSamples = 80000;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.below(kBuckets)];
    for (int c : counts) {
        EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
    }
}

TEST(Zipfian, UniformWhenThetaZero)
{
    ZipfianGenerator zipf(16, 0.0);
    Pcg32 rng(4);
    std::vector<int> counts(16, 0);
    for (int i = 0; i < 64000; ++i)
        ++counts[zipf.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 4000, 600);
}

TEST(Zipfian, HotItemDominatesWithHighTheta)
{
    ZipfianGenerator zipf(1024, 0.99);
    Pcg32 rng(4);
    std::vector<int> counts(1024, 0);
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i)
        ++counts[zipf.sample(rng)];
    // Item 0 is the hottest and far above the uniform share.
    EXPECT_GT(counts[0], kSamples / 1024 * 20);
    EXPECT_GT(counts[0], counts[512]);
}

TEST(Zipfian, SamplesInRange)
{
    for (double theta : {0.0, 0.5, 0.9, 0.99}) {
        ZipfianGenerator zipf(37, theta); // Non-power-of-two n.
        Pcg32 rng(11);
        for (int i = 0; i < 2000; ++i)
            ASSERT_LT(zipf.sample(rng), 37u);
    }
}

TEST(Zipfian, SingleItem)
{
    ZipfianGenerator zipf(1, 0.9);
    Pcg32 rng(2);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

/** Property sweep: skew increases head concentration monotonically. */
class ZipfSkew : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkew, HeadShareGrowsWithTheta)
{
    const double theta = GetParam();
    ZipfianGenerator zipf(4096, theta);
    ZipfianGenerator flat(4096, 0.0);
    Pcg32 rng(31);
    int zipfHead = 0, flatHead = 0;
    for (int i = 0; i < 20000; ++i) {
        zipfHead += zipf.sample(rng) < 64;
        flatHead += flat.sample(rng) < 64;
    }
    EXPECT_GT(zipfHead, flatHead);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZipfSkew,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9, 0.99));
