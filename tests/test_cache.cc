/**
 * @file
 * Cache model tests: hit/miss behavior, LRU replacement, write-back
 * state, and fill/victim mechanics.
 */

#include <gtest/gtest.h>

#include "cpu/cache.hh"

using namespace mcsim;

namespace {

CacheConfig
tiny()
{
    // 2 sets x 2 ways x 64 B = 256 B.
    return CacheConfig{256, 2, 64};
}

} // namespace

TEST(Cache, MissThenFillThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.access(0x0, false));
    c.fill(0x0, false);
    EXPECT_TRUE(c.access(0x0, false));
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SetIndexingSeparatesSets)
{
    Cache c(tiny());
    c.fill(0x00, false); // Set 0.
    c.fill(0x40, false); // Set 1.
    EXPECT_TRUE(c.contains(0x00));
    EXPECT_TRUE(c.contains(0x40));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tiny());
    // Set 0 holds blocks whose addresses differ by 2 blocks (0x80).
    c.fill(0x000, false);
    c.fill(0x080, false);
    c.access(0x000, false); // Touch; 0x080 becomes LRU.
    const auto res = c.fill(0x100, false);
    EXPECT_TRUE(res.victimValid);
    EXPECT_EQ(res.victimAddr, 0x080u);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x080));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache c(tiny());
    c.fill(0x000, true); // Dirty.
    c.fill(0x080, false);
    const auto res = c.fill(0x100, false); // Evicts dirty 0x000.
    EXPECT_TRUE(res.victimValid);
    EXPECT_TRUE(res.victimDirty);
    EXPECT_EQ(res.victimAddr, 0x000u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteAccessMarksDirty)
{
    Cache c(tiny());
    c.fill(0x000, false);
    c.access(0x000, true); // Store hit dirties the line.
    c.fill(0x080, false);
    const auto res = c.fill(0x100, false);
    EXPECT_TRUE(res.victimDirty);
}

TEST(Cache, FillExistingBlockUpdatesInsteadOfDuplicating)
{
    Cache c(tiny());
    c.fill(0x000, false);
    const auto res = c.fill(0x000, true); // Racing fill.
    EXPECT_FALSE(res.victimValid);
    c.fill(0x080, false);
    const auto evict = c.fill(0x100, false);
    // The single 0x000 line is dirty from the second fill.
    EXPECT_TRUE(evict.victimDirty);
}

TEST(Cache, InvalidateReturnsDirtiness)
{
    Cache c(tiny());
    c.fill(0x000, true);
    EXPECT_TRUE(c.invalidate(0x000));
    EXPECT_FALSE(c.contains(0x000));
    EXPECT_FALSE(c.invalidate(0x000)); // Already gone.
}

TEST(Cache, BlockAlignMasksOffset)
{
    Cache c(tiny());
    EXPECT_EQ(c.blockAlign(0x7F), 0x40u);
    EXPECT_EQ(c.blockAlign(0x40), 0x40u);
}

TEST(Cache, SubBlockAddressesHitSameLine)
{
    Cache c(tiny());
    c.fill(0x40, false);
    EXPECT_TRUE(c.access(0x47, false));
    EXPECT_TRUE(c.access(0x7F, false));
}

/** Property: working sets up to the cache size never self-evict. */
class CacheCapacity : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheCapacity, ResidentWorkingSetAlwaysHits)
{
    const std::uint32_t ways = GetParam();
    CacheConfig cfg{8192, ways, 64};
    Cache c(cfg);
    const std::uint64_t blocks = cfg.sizeBytes / cfg.blockBytes;
    for (std::uint64_t b = 0; b < blocks; ++b)
        c.fill(b * 64, false);
    for (std::uint64_t b = 0; b < blocks; ++b)
        EXPECT_TRUE(c.access(b * 64, false)) << "block " << b;
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheCapacity,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));
