/**
 * @file
 * Qualitative integration tests: small-scale versions of the paper's
 * headline shapes that must hold for the reproduction to be credible.
 * These use shortened windows, so thresholds are deliberately loose —
 * the benches regenerate the full-figure numbers.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

SimConfig
quick(std::uint64_t measure = 400'000)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.warmupCoreCycles = 150'000;
    cfg.measureCoreCycles = measure;
    return cfg;
}

MetricSet
run(WorkloadId wl, const SimConfig &cfg)
{
    System sys(cfg, workloadPreset(wl));
    return sys.run();
}

} // namespace

TEST(Shapes, FrFcfsBeatsOrMatchesAtlasOnScaleOut)
{
    SimConfig base = quick();
    SimConfig atlas = base;
    atlas.scheduler = SchedulerKind::Atlas;
    // MapReduce is the paper's worst ATLAS case (52% loss).
    const double ipcBase = run(WorkloadId::MR, base).userIpc;
    const double ipcAtlas = run(WorkloadId::MR, atlas).userIpc;
    EXPECT_GT(ipcBase, ipcAtlas * 0.99);
}

TEST(Shapes, FcfsBanksCloseToFrFcfsOnMostScaleOut)
{
    SimConfig base = quick();
    SimConfig fcfsb = base;
    fcfsb.scheduler = SchedulerKind::FcfsBanks;
    // Web Search is one of the five SCOW workloads within ~1%.
    const double ipcBase = run(WorkloadId::WS, base).userIpc;
    const double ipcFcfs = run(WorkloadId::WS, fcfsb).userIpc;
    EXPECT_GT(ipcFcfs / ipcBase, 0.93);
}

TEST(Shapes, SingleAccessActivationsDominate)
{
    // The paper's Figure 8 headline: 76%-90% of activations get one
    // access under OAPM.
    for (auto wl : {WorkloadId::DS, WorkloadId::SS, WorkloadId::TPCC1}) {
        const MetricSet m = run(wl, quick());
        EXPECT_GT(m.singleAccessPct, 70.0) << workloadAcronym(wl);
        EXPECT_LE(m.singleAccessPct, 98.0) << workloadAcronym(wl);
    }
}

TEST(Shapes, CloseAdaptiveSlashesRowHits)
{
    SimConfig oapm = quick();
    SimConfig capm = oapm;
    capm.pagePolicy = PagePolicyKind::CloseAdaptive;
    const double hitsOapm = run(WorkloadId::MS, oapm).rowHitRatePct;
    const double hitsCapm = run(WorkloadId::MS, capm).rowHitRatePct;
    // Paper Figure 9: CAPM keeps only a small fraction of OAPM hits.
    EXPECT_LT(hitsCapm, hitsOapm * 0.5);
}

TEST(Shapes, PredictivePoliciesPreserveMoreHitsThanClose)
{
    SimConfig capm = quick();
    capm.pagePolicy = PagePolicyKind::CloseAdaptive;
    SimConfig rbpp = quick();
    rbpp.pagePolicy = PagePolicyKind::Rbpp;
    const double hitsCapm = run(WorkloadId::WF, capm).rowHitRatePct;
    const double hitsRbpp = run(WorkloadId::WF, rbpp).rowHitRatePct;
    EXPECT_GT(hitsRbpp, hitsCapm);
}

TEST(Shapes, DecisionSupportGainsFromChannels)
{
    SimConfig one = quick();
    SimConfig four = quick();
    four.dram.channels = 4;
    four.mapping = MappingScheme::RoChRaBaCo;
    const double ipc1 = run(WorkloadId::TPCHQ2, one).userIpc;
    const double ipc4 = run(WorkloadId::TPCHQ2, four).userIpc;
    EXPECT_GT(ipc4 / ipc1, 1.03); // Paper: DSPW +19% average.
}

TEST(Shapes, ScaleOutGainsLittleFromChannels)
{
    // Needs a warm L2: with a cold cache Web Search's compulsory
    // misses make it look bandwidth-bound and channels appear to help.
    SimConfig one = quick(1'500'000);
    one.warmupCoreCycles = 1'500'000;
    SimConfig four = one;
    four.dram.channels = 4;
    four.mapping = MappingScheme::RoChRaBaCo;
    const double ipc1 = run(WorkloadId::WS, one).userIpc;
    const double ipc4 = run(WorkloadId::WS, four).userIpc;
    // Web Search barely uses one channel's bandwidth (paper: ~1.7%).
    EXPECT_LT(ipc4 / ipc1, 1.10);
    EXPECT_GT(ipc4 / ipc1, 0.90);
}

TEST(Shapes, BlockChannelInterleaveBreaksRowLocality)
{
    SimConfig stripes = quick();
    stripes.dram.channels = 4;
    stripes.mapping = MappingScheme::RoRaBaChCo;
    SimConfig blocks = stripes;
    blocks.mapping = MappingScheme::RoRaBaCoCh;
    // Media Streaming's long sequential bursts: block interleaving
    // scatters each row's blocks over all channels.
    const double hitStripes =
        run(WorkloadId::MS, stripes).rowHitRatePct;
    const double hitBlocks = run(WorkloadId::MS, blocks).rowHitRatePct;
    EXPECT_GT(hitStripes, hitBlocks);
}

TEST(Shapes, DecisionSupportHasHighestMpki)
{
    // Warm L2 required: cold misses inflate Web Search's MPKI far
    // above its steady state (~3) and mask the category gap.
    SimConfig cfg = quick(1'500'000);
    cfg.warmupCoreCycles = 1'500'000;
    const double mpkiDsp = run(WorkloadId::TPCHQ6, cfg).l2Mpki;
    const double mpkiSco = run(WorkloadId::WS, cfg).l2Mpki;
    EXPECT_GT(mpkiDsp, mpkiSco * 2.0);
}

TEST(Shapes, TcmMatchesFrFcfsOnHomogeneousScaleOut)
{
    // The paper's Section 5 excludes TCM because fairness is a
    // non-issue for scale-out workloads; if that holds, TCM's
    // clustering machinery must neither help nor hurt much on a
    // homogeneous SCOW workload.
    SimConfig base = quick();
    SimConfig tcm = base;
    tcm.scheduler = SchedulerKind::Tcm;
    const double ipcBase = run(WorkloadId::WS, base).userIpc;
    const double ipcTcm = run(WorkloadId::WS, tcm).userIpc;
    // Loose bounds (short windows): like ATLAS, TCM's cluster ranking
    // costs a few percent on homogeneous workloads, never double digits.
    EXPECT_GT(ipcTcm / ipcBase, 0.90);
    EXPECT_LT(ipcTcm / ipcBase, 1.05);
}

TEST(Shapes, QueuesStayShallow)
{
    // Paper Section 4.1.3: no scheduler needed more than a 10-entry
    // read queue / 50-entry write queue on average.
    const MetricSet m = run(WorkloadId::DS, quick());
    EXPECT_LT(m.avgReadQueue, 10.0);
    EXPECT_LT(m.avgWriteQueue, 50.0);
}
