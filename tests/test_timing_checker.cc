/**
 * @file
 * TimingChecker tests, including the cross-model property test: any
 * command stream the Channel model accepts must also satisfy the
 * independently-implemented protocol checker.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "dram/channel.hh"
#include "dram/timing_checker.hh"

using namespace mcsim;

namespace {

DramGeometry
geom()
{
    DramGeometry g;
    g.rowsPerBank = 1u << 12;
    return g;
}

} // namespace

TEST(TimingChecker, AcceptsLegalSequence)
{
    const auto tm = DramTimings::ddr3_1600();
    TimingChecker chk(geom(), tm);
    DramCoord c{0, 0, 0, 5, 0};
    EXPECT_EQ(chk.check(DramCommand::activate(c), Tick{}), "");
    EXPECT_EQ(chk.check(DramCommand::read(c),
                        Tick{} + kBaselineClocks.dramToTicks(tm.tRCD)),
              "");
    EXPECT_EQ(chk.accepted(), 2u);
}

TEST(TimingChecker, RejectsTrcdViolation)
{
    const auto tm = DramTimings::ddr3_1600();
    TimingChecker chk(geom(), tm);
    DramCoord c{0, 0, 0, 5, 0};
    EXPECT_EQ(chk.check(DramCommand::activate(c), Tick{}), "");
    const std::string err =
        chk.check(DramCommand::read(c),
                  Tick{} + kBaselineClocks.dramToTicks(tm.tRCD) - TickSpan{5});
    EXPECT_NE(err.find("tRCD"), std::string::npos);
}

TEST(TimingChecker, RejectsCasToClosedBank)
{
    TimingChecker chk(geom(), DramTimings::ddr3_1600());
    DramCoord c{0, 0, 0, 5, 0};
    const std::string err = chk.check(DramCommand::read(c), Tick{100});
    EXPECT_NE(err.find("closed bank"), std::string::npos);
}

TEST(TimingChecker, RejectsActToOpenBank)
{
    TimingChecker chk(geom(), DramTimings::ddr3_1600());
    DramCoord c{0, 0, 0, 5, 0};
    EXPECT_EQ(chk.check(DramCommand::activate(c), Tick{}), "");
    const std::string err =
        chk.check(DramCommand::activate(c),
                  Tick{} + kBaselineClocks.dramToTicks(100));
    EXPECT_NE(err.find("open bank"), std::string::npos);
}

TEST(TimingChecker, RejectsRefreshWithOpenBank)
{
    TimingChecker chk(geom(), DramTimings::ddr3_1600());
    DramCoord c{0, 0, 0, 5, 0};
    EXPECT_EQ(chk.check(DramCommand::activate(c), Tick{}), "");
    const std::string err =
        chk.check(DramCommand::refresh(0),
                  Tick{} + kBaselineClocks.dramToTicks(100));
    EXPECT_NE(err.find("open bank"), std::string::npos);
}

/**
 * Cross-model property: drive random request traffic through the
 * Channel, issuing whatever it deems legal; every issued command must
 * pass the independent checker. Parameterized by RNG seed.
 */
class ChannelCheckerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ChannelCheckerFuzz, ChannelNeverViolatesProtocol)
{
    const auto tm = DramTimings::ddr3_1600();
    const auto g = geom();
    Channel chan(g, tm, true);
    TimingChecker chk(g, tm);
    Pcg32 rng(GetParam());

    std::uint64_t issued = 0;
    const Tick fuzzEnd = Tick{} + kBaselineClocks.dramToTicks(20000);
    for (Tick t{}; t < fuzzEnd;
         t += kBaselineClocks.ticksPerDram) {
        // Refresh first, mirroring the controller's priority.
        const int refRank = chan.refreshDueRank(t);
        bool didIssue = false;
        if (refRank >= 0) {
            const auto r = static_cast<std::uint32_t>(refRank);
            for (std::uint32_t b = 0;
                 b < g.banksPerRank && !didIssue; ++b) {
                if (chan.rank(r).bank(b).isOpen()) {
                    const auto pre = DramCommand::precharge(r, b);
                    if (chan.canIssue(pre, t)) {
                        ASSERT_EQ(chk.check(pre, t), "");
                        chan.issue(pre, t);
                        didIssue = true;
                    }
                }
            }
            const auto ref = DramCommand::refresh(r);
            if (!didIssue && chan.canIssue(ref, t)) {
                ASSERT_EQ(chk.check(ref, t), "");
                chan.issue(ref, t);
                didIssue = true;
            }
        }
        // Then a random legal command.
        for (int attempt = 0; attempt < 8 && !didIssue; ++attempt) {
            DramCoord c;
            c.rank = rng.below(g.ranksPerChannel);
            c.bank = rng.below(g.banksPerRank);
            const Bank &bank = chan.bank(c.rank, c.bank);
            c.row = bank.isOpen() && rng.chance(0.7)
                        ? bank.openRow()
                        : rng.below(256);
            c.column = rng.below(16);
            DramCommand cmd = DramCommand::activate(c);
            switch (rng.below(4)) {
              case 0:
                cmd = DramCommand::activate(c);
                break;
              case 1:
                cmd = DramCommand::read(c);
                break;
              case 2:
                cmd = DramCommand::write(c);
                break;
              case 3:
                cmd = DramCommand::precharge(c.rank, c.bank);
                break;
            }
            if (chan.canIssue(cmd, t)) {
                const std::string err = chk.check(cmd, t);
                ASSERT_EQ(err, "")
                    << dramCommandName(cmd.type) << " at tick " << t;
                chan.issue(cmd, t);
                ++issued;
                didIssue = true;
            }
        }
    }
    // The fuzz must exercise a meaningful number of commands.
    EXPECT_GT(issued, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelCheckerFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
