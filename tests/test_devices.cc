/**
 * @file
 * Clock-domain arithmetic, the DRAM device registry, and geometry
 * validation: the tick grid must be exact for every registered
 * frequency pair, every registry entry must be internally consistent
 * (and able to host the IO/DMA buffer), and DramGeometry must reject
 * non-power-of-two shapes loudly.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/devices.hh"
#include "sim/sim_config.hh"

using namespace mcsim;

TEST(ClockDomains, BaselineMatchesPaperGrid)
{
    // 2 GHz over 800 MHz: 250 ps ticks, ratios 2 and 5.
    EXPECT_EQ(kBaselineClocks.ticksPerCore.count(), 2u);
    EXPECT_EQ(kBaselineClocks.ticksPerDram.count(), 5u);
    EXPECT_EQ(kBaselineClocks.tickMhz(), 4000u);
    EXPECT_DOUBLE_EQ(kBaselineClocks.nsPerTick(), 0.25);
    EXPECT_DOUBLE_EQ(kBaselineClocks.nsPerDramCycle(), 1.25);
    EXPECT_EQ(ClockDomains::fromMhz(2000, 800), kBaselineClocks);
}

TEST(ClockDomains, ArbitraryRatiosStayExact)
{
    // DDR4-2400 under 2 GHz cores: LCM(2000,1200) = 6000 MHz ticks.
    const ClockDomains ddr4 = ClockDomains::fromMhz(2000, 1200);
    EXPECT_EQ(ddr4.ticksPerCore.count(), 3u);
    EXPECT_EQ(ddr4.ticksPerDram.count(), 5u);
    EXPECT_EQ(ddr4.tickMhz(), 6000u);

    // DDR3-1066 (533 MHz): a deliberately ugly pair.
    const ClockDomains ddr3 = ClockDomains::fromMhz(2000, 533);
    EXPECT_EQ(ddr3.ticksPerCore * 2000u, ddr3.ticksPerDram * 533u);

    // Equal frequencies collapse to a 1:1 grid.
    const ClockDomains flat = ClockDomains::fromMhz(1000, 1000);
    EXPECT_EQ(flat.ticksPerCore.count(), 1u);
    EXPECT_EQ(flat.ticksPerDram.count(), 1u);
}

TEST(ClockDomains, ConversionsRoundTrip)
{
    const ClockDomains clk = ClockDomains::fromMhz(2000, 1200);
    for (std::uint64_t cycles : {0ull, 1ull, 7ull, 123'456ull}) {
        EXPECT_EQ(clk.ticksToCore(clk.coreToTicks(cycles)).count(),
                  cycles);
        EXPECT_EQ(clk.ticksToDram(clk.dramToTicks(cycles)).count(),
                  cycles);
    }
    // One cycle of either domain always spans >= 1 tick.
    EXPECT_GE(clk.ticksPerCore.count(), 1u);
    EXPECT_GE(clk.ticksPerDram.count(), 1u);
}

TEST(DeviceRegistry, ContainsTheDocumentedSpeedGrades)
{
    std::set<std::string> names;
    for (const DramDevice &d : dramDeviceRegistry())
        names.insert(d.name);
    for (const char *want :
         {"DDR3-1066", "DDR3-1333", "DDR3-1600", "DDR3-1866", "DDR4-2400",
          "DDR5-4800", "LPDDR3-1600"}) {
        EXPECT_TRUE(names.count(want)) << "missing device " << want;
    }
    EXPECT_EQ(names.size(), dramDeviceRegistry().size())
        << "duplicate registry names";
    EXPECT_NE(findDramDevice("DDR4-2400"), nullptr);
    EXPECT_EQ(findDramDevice("DDR9-9999"), nullptr);
}

TEST(DeviceRegistry, EntriesAreInternallyConsistent)
{
    for (const DramDevice &d : dramDeviceRegistry()) {
        SCOPED_TRACE(d.name);
        // DDR: data rate = 2x bus clock (within marketing rounding,
        // e.g. "1333" MT/s on a 667 MHz bus).
        const int drift = static_cast<int>(d.dataRateMtps) -
                          2 * static_cast<int>(d.busMhz);
        EXPECT_LE(drift < 0 ? -drift : drift, 1)
            << "bus clock is not half the data rate";
        const DramTimings &t = d.timings;
        // JEDEC structural relations every real device satisfies.
        EXPECT_GE(t.tRC, t.tRAS + 1) << "tRC must exceed tRAS";
        EXPECT_LE(t.tRAS, t.tRC);
        EXPECT_GE(t.tRAS, t.tRCD) << "row must stay open past tRCD";
        EXPECT_GE(t.tFAW, t.tRRD) << "four activates cannot beat one";
        EXPECT_GE(t.tRFC, t.tRP) << "refresh outlasts a precharge";
        EXPECT_GT(t.tREFI, t.tRFC) << "refresh interval must dominate";
        EXPECT_TRUE(t.tBURST == 4 || t.tBURST == 8)
            << "BL8 is 4 clocks on a DDR bus; DDR5's BL16 is 8";
        // Split (bank-group) timings: the long same-group value can
        // never undercut the short any-pair one, and a device without
        // bank groups must keep the pairs equal so the single-tCCD
        // model is reproduced exactly.
        EXPECT_GE(t.tCCDL, t.tCCD);
        EXPECT_GE(t.tRRDL, t.tRRD);
        EXPECT_GE(t.tWTRL, t.tWTR);
        if (d.geometry.bankGroupsPerRank == 1) {
            EXPECT_EQ(t.tCCDL, t.tCCD);
            EXPECT_EQ(t.tRRDL, t.tRRD);
            EXPECT_EQ(t.tWTRL, t.tWTR);
        }
        // Per-bank refresh needs its cycle time; a per-bank burst is
        // shorter than the rank-wide one it replaces.
        if (t.perBankRefresh) {
            EXPECT_GT(t.tRFCpb, 0u);
            EXPECT_LT(t.tRFCpb, t.tRFC);
            EXPECT_GT(t.tREFI / d.geometry.banksPerRank, t.tRFCpb)
                << "per-bank refresh interval must dominate tRFCpb";
        }
        // Geometry is legal and divides cleanly.
        d.geometry.validate();
        EXPECT_GE(d.geometry.banksPerRank, d.geometry.bankGroupsPerRank);
        EXPECT_GE(d.power.vdd, 1.0);
        EXPECT_GT(d.power.idd4r, d.power.idd3n);
        EXPECT_FALSE(d.source.empty());
    }
}

TEST(DeviceRegistry, EveryDeviceHostsTheIoBuffer)
{
    // System places the DMA buffer at a fixed 7 GiB + 512 MiB window;
    // a registry geometry too small would abort IO-enabled workloads.
    const std::uint64_t ioEnd = (7ull << 30) + (512ull << 20);
    for (const DramDevice &d : dramDeviceRegistry()) {
        SCOPED_TRACE(d.name);
        EXPECT_GE(d.geometry.capacityBytes(), ioEnd);
    }
}

TEST(DeviceRegistry, BankGroupDevicesCarryRealSplitTimings)
{
    const DramDevice &ddr4 = dramDeviceOrDie("DDR4-2400");
    EXPECT_EQ(ddr4.geometry.bankGroupsPerRank, 4u);
    EXPECT_EQ(ddr4.geometry.banksPerGroup(), 4u);
    EXPECT_GT(ddr4.timings.tCCDL, ddr4.timings.tCCD);
    EXPECT_GT(ddr4.timings.tRRDL, ddr4.timings.tRRD);
    EXPECT_GT(ddr4.timings.tWTRL, ddr4.timings.tWTR);

    const DramDevice &ddr5 = dramDeviceOrDie("DDR5-4800");
    EXPECT_EQ(ddr5.geometry.banksPerRank, 32u);
    EXPECT_EQ(ddr5.geometry.bankGroupsPerRank, 8u);
    EXPECT_EQ(ddr5.timings.tBURST, 8u); // BL16.
    EXPECT_GT(ddr5.timings.tCCDL, ddr5.timings.tCCD);

    const DramDevice &lp = dramDeviceOrDie("LPDDR3-1600");
    EXPECT_TRUE(lp.timings.perBankRefresh);
    EXPECT_GT(lp.timings.tRFCpb, 0u);
}

TEST(DramGeometry, BankGroupOfUsesHighBankBits)
{
    DramGeometry g;
    g.banksPerRank = 16;
    g.bankGroupsPerRank = 4;
    EXPECT_EQ(g.banksPerGroup(), 4u);
    EXPECT_EQ(g.bankGroupOf(0), 0u);
    EXPECT_EQ(g.bankGroupOf(3), 0u);
    EXPECT_EQ(g.bankGroupOf(4), 1u);
    EXPECT_EQ(g.bankGroupOf(15), 3u);
}

TEST(SimConfigDevice, ApplyDevicePreservesChannelsAndCoreClock)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.dram.channels = 4;
    cfg.setCoreMhz(3000);
    cfg.applyDevice(dramDeviceOrDie("DDR4-2400"));
    EXPECT_EQ(cfg.deviceName, "DDR4-2400");
    EXPECT_EQ(cfg.dram.channels, 4u);       // Caller's sweep axis.
    EXPECT_EQ(cfg.dram.banksPerRank, 16u);  // Device geometry.
    EXPECT_EQ(cfg.clocks.coreMhz, 3000u);   // Preserved.
    EXPECT_EQ(cfg.clocks.dramMhz, 1200u);   // Device bus clock.
    EXPECT_EQ(cfg.timings.tCAS, 17u);
    EXPECT_DOUBLE_EQ(cfg.power.vdd, 1.2);
}

TEST(DramGeometry, CapacityScalesWithChannels)
{
    DramGeometry g; // Baseline: 8 GiB at 1 channel.
    EXPECT_EQ(g.capacityBytes(), 8ull << 30);
    g.channels = 4;
    EXPECT_EQ(g.capacityBytes(), 32ull << 30);
    g.channels = 8;
    EXPECT_EQ(g.capacityBytes(), 64ull << 30);
    // No overflow surprises at plausible extremes: 8 channels x
    // 4 ranks x 16 banks x 2^17 rows x 8 KB = 2^39 bytes = 512 GiB.
    g.ranksPerChannel = 4;
    g.banksPerRank = 16;
    g.rowsPerBank = 1ull << 17;
    EXPECT_EQ(g.capacityBytes(), 1ull << 39);
}

using DramGeometryDeathTest = ::testing::Test;

TEST(DramGeometryDeathTest, ValidateRejectsNonPowerOfTwoFields)
{
    const auto withBad = [](auto mutate) {
        DramGeometry g;
        mutate(g);
        g.validate();
    };
    EXPECT_DEATH(withBad([](DramGeometry &g) { g.channels = 3; }),
                 "powers of two");
    EXPECT_DEATH(withBad([](DramGeometry &g) { g.ranksPerChannel = 6; }),
                 "powers of two");
    EXPECT_DEATH(withBad([](DramGeometry &g) { g.banksPerRank = 12; }),
                 "powers of two");
    EXPECT_DEATH(withBad([](DramGeometry &g) { g.bankGroupsPerRank = 3; }),
                 "bank groups");
    EXPECT_DEATH(withBad([](DramGeometry &g) { g.bankGroupsPerRank = 16; }),
                 "bank groups"); // More groups than banks.
    EXPECT_DEATH(withBad([](DramGeometry &g) { g.rowsPerBank = 1000; }),
                 "powers of two");
    EXPECT_DEATH(withBad([](DramGeometry &g) { g.rowBufferBytes = 6000; }),
                 "powers of two");
    EXPECT_DEATH(withBad([](DramGeometry &g) { g.blockBytes = 48; }),
                 "powers of two");
}

TEST(DramGeometryDeathTest, ValidateRejectsRowSmallerThanBlock)
{
    DramGeometry g;
    g.rowBufferBytes = 32; // Power of two, but below the 64 B block.
    EXPECT_DEATH(g.validate(), "row buffer smaller than a block");
}
