/**
 * @file
 * End-to-end system tests: smoke runs, determinism, metric sanity,
 * multi-channel configurations, and the experiment harness cache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

SimConfig
quickConfig()
{
    SimConfig cfg = SimConfig::baseline();
    cfg.warmupCoreCycles = 100'000;
    cfg.measureCoreCycles = 300'000;
    return cfg;
}

} // namespace

TEST(System, SmokeRunProducesSaneMetrics)
{
    System sys(quickConfig(), workloadPreset(WorkloadId::DS));
    const MetricSet m = sys.run();
    EXPECT_GT(m.userIpc, 0.1);
    EXPECT_LE(m.userIpc, 16.0);
    EXPECT_GT(m.avgReadLatency, 30.0); // At least the DRAM minimum.
    EXPECT_LT(m.avgReadLatency, 5000.0);
    EXPECT_GE(m.rowHitRatePct, 0.0);
    EXPECT_LE(m.rowHitRatePct, 100.0);
    EXPECT_GT(m.l2Mpki, 0.0);
    EXPECT_GE(m.bwUtilPct, 0.0);
    EXPECT_LE(m.bwUtilPct, 100.0);
    EXPECT_GE(m.singleAccessPct, 0.0);
    EXPECT_LE(m.singleAccessPct, 100.0);
    EXPECT_GT(m.memReads, 0u);
    EXPECT_GT(m.memWrites, 0u);
    EXPECT_EQ(m.perCoreIpc.size(), 16u);
    EXPECT_EQ(m.measuredCycles, 300'000u);
}

TEST(System, DeterministicAcrossRuns)
{
    System a(quickConfig(), workloadPreset(WorkloadId::WS));
    System b(quickConfig(), workloadPreset(WorkloadId::WS));
    const MetricSet ma = a.run();
    const MetricSet mb = b.run();
    EXPECT_EQ(ma.committedInstructions, mb.committedInstructions);
    EXPECT_EQ(ma.memReads, mb.memReads);
    EXPECT_DOUBLE_EQ(ma.userIpc, mb.userIpc);
    EXPECT_DOUBLE_EQ(ma.rowHitRatePct, mb.rowHitRatePct);
}

TEST(System, WebFrontendRunsEightCores)
{
    System sys(quickConfig(), workloadPreset(WorkloadId::WF));
    EXPECT_EQ(sys.numCores(), 8u);
    const MetricSet m = sys.run();
    EXPECT_EQ(m.perCoreIpc.size(), 8u);
}

TEST(System, MultiChannelDistributesTraffic)
{
    SimConfig cfg = quickConfig();
    cfg.dram.channels = 4;
    cfg.mapping = MappingScheme::RoRaBaCoCh;
    System sys(cfg, workloadPreset(WorkloadId::TPCHQ6));
    EXPECT_EQ(sys.numControllers(), 4u);
    const MetricSet m = sys.run();
    EXPECT_GT(m.userIpc, 0.1);
    // Every channel serviced a meaningful share of the reads.
    for (std::uint32_t ch = 0; ch < 4; ++ch) {
        EXPECT_GT(sys.controller(ch).stats().servedReads,
                  m.memReads / 16);
    }
}

TEST(System, MoreChannelsNeverSlowDecisionSupport)
{
    SimConfig one = quickConfig();
    SimConfig four = quickConfig();
    four.dram.channels = 4;
    four.mapping = MappingScheme::RoChRaBaCo;
    System s1(one, workloadPreset(WorkloadId::TPCHQ6));
    System s4(four, workloadPreset(WorkloadId::TPCHQ6));
    const double ipc1 = s1.run().userIpc;
    const double ipc4 = s4.run().userIpc;
    // DSPW is bandwidth-bound: 4 channels must help (paper: +19%).
    EXPECT_GT(ipc4, ipc1);
}

TEST(System, IoEngineGeneratesDmaTraffic)
{
    // Data Serving configures a DMA engine (ioWindow > 0): requests
    // attributed to the IO pseudo-core must reach the controller.
    System sys(quickConfig(), workloadPreset(WorkloadId::DS));
    (void)sys.run();
    const auto &perCore = sys.controller(0).stats().perCoreReads;
    EXPECT_GT(perCore[16], 0u); // Overflow slot = IO pseudo-core.
}

TEST(System, NoIoEngineWithoutIoWindow)
{
    // MapReduce has no DMA engine; the IO slot must stay silent.
    ASSERT_EQ(workloadPreset(WorkloadId::MR).ioWindow, 0u);
    System sys(quickConfig(), workloadPreset(WorkloadId::MR));
    (void)sys.run();
    EXPECT_EQ(sys.controller(0).stats().perCoreReads[16], 0u);
}

TEST(System, PostedIoWritesReachDramQuickly)
{
    // IO writes are posted: they must commit to DRAM within a short
    // window even while reads keep arriving (the wedge this design
    // prevents: window slots held until a write CAS never issues).
    SimConfig cfg = quickConfig();
    cfg.measureCoreCycles = 200'000;
    System sys(cfg, workloadPreset(WorkloadId::MS));
    const MetricSet m = sys.run();
    EXPECT_GT(m.memWrites, 10u);
}

TEST(System, LatencyPercentilesOrderedAndPlausible)
{
    System sys(quickConfig(), workloadPreset(WorkloadId::DS));
    const MetricSet m = sys.run();
    EXPECT_GT(m.readLatencyP50, 20.0); // Above the raw DRAM minimum.
    EXPECT_LE(m.readLatencyP50, m.readLatencyP95);
    EXPECT_LE(m.readLatencyP95, m.readLatencyP99);
    // The mean sits inside the distribution's bulk.
    EXPECT_LT(m.readLatencyP50 / 8.0, m.avgReadLatency);
    EXPECT_GT(m.readLatencyP99 * 8.0, m.avgReadLatency);
}

TEST(System, ExternalGeneratorConstructor)
{
    WorkloadParams p = workloadPreset(WorkloadId::SS);
    SyntheticWorkload gen(p, 16ull << 30);
    System sys(quickConfig(), gen, p.cores);
    const MetricSet m = sys.run();
    EXPECT_GT(m.userIpc, 0.1);
}

TEST(System, ResetStatsStartsFreshWindow)
{
    System sys(quickConfig(), workloadPreset(WorkloadId::MR));
    sys.advance(100'000);
    sys.resetStats();
    sys.advance(50'000);
    const MetricSet m = sys.collect();
    EXPECT_EQ(m.measuredCycles, 50'000u);
    EXPECT_GT(m.committedInstructions, 0u);
}

TEST(ExperimentRunner, CacheRoundtrip)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/cloudmc_cache_test.csv";
    std::remove(path.c_str());

    SimConfig cfg = quickConfig();
    MetricSet first;
    {
        ExperimentRunner runner(path);
        first = runner.run(WorkloadId::WS, cfg);
        EXPECT_EQ(runner.simulationsRun(), 1u);
        // Second call hits the in-memory cache.
        (void)runner.run(WorkloadId::WS, cfg);
        EXPECT_EQ(runner.cacheHits(), 1u);
    }
    {
        // New runner reloads from disk: no simulation needed.
        ExperimentRunner runner(path);
        const MetricSet again = runner.run(WorkloadId::WS, cfg);
        EXPECT_EQ(runner.simulationsRun(), 0u);
        EXPECT_EQ(runner.cacheHits(), 1u);
        EXPECT_NEAR(again.userIpc, first.userIpc, 1e-4);
        EXPECT_NEAR(again.rowHitRatePct, first.rowHitRatePct, 1e-2);
    }
    std::remove(path.c_str());
}

TEST(ExperimentRunner, KeysDistinguishConfigurations)
{
    SimConfig a = SimConfig::baseline();
    SimConfig b = a;
    b.scheduler = SchedulerKind::Atlas;
    SimConfig c = a;
    c.dram.channels = 4;
    SimConfig d = a;
    d.pagePolicy = PagePolicyKind::Rbpp;
    SimConfig e = a;
    e.mapping = MappingScheme::RoChRaBaCo;
    const auto ka = ExperimentRunner::configKey(WorkloadId::DS, a);
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::MR, a));
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::DS, b));
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::DS, c));
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::DS, d));
    EXPECT_NE(ka, ExperimentRunner::configKey(WorkloadId::DS, e));
}

TEST(ExperimentRunner, DisabledCacheAlwaysSimulates)
{
    ExperimentRunner runner("-");
    SimConfig cfg = quickConfig();
    cfg.measureCoreCycles = 150'000;
    (void)runner.run(WorkloadId::WS, cfg);
    (void)runner.run(WorkloadId::WS, cfg);
    EXPECT_EQ(runner.simulationsRun(), 2u);
    EXPECT_EQ(runner.cacheHits(), 0u);
}

/** Scheduler sweep: the full system completes under every policy. */
class SystemSchedulerSweep
    : public ::testing::TestWithParam<SchedulerKind>
{
};

TEST_P(SystemSchedulerSweep, RunsToCompletion)
{
    SimConfig cfg = quickConfig();
    cfg.scheduler = GetParam();
    System sys(cfg, workloadPreset(WorkloadId::DS));
    const MetricSet m = sys.run();
    EXPECT_GT(m.userIpc, 0.05);
    EXPECT_GT(m.memReads, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SystemSchedulerSweep,
    ::testing::Values(SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks,
                      SchedulerKind::ParBs, SchedulerKind::Atlas,
                      SchedulerKind::Rl, SchedulerKind::Fcfs,
                      SchedulerKind::Fqm, SchedulerKind::Tcm,
                      SchedulerKind::Stfm));

/** Page-policy sweep: likewise. */
class SystemPolicySweep
    : public ::testing::TestWithParam<PagePolicyKind>
{
};

TEST_P(SystemPolicySweep, RunsToCompletion)
{
    SimConfig cfg = quickConfig();
    cfg.pagePolicy = GetParam();
    System sys(cfg, workloadPreset(WorkloadId::MS));
    const MetricSet m = sys.run();
    EXPECT_GT(m.userIpc, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SystemPolicySweep,
    ::testing::Values(PagePolicyKind::OpenAdaptive,
                      PagePolicyKind::CloseAdaptive, PagePolicyKind::Rbpp,
                      PagePolicyKind::Abpp, PagePolicyKind::Open,
                      PagePolicyKind::Close, PagePolicyKind::Timer,
                      PagePolicyKind::History));
