/**
 * @file
 * Randomized differential validation of the two simulation kernels:
 * 64 seeded random configurations — device (including the bank-group
 * DDR4/DDR5 grades and per-bank-refresh LPDDR3) x scheduler x page
 * policy x mapping x bank-group mapping x channel count x workload x
 * refresh on/off — each run on the event-scheduled kernel AND the
 * tick-by-tick reference loop, asserting bit-identical metrics and
 * exact per-channel command-trace equality.
 *
 * A failing configuration is printed as a reproducible spec string:
 * paste it into a file and run `example_run_experiment --config` (or
 * re-run this suite with CLOUDMC_FUZZ_SEED) to replay the exact point.
 * CI pins CLOUDMC_FUZZ_SEED so the covered sample is stable per run
 * while the seed knob still lets a soak loop walk fresh samples.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "dram/devices.hh"
#include "mem/factory.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

/** Base seed: CLOUDMC_FUZZ_SEED when set (CI pins it), else 1. */
std::uint64_t
fuzzBaseSeed()
{
    if (const char *env = std::getenv("CLOUDMC_FUZZ_SEED")) {
        const auto v = std::strtoull(env, nullptr, 10);
        if (v >= 1)
            return v;
    }
    return 1;
}

struct FuzzConfig
{
    SimConfig cfg;
    WorkloadId workload = WorkloadId::DS;
    bool refresh = true;

    /** The configuration as a runnable `--config` spec string. */
    std::string
    specString() const
    {
        std::ostringstream out;
        out << "device = " << cfg.deviceName << '\n'
            << "scheduler = " << schedulerKindName(cfg.scheduler) << '\n'
            << "policy = " << pagePolicyKindName(cfg.pagePolicy) << '\n'
            << "mapping = " << mappingSchemeName(cfg.mapping) << '\n'
            << "group_mapping = "
            << bankGroupMappingName(cfg.bankGroupMapping) << '\n'
            << "channels = " << cfg.dram.channels << '\n'
            << "workload = " << workloadAcronym(workload) << '\n'
            << "refresh = " << (refresh ? "on" : "off") << '\n'
            << "warmup = " << cfg.warmupCoreCycles << '\n'
            << "measure = " << cfg.measureCoreCycles << '\n';
        return out.str();
    }
};

/** Derive one random configuration from the (base seed, index) pair. */
FuzzConfig
drawConfig(std::uint64_t index)
{
    Pcg32 rng(fuzzBaseSeed() * 1'000'003 + index, 0x22);
    FuzzConfig f;
    f.cfg = SimConfig::baseline();

    const auto &registry = dramDeviceRegistry();
    f.cfg.applyDevice(
        registry[rng.below(static_cast<std::uint32_t>(registry.size()))]);
    f.cfg.scheduler = kAllSchedulers[rng.below(
        static_cast<std::uint32_t>(kAllSchedulers.size()))];
    f.cfg.pagePolicy = kAllPagePolicies[rng.below(
        static_cast<std::uint32_t>(kAllPagePolicies.size()))];
    f.cfg.mapping = kExtendedMappingSchemes[rng.below(
        static_cast<std::uint32_t>(kExtendedMappingSchemes.size()))];
    f.cfg.bankGroupMapping = kAllBankGroupMappings[rng.below(2)];
    f.cfg.dram.channels = 1u << rng.below(3); // 1, 2 or 4.
    f.workload = kAllWorkloads[rng.below(
        static_cast<std::uint32_t>(kAllWorkloads.size()))];
    f.refresh = rng.below(2) == 0;
    f.cfg.refreshEnabled = f.refresh;
    // Small windows keep 64 double (event + reference) runs cheap
    // while still spanning several tREFI periods on every device.
    f.cfg.warmupCoreCycles = 20'000;
    f.cfg.measureCoreCycles = 50'000;
    return f;
}

struct TraceEntry
{
    std::uint32_t channel;
    DramCommandType type;
    std::uint32_t rank, bank;
    std::uint64_t row;
    std::uint32_t column;
    Tick tick;

    bool
    operator==(const TraceEntry &o) const
    {
        return channel == o.channel && type == o.type && rank == o.rank &&
               bank == o.bank && row == o.row && column == o.column &&
               tick == o.tick;
    }
};

struct RunResult
{
    MetricSet metrics;
    Tick endTick{};
    std::vector<TraceEntry> trace;
};

RunResult
runKernel(const FuzzConfig &f, bool reference)
{
    System sys(f.cfg, workloadPreset(f.workload));
    sys.useReferenceKernel(reference);
    RunResult r;
    for (std::uint32_t ch = 0; ch < sys.numControllers(); ++ch) {
        sys.controller(ch).channel().setCommandHook(
            [&r, ch](const DramCommand &cmd, Tick now) {
                r.trace.push_back({ch, cmd.type, cmd.rank, cmd.bank,
                                   cmd.row, cmd.column, now});
            });
    }
    r.metrics = sys.run();
    r.endTick = sys.now();
    return r;
}

/** Every metric must match to the last bit, not approximately. */
void
expectMetricsIdentical(const MetricSet &ev, const MetricSet &ref)
{
    EXPECT_EQ(ev.userIpc, ref.userIpc);
    EXPECT_EQ(ev.avgReadLatency, ref.avgReadLatency);
    EXPECT_EQ(ev.readLatencyP50, ref.readLatencyP50);
    EXPECT_EQ(ev.readLatencyP95, ref.readLatencyP95);
    EXPECT_EQ(ev.readLatencyP99, ref.readLatencyP99);
    EXPECT_EQ(ev.rowHitRatePct, ref.rowHitRatePct);
    EXPECT_EQ(ev.l2Mpki, ref.l2Mpki);
    EXPECT_EQ(ev.avgReadQueue, ref.avgReadQueue);
    EXPECT_EQ(ev.avgWriteQueue, ref.avgWriteQueue);
    EXPECT_EQ(ev.bwUtilPct, ref.bwUtilPct);
    EXPECT_EQ(ev.singleAccessPct, ref.singleAccessPct);
    EXPECT_EQ(ev.sameGroupCasPct, ref.sameGroupCasPct);
    EXPECT_EQ(ev.ipcDisparity, ref.ipcDisparity);
    EXPECT_EQ(ev.dramEnergyNj, ref.dramEnergyNj);
    EXPECT_EQ(ev.dramAvgPowerMw, ref.dramAvgPowerMw);
    EXPECT_EQ(ev.committedInstructions, ref.committedInstructions);
    EXPECT_EQ(ev.measuredCycles, ref.measuredCycles);
    EXPECT_EQ(ev.memReads, ref.memReads);
    EXPECT_EQ(ev.memWrites, ref.memWrites);
    ASSERT_EQ(ev.perCoreIpc.size(), ref.perCoreIpc.size());
    for (std::size_t i = 0; i < ev.perCoreIpc.size(); ++i)
        EXPECT_EQ(ev.perCoreIpc[i], ref.perCoreIpc[i]);
}

} // namespace

class KernelFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(KernelFuzz, EventAndReferenceKernelsAgreeOnRandomConfig)
{
    const FuzzConfig f = drawConfig(GetParam());
    SCOPED_TRACE("reproduce with --config spec:\n" + f.specString());

    const RunResult ev = runKernel(f, /*reference=*/false);
    const RunResult ref = runKernel(f, /*reference=*/true);

    expectMetricsIdentical(ev.metrics, ref.metrics);
    EXPECT_EQ(ev.endTick, ref.endTick);

    // Exact command-trace equality, all channels interleaved in issue
    // order: a kernel that skipped a refresh deadline, latch delivery
    // or group-timing boundary shifts this sequence.
    ASSERT_EQ(ev.trace.size(), ref.trace.size())
        << "command counts diverge";
    for (std::size_t i = 0; i < ev.trace.size(); ++i) {
        ASSERT_TRUE(ev.trace[i] == ref.trace[i])
            << "command " << i << " diverges: event kernel issued "
            << dramCommandName(ev.trace[i].type) << "@ch"
            << ev.trace[i].channel << " tick " << ev.trace[i].tick
            << ", reference issued "
            << dramCommandName(ref.trace[i].type) << "@ch"
            << ref.trace[i].channel << " tick " << ref.trace[i].tick;
    }
    EXPECT_FALSE(ev.trace.empty()) << "run issued no DRAM commands";
}

INSTANTIATE_TEST_SUITE_P(SixtyFourSeededConfigs, KernelFuzz,
                         ::testing::Range<std::uint64_t>(0, 64));
