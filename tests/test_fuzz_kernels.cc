/**
 * @file
 * Randomized differential validation of the two simulation kernels:
 * 64 seeded random configurations — device (including the bank-group
 * DDR4/DDR5 grades, per-bank-refresh LPDDR3, and the stacked HMC2
 * part) x scheduler x page policy x mapping x bank-group mapping x
 * channel count x workload x refresh on/off — each run on the
 * event-scheduled kernel AND the tick-by-tick reference loop,
 * asserting bit-identical metrics and exact per-channel command-trace
 * equality. A quarter of the indices force the stacked backend
 * (vault counts {4, 8, 16}, dynamic remapping on/off) so vault
 * routing, TSV timing and the migration cost model are always in the
 * differential sample.
 *
 * Each configuration additionally runs the epoch-sharded parallel
 * kernel at thread budgets {2, 4, 7}; metrics and command traces must
 * equal the serial event kernel (and hence the reference) at every
 * thread count — the epoch/barrier contract in the README.
 *
 * A failing configuration is printed as a reproducible spec string:
 * paste it into a file and run `example_run_experiment --config` (or
 * re-run this suite with CLOUDMC_FUZZ_SEED) to replay the exact point.
 * CI pins CLOUDMC_FUZZ_SEED so the covered sample is stable per run
 * while the seed knob still lets a soak loop walk fresh samples.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "dram/devices.hh"
#include "mem/factory.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

/** Base seed: CLOUDMC_FUZZ_SEED when set (CI pins it), else 1. */
std::uint64_t
fuzzBaseSeed()
{
    if (const char *env = std::getenv("CLOUDMC_FUZZ_SEED")) {
        const auto v = std::strtoull(env, nullptr, 10);
        if (v >= 1)
            return v;
    }
    return 1;
}

struct FuzzConfig
{
    SimConfig cfg;
    WorkloadId workload = WorkloadId::DS;
    bool refresh = true;

    /** The configuration as a runnable `--config` spec string. */
    std::string
    specString() const
    {
        std::ostringstream out;
        out << "device = " << cfg.deviceName << '\n'
            << "scheduler = " << schedulerKindName(cfg.scheduler) << '\n'
            << "policy = " << pagePolicyKindName(cfg.pagePolicy) << '\n'
            << "mapping = " << mappingSchemeName(cfg.mapping) << '\n'
            << "group_mapping = "
            << bankGroupMappingName(cfg.bankGroupMapping) << '\n'
            << "channels = " << cfg.dram.channels << '\n'
            << "workload = " << workloadAcronym(workload) << '\n'
            << "refresh = " << (refresh ? "on" : "off") << '\n';
        if (cfg.dram.vaultsPerStack > 0) {
            out << "backend = stacked\n"
                << "vaults = " << cfg.dram.vaultsPerStack << '\n'
                << "remap = " << (cfg.remap.enabled ? "on" : "off")
                << '\n';
        }
        if (cfg.tier.enabled) {
            out << "tier = on\n"
                << "tier_policy = " << tierPolicyName(cfg.tier.policy)
                << '\n'
                << "tier_capacity_pct = " << cfg.tier.fastCapacityPct
                << '\n'
                << "monitor_sample = " << cfg.tier.monitorSampleEvery
                << '\n'
                << "monitor_window = " << cfg.tier.monitorWindowSamples
                << '\n';
        }
        out << "warmup = " << cfg.warmupCoreCycles << '\n'
            << "measure = " << cfg.measureCoreCycles << '\n'
            << "kernel_threads = " << cfg.kernelThreads << '\n';
        return out.str();
    }
};

/** Derive one random configuration from the (base seed, index) pair. */
FuzzConfig
drawConfig(std::uint64_t index)
{
    Pcg32 rng(fuzzBaseSeed() * 1'000'003 + index, 0x22);
    FuzzConfig f;
    f.cfg = SimConfig::baseline();

    const auto &registry = dramDeviceRegistry();
    f.cfg.applyDevice(
        registry[rng.below(static_cast<std::uint32_t>(registry.size()))]);
    f.cfg.scheduler = kAllSchedulers[rng.below(
        static_cast<std::uint32_t>(kAllSchedulers.size()))];
    f.cfg.pagePolicy = kAllPagePolicies[rng.below(
        static_cast<std::uint32_t>(kAllPagePolicies.size()))];
    f.cfg.mapping = kExtendedMappingSchemes[rng.below(
        static_cast<std::uint32_t>(kExtendedMappingSchemes.size()))];
    f.cfg.bankGroupMapping = kAllBankGroupMappings[rng.below(2)];
    f.cfg.dram.channels = 1u << rng.below(3); // 1, 2 or 4.
    f.workload = kAllWorkloads[rng.below(
        static_cast<std::uint32_t>(kAllWorkloads.size()))];
    f.refresh = rng.below(2) == 0;
    f.cfg.refreshEnabled = f.refresh;
    // Stacked-backend sampling: a quarter of the indices force the
    // stacked reference part, so vault-geometry and remapping coverage
    // never depends on the registry draw above happening to pick it.
    if (rng.below(4) == 0)
        f.cfg.applyDevice(*findDramDevice("HMC2-8GB"));
    if (f.cfg.dram.vaultsPerStack > 0) {
        const std::uint32_t vaultChoices[] = {4, 8, 16};
        f.cfg.setVaults(vaultChoices[rng.below(3)]);
        f.cfg.remap.enabled = rng.below(2) == 0;
        // Each stack fans out into one controller queue per vault;
        // cap the stack count so the tick-by-tick reference runs
        // (which step every controller every cycle) stay cheap.
        f.cfg.dram.channels = std::min(f.cfg.dram.channels, 2u);
    }
    // Tiered-composition sampling (drawn AFTER every earlier knob so
    // the pre-v7 rng streams — and CI's pinned coverage — are
    // unchanged): a quarter of the indices wrap the drawn fast tier
    // in the tiered backend, cycling the three policies and both
    // capacity splits, with a monitor window small enough that
    // hotness_based migrations actually fire inside the tiny run.
    if (rng.below(4) == 0) {
        f.cfg.tier.enabled = true;
        const TierPolicy policies[] = {TierPolicy::StaticSplit,
                                       TierPolicy::HotnessBased,
                                       TierPolicy::AlloyCache};
        f.cfg.tier.policy = policies[rng.below(3)];
        f.cfg.tier.fastCapacityPct = rng.below(2) == 0 ? 50 : 25;
        f.cfg.tier.monitorSampleEvery = 2;
        f.cfg.tier.monitorWindowSamples = 64;
    }
    // Small windows keep 64 double (event + reference) runs cheap
    // while still spanning several tREFI periods on every device.
    f.cfg.warmupCoreCycles = 20'000;
    f.cfg.measureCoreCycles = 50'000;
    return f;
}

struct TraceEntry
{
    std::uint32_t channel;
    DramCommandType type;
    std::uint32_t rank, bank;
    std::uint64_t row;
    std::uint32_t column;
    Tick tick;

    bool
    operator==(const TraceEntry &o) const
    {
        return channel == o.channel && type == o.type && rank == o.rank &&
               bank == o.bank && row == o.row && column == o.column &&
               tick == o.tick;
    }
};

struct RunResult
{
    MetricSet metrics;
    Tick endTick{};
    std::vector<TraceEntry> trace;
};

RunResult
runKernel(const FuzzConfig &f, bool reference,
          std::uint32_t kernelThreads = 1)
{
    SimConfig cfg = f.cfg;
    cfg.kernelThreads = kernelThreads;
    System sys(cfg, workloadPreset(f.workload));
    sys.useReferenceKernel(reference);
    RunResult r;
    // Capture per channel: command hooks fire on the owning shard's
    // thread under the parallel kernel, so a shared vector would race.
    std::vector<std::vector<TraceEntry>> perCh(sys.numControllers());
    for (std::uint32_t ch = 0; ch < sys.numControllers(); ++ch) {
        sys.controller(ch).channel().setCommandHook(
            [&perCh, ch](const DramCommand &cmd, Tick now) {
                perCh[ch].push_back({ch, cmd.type, cmd.rank, cmd.bank,
                                     cmd.row, cmd.column, now});
            });
    }
    r.metrics = sys.run();
    r.endTick = sys.now();
    // Merge by (tick, channel). The serial kernels' interleaved issue
    // order is exactly this sort: controllers tick in channel-index
    // order and issue at most one command per tick, so the merge is a
    // kernel-independent canonical form.
    for (const auto &v : perCh)
        r.trace.insert(r.trace.end(), v.begin(), v.end());
    std::stable_sort(r.trace.begin(), r.trace.end(),
                     [](const TraceEntry &a, const TraceEntry &b) {
                         return a.tick != b.tick ? a.tick < b.tick
                                                 : a.channel < b.channel;
                     });
    return r;
}

/** Exact command-trace equality with a pinpointed first divergence. */
void
expectTracesIdentical(const RunResult &got, const RunResult &want,
                      const char *gotName, const char *wantName)
{
    ASSERT_EQ(got.trace.size(), want.trace.size())
        << "command counts diverge (" << gotName << " vs " << wantName
        << ")";
    for (std::size_t i = 0; i < got.trace.size(); ++i) {
        ASSERT_TRUE(got.trace[i] == want.trace[i])
            << "command " << i << " diverges: " << gotName << " issued "
            << dramCommandName(got.trace[i].type) << "@ch"
            << got.trace[i].channel << " tick " << got.trace[i].tick
            << ", " << wantName << " issued "
            << dramCommandName(want.trace[i].type) << "@ch"
            << want.trace[i].channel << " tick " << want.trace[i].tick;
    }
}

/** Every metric must match to the last bit, not approximately. */
void
expectMetricsIdentical(const MetricSet &ev, const MetricSet &ref)
{
    EXPECT_EQ(ev.userIpc, ref.userIpc);
    EXPECT_EQ(ev.avgReadLatency, ref.avgReadLatency);
    EXPECT_EQ(ev.readLatencyP50, ref.readLatencyP50);
    EXPECT_EQ(ev.readLatencyP95, ref.readLatencyP95);
    EXPECT_EQ(ev.readLatencyP99, ref.readLatencyP99);
    EXPECT_EQ(ev.rowHitRatePct, ref.rowHitRatePct);
    EXPECT_EQ(ev.l2Mpki, ref.l2Mpki);
    EXPECT_EQ(ev.avgReadQueue, ref.avgReadQueue);
    EXPECT_EQ(ev.avgWriteQueue, ref.avgWriteQueue);
    EXPECT_EQ(ev.bwUtilPct, ref.bwUtilPct);
    EXPECT_EQ(ev.singleAccessPct, ref.singleAccessPct);
    EXPECT_EQ(ev.sameGroupCasPct, ref.sameGroupCasPct);
    EXPECT_EQ(ev.ipcDisparity, ref.ipcDisparity);
    EXPECT_EQ(ev.dramEnergyNj, ref.dramEnergyNj);
    EXPECT_EQ(ev.dramAvgPowerMw, ref.dramAvgPowerMw);
    EXPECT_EQ(ev.committedInstructions, ref.committedInstructions);
    EXPECT_EQ(ev.measuredCycles, ref.measuredCycles);
    EXPECT_EQ(ev.memReads, ref.memReads);
    EXPECT_EQ(ev.memWrites, ref.memWrites);
    ASSERT_EQ(ev.perCoreIpc.size(), ref.perCoreIpc.size());
    for (std::size_t i = 0; i < ev.perCoreIpc.size(); ++i)
        EXPECT_EQ(ev.perCoreIpc[i], ref.perCoreIpc[i]);
    // Stacked-backend quantities (all-zero on flat configurations).
    EXPECT_EQ(ev.vaultQueueImbalance, ref.vaultQueueImbalance);
    EXPECT_EQ(ev.remapMigrations, ref.remapMigrations);
    EXPECT_EQ(ev.remapMigratedRows, ref.remapMigratedRows);
    // Tiered-backend quantities (all-zero on non-tiered configurations).
    EXPECT_EQ(ev.fastTierHitPct, ref.fastTierHitPct);
    EXPECT_EQ(ev.slowTierReadLatencyP99, ref.slowTierReadLatencyP99);
    EXPECT_EQ(ev.tierMigrations, ref.tierMigrations);
    EXPECT_EQ(ev.tierMigratedRows, ref.tierMigratedRows);
    ASSERT_EQ(ev.perVaultReadQueue.size(), ref.perVaultReadQueue.size());
    for (std::size_t i = 0; i < ev.perVaultReadQueue.size(); ++i)
        EXPECT_EQ(ev.perVaultReadQueue[i], ref.perVaultReadQueue[i]);
}

} // namespace

class KernelFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(KernelFuzz, EventAndReferenceKernelsAgreeOnRandomConfig)
{
    const FuzzConfig f = drawConfig(GetParam());
    SCOPED_TRACE("reproduce with --config spec:\n" + f.specString());

    const RunResult ev = runKernel(f, /*reference=*/false);
    const RunResult ref = runKernel(f, /*reference=*/true);

    expectMetricsIdentical(ev.metrics, ref.metrics);
    EXPECT_EQ(ev.endTick, ref.endTick);

    // Exact command-trace equality: a kernel that skipped a refresh
    // deadline, latch delivery or group-timing boundary shifts this
    // sequence.
    expectTracesIdentical(ev, ref, "event kernel", "reference");
    EXPECT_FALSE(ev.trace.empty()) << "run issued no DRAM commands";

    // The epoch-sharded parallel kernel must reproduce the serial
    // event kernel bit for bit at every thread budget (IO-enabled
    // workloads exercise the documented serial fallback).
    for (const std::uint32_t threads : {2u, 4u, 7u}) {
        FuzzConfig fp = f;
        fp.cfg.kernelThreads = threads;
        SCOPED_TRACE("with kernel_threads = " + std::to_string(threads) +
                     "; reproduce with --config spec:\n" + fp.specString());
        const RunResult par = runKernel(f, /*reference=*/false, threads);
        expectMetricsIdentical(par.metrics, ev.metrics);
        EXPECT_EQ(par.endTick, ev.endTick);
        expectTracesIdentical(par, ev, "parallel kernel", "serial event");
    }
}

INSTANTIATE_TEST_SUITE_P(SixtyFourSeededConfigs, KernelFuzz,
                         ::testing::Range<std::uint64_t>(0, 64));
