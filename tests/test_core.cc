/**
 * @file
 * In-order core model tests: commit rate, blocking on load misses,
 * the MLP window, store buffer limits, and fetch stalls.
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/core.hh"

using namespace mcsim;

namespace {

/** Scripted generator: hands out a fixed op sequence, then computes. */
class ScriptedWorkload : public WorkloadGenerator
{
  public:
    const char *name() const override { return "scripted"; }

    Op
    nextOp(CoreId) override
    {
        if (!ops.empty()) {
            const Op op = ops.front();
            ops.pop_front();
            return op;
        }
        Op op;
        op.kind = Op::Kind::Compute;
        op.length = 64;
        return op;
    }

    Addr
    nextFetchBlock(CoreId) override
    {
        fetchAddr += 64;
        return fetchAddr;
    }

    static Op
    load(Addr a)
    {
        Op op;
        op.kind = Op::Kind::Load;
        op.addr = a;
        return op;
    }

    static Op
    store(Addr a)
    {
        Op op;
        op.kind = Op::Kind::Store;
        op.addr = a;
        return op;
    }

    std::deque<Op> ops;
    Addr fetchAddr = 0x100000;
};

struct Harness
{
    explicit Harness(CoreConfig cfg = CoreConfig{})
        : hierarchy(1, config()), core(0, gen, hierarchy, cfg)
    {
        hierarchy.setSendMemRead(
            [this](CoreId, Addr a) { pendingReads.push_back(a); });
        hierarchy.setSendMemWrite([](CoreId, Addr) {});
        hierarchy.setWake(
            [this](CoreId, MissKind k) { core.missReturned(k); });
        // Pre-fill the whole code region so fetch always hits by
        // default; tests that want fetch misses skip this.
        for (Addr a = 0x100000; a < 0x140000; a += 64)
            hierarchy.l1i(0).fill(a, false);
    }

    static HierarchyConfig
    config()
    {
        HierarchyConfig cfg;
        cfg.l1i = {256 * 1024, 4, 64}; // Big enough to pre-fill.
        cfg.l1d = {1024, 2, 64};
        cfg.l2 = {8192, 4, 64};
        return cfg;
    }

    void
    respondOldest()
    {
        ASSERT_FALSE(pendingReads.empty());
        const Addr a = pendingReads.front();
        pendingReads.erase(pendingReads.begin());
        hierarchy.onMemResponse(0, a);
    }

    ScriptedWorkload gen;
    CacheHierarchy hierarchy;
    Core core;
    std::vector<Addr> pendingReads;
};

} // namespace

TEST(Core, CommitsOneInstructionPerCycleOnCompute)
{
    Harness h;
    for (int i = 0; i < 100; ++i)
        h.core.tick();
    // One cycle per fetch block goes to the (L1-hit) fetch itself.
    EXPECT_GT(h.core.stats().committedInstructions, 80u);
    EXPECT_LE(h.core.stats().committedInstructions, 100u);
}

TEST(Core, BlockingLoadMissStallsCore)
{
    Harness h;
    h.gen.ops.push_back(ScriptedWorkload::load(0x5000));
    for (int i = 0; i < 50; ++i)
        h.core.tick();
    EXPECT_TRUE(h.core.isStalled());
    const auto committedWhileBlocked =
        h.core.stats().committedInstructions;
    // No progress while blocked.
    for (int i = 0; i < 50; ++i)
        h.core.tick();
    EXPECT_EQ(h.core.stats().committedInstructions,
              committedWhileBlocked);
    h.respondOldest();
    h.core.tick();
    h.core.tick();
    EXPECT_GT(h.core.stats().committedInstructions,
              committedWhileBlocked);
}

TEST(Core, MlpWindowAllowsOverlap)
{
    CoreConfig cfg;
    cfg.mlpWindow = 4;
    Harness h(cfg);
    for (int i = 0; i < 3; ++i)
        h.gen.ops.push_back(ScriptedWorkload::load(0x5000 + i * 0x1000));
    for (int i = 0; i < 50; ++i)
        h.core.tick();
    // All three misses are outstanding concurrently; window not full.
    EXPECT_EQ(h.pendingReads.size(), 3u);
    EXPECT_FALSE(h.core.isStalled());
}

TEST(Core, MlpWindowFullStalls)
{
    CoreConfig cfg;
    cfg.mlpWindow = 2;
    Harness h(cfg);
    for (int i = 0; i < 3; ++i)
        h.gen.ops.push_back(ScriptedWorkload::load(0x5000 + i * 0x1000));
    for (int i = 0; i < 50; ++i)
        h.core.tick();
    EXPECT_EQ(h.pendingReads.size(), 2u); // Third never issued.
    EXPECT_TRUE(h.core.isStalled());
    h.respondOldest();
    for (int i = 0; i < 20; ++i)
        h.core.tick();
    EXPECT_EQ(h.pendingReads.size(), 2u); // Third issued after wake.
}

TEST(Core, StoresDoNotBlock)
{
    Harness h;
    for (int i = 0; i < 4; ++i)
        h.gen.ops.push_back(ScriptedWorkload::store(0x6000 + i * 0x1000));
    for (int i = 0; i < 50; ++i)
        h.core.tick();
    EXPECT_FALSE(h.core.isStalled());
    EXPECT_EQ(h.pendingReads.size(), 4u); // Write-allocate fills.
}

TEST(Core, StoreBufferFullStalls)
{
    CoreConfig cfg;
    cfg.storeBufferEntries = 2;
    Harness h(cfg);
    for (int i = 0; i < 4; ++i)
        h.gen.ops.push_back(ScriptedWorkload::store(0x6000 + i * 0x1000));
    for (int i = 0; i < 50; ++i)
        h.core.tick();
    EXPECT_EQ(h.pendingReads.size(), 2u);
    EXPECT_TRUE(h.core.isStalled());
}

TEST(Core, FetchMissStallsFrontEnd)
{
    Harness h;
    h.gen.fetchAddr = 0x900000; // Outside the pre-filled region.
    Core cold(0, h.gen, h.hierarchy, CoreConfig{});
    std::vector<Addr> &reads = h.pendingReads;
    h.hierarchy.setWake(
        [&cold](CoreId, MissKind k) { cold.missReturned(k); });
    for (int i = 0; i < 30; ++i)
        cold.tick();
    EXPECT_TRUE(cold.isStalled());
    EXPECT_GT(cold.stats().fetchStallCycles, 20u);
    ASSERT_FALSE(reads.empty());
    h.hierarchy.onMemResponse(0, reads.front());
    for (int i = 0; i < 20; ++i)
        cold.tick();
    EXPECT_GT(cold.stats().committedInstructions, 0u);
}

TEST(Core, IpcReflectsStalls)
{
    Harness h;
    for (int i = 0; i < 500; ++i)
        h.core.tick();
    const double ipc = h.core.stats().ipc();
    EXPECT_GT(ipc, 0.5);
    EXPECT_LE(ipc, 1.0);
}

TEST(Core, ResetStatsZeroes)
{
    Harness h;
    for (int i = 0; i < 50; ++i)
        h.core.tick();
    h.core.resetStats();
    EXPECT_EQ(h.core.stats().committedInstructions, 0u);
    EXPECT_EQ(h.core.stats().cycles, 0u);
}
