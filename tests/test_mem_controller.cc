/**
 * @file
 * Memory controller integration tests: request conservation, latency
 * bounds, row-outcome classification, forwarding, write drain, and a
 * parameterized conservation sweep across every scheduler and page
 * policy combination.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.hh"
#include "dram/channel.hh"
#include "mem/factory.hh"
#include "mem/mem_controller.hh"

using namespace mcsim;

namespace {

struct Harness
{
    explicit Harness(SchedulerKind sched = SchedulerKind::FrFcfs,
                     PagePolicyKind policy = PagePolicyKind::OpenAdaptive,
                     bool refresh = true)
        : geom(makeGeom()), channel(geom, DramTimings::ddr3_1600(), refresh),
          mc(channel, makeScheduler(sched, 16), makePagePolicy(policy), 16)
    {
        mc.setCompletionCallback(
            [this](Request *req, Tick) { completed.push_back(*req); });
    }

    static DramGeometry
    makeGeom()
    {
        DramGeometry g;
        g.rowsPerBank = 1u << 12;
        return g;
    }

    Request *
    makeReq(Addr addr, bool isWrite, CoreId core = 0)
    {
        auto req = std::make_unique<Request>();
        req->id = storage.size();
        req->core = core;
        req->addr = addr;
        req->isWrite = isWrite;
        // Simple fixed mapping for tests: block -> column/bank/row.
        const Addr blk = addr / 64;
        req->coord.column = blk % geom.blocksPerRow();
        req->coord.bank =
            (blk / geom.blocksPerRow()) % geom.banksPerRank;
        req->coord.rank = (blk / geom.blocksPerRow() / geom.banksPerRank) %
                          geom.ranksPerChannel;
        req->coord.row = blk / geom.blocksPerRow() / geom.banksPerRank /
                         geom.ranksPerChannel;
        storage.push_back(std::move(req));
        return storage.back().get();
    }

    /** Run the controller for @p dramCycles. */
    void
    run(std::uint64_t dramCycles)
    {
        for (std::uint64_t i = 0; i < dramCycles; ++i) {
            mc.tick(now);
            now += kBaselineClocks.ticksPerDram;
        }
    }

    DramGeometry geom;
    Channel channel;
    MemController mc;
    std::vector<std::unique_ptr<Request>> storage;
    std::vector<Request> completed;
    Tick now{};
};

/** Byte address of (row, bank, column) under the test mapping. */
Addr
addrOf(std::uint64_t row, std::uint32_t bank, std::uint32_t col)
{
    const DramGeometry g = Harness::makeGeom();
    return ((row * g.ranksPerChannel * g.banksPerRank + bank) *
                g.blocksPerRow() +
            col) *
           64;
}

} // namespace

TEST(MemController, SingleReadCompletes)
{
    Harness h;
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false), h.now);
    h.run(200);
    ASSERT_EQ(h.completed.size(), 1u);
    EXPECT_FALSE(h.completed[0].isWrite);
    // Latency at least tRCD + CL + burst.
    const auto tm = DramTimings::ddr3_1600();
    EXPECT_GE(h.completed[0].completedAt - h.completed[0].arrivedAt,
              kBaselineClocks.dramToTicks(tm.tRCD + tm.tCAS + tm.tBURST));
    EXPECT_EQ(h.completed[0].outcome, RowOutcome::Miss);
    EXPECT_EQ(h.mc.stats().rowMisses, 1u);
}

TEST(MemController, RowHitClassification)
{
    Harness h;
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false), h.now);
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 1), false), h.now);
    h.run(300);
    ASSERT_EQ(h.completed.size(), 2u);
    EXPECT_EQ(h.mc.stats().rowHits, 1u);
    EXPECT_EQ(h.mc.stats().rowMisses, 1u);
}

TEST(MemController, ConflictClassification)
{
    Harness h;
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false), h.now);
    h.run(100); // Row 1 open, queue empty.
    h.mc.enqueue(h.makeReq(addrOf(2, 0, 0), false), h.now);
    h.run(300);
    ASSERT_EQ(h.completed.size(), 2u);
    EXPECT_EQ(h.mc.stats().rowConflicts, 1u);
}

TEST(MemController, ReadForwardedFromWriteQueue)
{
    Harness h;
    const Addr a = addrOf(3, 1, 5);
    h.mc.enqueue(h.makeReq(a, true), h.now);
    h.mc.enqueue(h.makeReq(a, false), h.now);
    h.run(300);
    EXPECT_EQ(h.mc.stats().forwardedReads, 1u);
    // Both the write and the forwarded read complete.
    EXPECT_EQ(h.completed.size(), 2u);
}

TEST(MemController, WritesDrainAtIdleThreshold)
{
    Harness h;
    for (int i = 0; i < 20; ++i)
        h.mc.enqueue(h.makeReq(addrOf(i, i % 8, 0), true), h.now);
    EXPECT_EQ(h.mc.writeQueueLen(), 20u);
    h.run(2000);
    // Idle drain kicks in (threshold 16) and drains to the low mark.
    EXPECT_LE(h.mc.writeQueueLen(), 8u);
    EXPECT_GE(h.mc.stats().servedWrites, 12u);
}

TEST(MemController, ReadsPrioritizedOverParkedWrites)
{
    Harness h;
    for (int i = 0; i < 4; ++i)
        h.mc.enqueue(h.makeReq(addrOf(10 + i, 0, 0), true), h.now);
    h.mc.enqueue(h.makeReq(addrOf(1, 1, 0), false), h.now);
    h.run(100);
    // The read finishes while the small write backlog stays parked.
    EXPECT_EQ(h.completed.size(), 1u);
    EXPECT_FALSE(h.completed[0].isWrite);
    EXPECT_EQ(h.mc.writeQueueLen(), 4u);
}

TEST(MemController, QueueStatsTrackOccupancy)
{
    Harness h;
    for (int i = 0; i < 6; ++i)
        h.mc.enqueue(h.makeReq(addrOf(i, i % 4, 0), false), h.now);
    h.run(500);
    EXPECT_GT(h.mc.stats().readQueueLen.mean(h.now), 0.0);
    EXPECT_EQ(h.completed.size(), 6u);
}

TEST(MemController, RefreshEventuallyIssues)
{
    Harness h;
    const auto tm = DramTimings::ddr3_1600();
    h.run(tm.tREFI * 3);
    EXPECT_GE(h.channel.stats().refreshes, 2u);
}

TEST(MemController, PerCoreStatsAttributed)
{
    Harness h;
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false, 3), h.now);
    h.mc.enqueue(h.makeReq(addrOf(2, 1, 0), false, 5), h.now);
    h.run(300);
    EXPECT_EQ(h.mc.stats().perCoreReads[3], 1u);
    EXPECT_EQ(h.mc.stats().perCoreReads[5], 1u);
    EXPECT_EQ(h.mc.stats().perCoreReads[0], 0u);
}

TEST(MemController, ResetStatsClearsCounters)
{
    Harness h;
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false), h.now);
    h.run(200);
    h.mc.resetStats(h.now);
    EXPECT_EQ(h.mc.stats().servedReads, 0u);
    EXPECT_EQ(h.mc.stats().rowMisses, 0u);
    EXPECT_EQ(h.mc.stats().readLatencySamples, 0u);
}

TEST(MemController, ActivationHistogramSampledOnPrecharge)
{
    Harness h(SchedulerKind::FrFcfs, PagePolicyKind::Close);
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false), h.now);
    h.run(300);
    // Close policy precharges right after the single access.
    EXPECT_EQ(h.mc.stats().activationAccesses.bucket(1), 1u);
}

TEST(MemController, CloseAdaptiveClosesIdleRows)
{
    Harness h(SchedulerKind::FrFcfs, PagePolicyKind::CloseAdaptive,
              false);
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false), h.now);
    h.run(300);
    EXPECT_FALSE(h.channel.bank(0, 0).isOpen());
}

TEST(MemController, OpenPolicyKeepsIdleRowsOpen)
{
    Harness h(SchedulerKind::FrFcfs, PagePolicyKind::Open, false);
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false), h.now);
    h.run(300);
    EXPECT_TRUE(h.channel.bank(0, 0).isOpen());
}

TEST(MemController, DrainEntersAtHighWatermarkUnderReadLoad)
{
    Harness h;
    // A steady read presence keeps the idle-timeout drain out of the
    // picture; only the high watermark (24) may start a drain.
    for (int i = 0; i < 23; ++i)
        h.mc.enqueue(h.makeReq(addrOf(100 + i, i % 8, 0), true), h.now);
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false), h.now);
    h.run(1);
    EXPECT_FALSE(h.mc.drainingWrites());
    h.mc.enqueue(h.makeReq(addrOf(200, 0, 1), true), h.now);
    h.run(1);
    EXPECT_TRUE(h.mc.drainingWrites());
}

TEST(MemController, DrainExitsAtLowWatermark)
{
    Harness h;
    for (int i = 0; i < 24; ++i)
        h.mc.enqueue(h.makeReq(addrOf(100 + i, i % 8, 0), true), h.now);
    // Feed a slow trickle of reads so the read queue never stays empty
    // long enough for the idle-timeout drain to take over.
    int nextRead = 0;
    while (h.mc.writeQueueLen() > 12 && h.now < Tick{} + kBaselineClocks.coreToTicks(200'000)) {
        if (h.mc.readQueueLen() == 0) {
            h.mc.enqueue(
                h.makeReq(addrOf(300 + nextRead, nextRead % 8, 0), false),
                h.now);
            ++nextRead;
        }
        h.run(10);
    }
    EXPECT_EQ(h.mc.writeQueueLen(), 12u);
    h.run(5);
    EXPECT_FALSE(h.mc.drainingWrites());
}

TEST(MemController, IdleTimeoutDrainsLoneWrite)
{
    Harness h;
    h.mc.enqueue(h.makeReq(addrOf(5, 2, 0), true), h.now);
    // Below every watermark: only the idle timeout can serve it.
    h.run(128 + 100);
    EXPECT_EQ(h.mc.writeQueueLen(), 0u);
    EXPECT_EQ(h.mc.stats().servedWrites, 1u);
}

TEST(MemController, ForwardingMatchesExactBlockOnly)
{
    Harness h;
    h.mc.enqueue(h.makeReq(addrOf(3, 1, 5), true), h.now);
    h.mc.enqueue(h.makeReq(addrOf(3, 1, 6), false), h.now); // Other block.
    h.run(300);
    EXPECT_EQ(h.mc.stats().forwardedReads, 0u);
}

TEST(MemController, ForwardedReadLatencyIsShort)
{
    Harness h;
    const Addr a = addrOf(3, 1, 5);
    h.mc.enqueue(h.makeReq(a, true), h.now);
    h.mc.enqueue(h.makeReq(a, false), h.now);
    h.run(300);
    ASSERT_EQ(h.mc.stats().forwardedReads, 1u);
    // The forwarded read completes in forwardLatencyCycles, far below
    // any DRAM access.
    TickSpan fwdLatency = kMaxTickSpan;
    for (const Request &r : h.completed) {
        if (!r.isWrite)
            fwdLatency = r.completedAt - r.arrivedAt;
    }
    EXPECT_LE(fwdLatency, kBaselineClocks.dramToTicks(4));
}

TEST(MemController, UnifiedQueueSchedulerSeesWritesWithoutDrain)
{
    // RL selects from reads and writes together (paper Section 4.1.3):
    // a lone write is serviced promptly without any drain trigger.
    RlConfig rl;
    rl.epsilon = 0.0;
    SchedulerParams params;
    params.rl = rl;
    DramGeometry g = Harness::makeGeom();
    Channel ch(g, DramTimings::ddr3_1600(), false);
    MemController mc(ch, makeScheduler(SchedulerKind::Rl, 16, params),
                     makePagePolicy(PagePolicyKind::OpenAdaptive), 16);
    auto req = std::make_unique<Request>();
    req->addr = 64;
    req->isWrite = true;
    req->coord.row = 2;
    Tick now{};
    mc.enqueue(req.get(), now);
    for (int i = 0; i < 60; ++i) {
        mc.tick(now);
        now += kBaselineClocks.ticksPerDram;
    }
    EXPECT_EQ(mc.stats().servedWrites, 1u);
}

TEST(MemController, RefreshClosesOpenBankFirst)
{
    Harness h; // Refresh enabled.
    const auto tm = DramTimings::ddr3_1600();
    // Open a row and leave it open (open-adaptive keeps idle rows).
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false), h.now);
    h.run(tm.tREFI + tm.tRFC + 200);
    // Refresh happened, which required an extra precharge beyond the
    // request's own service (which never precharged).
    EXPECT_GE(h.channel.stats().refreshes, 1u);
    EXPECT_GE(h.channel.stats().precharges, 1u);
}

TEST(MemController, WriteCompletionCallbackFiresAtCas)
{
    Harness h;
    h.mc.enqueue(h.makeReq(addrOf(2, 0, 0), true), h.now);
    h.run(2000);
    ASSERT_EQ(h.completed.size(), 1u);
    EXPECT_TRUE(h.completed[0].isWrite);
    EXPECT_GT(h.completed[0].completedAt, Tick{});
}

TEST(MemController, PerCoreLatencyAccumulates)
{
    Harness h;
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false, 7), h.now);
    h.run(300);
    EXPECT_GT(h.mc.stats().perCoreLatencyTicks[7], TickSpan{0});
    EXPECT_EQ(h.mc.stats().perCoreLatencyTicks[3], TickSpan{0});
}

TEST(MemController, IoCoreStatsUseOverflowSlot)
{
    Harness h;
    h.mc.enqueue(h.makeReq(addrOf(1, 0, 0), false, kIoCoreId), h.now);
    h.run(300);
    // Requests from the IO pseudo-core land in the numCores slot.
    EXPECT_EQ(h.mc.stats().perCoreReads[16], 1u);
}

/**
 * Conservation property across every scheduler x page-policy pair:
 * all requests injected eventually complete exactly once, with
 * positive latency, under random traffic.
 */
class ControllerSweep
    : public ::testing::TestWithParam<
          std::tuple<SchedulerKind, PagePolicyKind>>
{
};

TEST_P(ControllerSweep, AllRequestsCompleteOnce)
{
    const auto [sched, policy] = GetParam();
    Harness h(sched, policy);
    Pcg32 rng(2024);

    std::uint64_t injected = 0;
    for (int burst = 0; burst < 40; ++burst) {
        const int n = 1 + rng.below(6);
        for (int i = 0; i < n; ++i) {
            const Addr a =
                addrOf(rng.below(64), rng.below(8), rng.below(16));
            h.mc.enqueue(h.makeReq(a, rng.chance(0.3),
                                   rng.below(16)),
                         h.now);
            ++injected;
        }
        h.run(50 + rng.below(100));
    }
    h.run(20000); // Drain everything.
    EXPECT_EQ(h.completed.size(), injected);
    EXPECT_EQ(h.mc.readQueueLen(), 0u);
    EXPECT_EQ(h.mc.writeQueueLen(), 0u);
    for (const Request &r : h.completed) {
        if (!r.isWrite) {
            EXPECT_GT(r.completedAt, r.arrivedAt);
        }
    }
    // Hit+miss+conflict accounts for every non-forwarded CAS.
    const auto &s = h.mc.stats();
    EXPECT_EQ(s.rowHits + s.rowMisses + s.rowConflicts,
              s.servedReads + s.servedWrites);
    EXPECT_EQ(s.servedReads + s.forwardedReads + s.servedWrites,
              injected);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ControllerSweep,
    ::testing::Combine(
        ::testing::Values(SchedulerKind::FrFcfs, SchedulerKind::Fcfs,
                          SchedulerKind::FcfsBanks, SchedulerKind::ParBs,
                          SchedulerKind::Atlas, SchedulerKind::Rl,
                          SchedulerKind::Fqm, SchedulerKind::Tcm,
                          SchedulerKind::Stfm),
        ::testing::Values(PagePolicyKind::OpenAdaptive,
                          PagePolicyKind::CloseAdaptive,
                          PagePolicyKind::Rbpp, PagePolicyKind::Abpp,
                          PagePolicyKind::Open, PagePolicyKind::Close,
                          PagePolicyKind::Timer,
                          PagePolicyKind::History)));
