/**
 * @file
 * TextTable tests: alignment, ragged rows, CSV output, and number
 * formatting — the harness output every figure depends on.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

using namespace mcsim;

TEST(Table, RendersAlignedColumns)
{
    TextTable t;
    t.setHeader({"workload", "ipc"});
    t.addRow({"DS", "1.0"});
    t.addRow({"MapReduce", "0.95"});
    const std::string out = t.render();
    // Each line is equally wide up to trailing content; the header
    // separator exists and every cell appears.
    EXPECT_NE(out.find("workload"), std::string::npos);
    EXPECT_NE(out.find("MapReduce"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    // Columns align: "ipc" starts at the same offset in each line.
    const auto headerPos = out.find("ipc");
    const auto line2 = out.find("1.0");
    ASSERT_NE(headerPos, std::string::npos);
    ASSERT_NE(line2, std::string::npos);
    const auto col = headerPos - out.rfind('\n', headerPos) - 1;
    const auto col2 = line2 - out.rfind('\n', line2) - 1;
    EXPECT_EQ(col, col2);
}

TEST(Table, PadsRaggedRows)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    t.addRow({"1", "2", "3"});
    const std::string out = t.render();
    EXPECT_NE(out.find('3'), std::string::npos);
}

TEST(Table, CsvHasNoPadding)
{
    TextTable t;
    t.setHeader({"w", "v"});
    t.addRow({"DS", "1.25"});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("w,v"), std::string::npos);
    EXPECT_NE(csv.find("DS,1.25"), std::string::npos);
    EXPECT_EQ(csv.find("  "), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 3), "1.000");
    EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
}

TEST(Table, EmptyTableRendersHeaderOnly)
{
    TextTable t;
    t.setHeader({"only", "header"});
    const std::string out = t.render();
    EXPECT_NE(out.find("only"), std::string::npos);
    EXPECT_NE(out.find("header"), std::string::npos);
}
