/**
 * @file
 * Address mapping tests: bijectivity across all schemes and channel
 * counts, field ranges, and the interleaving semantics each scheme
 * name promises.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "mem/address_mapping.hh"

using namespace mcsim;

namespace {

DramGeometry
geomWithChannels(std::uint32_t channels)
{
    DramGeometry g;
    g.channels = channels;
    g.rowsPerBank = 1u << 14;
    return g;
}

} // namespace

/** Parameterized over (scheme, channels). */
class MappingParam
    : public ::testing::TestWithParam<
          std::tuple<MappingScheme, std::uint32_t>>
{
};

TEST_P(MappingParam, DecodeFieldsInRange)
{
    const auto [scheme, channels] = GetParam();
    const auto g = geomWithChannels(channels);
    AddressMapper m(g, scheme);
    Pcg32 rng(99);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.below64(g.capacityBytes());
        const DramCoord c = m.decode(a);
        EXPECT_LT(c.channel, g.channels);
        EXPECT_LT(c.rank, g.ranksPerChannel);
        EXPECT_LT(c.bank, g.banksPerRank);
        EXPECT_LT(c.row, g.rowsPerBank);
        EXPECT_LT(c.column, g.blocksPerRow());
    }
}

TEST_P(MappingParam, EncodeDecodeRoundtrip)
{
    const auto [scheme, channels] = GetParam();
    const auto g = geomWithChannels(channels);
    AddressMapper m(g, scheme);
    Pcg32 rng(7);
    for (int i = 0; i < 2000; ++i) {
        const Addr a =
            rng.below64(g.capacityBytes()) & ~Addr{g.blockBytes - 1};
        const DramCoord c = m.decode(a);
        EXPECT_EQ(m.encode(c), a);
    }
}

TEST_P(MappingParam, DistinctBlocksDistinctCoords)
{
    const auto [scheme, channels] = GetParam();
    const auto g = geomWithChannels(channels);
    AddressMapper m(g, scheme);
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                        std::uint64_t, std::uint32_t>> seen;
    for (Addr a = 0; a < 4096 * g.blockBytes; a += g.blockBytes) {
        const DramCoord c = m.decode(a);
        const auto key =
            std::make_tuple(c.channel, c.rank, c.bank, c.row, c.column);
        EXPECT_TRUE(seen.insert(key).second) << "aliased addr " << a;
    }
}

TEST_P(MappingParam, MappedBitsCoverCapacity)
{
    const auto [scheme, channels] = GetParam();
    const auto g = geomWithChannels(channels);
    AddressMapper m(g, scheme);
    EXPECT_EQ(Addr{1} << (m.mappedBits() + floorLog2(g.blockBytes)),
              g.capacityBytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, MappingParam,
    ::testing::Combine(::testing::ValuesIn(kExtendedMappingSchemes),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(Mapping, RoRaBaCoChInterleavesBlocksAcrossChannels)
{
    const auto g = geomWithChannels(4);
    AddressMapper m(g, MappingScheme::RoRaBaCoCh);
    // Consecutive cache blocks land on consecutive channels.
    for (Addr blk = 0; blk < 16; ++blk) {
        EXPECT_EQ(m.decode(blk * g.blockBytes).channel, blk % 4);
    }
}

TEST(Mapping, RoRaBaChCoKeepsRowInOneChannel)
{
    const auto g = geomWithChannels(4);
    AddressMapper m(g, MappingScheme::RoRaBaChCo);
    // A whole row's worth of consecutive blocks stays in one channel.
    const std::uint32_t ch0 = m.decode(0).channel;
    for (Addr blk = 0; blk < g.blocksPerRow(); ++blk)
        EXPECT_EQ(m.decode(blk * g.blockBytes).channel, ch0);
    // The next stripe moves to another channel.
    EXPECT_NE(m.decode(Addr{g.blocksPerRow()} * g.blockBytes).channel,
              ch0);
}

TEST(Mapping, SingleChannelSchemesAgree)
{
    const auto g = geomWithChannels(1);
    AddressMapper a(g, MappingScheme::RoRaBaCoCh);
    AddressMapper b(g, MappingScheme::RoChRaBaCo);
    Pcg32 rng(3);
    for (int i = 0; i < 500; ++i) {
        const Addr addr = rng.below64(g.capacityBytes());
        EXPECT_TRUE(a.decode(addr) == b.decode(addr));
    }
}

TEST(Mapping, SchemeNamesRoundtrip)
{
    for (auto s : kExtendedMappingSchemes)
        EXPECT_EQ(mappingSchemeFromName(mappingSchemeName(s)), s);
}

TEST(Mapping, PermBaXorSpreadsSameBankRowsOverBanks)
{
    // Under the plain stripe scheme, walking rows with fixed bank bits
    // hammers one bank; the XOR permutation spreads the walk across
    // all banks while the non-permuted scheme never leaves bank 0.
    const auto g = geomWithChannels(1);
    AddressMapper plain(g, MappingScheme::RoRaBaChCo);
    AddressMapper perm(g, MappingScheme::PermBaXor);
    std::set<std::uint32_t> plainBanks, permBanks;
    for (std::uint64_t row = 0; row < g.banksPerRank * 2; ++row) {
        DramCoord c;
        c.row = row;
        const Addr a = plain.encode(c); // Bank 0, walking rows.
        plainBanks.insert(plain.decode(a).bank);
        permBanks.insert(perm.decode(a).bank);
    }
    EXPECT_EQ(plainBanks.size(), 1u);
    EXPECT_EQ(permBanks.size(), std::size_t{g.banksPerRank});
}

TEST(Mapping, PermBaXorPreservesRowLocality)
{
    // The permutation must not break sequential streams: consecutive
    // blocks within one row keep identical (rank, bank, row).
    const auto g = geomWithChannels(2);
    AddressMapper m(g, MappingScheme::PermBaXor);
    const DramCoord c0 = m.decode(0);
    for (Addr blk = 1; blk < g.blocksPerRow(); ++blk) {
        const DramCoord c = m.decode(blk * g.blockBytes);
        EXPECT_EQ(c.bank, c0.bank);
        EXPECT_EQ(c.row, c0.row);
        EXPECT_EQ(c.rank, c0.rank);
    }
}

TEST(Mapping, PermChBaXorPermutesChannelWithRow)
{
    const auto g = geomWithChannels(4);
    AddressMapper m(g, MappingScheme::PermChBaXor);
    // Fix the stored channel/bank bits and walk rows; the decoded
    // channel must change as the XORed row slice changes.
    std::set<std::uint32_t> channels;
    const AddressMapper plain(g, MappingScheme::RoRaChBaCo);
    for (std::uint64_t row = 0; row < (g.banksPerRank * 4u); ++row) {
        DramCoord c;
        c.row = row;
        channels.insert(m.decode(plain.encode(c)).channel);
    }
    EXPECT_EQ(channels.size(), std::size_t{g.channels});
}

TEST(Mapping, ColumnBitsAreLowestForCoLowSchemes)
{
    const auto g = geomWithChannels(2);
    AddressMapper m(g, MappingScheme::RoRaChBaCo);
    // With Co in the lowest bits, consecutive blocks advance the
    // column within one row.
    const DramCoord c0 = m.decode(0);
    const DramCoord c1 = m.decode(g.blockBytes);
    EXPECT_EQ(c1.column, c0.column + 1);
    EXPECT_EQ(c1.row, c0.row);
    EXPECT_EQ(c1.channel, c0.channel);
}

namespace {

/** DDR4-like grouped geometry: 16 banks in 4 groups. */
DramGeometry
groupedGeom(std::uint32_t channels)
{
    DramGeometry g = geomWithChannels(channels);
    g.banksPerRank = 16;
    g.bankGroupsPerRank = 4;
    return g;
}

} // namespace

/** Parameterized over (scheme, group mapping): grouped geometry. */
class GroupMappingParam
    : public ::testing::TestWithParam<
          std::tuple<MappingScheme, BankGroupMapping>>
{
};

TEST_P(GroupMappingParam, RoundtripAndRangesWithBankGroups)
{
    const auto [scheme, gm] = GetParam();
    const auto g = groupedGeom(2);
    AddressMapper m(g, scheme, gm);
    Pcg32 rng(31);
    std::set<Addr> seen;
    for (int i = 0; i < 2000; ++i) {
        const Addr a =
            rng.below64(g.capacityBytes() / g.blockBytes) * g.blockBytes;
        const DramCoord c = m.decode(a);
        EXPECT_LT(c.channel, g.channels);
        EXPECT_LT(c.rank, g.ranksPerChannel);
        EXPECT_LT(c.bank, g.banksPerRank);
        EXPECT_LT(c.row, g.rowsPerBank);
        EXPECT_LT(c.column, g.blocksPerRow());
        EXPECT_EQ(m.encode(c), a);
    }
    EXPECT_EQ(m.mappedBits(),
              AddressMapper(g, scheme, BankGroupMapping::GroupPacked)
                  .mappedBits());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesBothPlacements, GroupMappingParam,
    ::testing::Combine(::testing::ValuesIn(kExtendedMappingSchemes),
                       ::testing::ValuesIn(kAllBankGroupMappings)));

TEST(GroupMapping, InterleavedRotatesConsecutiveBlocksAcrossGroups)
{
    // With the group bits sunk to the bottom, consecutive blocks (of
    // one channel) walk bank groups round-robin — the layout that
    // keeps streaming CAS trains on tCCD_S.
    const auto g = groupedGeom(1);
    AddressMapper m(g, MappingScheme::RoRaBaChCo,
                    BankGroupMapping::GroupInterleaved);
    for (std::uint64_t blk = 0; blk < 16; ++blk) {
        const DramCoord c = m.decode(blk * g.blockBytes);
        EXPECT_EQ(g.bankGroupOf(c.bank),
                  blk % g.bankGroupsPerRank)
            << "block " << blk;
    }
}

TEST(GroupMapping, PackedKeepsConsecutiveBlocksInOneGroup)
{
    // The packed layout preserves the classic contiguous bank field: a
    // stream stays in one bank (and so one group) for a whole row.
    const auto g = groupedGeom(1);
    AddressMapper m(g, MappingScheme::RoRaBaChCo,
                    BankGroupMapping::GroupPacked);
    const DramCoord c0 = m.decode(0);
    for (std::uint64_t blk = 1; blk < g.blocksPerRow(); ++blk) {
        const DramCoord c = m.decode(blk * g.blockBytes);
        EXPECT_EQ(c.bank, c0.bank);
        EXPECT_EQ(g.bankGroupOf(c.bank), g.bankGroupOf(c0.bank));
    }
}

TEST(GroupMapping, InterleavedKeepsBlockChannelInterleaveLowest)
{
    // RoRaBaCoCh promises block-granular channel interleave; the group
    // bits slot in just above the channel field, not below it.
    const auto g = groupedGeom(4);
    AddressMapper m(g, MappingScheme::RoRaBaCoCh,
                    BankGroupMapping::GroupInterleaved);
    for (std::uint64_t blk = 0; blk < 8; ++blk) {
        const DramCoord c = m.decode(blk * g.blockBytes);
        EXPECT_EQ(c.channel, blk % g.channels) << "block " << blk;
    }
    // Above the channel bits, groups rotate.
    const DramCoord a = m.decode(0);
    const DramCoord b = m.decode(g.channels * g.blockBytes);
    EXPECT_NE(g.bankGroupOf(b.bank), g.bankGroupOf(a.bank));
}

TEST(GroupMapping, SingleGroupGeometryIgnoresThePlacement)
{
    // With one bank group the two placements are the same layout.
    const auto g = geomWithChannels(2);
    AddressMapper inter(g, MappingScheme::RoRaChBaCo,
                        BankGroupMapping::GroupInterleaved);
    AddressMapper packed(g, MappingScheme::RoRaChBaCo,
                         BankGroupMapping::GroupPacked);
    Pcg32 rng(5);
    for (int i = 0; i < 500; ++i) {
        const Addr a = rng.below64(g.capacityBytes());
        EXPECT_TRUE(inter.decode(a) == packed.decode(a));
    }
}

TEST(GroupMapping, NamesRoundtrip)
{
    for (auto m : kAllBankGroupMappings)
        EXPECT_EQ(bankGroupMappingFromName(bankGroupMappingName(m)), m);
    EXPECT_EQ(bankGroupMappingFromName("interleaved"),
              BankGroupMapping::GroupInterleaved);
    EXPECT_EQ(bankGroupMappingFromName("packed"),
              BankGroupMapping::GroupPacked);
}
