/**
 * @file
 * Synthetic workload generator tests: determinism, mix fractions,
 * region shares, sticky runs, sparse placement, and preset sanity.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/presets.hh"
#include "workload/synthetic.hh"

using namespace mcsim;

namespace {

constexpr Addr kSpace = 16ull << 30;

WorkloadParams
simpleParams()
{
    WorkloadParams p;
    p.cores = 4;
    p.memRefPerInstr = 0.5;
    p.storeFrac = 0.25;
    RegionSpec hot;
    hot.share = 0.7;
    hot.footprintBytes = 1 << 20;
    hot.zipfTheta = 0.8;
    RegionSpec cold;
    cold.share = 0.3;
    cold.footprintBytes = 64 << 20;
    cold.zipfTheta = 0.1;
    p.regions = {hot, cold};
    p.seed = 9;
    return p;
}

} // namespace

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticWorkload a(simpleParams(), kSpace);
    SyntheticWorkload b(simpleParams(), kSpace);
    for (int i = 0; i < 2000; ++i) {
        const Op oa = a.nextOp(i % 4);
        const Op ob = b.nextOp(i % 4);
        ASSERT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind));
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(oa.length, ob.length);
        ASSERT_EQ(a.nextFetchBlock(i % 4), b.nextFetchBlock(i % 4));
    }
}

TEST(Synthetic, CoresHaveIndependentStreams)
{
    SyntheticWorkload w(simpleParams(), kSpace);
    // Consume from core 0; core 1's stream is unaffected by ordering.
    SyntheticWorkload ref(simpleParams(), kSpace);
    for (int i = 0; i < 100; ++i)
        (void)w.nextOp(0);
    for (int i = 0; i < 50; ++i) {
        const Op a = w.nextOp(1);
        const Op b = ref.nextOp(1);
        ASSERT_EQ(a.addr, b.addr);
    }
}

TEST(Synthetic, MemoryFractionMatchesConfig)
{
    SyntheticWorkload w(simpleParams(), kSpace);
    std::uint64_t mem = 0, total = 0;
    for (int i = 0; i < 50000; ++i) {
        const Op op = w.nextOp(0);
        total += op.kind == Op::Kind::Compute ? op.length : 1;
        mem += op.kind != Op::Kind::Compute;
    }
    EXPECT_NEAR(static_cast<double>(mem) / total, 0.5, 0.03);
}

TEST(Synthetic, StoreFractionMatchesConfig)
{
    SyntheticWorkload w(simpleParams(), kSpace);
    std::uint64_t stores = 0, memops = 0;
    for (int i = 0; i < 50000; ++i) {
        const Op op = w.nextOp(1);
        if (op.kind == Op::Kind::Compute)
            continue;
        ++memops;
        stores += op.kind == Op::Kind::Store;
    }
    EXPECT_NEAR(static_cast<double>(stores) / memops, 0.25, 0.03);
}

TEST(Synthetic, RegionSharesRespected)
{
    SyntheticWorkload w(simpleParams(), kSpace);
    // Hot region occupies the second reserved range (after code) and
    // cold the third; distinguish by address.
    std::uint64_t hot = 0, cold = 0;
    for (int i = 0; i < 100000; ++i) {
        const Op op = w.nextOp(2);
        if (op.kind == Op::Kind::Compute)
            continue;
        // Code is 4 MiB at 0; hot spans next (1 MiB * spread 1).
        if (op.addr < (4ull << 20) + (1ull << 20))
            ++hot;
        else
            ++cold;
    }
    const double hotFrac = static_cast<double>(hot) / (hot + cold);
    EXPECT_NEAR(hotFrac, 0.7, 0.05);
}

TEST(Synthetic, AddressesStayInBounds)
{
    for (auto id : kAllWorkloads) {
        SyntheticWorkload w(workloadPreset(id), kSpace);
        for (int i = 0; i < 5000; ++i) {
            const Op op = w.nextOp(i % w.params().cores);
            if (op.kind != Op::Kind::Compute) {
                ASSERT_LT(op.addr, kSpace) << w.name();
            }
            ASSERT_LT(w.nextFetchBlock(i % w.params().cores), kSpace);
        }
    }
}

TEST(Synthetic, StickyRunsProduceSequentialBlocks)
{
    WorkloadParams p = simpleParams();
    RegionSpec stream;
    stream.share = 1.0;
    stream.footprintBytes = 1 << 20;
    stream.seqBurstBlocks = 16;
    stream.repeatsPerBlock = 1;
    stream.scramble = false;
    stream.stickyRefs = 16;
    p.regions = {stream};
    p.memRefPerInstr = 0.9;
    SyntheticWorkload w(p, kSpace);

    // Collect consecutive memory addresses; most gaps are one block.
    Addr prev = 0;
    int seq = 0, memops = 0;
    for (int i = 0; i < 3000; ++i) {
        const Op op = w.nextOp(0);
        if (op.kind == Op::Kind::Compute)
            continue;
        if (memops > 0 && op.addr == prev + 64)
            ++seq;
        prev = op.addr;
        ++memops;
    }
    EXPECT_GT(static_cast<double>(seq) / memops, 0.85);
}

TEST(Synthetic, SpreadFactorKeepsFootprintDistinct)
{
    WorkloadParams p = simpleParams();
    p.regions[0].spreadFactor = 64;
    p.regions[0].zipfTheta = 0.0;
    SyntheticWorkload w(p, kSpace);
    // Distinct zipf indices map to distinct sparse addresses.
    std::set<Addr> seen;
    for (int i = 0; i < 20000; ++i) {
        const Op op = w.nextOp(0);
        if (op.kind != Op::Kind::Compute &&
            op.addr < (4ull << 20) + (64ull << 20)) {
            seen.insert(op.addr);
        }
    }
    // Uniform over 16 K blocks: we should observe thousands of
    // distinct addresses, none colliding into fewer slots.
    EXPECT_GT(seen.size(), 4000u);
}

TEST(Synthetic, IntensitySpreadScalesPerCore)
{
    WorkloadParams p = simpleParams();
    p.intensitySpread = 0.5;
    p.cores = 4;
    SyntheticWorkload w(p, kSpace);
    EXPECT_DOUBLE_EQ(w.intensityOf(0), 0.5);
    EXPECT_DOUBLE_EQ(w.intensityOf(3), 1.5);
    EXPECT_LT(w.intensityOf(1), w.intensityOf(2));
}

TEST(Synthetic, FetchStreamIsMostlySequential)
{
    WorkloadParams p = simpleParams();
    p.codeJumpProb = 0.0;
    SyntheticWorkload w(p, kSpace);
    Addr prev = w.nextFetchBlock(0);
    for (int i = 0; i < 100; ++i) {
        const Addr a = w.nextFetchBlock(0);
        ASSERT_TRUE(a == prev + 64 || a < prev); // Wraps allowed.
        prev = a;
    }
}

TEST(Presets, AllWorkloadsWellFormed)
{
    for (auto id : kAllWorkloads) {
        const WorkloadParams p = workloadPreset(id);
        EXPECT_FALSE(p.name.empty());
        EXPECT_EQ(p.acronym, workloadAcronym(id));
        EXPECT_EQ(p.category, workloadCategory(id));
        EXPECT_GE(p.cores, 8u);
        double shares = 0;
        for (const auto &r : p.regions)
            shares += r.share;
        EXPECT_NEAR(shares, 1.0, 1e-6) << p.name;
    }
}

TEST(Presets, WebFrontendUsesEightCores)
{
    EXPECT_EQ(workloadPreset(WorkloadId::WF).cores, 8u);
    EXPECT_EQ(workloadPreset(WorkloadId::DS).cores, 16u);
}

TEST(Presets, DecisionSupportHasMlp)
{
    for (auto id : workloadsInCategory(WorkloadCategory::DecisionSupport))
        EXPECT_GT(workloadPreset(id).mlpWindow, 1u);
}

TEST(Presets, CategoriesPartitionWorkloads)
{
    std::size_t total = 0;
    for (auto cat :
         {WorkloadCategory::ScaleOut, WorkloadCategory::Transactional,
          WorkloadCategory::DecisionSupport}) {
        total += workloadsInCategory(cat).size();
    }
    EXPECT_EQ(total, kAllWorkloads.size());
    EXPECT_EQ(workloadsInCategory(WorkloadCategory::ScaleOut).size(), 6u);
}
