/**
 * @file
 * Failure injection for the DRAM protocol referee: one deliberately
 * illegal command sequence per JEDEC constraint class. The fuzz test
 * (test_timing_checker.cc) proves the Channel never produces illegal
 * sequences; this suite proves the checker would actually catch them
 * if it did — without it, a permanently silent referee and a correct
 * device model are indistinguishable.
 *
 * Each test drives the TimingChecker with a minimal legal prefix, then
 * injects one command exactly one cycle too early (or in the wrong
 * bank state) and asserts the specific violation is named.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "dram/devices.hh"
#include "dram/timing_checker.hh"

using namespace mcsim;

namespace {

DramGeometry
geom()
{
    DramGeometry g;
    g.rowsPerBank = 1u << 12;
    return g;
}

const DramTimings kTm = DramTimings::ddr3_1600();

/** The instant @p c DRAM cycles after the time origin. */
Tick
cyc(std::uint32_t c)
{
    return Tick{} + kBaselineClocks.dramToTicks(c);
}

/** @p c DRAM cycles as a tick span. */
TickSpan
dur(std::uint32_t c)
{
    return kBaselineClocks.dramToTicks(c);
}

/** A checker with row 5 opened in (rank 0, bank 0) at tick 0. */
struct OpenRowFixture
{
    OpenRowFixture() : chk(geom(), kTm)
    {
        EXPECT_EQ(chk.check(DramCommand::activate(c00), Tick{}), "");
    }

    TimingChecker chk;
    DramCoord c00{0, 0, 0, 5, 0};
};

} // namespace

TEST(TimingViolation, TrcActToActSameBank)
{
    OpenRowFixture f;
    // Close the row legally so a second ACT is plausible.
    EXPECT_EQ(f.chk.check(DramCommand::precharge(0, 0), cyc(kTm.tRAS)),
              "");
    const std::string err =
        f.chk.check(DramCommand::activate(f.c00), cyc(kTm.tRC) - TickSpan{1});
    EXPECT_NE(err.find("tRC"), std::string::npos) << err;
}

TEST(TimingViolation, TrpPrechargeToActivate)
{
    OpenRowFixture f;
    const Tick preAt = cyc(kTm.tRAS);
    EXPECT_EQ(f.chk.check(DramCommand::precharge(0, 0), preAt), "");
    // One cycle short of tRP after the precharge.
    const Tick actAt = preAt + dur(kTm.tRP) - TickSpan{1};
    const std::string err =
        f.chk.check(DramCommand::activate(f.c00), actAt);
    EXPECT_NE(err.find("tRP"), std::string::npos) << err;
}

TEST(TimingViolation, TrrdActToActAcrossBanks)
{
    OpenRowFixture f;
    DramCoord other{0, 0, 1, 9, 0};
    const std::string err =
        f.chk.check(DramCommand::activate(other), cyc(kTm.tRRD) - TickSpan{1});
    EXPECT_NE(err.find("tRRD"), std::string::npos) << err;
}

TEST(TimingViolation, TfawFifthActivateInWindow)
{
    TimingChecker chk(geom(), kTm);
    // Four activates to distinct banks, spaced exactly tRRD apart —
    // all legal, all inside one tFAW window (4 * tRRD < tFAW).
    ASSERT_LT(3 * kTm.tRRD, kTm.tFAW);
    for (std::uint32_t b = 0; b < 4; ++b) {
        DramCoord c{0, 0, b, 1, 0};
        ASSERT_EQ(chk.check(DramCommand::activate(c),
                            Tick{} + b * dur(kTm.tRRD)),
                  "");
    }
    DramCoord fifth{0, 0, 4, 1, 0};
    const Tick at = Tick{} + 4 * dur(kTm.tRRD); // Legal for tRRD, not for tFAW.
    ASSERT_LT(at, cyc(kTm.tFAW));
    const std::string err = chk.check(DramCommand::activate(fifth), at);
    EXPECT_NE(err.find("tFAW"), std::string::npos) << err;
}

TEST(TimingViolation, TccdBackToBackReads)
{
    OpenRowFixture f;
    const Tick rd1 = cyc(kTm.tRCD);
    EXPECT_EQ(f.chk.check(DramCommand::read(f.c00), rd1), "");
    const std::string err =
        f.chk.check(DramCommand::read(f.c00), rd1 + dur(kTm.tCCD) - TickSpan{1});
    EXPECT_NE(err.find("tCCD"), std::string::npos) << err;
}

TEST(TimingViolation, TrtwReadThenWriteTooSoon)
{
    OpenRowFixture f;
    const Tick rd = cyc(kTm.tRCD);
    EXPECT_EQ(f.chk.check(DramCommand::read(f.c00), rd), "");
    // Past tCCD but short of the read-to-write turnaround.
    ASSERT_GT(kTm.tRTW, kTm.tCCD);
    const std::string err =
        f.chk.check(DramCommand::write(f.c00), rd + dur(kTm.tRTW) - TickSpan{1});
    EXPECT_NE(err.find("tRTW"), std::string::npos) << err;
}

TEST(TimingViolation, TwtrWriteThenReadTooSoon)
{
    OpenRowFixture f;
    const Tick wr = cyc(kTm.tRCD);
    EXPECT_EQ(f.chk.check(DramCommand::write(f.c00), wr), "");
    const TickSpan gap = dur(kTm.tCWL + kTm.tBURST + kTm.tWTR);
    const std::string err =
        f.chk.check(DramCommand::read(f.c00), wr + gap - TickSpan{1});
    EXPECT_NE(err.find("tWTR"), std::string::npos) << err;
}

TEST(TimingViolation, TrasPrechargeTooEarly)
{
    OpenRowFixture f;
    const std::string err =
        f.chk.check(DramCommand::precharge(0, 0), cyc(kTm.tRAS) - TickSpan{1});
    EXPECT_NE(err.find("tRAS"), std::string::npos) << err;
}

TEST(TimingViolation, TrtpReadToPrechargeTooEarly)
{
    OpenRowFixture f;
    // Read late enough that tRAS is already satisfied at the PRE.
    const Tick rd = cyc(kTm.tRAS);
    EXPECT_EQ(f.chk.check(DramCommand::read(f.c00), rd), "");
    const std::string err =
        f.chk.check(DramCommand::precharge(0, 0), rd + dur(kTm.tRTP) - TickSpan{1});
    EXPECT_NE(err.find("tRTP"), std::string::npos) << err;
}

TEST(TimingViolation, WriteRecoveryBeforePrecharge)
{
    OpenRowFixture f;
    const Tick wr = cyc(kTm.tRAS);
    EXPECT_EQ(f.chk.check(DramCommand::write(f.c00), wr), "");
    const TickSpan gap = dur(kTm.tCWL + kTm.tBURST + kTm.tWR);
    const std::string err =
        f.chk.check(DramCommand::precharge(0, 0), wr + gap - TickSpan{1});
    EXPECT_NE(err.find("write recovery"), std::string::npos) << err;
}

TEST(TimingViolation, CommandBusOnePerCycle)
{
    OpenRowFixture f;
    DramCoord other{0, 1, 0, 2, 0};
    const std::string err =
        f.chk.check(DramCommand::activate(other), cyc(1) - TickSpan{1});
    EXPECT_NE(err.find("command bus"), std::string::npos) << err;
}

TEST(TimingViolation, PrechargeToClosedBank)
{
    TimingChecker chk(geom(), kTm);
    const std::string err = chk.check(DramCommand::precharge(0, 0), Tick{100});
    EXPECT_NE(err.find("closed bank"), std::string::npos) << err;
}

TEST(TimingViolation, RefreshBeforeTrpAfterPrecharge)
{
    OpenRowFixture f;
    const Tick preAt = cyc(kTm.tRAS);
    EXPECT_EQ(f.chk.check(DramCommand::precharge(0, 0), preAt), "");
    const std::string err =
        f.chk.check(DramCommand::refresh(0), preAt + dur(kTm.tRP) - TickSpan{1});
    EXPECT_NE(err.find("tRP"), std::string::npos) << err;
}

TEST(TimingViolation, ActivateDuringTrfc)
{
    TimingChecker chk(geom(), kTm);
    EXPECT_EQ(chk.check(DramCommand::refresh(0), Tick{}), "");
    DramCoord c{0, 0, 0, 5, 0};
    const std::string err =
        chk.check(DramCommand::activate(c), cyc(kTm.tRFC) - TickSpan{1});
    EXPECT_NE(err.find("tRFC"), std::string::npos) << err;
}

TEST(TimingViolation, ViolatingCommandDoesNotCorruptState)
{
    // A rejected command must leave the checker's state untouched: the
    // same command at a legal time is then accepted.
    OpenRowFixture f;
    const std::string err =
        f.chk.check(DramCommand::read(f.c00), cyc(kTm.tRCD) - TickSpan{1});
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(f.chk.accepted(), 1u); // Only the ACT.
    EXPECT_EQ(f.chk.check(DramCommand::read(f.c00), cyc(kTm.tRCD)), "");
    EXPECT_EQ(f.chk.accepted(), 2u);
}

TEST(TimingViolation, MessagesAccumulatePerCheck)
{
    // One command can break several constraints at once; the checker
    // reports all of them.
    OpenRowFixture f;
    EXPECT_EQ(f.chk.check(DramCommand::read(f.c00), cyc(kTm.tRCD)), "");
    // Immediately-following read: command bus + tCCD both violated.
    const std::string err =
        f.chk.check(DramCommand::read(f.c00), cyc(kTm.tRCD) + TickSpan{1});
    EXPECT_NE(err.find("command bus"), std::string::npos) << err;
    EXPECT_NE(err.find("tCCD"), std::string::npos) << err;
}

TEST(TimingViolation, TrfcWitnessSurvivesLongCommandStreams)
{
    // DDR5-4800's tRFC window (708 cycles) admits more legal commands
    // on the *other* rank than a small fixed history could retain: a
    // REF to rank 0 must stay visible as the tRFC witness while rank 1
    // legally issues ~264 commands inside the window, or a too-early
    // ACT to rank 0 slips through unflagged.
    const DramDevice &dev = dramDeviceOrDie("DDR5-4800");
    const DramTimings &tm = dev.timings;
    const ClockDomains clk = ClockDomains::fromMhz(2000, dev.busMhz);
    TimingChecker chk(dev.geometry, tm, clk);
    const auto cyc = [&clk](std::uint32_t c) {
        return Tick{} + clk.dramToTicks(c);
    };

    ASSERT_EQ(chk.check(DramCommand::refresh(0), Tick{}), "");

    // Rank 1 pipeline, one {ACT, RD, PRE} triple per 8-cycle slot on
    // command-bus offsets {0, 42, 85}: ACTs stride 4 banks so
    // consecutive same-group commands sit 8 slots (64 cycles) apart,
    // satisfying tRRD_L/tCCD_L; RD at +42 >= tRCD (40), PRE at +85 >=
    // tRAS (77) and >= RD + tRTP; banks recur every 32 slots (256
    // cycles), past tRP after their PRE.
    const auto bankAt = [](std::uint32_t k) {
        return (k * 4) % 32 + (k / 8) % 4;
    };
    std::vector<std::pair<Tick, DramCommand>> stream;
    for (std::uint32_t k = 0; k < 110; ++k) {
        DramCoord c{0, 1, bankAt(k), 1, 0};
        stream.emplace_back(cyc(8 * k + 8), DramCommand::activate(c));
        stream.emplace_back(cyc(8 * k + 8 + 42), DramCommand::read(c));
        stream.emplace_back(cyc(8 * k + 8 + 85),
                            DramCommand::precharge(1, c.bank));
    }
    std::sort(stream.begin(), stream.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (const auto &[at, cmd] : stream) {
        ASSERT_EQ(chk.check(cmd, at), "")
            << dramCommandName(cmd.type) << " at tick " << at;
    }
    ASSERT_GT(stream.size() + 1, 256u)
        << "stream too short to evict a 256-deep history; the test "
           "lost its point";

    // Still one cycle inside rank 0's refresh window.
    DramCoord r0{0, 0, 0, 5, 0};
    const std::string err =
        chk.check(DramCommand::activate(r0), cyc(tm.tRFC) - TickSpan{1});
    EXPECT_NE(err.find("tRFC"), std::string::npos) << err;
    // And legal once the window closes and the rank-1 stream (whose
    // last command lands at cycle 973) has drained off the bus.
    EXPECT_EQ(chk.check(DramCommand::activate(r0), cyc(980)), "");
}
