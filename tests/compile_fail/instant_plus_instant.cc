/**
 * @file
 * Negative-compile probe: adding two absolute time points is a
 * category error the affine API must reject — only instant ± span and
 * instant − instant exist.
 */

#include "common/types.hh"

using namespace mcsim;

int
main()
{
#ifdef CONTROL
    const Tick later = Tick{100} + (Tick{30} - Tick{0});
    return static_cast<int>(later.count() - 130);
#else
    const Tick later = Tick{100} + Tick{30};
    return static_cast<int>(later.count());
#endif
}
