/**
 * @file
 * Negative-compile probe: arithmetic that mixes clock domains must be
 * rejected. Registered twice in CMake — once with -DCONTROL to prove
 * the scaffolding itself compiles, once without (WILL_FAIL) to prove
 * the marked statement is what the compiler rejects.
 */

#include "common/types.hh"

using namespace mcsim;

int
main()
{
#ifdef CONTROL
    // Within-domain equivalent of the rejected statement below.
    const TickSpan total = TickSpan{5} + TickSpan{3};
    return static_cast<int>(total.count() - 8);
#else
    // A core-cycle span plus a tick span has no meaning until one side
    // goes through a ClockDomains conversion.
    const TickSpan total = CoreCycles{5} + TickSpan{3};
    return static_cast<int>(total.count());
#endif
}
