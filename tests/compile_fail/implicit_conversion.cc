/**
 * @file
 * Negative-compile probe: raw integers must not implicitly become
 * typed time (nor typed time silently decay back to integers). The
 * explicit forms — Tick{n} and .count() — are the only doors.
 */

#include "common/types.hh"

using namespace mcsim;

namespace {

TickSpan
latencyAfter(Tick start, Tick end)
{
    return end - start;
}

} // namespace

int
main()
{
#ifdef CONTROL
    const TickSpan lat = latencyAfter(Tick{10}, Tick{52});
    return static_cast<int>(lat.count() - 42);
#else
    // Raw integer arguments must not convert to Instant implicitly.
    const TickSpan lat = latencyAfter(10, 52);
    return static_cast<int>(lat.count());
#endif
}
