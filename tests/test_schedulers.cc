/**
 * @file
 * Scheduling algorithm unit tests: selection rules, ranking math,
 * starvation guards, and learning updates.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/factory.hh"
#include "mem/sched_atlas.hh"
#include "mem/sched_basic.hh"
#include "mem/sched_fqm.hh"
#include "mem/sched_parbs.hh"
#include "mem/sched_rl.hh"

using namespace mcsim;

namespace {

/** Absolute tick @p n (test shorthand for literal times). */
constexpr Tick
tk(std::uint64_t n)
{
    return Tick{n};
}

/** Absolute tick a span past the origin (test shorthand). */
constexpr Tick
tk(TickSpan s)
{
    return Tick{} + s;
}

/** Test fixture helper: owns requests and builds candidates. */
class Pool
{
  public:
    Candidate &
    add(Tick arrived, CoreId core, std::uint32_t bank, bool issuable,
        bool rowHit, DramCommandType cmd = DramCommandType::Read)
    {
        auto req = std::make_unique<Request>();
        req->id = storage_.size();
        req->core = core;
        req->arrivedAt = arrived;
        req->coord.rank = 0;
        req->coord.bank = bank;
        req->coord.row = 1;
        Candidate c;
        c.req = req.get();
        c.cmd = cmd;
        c.issuableNow = issuable;
        c.isRowHit = rowHit;
        storage_.push_back(std::move(req));
        cands_.push_back(c);
        return cands_.back();
    }

    std::vector<Candidate> &all() { return cands_; }

  private:
    std::vector<std::unique_ptr<Request>> storage_;
    std::vector<Candidate> cands_;
};

SchedulerContext
ctx16()
{
    SchedulerContext c;
    c.numCores = 16;
    return c;
}

} // namespace

// ---------------------------------------------------------------- FCFS

TEST(Fcfs, PicksOldestOnly)
{
    FcfsScheduler s;
    Pool p;
    p.add(tk(100), 0, 0, true, true);
    p.add(tk(50), 1, 1, true, false); // Oldest.
    p.add(tk(200), 2, 2, true, true);
    EXPECT_EQ(s.choose(p.all(), tk(300), ctx16()), 1);
}

TEST(Fcfs, IdlesWhenOldestNotIssuable)
{
    FcfsScheduler s;
    Pool p;
    p.add(tk(50), 0, 0, false, false); // Oldest but blocked.
    p.add(tk(100), 1, 1, true, true);  // Issuable but younger.
    EXPECT_EQ(s.choose(p.all(), tk(300), ctx16()), -1);
}

TEST(Fcfs, EmptyPool)
{
    FcfsScheduler s;
    std::vector<Candidate> none;
    EXPECT_EQ(s.choose(none, tk(0), ctx16()), -1);
}

// ---------------------------------------------------------- FCFS_banks

TEST(FcfsBanks, ServesOldestPerBank)
{
    FcfsBanksScheduler s;
    Pool p;
    p.add(tk(50), 0, 0, false, false); // Bank 0 head, blocked.
    p.add(tk(100), 1, 0, true, true);  // Bank 0, younger: NOT eligible.
    p.add(tk(200), 2, 1, true, false); // Bank 1 head, issuable.
    EXPECT_EQ(s.choose(p.all(), tk(300), ctx16()), 2);
}

TEST(FcfsBanks, NoReorderingWithinBank)
{
    FcfsBanksScheduler s;
    Pool p;
    p.add(tk(50), 0, 0, false, false); // Head of bank 0 blocked.
    p.add(tk(100), 1, 0, true, true);  // Row hit behind it.
    EXPECT_EQ(s.choose(p.all(), tk(300), ctx16()), -1);
}

TEST(FcfsBanks, AgeBreaksTiesAcrossBanks)
{
    FcfsBanksScheduler s;
    Pool p;
    p.add(tk(80), 0, 0, true, false);
    p.add(tk(20), 1, 1, true, false); // Older head.
    EXPECT_EQ(s.choose(p.all(), tk(300), ctx16()), 1);
}

TEST(FcfsBanks, EqualAgeHeadsResolveByRequestId)
{
    // Regression: the head-of-bank accounting lives in an
    // unordered_map, and the selection loop once walked candidates in
    // an order influenced by it — equal-arrival heads across banks
    // resolved by hash-bucket order, i.e. differently per stdlib.
    // The contract: ties on arrivedAt break on the lower request id,
    // regardless of how the candidate vector is permuted.
    const Tick arrival = tk(40);
    for (int perm = 0; perm < 2; ++perm) {
        FcfsBanksScheduler s;
        Pool p;
        if (perm == 0) {
            p.add(arrival, 0, 2, true, false); // id 0, bank 2.
            p.add(arrival, 1, 5, true, false); // id 1, bank 5.
            p.add(arrival, 2, 7, true, false); // id 2, bank 7.
        } else {
            // Same requests, reversed bank presentation order; the
            // lowest id must still win.
            p.add(arrival, 2, 7, true, false); // id 0, bank 7.
            p.add(arrival, 1, 5, true, false); // id 1, bank 5.
            p.add(arrival, 0, 2, true, false); // id 2, bank 2.
        }
        const int pick = s.choose(p.all(), tk(300), ctx16());
        ASSERT_GE(pick, 0);
        EXPECT_EQ(p.all()[static_cast<std::size_t>(pick)].req->id, 0u)
            << "permutation " << perm;
    }
}

// -------------------------------------------------------------- FR-FCFS

TEST(FrFcfs, PrefersRowHits)
{
    FrFcfsScheduler s;
    Pool p;
    p.add(tk(50), 0, 0, true, false);  // Oldest, not a hit.
    p.add(tk(100), 1, 1, true, true);  // Younger hit: wins.
    EXPECT_EQ(s.choose(p.all(), tk(300), ctx16()), 1);
}

TEST(FrFcfs, OldestHitAmongHits)
{
    FrFcfsScheduler s;
    Pool p;
    p.add(tk(100), 0, 0, true, true);
    p.add(tk(60), 1, 1, true, true); // Older hit.
    p.add(tk(10), 2, 2, true, false);
    EXPECT_EQ(s.choose(p.all(), tk(300), ctx16()), 1);
}

TEST(FrFcfs, FallsBackToOldest)
{
    FrFcfsScheduler s;
    Pool p;
    p.add(tk(100), 0, 0, true, false);
    p.add(tk(60), 1, 1, true, false);
    EXPECT_EQ(s.choose(p.all(), tk(300), ctx16()), 1);
}

TEST(FrFcfs, SkipsNonIssuable)
{
    FrFcfsScheduler s;
    Pool p;
    p.add(tk(100), 0, 0, false, true);
    p.add(tk(200), 1, 1, true, false);
    EXPECT_EQ(s.choose(p.all(), tk(300), ctx16()), 1);
}

// --------------------------------------------------------------- PAR-BS

TEST(ParBs, MarkedRequestsBeatUnmarked)
{
    ParBsScheduler s(16);
    Pool p;
    p.add(tk(10), 0, 0, true, false);
    p.add(tk(20), 0, 0, true, false);
    // First choose() forms a batch over current pool.
    const int first = s.choose(p.all(), tk(100), ctx16());
    ASSERT_GE(first, 0);
    EXPECT_TRUE(p.all()[first].req->marked);
    EXPECT_EQ(s.batchesFormed(), 1u);
    // A new arrival after batch formation is unmarked and loses.
    auto &young = p.add(tk(30), 1, 1, true, true);
    const int second = s.choose(p.all(), tk(100), ctx16());
    ASSERT_GE(second, 0);
    EXPECT_TRUE(p.all()[second].req->marked);
    EXPECT_NE(p.all()[second].req, young.req);
}

TEST(ParBs, BatchingCapLimitsPerCoreBankMarks)
{
    ParBsScheduler s(16, ParBsConfig{2});
    Pool p;
    for (int i = 0; i < 5; ++i)
        p.add(tk(10 + i), 0, 0, true, false); // Same core, same bank.
    (void)s.choose(p.all(), tk(100), ctx16());
    int marked = 0;
    for (const auto &c : p.all())
        marked += c.req->marked;
    EXPECT_EQ(marked, 2);
}

TEST(ParBs, ShortestJobRanksFirst)
{
    ParBsScheduler s(16);
    Pool p;
    // Core 0: 3 requests to one bank (long job). Core 1: 1 request.
    p.add(tk(10), 0, 0, true, false);
    p.add(tk(11), 0, 0, true, false);
    p.add(tk(12), 0, 0, true, false);
    p.add(tk(20), 1, 1, true, false);
    (void)s.choose(p.all(), tk(100), ctx16());
    EXPECT_LT(s.coreRank(1), s.coreRank(0));
}

TEST(ParBs, NewBatchWhenDrained)
{
    ParBsScheduler s(16, ParBsConfig{5});
    Pool p;
    p.add(tk(10), 0, 0, true, false);
    const int idx = s.choose(p.all(), tk(100), ctx16());
    ASSERT_EQ(idx, 0);
    s.onRequestServiced(*p.all()[0].req);
    // Pool for the next cycle: a fresh request; batch is empty so a
    // new one forms and it gets marked.
    Pool p2;
    p2.add(tk(50), 2, 3, true, false);
    (void)s.choose(p2.all(), tk(200), ctx16());
    EXPECT_EQ(s.batchesFormed(), 2u);
    EXPECT_TRUE(p2.all()[0].req->marked);
}

// ---------------------------------------------------------------- ATLAS

TEST(Atlas, RanksLeastAttainedServiceFirst)
{
    AtlasConfig cfg;
    cfg.quantumCycles = 1000;
    AtlasScheduler s(4, cfg);
    // Core 0 consumes lots of service, core 1 little.
    Request heavy;
    heavy.core = 0;
    for (int i = 0; i < 50; ++i)
        s.onRequestServiced(heavy);
    Request light;
    light.core = 1;
    s.onRequestServiced(light);
    // Advance past a quantum boundary.
    s.tick(tk(kBaselineClocks.coreToTicks(1001)), ctx16());
    EXPECT_EQ(s.quantaElapsed(), 1u);
    EXPECT_LT(s.coreRank(1), s.coreRank(0));
    EXPECT_GT(s.totalService(0), s.totalService(1));
}

TEST(Atlas, ExponentialSmoothingBiasesCurrentQuantum)
{
    AtlasConfig cfg;
    cfg.quantumCycles = 1000;
    cfg.alpha = 0.875;
    AtlasScheduler s(2, cfg);
    Request r;
    r.core = 0;
    for (int i = 0; i < 8; ++i)
        s.onRequestServiced(r);
    s.tick(tk(kBaselineClocks.coreToTicks(1001)), ctx16());
    EXPECT_DOUBLE_EQ(s.totalService(0), 0.875 * 8.0);
    // Next quantum with no service decays it.
    s.tick(tk(kBaselineClocks.coreToTicks(2002)), ctx16());
    EXPECT_DOUBLE_EQ(s.totalService(0), 0.125 * 0.875 * 8.0);
}

TEST(Atlas, HigherRankedCoreWins)
{
    AtlasConfig cfg;
    cfg.quantumCycles = 100;
    AtlasScheduler s(4, cfg);
    Request heavy;
    heavy.core = 2;
    for (int i = 0; i < 10; ++i)
        s.onRequestServiced(heavy);
    s.tick(tk(kBaselineClocks.coreToTicks(101)), ctx16());
    Pool p;
    p.add(tk(kBaselineClocks.coreToTicks(90)), 2, 0, true,
          true); // Heavy core, hit.
    p.add(tk(kBaselineClocks.coreToTicks(95)), 0, 1, true,
          false); // Light core.
    EXPECT_EQ(
        s.choose(p.all(), tk(kBaselineClocks.coreToTicks(110)), ctx16()),
        1);
}

TEST(Atlas, StarvedRequestOverridesRank)
{
    AtlasConfig cfg;
    cfg.quantumCycles = 100;
    cfg.starvationCycles = 1000;
    AtlasScheduler s(4, cfg);
    Request heavy;
    heavy.core = 2;
    for (int i = 0; i < 10; ++i)
        s.onRequestServiced(heavy);
    s.tick(tk(kBaselineClocks.coreToTicks(101)), ctx16());
    Pool p;
    p.add(tk(kBaselineClocks.coreToTicks(10)), 2, 0, true,
          false); // Starved heavy.
    p.add(tk(kBaselineClocks.coreToTicks(1500)), 0, 1, true, true);
    EXPECT_EQ(
        s.choose(p.all(), tk(kBaselineClocks.coreToTicks(1600)), ctx16()),
        0);
}

TEST(Atlas, RowHitBreaksTiesWithinRank)
{
    AtlasScheduler s(4);
    Pool p;
    p.add(tk(10), 0, 0, true, false);
    p.add(tk(20), 0, 1, true, true);
    EXPECT_EQ(s.choose(p.all(), tk(100), ctx16()), 1);
}

// ------------------------------------------------------------------- RL

TEST(Rl, OnlyPicksLegalCandidates)
{
    RlConfig cfg;
    cfg.epsilon = 0.0; // Greedy only; exploration is tested below.
    RlScheduler s(cfg);
    Pool p;
    p.add(tk(10), 0, 0, false, true);
    p.add(tk(20), 1, 1, true, false);
    for (int i = 0; i < 200; ++i) {
        const int idx = s.choose(p.all(), tk(1000 + i), ctx16());
        ASSERT_EQ(idx, 1);
    }
}

TEST(Rl, ExplorationNeverPicksIllegalCandidates)
{
    RlConfig cfg;
    cfg.epsilon = 1.0; // Every decision explores.
    cfg.starvationCycles = 100'000'000;
    RlScheduler s(cfg);
    Pool p;
    p.add(tk(10), 0, 0, false, true);
    p.add(tk(20), 1, 1, true, false);
    bool sawNoAction = false;
    for (int i = 0; i < 300; ++i) {
        const int idx = s.choose(p.all(), tk(1000 + i), ctx16());
        ASSERT_TRUE(idx == 1 || idx == -1) << idx;
        sawNoAction = sawNoAction || idx == -1;
    }
    // The action vocabulary includes no-action.
    EXPECT_TRUE(sawNoAction);
}

TEST(Rl, ReturnsMinusOneWhenNothingLegal)
{
    RlScheduler s;
    Pool p;
    p.add(tk(10), 0, 0, false, true);
    EXPECT_EQ(s.choose(p.all(), tk(100), ctx16()), -1);
}

TEST(Rl, LearnsFromRewards)
{
    RlScheduler s;
    Pool p;
    p.add(tk(10), 0, 0, true, true, DramCommandType::Read);
    // Repeated data-transferring actions earn reward; the chosen
    // feature vector's Q-value must rise above its initial zero.
    Tick now{1000};
    for (int i = 0; i < 500; ++i) {
        (void)s.choose(p.all(), now, ctx16());
        now += kBaselineClocks.ticksPerDram;
    }
    EXPECT_GT(s.updates(), 400u);
}

TEST(Rl, ExploresAtConfiguredRate)
{
    RlConfig cfg;
    cfg.epsilon = 0.2;
    // Starvation must not kick in: the pool is never serviced, and a
    // starved pick would bypass (and undercount) exploration.
    cfg.starvationCycles = 100'000'000;
    RlScheduler s(cfg);
    Pool p;
    p.add(tk(10), 0, 0, true, true);
    p.add(tk(20), 1, 1, true, false);
    Tick now{1000};
    for (int i = 0; i < 5000; ++i) {
        (void)s.choose(p.all(), now, ctx16());
        now += kBaselineClocks.ticksPerDram;
    }
    // ~20% of 5000 decisions should be exploratory.
    EXPECT_NEAR(static_cast<double>(s.explorations()), 1000.0, 200.0);
}

TEST(Rl, StarvationGuardServicesOldRequests)
{
    RlConfig cfg;
    cfg.starvationCycles = 100;
    cfg.epsilon = 0.0;
    RlScheduler s(cfg);
    Pool p;
    p.add(tk(kBaselineClocks.coreToTicks(0)), 0, 0, true,
          false); // Ancient.
    p.add(tk(kBaselineClocks.coreToTicks(190)), 1, 1, true,
          true); // Fresh hit.
    EXPECT_EQ(
        s.choose(p.all(), tk(kBaselineClocks.coreToTicks(200)), ctx16()),
        0);
}

TEST(Rl, DeterministicGivenSeed)
{
    RlConfig cfg;
    cfg.seed = 42;
    RlScheduler a(cfg), b(cfg);
    Pool p;
    p.add(tk(10), 0, 0, true, true);
    p.add(tk(20), 1, 1, true, false);
    Tick now{1000};
    for (int i = 0; i < 300; ++i) {
        ASSERT_EQ(a.choose(p.all(), now, ctx16()),
                  b.choose(p.all(), now, ctx16()));
        now += kBaselineClocks.ticksPerDram;
    }
}

TEST(Rl, UsesUnifiedQueues)
{
    RlScheduler s;
    EXPECT_TRUE(s.unifiedQueues());
    FrFcfsScheduler f;
    EXPECT_FALSE(f.unifiedQueues());
}

// ------------------------------------------------------------------ FQM

TEST(Fqm, EqualizesServiceAcrossCores)
{
    FqmScheduler s(4);
    // Core 0 already got service at bank 0.
    Request served;
    served.core = 0;
    served.coord.bank = 0;
    s.onRequestServiced(served);
    s.onRequestServiced(served);
    Pool p;
    p.add(tk(10), 0, 0, true, true);  // Core 0, much virtual time.
    p.add(tk(20), 1, 0, true, false); // Core 1, none: wins.
    EXPECT_EQ(s.choose(p.all(), tk(100), ctx16()), 1);
    EXPECT_EQ(s.virtualTime(0, p.all()[0].req->coord.flatBankKey()), 2u);
}

TEST(Fqm, RowHitBreaksVirtualTimeTies)
{
    FqmScheduler s(4);
    Pool p;
    p.add(tk(10), 0, 0, true, false);
    p.add(tk(20), 1, 1, true, true);
    EXPECT_EQ(s.choose(p.all(), tk(100), ctx16()), 1);
}

// ------------------------------------------------------------------ TCM

namespace {

/** A TCM with one elapsed quantum shaped by the given per-core loads. */
TcmScheduler
tcmAfterQuantum(const std::vector<std::uint64_t> &arrivals,
                const std::vector<std::uint64_t> &services,
                TcmConfig cfg = TcmConfig{})
{
    TcmScheduler s(static_cast<std::uint32_t>(arrivals.size()), cfg);
    Request req;
    for (CoreId c = 0; c < arrivals.size(); ++c) {
        req.core = c;
        for (std::uint64_t i = 0; i < arrivals[c]; ++i)
            s.onRequestArrived(req);
        for (std::uint64_t i = 0; i < services[c]; ++i)
            s.onRequestServiced(req);
    }
    s.tick(tk(kBaselineClocks.coreToTicks(cfg.quantumCycles) + TickSpan{1}),
           SchedulerContext{});
    return s;
}

} // namespace

TEST(Tcm, StartsAsAllLatencyCluster)
{
    TcmScheduler s(4);
    for (CoreId c = 0; c < 4; ++c) {
        EXPECT_TRUE(s.inLatencyCluster(c));
        EXPECT_EQ(s.corePriority(c), 0u);
    }
    EXPECT_EQ(s.quantaElapsed(), 0u);
}

TEST(Tcm, ClustersLightCoresAsLatencySensitive)
{
    // Core 0 is light, cores 1-3 are heavy; with clusterFrac = 0.2 the
    // latency budget is 0.2 * 310 = 62 >= core 0's 10 serviced.
    TcmScheduler s = tcmAfterQuantum({5, 100, 100, 100},
                                     {10, 100, 100, 100});
    EXPECT_EQ(s.quantaElapsed(), 1u);
    EXPECT_TRUE(s.inLatencyCluster(0));
    EXPECT_FALSE(s.inLatencyCluster(1));
    EXPECT_FALSE(s.inLatencyCluster(2));
    EXPECT_FALSE(s.inLatencyCluster(3));
}

TEST(Tcm, LatencyClusterBeatsBandwidthCluster)
{
    TcmScheduler s = tcmAfterQuantum({5, 100, 100, 100},
                                     {10, 100, 100, 100});
    Pool p;
    p.add(tk(10), 1, 0, true, true);  // Heavy core, older, row hit.
    p.add(tk(90), 0, 1, true, false); // Light core: still wins.
    EXPECT_EQ(s.choose(p.all(), tk(100), ctx16()), 1);
}

TEST(Tcm, RowHitBreaksTiesWithinCluster)
{
    TcmScheduler s(4);
    Pool p;
    p.add(tk(10), 0, 0, true, false);
    p.add(tk(20), 1, 1, true, true);
    EXPECT_EQ(s.choose(p.all(), tk(100), ctx16()), 1);
}

TEST(Tcm, StarvedRequestOverridesClusters)
{
    TcmConfig cfg;
    cfg.starvationCycles = 1'000;
    TcmScheduler s = tcmAfterQuantum({5, 100, 100, 100},
                                     {10, 100, 100, 100}, cfg);
    Pool p;
    p.add(tk(kBaselineClocks.coreToTicks(10)), 1, 0, true,
          false); // Starved heavy.
    p.add(tk(kBaselineClocks.coreToTicks(2900)), 0, 1, true, true);
    EXPECT_EQ(
        s.choose(p.all(), tk(kBaselineClocks.coreToTicks(3000)), ctx16()),
        0);
}

TEST(Tcm, ShuffleReordersOnlyBandwidthCluster)
{
    TcmConfig cfg;
    cfg.shuffleCycles = 10;
    TcmScheduler s = tcmAfterQuantum({5, 100, 100, 100},
                                     {10, 100, 100, 100}, cfg);
    const auto lightPrio = s.corePriority(0);
    // Drive several shuffle intervals; the latency core's priority is
    // stable while the bandwidth cores' priorities stay a permutation
    // of the remaining slots.
    const Tick start =
        tk(kBaselineClocks.coreToTicks(cfg.quantumCycles) + TickSpan{100});
    for (int i = 1; i <= 50; ++i) {
        s.tick(start + kBaselineClocks.coreToTicks(10) * i,
               SchedulerContext{});
        EXPECT_EQ(s.corePriority(0), lightPrio);
        std::vector<bool> seen(4, false);
        for (CoreId c = 1; c < 4; ++c) {
            const auto pr = s.corePriority(c);
            ASSERT_GE(pr, 1u);
            ASSERT_LT(pr, 4u);
            ASSERT_FALSE(seen[pr]) << "duplicate priority " << pr;
            seen[pr] = true;
        }
    }
    EXPECT_GE(s.shufflesDone(), 40u);
}

TEST(Tcm, OnlyPicksIssuableCandidates)
{
    TcmScheduler s(4);
    Pool p;
    p.add(tk(10), 0, 0, false, true);
    p.add(tk(20), 1, 1, true, false);
    EXPECT_EQ(s.choose(p.all(), tk(100), ctx16()), 1);
    std::vector<Candidate> none;
    EXPECT_EQ(s.choose(none, tk(100), ctx16()), -1);
}

TEST(Tcm, IoRequestsRankBelowAllCores)
{
    TcmScheduler s = tcmAfterQuantum({50, 50, 50, 50},
                                     {50, 50, 50, 50});
    Pool p;
    p.add(tk(10), kIoCoreId, 0, true, true); // Old IO request.
    p.add(tk(90), 2, 1, true, false);        // Younger core request: wins.
    EXPECT_EQ(s.choose(p.all(), tk(100), ctx16()), 1);
}

// ----------------------------------------------------------------- STFM

TEST(Stfm, BehavesLikeFrFcfsWhenFair)
{
    StfmScheduler s(4);
    Pool p;
    p.add(tk(50), 0, 0, true, false); // Oldest non-hit.
    p.add(tk(100), 1, 1, true, true); // Younger hit: wins under FR-FCFS.
    EXPECT_EQ(s.choose(p.all(), tk(300), ctx16()), 1);
    EXPECT_DOUBLE_EQ(s.unfairness(), 1.0);
}

TEST(Stfm, SlowdownTracksWaitingTime)
{
    StfmScheduler s(4);
    Pool p;
    // Core 0's CAS waited a long time relative to its alone-service
    // estimate: slowdown rises above 1.
    p.add(tk(0), 0, 0, true, true);
    (void)s.choose(p.all(), tk(kBaselineClocks.dramToTicks(500)),
                   ctx16());
    EXPECT_GT(s.slowdownOf(0), 1.0);
    EXPECT_DOUBLE_EQ(s.slowdownOf(1), 1.0); // Idle core.
}

TEST(Stfm, ElevatesMostSlowedCoreWhenUnfair)
{
    StfmConfig cfg;
    cfg.alpha = 1.05;
    StfmScheduler s(4, cfg);
    // Train: core 0's requests wait ~20x service, core 1's none.
    for (int i = 0; i < 4; ++i) {
        Pool waitP;
        waitP.add(tk(0), 0, 0, true, true);
        (void)s.choose(waitP.all(),
                       tk(kBaselineClocks.dramToTicks(400 * (i + 1))),
                       ctx16());
        Pool fastP;
        fastP.add(tk(kBaselineClocks.dramToTicks(400 * (i + 1)) -
                     TickSpan{10}),
                  1, 1, true, true);
        (void)s.choose(fastP.all(),
                       tk(kBaselineClocks.dramToTicks(400 * (i + 1))),
                       ctx16());
    }
    EXPECT_GT(s.unfairness(), 1.05);
    // Now core 0's non-hit must beat core 1's younger row hit.
    Pool p;
    p.add(tk(kBaselineClocks.coreToTicks(5000)), 1, 1, true, true);
    p.add(tk(kBaselineClocks.coreToTicks(4000)), 0, 0, true, false);
    EXPECT_EQ(
        s.choose(p.all(), tk(kBaselineClocks.coreToTicks(5100)), ctx16()),
        1);
}

TEST(Stfm, DecayForgetsOldImbalance)
{
    StfmConfig cfg;
    cfg.decayCycles = 100;
    cfg.decayFactor = 0.0; // Full forget at each interval.
    StfmScheduler s(4, cfg);
    Pool p;
    p.add(tk(0), 0, 0, true, true);
    (void)s.choose(p.all(), tk(kBaselineClocks.dramToTicks(500)),
                   ctx16());
    EXPECT_GT(s.slowdownOf(0), 1.0);
    s.tick(tk(kBaselineClocks.coreToTicks(200)), ctx16());
    EXPECT_DOUBLE_EQ(s.slowdownOf(0), 1.0);
}

TEST(Stfm, StarvedRequestBeatsEverything)
{
    StfmConfig cfg;
    cfg.starvationCycles = 1'000;
    StfmScheduler s(4, cfg);
    Pool p;
    p.add(tk(kBaselineClocks.coreToTicks(0)), 2, 0, true,
          false); // Ancient.
    p.add(tk(kBaselineClocks.coreToTicks(1900)), 0, 1, true, true);
    EXPECT_EQ(
        s.choose(p.all(), tk(kBaselineClocks.coreToTicks(2000)), ctx16()),
        0);
}

TEST(Stfm, OnlyPicksIssuable)
{
    StfmScheduler s(4);
    Pool p;
    p.add(tk(10), 0, 0, false, true);
    EXPECT_EQ(s.choose(p.all(), tk(100), ctx16()), -1);
}

// -------------------------------------------------------------- Factory

TEST(Factory, AllSchedulersConstructible)
{
    for (auto kind : {SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks,
                      SchedulerKind::ParBs, SchedulerKind::Atlas,
                      SchedulerKind::Rl, SchedulerKind::Fcfs,
                      SchedulerKind::Fqm, SchedulerKind::Tcm,
                      SchedulerKind::Stfm}) {
        auto s = makeScheduler(kind, 16);
        ASSERT_NE(s, nullptr);
        EXPECT_STREQ(s->name(), schedulerKindName(kind));
        EXPECT_EQ(schedulerKindFromName(s->name()), kind);
    }
}
