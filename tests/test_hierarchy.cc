/**
 * @file
 * Cache hierarchy tests: L1/L2 interaction, MSHR miss merging,
 * writeback generation, and wake delivery.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/hierarchy.hh"

using namespace mcsim;

namespace {

struct Harness
{
    Harness()
        : hierarchy(4, smallConfig())
    {
        hierarchy.setSendMemRead(
            [this](CoreId c, Addr a) { reads.emplace_back(c, a); });
        hierarchy.setSendMemWrite(
            [this](CoreId c, Addr a) { writes.emplace_back(c, a); });
        hierarchy.setWake([this](CoreId c, MissKind k) {
            wakes.emplace_back(c, k);
        });
    }

    static HierarchyConfig
    smallConfig()
    {
        HierarchyConfig cfg;
        cfg.l1i = {1024, 2, 64};
        cfg.l1d = {1024, 2, 64};
        cfg.l2 = {8192, 4, 64};
        return cfg;
    }

    CacheHierarchy hierarchy;
    std::vector<std::pair<CoreId, Addr>> reads;
    std::vector<std::pair<CoreId, Addr>> writes;
    std::vector<std::pair<CoreId, MissKind>> wakes;
};

} // namespace

TEST(Hierarchy, ColdLoadGoesToMemory)
{
    Harness h;
    EXPECT_EQ(h.hierarchy.load(0, 0x1000), AccessOutcome::Miss);
    ASSERT_EQ(h.reads.size(), 1u);
    EXPECT_EQ(h.reads[0].second, 0x1000u);
    EXPECT_EQ(h.hierarchy.stats().l2DemandMisses, 1u);
}

TEST(Hierarchy, ResponseFillsAndWakes)
{
    Harness h;
    h.hierarchy.load(0, 0x1000);
    h.hierarchy.onMemResponse(0, 0x1000);
    ASSERT_EQ(h.wakes.size(), 1u);
    EXPECT_EQ(h.wakes[0].second, MissKind::Load);
    // Now both L1D and L2 hold the block.
    EXPECT_EQ(h.hierarchy.load(0, 0x1000), AccessOutcome::L1Hit);
}

TEST(Hierarchy, L2HitAfterOtherCoreFetched)
{
    Harness h;
    h.hierarchy.load(0, 0x1000);
    h.hierarchy.onMemResponse(0, 0x1000);
    // Core 1 misses its own L1 but hits the shared L2.
    EXPECT_EQ(h.hierarchy.load(1, 0x1000), AccessOutcome::L2Hit);
    // And its L1 was filled by the L2 hit path.
    EXPECT_EQ(h.hierarchy.load(1, 0x1000), AccessOutcome::L1Hit);
}

TEST(Hierarchy, MshrMergesConcurrentMisses)
{
    Harness h;
    EXPECT_EQ(h.hierarchy.load(0, 0x2000), AccessOutcome::Miss);
    EXPECT_EQ(h.hierarchy.load(1, 0x2000), AccessOutcome::MergedMiss);
    EXPECT_EQ(h.reads.size(), 1u); // Single memory read.
    EXPECT_EQ(h.hierarchy.stats().l2DemandMisses, 2u);
    h.hierarchy.onMemResponse(0, 0x2000);
    EXPECT_EQ(h.wakes.size(), 2u); // Both cores wake.
    EXPECT_EQ(h.hierarchy.outstandingMisses(), 0u);
}

TEST(Hierarchy, IfetchUsesInstructionCache)
{
    Harness h;
    EXPECT_EQ(h.hierarchy.ifetch(0, 0x3000), AccessOutcome::Miss);
    h.hierarchy.onMemResponse(0, 0x3000);
    EXPECT_EQ(h.hierarchy.ifetch(0, 0x3000), AccessOutcome::L1Hit);
    // The data path does not see instruction fills in L1D.
    EXPECT_EQ(h.hierarchy.load(0, 0x3000), AccessOutcome::L2Hit);
}

TEST(Hierarchy, StoreMissAllocatesDirty)
{
    Harness h;
    EXPECT_EQ(h.hierarchy.store(0, 0x4000), AccessOutcome::Miss);
    h.hierarchy.onMemResponse(0, 0x4000);
    ASSERT_EQ(h.wakes.size(), 1u);
    EXPECT_EQ(h.wakes[0].second, MissKind::Store);
    EXPECT_TRUE(h.hierarchy.l1d(0).contains(0x4000));
}

TEST(Hierarchy, L2EvictionWritesBackToMemory)
{
    Harness h;
    // Dirty a block, then stream enough distinct blocks through one
    // L2 set to evict it. L2: 8192/4w/64B = 32 sets; same set every
    // 32 blocks (0x800 stride).
    h.hierarchy.store(0, 0x0);
    h.hierarchy.onMemResponse(0, 0x0);
    // Force the dirty L1 line down into L2 by thrashing L1 set 0
    // (L1: 1024/2w = 8 sets, stride 0x200).
    h.hierarchy.load(0, 0x200);
    h.hierarchy.onMemResponse(0, 0x200);
    h.hierarchy.load(0, 0x400);
    h.hierarchy.onMemResponse(0, 0x400);
    // Now thrash L2 set 0 to evict the dirty block.
    for (Addr a = 0x800; a <= 0x800 * 5; a += 0x800) {
        h.hierarchy.load(1, a);
        h.hierarchy.onMemResponse(1, a);
    }
    EXPECT_GE(h.writes.size(), 1u);
    EXPECT_EQ(h.hierarchy.stats().memWritebacks, h.writes.size());
}

TEST(Hierarchy, ResetStatsClears)
{
    Harness h;
    h.hierarchy.load(0, 0x1000);
    h.hierarchy.resetStats();
    EXPECT_EQ(h.hierarchy.stats().l2DemandMisses, 0u);
    EXPECT_EQ(h.hierarchy.stats().memReads, 0u);
    EXPECT_EQ(h.hierarchy.l2().stats().accesses, 0u);
}
