/**
 * @file
 * Full-system protocol validation: attach the independent
 * TimingChecker to every channel of a complete System run (cores +
 * caches + controller + refresh + every scheduler) and assert that
 * not one of the tens of thousands of issued DRAM commands violates a
 * JEDEC constraint. This closes the loop the unit fuzz test opens:
 * the fuzz drives the channel with synthetic traffic; this drives it
 * with the real controller under real workloads.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dram/timing_checker.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

struct Referee
{
    explicit Referee(System &sys, const SimConfig &cfg)
    {
        for (std::uint32_t ch = 0; ch < sys.numControllers(); ++ch) {
            checkers.push_back(std::make_unique<TimingChecker>(
                cfg.dram, cfg.timings));
            Channel &channel = sys.controller(ch).channel();
            TimingChecker *chk = checkers.back().get();
            channel.setCommandHook(
                [this, chk](const DramCommand &cmd, Tick now) {
                    const std::string err = chk->check(cmd, now);
                    if (!err.empty() && violations < 5) {
                        ++violations;
                        firstError = err;
                    }
                });
        }
    }

    std::vector<std::unique_ptr<TimingChecker>> checkers;
    int violations = 0;
    std::string firstError;
};

} // namespace

class ProtocolValidation
    : public ::testing::TestWithParam<SchedulerKind>
{
};

TEST_P(ProtocolValidation, SystemRunIssuesOnlyLegalCommands)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.scheduler = GetParam();
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 250'000;
    System sys(cfg, workloadPreset(WorkloadId::DS));
    Referee referee(sys, cfg);
    (void)sys.run();

    std::uint64_t accepted = 0;
    for (const auto &chk : referee.checkers)
        accepted += chk->accepted();
    EXPECT_GT(accepted, 1000u) << "run produced too few commands";
    EXPECT_EQ(referee.violations, 0) << referee.firstError;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, ProtocolValidation,
    ::testing::Values(SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks,
                      SchedulerKind::ParBs, SchedulerKind::Atlas,
                      SchedulerKind::Rl, SchedulerKind::Fqm,
                      SchedulerKind::Tcm, SchedulerKind::Stfm));

TEST(ProtocolValidationMultiChannel, FourChannelsAllLegal)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.dram.channels = 4;
    cfg.mapping = MappingScheme::RoChRaBaCo;
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 250'000;
    System sys(cfg, workloadPreset(WorkloadId::TPCHQ6));
    Referee referee(sys, cfg);
    (void)sys.run();
    EXPECT_EQ(referee.violations, 0) << referee.firstError;
    // Every channel saw traffic.
    for (const auto &chk : referee.checkers)
        EXPECT_GT(chk->accepted(), 100u);
}

TEST(ProtocolValidationPolicies, ClosePolicyStillLegal)
{
    // Close-page issues the most precharges; validate it separately.
    SimConfig cfg = SimConfig::baseline();
    cfg.pagePolicy = PagePolicyKind::Close;
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 200'000;
    System sys(cfg, workloadPreset(WorkloadId::MS));
    Referee referee(sys, cfg);
    (void)sys.run();
    EXPECT_EQ(referee.violations, 0) << referee.firstError;
}
