/**
 * @file
 * Full-system protocol validation: attach the independent
 * TimingChecker to every channel of a complete System run (cores +
 * caches + controller + refresh + every scheduler) and assert that
 * not one of the tens of thousands of issued DRAM commands violates a
 * JEDEC constraint. This closes the loop the unit fuzz test opens:
 * the fuzz drives the channel with synthetic traffic; this drives it
 * with the real controller under real workloads.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "dram/devices.hh"
#include "dram/timing_checker.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

struct Referee
{
    explicit Referee(System &sys, const SimConfig &cfg)
    {
        for (std::uint32_t ch = 0; ch < sys.numControllers(); ++ch) {
            checkers.push_back(std::make_unique<TimingChecker>(
                cfg.dram, cfg.timings));
            Channel &channel = sys.controller(ch).channel();
            TimingChecker *chk = checkers.back().get();
            channel.setCommandHook(
                [this, chk](const DramCommand &cmd, Tick now) {
                    const std::string err = chk->check(cmd, now);
                    if (!err.empty() && violations < 5) {
                        ++violations;
                        firstError = err;
                    }
                });
        }
    }

    std::vector<std::unique_ptr<TimingChecker>> checkers;
    int violations = 0;
    std::string firstError;
};

} // namespace

class ProtocolValidation
    : public ::testing::TestWithParam<SchedulerKind>
{
};

TEST_P(ProtocolValidation, SystemRunIssuesOnlyLegalCommands)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.scheduler = GetParam();
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 250'000;
    System sys(cfg, workloadPreset(WorkloadId::DS));
    Referee referee(sys, cfg);
    (void)sys.run();

    std::uint64_t accepted = 0;
    for (const auto &chk : referee.checkers)
        accepted += chk->accepted();
    EXPECT_GT(accepted, 1000u) << "run produced too few commands";
    EXPECT_EQ(referee.violations, 0) << referee.firstError;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, ProtocolValidation,
    ::testing::Values(SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks,
                      SchedulerKind::ParBs, SchedulerKind::Atlas,
                      SchedulerKind::Rl, SchedulerKind::Fqm,
                      SchedulerKind::Tcm, SchedulerKind::Stfm));

TEST(ProtocolValidationMultiChannel, FourChannelsAllLegal)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.dram.channels = 4;
    cfg.mapping = MappingScheme::RoChRaBaCo;
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 250'000;
    System sys(cfg, workloadPreset(WorkloadId::TPCHQ6));
    Referee referee(sys, cfg);
    (void)sys.run();
    EXPECT_EQ(referee.violations, 0) << referee.firstError;
    // Every channel saw traffic.
    for (const auto &chk : referee.checkers)
        EXPECT_GT(chk->accepted(), 100u);
}

TEST(ProtocolValidationPolicies, ClosePolicyStillLegal)
{
    // Close-page issues the most precharges; validate it separately.
    SimConfig cfg = SimConfig::baseline();
    cfg.pagePolicy = PagePolicyKind::Close;
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 200'000;
    System sys(cfg, workloadPreset(WorkloadId::MS));
    Referee referee(sys, cfg);
    (void)sys.run();
    EXPECT_EQ(referee.violations, 0) << referee.firstError;
}

/**
 * Bank-group devices: full-system runs on the real split timings
 * (tCCD_L/tRRD_L/tWTR_L now bound by the checker too) must stay
 * violation-free under both group-bit placements, and LPDDR3's
 * per-bank refresh stream must satisfy the REFpb rules.
 */
class ProtocolValidationDevices
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ProtocolValidationDevices, GroupTimingRunsAllLegal)
{
    for (const auto gm : kAllBankGroupMappings) {
        SimConfig cfg = SimConfig::baseline();
        cfg.applyDevice(dramDeviceOrDie(GetParam()));
        cfg.bankGroupMapping = gm;
        cfg.warmupCoreCycles = 50'000;
        cfg.measureCoreCycles = 200'000;
        System sys(cfg, workloadPreset(WorkloadId::DS));
        Referee referee(sys, cfg);
        (void)sys.run();
        EXPECT_EQ(referee.violations, 0)
            << bankGroupMappingName(gm) << ": " << referee.firstError;
        std::uint64_t accepted = 0;
        for (const auto &chk : referee.checkers)
            accepted += chk->accepted();
        EXPECT_GT(accepted, 1000u) << "run produced too few commands";
    }
}

INSTANTIATE_TEST_SUITE_P(BankGroupAndPerBankRefreshDevices,
                         ProtocolValidationDevices,
                         ::testing::Values("DDR4-2400", "DDR5-4800",
                                           "LPDDR3-1600"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return name;
                         });

namespace {

/** DDR4 timings + a checker with rows opened where a test needs them. */
struct Ddr4Fixture
{
    Ddr4Fixture()
        : dev(dramDeviceOrDie("DDR4-2400")),
          clk(ClockDomains::fromMhz(2000, dev.busMhz)),
          chk(dev.geometry, dev.timings, clk)
    {
    }

    /** The instant @p c DRAM cycles after the time origin. */
    Tick cyc(std::uint32_t c) const { return Tick{} + clk.dramToTicks(c); }
    /** @p c DRAM cycles as a tick span. */
    TickSpan dur(std::uint32_t c) const { return clk.dramToTicks(c); }

    const DramDevice &dev;
    ClockDomains clk;
    TimingChecker chk;
};

} // namespace

TEST(ProtocolValidationGroups, TccdLViolationRejected)
{
    Ddr4Fixture f;
    const DramTimings &tm = f.dev.timings;
    ASSERT_GT(tm.tCCDL, tm.tCCD);
    // Open the same-group bank pair (banks 0 and 1, group 0).
    DramCoord a{0, 0, 0, 5, 0}, b{0, 0, 1, 7, 0};
    ASSERT_EQ(f.chk.check(DramCommand::activate(a), Tick{}), "");
    ASSERT_EQ(f.chk.check(DramCommand::activate(b), f.cyc(1000)), "");
    const Tick rd = f.cyc(2000);
    ASSERT_EQ(f.chk.check(DramCommand::read(a), rd), "");
    // Past tCCD_S but short of tCCD_L: same group, must be rejected.
    const std::string err =
        f.chk.check(DramCommand::read(b), rd + f.dur(tm.tCCDL) - TickSpan{1});
    EXPECT_NE(err.find("tCCD_L"), std::string::npos) << err;
    // At tCCD_L it goes through.
    EXPECT_EQ(f.chk.check(DramCommand::read(b), rd + f.dur(tm.tCCDL)),
              "");
}

TEST(ProtocolValidationGroups, TrrdLViolationRejected)
{
    Ddr4Fixture f;
    const DramTimings &tm = f.dev.timings;
    ASSERT_GT(tm.tRRDL, tm.tRRD);
    DramCoord a{0, 0, 0, 5, 0};
    DramCoord sameGroup{0, 0, 1, 5, 0};
    ASSERT_EQ(f.chk.check(DramCommand::activate(a), Tick{}), "");
    // Legal for tRRD_S, illegal for tRRD_L: same bank group.
    const std::string err = f.chk.check(DramCommand::activate(sameGroup),
                                        f.cyc(tm.tRRDL) - TickSpan{1});
    EXPECT_NE(err.find("tRRD_L"), std::string::npos) << err;
    EXPECT_EQ(
        f.chk.check(DramCommand::activate(sameGroup), f.cyc(tm.tRRDL)),
        "");
    // A different group is held only to tRRD_S.
    DramCoord otherGroup{0, 0, f.dev.geometry.banksPerGroup(), 5, 0};
    EXPECT_EQ(f.chk.check(DramCommand::activate(otherGroup),
                          f.cyc(tm.tRRDL) + f.dur(tm.tRRD)),
              "");
}

TEST(ProtocolValidationGroups, TfawCountsActsAcrossGroups)
{
    Ddr4Fixture f;
    const DramTimings &tm = f.dev.timings;
    // Four ACTs to four *different* bank groups, spaced by tRRD_S —
    // legal (tRRD_L never binds across groups), all in one tFAW
    // window.
    ASSERT_LT(3 * tm.tRRD, tm.tFAW);
    const std::uint32_t bpg = f.dev.geometry.banksPerGroup();
    for (std::uint32_t g = 0; g < 4; ++g) {
        DramCoord c{0, 0, g * bpg, 1, 0};
        ASSERT_EQ(
            f.chk.check(DramCommand::activate(c), Tick{} + g * f.dur(tm.tRRD)),
            "")
            << "group " << g;
    }
    // The fifth ACT — to yet another bank — must trip tFAW even
    // though every prior ACT went to a different group.
    DramCoord fifth{0, 0, 1, 1, 0};
    const Tick at = Tick{} + 4 * f.dur(tm.tRRD);
    ASSERT_LT(at, f.cyc(tm.tFAW));
    const std::string err = f.chk.check(DramCommand::activate(fifth), at);
    EXPECT_NE(err.find("tFAW"), std::string::npos) << err;
}

TEST(ProtocolValidationPerBankRefresh, OtherBanksStaySchedulable)
{
    const DramDevice &dev = dramDeviceOrDie("LPDDR3-1600");
    ASSERT_TRUE(dev.timings.perBankRefresh);
    const ClockDomains clk = ClockDomains::fromMhz(2000, dev.busMhz);
    const auto cyc = [&clk](std::uint32_t c) {
        return Tick{} + clk.dramToTicks(c);
    };

    // Channel: a REFpb to bank 0 leaves bank 1 activatable right on
    // the next command cycle, while bank 0 is blocked for tRFCpb.
    Channel chan(dev.geometry, dev.timings, /*enableRefresh=*/false, clk);
    chan.issue(DramCommand::refreshBank(0, 0), Tick{});
    DramCoord b1{0, 0, 1, 3, 0};
    EXPECT_TRUE(chan.canIssue(DramCommand::activate(b1), cyc(1)));
    DramCoord b0{0, 0, 0, 3, 0};
    EXPECT_FALSE(chan.canIssue(DramCommand::activate(b0),
                               cyc(dev.timings.tRFCpb) - TickSpan{1}));
    EXPECT_TRUE(
        chan.canIssue(DramCommand::activate(b0), cyc(dev.timings.tRFCpb)));

    // Checker: the same sequence is accepted, and the too-early ACT to
    // the refreshed bank is named as a tRFCpb violation.
    TimingChecker chk(dev.geometry, dev.timings, clk);
    EXPECT_EQ(chk.check(DramCommand::refreshBank(0, 0), Tick{}), "");
    EXPECT_EQ(chk.check(DramCommand::activate(b1), cyc(1)), "");
    const std::string err = chk.check(DramCommand::activate(b0),
                                      cyc(dev.timings.tRFCpb) - TickSpan{1});
    EXPECT_NE(err.find("tRFCpb"), std::string::npos) << err;
}

TEST(ProtocolValidationPerBankRefresh, RefpbToOpenBankRejected)
{
    const DramDevice &dev = dramDeviceOrDie("LPDDR3-1600");
    const ClockDomains clk = ClockDomains::fromMhz(2000, dev.busMhz);
    TimingChecker chk(dev.geometry, dev.timings, clk);
    DramCoord b0{0, 0, 0, 3, 0};
    ASSERT_EQ(chk.check(DramCommand::activate(b0), Tick{}), "");
    // The open bank cannot be refreshed, but its closed neighbor can.
    const std::string err =
        chk.check(DramCommand::refreshBank(0, 0),
                  Tick{} + clk.dramToTicks(100));
    EXPECT_NE(err.find("open bank"), std::string::npos) << err;
    EXPECT_EQ(chk.check(DramCommand::refreshBank(0, 1),
                        Tick{} + clk.dramToTicks(100)),
              "");
}
