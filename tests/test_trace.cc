/**
 * @file
 * Trace capture/replay tests: binary roundtrip, recording wrapper
 * transparency, and looping replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "workload/synthetic.hh"
#include "workload/trace.hh"

using namespace mcsim;

namespace {

std::string
tempTracePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/cloudmc_" + tag +
           ".trace";
}

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.cores = 2;
    p.memRefPerInstr = 0.4;
    RegionSpec r;
    r.share = 1.0;
    r.footprintBytes = 1 << 20;
    r.zipfTheta = 0.5;
    p.regions = {r};
    p.seed = 77;
    return p;
}

} // namespace

TEST(Trace, RecordingIsTransparent)
{
    const std::string path = tempTracePath("transparent");
    SyntheticWorkload inner(tinyParams(), 1ull << 30);
    SyntheticWorkload reference(tinyParams(), 1ull << 30);
    TraceWriter writer(path, 2);
    RecordingWorkload rec(inner, writer);
    for (int i = 0; i < 500; ++i) {
        const Op a = rec.nextOp(i % 2);
        const Op b = reference.nextOp(i % 2);
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
        ASSERT_EQ(rec.nextFetchBlock(i % 2),
                  reference.nextFetchBlock(i % 2));
    }
    EXPECT_EQ(writer.recordsWritten(), 2u * 500u);
    std::remove(path.c_str());
}

TEST(Trace, RoundtripReplaysIdentically)
{
    const std::string path = tempTracePath("roundtrip");
    std::vector<Op> captured;
    std::vector<Addr> fetches;
    {
        SyntheticWorkload inner(tinyParams(), 1ull << 30);
        TraceWriter writer(path, 2);
        RecordingWorkload rec(inner, writer);
        for (int i = 0; i < 300; ++i) {
            captured.push_back(rec.nextOp(0));
            fetches.push_back(rec.nextFetchBlock(0));
        }
    }
    TraceWorkload replay(path);
    EXPECT_EQ(replay.numCores(), 2u);
    for (int i = 0; i < 300; ++i) {
        const Op op = replay.nextOp(0);
        ASSERT_EQ(op.addr, captured[i].addr);
        ASSERT_EQ(static_cast<int>(op.kind),
                  static_cast<int>(captured[i].kind));
        ASSERT_EQ(op.length, captured[i].length);
        ASSERT_EQ(replay.nextFetchBlock(0), fetches[i]);
    }
    std::remove(path.c_str());
}

TEST(Trace, ReplayLoopsWhenExhausted)
{
    const std::string path = tempTracePath("loop");
    Op first{};
    {
        SyntheticWorkload inner(tinyParams(), 1ull << 30);
        TraceWriter writer(path, 2);
        RecordingWorkload rec(inner, writer);
        first = rec.nextOp(0);
        (void)rec.nextFetchBlock(0);
        for (int i = 0; i < 9; ++i) {
            (void)rec.nextOp(0);
            (void)rec.nextFetchBlock(0);
        }
    }
    TraceWorkload replay(path);
    for (int i = 0; i < 10; ++i)
        (void)replay.nextOp(0);
    // The 11th op wraps to the beginning.
    const Op wrapped = replay.nextOp(0);
    EXPECT_EQ(wrapped.addr, first.addr);
    std::remove(path.c_str());
}

TEST(TraceDeathTest, WriterRejectsCoreBeyond16Bits)
{
    // The on-disk record stores the core id in 16 bits; a wider id
    // must be diagnosed instead of silently wrapped onto another core.
    const std::string path = tempTracePath("widecore");
    TraceWriter writer(path, 2);
    TraceRecord rec;
    rec.type = TraceRecord::Type::Op;
    rec.core = 0x1'0000u;
    EXPECT_EXIT(writer.record(rec), ::testing::ExitedWithCode(1),
                "16-bit core field");
    // The boundary value still fits.
    rec.core = 0xFFFFu;
    writer.record(rec);
    EXPECT_EQ(writer.recordsWritten(), 1u);
    std::remove(path.c_str());
}

TEST(TraceDeathTest, LoaderDiagnosesTruncatedTrailingRecord)
{
    // A capture killed mid-write leaves a partial final record; the
    // loader must refuse it loudly, not silently drop the tail.
    const std::string path = tempTracePath("truncated");
    {
        SyntheticWorkload inner(tinyParams(), 1ull << 30);
        TraceWriter writer(path, 2);
        RecordingWorkload rec(inner, writer);
        for (int i = 0; i < 4; ++i) {
            (void)rec.nextOp(i % 2);
            (void)rec.nextFetchBlock(i % 2);
        }
    }
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const char partial[7] = {0, 1, 2, 3, 4, 5, 6};
        ASSERT_EQ(std::fwrite(partial, 1, sizeof(partial), f),
                  sizeof(partial));
        std::fclose(f);
    }
    EXPECT_EXIT(TraceWorkload replay(path),
                ::testing::ExitedWithCode(1), "ends mid-record");
    std::remove(path.c_str());
}

TEST(Trace, IntactFileStillLoadsAfterTruncationCheck)
{
    const std::string path = tempTracePath("intact");
    std::uint64_t written = 0;
    {
        SyntheticWorkload inner(tinyParams(), 1ull << 30);
        TraceWriter writer(path, 2);
        RecordingWorkload rec(inner, writer);
        for (int i = 0; i < 6; ++i) {
            (void)rec.nextOp(i % 2);
            (void)rec.nextFetchBlock(i % 2);
        }
        written = writer.recordsWritten();
    }
    TraceWorkload replay(path);
    EXPECT_EQ(replay.numRecords(), written);
    std::remove(path.c_str());
}

TEST(Trace, PerCoreStreamsIndependent)
{
    const std::string path = tempTracePath("percore");
    std::vector<Op> core1;
    {
        SyntheticWorkload inner(tinyParams(), 1ull << 30);
        TraceWriter writer(path, 2);
        RecordingWorkload rec(inner, writer);
        for (int i = 0; i < 50; ++i) {
            (void)rec.nextOp(0);
            core1.push_back(rec.nextOp(1));
            (void)rec.nextFetchBlock(0);
            (void)rec.nextFetchBlock(1);
        }
    }
    TraceWorkload replay(path);
    // Reading core 1 alone reproduces its sub-stream.
    for (int i = 0; i < 50; ++i)
        ASSERT_EQ(replay.nextOp(1).addr, core1[i].addr);
    std::remove(path.c_str());
}
