/**
 * @file
 * Exhaustive timing-distance property test: for every command pair x
 * {same bank, same group, different group, different rank} relation,
 * the minimum legal distance between the two commands must equal a
 * table computed directly from DramTimings — independently, in this
 * file — for BOTH protocol models: the TimingChecker (scanned densely
 * with a fresh replayed checker per probe) and the Channel's fast-path
 * legality (canIssue scan plus the nextLegalAt event hint). Any drift
 * between the checker, the channel, and the JEDEC arithmetic shows up
 * as an off-by-N here, on every registered timing set including the
 * bank-group devices (DDR4/DDR5) and the per-bank-refresh one
 * (LPDDR3).
 *
 * The only intentional model asymmetry: the channel charges the tCS
 * rank-switch penalty on the shared data bus, the checker does not
 * (it is deliberately the more permissive referee), so cross-rank CAS
 * pairs carry separate expected values per model.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "dram/devices.hh"
#include "dram/timing_checker.hh"

using namespace mcsim;

namespace {

enum class Rel { SameBank, SameGroup, DiffGroup, DiffRank };

const char *
relName(Rel r)
{
    switch (r) {
      case Rel::SameBank: return "SameBank";
      case Rel::SameGroup: return "SameGroup";
      case Rel::DiffGroup: return "DiffGroup";
      case Rel::DiffRank: return "DiffRank";
    }
    return "?";
}

using CT = DramCommandType;

/** One (prev, next, relation) probe. */
struct Scenario
{
    CT prev;
    CT next;
    Rel rel;
};

/** The pairs whose minimum distance the DramTimings table defines
 *  (excluding refresh, handled by explicit scenarios below). */
std::vector<Scenario>
allScenarios(bool hasGroups)
{
    std::vector<Scenario> out;
    const auto add = [&out, hasGroups](CT p, CT n,
                                       std::initializer_list<Rel> rels) {
        for (Rel r : rels) {
            if (r == Rel::DiffGroup && !hasGroups)
                continue; // Single-group device: no other group.
            out.push_back({p, n, r});
        }
    };
    const auto others = {Rel::SameGroup, Rel::DiffGroup, Rel::DiffRank};
    const auto all = {Rel::SameBank, Rel::SameGroup, Rel::DiffGroup,
                      Rel::DiffRank};
    add(CT::Activate, CT::Activate, others); // Same bank: bank is open.
    add(CT::Activate, CT::Read, all);
    add(CT::Activate, CT::Write, all);
    add(CT::Activate, CT::Precharge, all);
    add(CT::Read, CT::Read, all);
    add(CT::Read, CT::Write, all);
    add(CT::Read, CT::Precharge, all);
    add(CT::Read, CT::Activate, others);
    add(CT::Write, CT::Read, all);
    add(CT::Write, CT::Write, all);
    add(CT::Write, CT::Precharge, all);
    add(CT::Write, CT::Activate, others);
    add(CT::Precharge, CT::Activate, all);
    add(CT::Precharge, CT::Read, others); // Same bank: it just closed.
    add(CT::Precharge, CT::Write, others);
    return out;
}

/**
 * Minimum legal distance (DRAM cycles) from the timing table alone.
 * @p withTcs selects the channel model (tCS on cross-rank data-bus
 * handoffs); the checker omits it.
 */
std::int64_t
expectedCycles(const Scenario &s, const DramTimings &tm, bool withTcs)
{
    const bool sameRank = s.rel != Rel::DiffRank;
    const bool sameGroup =
        s.rel == Rel::SameBank || s.rel == Rel::SameGroup;
    const bool sameBank = s.rel == Rel::SameBank;
    const std::int64_t tcs =
        (s.rel == Rel::DiffRank && withTcs) ? tm.tCS : 0;

    std::int64_t e = 1; // Command bus: one command per tCK.
    const auto atLeast = [&e](std::int64_t v) {
        if (v > e)
            e = v;
    };
    const bool prevCas = s.prev == CT::Read || s.prev == CT::Write;
    const bool nextCas = s.next == CT::Read || s.next == CT::Write;

    if (prevCas && nextCas) {
        // tCCD_S channel-wide, tCCD_L within a rank's bank group.
        atLeast(sameRank && sameGroup ? tm.tCCDL : tm.tCCD);
        // Data-bus occupancy: the previous burst must have drained.
        const std::int64_t prevLead =
            s.prev == CT::Read ? tm.tCAS : tm.tCWL;
        const std::int64_t nextLead =
            s.next == CT::Read ? tm.tCAS : tm.tCWL;
        atLeast(prevLead + tm.tBURST + tcs - nextLead);
        // Read-to-write bus turnaround.
        if (s.prev == CT::Read && s.next == CT::Write)
            atLeast(tm.tRTW);
        // Write-to-read turnaround inside the rank.
        if (s.prev == CT::Write && s.next == CT::Read && sameRank) {
            atLeast(tm.tCWL + tm.tBURST +
                    (sameGroup ? tm.tWTRL : tm.tWTR));
        }
    }
    if (s.prev == CT::Activate && s.next == CT::Activate && sameRank)
        atLeast(sameGroup ? tm.tRRDL : tm.tRRD);
    if (s.prev == CT::Activate && nextCas && sameBank)
        atLeast(tm.tRCD);
    if (s.prev == CT::Activate && s.next == CT::Precharge && sameBank)
        atLeast(tm.tRAS);
    if (s.prev == CT::Read && s.next == CT::Precharge && sameBank)
        atLeast(tm.tRTP);
    if (s.prev == CT::Write && s.next == CT::Precharge && sameBank)
        atLeast(tm.tCWL + tm.tBURST + tm.tWR);
    if (s.prev == CT::Precharge && s.next == CT::Activate && sameBank)
        atLeast(tm.tRP);
    return e;
}

/** Fixture: builds the prefix that leaves exactly the banks the pair
 *  needs open, issues @p prev at a fixed tick, then scans both models
 *  for the first legal tick of @p next. */
class DistanceProbe
{
  public:
    DistanceProbe(const DramDevice &dev)
        : geom_(dev.geometry), tm_(dev.timings),
          clk_(ClockDomains::fromMhz(2000, dev.busMhz))
    {
        geom_.channels = 1;
    }

    TickSpan cyc(std::uint64_t c) const { return clk_.dramToTicks(c); }

    static DramCommand
    make(CT type, const DramCoord &c)
    {
        switch (type) {
          case CT::Activate: return DramCommand::activate(c);
          case CT::Read: return DramCommand::read(c);
          case CT::Write: return DramCommand::write(c);
          case CT::Precharge:
            return DramCommand::precharge(c.rank, c.bank);
          case CT::Refresh: return DramCommand::refreshBank(c.rank, c.bank);
        }
        return DramCommand::activate(c);
    }

    /** Run one scenario; every EXPECT names it via SCOPED_TRACE. */
    void
    run(const Scenario &s)
    {
        SCOPED_TRACE(std::string(dramCommandName(s.prev)) + "->" +
                     dramCommandName(s.next) + " " + relName(s.rel));
        DramCoord prevC;
        prevC.rank = 0;
        prevC.bank = 0;
        prevC.row = 1;
        DramCoord nextC = prevC;
        switch (s.rel) {
          case Rel::SameBank:
            break;
          case Rel::SameGroup:
            nextC.bank = 1; // Every device has >= 2 banks per group.
            break;
          case Rel::DiffGroup:
            nextC.bank = geom_.banksPerGroup(); // First bank, group 1.
            break;
          case Rel::DiffRank:
            nextC.rank = 1;
            break;
        }

        // Prefix: open whichever banks the pair needs, 1000 cycles
        // apart so no prefix constraint reaches the probe window.
        std::vector<std::pair<DramCommand, Tick>> cmds;
        Tick t{};
        const auto prep = [&](const DramCoord &c) {
            cmds.push_back({DramCommand::activate(c), t});
            t += cyc(1000);
        };
        const bool prevNeedsOpen = s.prev != CT::Activate;
        const bool nextNeedsOpen = s.next == CT::Read ||
                                   s.next == CT::Write ||
                                   s.next == CT::Precharge;
        if (prevNeedsOpen)
            prep(prevC);
        if (nextNeedsOpen && s.rel != Rel::SameBank)
            prep(nextC);
        const Tick t0 = Tick{} + cyc(10'000);
        cmds.push_back({make(s.prev, prevC), t0});
        const DramCommand next = make(s.next, nextC);

        probe(cmds, next, t0, expectedCycles(s, tm_, true),
              expectedCycles(s, tm_, false));
    }

    /** Refresh scenarios (all-bank and per-bank), built explicitly. */
    void
    probeRefresh()
    {
        DramCoord b0;
        b0.rank = 0;
        b0.bank = 0;
        b0.row = 1;
        DramCoord b1 = b0;
        b1.bank = 1;
        DramCoord r1 = b0;
        r1.rank = 1;
        const Tick t0 = Tick{} + cyc(10'000);
        if (tm_.perBankRefresh) {
            {
                SCOPED_TRACE("PRE->REFpb SameBank");
                probe({{DramCommand::activate(b0), Tick{}},
                       {DramCommand::precharge(0, 0), t0}},
                      DramCommand::refreshBank(0, 0), t0, tm_.tRP,
                      tm_.tRP);
            }
            {
                SCOPED_TRACE("PRE->REFpb DiffBank");
                probe({{DramCommand::activate(b0), Tick{}},
                       {DramCommand::precharge(0, 0), t0}},
                      DramCommand::refreshBank(0, 1), t0, 1, 1);
            }
            {
                SCOPED_TRACE("REFpb->ACT SameBank");
                probe({{DramCommand::refreshBank(0, 0), t0}},
                      DramCommand::activate(b0), t0, tm_.tRFCpb,
                      tm_.tRFCpb);
            }
            {
                SCOPED_TRACE("REFpb->ACT DiffBank stays schedulable");
                probe({{DramCommand::refreshBank(0, 0), t0}},
                      DramCommand::activate(b1), t0, 1, 1);
            }
            {
                SCOPED_TRACE("REFpb->REFpb DiffBank");
                probe({{DramCommand::refreshBank(0, 0), t0}},
                      DramCommand::refreshBank(0, 1), t0, 1, 1);
            }
        } else {
            {
                SCOPED_TRACE("PRE->REF SameRank");
                probe({{DramCommand::activate(b0), Tick{}},
                       {DramCommand::precharge(0, 0), t0}},
                      DramCommand::refresh(0), t0, tm_.tRP, tm_.tRP);
            }
            {
                SCOPED_TRACE("REF->ACT SameRank");
                probe({{DramCommand::refresh(0), t0}},
                      DramCommand::activate(b0), t0, tm_.tRFC,
                      tm_.tRFC);
            }
            {
                SCOPED_TRACE("REF->ACT DiffRank");
                probe({{DramCommand::refresh(0), t0}},
                      DramCommand::activate(r1), t0, 1, 1);
            }
        }
    }

  private:
    /**
     * Replay @p cmds, then assert @p next first becomes legal exactly
     * @p expChan cycles after @p t0 on the channel (dense canIssue
     * scan + the nextLegalAt report) and exactly @p expChk cycles on a
     * fresh checker per probed distance.
     */
    void
    probe(const std::vector<std::pair<DramCommand, Tick>> &cmds,
          const DramCommand &next, Tick t0, std::int64_t expChan,
          std::int64_t expChk)
    {
        Channel chan(geom_, tm_, /*enableRefresh=*/false, clk_);
        for (const auto &[cmd, at] : cmds) {
            ASSERT_TRUE(chan.canIssue(cmd, at))
                << "prefix " << dramCommandName(cmd.type) << " at "
                << at;
            chan.issue(cmd, at);
        }
        for (std::int64_t d = 0; d < expChan; ++d) {
            EXPECT_FALSE(chan.canIssue(next, t0 + cyc(d)))
                << "channel legal " << (expChan - d)
                << " cycles early (at distance " << d << ")";
        }
        EXPECT_TRUE(chan.canIssue(next, t0 + cyc(expChan)))
            << "channel still illegal at expected distance " << expChan;
        EXPECT_EQ(chan.nextLegalAt(next, t0), t0 + cyc(expChan))
            << "nextLegalAt disagrees with the distance table";

        for (std::int64_t d = 0; d <= expChk; ++d) {
            TimingChecker chk(geom_, tm_, clk_);
            for (const auto &[cmd, at] : cmds)
                ASSERT_EQ(chk.check(cmd, at), "");
            const std::string err = chk.check(next, t0 + cyc(d));
            if (d < expChk) {
                EXPECT_FALSE(err.empty())
                    << "checker accepted at distance " << d
                    << ", expected minimum " << expChk;
            } else {
                EXPECT_EQ(err, "")
                    << "checker still rejects at expected distance "
                    << expChk;
            }
        }
    }

    DramGeometry geom_;
    DramTimings tm_;
    ClockDomains clk_;
};

} // namespace

class TimingDistanceTable : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TimingDistanceTable, MinimumDistancesMatchDramTimings)
{
    const DramDevice &dev = dramDeviceOrDie(GetParam());
    DistanceProbe probe(dev);
    for (const Scenario &s :
         allScenarios(dev.geometry.bankGroupsPerRank > 1)) {
        probe.run(s);
    }
    probe.probeRefresh();
}

INSTANTIATE_TEST_SUITE_P(AllTimingModels, TimingDistanceTable,
                         ::testing::Values("DDR3-1600", "DDR4-2400",
                                           "DDR5-4800", "LPDDR3-1600"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return name;
                         });

/** The split timings must actually split: on a bank-group device the
 *  same-group CAS distance exceeds the cross-group one. */
TEST(TimingDistanceTable, GroupedDevicesSeparateShortAndLong)
{
    for (const char *name : {"DDR4-2400", "DDR5-4800"}) {
        const DramTimings &tm = dramDeviceOrDie(name).timings;
        Scenario sameGrp{CT::Read, CT::Read, Rel::SameGroup};
        Scenario diffGrp{CT::Read, CT::Read, Rel::DiffGroup};
        EXPECT_GT(expectedCycles(sameGrp, tm, false),
                  expectedCycles(diffGrp, tm, false))
            << name << ": tCCD_L does not bind";
    }
}
