/**
 * @file
 * Logging and error-exit tests. panic/fatal paths use gtest death
 * tests: the error channels that guard every timing-model invariant
 * must themselves be known to fire.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

using namespace mcsim;

TEST(Log, ConcatStreamsAllParts)
{
    EXPECT_EQ(log_detail::concat("a", 1, '-', 2.5), "a1-2.5");
    EXPECT_EQ(log_detail::concat(), "");
    EXPECT_EQ(log_detail::concat(42), "42");
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(mc_panic("broken invariant ", 7), "broken invariant 7");
}

TEST(LogDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(mc_fatal("bad config ", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(LogDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(mc_assert(1 == 2, "math still works"),
                 "assertion failed.*math still works");
}

TEST(LogDeathTest, AssertPassesOnTrue)
{
    mc_assert(2 + 2 == 4, "unreachable");
    SUCCEED();
}

TEST(LogDeathTest, AssertMessageNamesCondition)
{
    EXPECT_DEATH(mc_assert(false), "assertion failed: false");
}

TEST(Log, WarnAndInformDoNotTerminate)
{
    mc_warn("just a warning ", 1);
    mc_inform("status ", 2);
    SUCCEED();
}
