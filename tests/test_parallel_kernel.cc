/**
 * @file
 * The epoch-sharded parallel kernel's contracts, directly:
 *
 *  - bit-identical metrics, end ticks and DRAM command traces against
 *    the serial event kernel across thread counts, channel counts and
 *    devices (the fuzzer covers the random cross product; these are
 *    the deliberate corners);
 *  - chunked advance()s — which cross the parallel prologue/epilogue
 *    handoff repeatedly — equal one uninterrupted run;
 *  - the documented serial fallback for IO/DMA-enabled workloads;
 *  - ExperimentRunner::planThreadSplit's budget arithmetic;
 *  - WorkerPool / SpinBarrier primitives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/worker_pool.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

struct TraceEntry
{
    std::uint32_t channel;
    DramCommandType type;
    std::uint32_t rank, bank;
    std::uint64_t row;
    std::uint32_t column;
    Tick tick;

    bool
    operator==(const TraceEntry &o) const
    {
        return channel == o.channel && type == o.type && rank == o.rank &&
               bank == o.bank && row == o.row && column == o.column &&
               tick == o.tick;
    }
};

struct RunResult
{
    MetricSet metrics;
    Tick endTick{};
    std::vector<TraceEntry> trace;
};

/** Baseline-ish config kept small enough for many differential runs. */
SimConfig
testConfig(std::uint32_t channels, std::uint32_t kernelThreads)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.dram.channels = channels;
    cfg.kernelThreads = kernelThreads;
    cfg.warmupCoreCycles = 10'000;
    cfg.measureCoreCycles = 40'000;
    return cfg;
}

/** Hook every channel, run, and return the canonical merged trace. */
RunResult
runSystem(const SimConfig &cfg, WorkloadId wl)
{
    System sys(cfg, workloadPreset(wl));
    RunResult r;
    std::vector<std::vector<TraceEntry>> perCh(sys.numControllers());
    for (std::uint32_t ch = 0; ch < sys.numControllers(); ++ch) {
        sys.controller(ch).channel().setCommandHook(
            [&perCh, ch](const DramCommand &cmd, Tick now) {
                perCh[ch].push_back({ch, cmd.type, cmd.rank, cmd.bank,
                                     cmd.row, cmd.column, now});
            });
    }
    r.metrics = sys.run();
    r.endTick = sys.now();
    for (const auto &v : perCh)
        r.trace.insert(r.trace.end(), v.begin(), v.end());
    std::stable_sort(r.trace.begin(), r.trace.end(),
                     [](const TraceEntry &a, const TraceEntry &b) {
                         return a.tick != b.tick ? a.tick < b.tick
                                                 : a.channel < b.channel;
                     });
    return r;
}

void
expectRunsIdentical(const RunResult &par, const RunResult &ser)
{
    EXPECT_EQ(par.endTick, ser.endTick);
    EXPECT_EQ(par.metrics.userIpc, ser.metrics.userIpc);
    EXPECT_EQ(par.metrics.avgReadLatency, ser.metrics.avgReadLatency);
    EXPECT_EQ(par.metrics.readLatencyP99, ser.metrics.readLatencyP99);
    EXPECT_EQ(par.metrics.rowHitRatePct, ser.metrics.rowHitRatePct);
    EXPECT_EQ(par.metrics.avgReadQueue, ser.metrics.avgReadQueue);
    EXPECT_EQ(par.metrics.avgWriteQueue, ser.metrics.avgWriteQueue);
    EXPECT_EQ(par.metrics.bwUtilPct, ser.metrics.bwUtilPct);
    EXPECT_EQ(par.metrics.dramEnergyNj, ser.metrics.dramEnergyNj);
    EXPECT_EQ(par.metrics.committedInstructions,
              ser.metrics.committedInstructions);
    EXPECT_EQ(par.metrics.memReads, ser.metrics.memReads);
    EXPECT_EQ(par.metrics.memWrites, ser.metrics.memWrites);
    ASSERT_EQ(par.metrics.perCoreIpc.size(), ser.metrics.perCoreIpc.size());
    for (std::size_t i = 0; i < par.metrics.perCoreIpc.size(); ++i)
        EXPECT_EQ(par.metrics.perCoreIpc[i], ser.metrics.perCoreIpc[i]);
    ASSERT_EQ(par.trace.size(), ser.trace.size());
    for (std::size_t i = 0; i < par.trace.size(); ++i)
        ASSERT_TRUE(par.trace[i] == ser.trace[i]) << "command " << i;
    EXPECT_FALSE(ser.trace.empty());
}

} // namespace

TEST(ParallelKernel, BitIdenticalAcrossThreadAndChannelCounts)
{
    // WS is the IO-free preset: the one that actually runs sharded.
    for (const std::uint32_t channels : {1u, 2u, 4u}) {
        const RunResult ser =
            runSystem(testConfig(channels, 1), WorkloadId::WS);
        for (const std::uint32_t threads : {2u, 3u, 5u, 8u}) {
            SCOPED_TRACE("channels=" + std::to_string(channels) +
                         " kernel_threads=" + std::to_string(threads));
            const RunResult par =
                runSystem(testConfig(channels, threads), WorkloadId::WS);
            expectRunsIdentical(par, ser);
        }
    }
}

TEST(ParallelKernel, BitIdenticalOnBankGroupedDevice)
{
    SimConfig serCfg = testConfig(2, 1);
    serCfg.applyDevice(*findDramDevice("DDR4-2400"));
    SimConfig parCfg = serCfg;
    parCfg.kernelThreads = 4;
    const RunResult ser = runSystem(serCfg, WorkloadId::WS);
    const RunResult par = runSystem(parCfg, WorkloadId::WS);
    expectRunsIdentical(par, ser);
}

TEST(ParallelKernel, ChunkedAdvanceMatchesSingleRun)
{
    // Ragged chunk sizes cross the prologue/epilogue handoff with
    // traffic in flight in both crossbar directions; the parallel
    // kernel must hand it back exactly where the serial kernel would
    // have left it.
    const SimConfig cfg = testConfig(2, 4);
    System one(cfg, workloadPreset(WorkloadId::WS));
    one.advance(30'000);

    System chunked(cfg, workloadPreset(WorkloadId::WS));
    for (const std::uint64_t c : {7'001ull, 1ull, 12'345ull, 3ull,
                                  9'999ull, 651ull}) {
        chunked.advance(c);
    }
    ASSERT_EQ(one.now(), chunked.now());
    const MetricSet a = one.collect();
    const MetricSet b = chunked.collect();
    EXPECT_EQ(a.userIpc, b.userIpc);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWrites, b.memWrites);
    EXPECT_EQ(a.avgReadLatency, b.avgReadLatency);
    EXPECT_EQ(a.committedInstructions, b.committedInstructions);
}

TEST(ParallelKernel, IoWorkloadFallsBackToSerialAndStaysIdentical)
{
    // DS carries a DMA engine; kernelThreads > 1 must quietly run the
    // serial kernel (zero-latency IO coupling admits no lookahead).
    const RunResult ser = runSystem(testConfig(2, 1), WorkloadId::DS);
    const RunResult par = runSystem(testConfig(2, 7), WorkloadId::DS);
    expectRunsIdentical(par, ser);
}

TEST(ThreadSplit, SweepLevelWinsWhenJobsFillTheBudget)
{
    const auto s = ExperimentRunner::planThreadSplit(16, 4);
    EXPECT_EQ(s.sweepWorkers, 4u);
    EXPECT_EQ(s.shardThreads, 1u);
    const auto exact = ExperimentRunner::planThreadSplit(4, 4);
    EXPECT_EQ(exact.sweepWorkers, 4u);
    EXPECT_EQ(exact.shardThreads, 1u);
}

TEST(ThreadSplit, LoneBigPointGetsTheWholeBudgetAsShards)
{
    const auto s = ExperimentRunner::planThreadSplit(1, 8);
    EXPECT_EQ(s.sweepWorkers, 1u);
    EXPECT_EQ(s.shardThreads, 8u);
}

TEST(ThreadSplit, FewPointsShareTheLeftoverBudget)
{
    const auto s = ExperimentRunner::planThreadSplit(3, 8);
    EXPECT_EQ(s.sweepWorkers, 3u);
    EXPECT_EQ(s.shardThreads, 2u);
    EXPECT_LE(s.sweepWorkers * s.shardThreads, 8u);
}

TEST(ThreadSplit, DegenerateBudgets)
{
    const auto none = ExperimentRunner::planThreadSplit(0, 8);
    EXPECT_EQ(none.sweepWorkers, 1u);
    EXPECT_EQ(none.shardThreads, 1u);
    const auto serial = ExperimentRunner::planThreadSplit(10, 1);
    EXPECT_EQ(serial.sweepWorkers, 1u);
    EXPECT_EQ(serial.shardThreads, 1u);
}

TEST(WorkerPool, RunsEveryPartyExactlyOnceWithCallerAsZero)
{
    WorkerPool pool(3);
    EXPECT_EQ(pool.workers(), 3u);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::atomic<int>> hits(4);
        for (auto &h : hits)
            h.store(0);
        pool.run(4, [&](unsigned shard) {
            hits[shard].fetch_add(1, std::memory_order_relaxed);
        });
        for (unsigned s = 0; s < 4; ++s)
            EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
    }
    // Fewer parties than workers: the extras must stay asleep.
    std::atomic<int> count{0};
    pool.run(2, [&](unsigned) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 2);
    pool.run(1, [&](unsigned) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3);
}

TEST(SpinBarrier, OrdersEpochsAcrossParties)
{
    constexpr unsigned kParties = 3;
    constexpr int kEpochs = 200;
    WorkerPool pool(kParties - 1);
    SpinBarrier barrier(kParties);
    // Each party increments its slot once per epoch and checks, right
    // after the crossing, that every other party finished the epoch —
    // the exact publish/consume edge the kernel's staging relies on.
    std::vector<int> progress(kParties, 0);
    std::atomic<bool> torn{false};
    pool.run(kParties, [&](unsigned shard) {
        for (int e = 0; e < kEpochs; ++e) {
            progress[shard] = e + 1;
            barrier.arriveAndWait();
            for (unsigned p = 0; p < kParties; ++p) {
                if (progress[p] < e + 1)
                    torn.store(true, std::memory_order_relaxed);
            }
            barrier.arriveAndWait();
        }
    });
    EXPECT_FALSE(torn.load());
    for (unsigned p = 0; p < kParties; ++p)
        EXPECT_EQ(progress[p], kEpochs);
}
