/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * Every stochastic component in the simulator draws from its own
 * seeded Pcg32 stream so that simulations are bit-reproducible for a
 * given seed regardless of configuration changes elsewhere.
 */

#ifndef CLOUDMC_COMMON_RANDOM_HH
#define CLOUDMC_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "log.hh"

namespace mcsim {

/**
 * PCG32 (XSH-RR variant) pseudo-random generator. Small state, good
 * statistical quality, and fully deterministic across platforms.
 */
class Pcg32
{
  public:
    /** Construct from a seed and an optional stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        reseed(seed, stream);
    }

    /** Re-initialize the generator state. */
    void
    reseed(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1u;
        nextU32();
        state_ += seed;
        nextU32();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    nextU32()
    {
        const std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        const auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        const auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    nextU64()
    {
        return (static_cast<std::uint64_t>(nextU32()) << 32) | nextU32();
    }

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        mc_assert(bound > 0, "below() requires a positive bound");
        std::uint64_t m = std::uint64_t{nextU32()} * bound;
        auto lo = static_cast<std::uint32_t>(m);
        if (lo < bound) {
            const std::uint32_t threshold = -bound % bound;
            while (lo < threshold) {
                m = std::uint64_t{nextU32()} * bound;
                lo = static_cast<std::uint32_t>(m);
            }
        }
        return static_cast<std::uint32_t>(m >> 32);
    }

    /** Uniform 64-bit integer in [0, bound). */
    std::uint64_t
    below64(std::uint64_t bound)
    {
        mc_assert(bound > 0, "below64() requires a positive bound");
        if (bound <= 0xFFFFFFFFull)
            return below(static_cast<std::uint32_t>(bound));
        // Rejection sampling over the smallest covering power of two.
        const int shift = 64 - __builtin_clzll(bound - 1);
        const std::uint64_t mask =
            shift >= 64 ? ~0ull : ((1ull << shift) - 1);
        std::uint64_t v;
        do {
            v = nextU64() & mask;
        } while (v >= bound);
        return v;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (nextU64() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return nextDouble() < p; }

  private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
};

/**
 * Zipfian sampler over [0, n) with skew parameter theta, using the
 * Gray et al. computation popularized by YCSB. Item 0 is the hottest.
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n     Number of items (must be >= 1).
     * @param theta Skew in [0, 1); 0.99 is the YCSB default. Larger is
     *              more skewed. theta == 0 degenerates to uniform.
     */
    ZipfianGenerator(std::uint64_t n, double theta);

    /** Draw one item index in [0, n). */
    std::uint64_t sample(Pcg32 &rng) const;

    std::uint64_t numItems() const { return n_; }
    double theta() const { return theta_; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double halfPowTheta_; ///< pow(0.5, theta), hoisted out of sample().
};

} // namespace mcsim

#endif // CLOUDMC_COMMON_RANDOM_HH
