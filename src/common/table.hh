/**
 * @file
 * Minimal ASCII table printer used by the benchmark harness to emit
 * paper-style result rows, with an optional CSV sink.
 */

#ifndef CLOUDMC_COMMON_TABLE_HH
#define CLOUDMC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace mcsim {

/** Accumulates rows of strings and renders them column-aligned. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; ragged rows are padded when rendering. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns; header separated by dashes. */
    std::string render() const;

    /** Render as CSV (no alignment padding). */
    std::string renderCsv() const;

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 3);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mcsim

#endif // CLOUDMC_COMMON_TABLE_HH
