#include "random.hh"

#include <algorithm>

namespace mcsim {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    mc_assert(n >= 1, "Zipfian needs at least one item");
    mc_assert(theta >= 0.0 && theta < 1.0,
              "Zipfian theta must be in [0,1), got ", theta);
    halfPowTheta_ = std::pow(0.5, theta_);
    if (theta_ == 0.0) {
        alpha_ = zetan_ = eta_ = 0.0;
        return;
    }
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(std::min<std::uint64_t>(n_, 2), theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    // Exact summation is O(n); cap the exact prefix and integrate the
    // tail, which is accurate to well under 0.1% for the sizes we use.
    constexpr std::uint64_t kExactPrefix = 1u << 20;
    double sum = 0.0;
    const std::uint64_t exact = std::min(n, kExactPrefix);
    for (std::uint64_t i = 1; i <= exact; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    if (n > exact) {
        // Integral of x^-theta from exact to n.
        const double a = static_cast<double>(exact);
        const double b = static_cast<double>(n);
        sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
               (1.0 - theta);
    }
    return sum;
}

std::uint64_t
ZipfianGenerator::sample(Pcg32 &rng) const
{
    if (n_ == 1)
        return 0;
    if (theta_ == 0.0)
        return rng.below64(n_);
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + halfPowTheta_)
        return 1;
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return std::min(idx, n_ - 1);
}

} // namespace mcsim
