#include "log.hh"

#include <cstdio>

namespace mcsim {
namespace log_detail {

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

void
panicExit(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "[panic] %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalExit(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "[fatal] %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

} // namespace log_detail
} // namespace mcsim
