/**
 * @file
 * Fundamental simulation types and clock-domain constants.
 *
 * The simulator runs on a single global tick clock. One tick is 250 ps,
 * which is the greatest common period of the 2 GHz core clock (500 ps,
 * 2 ticks) and the 800 MHz DDR3-1600 command clock (1250 ps, 5 ticks).
 * Keeping both domains on an integer tick grid avoids any rounding in
 * cross-domain timing arithmetic.
 */

#ifndef CLOUDMC_COMMON_TYPES_HH
#define CLOUDMC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace mcsim {

/** Global simulation time unit: 1 tick = 250 ps. */
using Tick = std::uint64_t;

/** Physical byte address. */
using Addr = std::uint64_t;

/** Core (hardware thread) identifier. */
using CoreId = std::uint32_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Ticks per 2 GHz core cycle. */
constexpr Tick kTicksPerCoreCycle = 2;

/** Ticks per 800 MHz DRAM command-bus cycle (DDR3-1600). */
constexpr Tick kTicksPerDramCycle = 5;

/** Convert a count of core cycles to ticks. */
constexpr Tick
coreCyclesToTicks(std::uint64_t cycles)
{
    return cycles * kTicksPerCoreCycle;
}

/** Convert a count of DRAM cycles to ticks. */
constexpr Tick
dramCyclesToTicks(std::uint64_t cycles)
{
    return cycles * kTicksPerDramCycle;
}

/** Convert ticks to whole core cycles (rounds down). */
constexpr std::uint64_t
ticksToCoreCycles(Tick t)
{
    return t / kTicksPerCoreCycle;
}

/** Convert ticks to whole DRAM cycles (rounds down). */
constexpr std::uint64_t
ticksToDramCycles(Tick t)
{
    return t / kTicksPerDramCycle;
}

/** Sentinel core id used for non-core requesters (DMA/IO engines). */
constexpr CoreId kIoCoreId = 0xFFFFu;

} // namespace mcsim

#endif // CLOUDMC_COMMON_TYPES_HH
