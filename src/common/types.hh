/**
 * @file
 * Fundamental simulation types and the runtime clock-domain model.
 *
 * The simulator runs on a single global tick clock shared by two
 * domains: the core clock and the DRAM command-bus clock. One tick is
 * the greatest common period of the two configured frequencies, so
 * both domains sit on an integer tick grid and cross-domain timing
 * arithmetic never rounds. The tick length is therefore *derived* at
 * runtime from the configured frequencies (a ClockDomains value), not
 * a compile-time constant: the paper's Table 2 baseline (2 GHz cores,
 * DDR3-1600's 800 MHz command bus) yields a 250 ps tick with 2 ticks
 * per core cycle and 5 per DRAM cycle, while e.g. DDR4-2400 under the
 * same cores yields a 166.7 ps tick with ratios 3 and 5.
 */

#ifndef CLOUDMC_COMMON_TYPES_HH
#define CLOUDMC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <numeric>

namespace mcsim {

/** Global simulation time unit; the length is set by ClockDomains. */
using Tick = std::uint64_t;

/** Physical byte address. */
using Addr = std::uint64_t;

/** Core (hardware thread) identifier. */
using CoreId = std::uint32_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/**
 * The two clock domains and their shared tick grid.
 *
 * The tick frequency is LCM(coreMhz, dramMhz), so a core cycle spans
 * ticksPerCore ticks and a DRAM command cycle ticksPerDram ticks, both
 * exact integers. Every component converts between its own cycle
 * domain and ticks through the ClockDomains instance it was built
 * with; there is deliberately no global conversion function, so two
 * systems with different devices can coexist in one process (the
 * experiment harness runs them concurrently).
 */
struct ClockDomains
{
    std::uint32_t coreMhz = 2000; ///< Core / cache / crossbar clock.
    std::uint32_t dramMhz = 800;  ///< DRAM command-bus clock (tCK).
    Tick ticksPerCore = 2;        ///< Ticks per core cycle.
    Tick ticksPerDram = 5;        ///< Ticks per DRAM command cycle.

    /** Derive the tick grid for a (core, DRAM) frequency pair.
     *  Zero frequencies are clamped to 1 MHz (caller-validated). */
    static constexpr ClockDomains
    fromMhz(std::uint32_t core, std::uint32_t dram)
    {
        ClockDomains c;
        c.coreMhz = core ? core : 1;
        c.dramMhz = dram ? dram : 1;
        const std::uint64_t g = std::gcd<std::uint64_t, std::uint64_t>(
            c.coreMhz, c.dramMhz);
        c.ticksPerCore = c.dramMhz / g;
        c.ticksPerDram = c.coreMhz / g;
        return c;
    }

    /** Tick frequency in MHz: LCM of the two domain frequencies. */
    constexpr std::uint64_t
    tickMhz() const
    {
        return static_cast<std::uint64_t>(coreMhz) * ticksPerCore;
    }

    /** Wall-clock length of one tick, in nanoseconds. */
    constexpr double
    nsPerTick() const
    {
        return 1000.0 / static_cast<double>(tickMhz());
    }

    /** Wall-clock length of one DRAM command cycle, in nanoseconds.
     *  Defined as nsPerTick() * ticksPerDram so tick-based and
     *  cycle-based energy accounting stay mutually consistent. */
    constexpr double
    nsPerDramCycle() const
    {
        return nsPerTick() * static_cast<double>(ticksPerDram);
    }

    /** Convert a count of core cycles to ticks. */
    constexpr Tick
    coreToTicks(std::uint64_t cycles) const
    {
        return cycles * ticksPerCore;
    }

    /** Convert a count of DRAM cycles to ticks. */
    constexpr Tick
    dramToTicks(std::uint64_t cycles) const
    {
        return cycles * ticksPerDram;
    }

    /** Convert ticks to whole core cycles (rounds down). */
    constexpr std::uint64_t
    ticksToCore(Tick t) const
    {
        return t / ticksPerCore;
    }

    /** Convert ticks to whole DRAM cycles (rounds down). */
    constexpr std::uint64_t
    ticksToDram(Tick t) const
    {
        return t / ticksPerDram;
    }

    constexpr bool
    operator==(const ClockDomains &o) const
    {
        return coreMhz == o.coreMhz && dramMhz == o.dramMhz;
    }
    constexpr bool
    operator!=(const ClockDomains &o) const
    {
        return !(*this == o);
    }
};

/** The paper's Table 2 clocking: 2 GHz cores over DDR3-1600. */
inline constexpr ClockDomains kBaselineClocks{};

/** Sentinel core id used for non-core requesters (DMA/IO engines). */
constexpr CoreId kIoCoreId = 0xFFFFu;

} // namespace mcsim

#endif // CLOUDMC_COMMON_TYPES_HH
