/**
 * @file
 * Fundamental simulation types and the runtime clock-domain model.
 *
 * The simulator runs on a single global tick clock shared by two
 * domains: the core clock and the DRAM command-bus clock. One tick is
 * the greatest common period of the two configured frequencies, so
 * both domains sit on an integer tick grid and cross-domain timing
 * arithmetic never rounds. The tick length is therefore *derived* at
 * runtime from the configured frequencies (a ClockDomains value), not
 * a compile-time constant: the paper's Table 2 baseline (2 GHz cores,
 * DDR3-1600's 800 MHz command bus) yields a 250 ps tick with 2 ticks
 * per core cycle and 5 per DRAM cycle, while e.g. DDR4-2400 under the
 * same cores yields a 166.7 ps tick with ratios 3 and 5.
 *
 * Time is strongly typed. Each clock domain gets a phantom tag
 * (GlobalTick, CoreClock, DramClock) and two wrappers around
 * std::uint64_t:
 *
 *  - Instant<Domain>: an absolute point on that domain's clock
 *    (e.g. Tick = Instant<GlobalTick>, CoreCycle = Instant<CoreClock>).
 *  - Duration<Domain>: a span of that domain's clock
 *    (e.g. TickSpan, CoreCycles, DramCycles).
 *
 * Within a domain the usual affine arithmetic is allowed (instant -
 * instant = duration, instant +/- duration = instant, duration
 * arithmetic and scalar scaling). Mixing domains, adding two instants,
 * or implicitly converting to/from raw integers is a compile error;
 * the only way across domains is an explicit ClockDomains conversion
 * (coreToTicks / dramToTicks / ticksToCore / ticksToDram). The
 * wrappers are single-word, constexpr, and compile to the exact code
 * the raw integers did (see BENCH_kernel.json).
 */

#ifndef CLOUDMC_COMMON_TYPES_HH
#define CLOUDMC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <numeric>
#include <ostream>

namespace mcsim {

/** Phantom tag: the shared global tick grid. */
struct GlobalTick
{
};
/** Phantom tag: the core / cache / crossbar clock. */
struct CoreClock
{
};
/** Phantom tag: the DRAM command-bus clock (tCK). */
struct DramClock
{
};

/**
 * A span of time measured on @p Domain's clock. Supports additive
 * arithmetic and scalar scaling within the domain only; construction
 * from and extraction to raw integers is explicit (count()).
 */
template <class Domain> class Duration
{
  public:
    constexpr Duration() = default;
    constexpr explicit Duration(std::uint64_t v) : v_(v) {}

    /** The raw number of domain units; the only way back out. */
    constexpr std::uint64_t count() const { return v_; }

    static constexpr Duration
    max()
    {
        return Duration{std::numeric_limits<std::uint64_t>::max()};
    }

    constexpr Duration
    operator+(Duration o) const
    {
        return Duration{v_ + o.v_};
    }
    constexpr Duration
    operator-(Duration o) const
    {
        return Duration{v_ - o.v_};
    }
    constexpr Duration &
    operator+=(Duration o)
    {
        v_ += o.v_;
        return *this;
    }
    constexpr Duration &
    operator-=(Duration o)
    {
        v_ -= o.v_;
        return *this;
    }
    /** Scale by a unitless factor. */
    constexpr Duration
    operator*(std::uint64_t k) const
    {
        return Duration{v_ * k};
    }
    constexpr Duration
    operator/(std::uint64_t k) const
    {
        return Duration{v_ / k};
    }
    /** Ratio of two spans (unitless). */
    constexpr std::uint64_t
    operator/(Duration o) const
    {
        return v_ / o.v_;
    }
    constexpr Duration
    operator%(Duration o) const
    {
        return Duration{v_ % o.v_};
    }

    constexpr bool operator==(Duration o) const { return v_ == o.v_; }
    constexpr bool operator!=(Duration o) const { return v_ != o.v_; }
    constexpr bool operator<(Duration o) const { return v_ < o.v_; }
    constexpr bool operator<=(Duration o) const { return v_ <= o.v_; }
    constexpr bool operator>(Duration o) const { return v_ > o.v_; }
    constexpr bool operator>=(Duration o) const { return v_ >= o.v_; }

  private:
    std::uint64_t v_ = 0;
};

template <class Domain>
constexpr Duration<Domain>
operator*(std::uint64_t k, Duration<Domain> d)
{
    return d * k;
}

/**
 * An absolute point on @p Domain's clock. Affine: instants subtract
 * to a Duration and shift by one, but never add to each other.
 */
template <class Domain> class Instant
{
  public:
    constexpr Instant() = default;
    constexpr explicit Instant(std::uint64_t v) : v_(v) {}

    /** The raw tick/cycle index; the only way back out. */
    constexpr std::uint64_t count() const { return v_; }

    static constexpr Instant
    max()
    {
        return Instant{std::numeric_limits<std::uint64_t>::max()};
    }

    constexpr Duration<Domain>
    operator-(Instant o) const
    {
        return Duration<Domain>{v_ - o.v_};
    }
    constexpr Instant
    operator+(Duration<Domain> d) const
    {
        return Instant{v_ + d.count()};
    }
    constexpr Instant
    operator-(Duration<Domain> d) const
    {
        return Instant{v_ - d.count()};
    }
    constexpr Instant &
    operator+=(Duration<Domain> d)
    {
        v_ += d.count();
        return *this;
    }
    constexpr Instant &
    operator-=(Duration<Domain> d)
    {
        v_ -= d.count();
        return *this;
    }
    /** Phase within a repeating grid of period @p d. */
    constexpr Duration<Domain>
    operator%(Duration<Domain> d) const
    {
        return Duration<Domain>{v_ % d.count()};
    }

    constexpr bool operator==(Instant o) const { return v_ == o.v_; }
    constexpr bool operator!=(Instant o) const { return v_ != o.v_; }
    constexpr bool operator<(Instant o) const { return v_ < o.v_; }
    constexpr bool operator<=(Instant o) const { return v_ <= o.v_; }
    constexpr bool operator>(Instant o) const { return v_ > o.v_; }
    constexpr bool operator>=(Instant o) const { return v_ >= o.v_; }

  private:
    std::uint64_t v_ = 0;
};

template <class Domain>
inline std::ostream &
operator<<(std::ostream &os, Duration<Domain> d)
{
    return os << d.count();
}

template <class Domain>
inline std::ostream &
operator<<(std::ostream &os, Instant<Domain> i)
{
    return os << i.count();
}

/** Global simulation time point; the tick length is set by ClockDomains. */
using Tick = Instant<GlobalTick>;
/** A span of global ticks (latency, window, period). */
using TickSpan = Duration<GlobalTick>;
/** Absolute core-clock cycle index (e.g. System's core-cycle count). */
using CoreCycle = Instant<CoreClock>;
/** A span of core-clock cycles. */
using CoreCycles = Duration<CoreClock>;
/** Absolute DRAM command-bus cycle index. */
using DramCycle = Instant<DramClock>;
/** A span of DRAM command-bus cycles (JEDEC timing parameters). */
using DramCycles = Duration<DramClock>;

/** Physical byte address. */
using Addr = std::uint64_t;

/** Core (hardware thread) identifier. */
using CoreId = std::uint32_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick kMaxTick = Tick::max();
/** Sentinel span for "unbounded distance" (timing-checker gaps). */
constexpr TickSpan kMaxTickSpan = TickSpan::max();

/**
 * The two clock domains and their shared tick grid.
 *
 * The tick frequency is LCM(coreMhz, dramMhz), so a core cycle spans
 * ticksPerCore ticks and a DRAM command cycle ticksPerDram ticks, both
 * exact integers. Every component converts between its own cycle
 * domain and ticks through the ClockDomains instance it was built
 * with; there is deliberately no global conversion function, so two
 * systems with different devices can coexist in one process (the
 * experiment harness runs them concurrently). These conversions are
 * the *only* bridge between the typed time domains.
 */
struct ClockDomains
{
    std::uint32_t coreMhz = 2000; ///< Core / cache / crossbar clock.
    std::uint32_t dramMhz = 800;  ///< DRAM command-bus clock (tCK).
    TickSpan ticksPerCore{2};     ///< Ticks per core cycle.
    TickSpan ticksPerDram{5};     ///< Ticks per DRAM command cycle.

    /** Derive the tick grid for a (core, DRAM) frequency pair.
     *  Zero frequencies are clamped to 1 MHz (caller-validated). */
    static constexpr ClockDomains
    fromMhz(std::uint32_t core, std::uint32_t dram)
    {
        ClockDomains c;
        c.coreMhz = core ? core : 1;
        c.dramMhz = dram ? dram : 1;
        const std::uint64_t g = std::gcd<std::uint64_t, std::uint64_t>(
            c.coreMhz, c.dramMhz);
        c.ticksPerCore = TickSpan{c.dramMhz / g};
        c.ticksPerDram = TickSpan{c.coreMhz / g};
        return c;
    }

    /** Tick frequency in MHz: LCM of the two domain frequencies. */
    constexpr std::uint64_t
    tickMhz() const
    {
        return static_cast<std::uint64_t>(coreMhz) * ticksPerCore.count();
    }

    /** Wall-clock length of one tick, in nanoseconds. */
    constexpr double
    nsPerTick() const
    {
        return 1000.0 / static_cast<double>(tickMhz());
    }

    /** Wall-clock length of one DRAM command cycle, in nanoseconds.
     *  Defined as nsPerTick() * ticksPerDram so tick-based and
     *  cycle-based energy accounting stay mutually consistent. */
    constexpr double
    nsPerDramCycle() const
    {
        return nsPerTick() * static_cast<double>(ticksPerDram.count());
    }

    /** Wall-clock length of a tick span, in nanoseconds. */
    constexpr double
    ticksToNs(TickSpan t) const
    {
        return static_cast<double>(t.count()) * nsPerTick();
    }

    /** Convert a span of core cycles to a span of ticks. */
    constexpr TickSpan
    coreToTicks(CoreCycles cycles) const
    {
        return TickSpan{cycles.count() * ticksPerCore.count()};
    }

    /** Convert a raw core-cycle count (e.g. a config field) to ticks. */
    constexpr TickSpan
    coreToTicks(std::uint64_t cycles) const
    {
        return TickSpan{cycles * ticksPerCore.count()};
    }

    /** Convert an absolute core-cycle index to its tick (origin 0). */
    constexpr Tick
    coreToTicks(CoreCycle cycle) const
    {
        return Tick{cycle.count() * ticksPerCore.count()};
    }

    /** Convert a span of DRAM cycles to a span of ticks. */
    constexpr TickSpan
    dramToTicks(DramCycles cycles) const
    {
        return TickSpan{cycles.count() * ticksPerDram.count()};
    }

    /** Convert a raw DRAM-cycle count (e.g. a JEDEC timing field) to
     *  ticks. */
    constexpr TickSpan
    dramToTicks(std::uint64_t cycles) const
    {
        return TickSpan{cycles * ticksPerDram.count()};
    }

    /** Convert an absolute DRAM-cycle index to its tick (origin 0). */
    constexpr Tick
    dramToTicks(DramCycle cycle) const
    {
        return Tick{cycle.count() * ticksPerDram.count()};
    }

    /** Convert a tick span to whole core cycles (rounds down). */
    constexpr CoreCycles
    ticksToCore(TickSpan t) const
    {
        return CoreCycles{t.count() / ticksPerCore.count()};
    }

    /** Convert a tick to the core cycle containing it (rounds down). */
    constexpr CoreCycle
    ticksToCore(Tick t) const
    {
        return CoreCycle{t.count() / ticksPerCore.count()};
    }

    /** Convert a tick span to whole DRAM cycles (rounds down). */
    constexpr DramCycles
    ticksToDram(TickSpan t) const
    {
        return DramCycles{t.count() / ticksPerDram.count()};
    }

    /** Convert a tick to the DRAM cycle containing it (rounds down). */
    constexpr DramCycle
    ticksToDram(Tick t) const
    {
        return DramCycle{t.count() / ticksPerDram.count()};
    }

    constexpr bool
    operator==(const ClockDomains &o) const
    {
        return coreMhz == o.coreMhz && dramMhz == o.dramMhz;
    }
    constexpr bool
    operator!=(const ClockDomains &o) const
    {
        return !(*this == o);
    }
};

/** The paper's Table 2 clocking: 2 GHz cores over DDR3-1600. */
inline constexpr ClockDomains kBaselineClocks{};

/** Sentinel core id used for non-core requesters (DMA/IO engines). */
constexpr CoreId kIoCoreId = 0xFFFFu;

} // namespace mcsim

#endif // CLOUDMC_COMMON_TYPES_HH
