/**
 * @file
 * Bit-field extraction/insertion helpers used by the address mapping
 * logic and cache indexing.
 */

#ifndef CLOUDMC_COMMON_BITUTILS_HH
#define CLOUDMC_COMMON_BITUTILS_HH

#include <cstdint>

#include "log.hh"
#include "types.hh"

namespace mcsim {

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Extract @p width bits of @p value starting at bit @p lsb. */
constexpr std::uint64_t
extractBits(std::uint64_t value, unsigned lsb, unsigned width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return value >> lsb;
    return (value >> lsb) & ((std::uint64_t{1} << width) - 1);
}

/**
 * Insert the low @p width bits of @p field into @p value at bit @p lsb,
 * returning the result. Existing bits in the target range are replaced.
 */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned lsb, unsigned width,
           std::uint64_t field)
{
    if (width == 0)
        return value;
    const std::uint64_t mask =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    return (value & ~(mask << lsb)) | ((field & mask) << lsb);
}

} // namespace mcsim

#endif // CLOUDMC_COMMON_BITUTILS_HH
