/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  — an internal simulator invariant was violated (a bug in
 *            cloudmc itself); aborts so a debugger or core dump can
 *            capture the state.
 * fatal()  — the simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments); exits with status 1.
 * warn()   — something is off but the simulation can proceed.
 * inform() — plain status output.
 */

#ifndef CLOUDMC_COMMON_LOG_HH
#define CLOUDMC_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mcsim {

namespace log_detail {

/** Build a message from streamable parts. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    static_cast<void>((os << ... << args));
    return os.str();
}

[[noreturn]] void panicExit(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalExit(const std::string &msg, const char *file,
                            int line);
void emit(const char *tag, const std::string &msg);

} // namespace log_detail

/** Report an internal invariant violation and abort. */
#define mc_panic(...)                                                       \
    ::mcsim::log_detail::panicExit(                                         \
        ::mcsim::log_detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Report an unrecoverable user/configuration error and exit(1). */
#define mc_fatal(...)                                                       \
    ::mcsim::log_detail::fatalExit(                                         \
        ::mcsim::log_detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Report a recoverable anomaly. */
#define mc_warn(...)                                                        \
    ::mcsim::log_detail::emit("warn",                                       \
                              ::mcsim::log_detail::concat(__VA_ARGS__))

/** Report plain status. */
#define mc_inform(...)                                                      \
    ::mcsim::log_detail::emit("info",                                       \
                              ::mcsim::log_detail::concat(__VA_ARGS__))

/**
 * Simulation-correctness assertion. Enabled in all build types because
 * a timing-model violation silently corrupts results; the cost is
 * negligible next to the model work.
 */
#define mc_assert(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::mcsim::log_detail::panicExit(                                 \
                ::mcsim::log_detail::concat("assertion failed: " #cond " ", \
                                            ##__VA_ARGS__),                 \
                __FILE__, __LINE__);                                        \
        }                                                                   \
    } while (0)

} // namespace mcsim

#endif // CLOUDMC_COMMON_LOG_HH
