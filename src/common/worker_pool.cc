#include "worker_pool.hh"

#include "log.hh"

namespace mcsim {

WorkerPool::WorkerPool(unsigned workers)
{
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        // detlint-allow(raw-thread): this pool IS the shared worker
        // pool every other thread construction must route through.
        threads_.emplace_back([this, i] { workerMain(i); });
    }
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    wakeCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::run(unsigned parties, const std::function<void(unsigned)> &job)
{
    mc_assert(parties <= workers() + 1,
              "WorkerPool::run asked for more parties than the pool "
              "plus the caller can supply");
    if (parties <= 1) {
        if (parties == 1)
            job(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = &job;
        parties_ = parties;
        running_ = parties - 1;
        ++generation_;
    }
    wakeCv_.notify_all();
    job(0);
    std::unique_lock<std::mutex> lock(mu_);
    doneCv_.wait(lock, [this] { return running_ == 0; });
    job_ = nullptr;
}

void
WorkerPool::workerMain(unsigned index)
{
    std::uint64_t seen = 0;
    while (true) {
        std::unique_lock<std::mutex> lock(mu_);
        wakeCv_.wait(lock, [this, seen] {
            return shutdown_ || generation_ != seen;
        });
        if (shutdown_)
            return;
        seen = generation_;
        // Worker i serves party i+1; a dispatch narrower than the pool
        // leaves the tail workers asleep until the next generation.
        if (index + 1 >= parties_)
            continue;
        const auto *job = job_;
        lock.unlock();
        (*job)(index + 1);
        lock.lock();
        if (--running_ == 0) {
            lock.unlock();
            doneCv_.notify_all();
        }
    }
}

} // namespace mcsim
