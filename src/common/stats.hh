/**
 * @file
 * Lightweight statistics primitives: scalar counters, streaming
 * averages, time-weighted averages, and small histograms. These are
 * deliberately simple — hot-path updates are a handful of adds.
 */

#ifndef CLOUDMC_COMMON_STATS_HH
#define CLOUDMC_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "types.hh"

namespace mcsim {

/** Streaming mean over sample values. */
class AverageStat
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Time-weighted average of a piecewise-constant quantity, e.g. queue
 * occupancy. Call update() whenever the value changes.
 */
class TimeWeightedStat
{
  public:
    /** Record that the tracked value becomes @p value at time @p now. */
    void
    update(Tick now, double value)
    {
        if (now > lastTick_) {
            weightedSum_ +=
                lastValue_ * static_cast<double>((now - lastTick_).count());
            elapsed_ += now - lastTick_;
            lastTick_ = now;
        }
        lastValue_ = value;
    }

    /** Mean over [reset, now], including the in-progress interval. */
    double
    mean(Tick now) const
    {
        double wsum = weightedSum_;
        TickSpan elapsed = elapsed_;
        if (now > lastTick_) {
            wsum +=
                lastValue_ * static_cast<double>((now - lastTick_).count());
            elapsed += now - lastTick_;
        }
        return elapsed.count()
                   ? wsum / static_cast<double>(elapsed.count())
                   : 0.0;
    }

    /** Restart measurement at @p now, keeping the current value. */
    void
    reset(Tick now)
    {
        weightedSum_ = 0.0;
        elapsed_ = TickSpan{0};
        lastTick_ = now;
    }

  private:
    double weightedSum_ = 0.0;
    TickSpan elapsed_;
    Tick lastTick_;
    double lastValue_ = 0.0;
};

/**
 * Fixed-bucket histogram of small non-negative integers with an
 * overflow bucket, used e.g. for the row-activation reuse counts that
 * drive the paper's Figure 8.
 */
class SmallHistogram
{
  public:
    explicit SmallHistogram(std::size_t buckets = 16)
        : buckets_(buckets, 0)
    {
    }

    void
    sample(std::uint64_t v)
    {
        if (v < buckets_.size())
            ++buckets_[v];
        else
            ++overflow_;
        ++count_;
        sum_ += v;
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        overflow_ = 0;
        count_ = 0;
        sum_ = 0;
    }

    /** Fraction of samples equal to @p v (v must be < bucket count). */
    double
    fractionAt(std::uint64_t v) const
    {
        if (!count_ || v >= buckets_.size())
            return 0.0;
        return static_cast<double>(buckets_[v]) /
               static_cast<double>(count_);
    }

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t count() const { return count_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * Power-of-two-bucket histogram for wide-range positive quantities
 * (latencies): sample v lands in bucket floor(log2(v)). Percentiles
 * are estimated by linear interpolation within the bucket, which is
 * plenty for tail reporting (p95/p99 of DRAM latencies).
 *
 * Bucket b < size-1 covers [2^b, 2^(b+1)); the top bucket saturates
 * and absorbs every v >= 2^(size-1) (sample() and merge() agree on
 * this). v = 0 lands in bucket 0 alongside v = 1, so percentile
 * estimates never drop below bucket 0's lower edge of 1 — acceptable
 * for the latency-style quantities this histogram serves, where 0
 * does not occur.
 */
class LogHistogram
{
  public:
    explicit LogHistogram(std::size_t buckets = 32) : buckets_(buckets, 0)
    {
    }

    void
    sample(std::uint64_t v)
    {
        std::size_t b = 0;
        while ((v >> (b + 1)) != 0 && b + 1 < buckets_.size())
            ++b;
        ++buckets_[b];
        ++count_;
        sum_ += v;
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        count_ = 0;
        sum_ = 0;
    }

    /** Estimated value at quantile @p q in [0,1]. 0 when empty. */
    double
    percentile(double q) const
    {
        if (!count_)
            return 0.0;
        if (q < 0.0)
            q = 0.0;
        if (q > 1.0)
            q = 1.0;
        const double target = q * static_cast<double>(count_);
        double seen = 0.0;
        for (std::size_t b = 0; b < buckets_.size(); ++b) {
            if (!buckets_[b])
                continue;
            const double next = seen + static_cast<double>(buckets_[b]);
            if (next >= target) {
                const double lo = static_cast<double>(1ull << b);
                const double hi = lo * 2.0;
                const double frac =
                    (target - seen) / static_cast<double>(buckets_[b]);
                return lo + frac * (hi - lo);
            }
            seen = next;
        }
        // Unreachable in exact arithmetic (the last populated bucket's
        // cumulative count meets any target <= count_); guard the
        // floating-point edge with the top bucket's upper edge, not
        // its lower one.
        return 2.0 * static_cast<double>(1ull << (buckets_.size() - 1));
    }

    std::uint64_t count() const { return count_; }
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Fold another histogram in (multi-channel aggregation). */
    void
    merge(const LogHistogram &other)
    {
        const std::size_t n =
            buckets_.size() < other.buckets_.size()
                ? buckets_.size()
                : other.buckets_.size();
        for (std::size_t b = 0; b < n; ++b)
            buckets_[b] += other.buckets_[b];
        // Out-of-range buckets fold into this histogram's top bucket.
        for (std::size_t b = n; b < other.buckets_.size(); ++b)
            buckets_.back() += other.buckets_[b];
        count_ += other.count_;
        sum_ += other.sum_;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

} // namespace mcsim

#endif // CLOUDMC_COMMON_STATS_HH
