/**
 * @file
 * The shared worker pool and the epoch barrier: the only place in the
 * simulator that may construct raw threads.
 *
 * Two layers of parallelism draw from one thread budget (see
 * README "Thread-budget sharing"): the experiment sweep pool runs
 * independent simulation points concurrently, and the epoch-sharded
 * event kernel splits one simulation's shards across workers. Both
 * route through WorkerPool so the budget arithmetic stays in one
 * place and the determinism linter can pin thread construction to
 * this file (rule `raw-thread`).
 *
 * WorkerPool is a dispatch pool: run(parties, job) executes
 * job(0..parties-1) with job(0) on the calling thread and the rest on
 * persistent workers, then blocks until all return. Dispatch costs a
 * mutex/condvar round trip, so it is paid once per advance() window or
 * sweep batch — the per-epoch synchronization inside the kernel uses
 * the much cheaper SpinBarrier below.
 *
 * SpinBarrier is a sense-reversing barrier for the kernel's epoch
 * loop: hundreds of thousands of crossings per simulated second, so
 * arrival spins on an atomic generation counter before yielding. On a
 * single-hardware-thread host spinning only burns the quantum the
 * other parties need, so the spin budget collapses to zero there and
 * every wait yields immediately.
 */

#ifndef CLOUDMC_COMMON_WORKER_POOL_HH
#define CLOUDMC_COMMON_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcsim {

/**
 * Sense-reversing spin barrier. All @p parties threads must call
 * arriveAndWait() the same number of times; the last arrival of each
 * generation releases the rest. Release/acquire ordering on the
 * generation counter makes everything written before a thread's
 * arrival visible to every thread after the crossing — the epoch
 * kernel's staged-queue handoff relies on exactly that edge.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties)
        : parties_(parties), spinLimit_(defaultSpinLimit())
    {
    }

    SpinBarrier(unsigned parties, unsigned spinLimit)
        : parties_(parties), spinLimit_(spinLimit)
    {
    }

    void
    arriveAndWait()
    {
        const std::uint32_t gen =
            generation_.load(std::memory_order_relaxed);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            arrived_.store(0, std::memory_order_relaxed);
            generation_.store(gen + 1, std::memory_order_release);
            return;
        }
        unsigned spins = 0;
        while (generation_.load(std::memory_order_acquire) == gen) {
            if (++spins > spinLimit_)
                std::this_thread::yield();
        }
    }

    /** Spin budget before yielding: 0 when the host has a single
     *  hardware thread (spinning there can only delay the release). */
    static unsigned
    defaultSpinLimit()
    {
        return std::thread::hardware_concurrency() > 1 ? 4096 : 0;
    }

  private:
    std::atomic<std::uint32_t> generation_{0};
    std::atomic<std::uint32_t> arrived_{0};
    unsigned parties_;
    unsigned spinLimit_;
};

/**
 * Persistent worker pool with caller participation.
 *
 * Construction spawns @p workers threads that sleep until dispatched;
 * destruction joins them. Not reentrant: one run() at a time, from one
 * caller thread.
 */
class WorkerPool
{
  public:
    explicit WorkerPool(unsigned workers);
    ~WorkerPool();
    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned
    workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Execute job(0), job(1), ..., job(parties-1) concurrently: job(0)
     * runs on the calling thread, jobs 1..parties-1 on pool workers.
     * Requires parties <= workers() + 1. Returns when every job has;
     * the completion wait gives the caller a happens-after edge over
     * everything the jobs wrote.
     */
    void run(unsigned parties, const std::function<void(unsigned)> &job);

  private:
    void workerMain(unsigned index);

    std::mutex mu_;
    std::condition_variable wakeCv_; ///< Workers wait for a dispatch.
    std::condition_variable doneCv_; ///< Caller waits for completion.
    const std::function<void(unsigned)> *job_ = nullptr;
    unsigned parties_ = 0;
    std::uint64_t generation_ = 0;
    unsigned running_ = 0;
    bool shutdown_ = false;
    std::vector<std::thread> threads_;
};

} // namespace mcsim

#endif // CLOUDMC_COMMON_WORKER_POOL_HH
