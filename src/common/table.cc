#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mcsim {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::render() const
{
    std::size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());
    std::vector<std::size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string &cell = i < r.size() ? r[i] : std::string();
            os << cell;
            if (i + 1 < cols)
                os << std::string(width[i] - cell.size() + 2, ' ');
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < cols; ++i)
            total += width[i] + (i + 1 < cols ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            if (i)
                os << ',';
            os << r[i];
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

} // namespace mcsim
