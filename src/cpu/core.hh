/**
 * @file
 * In-order core model, following the scale-out pod design point the
 * paper adopts from Lotfi-Kamran et al.: single-issue in-order cores
 * whose memory-level parallelism is limited to a small window of
 * outstanding load misses (1 for truly blocking cores).
 *
 * Timing model per core cycle:
 *  - instruction fetch: one L1I access per fetch block (blockBytes /
 *    4-byte instructions); an L1I miss stalls the front end until the
 *    line returns.
 *  - L1D hits are pipelined (no stall). LLC hits stall the core for
 *    the round-trip latency (crossbar + bank access).
 *  - LLC load misses occupy an MLP window slot; the core stalls when
 *    the window is full (window = 1 models a blocking core).
 *  - Stores retire into a finite store buffer and never stall the
 *    core unless the buffer is full of outstanding fills.
 *
 * Execution is batched where that is provably unobservable: after its
 * globally ordered tick() a core may pre-execute a run of future
 * cycles (runBatch) as long as every instruction in the run touches
 * only core-private state — L1 hits, compute commits, per-core
 * generator draws. Anything that reaches the shared L2, the shared
 * streaming frontier, or depends on in-flight fills ends the run and
 * executes at its exact cycle in the global core-ID order, so results
 * stay bit-identical to the per-cycle reference kernel.
 */

#ifndef CLOUDMC_CPU_CORE_HH
#define CLOUDMC_CPU_CORE_HH

#include <cstdint>

#include "common/types.hh"
#include "hierarchy.hh"
#include "workload/workload.hh"

namespace mcsim {

/** Core timing parameters. */
struct CoreConfig
{
    std::uint32_t mlpWindow = 1;          ///< Outstanding load misses.
    std::uint32_t storeBufferEntries = 8; ///< Outstanding store fills.
    std::uint32_t l2HitLatency = 15;      ///< Core cycles, incl. xbar.
    std::uint32_t instrsPerFetchBlock = 16; ///< 64 B / 4 B instructions.
};

/** Core statistics over a measurement window. */
struct CoreStats
{
    std::uint64_t committedInstructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t loadMissStallCycles = 0;
    std::uint64_t fetchStallCycles = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedInstructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    void reset() { *this = CoreStats{}; }
};

/** Cycle-index sentinel: the core only wakes via missReturned(). */
constexpr CoreCycle kNeverCycle = CoreCycle::max();

/** One in-order core. */
class Core
{
  public:
    Core(CoreId id, WorkloadGenerator &gen, CacheHierarchy &hierarchy,
         const CoreConfig &cfg);

    /** Advance one core cycle. */
    void tick();

    /**
     * Account the cycles in [syncedCycles(), cycle) during which this
     * core was provably inactive — pure stall-counter decrements or
     * blocked-on-miss bookkeeping, exactly as tick() would have done.
     * The event kernel calls this instead of ticking idle cores; it
     * must run before any state change (missReturned) or real tick.
     * A no-op for cores that batched ahead of the global cycle count.
     */
    void catchUpTo(CoreCycle cycle);

    /**
     * Batched execution: starting from the just-ticked state, execute
     * the run of upcoming cycles whose instructions are provably
     * core-private — L1I/L1D hits (checked with pure probes before
     * each access), compute-run commits, and workload draws the
     * generator confirms touch no shared state. The run ends at the
     * first instruction that would reach the L2 or the shared
     * streaming frontier (it stays latched for this core's next
     * ordered tick), at any stall or block, or at @p limit (the last
     * core cycle of the current advance window, so statistics windows
     * close identically to the reference kernel). Never runs while a
     * miss is in flight: returning fills mutate the L1s, so pre-read
     * tags could go stale mid-run.
     *
     * Returns the number of cycles executed, 0 when nothing batched.
     */
    std::uint64_t runBatch(CoreCycle limit);

    /**
     * First cycle index >= syncedCycles() at which tick() would do
     * anything beyond deterministic bookkeeping: stall-counter
     * decrements, blocked-on-miss accounting, or the committing tail
     * of a compute run (which touches neither the workload generator
     * nor the caches until the run or the fetch credits are spent).
     * kNeverCycle while the core can only be unblocked by a returning
     * miss.
     */
    CoreCycle
    nextActCycle() const
    {
        if (x_.blockedOnFetch || x_.blockedOnLoads || x_.blockedOnStores)
            return kNeverCycle;
        std::uint64_t run = 0;
        if (x_.computeRemaining > 0) {
            run = x_.computeRemaining < x_.fetchCredits
                      ? x_.computeRemaining
                      : x_.fetchCredits;
        }
        return CoreCycle{x_.synced + x_.stallCyclesLeft + run};
    }

    /** Cycles executed or accounted so far (the catch-up frontier). */
    CoreCycle syncedCycles() const { return CoreCycle{x_.synced}; }

    /** A miss this core was waiting on has been filled. */
    void missReturned(MissKind kind);

    CoreId id() const { return id_; }
    CoreStats &stats() { return stats_; }
    const CoreStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** True when the core cannot make progress this cycle (tests). */
    bool
    isStalled() const
    {
        return x_.blockedOnFetch || x_.blockedOnLoads ||
               x_.blockedOnStores || x_.stallCyclesLeft > 0;
    }

  private:
    void commit(std::uint32_t n = 1);
    void doFetch();
    void executeOp();

    /**
     * Everything tick() and runBatch() touch every cycle, packed into
     * one struct (one or two host cache lines) instead of scattering
     * across the object. The cross-core arrays the kernel scans every
     * boundary (next-due cycles) live structure-of-arrays in System.
     */
    struct ExecState
    {
        std::uint32_t stallCyclesLeft = 0; ///< Fixed-latency stalls.
        std::uint32_t fetchCredits = 0; ///< Instructions fetched, uncommitted.
        std::uint32_t computeRemaining = 0;
        std::uint32_t outstandingLoads = 0;
        std::uint32_t outstandingStores = 0;
        bool blockedOnFetch = false;
        bool blockedOnLoads = false;
        bool blockedOnStores = false;
        /** pendingOp holds a generator op pulled by runBatch() but not
         *  executable there (its access leaves the L1); the next
         *  ordered tick executes it. Same for pendingFetch. */
        bool opPending = false;
        bool fetchPending = false;
        std::uint64_t synced = 0; ///< Cycles executed or lazily accounted.
        Op pendingOp{};
        Addr pendingFetch = 0;
    };

    CoreId id_;
    WorkloadGenerator &gen_;
    CacheHierarchy &hierarchy_;
    CoreConfig cfg_;

    ExecState x_;

    /** L1D run-length probe memo: blocks in
     *  [probeRunBase_, probeRunBase_ + probeRunBlocks_ blocks) were
     *  seen present this batch. Batched accesses are all hits and
     *  hits never evict, so the memo stays valid for a whole batch. */
    Addr probeRunBase_ = 0;
    std::uint32_t probeRunBlocks_ = 0;
    std::uint32_t l1dBlockBytes_;

    CoreStats stats_;
};

} // namespace mcsim

#endif // CLOUDMC_CPU_CORE_HH
