/**
 * @file
 * In-order core model, following the scale-out pod design point the
 * paper adopts from Lotfi-Kamran et al.: single-issue in-order cores
 * whose memory-level parallelism is limited to a small window of
 * outstanding load misses (1 for truly blocking cores).
 *
 * Timing model per core cycle:
 *  - instruction fetch: one L1I access per fetch block (blockBytes /
 *    4-byte instructions); an L1I miss stalls the front end until the
 *    line returns.
 *  - L1D hits are pipelined (no stall). LLC hits stall the core for
 *    the round-trip latency (crossbar + bank access).
 *  - LLC load misses occupy an MLP window slot; the core stalls when
 *    the window is full (window = 1 models a blocking core).
 *  - Stores retire into a finite store buffer and never stall the
 *    core unless the buffer is full of outstanding fills.
 */

#ifndef CLOUDMC_CPU_CORE_HH
#define CLOUDMC_CPU_CORE_HH

#include <cstdint>

#include "common/types.hh"
#include "hierarchy.hh"
#include "workload/workload.hh"

namespace mcsim {

/** Core timing parameters. */
struct CoreConfig
{
    std::uint32_t mlpWindow = 1;          ///< Outstanding load misses.
    std::uint32_t storeBufferEntries = 8; ///< Outstanding store fills.
    std::uint32_t l2HitLatency = 15;      ///< Core cycles, incl. xbar.
    std::uint32_t instrsPerFetchBlock = 16; ///< 64 B / 4 B instructions.
};

/** Core statistics over a measurement window. */
struct CoreStats
{
    std::uint64_t committedInstructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t loadMissStallCycles = 0;
    std::uint64_t fetchStallCycles = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedInstructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    void reset() { *this = CoreStats{}; }
};

/** Cycle-index sentinel: the core only wakes via missReturned(). */
constexpr CoreCycle kNeverCycle = CoreCycle::max();

/** One in-order core. */
class Core
{
  public:
    Core(CoreId id, WorkloadGenerator &gen, CacheHierarchy &hierarchy,
         const CoreConfig &cfg);

    /** Advance one core cycle. */
    void tick();

    /**
     * Account the cycles in [syncedCycles(), cycle) during which this
     * core was provably inactive — pure stall-counter decrements or
     * blocked-on-miss bookkeeping, exactly as tick() would have done.
     * The event kernel calls this instead of ticking idle cores; it
     * must run before any state change (missReturned) or real tick.
     */
    void catchUpTo(CoreCycle cycle);

    /**
     * First cycle index >= syncedCycles() at which tick() would do
     * anything beyond deterministic bookkeeping: stall-counter
     * decrements, blocked-on-miss accounting, or the committing tail
     * of a compute run (which touches neither the workload generator
     * nor the caches until the run or the fetch credits are spent).
     * kNeverCycle while the core can only be unblocked by a returning
     * miss.
     */
    CoreCycle
    nextActCycle() const
    {
        if (blockedOnFetch_ || blockedOnLoads_ || blockedOnStores_)
            return kNeverCycle;
        std::uint64_t run = 0;
        if (computeRemaining_ > 0) {
            run = computeRemaining_ < fetchCredits_ ? computeRemaining_
                                                    : fetchCredits_;
        }
        return CoreCycle{synced_ + stallCyclesLeft_ + run};
    }

    /** Cycles executed or accounted so far (the catch-up frontier). */
    CoreCycle syncedCycles() const { return CoreCycle{synced_}; }

    /** A miss this core was waiting on has been filled. */
    void missReturned(MissKind kind);

    CoreId id() const { return id_; }
    CoreStats &stats() { return stats_; }
    const CoreStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** True when the core cannot make progress this cycle (tests). */
    bool
    isStalled() const
    {
        return blockedOnFetch_ || blockedOnLoads_ || blockedOnStores_ ||
               stallCyclesLeft_ > 0;
    }

  private:
    void commit(std::uint32_t n = 1);
    void doFetch();
    void executeOp();

    CoreId id_;
    WorkloadGenerator &gen_;
    CacheHierarchy &hierarchy_;
    CoreConfig cfg_;

    std::uint32_t stallCyclesLeft_ = 0; ///< Fixed-latency stalls.
    bool blockedOnFetch_ = false;
    bool blockedOnLoads_ = false;
    bool blockedOnStores_ = false;
    std::uint32_t outstandingLoads_ = 0;
    std::uint32_t outstandingStores_ = 0;

    std::uint32_t fetchCredits_ = 0;    ///< Instructions fetched, uncommitted.
    std::uint32_t computeRemaining_ = 0;

    std::uint64_t synced_ = 0; ///< Cycles executed or lazily accounted.

    CoreStats stats_;
};

} // namespace mcsim

#endif // CLOUDMC_CPU_CORE_HH
