#include "core.hh"

#include "common/log.hh"

namespace mcsim {

Core::Core(CoreId id, WorkloadGenerator &gen, CacheHierarchy &hierarchy,
           const CoreConfig &cfg)
    : id_(id), gen_(gen), hierarchy_(hierarchy), cfg_(cfg)
{
    mc_assert(cfg_.mlpWindow >= 1, "MLP window must be >= 1");
}

void
Core::commit(std::uint32_t n)
{
    stats_.committedInstructions += n;
    fetchCredits_ = fetchCredits_ > n ? fetchCredits_ - n : 0;
}

void
Core::missReturned(MissKind kind)
{
    switch (kind) {
      case MissKind::Load:
        mc_assert(outstandingLoads_ > 0, "spurious load return");
        --outstandingLoads_;
        if (outstandingLoads_ < cfg_.mlpWindow)
            blockedOnLoads_ = false;
        break;
      case MissKind::Store:
        mc_assert(outstandingStores_ > 0, "spurious store return");
        --outstandingStores_;
        if (outstandingStores_ < cfg_.storeBufferEntries)
            blockedOnStores_ = false;
        break;
      case MissKind::Ifetch:
        blockedOnFetch_ = false;
        break;
    }
}

void
Core::doFetch()
{
    const Addr fa = gen_.nextFetchBlock(id_);
    switch (hierarchy_.ifetch(id_, fa)) {
      case AccessOutcome::L1Hit:
        fetchCredits_ = cfg_.instrsPerFetchBlock;
        break;
      case AccessOutcome::L2Hit:
        fetchCredits_ = cfg_.instrsPerFetchBlock;
        stallCyclesLeft_ = cfg_.l2HitLatency;
        break;
      case AccessOutcome::Miss:
      case AccessOutcome::MergedMiss:
        fetchCredits_ = cfg_.instrsPerFetchBlock;
        blockedOnFetch_ = true;
        break;
    }
}

void
Core::executeOp()
{
    if (computeRemaining_ > 0) {
        --computeRemaining_;
        commit();
        return;
    }
    const Op op = gen_.nextOp(id_);
    switch (op.kind) {
      case Op::Kind::Compute:
        mc_assert(op.length >= 1, "empty compute op");
        computeRemaining_ = op.length - 1;
        commit();
        return;

      case Op::Kind::Load:
        switch (hierarchy_.load(id_, op.addr)) {
          case AccessOutcome::L1Hit:
            break;
          case AccessOutcome::L2Hit:
            stallCyclesLeft_ = cfg_.l2HitLatency;
            break;
          case AccessOutcome::Miss:
          case AccessOutcome::MergedMiss:
            ++outstandingLoads_;
            if (outstandingLoads_ >= cfg_.mlpWindow)
                blockedOnLoads_ = true;
            break;
        }
        commit();
        return;

      case Op::Kind::Store:
        switch (hierarchy_.store(id_, op.addr)) {
          case AccessOutcome::L1Hit:
            break;
          case AccessOutcome::L2Hit:
            // The store buffer absorbs the LLC round trip.
            break;
          case AccessOutcome::Miss:
          case AccessOutcome::MergedMiss:
            ++outstandingStores_;
            if (outstandingStores_ >= cfg_.storeBufferEntries)
                blockedOnStores_ = true;
            break;
        }
        commit();
        return;
    }
}

void
Core::catchUpTo(CoreCycle cycle)
{
    if (cycle.count() <= synced_)
        return;
    std::uint64_t n = cycle.count() - synced_;
    synced_ = cycle.count();
    stats_.cycles += n;
    // Replicate tick()'s inactive paths in bulk, in tick() order:
    // fixed-latency stall cycles drain first, then blocked cycles
    // count against the stall statistics.
    const std::uint64_t stallPart =
        stallCyclesLeft_ < n ? stallCyclesLeft_ : n;
    stallCyclesLeft_ -= static_cast<std::uint32_t>(stallPart);
    n -= stallPart;
    if (n == 0)
        return;
    if (blockedOnFetch_) {
        stats_.fetchStallCycles += n;
        return;
    }
    if (blockedOnLoads_ || blockedOnStores_) {
        stats_.loadMissStallCycles += n;
        return;
    }
    // Committing tail of a compute run: each cycle decrements the op,
    // commits one instruction, and consumes one fetch credit.
    const std::uint64_t run = computeRemaining_ < fetchCredits_
                                  ? computeRemaining_
                                  : fetchCredits_;
    mc_assert(n <= run, "catch-up spans cycles where the core could act");
    computeRemaining_ -= static_cast<std::uint32_t>(n);
    fetchCredits_ -= static_cast<std::uint32_t>(n);
    stats_.committedInstructions += n;
}

void
Core::tick()
{
    ++synced_;
    ++stats_.cycles;
    if (stallCyclesLeft_ > 0) {
        --stallCyclesLeft_;
        return;
    }
    if (blockedOnFetch_) {
        ++stats_.fetchStallCycles;
        return;
    }
    if (blockedOnLoads_ || blockedOnStores_) {
        ++stats_.loadMissStallCycles;
        return;
    }
    if (fetchCredits_ == 0) {
        doFetch();
        // The fetch itself consumes this cycle if it left L1I.
        if (blockedOnFetch_ || stallCyclesLeft_ > 0)
            return;
    }
    executeOp();
}

} // namespace mcsim
