#include "core.hh"

#include "common/log.hh"

namespace mcsim {

Core::Core(CoreId id, WorkloadGenerator &gen, CacheHierarchy &hierarchy,
           const CoreConfig &cfg)
    : id_(id), gen_(gen), hierarchy_(hierarchy), cfg_(cfg),
      l1dBlockBytes_(hierarchy.l1dBlockBytes())
{
    mc_assert(cfg_.mlpWindow >= 1, "MLP window must be >= 1");
}

void
Core::commit(std::uint32_t n)
{
    stats_.committedInstructions += n;
    x_.fetchCredits = x_.fetchCredits > n ? x_.fetchCredits - n : 0;
}

void
Core::missReturned(MissKind kind)
{
    switch (kind) {
      case MissKind::Load:
        mc_assert(x_.outstandingLoads > 0, "spurious load return");
        --x_.outstandingLoads;
        if (x_.outstandingLoads < cfg_.mlpWindow)
            x_.blockedOnLoads = false;
        break;
      case MissKind::Store:
        mc_assert(x_.outstandingStores > 0, "spurious store return");
        --x_.outstandingStores;
        if (x_.outstandingStores < cfg_.storeBufferEntries)
            x_.blockedOnStores = false;
        break;
      case MissKind::Ifetch:
        x_.blockedOnFetch = false;
        break;
    }
}

void
Core::doFetch()
{
    Addr fa;
    if (x_.fetchPending) {
        // Pulled by runBatch() at this exact point of the per-core
        // stream, but its access was not core-private; run it now.
        fa = x_.pendingFetch;
        x_.fetchPending = false;
    } else {
        fa = gen_.nextFetchBlock(id_);
    }
    switch (hierarchy_.ifetch(id_, fa)) {
      case AccessOutcome::L1Hit:
        x_.fetchCredits = cfg_.instrsPerFetchBlock;
        break;
      case AccessOutcome::L2Hit:
        x_.fetchCredits = cfg_.instrsPerFetchBlock;
        x_.stallCyclesLeft = cfg_.l2HitLatency;
        break;
      case AccessOutcome::Miss:
      case AccessOutcome::MergedMiss:
        x_.fetchCredits = cfg_.instrsPerFetchBlock;
        x_.blockedOnFetch = true;
        break;
    }
}

void
Core::executeOp()
{
    if (x_.computeRemaining > 0) {
        --x_.computeRemaining;
        commit();
        return;
    }
    Op op;
    if (x_.opPending) {
        // Latched by runBatch(): already drawn from the generator in
        // per-core order, left for this ordered tick to execute.
        op = x_.pendingOp;
        x_.opPending = false;
    } else {
        op = gen_.nextOp(id_);
    }
    switch (op.kind) {
      case Op::Kind::Compute:
        mc_assert(op.length >= 1, "empty compute op");
        x_.computeRemaining = op.length - 1;
        commit();
        return;

      case Op::Kind::Load:
        switch (hierarchy_.load(id_, op.addr)) {
          case AccessOutcome::L1Hit:
            break;
          case AccessOutcome::L2Hit:
            x_.stallCyclesLeft = cfg_.l2HitLatency;
            break;
          case AccessOutcome::Miss:
          case AccessOutcome::MergedMiss:
            ++x_.outstandingLoads;
            if (x_.outstandingLoads >= cfg_.mlpWindow)
                x_.blockedOnLoads = true;
            break;
        }
        commit();
        return;

      case Op::Kind::Store:
        switch (hierarchy_.store(id_, op.addr)) {
          case AccessOutcome::L1Hit:
            break;
          case AccessOutcome::L2Hit:
            // The store buffer absorbs the LLC round trip.
            break;
          case AccessOutcome::Miss:
          case AccessOutcome::MergedMiss:
            ++x_.outstandingStores;
            if (x_.outstandingStores >= cfg_.storeBufferEntries)
                x_.blockedOnStores = true;
            break;
        }
        commit();
        return;
    }
}

void
Core::catchUpTo(CoreCycle cycle)
{
    if (cycle.count() <= x_.synced)
        return;
    std::uint64_t n = cycle.count() - x_.synced;
    x_.synced = cycle.count();
    stats_.cycles += n;
    // Replicate tick()'s inactive paths in bulk, in tick() order:
    // fixed-latency stall cycles drain first, then blocked cycles
    // count against the stall statistics.
    const std::uint64_t stallPart =
        x_.stallCyclesLeft < n ? x_.stallCyclesLeft : n;
    x_.stallCyclesLeft -= static_cast<std::uint32_t>(stallPart);
    n -= stallPart;
    if (n == 0)
        return;
    if (x_.blockedOnFetch) {
        stats_.fetchStallCycles += n;
        return;
    }
    if (x_.blockedOnLoads || x_.blockedOnStores) {
        stats_.loadMissStallCycles += n;
        return;
    }
    // Committing tail of a compute run: each cycle decrements the op,
    // commits one instruction, and consumes one fetch credit.
    const std::uint64_t run = x_.computeRemaining < x_.fetchCredits
                                  ? x_.computeRemaining
                                  : x_.fetchCredits;
    mc_assert(n <= run, "catch-up spans cycles where the core could act");
    x_.computeRemaining -= static_cast<std::uint32_t>(n);
    x_.fetchCredits -= static_cast<std::uint32_t>(n);
    stats_.committedInstructions += n;
}

std::uint64_t
Core::runBatch(CoreCycle limit)
{
    // Batching is only legal while no miss is in flight: returning
    // fills mutate this core's L1s, and outstanding-counter updates
    // from completions must interleave with new misses in exact cycle
    // order.
    if (x_.blockedOnFetch || x_.blockedOnLoads || x_.blockedOnStores ||
        x_.outstandingLoads > 0 || x_.outstandingStores > 0) {
        return 0;
    }
    if (x_.synced >= limit.count())
        return 0;
    // The hot loop runs on locals: the opaque generator call inside
    // could alias anything as far as the compiler knows, and spilling
    // these to memory every iteration costs more than the batch saves.
    std::uint64_t left = limit.count() - x_.synced;
    const std::uint64_t window = left;
    std::uint64_t synced = x_.synced;
    std::uint64_t cycles = stats_.cycles;
    std::uint64_t committed = stats_.committedInstructions;
    std::uint32_t credits = x_.fetchCredits;
    std::uint32_t compute = x_.computeRemaining;
    bool opHeld = x_.opPending;
    Op op;
    if (opHeld)
        op = x_.pendingOp;
    Addr fetchAddr = x_.pendingFetch;
    bool fetchHeld = x_.fetchPending;
    if (x_.stallCyclesLeft > 0) {
        // A fixed-latency stall (an L2 hit) is core-private dead time:
        // absorb it here, exactly as tick()/catchUpTo() account it,
        // instead of bouncing back through the kernel's due-cycle
        // machinery and returning for the cycle after the stall.
        const std::uint64_t s =
            x_.stallCyclesLeft < left ? x_.stallCyclesLeft : left;
        x_.stallCyclesLeft -= static_cast<std::uint32_t>(s);
        synced += s;
        cycles += s;
        left -= s;
    }
    probeRunBlocks_ = 0; // L1D contents may have changed since last batch.
    while (left > 0) {
        if (compute > 0 && credits > 0) {
            // Committing tail of a compute run, in bulk: one commit
            // and one credit per cycle, exactly as tick() would.
            std::uint32_t run = compute < credits ? compute : credits;
            if (static_cast<std::uint64_t>(run) > left)
                run = static_cast<std::uint32_t>(left);
            compute -= run;
            credits -= run;
            synced += run;
            cycles += run;
            committed += run;
            left -= run;
            continue;
        }
        if (credits == 0) {
            if (!fetchHeld) {
                // Fetch-block pulls use only per-core generator state,
                // and this is exactly the point of the per-core stream
                // where tick() would pull.
                fetchAddr = gen_.nextFetchBlock(id_);
                fetchHeld = true;
            }
            if (!hierarchy_.l1iProbe(id_, fetchAddr)) {
                // Leaves the L1I: run at the ordered tick. Warm the
                // host's caches with the L2 set it will scan there.
                hierarchy_.l2Prefetch(fetchAddr);
                break;
            }
            const AccessOutcome out = hierarchy_.ifetch(id_, fetchAddr);
            mc_assert(out == AccessOutcome::L1Hit,
                      "probed-hit fetch left the L1I");
            fetchHeld = false;
            credits = cfg_.instrsPerFetchBlock;
            continue; // An L1I-hit fetch shares the consuming cycle.
        }
        if (!opHeld) {
            if (!gen_.tryNextOpLocal(id_, op))
                break; // Touches shared state: pull at the ordered tick.
            opHeld = true;
        }
        if (op.kind == Op::Kind::Compute) {
            mc_assert(op.length >= 1, "empty compute op");
            compute = op.length;
            opHeld = false;
            continue; // Committed by the bulk path above.
        }
        // Load or store: only an L1D hit is core-private. Batched
        // accesses are all hits and hits never evict, so a probed
        // window of consecutive present blocks stays valid for the
        // rest of the batch. Multi-block probes pay off only for
        // sequential sweeps (the next block extends the window), so
        // random accesses probe a single block.
        const Addr addr = op.addr;
        if (addr - probeRunBase_ >=
            static_cast<Addr>(probeRunBlocks_) * l1dBlockBytes_) {
            const Addr block = addr & ~static_cast<Addr>(l1dBlockBytes_ - 1);
            const bool sequential =
                probeRunBlocks_ > 0 &&
                block == probeRunBase_ + static_cast<Addr>(probeRunBlocks_) *
                                             l1dBlockBytes_;
            const std::uint32_t run =
                hierarchy_.l1dProbeRun(id_, addr, sequential ? 8 : 1);
            if (run == 0) {
                // Leaves the L1D: run at the ordered tick. Warm the
                // host's caches with the L2 set it will scan there.
                hierarchy_.l2Prefetch(addr);
                break;
            }
            probeRunBase_ = block;
            probeRunBlocks_ = run;
        }
        const AccessOutcome out = op.kind == Op::Kind::Store
                                      ? hierarchy_.store(id_, addr)
                                      : hierarchy_.load(id_, addr);
        mc_assert(out == AccessOutcome::L1Hit,
                  "probed-hit access left the L1D");
        opHeld = false;
        ++synced;
        ++cycles;
        ++committed;
        --credits;
        --left;
    }
    x_.synced = synced;
    x_.fetchCredits = credits;
    x_.computeRemaining = compute;
    x_.opPending = opHeld;
    if (opHeld)
        x_.pendingOp = op;
    x_.fetchPending = fetchHeld;
    if (fetchHeld)
        x_.pendingFetch = fetchAddr;
    stats_.cycles = cycles;
    stats_.committedInstructions = committed;
    return window - left;
}

void
Core::tick()
{
    ++x_.synced;
    ++stats_.cycles;
    if (x_.stallCyclesLeft > 0) {
        --x_.stallCyclesLeft;
        return;
    }
    if (x_.blockedOnFetch) {
        ++stats_.fetchStallCycles;
        return;
    }
    if (x_.blockedOnLoads || x_.blockedOnStores) {
        ++stats_.loadMissStallCycles;
        return;
    }
    if (x_.fetchCredits == 0) {
        doFetch();
        // The fetch itself consumes this cycle if it left L1I.
        if (x_.blockedOnFetch || x_.stallCyclesLeft > 0)
            return;
    }
    executeOp();
}

} // namespace mcsim
