#include "hierarchy.hh"

#include "common/log.hh"

namespace mcsim {

CacheHierarchy::CacheHierarchy(std::uint32_t numCores,
                               const HierarchyConfig &cfg)
    : cfg_(cfg)
{
    for (std::uint32_t c = 0; c < numCores; ++c) {
        l1i_.push_back(std::make_unique<Cache>(cfg_.l1i));
        l1d_.push_back(std::make_unique<Cache>(cfg_.l1d));
    }
    l2_ = std::make_unique<Cache>(cfg_.l2);
}

void
CacheHierarchy::writebackToMemory(CoreId core, Addr blockAddr)
{
    ++stats_.memWritebacks;
    mc_assert(sendMemWrite_, "memory write path not wired");
    sendMemWrite_(core, blockAddr);
}

AccessOutcome
CacheHierarchy::missToL2(CoreId core, Addr blockAddr, MissKind kind,
                         bool isWrite)
{
    if (l2_->access(blockAddr, isWrite)) {
        // LLC hit: fill the L1 now (the core charges the latency).
        Cache &l1 = kind == MissKind::Ifetch ? *l1i_[core] : *l1d_[core];
        const auto fill = l1.fill(blockAddr, isWrite);
        if (fill.victimDirty) {
            // L1 dirty victim folds into the L2 (write-back, no DRAM).
            l2_->access(fill.victimAddr, true);
        }
        return AccessOutcome::L2Hit;
    }

    ++stats_.l2DemandMisses;
    auto [it, fresh] = mshrs_.try_emplace(blockAddr);
    it->second.push_back({core, kind});
    if (!fresh)
        return AccessOutcome::MergedMiss;

    ++stats_.memReads;
    mc_assert(sendMemRead_, "memory read path not wired");
    sendMemRead_(core, blockAddr);
    return AccessOutcome::Miss;
}

void
CacheHierarchy::onMemResponse(CoreId core, Addr blockAddr)
{
    (void)core; // Waiters carry their own core ids.
    const auto fill = l2_->fill(blockAddr, false);
    if (fill.victimDirty)
        writebackToMemory(kIoCoreId, fill.victimAddr);

    auto it = mshrs_.find(blockAddr);
    if (it == mshrs_.end()) {
        // A response with no MSHR means bookkeeping broke somewhere.
        mc_panic("memory response for unknown block ", blockAddr);
    }
    auto waiters = std::move(it->second);
    mshrs_.erase(it);
    for (const Waiter &w : waiters) {
        Cache &l1 =
            w.kind == MissKind::Ifetch ? *l1i_[w.core] : *l1d_[w.core];
        const bool dirty = w.kind == MissKind::Store;
        const auto l1Fill = l1.fill(blockAddr, dirty);
        if (l1Fill.victimDirty)
            l2_->access(l1Fill.victimAddr, true);
        if (wake_)
            wake_(w.core, w.kind);
    }
}

} // namespace mcsim
