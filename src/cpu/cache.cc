#include "cache.hh"

#include "common/log.hh"

namespace mcsim {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    mc_assert(isPowerOf2(cfg_.blockBytes), "block size must be 2^n");
    mc_assert(cfg_.numSets() >= 1 && isPowerOf2(cfg_.numSets()),
              "cache sets must be a positive power of two; size ",
              cfg_.sizeBytes, " ways ", cfg_.ways);
    blockShift_ = floorLog2(cfg_.blockBytes);
    setMask_ = cfg_.numSets() - 1;
    lines_.resize(cfg_.numSets() * cfg_.ways);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::size_t>((addr >> blockShift_) & setMask_);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> blockShift_;
}

bool
Cache::access(Addr addr, bool isWrite)
{
    ++stats_.accesses;
    const Addr tag = tagOf(addr);
    Line *set = &lines_[setIndex(addr) * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lruClock_;
            line.dirty = line.dirty || isWrite;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

CacheAccessResult
Cache::fill(Addr addr, bool dirty)
{
    const Addr tag = tagOf(addr);
    Line *set = &lines_[setIndex(addr) * cfg_.ways];
    Line *victim = &set[0];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            // Already present (e.g. racing fills); just update state.
            line.dirty = line.dirty || dirty;
            line.lruStamp = ++lruClock_;
            return {};
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lruStamp < victim->lruStamp) {
            victim = &line;
        }
    }
    CacheAccessResult res;
    if (victim->valid) {
        res.victimValid = true;
        res.victimDirty = victim->dirty;
        res.victimAddr = victim->tag << blockShift_;
        if (victim->dirty)
            ++stats_.writebacks;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = dirty;
    victim->lruStamp = ++lruClock_;
    return res;
}

bool
Cache::contains(Addr addr) const
{
    const Addr tag = tagOf(addr);
    const Line *set = &lines_[setIndex(addr) * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    const Addr tag = tagOf(addr);
    Line *set = &lines_[setIndex(addr) * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].valid = false;
            return set[w].dirty;
        }
    }
    return false;
}

} // namespace mcsim
