#include "cache.hh"

#include "common/log.hh"

namespace mcsim {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    mc_assert(isPowerOf2(cfg_.blockBytes), "block size must be 2^n");
    mc_assert(cfg_.numSets() >= 1 && isPowerOf2(cfg_.numSets()),
              "cache sets must be a positive power of two; size ",
              cfg_.sizeBytes, " ways ", cfg_.ways);
    mc_assert(cfg_.ways <= 255, "way index must fit the hint byte");
    blockShift_ = floorLog2(cfg_.blockBytes);
    setMask_ = cfg_.numSets() - 1;
    const std::size_t n = cfg_.numSets() * cfg_.ways;
    tags_.assign(n, kNoTag);
    dirty_.assign(n, 0);
    if (cfg_.ways == 2) {
        mru_.assign(cfg_.numSets(), 0); // Unobservable until both ways
                                        // fill; invalid ways are always
                                        // preferred victims.
    } else {
        stamps_.assign(n, 0);
        wayHint_.assign(cfg_.numSets(), 0);
    }
}

bool
Cache::accessScan(Addr tag, std::size_t set, bool isWrite)
{
    const std::size_t base = set * cfg_.ways;
    // Try the last-hit way first: a tag match there is exactly the hit
    // the scan would find, with the same stamp/dirty updates.
    const std::size_t hinted = base + wayHint_[set];
    if (tags_[hinted] == tag) {
        stamps_[hinted] = ++lruClock_;
        dirty_[hinted] |= static_cast<std::uint8_t>(isWrite);
        return true;
    }
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (tags_[base + w] == tag) {
            stamps_[base + w] = ++lruClock_;
            dirty_[base + w] |= static_cast<std::uint8_t>(isWrite);
            wayHint_[set] = static_cast<std::uint8_t>(w);
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

CacheAccessResult
Cache::fill2Way(Addr tag, std::size_t base, bool dirty)
{
    const std::size_t set = base >> 1;
    for (std::size_t w = 0; w < 2; ++w) {
        if (tags_[base + w] == tag) {
            // Already present (e.g. racing fills); just update state.
            dirty_[base + w] |= static_cast<std::uint8_t>(dirty);
            mru_[set] = static_cast<std::uint8_t>(w);
            return {};
        }
    }
    // Victim: an invalid way first (way 1 preferred, matching the
    // stamp scan's last-invalid-wins order), else the non-MRU way —
    // which for two ways is exactly the least recently used.
    std::size_t victim;
    if (tags_[base + 1] == kNoTag)
        victim = base + 1;
    else if (tags_[base] == kNoTag)
        victim = base;
    else
        victim = base + (mru_[set] ^ 1u);
    CacheAccessResult res;
    if (tags_[victim] != kNoTag) {
        res.victimValid = true;
        res.victimDirty = dirty_[victim] != 0;
        res.victimAddr = tags_[victim] << blockShift_;
        if (res.victimDirty)
            ++stats_.writebacks;
    }
    tags_[victim] = tag;
    dirty_[victim] = static_cast<std::uint8_t>(dirty);
    mru_[set] = static_cast<std::uint8_t>(victim - base);
    return res;
}

CacheAccessResult
Cache::fill(Addr addr, bool dirty)
{
    const Addr tag = tagOf(addr);
    mc_assert(tag != kNoTag, "address collides with the invalid tag");
    const std::size_t set = setIndex(addr);
    const std::size_t base = set * cfg_.ways;
    if (cfg_.ways == 2)
        return fill2Way(tag, base, dirty);
    std::size_t victim = base;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        const std::size_t i = base + w;
        if (tags_[i] == tag) {
            // Already present (e.g. racing fills); just update state.
            dirty_[i] |= static_cast<std::uint8_t>(dirty);
            stamps_[i] = ++lruClock_;
            wayHint_[set] = static_cast<std::uint8_t>(w);
            return {};
        }
        if (tags_[i] == kNoTag) {
            victim = i;
        } else if (tags_[victim] != kNoTag &&
                   stamps_[i] < stamps_[victim]) {
            victim = i;
        }
    }
    CacheAccessResult res;
    if (tags_[victim] != kNoTag) {
        res.victimValid = true;
        res.victimDirty = dirty_[victim] != 0;
        res.victimAddr = tags_[victim] << blockShift_;
        if (res.victimDirty)
            ++stats_.writebacks;
    }
    tags_[victim] = tag;
    dirty_[victim] = static_cast<std::uint8_t>(dirty);
    stamps_[victim] = ++lruClock_;
    wayHint_[set] = static_cast<std::uint8_t>(victim - base);
    return res;
}

bool
Cache::invalidate(Addr addr)
{
    const Addr tag = tagOf(addr);
    const std::size_t base = setIndex(addr) * cfg_.ways;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        const std::size_t i = base + w;
        if (tags_[i] == tag) {
            tags_[i] = kNoTag;
            return dirty_[i] != 0;
        }
    }
    return false;
}

} // namespace mcsim
