/**
 * @file
 * Fixed-latency crossbar link model.
 *
 * The scale-out pod uses a 16x4 crossbar between cores and LLC banks
 * and a link from the LLC to the memory controllers. The paper never
 * varies the NoC, so cloudmc models each traversal as a fixed latency
 * with unlimited bandwidth: a FIFO of (ready tick, payload) pairs.
 * Port contention would shift all configurations equally and is
 * deliberately left out (see DESIGN.md).
 */

#ifndef CLOUDMC_CPU_CROSSBAR_HH
#define CLOUDMC_CPU_CROSSBAR_HH

#include <deque>
#include <utility>

#include "common/types.hh"

namespace mcsim {

/** Constant-delay in-order delivery channel. */
template <typename Payload>
class CrossbarLink
{
  public:
    explicit CrossbarLink(TickSpan latencyTicks) : latency_(latencyTicks) {}

    /** Inject a payload at @p now; it is deliverable at now+latency. */
    void
    push(Tick now, Payload payload)
    {
        fifo_.push_back({now + latency_, std::move(payload)});
    }

    /** True when a payload is deliverable at @p now. */
    bool
    ready(Tick now) const
    {
        return !fifo_.empty() && fifo_.front().first <= now;
    }

    /** Remove and return the front payload (must be ready()). */
    Payload
    pop()
    {
        Payload p = std::move(fifo_.front().second);
        fifo_.pop_front();
        return p;
    }

    /**
     * Tick at which the next payload becomes deliverable; kMaxTick
     * when the link is empty. Delivery is in-order, so the head entry
     * is always the earliest.
     */
    Tick
    nextReadyAt() const
    {
        return fifo_.empty() ? kMaxTick : fifo_.front().first;
    }

    std::size_t size() const { return fifo_.size(); }
    TickSpan latency() const { return latency_; }

  private:
    TickSpan latency_;
    std::deque<std::pair<Tick, Payload>> fifo_;
};

} // namespace mcsim

#endif // CLOUDMC_CPU_CROSSBAR_HH
