/**
 * @file
 * Fixed-latency crossbar link model.
 *
 * The scale-out pod uses a 16x4 crossbar between cores and LLC banks
 * and a link from the LLC to the memory controllers. The paper never
 * varies the NoC, so cloudmc models each traversal as a fixed latency
 * with unlimited bandwidth: a FIFO of (ready tick, payload) pairs.
 * Port contention would shift all configurations equally and is
 * deliberately left out (see DESIGN.md).
 */

#ifndef CLOUDMC_CPU_CROSSBAR_HH
#define CLOUDMC_CPU_CROSSBAR_HH

#include <deque>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace mcsim {

/** Constant-delay in-order delivery channel. */
template <typename Payload>
class CrossbarLink
{
  public:
    explicit CrossbarLink(TickSpan latencyTicks) : latency_(latencyTicks) {}

    /** Inject a payload at @p now; it is deliverable at now+latency. */
    void
    push(Tick now, Payload payload)
    {
        fifo_.push_back({now + latency_, std::move(payload)});
    }

    /** True when a payload is deliverable at @p now. */
    bool
    ready(Tick now) const
    {
        return !fifo_.empty() && fifo_.front().first <= now;
    }

    /** Remove and return the front payload (must be ready()). */
    Payload
    pop()
    {
        Payload p = std::move(fifo_.front().second);
        fifo_.pop_front();
        return p;
    }

    /**
     * Tick at which the next payload becomes deliverable; kMaxTick
     * when the link is empty. Delivery is in-order, so the head entry
     * is always the earliest.
     */
    Tick
    nextReadyAt() const
    {
        return fifo_.empty() ? kMaxTick : fifo_.front().first;
    }

    /**
     * Remove and return the front entry regardless of readiness,
     * delivery tick included. The epoch-sharded kernel uses this to
     * hand a link's backlog to the shards at window start.
     */
    std::pair<Tick, Payload>
    takeFront()
    {
        std::pair<Tick, Payload> e = std::move(fifo_.front());
        fifo_.pop_front();
        return e;
    }

    /**
     * Re-insert a payload with a precomputed delivery tick (the
     * inverse of takeFront(), used when the epoch-sharded kernel hands
     * unconsumed traffic back at window end). Callers must restore in
     * nondecreasing readyAt order or the in-order contract breaks.
     */
    void
    pushAt(Tick readyAt, Payload payload)
    {
        fifo_.push_back({readyAt, std::move(payload)});
    }

    std::size_t size() const { return fifo_.size(); }
    TickSpan latency() const { return latency_; }

  private:
    TickSpan latency_;
    std::deque<std::pair<Tick, Payload>> fifo_;
};

/**
 * Double-buffered cross-shard staging queue for the epoch-sharded
 * kernel (see README "Deterministic intra-simulation parallelism").
 *
 * One side of a crossbar link produces entries during epoch k into the
 * buffer of parity k&1; the other side consumes the opposite buffer —
 * the one filled during epoch k-1 — so producer and consumer never
 * touch the same vector inside an epoch. The inter-epoch barrier is
 * the only synchronization: it publishes epoch k's writes before any
 * epoch-k+1 read, and a buffer is rewritten only two epochs after its
 * last reader crossed a barrier.
 *
 * Ownership rules (unchecked, by construction of the kernel):
 *  - exactly one writer thread per EpochStage;
 *  - the writer calls beginEpoch(parity) once per epoch, before any
 *    push, to reclaim the buffer its readers finished with;
 *  - readers only touch readBuf(parity) for the parity they are
 *    consuming, and never across their own epoch's boundary.
 */
template <typename Entry>
class EpochStage
{
  public:
    /** Writer: reclaim this epoch's write buffer (clears it). */
    void
    beginEpoch(unsigned parity)
    {
        buf_[parity & 1].clear();
    }

    /** Writer: stage one entry into this epoch's buffer. */
    void
    push(unsigned parity, Entry e)
    {
        buf_[parity & 1].push_back(std::move(e));
    }

    /** Reader: the buffer filled during the previous epoch. */
    const std::vector<Entry> &
    readBuf(unsigned parity) const
    {
        return buf_[parity & 1];
    }

    /** Single-threaded teardown: drop everything in both buffers. */
    void
    reset()
    {
        buf_[0].clear();
        buf_[1].clear();
    }

  private:
    std::vector<Entry> buf_[2];
};

} // namespace mcsim

#endif // CLOUDMC_CPU_CROSSBAR_HH
