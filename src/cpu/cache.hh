/**
 * @file
 * A set-associative, write-back, write-allocate cache model with true
 * LRU replacement. Tag state only — no data values are modeled.
 */

#ifndef CLOUDMC_CPU_CACHE_HH
#define CLOUDMC_CPU_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace mcsim {

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 2;
    std::uint32_t blockBytes = 64;

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) * blockBytes);
    }
};

/** Result of a cache access or fill. */
struct CacheAccessResult
{
    bool hit = false;
    bool victimValid = false; ///< A block was evicted by the fill.
    bool victimDirty = false; ///< ... and it needs a writeback.
    Addr victimAddr = 0;      ///< Block address of the victim.
};

/** Cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    void reset() { *this = CacheStats{}; }
};

/** Tag-array cache model. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up @p addr; on a hit, update LRU and dirty state. Does NOT
     * allocate on miss — callers decide when the fill happens (after
     * the lower level responds). @p isWrite marks the block dirty.
     */
    bool access(Addr addr, bool isWrite);

    /**
     * Insert the block for @p addr, evicting the LRU way if the set is
     * full. Returns victim information for writeback handling.
     */
    CacheAccessResult fill(Addr addr, bool dirty);

    /** Probe without disturbing LRU or stats. */
    bool contains(Addr addr) const;

    /** Invalidate the block if present; returns true if it was dirty. */
    bool invalidate(Addr addr);

    const CacheConfig &config() const { return cfg_; }
    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }

    /** Block-align an address. */
    Addr
    blockAlign(Addr addr) const
    {
        return addr & ~static_cast<Addr>(cfg_.blockBytes - 1);
    }

  private:
    /** Tag value marking an invalid way. Real tags are block numbers
     *  of modelable addresses and can never reach it. */
    static constexpr Addr kNoTag = ~Addr{0};

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    bool access2Way(Addr tag, std::size_t base, bool isWrite);
    CacheAccessResult fill2Way(Addr tag, std::size_t base, bool dirty);

    CacheConfig cfg_;
    unsigned blockShift_;
    std::uint64_t setMask_;
    std::uint64_t lruClock_ = 0;
    // Structure-of-arrays tag store: the hit path touches only the
    // contiguous tag array (2 cache lines for 16 ways instead of 6
    // with an array-of-structs layout), which matters because the
    // simulated hierarchy is far bigger than the host's caches.
    std::vector<Addr> tags_;            ///< sets x ways; kNoTag = invalid.
    std::vector<std::uint64_t> stamps_; ///< LRU stamps, same indexing.
    std::vector<std::uint8_t> dirty_;   ///< Dirty flags, same indexing.
    /** 2-way fast path: for two ways, true LRU is one MRU bit per set
     *  (the stamp array is not allocated). mru_[set] = last-touched way. */
    std::vector<std::uint8_t> mru_;
    CacheStats stats_;
};

} // namespace mcsim

#endif // CLOUDMC_CPU_CACHE_HH
