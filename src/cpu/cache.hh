/**
 * @file
 * A set-associative, write-back, write-allocate cache model with true
 * LRU replacement. Tag state only — no data values are modeled.
 *
 * The lookup paths (access / probe / probeRun) live in this header so
 * the cores' per-instruction loops inline them; misses and fills stay
 * out of line. Layout is structure-of-arrays (see tags_ below), which
 * is also what makes the run-length probe a contiguous scan.
 */

#ifndef CLOUDMC_CPU_CACHE_HH
#define CLOUDMC_CPU_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace mcsim {

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 2;
    std::uint32_t blockBytes = 64;

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) * blockBytes);
    }
};

/** Result of a cache access or fill. */
struct CacheAccessResult
{
    bool hit = false;
    bool victimValid = false; ///< A block was evicted by the fill.
    bool victimDirty = false; ///< ... and it needs a writeback.
    Addr victimAddr = 0;      ///< Block address of the victim.
};

/** Cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    void reset() { *this = CacheStats{}; }
};

/** Tag-array cache model. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up @p addr; on a hit, update LRU and dirty state. Does NOT
     * allocate on miss — callers decide when the fill happens (after
     * the lower level responds). @p isWrite marks the block dirty.
     */
    bool
    access(Addr addr, bool isWrite)
    {
        ++stats_.accesses;
        const Addr tag = tagOf(addr);
        const std::size_t set = setIndex(addr);
        if (cfg_.ways == 2)
            return access2Way(tag, set * 2, isWrite);
        return accessScan(tag, set, isWrite);
    }

    /**
     * Insert the block for @p addr, evicting the LRU way if the set is
     * full. Returns victim information for writeback handling.
     */
    CacheAccessResult fill(Addr addr, bool dirty);

    /** Probe without disturbing LRU or stats. */
    bool
    contains(Addr addr) const
    {
        const Addr tag = tagOf(addr);
        const std::size_t base = setIndex(addr) * cfg_.ways;
        for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
            if (tags_[base + w] == tag)
                return true;
        }
        return false;
    }

    /**
     * Run-length probe: how many consecutive blocks starting at the
     * block containing @p addr are present, up to @p maxBlocks. Pure
     * (no LRU or stats side effects) — the cores use it to size
     * batched runs without issuing per-access lookups.
     */
    std::uint32_t
    probeRun(Addr addr, std::uint32_t maxBlocks) const
    {
        Addr block = blockAlign(addr);
        std::uint32_t n = 0;
        while (n < maxBlocks && contains(block)) {
            ++n;
            block += cfg_.blockBytes;
        }
        return n;
    }

    /**
     * Host-side prefetch of @p addr's tag set. Semantics-free: a pure
     * hint to the host CPU so a lookup known to happen soon (a latched
     * batch-breaking access) finds the tag lines already cached. The
     * simulated tag store dwarfs the host's caches, so the later scan
     * would otherwise stall on host memory.
     */
    void
    prefetchSet(Addr addr) const
    {
        const std::size_t base = setIndex(addr) * cfg_.ways;
        __builtin_prefetch(&tags_[base]);
        if (cfg_.ways * sizeof(Addr) > 64)
            __builtin_prefetch(&tags_[base + 64 / sizeof(Addr)]);
        if (!stamps_.empty())
            __builtin_prefetch(&stamps_[base]);
    }

    /** Invalidate the block if present; returns true if it was dirty. */
    bool invalidate(Addr addr);

    const CacheConfig &config() const { return cfg_; }
    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }

    /** Block-align an address. */
    Addr
    blockAlign(Addr addr) const
    {
        return addr & ~static_cast<Addr>(cfg_.blockBytes - 1);
    }

  private:
    /** Tag value marking an invalid way. Real tags are block numbers
     *  of modelable addresses and can never reach it. */
    static constexpr Addr kNoTag = ~Addr{0};

    std::size_t
    setIndex(Addr addr) const
    {
        return static_cast<std::size_t>((addr >> blockShift_) & setMask_);
    }

    Addr tagOf(Addr addr) const { return addr >> blockShift_; }

    /** 2-way hit path: two tag compares, MRU bit update. */
    bool
    access2Way(Addr tag, std::size_t base, bool isWrite)
    {
        if (tags_[base] == tag) {
            mru_[base >> 1] = 0;
            dirty_[base] |= static_cast<std::uint8_t>(isWrite);
            return true;
        }
        if (tags_[base + 1] == tag) {
            mru_[base >> 1] = 1;
            dirty_[base + 1] |= static_cast<std::uint8_t>(isWrite);
            return true;
        }
        ++stats_.misses;
        return false;
    }

    bool accessScan(Addr tag, std::size_t set, bool isWrite);
    CacheAccessResult fill2Way(Addr tag, std::size_t base, bool dirty);

    CacheConfig cfg_;
    unsigned blockShift_;
    std::uint64_t setMask_;
    std::uint64_t lruClock_ = 0;
    // Structure-of-arrays tag store: the hit path touches only the
    // contiguous tag array (2 cache lines for 16 ways instead of 6
    // with an array-of-structs layout), which matters because the
    // simulated hierarchy is far bigger than the host's caches.
    std::vector<Addr> tags_;            ///< sets x ways; kNoTag = invalid.
    std::vector<std::uint64_t> stamps_; ///< LRU stamps, same indexing.
    std::vector<std::uint8_t> dirty_;   ///< Dirty flags, same indexing.
    /** 2-way fast path: for two ways, true LRU is one MRU bit per set
     *  (the stamp array is not allocated). mru_[set] = last-touched way. */
    std::vector<std::uint8_t> mru_;
    /**
     * Wider-associativity fast path: the way that last hit (or was
     * last filled) per set, tried before the full tag scan. A stale
     * hint falls through to the scan, so hits, misses, stamps and
     * victims are identical to the hint-less scan — this is a pure
     * host-speed shortcut for the 16-way LLC.
     */
    std::vector<std::uint8_t> wayHint_;
    CacheStats stats_;
};

} // namespace mcsim

#endif // CLOUDMC_CPU_CACHE_HH
