/**
 * @file
 * The on-chip memory hierarchy: per-core L1 I/D caches, a shared
 * banked L2 (the LLC in the scale-out pod design), L2 MSHRs with miss
 * merging, and the interface to the memory controllers.
 *
 * Modeled latencies are charged by the cores (L2 hit latency includes
 * the crossbar traversal); this class tracks state transitions and
 * traffic. Coherence is not modeled: the workloads are synthetic
 * address streams, so stale values are unobservable; sharing-induced
 * memory traffic is instead captured by the generators' shared
 * regions. The paper varies only memory-side parameters, so this
 * keeps the processor-side model stable across all experiments.
 */

#ifndef CLOUDMC_CPU_HIERARCHY_HH
#define CLOUDMC_CPU_HIERARCHY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache.hh"
#include "common/types.hh"

namespace mcsim {

/** What a core access hit or did. */
enum class AccessOutcome : std::uint8_t {
    L1Hit,      ///< Served by the core's L1.
    L2Hit,      ///< L1 miss, LLC hit: core stalls for the L2 latency.
    Miss,       ///< LLC miss: a new memory read was issued.
    MergedMiss, ///< LLC miss merged into an outstanding MSHR.
};

/** Which pipeline event is waiting on a returning miss. */
enum class MissKind : std::uint8_t { Load, Store, Ifetch };

/** Hierarchy configuration (paper Table 2 defaults). */
struct HierarchyConfig
{
    CacheConfig l1i{32 * 1024, 2, 64};
    CacheConfig l1d{32 * 1024, 2, 64};
    CacheConfig l2{4 * 1024 * 1024, 16, 64};
    std::uint32_t l2Banks = 4;
};

/** Hierarchy traffic statistics. */
struct HierarchyStats
{
    std::uint64_t l2DemandMisses = 0; ///< Including merged misses.
    std::uint64_t memReads = 0;       ///< Read requests sent to DRAM.
    std::uint64_t memWritebacks = 0;  ///< Dirty L2 victims to DRAM.

    void reset() { *this = HierarchyStats{}; }
};

/**
 * Two-level cache hierarchy shared by all cores.
 *
 * The owner wires up sendMemRead/sendMemWrite to the memory
 * controllers and calls onMemResponse() when read data returns; the
 * hierarchy then fills the caches and notifies each waiting core via
 * the wake callback.
 */
class CacheHierarchy
{
  public:
    /** (coreId, addr) -> issue a DRAM read/write for the block. */
    using SendMemFn = std::function<void(CoreId, Addr)>;
    /** (coreId, kind) -> a miss this core was waiting on returned. */
    using WakeFn = std::function<void(CoreId, MissKind)>;

    CacheHierarchy(std::uint32_t numCores, const HierarchyConfig &cfg);

    void setSendMemRead(SendMemFn fn) { sendMemRead_ = std::move(fn); }
    void setSendMemWrite(SendMemFn fn) { sendMemWrite_ = std::move(fn); }
    void setWake(WakeFn fn) { wake_ = std::move(fn); }

    /** A data load from @p core. */
    AccessOutcome
    load(CoreId core, Addr addr)
    {
        Cache &l1 = *l1d_[core];
        const Addr blockAddr = l1.blockAlign(addr);
        if (l1.access(blockAddr, false))
            return AccessOutcome::L1Hit;
        return missToL2(core, blockAddr, MissKind::Load, false);
    }

    /** A data store from @p core (write-allocate; never blocks here). */
    AccessOutcome
    store(CoreId core, Addr addr)
    {
        Cache &l1 = *l1d_[core];
        const Addr blockAddr = l1.blockAlign(addr);
        if (l1.access(blockAddr, true))
            return AccessOutcome::L1Hit;
        return missToL2(core, blockAddr, MissKind::Store, true);
    }

    /** An instruction fetch from @p core. */
    AccessOutcome
    ifetch(CoreId core, Addr addr)
    {
        Cache &l1 = *l1i_[core];
        const Addr blockAddr = l1.blockAlign(addr);
        if (l1.access(blockAddr, false))
            return AccessOutcome::L1Hit;
        return missToL2(core, blockAddr, MissKind::Ifetch, false);
    }

    /**
     * Pure L1D probe: would a load/store from @p core hit its L1?
     * No LRU, stats, or L2 side effects — the batched core loop uses
     * this to decide whether the next access is core-private before
     * executing it ahead of the global cycle order.
     */
    bool
    l1dProbe(CoreId core, Addr addr) const
    {
        const Cache &l1 = *l1d_[core];
        return l1.contains(l1.blockAlign(addr));
    }

    /** Pure L1I probe (see l1dProbe). */
    bool
    l1iProbe(CoreId core, Addr addr) const
    {
        const Cache &l1 = *l1i_[core];
        return l1.contains(l1.blockAlign(addr));
    }

    /**
     * Run-length L1D probe: how many consecutive blocks starting at
     * the one containing @p addr are present, up to @p maxBlocks.
     * Pure, like l1dProbe.
     */
    std::uint32_t
    l1dProbeRun(CoreId core, Addr addr, std::uint32_t maxBlocks) const
    {
        return l1d_[core]->probeRun(addr, maxBlocks);
    }

    /** L1D block size, for the cores' probe-run bookkeeping. */
    std::uint32_t l1dBlockBytes() const { return cfg_.l1d.blockBytes; }

    /**
     * Host-side prefetch of the L2 set @p addr maps to (see
     * Cache::prefetchSet). Called when a batched core latches an
     * access that will reach the L2 at its next ordered tick.
     */
    void l2Prefetch(Addr addr) const { l2_->prefetchSet(addr); }

    /** DRAM read data for @p blockAddr returned (requested by core). */
    void onMemResponse(CoreId core, Addr blockAddr);

    /** Outstanding MSHR entries (for tests). */
    std::size_t outstandingMisses() const { return mshrs_.size(); }

    Cache &l1i(CoreId c) { return *l1i_[c]; }
    Cache &l1d(CoreId c) { return *l1d_[c]; }
    Cache &l2() { return *l2_; }

    HierarchyStats &stats() { return stats_; }
    const HierarchyStats &stats() const { return stats_; }

    void
    resetStats()
    {
        stats_.reset();
        for (auto &c : l1i_)
            c->stats().reset();
        for (auto &c : l1d_)
            c->stats().reset();
        l2_->stats().reset();
    }

  private:
    struct Waiter
    {
        CoreId core;
        MissKind kind;
    };

    /** Handle an L1 miss: L2 lookup, MSHR allocation/merge. */
    AccessOutcome missToL2(CoreId core, Addr blockAddr, MissKind kind,
                           bool isWrite);
    void writebackToMemory(CoreId core, Addr blockAddr);

    HierarchyConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::unique_ptr<Cache> l2_;
    // MSHRs are looked up/erased by block address (hierarchy.cc).
    // detlint-allow(unordered-iter): never iterated
    std::unordered_map<Addr, std::vector<Waiter>> mshrs_;

    SendMemFn sendMemRead_;
    SendMemFn sendMemWrite_;
    WakeFn wake_;
    HierarchyStats stats_;
};

} // namespace mcsim

#endif // CLOUDMC_CPU_HIERARCHY_HH
