/**
 * @file
 * Full-system configuration: the paper's Table 2 baseline plus every
 * knob the evaluation sweeps.
 */

#ifndef CLOUDMC_SIM_SIM_CONFIG_HH
#define CLOUDMC_SIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cpu/core.hh"
#include "cpu/hierarchy.hh"
#include "dram/devices.hh"
#include "dram/dram_params.hh"
#include "mem/address_mapping.hh"
#include "mem/backend.hh"
#include "mem/factory.hh"
#include "mem/mem_controller.hh"

namespace mcsim {

/** Complete simulated-system configuration. */
struct SimConfig
{
    std::uint32_t numCores = 16; ///< Overridden by the workload for WF.

    HierarchyConfig hierarchy;
    CoreConfig core;

    /** Core/DRAM clock frequencies and the derived tick grid. Keep in
     *  step with `timings` (whose fields are cycles of clocks.dramMhz);
     *  applyDevice() and setCoreMhz() maintain the invariant. */
    ClockDomains clocks;
    /** Registry name of the DRAM device behind `timings`/`power`;
     *  purely descriptive, but part of the results-cache key. */
    std::string deviceName = "DDR3-1600";

    DramGeometry dram;
    DramTimings timings = DramTimings::ddr3_1600();
    DramPowerParams power = DramPowerParams::ddr3_1600();
    bool refreshEnabled = true;

    /** Which memory backend the System composes. applyDevice() keeps
     *  this in step with the device geometry (vaultsPerStack > 0
     *  selects the stacked backend). */
    MemBackendKind backend = MemBackendKind::FlatDram;
    /** Dynamic vault/bank remapping knobs (stacked backend only; the
     *  spec loader rejects remap keys on a flat backend). */
    RemapConfig remap;
    /** Tiered-memory knobs. When tier.enabled, `backend` names the
     *  fast tier and makeMemBackend() wraps it in a TieredMemBackend
     *  (slow CXL/NVM-like tier + DAMON-style monitor + placement
     *  policy). The spec loader rejects tier- and monitor-only keys
     *  unless `tier on` is set. */
    TierConfig tier;

    MappingScheme mapping = MappingScheme::RoRaBaCoCh;
    /** Placement of the bank-group bits on grouped devices (DDR4/
     *  DDR5): interleave groups at block granularity (streams pay
     *  tCCD_S) or keep the bank field packed (tCCD_L binds). No-op on
     *  single-group devices. */
    BankGroupMapping bankGroupMapping = BankGroupMapping::GroupInterleaved;
    SchedulerKind scheduler = SchedulerKind::FrFcfs;
    SchedulerParams schedulerParams;
    PagePolicyKind pagePolicy = PagePolicyKind::OpenAdaptive;
    MemControllerConfig controller;

    /** One-way crossbar/LLC-to-MC traversal, in core cycles. */
    std::uint32_t xbarLatencyCycles = 4;

    /**
     * Thread budget for one simulation: 1 runs the serial event
     * kernel; >1 enables the epoch-sharded parallel kernel, which
     * splits the core cluster and the per-channel memory controllers
     * across min(kernelThreads-1, channels)+1 worker threads. Results
     * are bit-identical at any value (the epoch/barrier contract in
     * the README), so this knob is deliberately NOT part of the
     * results-cache key or the params hash. ExperimentRunner::runAll
     * overrides it per point from the sweep's shared thread budget.
     */
    std::uint32_t kernelThreads = 1;

    /**
     * When nonzero, overrides the workload preset's MLP window (the
     * outstanding-load-miss budget per core). The paper's Section 5
     * hypothesizes that more aggressive (out-of-order-like) cores
     * would raise MLP and change the multi-channel conclusion;
     * bench/ablation_ooo sweeps this knob to test that.
     */
    std::uint32_t coreMlpOverride = 0;

    std::uint64_t warmupCoreCycles = 2'000'000;
    std::uint64_t measureCoreCycles = 8'000'000;

    std::uint64_t seed = 1;

    /**
     * The paper's Table 2 baseline: 16 in-order cores at 2 GHz, 32 KB
     * 2-way L1s, 4 MB 16-way 4-bank shared L2, FR-FCFS, open-adaptive
     * paging, 1 channel of DDR3-1600 with 2 ranks x 8 banks and 8 KB
     * rows, RoRaBaCoCh mapping.
     */
    static SimConfig
    baseline()
    {
        return SimConfig{};
    }

    /**
     * Select a DRAM device from the registry: timings, power, geometry
     * defaults, and the DRAM-side clock all follow the device; the
     * channel count and core frequency are preserved.
     */
    void
    applyDevice(const DramDevice &dev)
    {
        deviceName = dev.name;
        timings = dev.timings;
        power = dev.power;
        const std::uint32_t channels = dram.channels;
        dram = dev.geometry;
        dram.channels = channels;
        backend = dram.vaultsPerStack ? MemBackendKind::StackedDram
                                      : MemBackendKind::FlatDram;
        clocks = ClockDomains::fromMhz(clocks.coreMhz, dev.busMhz);
    }

    /**
     * Override a stacked device's vault count while preserving its
     * capacity (rows per bank scale inversely), so the fixed IO/DMA
     * buffer placement and workload footprints are identical across a
     * vault-count sweep. Both counts must be powers of two.
     */
    void
    setVaults(std::uint32_t vaults)
    {
        mc_assert(dram.vaultsPerStack > 0 && vaults > 0 &&
                      isPowerOf2(vaults),
                  "setVaults needs a stacked device and a power-of-two "
                  "vault count");
        dram.rowsPerBank = dram.rowsPerBank * dram.vaultsPerStack / vaults;
        dram.vaultsPerStack = vaults;
    }

    /** Change the core frequency, re-deriving the tick grid. */
    void
    setCoreMhz(std::uint32_t coreMhz)
    {
        clocks = ClockDomains::fromMhz(coreMhz, clocks.dramMhz);
    }
};

} // namespace mcsim

#endif // CLOUDMC_SIM_SIM_CONFIG_HH
