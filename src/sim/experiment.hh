/**
 * @file
 * Experiment harness: runs (workload, configuration) points and
 * memoizes the results in an on-disk CSV cache so the fourteen
 * per-figure bench binaries can share one set of simulations.
 *
 * Independent points can be executed concurrently through runAll():
 * simulations are deterministic and self-contained, so a batch runs on
 * a thread pool with only the memo cache and the CSV append path
 * behind a mutex. Results are identical to the serial loop.
 */

#ifndef CLOUDMC_SIM_EXPERIMENT_HH
#define CLOUDMC_SIM_EXPERIMENT_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics.hh"
#include "sim_config.hh"
#include "workload/presets.hh"
#include "workload/workload.hh"

namespace mcsim {

/** Memoizing simulation runner. */
class ExperimentRunner
{
  public:
    /** One simulation point of a sweep. */
    struct Point
    {
        Point() = default;
        Point(WorkloadId wl, const SimConfig &c) : workload(wl), cfg(c) {}

        WorkloadId workload = WorkloadId::DS;
        SimConfig cfg;

        /**
         * Custom-generator point (mixed workloads, traces): when set,
         * the simulation builds a fresh generator from the factory and
         * runs it on @p customCores cores instead of the preset. Such
         * points are memoized under @p customKey, or never cached when
         * it is empty — the key must then fingerprint the generator as
         * faithfully as configKey() fingerprints a preset.
         */
        std::function<std::unique_ptr<WorkloadGenerator>()> makeGenerator;
        std::uint32_t customCores = 0;
        std::string customKey;
    };

    /**
     * @param cachePath CSV cache location; empty selects the
     *        CLOUDMC_CACHE environment variable or, failing that,
     *        "cloudmc_results_cache.csv" in the working directory.
     *        Pass "-" to disable caching entirely.
     */
    explicit ExperimentRunner(std::string cachePath = "");

    /**
     * Run (or recall) one simulation of @p workload under @p cfg.
     * Honors CLOUDMC_FAST=<divisor> by dividing the warmup/measure
     * windows, for quick smoke runs.
     */
    MetricSet run(WorkloadId workload, const SimConfig &cfg);

    /**
     * Run (or recall) a whole sweep, executing uncached points on up
     * to @p threads worker threads. Points are independent, so the
     * returned metrics (ordered like @p points) are identical to
     * calling run() in a serial loop, and the cacheHits() /
     * simulationsRun() counters advance exactly as the serial loop
     * would advance them: duplicate uncached points simulate once and
     * count the repeats as hits.
     */
    std::vector<MetricSet> runAll(const std::vector<Point> &points,
                                  unsigned threads);

    /** runAll() with the defaultThreads() worker count. */
    std::vector<MetricSet> runAll(const std::vector<Point> &points);

    /**
     * Worker count used by the single-argument runAll():
     * CLOUDMC_THREADS when set, else std::thread::hardware_concurrency
     * (at least 1).
     */
    static unsigned defaultThreads();

    /** Stable fingerprint of a (workload, config) point. */
    static std::string configKey(WorkloadId workload, const SimConfig &cfg);

    std::uint64_t cacheHits() const { return cacheHits_; }
    std::uint64_t simulationsRun() const { return simulationsRun_; }

    /** False when constructed with "-": results are never memoized. */
    bool cachingEnabled() const { return cachingEnabled_; }

  private:
    void loadCache();
    /**
     * Append one record as a single flushed write so concurrent
     * processes sharing the cache file cannot interleave partial
     * lines. Caller holds mu_.
     */
    void appendToCache(const std::string &key, const MetricSet &m);
    static std::uint64_t fastDivisor();
    static MetricSet simulate(WorkloadId workload, const SimConfig &cfg);
    static MetricSet simulatePoint(const Point &p);

    std::string cachePath_;
    bool cachingEnabled_ = true;
    std::mutex mu_; ///< Guards cache_, the counters, and the CSV append.
    std::map<std::string, MetricSet> cache_;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t simulationsRun_ = 0;
};

} // namespace mcsim

#endif // CLOUDMC_SIM_EXPERIMENT_HH
