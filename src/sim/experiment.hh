/**
 * @file
 * Experiment harness: runs (workload, configuration) points and
 * memoizes the results in an on-disk CSV cache so the fourteen
 * per-figure bench binaries can share one set of simulations.
 */

#ifndef CLOUDMC_SIM_EXPERIMENT_HH
#define CLOUDMC_SIM_EXPERIMENT_HH

#include <map>
#include <string>

#include "metrics.hh"
#include "sim_config.hh"
#include "workload/presets.hh"

namespace mcsim {

/** Memoizing simulation runner. */
class ExperimentRunner
{
  public:
    /**
     * @param cachePath CSV cache location; empty selects the
     *        CLOUDMC_CACHE environment variable or, failing that,
     *        "cloudmc_results_cache.csv" in the working directory.
     *        Pass "-" to disable caching entirely.
     */
    explicit ExperimentRunner(std::string cachePath = "");

    /**
     * Run (or recall) one simulation of @p workload under @p cfg.
     * Honors CLOUDMC_FAST=<divisor> by dividing the warmup/measure
     * windows, for quick smoke runs.
     */
    MetricSet run(WorkloadId workload, const SimConfig &cfg);

    /** Stable fingerprint of a (workload, config) point. */
    static std::string configKey(WorkloadId workload, const SimConfig &cfg);

    std::uint64_t cacheHits() const { return cacheHits_; }
    std::uint64_t simulationsRun() const { return simulationsRun_; }

  private:
    void loadCache();
    void appendToCache(const std::string &key, const MetricSet &m);
    static std::uint64_t fastDivisor();

    std::string cachePath_;
    std::map<std::string, MetricSet> cache_;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t simulationsRun_ = 0;
};

} // namespace mcsim

#endif // CLOUDMC_SIM_EXPERIMENT_HH
