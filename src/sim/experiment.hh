/**
 * @file
 * Experiment harness: runs (workload, configuration) points and
 * memoizes the results in an on-disk CSV cache so the fourteen
 * per-figure bench binaries can share one set of simulations.
 *
 * Independent points can be executed concurrently through runAll():
 * simulations are deterministic and self-contained, so a batch runs on
 * a thread pool with only the memo cache and the CSV append path
 * behind a mutex. Results are identical to the serial loop.
 */

#ifndef CLOUDMC_SIM_EXPERIMENT_HH
#define CLOUDMC_SIM_EXPERIMENT_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics.hh"
#include "sim_config.hh"
#include "workload/mixed.hh"
#include "workload/presets.hh"
#include "workload/workload.hh"

namespace mcsim {

/** Memoizing simulation runner. */
class ExperimentRunner
{
  public:
    /** One simulation point of a sweep. */
    struct Point
    {
        Point() = default;
        Point(WorkloadId wl, const SimConfig &c) : workload(wl), cfg(c) {}

        WorkloadId workload = WorkloadId::DS;
        SimConfig cfg;

        /**
         * Custom-generator point (mixed workloads, traces): when set,
         * the simulation builds a fresh generator from the factory and
         * runs it on @p customCores cores instead of the preset. Such
         * points are memoized under @p customKey, or never cached when
         * it is empty — the key must then fingerprint the generator as
         * faithfully as configKey() fingerprints a preset.
         */
        std::function<std::unique_ptr<WorkloadGenerator>()> makeGenerator;
        std::uint32_t customCores = 0;
        std::string customKey;

        /**
         * When nonzero (and makeGenerator is unset), run the preset
         * with this core count instead of its calibrated one. The
         * alone-run baselines use 1 (single core, memory system to
         * itself) and the mix-part baselines use the part's core
         * count; the preset's IO/DMA substrate is kept as calibrated.
         * Memoized under a distinct "ALONE|<n>c|" fingerprint.
         */
        std::uint32_t presetCores = 0;

        struct AloneBaseline;
        /**
         * Alone-run baselines for slowdown/fairness accounting. When
         * non-empty, runAll() schedules each baseline run through the
         * same worker pool (memoized under its own fingerprint) and
         * derives perCoreSlowdown / weightedSpeedup / harmonicSpeedup
         * / maxSlowdown into this point's MetricSet. Baseline runs
         * themselves must not carry baselines.
         */
        std::vector<AloneBaseline> baselines;
    };

    /**
     * @param cachePath CSV cache location; empty selects the
     *        CLOUDMC_CACHE environment variable or, failing that,
     *        "cloudmc_results_cache.csv" in the working directory.
     *        Pass "-" to disable caching entirely.
     */
    explicit ExperimentRunner(std::string cachePath = "");

    /**
     * Run (or recall) one simulation of @p workload under @p cfg.
     * Honors CLOUDMC_FAST=<divisor> by dividing the warmup/measure
     * windows, for quick smoke runs.
     */
    MetricSet run(WorkloadId workload, const SimConfig &cfg);

    /**
     * Run (or recall) a whole sweep, executing uncached points on up
     * to @p threads worker threads. Points are independent, so the
     * returned metrics (ordered like @p points) are identical to
     * calling run() in a serial loop, and the cacheHits() /
     * simulationsRun() counters advance exactly as the serial loop
     * would advance them: duplicate uncached points simulate once and
     * count the repeats as hits.
     */
    std::vector<MetricSet> runAll(const std::vector<Point> &points,
                                  unsigned threads);

    /** runAll() with the defaultThreads() worker count. */
    std::vector<MetricSet> runAll(const std::vector<Point> &points);

    /**
     * Worker count used by the single-argument runAll():
     * CLOUDMC_THREADS when set, else std::thread::hardware_concurrency
     * (at least 1).
     */
    static unsigned defaultThreads();

    /**
     * How one thread budget is shared between the two parallelism
     * layers (see README "Thread-budget sharing"). Their product never
     * exceeds the budget, so a sweep cannot oversubscribe the host by
     * running @p threads points that each spawn kernel shards.
     */
    struct ThreadSplit
    {
        unsigned sweepWorkers; ///< Concurrent simulation points.
        unsigned shardThreads; ///< SimConfig::kernelThreads per point.
    };

    /**
     * Split @p threads between the sweep pool and the per-point
     * epoch-sharded kernel for a batch of @p jobs uncached points.
     * Sweep-level parallelism wins when it alone can fill the budget
     * (jobs >= threads: independent points scale embarrassingly);
     * with fewer jobs than threads, each point gets the leftover
     * budget as intra-simulation shards — a lone big point on an
     * otherwise idle host runs threads-wide instead of serially.
     */
    static ThreadSplit planThreadSplit(std::size_t jobs, unsigned threads);

    /** Stable fingerprint of a (workload, config) point. */
    static std::string configKey(WorkloadId workload, const SimConfig &cfg);

    /**
     * The cache fingerprint runAll() memoizes @p p under: customKey
     * when set, the "ALONE|<n>c|"-prefixed preset key for presetCores
     * points, configKey() for plain preset points, and "" (never
     * cached) for keyless custom-generator points.
     */
    static std::string pointKey(const Point &p);

    /**
     * Attach the matching single-core alone-run baseline to a preset
     * point: one run of the same configuration with the preset scaled
     * to 1 core, covering every core of the shared run.
     */
    static void attachAloneBaseline(Point &p);

    /**
     * Build a memoizable MixedWorkload point, including one
     * part-isolated alone-run baseline per mix part (the part's preset
     * at the part's core count, covering the part's core range).
     */
    static Point mixedFairnessPoint(const std::vector<MixPart> &parts,
                                    const SimConfig &cfg,
                                    Addr addressSpace,
                                    std::uint64_t seedSalt = 0);

    std::uint64_t cacheHits() const { return cacheHits_; }
    std::uint64_t simulationsRun() const { return simulationsRun_; }

    /** False when constructed with "-": results are never memoized. */
    bool cachingEnabled() const { return cachingEnabled_; }

  private:
    void loadCache();
    /**
     * Append one record as a single flushed write so concurrent
     * processes sharing the cache file cannot interleave partial
     * lines. Caller holds mu_.
     */
    void appendToCache(const std::string &key, const MetricSet &m);
    static std::uint64_t fastDivisor();
    /** @p kernelThreads nonzero overrides cfg.kernelThreads (the
     *  sweep's share of the thread budget, see planThreadSplit). */
    static MetricSet simulate(WorkloadId workload, const SimConfig &cfg,
                              std::uint32_t presetCores = 0,
                              std::uint32_t kernelThreads = 0);
    static MetricSet simulatePoint(const Point &p,
                                   std::uint32_t kernelThreads = 0);

    std::string cachePath_;
    bool cachingEnabled_ = true;
    std::mutex mu_; ///< Guards cache_, the counters, and the CSV append.
    std::map<std::string, MetricSet> cache_;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t simulationsRun_ = 0;
};

/** One alone-run baseline of a fairness point: the cores it covers
 *  plus the run whose per-core IPCs serve as their baseline. */
struct ExperimentRunner::Point::AloneBaseline
{
    std::uint32_t firstCore = 0;
    std::uint32_t numCores = 0;
    Point run;
};

} // namespace mcsim

#endif // CLOUDMC_SIM_EXPERIMENT_HH
