/**
 * @file
 * The measured quantities behind every figure in the paper, collected
 * over one measurement window.
 *
 * Units are domain-relative: "cycles" means core cycles and bandwidth
 * utilization is relative to the configured device's peak, both under
 * the SimConfig's ClockDomains — there is no global clock constant.
 * Comparing devices therefore compares wall-clock-equivalent work, not
 * raw cycle counts.
 */

#ifndef CLOUDMC_SIM_METRICS_HH
#define CLOUDMC_SIM_METRICS_HH

#include <cstdint>
#include <vector>

namespace mcsim {

/** One simulation run's results. */
struct MetricSet
{
    /** Aggregate committed instructions per cycle over all cores. */
    double userIpc = 0.0;
    /** Mean DRAM read latency (controller arrival to last data beat),
     *  in core cycles. Figure 3's quantity. */
    double avgReadLatency = 0.0;
    /** Read latency tail, in core cycles (log-bucket estimates).
     *  Persisted in the experiment results cache since schema v2;
     *  entries recalled from v1-era caches report 0 here. */
    double readLatencyP50 = 0.0;
    double readLatencyP95 = 0.0;
    double readLatencyP99 = 0.0;
    /** Row-buffer hit rate, percent. Figure 2's quantity. */
    double rowHitRatePct = 0.0;
    /** LLC demand misses per kilo committed instructions. Figure 4. */
    double l2Mpki = 0.0;
    /** Mean read/write queue occupancy summed over controllers.
     *  Figures 5 and 6. */
    double avgReadQueue = 0.0;
    double avgWriteQueue = 0.0;
    /** DRAM data-bus utilization, percent of peak. Figure 7. */
    double bwUtilPct = 0.0;
    /** Activations receiving exactly one access, percent. Figure 8. */
    double singleAccessPct = 0.0;

    /** Per-core IPC (for the ATLAS disparity analysis). */
    std::vector<double> perCoreIpc;

    /** Lowest per-core IPC divided by the highest, in [0,1]. The
     *  paper's Section 4.1.1 fairness quantity ("the lowest per core
     *  IPC with FR-FCFS is within 85% of the highest"). */
    double ipcDisparity = 1.0;

    /** Estimated DRAM core energy over the window (Micron TN-41-01
     *  style model; see dram/energy.hh), and its average power. */
    double dramEnergyNj = 0.0;
    double dramAvgPowerMw = 0.0;

    std::uint64_t committedInstructions = 0;
    std::uint64_t measuredCycles = 0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;

    /** Total DRAM accesses (the Web Frontend channel analysis). */
    std::uint64_t
    totalMemAccesses() const
    {
        return memReads + memWrites;
    }
};

} // namespace mcsim

#endif // CLOUDMC_SIM_METRICS_HH
