/**
 * @file
 * The measured quantities behind every figure in the paper, collected
 * over one measurement window.
 *
 * Units are domain-relative: "cycles" means core cycles and bandwidth
 * utilization is relative to the configured device's peak, both under
 * the SimConfig's ClockDomains — there is no global clock constant.
 * Comparing devices therefore compares wall-clock-equivalent work, not
 * raw cycle counts.
 */

#ifndef CLOUDMC_SIM_METRICS_HH
#define CLOUDMC_SIM_METRICS_HH

#include <cstdint>
#include <vector>

namespace mcsim {

/** One simulation run's results. */
struct MetricSet
{
    /** Aggregate committed instructions per cycle over all cores. */
    double userIpc = 0.0;
    /** Mean DRAM read latency (controller arrival to last data beat),
     *  in core cycles. Figure 3's quantity. */
    double avgReadLatency = 0.0;
    /** Read latency tail, in core cycles (log-bucket estimates).
     *  Persisted in the experiment results cache since schema v2;
     *  entries recalled from v1-era caches report 0 here. */
    double readLatencyP50 = 0.0;
    double readLatencyP95 = 0.0;
    double readLatencyP99 = 0.0;
    /** Row-buffer hit rate, percent. Figure 2's quantity. */
    double rowHitRatePct = 0.0;
    /** LLC demand misses per kilo committed instructions. Figure 4. */
    double l2Mpki = 0.0;
    /** Mean read/write queue occupancy summed over controllers.
     *  Figures 5 and 6. */
    double avgReadQueue = 0.0;
    double avgWriteQueue = 0.0;
    /** DRAM data-bus utilization, percent of peak. Figure 7. */
    double bwUtilPct = 0.0;
    /** CAS commands issued to the same (rank, bank group) as the
     *  previous CAS on their channel, percent — the back-to-back
     *  population the tCCD_L (rather than tCCD_S) spacing applies to.
     *  On single-group devices this degenerates to a same-rank
     *  back-to-back fraction (all of a rank's banks share the one
     *  group). Persisted in the results cache since schema v5; older
     *  rows report 0. */
    double sameGroupCasPct = 0.0;
    /** Activations receiving exactly one access, percent. Figure 8. */
    double singleAccessPct = 0.0;

    /** Per-core IPC (for the ATLAS disparity analysis). Persisted in
     *  the results cache since schema v4 (as a ';'-joined list);
     *  entries recalled from older caches report an empty vector. */
    std::vector<double> perCoreIpc;
    /** Per-core committed instructions and elapsed core cycles over
     *  the window (the numerator/denominator behind perCoreIpc).
     *  In-memory only; not persisted in the results cache. */
    std::vector<std::uint64_t> perCoreCommitted;
    std::vector<std::uint64_t> perCoreCycles;

    /** Lowest per-core IPC divided by the highest, in [0,1]. The
     *  paper's Section 4.1.1 fairness quantity ("the lowest per core
     *  IPC with FR-FCFS is within 85% of the highest"). */
    double ipcDisparity = 1.0;

    /**
     * Measured slowdown/fairness quantities, derived against alone-run
     * baselines (deriveFairnessMetrics below): each core's slowdown is
     * S_i = IPC_alone,i / IPC_shared,i, where IPC_alone,i comes from a
     * separate simulation of that core's application running with the
     * memory system to itself. This is the real version of the quantity
     * STFM only *estimates* online (sched_stfm.hh), and the standard
     * multiprogrammed-fairness vocabulary the scheduler papers report:
     *
     *  - weightedSpeedup  = sum_i IPC_shared,i / IPC_alone,i
     *  - harmonicSpeedup  = N / sum_i S_i  (harmonic-mean speedup)
     *  - maxSlowdown      = max_i S_i      (the unfairness headline)
     *
     * All zero (and perCoreSlowdown empty) when no baselines were run.
     * Persisted in the results cache since schema v4.
     */
    std::vector<double> perCoreSlowdown;
    double weightedSpeedup = 0.0;
    double harmonicSpeedup = 0.0;
    double maxSlowdown = 0.0;

    /** True when the slowdown/fairness block above was derived. */
    bool hasFairness() const { return !perCoreSlowdown.empty(); }

    /** Estimated DRAM core energy over the window (Micron TN-41-01
     *  style model; see dram/energy.hh), and its average power. */
    double dramEnergyNj = 0.0;
    double dramAvgPowerMw = 0.0;

    /**
     * Stacked-backend quantities (schema v6; flat-backend rows and
     * entries recalled from older caches report zeros / an empty
     * list). perVaultReadQueue is the mean read-queue occupancy of
     * every vault queue in global queue order; vaultQueueImbalance is
     * the hottest queue's occupancy over the all-queue mean (1.0 =
     * perfectly balanced, 0 when idle). The remap counters total the
     * measurement window's hot-bank migrations and the rows they
     * copied across vaults.
     */
    std::vector<double> perVaultReadQueue;
    double vaultQueueImbalance = 0.0;
    std::uint64_t remapMigrations = 0;
    std::uint64_t remapMigratedRows = 0;

    /**
     * Tiered-backend quantities (schema v7; non-tiered rows and
     * entries recalled from older caches report zeros). fastTierHitPct
     * is the percent of routed requests served by the fast tier (0
     * when nothing was routed); slowTierReadLatencyP99 is the slow
     * tier's read-latency tail in core cycles (0 when the slow tier
     * served no reads); the migration counters total the window's
     * tier migrations (tile swaps, or alloy-cache fills) and the rows
     * they copied between tiers.
     */
    double fastTierHitPct = 0.0;
    double slowTierReadLatencyP99 = 0.0;
    std::uint64_t tierMigrations = 0;
    std::uint64_t tierMigratedRows = 0;

    std::uint64_t committedInstructions = 0;
    std::uint64_t measuredCycles = 0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;

    /** Total DRAM accesses (the Web Frontend channel analysis). */
    std::uint64_t
    totalMemAccesses() const
    {
        return memReads + memWrites;
    }
};

/**
 * One alone-run baseline covering a contiguous core range of a shared
 * run: cores [firstCore, firstCore + numCores) of the shared run are
 * measured against @p alone. The baseline run must expose either
 * exactly @p numCores per-core IPCs (part-isolated mix baselines, core
 * l of the range maps to baseline core l) or exactly one (single-core
 * alone run of a homogeneous preset, broadcast to every covered core).
 */
struct AloneBaselineMetrics
{
    std::uint32_t firstCore = 0;
    std::uint32_t numCores = 0;
    const MetricSet *alone = nullptr;
};

/**
 * Derive @p shared's slowdown/fairness block from alone-run baselines.
 * Every core of the shared run must be covered by exactly one
 * baseline, and both runs must carry per-core IPCs. Returns false
 * (leaving the fairness fields zeroed) when coverage or per-core data
 * is missing. Cores whose alone run committed nothing contribute a
 * slowdown of 1 and no weighted-speedup share; a core starved to zero
 * committed instructions in the *shared* run scores the largest
 * finite slowdown the window can attest to (as if it had committed
 * one instruction), so starvation inflates maxSlowdown instead of
 * masquerading as perfect fairness.
 */
bool deriveFairnessMetrics(MetricSet &shared,
                           const std::vector<AloneBaselineMetrics> &baselines);

} // namespace mcsim

#endif // CLOUDMC_SIM_METRICS_HH
