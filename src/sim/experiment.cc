#include "experiment.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "system.hh"

namespace mcsim {

ExperimentRunner::ExperimentRunner(std::string cachePath)
    : cachePath_(std::move(cachePath))
{
    if (cachePath_.empty()) {
        const char *env = std::getenv("CLOUDMC_CACHE");
        cachePath_ = env ? env : "cloudmc_results_cache.csv";
    }
    cachingEnabled_ = cachePath_ != "-";
    if (cachingEnabled_)
        loadCache();
}

std::uint64_t
ExperimentRunner::fastDivisor()
{
    const char *env = std::getenv("CLOUDMC_FAST");
    if (!env)
        return 1;
    const auto v = std::strtoull(env, nullptr, 10);
    return v >= 1 ? v : 1;
}

unsigned
ExperimentRunner::defaultThreads()
{
    if (const char *env = std::getenv("CLOUDMC_THREADS")) {
        const auto v = std::strtoul(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

namespace {

/** Key segment carrying the device + clock fingerprint (schema v3). */
constexpr const char *kDeviceKeyTag = "|dev=";

} // namespace

std::string
ExperimentRunner::configKey(WorkloadId workload, const SimConfig &cfg)
{
    std::ostringstream key;
    key << workloadAcronym(workload) << '|'
        << schedulerKindName(cfg.scheduler) << '|'
        << pagePolicyKindName(cfg.pagePolicy) << '|'
        << mappingSchemeName(cfg.mapping) << '|' << cfg.dram.channels
        << "ch|" << cfg.numCores << "c|" << cfg.warmupCoreCycles / 1000
        << '+' << cfg.measureCoreCycles / 1000 << "k|s" << cfg.seed
        << "|q" << cfg.schedulerParams.atlas.quantumCycles / 1000 << "|f"
        << fastDivisor();
    if (cfg.coreMlpOverride)
        key << "|mlp" << cfg.coreMlpOverride;
    // Schema v3: rows are keyed by the DRAM device and both clock
    // frequencies, so two devices (or a core-frequency sweep) can
    // never alias to one cached row.
    key << kDeviceKeyTag << cfg.deviceName << '@' << cfg.clocks.coreMhz
        << ':' << cfg.clocks.dramMhz;
    return key.str();
}

namespace {

/** The v1 record's 15 numeric CSV columns. */
constexpr std::size_t kCacheFieldsV1 = 15;
/** Schema v2 appends the read-latency percentiles (P50/P95/P99).
 *  Schema v3 keeps the v2 columns and extends the *key* with the
 *  device/clock segment; v1/v2 rows are migrated on load by tagging
 *  their keys with the only device those schemas could simulate (the
 *  DDR3-1600 baseline at stock clocks). */
constexpr std::size_t kCacheFieldsV2 = 18;

/**
 * Split one CSV line; accepts key + 15 fields (v1, written before the
 * percentiles were persisted — they load as 0) or key + 18 fields (v2).
 */
bool
parseCacheLine(const std::string &line, std::string &key, MetricSet &m)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(start));
            break;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
    if ((fields.size() != kCacheFieldsV1 + 1 &&
         fields.size() != kCacheFieldsV2 + 1) ||
        fields[0].empty()) {
        return false;
    }
    const std::size_t numFields = fields.size() - 1;

    double v[kCacheFieldsV2] = {};
    for (std::size_t i = 0; i < numFields; ++i) {
        const std::string &f = fields[i + 1];
        char *end = nullptr;
        v[i] = std::strtod(f.c_str(), &end);
        if (f.empty() || end != f.c_str() + f.size())
            return false;
    }

    key = fields[0];
    m = MetricSet{};
    m.userIpc = v[0];
    m.avgReadLatency = v[1];
    m.rowHitRatePct = v[2];
    m.l2Mpki = v[3];
    m.avgReadQueue = v[4];
    m.avgWriteQueue = v[5];
    m.bwUtilPct = v[6];
    m.singleAccessPct = v[7];
    m.committedInstructions = static_cast<std::uint64_t>(v[8]);
    m.measuredCycles = static_cast<std::uint64_t>(v[9]);
    m.memReads = static_cast<std::uint64_t>(v[10]);
    m.memWrites = static_cast<std::uint64_t>(v[11]);
    m.ipcDisparity = v[12];
    m.dramEnergyNj = v[13];
    m.dramAvgPowerMw = v[14];
    if (numFields == kCacheFieldsV2) {
        m.readLatencyP50 = v[15];
        m.readLatencyP95 = v[16];
        m.readLatencyP99 = v[17];
    }
    return true;
}

} // namespace

void
ExperimentRunner::loadCache()
{
    std::ifstream in(cachePath_);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        std::string key;
        MetricSet m;
        if (!parseCacheLine(line, key, m))
            continue;
        // Schema v1/v2 keys predate the device axis; everything they
        // recorded ran the DDR3-1600 baseline at stock clocks, so tag
        // them with that fingerprint instead of dropping the rows.
        if (key.find(kDeviceKeyTag) == std::string::npos)
            key += std::string(kDeviceKeyTag) + "DDR3-1600@2000:800";
        cache_[key] = m;
    }
}

void
ExperimentRunner::appendToCache(const std::string &key, const MetricSet &m)
{
    std::ostringstream rec;
    rec << key << ',' << m.userIpc << ',' << m.avgReadLatency << ','
        << m.rowHitRatePct << ',' << m.l2Mpki << ',' << m.avgReadQueue
        << ',' << m.avgWriteQueue << ',' << m.bwUtilPct << ','
        << m.singleAccessPct << ',' << m.committedInstructions << ','
        << m.measuredCycles << ',' << m.memReads << ',' << m.memWrites
        << ',' << m.ipcDisparity << ',' << m.dramEnergyNj << ','
        << m.dramAvgPowerMw << ',' << m.readLatencyP50 << ','
        << m.readLatencyP95 << ',' << m.readLatencyP99 << '\n';
    const std::string line = rec.str();

    // One fwrite on an O_APPEND stream keeps the record contiguous
    // even when several processes share the cache file.
    std::FILE *f = std::fopen(cachePath_.c_str(), "ae");
    if (!f)
        f = std::fopen(cachePath_.c_str(), "a");
    if (!f) {
        mc_warn("cannot append to results cache '", cachePath_, "'");
        return;
    }
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size())
        mc_warn("short write to results cache '", cachePath_, "'");
    std::fclose(f);
}

MetricSet
ExperimentRunner::simulate(WorkloadId workload, const SimConfig &cfg)
{
    SimConfig effective = cfg;
    const std::uint64_t divisor = fastDivisor();
    effective.warmupCoreCycles = cfg.warmupCoreCycles / divisor;
    effective.measureCoreCycles =
        std::max<std::uint64_t>(cfg.measureCoreCycles / divisor, 100'000);

    System system(effective, workloadPreset(workload));
    return system.run();
}

MetricSet
ExperimentRunner::simulatePoint(const Point &p)
{
    if (!p.makeGenerator)
        return simulate(p.workload, p.cfg);

    SimConfig effective = p.cfg;
    const std::uint64_t divisor = fastDivisor();
    effective.warmupCoreCycles = p.cfg.warmupCoreCycles / divisor;
    effective.measureCoreCycles = std::max<std::uint64_t>(
        p.cfg.measureCoreCycles / divisor, 100'000);

    const auto generator = p.makeGenerator();
    mc_assert(generator && p.customCores >= 1,
              "custom experiment point needs a generator and cores");
    System system(effective, *generator, p.customCores);
    return system.run();
}

MetricSet
ExperimentRunner::run(WorkloadId workload, const SimConfig &cfg)
{
    const std::string key = configKey(workload, cfg);
    if (cachingEnabled_) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++cacheHits_;
            return it->second;
        }
    }

    const MetricSet m = simulate(workload, cfg);

    std::lock_guard<std::mutex> lock(mu_);
    ++simulationsRun_;
    if (cachingEnabled_) {
        cache_[key] = m;
        appendToCache(key, m);
    }
    return m;
}

std::vector<MetricSet>
ExperimentRunner::runAll(const std::vector<Point> &points)
{
    return runAll(points, defaultThreads());
}

std::vector<MetricSet>
ExperimentRunner::runAll(const std::vector<Point> &points, unsigned threads)
{
    std::vector<MetricSet> out(points.size());

    // One job per simulation that must actually run. With caching on,
    // duplicate uncached keys collapse into one job and the repeats
    // resolve from the memo cache afterwards — exactly what a serial
    // run() loop would do (first occurrence simulates, the rest hit).
    struct Job
    {
        std::size_t pointIdx;
        std::string key;
    };
    std::vector<Job> jobs;
    std::vector<std::size_t> jobOf(points.size(), SIZE_MAX);

    {
        std::lock_guard<std::mutex> lock(mu_);
        std::map<std::string, std::size_t> pendingByKey;
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::string key =
                points[i].makeGenerator
                    ? points[i].customKey
                    : configKey(points[i].workload, points[i].cfg);
            // Keyless custom points are never memoized: each runs.
            if (!cachingEnabled_ || key.empty()) {
                jobOf[i] = jobs.size();
                jobs.push_back({i, std::move(key)});
                continue;
            }
            auto it = cache_.find(key);
            if (it != cache_.end()) {
                ++cacheHits_;
                out[i] = it->second;
                continue;
            }
            auto pending = pendingByKey.find(key);
            if (pending != pendingByKey.end()) {
                // Will hit the memo cache once its job completes.
                ++cacheHits_;
                jobOf[i] = pending->second;
                continue;
            }
            pendingByKey.emplace(key, jobs.size());
            jobOf[i] = jobs.size();
            jobs.push_back({i, std::move(key)});
        }
    }

    if (jobs.empty())
        return out;

    std::vector<MetricSet> jobResults(jobs.size());
    std::atomic<std::size_t> next{0};
    auto workerLoop = [&]() {
        while (true) {
            const std::size_t j =
                next.fetch_add(1, std::memory_order_relaxed);
            if (j >= jobs.size())
                return;
            const Point &p = points[jobs[j].pointIdx];
            const MetricSet m = simulatePoint(p);
            jobResults[j] = m;

            std::lock_guard<std::mutex> lock(mu_);
            ++simulationsRun_;
            if (cachingEnabled_ && !jobs[j].key.empty()) {
                cache_[jobs[j].key] = m;
                appendToCache(jobs[j].key, m);
            }
        }
    };

    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        threads >= 1 ? threads : 1, jobs.size()));
    if (workers <= 1) {
        workerLoop();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(workerLoop);
        for (auto &th : pool)
            th.join();
    }

    for (std::size_t i = 0; i < points.size(); ++i) {
        if (jobOf[i] != SIZE_MAX)
            out[i] = jobResults[jobOf[i]];
    }
    return out;
}

} // namespace mcsim
