#include "experiment.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "common/worker_pool.hh"
#include "system.hh"

namespace mcsim {

ExperimentRunner::ExperimentRunner(std::string cachePath)
    : cachePath_(std::move(cachePath))
{
    if (cachePath_.empty()) {
        const char *env = std::getenv("CLOUDMC_CACHE");
        cachePath_ = env ? env : "cloudmc_results_cache.csv";
    }
    cachingEnabled_ = cachePath_ != "-";
    if (cachingEnabled_)
        loadCache();
}

std::uint64_t
ExperimentRunner::fastDivisor()
{
    const char *env = std::getenv("CLOUDMC_FAST");
    if (!env)
        return 1;
    const auto v = std::strtoull(env, nullptr, 10);
    return v >= 1 ? v : 1;
}

unsigned
ExperimentRunner::defaultThreads()
{
    if (const char *env = std::getenv("CLOUDMC_THREADS")) {
        const auto v = std::strtoul(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

namespace {

/** Key segment carrying the device + clock fingerprint (schema v3). */
constexpr const char *kDeviceKeyTag = "|dev=";

/** Key segment carrying the bank-group fingerprint (schema v5):
 *  groups per rank plus the group-mapping option. */
constexpr const char *kBankGroupKeyTag = "|bg=";

/** Key segment carrying the memory-backend fingerprint (schema v6):
 *  "flat", or the stacked geometry ("st<vaults>v<banks>b", plus a
 *  trailing 'r' when dynamic remapping is on). */
constexpr const char *kBackendKeyTag = "|be=";

/** Prefix of the full-parameter hash segment (schema v4). */
constexpr const char *kParamsKeyTag = "|p";
constexpr std::size_t kParamsHashDigits = 16;

/** FNV-1a accumulator over the config fields the readable key omits. */
class ParamsHasher
{
  public:
    ParamsHasher &
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xFF;
            h_ *= 1099511628211ull;
        }
        return *this;
    }

    ParamsHasher &
    f64(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        return u64(bits);
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 1469598103934665603ull;
};

/**
 * Hash of every tunable the readable key segments do not spell out:
 * the full SchedulerParams set (the old key fingerprinted only the
 * ATLAS quantum, so STFM-alpha or TCM sweeps aliased to one row),
 * page-policy-affecting controller knobs, refresh, crossbar latency,
 * and the geometry/hierarchy/core dimensions a hand-modified config
 * could change without changing the device name.
 */
std::uint64_t
paramsHash(const SimConfig &cfg)
{
    ParamsHasher h;
    const SchedulerParams &sp = cfg.schedulerParams;
    h.u64(sp.parBs.batchingCap);
    h.u64(sp.atlas.quantumCycles)
        .f64(sp.atlas.alpha)
        .u64(sp.atlas.starvationCycles)
        .f64(sp.atlas.serviceUnitsPerCas);
    h.u64(sp.rl.numTables)
        .u64(sp.rl.tableSize)
        .f64(sp.rl.alpha)
        .f64(sp.rl.gamma)
        .f64(sp.rl.epsilon)
        .u64(sp.rl.exploreNoAction ? 1 : 0)
        .u64(sp.rl.starvationCycles)
        .u64(sp.rl.seed);
    h.u64(sp.tcm.quantumCycles)
        .u64(sp.tcm.shuffleCycles)
        .f64(sp.tcm.clusterFrac)
        .u64(sp.tcm.starvationCycles)
        .u64(sp.tcm.seed);
    h.f64(sp.stfm.alpha)
        .u64(sp.stfm.decayCycles)
        .f64(sp.stfm.decayFactor)
        .u64(sp.stfm.starvationCycles);
    h.u64(cfg.controller.writeDrainHigh)
        .u64(cfg.controller.writeDrainLow)
        .u64(cfg.controller.writeDrainIdle)
        .u64(cfg.controller.writeIdleDrainCycles)
        .u64(cfg.controller.forwardLatencyCycles);
    h.u64(cfg.xbarLatencyCycles).u64(cfg.refreshEnabled ? 1 : 0);
    h.u64(cfg.dram.ranksPerChannel)
        .u64(cfg.dram.banksPerRank)
        .u64(cfg.dram.rowsPerBank)
        .u64(cfg.dram.rowBufferBytes)
        .u64(cfg.dram.blockBytes);
    for (const CacheConfig &c :
         {cfg.hierarchy.l1i, cfg.hierarchy.l1d, cfg.hierarchy.l2}) {
        h.u64(c.sizeBytes).u64(c.ways).u64(c.blockBytes);
    }
    h.u64(cfg.hierarchy.l2Banks);
    h.u64(cfg.core.mlpWindow)
        .u64(cfg.core.storeBufferEntries)
        .u64(cfg.core.l2HitLatency)
        .u64(cfg.core.instrsPerFetchBlock);
    // Schema v6 extends the hash *conditionally*: the stacked-backend
    // and TSV fields are folded in only when they are in play, so every
    // flat-backend hash is byte-identical to the v5 hash and the v5
    // cache rows stay recallable without a migration pass.
    if (cfg.timings.tTSV != 0)
        h.u64(cfg.timings.tTSV);
    if (cfg.backend == MemBackendKind::StackedDram) {
        h.u64(cfg.dram.vaultsPerStack);
        h.u64(cfg.remap.enabled ? 1 : 0)
            .u64(cfg.remap.windowAccesses)
            .f64(cfg.remap.hotFactor)
            .u64(cfg.remap.migrationRows)
            .u64(cfg.remap.migrationCyclesPerRow);
    }
    // Schema v7: the tiered-memory knobs, again folded in only when
    // the tier is enabled so every non-tiered hash (and therefore every
    // v6 key) stays byte-identical.
    if (cfg.tier.enabled) {
        h.u64(static_cast<std::uint64_t>(cfg.tier.policy))
            .u64(cfg.tier.slowLatencyDramCycles)
            .u64(cfg.tier.slowBwPct)
            .u64(cfg.tier.fastCapacityPct)
            .u64(cfg.tier.monitorSampleEvery)
            .u64(cfg.tier.monitorWindowSamples)
            .u64(cfg.tier.monitorMinRegions)
            .u64(cfg.tier.monitorMaxRegions)
            .f64(cfg.tier.hotFactor)
            .u64(cfg.tier.migrationCyclesPerRow);
    }
    return h.value();
}

/** The "|p<16 hex digits>" segment for @p cfg. */
std::string
paramsSegment(const SimConfig &cfg)
{
    char buf[2 + kParamsHashDigits + 1];
    std::snprintf(buf, sizeof(buf), "%s%016llx", kParamsKeyTag,
                  static_cast<unsigned long long>(paramsHash(cfg)));
    return buf;
}

/** The "|bg=<groups><i|p>" segment for @p cfg (schema v5). On a
 *  single-group device the two placements are the same physical
 *  layout, so the segment normalizes to 'i' and a sweep over the
 *  group-mapping axis recalls one shared row instead of simulating
 *  the identical point twice. */
std::string
bankGroupSegment(const SimConfig &cfg)
{
    std::string seg = kBankGroupKeyTag;
    seg += std::to_string(cfg.dram.bankGroupsPerRank);
    const bool packed = cfg.dram.bankGroupsPerRank > 1 &&
                        cfg.bankGroupMapping ==
                            BankGroupMapping::GroupPacked;
    seg += packed ? 'p' : 'i';
    return seg;
}

/** The "|be=..." segment for @p cfg (schema v6; schema v7 appends a
 *  "+t<fast-capacity-pct><policy initial>" suffix when the tiered
 *  composition is enabled, so a tiered run never aliases the plain
 *  fast-tier row and non-tiered keys stay byte-identical to v6). */
std::string
backendSegment(const SimConfig &cfg)
{
    std::string seg = kBackendKeyTag;
    if (cfg.backend == MemBackendKind::StackedDram) {
        seg += "st";
        seg += std::to_string(cfg.dram.vaultsPerStack);
        seg += 'v';
        seg += std::to_string(cfg.dram.banksPerRank);
        seg += 'b';
        if (cfg.remap.enabled)
            seg += 'r';
    } else {
        seg += "flat";
    }
    if (cfg.tier.enabled) {
        seg += "+t";
        seg += std::to_string(cfg.tier.fastCapacityPct);
        seg += tierPolicyName(cfg.tier.policy)[0]; // s / h / a.
    }
    return seg;
}

/** Does @p key already end with a params-hash segment? */
bool
hasParamsSegment(const std::string &key)
{
    const std::size_t segLen = 2 + kParamsHashDigits;
    if (key.size() < segLen)
        return false;
    const std::size_t at = key.size() - segLen;
    if (key.compare(at, 2, kParamsKeyTag) != 0)
        return false;
    for (std::size_t i = at + 2; i < key.size(); ++i) {
        const char c = key[i];
        if (!std::isxdigit(static_cast<unsigned char>(c)) ||
            std::isupper(static_cast<unsigned char>(c))) {
            return false;
        }
    }
    return true;
}

} // namespace

std::string
ExperimentRunner::configKey(WorkloadId workload, const SimConfig &cfg)
{
    std::ostringstream key;
    key << workloadAcronym(workload) << '|'
        << schedulerKindName(cfg.scheduler) << '|'
        << pagePolicyKindName(cfg.pagePolicy) << '|'
        << mappingSchemeName(cfg.mapping) << '|' << cfg.dram.channels
        << "ch|" << cfg.numCores << "c|" << cfg.warmupCoreCycles / 1000
        << '+' << cfg.measureCoreCycles / 1000 << "k|s" << cfg.seed
        << "|q" << cfg.schedulerParams.atlas.quantumCycles / 1000 << "|f"
        << fastDivisor();
    if (cfg.coreMlpOverride)
        key << "|mlp" << cfg.coreMlpOverride;
    // Schema v3: rows are keyed by the DRAM device and both clock
    // frequencies, so two devices (or a core-frequency sweep) can
    // never alias to one cached row.
    key << kDeviceKeyTag << cfg.deviceName << '@' << cfg.clocks.coreMhz
        << ':' << cfg.clocks.dramMhz;
    // Schema v5: the bank-group axis (groups per rank + the group-
    // mapping option), so a grouped-timing run never aliases a row
    // simulated under the old single-tCCD model or the other mapping.
    key << bankGroupSegment(cfg);
    // Schema v6: the memory-backend axis (flat vs. stacked vault
    // geometry, with the remap flag), so a stacked-backend run never
    // aliases a row simulated under the flat JEDEC model.
    key << backendSegment(cfg);
    // Schema v4: a hash of the full parameter set, so sweeps over any
    // scheduler/controller/geometry tunable the readable segments omit
    // can never alias either.
    key << paramsSegment(cfg);
    return key.str();
}

std::string
ExperimentRunner::pointKey(const Point &p)
{
    if (p.makeGenerator)
        return p.customKey; // Empty: never memoized.
    if (!p.customKey.empty())
        return p.customKey;
    std::string key = configKey(p.workload, p.cfg);
    if (p.presetCores) {
        key = "ALONE|" + std::to_string(p.presetCores) + "c|" + key;
    }
    return key;
}

namespace {

/** The v1 record's 15 numeric CSV columns. */
constexpr std::size_t kCacheFieldsV1 = 15;
/** Schema v2 appends the read-latency percentiles (P50/P95/P99).
 *  Schema v3 keeps the v2 columns and extends the *key* with the
 *  device/clock segment; v1/v2 rows are migrated on load by tagging
 *  their keys with the only device those schemas could simulate (the
 *  DDR3-1600 baseline at stock clocks). */
constexpr std::size_t kCacheFieldsV2 = 18;
/** Schema v4 appends the fairness scalars (weighted speedup, harmonic
 *  speedup, max slowdown) plus two ';'-joined per-core lists (IPC and
 *  slowdown, either possibly empty), and extends the *key* with the
 *  full-parameter hash segment; older keys are migrated on load by
 *  tagging them with the baseline parameter set (the only one the
 *  benches swept before the hash existed — rows written by older
 *  builds with hand-tuned parameters were aliased then and stay
 *  indistinguishable, so they migrate as baseline rows too). */
constexpr std::size_t kCacheScalarsV4 = 21;
constexpr std::size_t kCacheFieldsV4 = 23;
/** Schema v5 appends the same-bank-group CAS percentage column and
 *  extends the *key* with the bank-group segment; older keys are
 *  migrated on load by tagging them with the single-group fingerprint
 *  ("|bg=1i") — the only timing model those schemas could simulate. */
constexpr std::size_t kCacheFieldsV5 = 24;
/** Schema v6 appends the stacked-backend columns (vault-queue
 *  imbalance, the two remap-migration counters, and the ';'-joined
 *  per-vault read-queue list — all zeros/empty on flat rows) and
 *  extends the *key* with the backend segment; older keys are migrated
 *  on load by tagging them with the flat fingerprint ("|be=flat") —
 *  the only backend those schemas could simulate. */
constexpr std::size_t kCacheFieldsV6 = 28;
/** Schema v7 appends the tiered-backend columns (fast-tier hit
 *  percent, slow-tier read-latency P99, and the two tier-migration
 *  counters — all zeros on non-tiered rows) and extends the *key*'s
 *  backend segment with a "+t..." suffix on tiered configs only, so
 *  v6 keys and rows need no migration at all: a v6 line parses as a
 *  v7 row whose tier columns are zero. */
constexpr std::size_t kCacheFieldsV7 = 32;

/** Parse a ';'-joined list of doubles; empty text is an empty list. */
bool
parseDoubleList(const std::string &text, std::vector<double> &out)
{
    out.clear();
    if (text.empty())
        return true;
    std::size_t start = 0;
    while (true) {
        const std::size_t semi = text.find(';', start);
        const std::string item =
            semi == std::string::npos
                ? text.substr(start)
                : text.substr(start, semi - start);
        char *end = nullptr;
        const double v = std::strtod(item.c_str(), &end);
        if (item.empty() || end != item.c_str() + item.size())
            return false;
        out.push_back(v);
        if (semi == std::string::npos)
            return true;
        start = semi + 1;
    }
}

/**
 * Split one CSV line; accepts key + 15 fields (v1, written before the
 * percentiles were persisted — they load as 0), key + 18 fields
 * (v2/v3), key + 23 fields (v4, with the fairness columns), key + 24
 * fields (v5), key + 28 fields (v6, with the stacked-backend
 * columns), or key + 32 fields (v7, with the tiered-backend columns).
 */
bool
parseCacheLine(const std::string &line, std::string &key, MetricSet &m)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(start));
            break;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
    if ((fields.size() != kCacheFieldsV1 + 1 &&
         fields.size() != kCacheFieldsV2 + 1 &&
         fields.size() != kCacheFieldsV4 + 1 &&
         fields.size() != kCacheFieldsV5 + 1 &&
         fields.size() != kCacheFieldsV6 + 1 &&
         fields.size() != kCacheFieldsV7 + 1) ||
        fields[0].empty()) {
        return false;
    }
    const std::size_t numFields = fields.size() - 1;
    const std::size_t numScalars =
        numFields > kCacheScalarsV4 ? kCacheScalarsV4 : numFields;

    double v[kCacheScalarsV4] = {};
    for (std::size_t i = 0; i < numScalars; ++i) {
        const std::string &f = fields[i + 1];
        char *end = nullptr;
        v[i] = std::strtod(f.c_str(), &end);
        if (f.empty() || end != f.c_str() + f.size())
            return false;
    }

    key = fields[0];
    m = MetricSet{};
    m.userIpc = v[0];
    m.avgReadLatency = v[1];
    m.rowHitRatePct = v[2];
    m.l2Mpki = v[3];
    m.avgReadQueue = v[4];
    m.avgWriteQueue = v[5];
    m.bwUtilPct = v[6];
    m.singleAccessPct = v[7];
    m.committedInstructions = static_cast<std::uint64_t>(v[8]);
    m.measuredCycles = static_cast<std::uint64_t>(v[9]);
    m.memReads = static_cast<std::uint64_t>(v[10]);
    m.memWrites = static_cast<std::uint64_t>(v[11]);
    m.ipcDisparity = v[12];
    m.dramEnergyNj = v[13];
    m.dramAvgPowerMw = v[14];
    if (numFields >= kCacheFieldsV2) {
        m.readLatencyP50 = v[15];
        m.readLatencyP95 = v[16];
        m.readLatencyP99 = v[17];
    }
    if (numFields >= kCacheFieldsV4) {
        m.weightedSpeedup = v[18];
        m.harmonicSpeedup = v[19];
        m.maxSlowdown = v[20];
        if (!parseDoubleList(fields[1 + 21], m.perCoreIpc) ||
            !parseDoubleList(fields[1 + 22], m.perCoreSlowdown)) {
            return false;
        }
    }
    if (numFields >= kCacheFieldsV5) {
        const std::string &f = fields[1 + 23];
        char *end = nullptr;
        m.sameGroupCasPct = std::strtod(f.c_str(), &end);
        if (f.empty() || end != f.c_str() + f.size())
            return false;
    }
    if (numFields >= kCacheFieldsV6) {
        double scalars[3] = {};
        for (std::size_t i = 0; i < 3; ++i) {
            const std::string &f = fields[1 + 24 + i];
            char *end = nullptr;
            scalars[i] = std::strtod(f.c_str(), &end);
            if (f.empty() || end != f.c_str() + f.size())
                return false;
        }
        m.vaultQueueImbalance = scalars[0];
        m.remapMigrations = static_cast<std::uint64_t>(scalars[1]);
        m.remapMigratedRows = static_cast<std::uint64_t>(scalars[2]);
        if (!parseDoubleList(fields[1 + 27], m.perVaultReadQueue))
            return false;
    }
    if (numFields >= kCacheFieldsV7) {
        double scalars[4] = {};
        for (std::size_t i = 0; i < 4; ++i) {
            const std::string &f = fields[1 + 28 + i];
            char *end = nullptr;
            scalars[i] = std::strtod(f.c_str(), &end);
            if (f.empty() || end != f.c_str() + f.size())
                return false;
        }
        m.fastTierHitPct = scalars[0];
        m.slowTierReadLatencyP99 = scalars[1];
        m.tierMigrations = static_cast<std::uint64_t>(scalars[2]);
        m.tierMigratedRows = static_cast<std::uint64_t>(scalars[3]);
    }
    return true;
}

/** Join doubles with ';' for one CSV field. */
std::string
joinDoubleList(const std::vector<double> &values)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < values.size(); ++i)
        out << (i ? ";" : "") << values[i];
    return out.str();
}

} // namespace

void
ExperimentRunner::loadCache()
{
    std::ifstream in(cachePath_);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        std::string key;
        MetricSet m;
        if (!parseCacheLine(line, key, m))
            continue;
        // Schema v1/v2 keys predate the device axis; everything they
        // recorded ran the DDR3-1600 baseline at stock clocks, so tag
        // them with that fingerprint instead of dropping the rows.
        if (key.find(kDeviceKeyTag) == std::string::npos)
            key += std::string(kDeviceKeyTag) + "DDR3-1600@2000:800";
        // Schema v1-v4 keys predate the bank-group axis; everything
        // they recorded ran the single-tCCD model, i.e. one bank group
        // under the (then-only) interleaved placement. Insert that
        // fingerprint before any trailing params-hash segment so the
        // migrated key matches configKey()'s segment order.
        if (key.find(kBankGroupKeyTag) == std::string::npos) {
            const std::string bgSeg =
                std::string(kBankGroupKeyTag) + "1i";
            if (hasParamsSegment(key))
                key.insert(key.size() - (2 + kParamsHashDigits), bgSeg);
            else
                key += bgSeg;
        }
        // Schema v1-v5 keys predate the backend axis; everything they
        // recorded ran the flat JEDEC model (the stacked backend did
        // not exist). Insert that fingerprint before any trailing
        // params-hash segment, matching configKey()'s segment order.
        if (key.find(kBackendKeyTag) == std::string::npos) {
            const std::string beSeg = std::string(kBackendKeyTag) + "flat";
            if (hasParamsSegment(key))
                key.insert(key.size() - (2 + kParamsHashDigits), beSeg);
            else
                key += beSeg;
        }
        // Schema v1-v3 keys predate the full-parameter hash; the only
        // parameter set they could name unambiguously is the baseline
        // one, so migrate them to its fingerprint.
        if (!hasParamsSegment(key)) {
            static const std::string baselineSeg =
                paramsSegment(SimConfig::baseline());
            key += baselineSeg;
        }
        cache_[key] = m;
    }
}

void
ExperimentRunner::appendToCache(const std::string &key, const MetricSet &m)
{
    std::ostringstream rec;
    rec << key << ',' << m.userIpc << ',' << m.avgReadLatency << ','
        << m.rowHitRatePct << ',' << m.l2Mpki << ',' << m.avgReadQueue
        << ',' << m.avgWriteQueue << ',' << m.bwUtilPct << ','
        << m.singleAccessPct << ',' << m.committedInstructions << ','
        << m.measuredCycles << ',' << m.memReads << ',' << m.memWrites
        << ',' << m.ipcDisparity << ',' << m.dramEnergyNj << ','
        << m.dramAvgPowerMw << ',' << m.readLatencyP50 << ','
        << m.readLatencyP95 << ',' << m.readLatencyP99 << ','
        << m.weightedSpeedup << ',' << m.harmonicSpeedup << ','
        << m.maxSlowdown << ',' << joinDoubleList(m.perCoreIpc) << ','
        << joinDoubleList(m.perCoreSlowdown) << ',' << m.sameGroupCasPct
        << ',' << m.vaultQueueImbalance << ',' << m.remapMigrations
        << ',' << m.remapMigratedRows << ','
        << joinDoubleList(m.perVaultReadQueue) << ','
        << m.fastTierHitPct << ',' << m.slowTierReadLatencyP99 << ','
        << m.tierMigrations << ',' << m.tierMigratedRows << '\n';
    const std::string line = rec.str();

    // One fwrite on an O_APPEND stream keeps the record contiguous
    // even when several processes share the cache file.
    std::FILE *f = std::fopen(cachePath_.c_str(), "ae");
    if (!f)
        f = std::fopen(cachePath_.c_str(), "a");
    if (!f) {
        mc_warn("cannot append to results cache '", cachePath_, "'");
        return;
    }
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size())
        mc_warn("short write to results cache '", cachePath_, "'");
    std::fclose(f);
}

MetricSet
ExperimentRunner::simulate(WorkloadId workload, const SimConfig &cfg,
                           std::uint32_t presetCores,
                           std::uint32_t kernelThreads)
{
    SimConfig effective = cfg;
    const std::uint64_t divisor = fastDivisor();
    effective.warmupCoreCycles = cfg.warmupCoreCycles / divisor;
    effective.measureCoreCycles =
        std::max<std::uint64_t>(cfg.measureCoreCycles / divisor, 100'000);
    if (kernelThreads)
        effective.kernelThreads = kernelThreads;

    WorkloadParams params = workloadPreset(workload);
    if (presetCores)
        params.cores = presetCores;
    System system(effective, params);
    return system.run();
}

MetricSet
ExperimentRunner::simulatePoint(const Point &p, std::uint32_t kernelThreads)
{
    if (!p.makeGenerator)
        return simulate(p.workload, p.cfg, p.presetCores, kernelThreads);

    SimConfig effective = p.cfg;
    const std::uint64_t divisor = fastDivisor();
    effective.warmupCoreCycles = p.cfg.warmupCoreCycles / divisor;
    effective.measureCoreCycles = std::max<std::uint64_t>(
        p.cfg.measureCoreCycles / divisor, 100'000);
    if (kernelThreads)
        effective.kernelThreads = kernelThreads;

    const auto generator = p.makeGenerator();
    mc_assert(generator && p.customCores >= 1,
              "custom experiment point needs a generator and cores");
    System system(effective, *generator, p.customCores);
    return system.run();
}

ExperimentRunner::ThreadSplit
ExperimentRunner::planThreadSplit(std::size_t jobs, unsigned threads)
{
    if (threads <= 1 || jobs == 0)
        return {1, 1};
    if (jobs >= threads)
        return {threads, 1};
    // Fewer points than threads: run every point concurrently and
    // hand each the same share of the leftover budget. The product
    // sweepWorkers * shardThreads never exceeds the budget.
    const unsigned sweep = static_cast<unsigned>(jobs);
    return {sweep, threads / sweep};
}

void
ExperimentRunner::attachAloneBaseline(Point &p)
{
    mc_assert(!p.makeGenerator,
              "attachAloneBaseline handles preset points only; build "
              "custom points' baselines explicitly");
    Point::AloneBaseline b;
    b.firstCore = 0;
    b.numCores =
        p.presetCores ? p.presetCores : workloadPreset(p.workload).cores;
    b.run.workload = p.workload;
    b.run.cfg = p.cfg;
    b.run.presetCores = 1;
    p.baselines.clear();
    p.baselines.push_back(std::move(b));
}

ExperimentRunner::Point
ExperimentRunner::mixedFairnessPoint(const std::vector<MixPart> &parts,
                                     const SimConfig &cfg,
                                     Addr addressSpace,
                                     std::uint64_t seedSalt)
{
    mc_assert(!parts.empty(), "a mixed point needs at least one part");
    Point p;
    p.cfg = cfg;
    const std::vector<MixPart> partsCopy = parts;
    p.makeGenerator = [partsCopy, addressSpace, seedSalt] {
        return std::make_unique<MixedWorkload>(partsCopy, addressSpace,
                                               seedSalt);
    };

    // The key names every part (the generator's full identity) plus
    // the configuration fingerprint; the acronym slot of configKey()
    // is irrelevant for a custom generator, so reuse the first part's.
    std::ostringstream key;
    key << "MIX|";
    std::uint32_t firstCore = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        key << (i ? "+" : "") << workloadAcronym(parts[i].workload) << ':'
            << parts[i].cores;

        Point::AloneBaseline b;
        b.firstCore = firstCore;
        b.numCores = parts[i].cores;
        b.run.workload = parts[i].workload;
        b.run.cfg = cfg;
        b.run.presetCores = parts[i].cores;
        p.baselines.push_back(std::move(b));
        firstCore += parts[i].cores;
    }
    key << "|as" << (addressSpace >> 20) << "m|salt" << seedSalt << '|'
        << configKey(parts.front().workload, cfg);
    p.customKey = key.str();
    p.customCores = firstCore;
    return p;
}

MetricSet
ExperimentRunner::run(WorkloadId workload, const SimConfig &cfg)
{
    const std::string key = configKey(workload, cfg);
    if (cachingEnabled_) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++cacheHits_;
            return it->second;
        }
    }

    const MetricSet m = simulate(workload, cfg);

    std::lock_guard<std::mutex> lock(mu_);
    ++simulationsRun_;
    if (cachingEnabled_) {
        cache_[key] = m;
        appendToCache(key, m);
    }
    return m;
}

std::vector<MetricSet>
ExperimentRunner::runAll(const std::vector<Point> &points)
{
    return runAll(points, defaultThreads());
}

std::vector<MetricSet>
ExperimentRunner::runAll(const std::vector<Point> &points, unsigned threads)
{
    // Work list: the caller's points followed by every alone-run
    // baseline they carry. Baselines run through the same worker pool
    // and dedup/memoize like any other point: duplicate points in one
    // batch and repeated sweeps across invocations share baseline
    // simulations via the cache. (Each scheduler still runs its own
    // baseline — the alone run deliberately keeps the shared run's
    // full configuration, scheduler included.)
    struct WorkItem
    {
        const Point *point;
        /** The result must carry per-core IPCs (fairness needs them);
         *  a cached pre-v4 row without them is treated as a miss. */
        bool needPerCore;
        /** Fairness point: its CSV row is appended after derivation so
         *  the on-disk cache carries the fairness columns. */
        bool deferAppend;
    };
    std::vector<WorkItem> work;
    work.reserve(points.size());
    std::vector<std::vector<std::size_t>> baselineAt(points.size());
    for (const Point &p : points) {
        const bool fair = !p.baselines.empty();
        work.push_back({&p, fair, fair});
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
        for (const Point::AloneBaseline &b : points[i].baselines) {
            mc_assert(b.run.baselines.empty(),
                      "baseline runs must not carry baselines");
            baselineAt[i].push_back(work.size());
            work.push_back({&b.run, true, false});
        }
    }

    std::vector<MetricSet> res(work.size());

    // One job per simulation that must actually run. With caching on,
    // duplicate uncached keys collapse into one job and the repeats
    // resolve from the memo cache afterwards — exactly what a serial
    // run() loop would do (first occurrence simulates, the rest hit).
    struct Job
    {
        std::size_t workIdx;
        std::string key;
        bool deferAppend;
    };
    std::vector<Job> jobs;
    std::vector<std::size_t> jobOf(work.size(), SIZE_MAX);

    {
        std::lock_guard<std::mutex> lock(mu_);
        std::map<std::string, std::size_t> pendingByKey;
        for (std::size_t i = 0; i < work.size(); ++i) {
            std::string key = pointKey(*work[i].point);
            // Keyless custom points are never memoized: each runs.
            if (!cachingEnabled_ || key.empty()) {
                jobOf[i] = jobs.size();
                jobs.push_back({i, std::move(key), work[i].deferAppend});
                continue;
            }
            auto it = cache_.find(key);
            if (it != cache_.end() &&
                !(work[i].needPerCore && it->second.perCoreIpc.empty())) {
                ++cacheHits_;
                res[i] = it->second;
                continue;
            }
            auto pending = pendingByKey.find(key);
            if (pending != pendingByKey.end()) {
                // Will hit the memo cache once its job completes.
                ++cacheHits_;
                jobOf[i] = pending->second;
                continue;
            }
            pendingByKey.emplace(key, jobs.size());
            jobOf[i] = jobs.size();
            jobs.push_back({i, std::move(key), work[i].deferAppend});
        }
    }

    if (!jobs.empty()) {
        // One budget feeds both parallelism layers: sweep workers
        // here, epoch shards inside each simulation. The split keeps
        // their product within `threads` so the batch never runs more
        // runnable threads than the caller budgeted for.
        const ThreadSplit split = planThreadSplit(jobs.size(), threads);
        std::vector<MetricSet> jobResults(jobs.size());
        std::atomic<std::size_t> next{0};
        auto workerLoop = [&]() {
            while (true) {
                const std::size_t j =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (j >= jobs.size())
                    return;
                const Point &p = *work[jobs[j].workIdx].point;
                const MetricSet m = simulatePoint(p, split.shardThreads);
                jobResults[j] = m;

                std::lock_guard<std::mutex> lock(mu_);
                ++simulationsRun_;
                if (cachingEnabled_ && !jobs[j].key.empty()) {
                    cache_[jobs[j].key] = m;
                    if (!jobs[j].deferAppend)
                        appendToCache(jobs[j].key, m);
                }
            }
        };

        if (split.sweepWorkers <= 1) {
            workerLoop();
        } else {
            WorkerPool pool(split.sweepWorkers - 1);
            pool.run(split.sweepWorkers,
                     [&](unsigned) { workerLoop(); });
        }

        for (std::size_t i = 0; i < work.size(); ++i) {
            if (jobOf[i] != SIZE_MAX)
                res[i] = jobResults[jobOf[i]];
        }
    }

    // Derive the slowdown/fairness block of every point that carries
    // baselines, then persist the enriched row (once per key: a row
    // already carrying fairness columns is left alone).
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        if (p.baselines.empty())
            continue;
        std::vector<AloneBaselineMetrics> alone;
        alone.reserve(p.baselines.size());
        for (std::size_t j = 0; j < p.baselines.size(); ++j) {
            alone.push_back({p.baselines[j].firstCore,
                             p.baselines[j].numCores,
                             &res[baselineAt[i][j]]});
        }
        if (!deriveFairnessMetrics(res[i], alone)) {
            mc_warn("alone-run baselines of point ", i,
                    " do not cover its cores; fairness metrics stay 0");
        }
        const std::string key = pointKey(p);
        if (cachingEnabled_ && !key.empty()) {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = cache_.find(key);
            if (it == cache_.end() || !it->second.hasFairness()) {
                cache_[key] = res[i];
                appendToCache(key, res[i]);
            }
        }
    }

    res.resize(points.size());
    return res;
}

} // namespace mcsim
