#include "experiment.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "system.hh"

namespace mcsim {

ExperimentRunner::ExperimentRunner(std::string cachePath)
    : cachePath_(std::move(cachePath))
{
    if (cachePath_.empty()) {
        const char *env = std::getenv("CLOUDMC_CACHE");
        cachePath_ = env ? env : "cloudmc_results_cache.csv";
    }
    if (cachePath_ != "-")
        loadCache();
}

std::uint64_t
ExperimentRunner::fastDivisor()
{
    const char *env = std::getenv("CLOUDMC_FAST");
    if (!env)
        return 1;
    const auto v = std::strtoull(env, nullptr, 10);
    return v >= 1 ? v : 1;
}

std::string
ExperimentRunner::configKey(WorkloadId workload, const SimConfig &cfg)
{
    std::ostringstream key;
    key << workloadAcronym(workload) << '|'
        << schedulerKindName(cfg.scheduler) << '|'
        << pagePolicyKindName(cfg.pagePolicy) << '|'
        << mappingSchemeName(cfg.mapping) << '|' << cfg.dram.channels
        << "ch|" << cfg.numCores << "c|" << cfg.warmupCoreCycles / 1000
        << '+' << cfg.measureCoreCycles / 1000 << "k|s" << cfg.seed
        << "|q" << cfg.schedulerParams.atlas.quantumCycles / 1000 << "|f"
        << fastDivisor();
    if (cfg.coreMlpOverride)
        key << "|mlp" << cfg.coreMlpOverride;
    return key.str();
}

void
ExperimentRunner::loadCache()
{
    std::ifstream in(cachePath_);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!std::getline(ls, key, ','))
            continue;
        MetricSet m;
        char comma;
        ls >> m.userIpc >> comma >> m.avgReadLatency >> comma >>
            m.rowHitRatePct >> comma >> m.l2Mpki >> comma >>
            m.avgReadQueue >> comma >> m.avgWriteQueue >> comma >>
            m.bwUtilPct >> comma >> m.singleAccessPct >> comma >>
            m.committedInstructions >> comma >> m.measuredCycles >>
            comma >> m.memReads >> comma >> m.memWrites >> comma >>
            m.ipcDisparity >> comma >> m.dramEnergyNj >> comma >>
            m.dramAvgPowerMw;
        if (ls)
            cache_[key] = m;
    }
}

void
ExperimentRunner::appendToCache(const std::string &key, const MetricSet &m)
{
    std::ofstream out(cachePath_, std::ios::app);
    if (!out) {
        mc_warn("cannot append to results cache '", cachePath_, "'");
        return;
    }
    out << key << ',' << m.userIpc << ',' << m.avgReadLatency << ','
        << m.rowHitRatePct << ',' << m.l2Mpki << ',' << m.avgReadQueue
        << ',' << m.avgWriteQueue << ',' << m.bwUtilPct << ','
        << m.singleAccessPct << ',' << m.committedInstructions << ','
        << m.measuredCycles << ',' << m.memReads << ',' << m.memWrites
        << ',' << m.ipcDisparity << ',' << m.dramEnergyNj << ','
        << m.dramAvgPowerMw << '\n';
}

MetricSet
ExperimentRunner::run(WorkloadId workload, const SimConfig &cfg)
{
    const std::string key = configKey(workload, cfg);
    if (cachePath_ != "-") {
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++cacheHits_;
            return it->second;
        }
    }

    SimConfig effective = cfg;
    const std::uint64_t divisor = fastDivisor();
    effective.warmupCoreCycles = cfg.warmupCoreCycles / divisor;
    effective.measureCoreCycles =
        std::max<std::uint64_t>(cfg.measureCoreCycles / divisor, 100'000);

    System system(effective, workloadPreset(workload));
    const MetricSet m = system.run();
    ++simulationsRun_;

    if (cachePath_ != "-") {
        cache_[key] = m;
        appendToCache(key, m);
    }
    return m;
}

} // namespace mcsim
