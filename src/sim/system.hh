/**
 * @file
 * System: assembles cores, caches, crossbar links, memory controllers
 * and DRAM into one simulated scale-out pod and runs the clock.
 *
 * Clocking: the tick grid comes from the SimConfig's ClockDomains.
 * Cores and the cache side step every clocks.ticksPerCore ticks;
 * controllers and DRAM step every clocks.ticksPerDram ticks (the
 * paper's baseline: 250 ps ticks, ratios 2 and 5 for 2 GHz cores over
 * DDR3-1600). run() interleaves the two domains on the common grid.
 *
 * The clock is event-scheduled: advance() walks the clock-domain
 * boundaries directly (any ratio; the boundary pattern repeats every
 * LCM of the two periods) and consults each component's next-event
 * report — blocked cores, crossbar latch ready times, the IO engine's
 * next issue tick, and each controller's tick() return value — to
 * fast-forward now_ across provably idle stretches. Skipped work is
 * accounted lazily (Core::catchUpTo) or is a true no-op, so results
 * are bit-identical to the per-tick reference loop, which is kept
 * behind useReferenceKernel(true) as the golden model for tests.
 *
 * With SimConfig::kernelThreads > 1 the event kernel itself runs
 * epoch-sharded across worker threads: the core cluster (cores +
 * shared cache hierarchy + batch execution) forms one shard on the
 * calling thread, the per-channel memory controllers are distributed
 * over pool workers, and all shards advance in lockstep epochs no
 * longer than the minimum crossbar latency. Cross-shard traffic is
 * exchanged at the epoch barrier through double-buffered staged
 * queues and replayed in the serial kernel's exact order, so metrics,
 * DRAM command traces and fairness scalars are bit-identical to the
 * serial event kernel at any thread count.
 */

#ifndef CLOUDMC_SIM_SYSTEM_HH
#define CLOUDMC_SIM_SYSTEM_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "common/worker_pool.hh"
#include "cpu/core.hh"
#include "cpu/crossbar.hh"
#include "cpu/hierarchy.hh"
#include "mem/backend.hh"
#include "mem/mem_controller.hh"
#include "metrics.hh"
#include "sim_config.hh"
#include "workload/synthetic.hh"

namespace mcsim {

/**
 * Event-kernel execution counters: how much stepping the idle-skip
 * machinery actually avoided. Feeds the bench-layer throughput meter.
 */
struct KernelStats
{
    std::uint64_t coreStepsRun = 0;  ///< Core-domain boundaries stepped.
    // detlint-allow(raw-tick): counts tick() calls, not time
    std::uint64_t coreTicksRun = 0;  ///< Individual Core::tick calls.
    std::uint64_t memStepsRun = 0;   ///< DRAM-domain boundaries stepped.
    // detlint-allow(raw-tick): counts tick() calls, not time
    std::uint64_t ctlTicksRun = 0;   ///< MemController::tick calls.
    std::uint64_t coreBatchRuns = 0; ///< runBatch() calls that advanced.
    // detlint-allow(raw-tick): counts cycles executed, not time
    std::uint64_t coreCyclesBatched = 0; ///< Core cycles run in batches.
};

/** The whole simulated machine. */
class System
{
  public:
    /** Build a system running the given synthetic workload preset. */
    System(const SimConfig &cfg, const WorkloadParams &workload);

    /**
     * Build a system around an externally-owned generator (e.g. trace
     * replay). @p ioParams may still describe a DMA engine.
     */
    System(const SimConfig &cfg, WorkloadGenerator &generator,
           std::uint32_t numCores);

    ~System();
    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Warm up, measure, and return the collected metrics. */
    MetricSet run();

    /** Advance the clock by @p coreCycles (for tests / custom loops). */
    void advance(std::uint64_t coreCycles);

    /**
     * Run the original tick-by-tick loop instead of the event kernel:
     * every core and controller steps on every cycle of its domain.
     * Slow; exists as the golden reference the equivalence tests pit
     * the event kernel against.
     */
    void useReferenceKernel(bool ref) { referenceKernel_ = ref; }

    /** Zero all statistics at the current time. */
    void resetStats();

    /** Collect metrics for the window since the last resetStats(). */
    MetricSet collect() const;

    Tick now() const { return now_; }
    /** The clock domains this system was built on. */
    const ClockDomains &clocks() const { return cfg_.clocks; }
    const KernelStats &kernelStats() const { return kernelStats_; }
    MemController &controller(std::uint32_t ch) { return *controllers_[ch]; }
    std::uint32_t numControllers() const
    {
        return static_cast<std::uint32_t>(controllers_.size());
    }
    CacheHierarchy &hierarchy() { return *hierarchy_; }
    Core &core(std::uint32_t i) { return *cores_[i]; }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

  private:
    /** Closed-loop DMA/IO traffic source (Section "substitutions"). */
    struct IoEngine
    {
        bool enabled = false;
        std::uint32_t window = 0;
        std::uint32_t burstBlocks = 64;
        double writeFrac = 0.3;
        TickSpan thinkTicks;
        Addr bufferBase = 0;
        std::uint64_t bufferBlocks = 0;
        std::uint64_t streamPos = 0;
        std::uint32_t burstLeft = 0;
        std::uint32_t outstanding = 0;
        Tick nextIssueAt;
        Pcg32 rng;
    };

    void build(const SimConfig &cfg, std::uint32_t numCores);
    void coreStep(bool eager);
    /** coreStep specialized for the event kernel: due-scan + batching. */
    void coreStepEvent();
    void memStep(bool eager);
    void ioStep();
    void referenceAdvance(Tick end);
    /** The serial event-scheduled kernel (the golden perf baseline the
     *  parallel kernel must be bit-identical to). */
    void advanceEvent(Tick end);
    /**
     * The epoch-sharded parallel kernel: core cluster on the calling
     * thread, per-channel controllers on pool workers, lockstep epochs
     * bounded by the crossbar latency. Bit-identical to advanceEvent()
     * at any thread count (see README "Deterministic intra-simulation
     * parallelism").
     */
    void advanceParallel(Tick end);
    /**
     * Memory-side shard count the parallel kernel would use: 0 means
     * the serial kernel runs (thread budget of 1, an enabled IO/DMA
     * engine — whose zero-latency completion coupling and request-id
     * interleaving would serialize every epoch anyway — or no
     * controllers).
     */
    unsigned parallelShards() const;
    /**
     * Replay the previous epoch's staged completions into toCpu_ in
     * the serial kernel's exact order — ascending (tick, channel,
     * within-channel sequence) — and recycle every finished request.
     */
    void mergeStagedCompletions(unsigned parity);
    /** Flush every core's lazy cycle accounting up to coreCycles_. */
    void syncCores();
    /** Earliest tick the core domain must step (latch or core event). */
    Tick coreEventAt() const;
    /** Earliest tick the memory domain must step. */
    Tick memEventAt() const;
    /** Next tick the IO engine could issue; kMaxTick when it cannot. */
    Tick ioEventAt() const;
    Request *allocRequest(CoreId core, Addr addr, bool isWrite, bool isIo);
    void freeRequest(Request *req);
    void sendMemRead(CoreId core, Addr blockAddr);
    void sendMemWrite(CoreId core, Addr blockAddr);
    void onMemComplete(Request *req, Tick at, std::uint32_t channel);

    SimConfig cfg_;
    Tick now_;
    bool referenceKernel_ = false;
    CoreCycle statsStartCycle_;
    CoreCycle coreCycles_;
    /**
     * Exclusive upper bound for Core::runBatch during the current
     * advance() window: the window's final core-cycle count, so
     * batched cores stop exactly where syncCores() and the statistics
     * window close (identical to the reference kernel).
     */
    CoreCycle batchLimit_;
    /**
     * Set when the core side pushes onto toMem_ mid-step, moving the
     * memory-domain event horizon earlier than advance()'s cached copy.
     */
    bool memHorizonDirty_ = true;

    /** Per-controller next-due ticks (tick() return; arrivals re-arm). */
    std::vector<Tick> ctlDueAt_;
    /**
     * Per-core next-act cycles, mirrored from Core::nextActCycle()
     * into one contiguous array so the hot due-scan never touches the
     * idle cores themselves. Updated after every tick and wake.
     */
    std::vector<CoreCycle> coreDueCycle_;
    /** Cached min over coreDueCycle_ in ticks (kMaxTick: all blocked). */
    Tick coreActEventAt_;
    KernelStats kernelStats_;

    std::unique_ptr<SyntheticWorkload> ownedGenerator_;
    WorkloadGenerator *generator_ = nullptr;

    std::unique_ptr<CacheHierarchy> hierarchy_;
    std::vector<std::unique_ptr<Core>> cores_;
    /** The composed memory backend (flat JEDEC or stacked vaults). It
     *  owns the media and the controller queues; routing, capacity,
     *  media statistics and energy all go through it. */
    std::unique_ptr<MemBackend> backend_;
    /** Raw per-queue pointers into backend_ (queue index == the
     *  coord.channel routing/sharding index), cached so the kernels'
     *  hot loops stay exactly as they were pre-backend. */
    std::vector<MemController *> controllers_;

    CrossbarLink<Request *> toMem_;
    struct CpuResponse
    {
        CoreId core;
        Addr addr;
    };
    CrossbarLink<CpuResponse> toCpu_;

    IoEngine io_;

    // Request pool.
    std::vector<std::unique_ptr<Request>> requestStorage_;
    std::vector<Request *> freeRequests_;
    std::uint64_t nextRequestId_ = 0;

    // ---- epoch-sharded parallel kernel state (advanceParallel) ----

    /** One core→controller request in flight across the barrier. */
    struct StagedRequest
    {
        Tick readyAt;      ///< Crossbar delivery tick (push + latency).
        Request *req;
        std::uint64_t seq; ///< Global toMem_ push order (for handoff).
    };
    /** One finished request crossing back to the core shard. */
    struct StagedCompletion
    {
        Tick at; ///< Controller completion tick.
        Request *req;
    };
    /** Per-channel staging of one channel's completions. */
    struct ChannelStage
    {
        EpochStage<StagedCompletion> stage;
        /** Owning shard's current write parity, read by the
         *  completion callback (only the owner thread touches it). */
        std::uint8_t parity = 0;
    };

    /** True while shard workers are live: sendMemRead/Write stage
     *  instead of pushing toMem_, completions stage instead of
     *  latching toCpu_. Written single-threaded around the epoch loop. */
    bool parallelMode_ = false;
    /** Core shard's current write parity for reqStage_. */
    unsigned coreParity_ = 0;
    /** Next global toMem_ push sequence number (core shard only). */
    std::uint64_t reqSeq_ = 0;
    /** Core→mem staging, all channels interleaved in push order; each
     *  mem shard filters out its own channels' entries. */
    EpochStage<StagedRequest> reqStage_;
    /** Mem→core completion staging, one per channel. */
    std::vector<ChannelStage> complStage_;
    /** Per-channel in-order arrival queues owned by the mem shards;
     *  persistent across epochs (an entry waits here until the first
     *  DRAM boundary at or after its crossbar delivery tick). */
    std::vector<std::deque<StagedRequest>> chArrivals_;
    /** k-way merge cursor scratch for mergeStagedCompletions(). */
    std::vector<std::size_t> mergeIdx_;
    /** Shard workers (created on first parallel advance). */
    std::unique_ptr<WorkerPool> pool_;
};

} // namespace mcsim

#endif // CLOUDMC_SIM_SYSTEM_HH
