/**
 * @file
 * Declarative experiment specs: one dependency-free key=value text
 * file describes a full SimConfig plus a sweep matrix, so a device x
 * scheduler x workload study is a data file instead of a bench binary.
 *
 * Format: one `key = value` pair per line; `#` starts a comment;
 * blank lines are ignored. Sweep-axis keys accept comma-separated
 * lists and expand into a full cross product. Keys:
 *
 *   device    = DDR3-1600[, DDR4-2400, ...]   registry names
 *   scheduler = FR-FCFS[, ATLAS, ...]
 *   policy    = OpenAdaptive[, Close, ...]
 *   mapping   = RoRaBaCoCh[, PermBaXor, ...]
 *   group_mapping = GroupInterleaved[, GroupPacked]
 *                                             bank-group bit placement
 *                                             (short forms interleaved
 *                                             / packed accepted)
 *   channels  = 1[, 2, 4]                     powers of two
 *   workload  = WS[, DS, ...]                 paper acronyms
 *   core_mhz  = 2000                          scalar only
 *   warmup    = 2000000                       core cycles, scalar
 *   measure   = 8000000                       core cycles, scalar
 *   seed      = 1                             scalar
 *   refresh   = on | off                      scalar
 *   fairness  = on | off                      scalar; attach alone-run
 *                                             baselines to every point
 *   backend   = flat | stacked                scalar; asserts the memory
 *                                             backend every swept device
 *                                             composes. `stacked` with no
 *                                             device axis selects the
 *                                             HMC2-8GB registry entry.
 *   vaults    = 16[, 8, 4]                    stacked only: vault-count
 *                                             sweep (powers of two,
 *                                             capacity-preserving)
 *   remap     = on | off                      stacked only: dynamic
 *                                             hot-bank vault remapping
 *   tier      = on | off                      compose the device with a
 *                                             slow CXL/NVM-like second
 *                                             tier (TieredMemBackend)
 *   tier_policy = hotness_based               static_split |
 *                                             hotness_based | alloy_cache
 *   tier_latency = 96                         extra slow-tier read
 *                                             return latency, DRAM cycles
 *   tier_bw   = 50                            slow-tier service rate,
 *                                             percent of fast, [1,100]
 *   tier_capacity_pct = 50                    fast tier's share of the
 *                                             address space, [1,100]
 *   tier_hot_factor = 2.0                     promote when hot density >
 *                                             factor * cold density
 *   tier_migration_cycles = 64                DRAM cycles per migrated row
 *   monitor_sample = 4                        count every Nth access
 *   monitor_window = 2048                     counted samples per window
 *   monitor_min_regions = 16                  region-count floor
 *   monitor_max_regions = 256                 region-count ceiling
 *
 * The stacked-only keys (`vaults`, `remap`) are rejected with a named
 * error when any swept device is a flat JEDEC part, and the
 * tiered-only keys (`tier_*`, `monitor_*`) are rejected unless
 * `tier = on` is set — a silently ignored knob would masquerade as a
 * null result.
 *
 * Plural aliases (devices, schedulers, policies, mappings, workloads)
 * are accepted for readability. Every axis defaults to the baseline's
 * single value, so an empty file describes exactly one Table 2 run.
 */

#ifndef CLOUDMC_SIM_SPEC_HH
#define CLOUDMC_SIM_SPEC_HH

#include <string>
#include <vector>

#include "experiment.hh"
#include "sim_config.hh"
#include "workload/presets.hh"

namespace mcsim {

/** A parsed spec: the base configuration plus the sweep axes. */
struct ExperimentSpec
{
    SimConfig base;

    std::vector<std::string> devices;      ///< Registry names.
    std::vector<SchedulerKind> schedulers;
    std::vector<PagePolicyKind> policies;
    std::vector<MappingScheme> mappings;
    std::vector<BankGroupMapping> groupMappings;
    std::vector<std::uint32_t> channelCounts;
    std::vector<WorkloadId> workloads;
    /** Stacked-only vault-count sweep (the `vaults` key); empty runs
     *  every device at its registry vault count. */
    std::vector<std::uint32_t> vaultCounts;

    /** The `backend` key, when present: every swept device must
     *  compose this backend kind (parse fails otherwise). */
    bool hasBackend = false;
    MemBackendKind backendKind = MemBackendKind::FlatDram;
    /** The `remap` key was present (its value lives in
     *  base.remap.enabled); stacked-only, parse fails on flat. */
    bool hasRemap = false;
    /** The `tier` key was present (its value lives in
     *  base.tier.enabled). */
    bool hasTier = false;
    /** First tiered-only key seen (tier_policy, tier_latency, ...);
     *  parse fails when one is present without `tier = on`. */
    std::string tierOnlyKey;

    /** Attach single-core alone-run baselines to every point so the
     *  sweep reports slowdown/fairness metrics (the `fairness` key). */
    bool fairness = false;

    /** Number of points the cross product expands to. */
    std::size_t pointCount() const;

    /**
     * Expand the cross product into runnable points (device-major,
     * workload-minor). Each point's SimConfig carries the device's
     * timings/power/geometry and the derived clock domains; with
     * `fairness` set each point also carries its alone-run baseline.
     */
    std::vector<ExperimentRunner::Point> points() const;
};

/**
 * Parse spec text. Returns an empty string on success, otherwise a
 * one-line "line N: ..." diagnostic. @p out is default-initialized
 * first and is only meaningful on success.
 */
std::string parseExperimentSpec(const std::string &text,
                                ExperimentSpec &out);

/** Load and parse a spec file; errors include unopenable files. */
std::string loadExperimentSpec(const std::string &path,
                               ExperimentSpec &out);

} // namespace mcsim

#endif // CLOUDMC_SIM_SPEC_HH
