#include "metrics.hh"

#include <algorithm>

#include "common/log.hh"

namespace mcsim {

bool
deriveFairnessMetrics(MetricSet &shared,
                      const std::vector<AloneBaselineMetrics> &baselines)
{
    shared.perCoreSlowdown.clear();
    shared.weightedSpeedup = 0.0;
    shared.harmonicSpeedup = 0.0;
    shared.maxSlowdown = 0.0;

    const std::size_t cores = shared.perCoreIpc.size();
    if (cores == 0 || baselines.empty())
        return false;

    // Resolve each shared core's alone-run IPC; -1 marks "uncovered".
    std::vector<double> aloneIpc(cores, -1.0);
    for (const AloneBaselineMetrics &b : baselines) {
        if (!b.alone || b.numCores == 0 ||
            b.firstCore + b.numCores > cores) {
            return false;
        }
        const std::vector<double> &alone = b.alone->perCoreIpc;
        const bool perCore = alone.size() == b.numCores;
        if (!perCore && alone.size() != 1)
            return false; // Neither part-isolated nor single-core.
        for (std::uint32_t l = 0; l < b.numCores; ++l) {
            const std::uint32_t c = b.firstCore + l;
            if (aloneIpc[c] >= 0.0)
                return false; // Overlapping baselines.
            aloneIpc[c] = perCore ? alone[l] : alone[0];
        }
    }
    if (std::any_of(aloneIpc.begin(), aloneIpc.end(),
                    [](double v) { return v < 0.0; })) {
        return false; // A core has no baseline.
    }

    shared.perCoreSlowdown.resize(cores, 1.0);
    double slowdownSum = 0.0;
    for (std::size_t c = 0; c < cores; ++c) {
        const double sharedIpc = shared.perCoreIpc[c];
        const double alone = aloneIpc[c];
        double s = 1.0;
        if (alone > 0.0) {
            // A fully starved core (0 instructions committed in the
            // shared window while its alone run makes progress) is the
            // very pathology these metrics exist to expose: score it
            // as if it had committed a single instruction, the largest
            // finite slowdown the window can attest to.
            const double floorIpc =
                shared.measuredCycles
                    ? 1.0 / static_cast<double>(shared.measuredCycles)
                    : 1.0;
            s = alone / (sharedIpc > 0.0 ? sharedIpc : floorIpc);
        }
        shared.perCoreSlowdown[c] = s;
        slowdownSum += s;
        if (alone > 0.0)
            shared.weightedSpeedup += sharedIpc / alone;
        if (s > shared.maxSlowdown)
            shared.maxSlowdown = s;
    }
    shared.harmonicSpeedup = slowdownSum > 0.0
                                 ? static_cast<double>(cores) / slowdownSum
                                 : 0.0;
    return true;
}

} // namespace mcsim
