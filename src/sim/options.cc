#include "options.hh"

#include <cstdlib>
#include <sstream>

namespace mcsim {

namespace {

/** Non-fatal name lookups (the factory variants are fatal-on-error). */

bool
findWorkload(const std::string &name, WorkloadId &out)
{
    for (auto w : kAllWorkloads) {
        if (name == workloadAcronym(w)) {
            out = w;
            return true;
        }
    }
    return false;
}

bool
findScheduler(const std::string &name, SchedulerKind &out)
{
    for (auto k : {SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks,
                   SchedulerKind::ParBs, SchedulerKind::Atlas,
                   SchedulerKind::Rl, SchedulerKind::Fcfs,
                   SchedulerKind::Fqm, SchedulerKind::Tcm,
                   SchedulerKind::Stfm}) {
        if (name == schedulerKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool
findPolicy(const std::string &name, PagePolicyKind &out)
{
    for (auto k : {PagePolicyKind::OpenAdaptive,
                   PagePolicyKind::CloseAdaptive, PagePolicyKind::Rbpp,
                   PagePolicyKind::Abpp, PagePolicyKind::Open,
                   PagePolicyKind::Close, PagePolicyKind::Timer,
                   PagePolicyKind::History}) {
        if (name == pagePolicyKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool
findMapping(const std::string &name, MappingScheme &out)
{
    for (auto s : kExtendedMappingSchemes) {
        if (name == mappingSchemeName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

bool
parseUint(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end && *end == '\0';
}

} // namespace

std::string
ExperimentOptions::parse(int argc, char **argv)
{
    const auto need = [&](int &i) -> const char * {
        return i + 1 < argc ? argv[++i] : nullptr;
    };

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            helpRequested = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--workload") {
            const char *v = need(i);
            if (!v || !findWorkload(v, workload))
                return "unknown workload for --workload";
        } else if (arg == "--scheduler") {
            const char *v = need(i);
            if (!v || !findScheduler(v, config.scheduler))
                return "unknown scheduler for --scheduler";
        } else if (arg == "--policy") {
            const char *v = need(i);
            if (!v || !findPolicy(v, config.pagePolicy))
                return "unknown page policy for --policy";
        } else if (arg == "--mapping") {
            const char *v = need(i);
            if (!v || !findMapping(v, config.mapping))
                return "unknown mapping scheme for --mapping";
        } else if (arg == "--channels") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0 || !isPowerOf2(n))
                return "--channels needs a power-of-two count";
            config.dram.channels = static_cast<std::uint32_t>(n);
        } else if (arg == "--warmup") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n))
                return "--warmup needs a cycle count";
            config.warmupCoreCycles = n;
        } else if (arg == "--measure") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0)
                return "--measure needs a nonzero cycle count";
            config.measureCoreCycles = n;
        } else if (arg == "--seed") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n))
                return "--seed needs a number";
            config.seed = n;
        } else if (arg == "--fast") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0)
                return "--fast needs a nonzero divisor";
            config.warmupCoreCycles /= n;
            config.measureCoreCycles =
                std::max<std::uint64_t>(config.measureCoreCycles / n,
                                        100'000);
        } else if (arg.rfind("--", 0) == 0) {
            return "unknown flag '" + arg + "'";
        } else {
            // A bare acronym selects the workload; anything else stays
            // positional for the tool to interpret.
            WorkloadId w;
            if (findWorkload(arg, w))
                workload = w;
            else
                positional.push_back(arg);
        }
    }
    return {};
}

std::string
ExperimentOptions::usage(const std::string &tool)
{
    std::ostringstream out;
    out << "usage: " << tool
        << " [workload] [--workload W] [--scheduler S] [--policy P]\n"
        << "       [--mapping M] [--channels N] [--warmup C] "
           "[--measure C]\n"
        << "       [--seed N] [--fast D] [--csv]\n\n";
    out << "workloads:";
    for (auto w : kAllWorkloads)
        out << ' ' << workloadAcronym(w);
    out << "\nschedulers:";
    for (auto k : {SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks,
                   SchedulerKind::ParBs, SchedulerKind::Atlas,
                   SchedulerKind::Rl, SchedulerKind::Fcfs,
                   SchedulerKind::Fqm, SchedulerKind::Tcm,
                   SchedulerKind::Stfm}) {
        out << ' ' << schedulerKindName(k);
    }
    out << "\npolicies:";
    for (auto k : {PagePolicyKind::OpenAdaptive,
                   PagePolicyKind::CloseAdaptive, PagePolicyKind::Rbpp,
                   PagePolicyKind::Abpp, PagePolicyKind::Open,
                   PagePolicyKind::Close, PagePolicyKind::Timer,
                   PagePolicyKind::History}) {
        out << ' ' << pagePolicyKindName(k);
    }
    out << "\nmappings:";
    for (auto s : kExtendedMappingSchemes)
        out << ' ' << mappingSchemeName(s);
    out << '\n';
    return out.str();
}

} // namespace mcsim
