#include "options.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "dram/devices.hh"

namespace mcsim {

namespace {

/** Non-fatal name lookups (the factory variants are fatal-on-error). */

bool
findWorkload(const std::string &name, WorkloadId &out)
{
    for (auto w : kAllWorkloads) {
        if (name == workloadAcronym(w)) {
            out = w;
            return true;
        }
    }
    return false;
}

bool
findScheduler(const std::string &name, SchedulerKind &out)
{
    for (auto k : kAllSchedulers) {
        if (name == schedulerKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool
findPolicy(const std::string &name, PagePolicyKind &out)
{
    for (auto k : kAllPagePolicies) {
        if (name == pagePolicyKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool
findMapping(const std::string &name, MappingScheme &out)
{
    for (auto s : kExtendedMappingSchemes) {
        if (name == mappingSchemeName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

bool
parseUint(const std::string &text, std::uint64_t &out)
{
    // Digits only: strtoull would silently wrap "-1" to 2^64-1.
    if (text.empty() ||
        !std::isdigit(static_cast<unsigned char>(text[0]))) {
        return false;
    }
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end && *end == '\0';
}

} // namespace

std::string
ExperimentOptions::parse(int argc, char **argv)
{
    const auto need = [&](int &i) -> const char * {
        return i + 1 < argc ? argv[++i] : nullptr;
    };

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            helpRequested = true;
        } else if (arg == "--list") {
            listRequested = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--fairness") {
            fairness = true;
            if (hasSpec)
                spec.fairness = true;
        } else if (arg == "--workload") {
            const char *v = need(i);
            if (!v || !findWorkload(v, workload))
                return "unknown workload for --workload";
            if (hasSpec)
                spec.workloads = {workload};
        } else if (arg == "--scheduler") {
            const char *v = need(i);
            if (!v || !findScheduler(v, config.scheduler))
                return "unknown scheduler for --scheduler";
            if (hasSpec)
                spec.schedulers = {config.scheduler};
        } else if (arg == "--policy") {
            const char *v = need(i);
            if (!v || !findPolicy(v, config.pagePolicy))
                return "unknown page policy for --policy";
            if (hasSpec)
                spec.policies = {config.pagePolicy};
        } else if (arg == "--mapping") {
            const char *v = need(i);
            if (!v || !findMapping(v, config.mapping))
                return "unknown mapping scheme for --mapping";
            if (hasSpec)
                spec.mappings = {config.mapping};
        } else if (arg == "--group-mapping") {
            const char *v = need(i);
            if (!v ||
                !tryBankGroupMappingFromName(v, config.bankGroupMapping))
                return "unknown bank-group mapping for --group-mapping";
            if (hasSpec)
                spec.groupMappings = {config.bankGroupMapping};
        } else if (arg == "--device") {
            const char *v = need(i);
            const DramDevice *dev = v ? findDramDevice(v) : nullptr;
            if (!dev)
                return "unknown DRAM device for --device (try --list)";
            config.applyDevice(*dev);
            if (hasSpec)
                spec.devices = {dev->name};
        } else if (arg == "--config") {
            const char *v = need(i);
            if (!v)
                return "--config needs a spec file path";
            const std::string err = loadExperimentSpec(v, spec);
            if (!err.empty())
                return "spec '" + std::string(v) + "': " + err;
            hasSpec = true;
            // Scalar keys of the spec shape the single-point config
            // too; later flags may still override them.
            config = spec.base;
            if (spec.workloads.size() == 1)
                workload = spec.workloads.front();
            if (spec.fairness)
                fairness = true;
            else if (fairness)
                spec.fairness = true; // --fairness before --config.
        } else if (arg == "--backend") {
            const char *v = need(i);
            const std::string kind = v ? v : "";
            if (kind == "stacked") {
                // Selecting the stacked backend on a flat configuration
                // means "give me the stacked reference part".
                if (config.dram.vaultsPerStack == 0)
                    config.applyDevice(dramDeviceOrDie("HMC2-8GB"));
                if (hasSpec) {
                    for (const std::string &d : spec.devices) {
                        if (dramDeviceOrDie(d).geometry.vaultsPerStack ==
                            0) {
                            return "--backend stacked conflicts with "
                                   "flat device '" +
                                   d + "' in the sweep";
                        }
                    }
                    if (spec.devices.empty())
                        spec.devices = {config.deviceName};
                    spec.hasBackend = true;
                    spec.backendKind = MemBackendKind::StackedDram;
                }
            } else if (kind == "flat") {
                if (config.dram.vaultsPerStack != 0)
                    return "--backend flat conflicts with stacked "
                           "device '" +
                           config.deviceName +
                           "' (pick a flat part with --device)";
                if (hasSpec) {
                    for (const std::string &d : spec.devices) {
                        if (dramDeviceOrDie(d).geometry.vaultsPerStack >
                            0) {
                            return "--backend flat conflicts with "
                                   "stacked device '" +
                                   d + "' in the sweep";
                        }
                    }
                    spec.hasBackend = true;
                    spec.backendKind = MemBackendKind::FlatDram;
                }
            } else {
                return "--backend must be 'flat' or 'stacked'";
            }
        } else if (arg == "--vaults") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0 || !isPowerOf2(n))
                return "--vaults needs a power-of-two count";
            if (config.dram.vaultsPerStack == 0)
                return "--vaults applies to the stacked backend only "
                       "(put --backend stacked or a stacked --device "
                       "first)";
            config.setVaults(static_cast<std::uint32_t>(n));
            if (hasSpec)
                spec.vaultCounts = {config.dram.vaultsPerStack};
        } else if (arg == "--remap") {
            const char *v = need(i);
            const std::string mode = v ? v : "";
            if (mode != "on" && mode != "off")
                return "--remap must be 'on' or 'off'";
            if (config.dram.vaultsPerStack == 0)
                return "--remap applies to the stacked backend only "
                       "(put --backend stacked or a stacked --device "
                       "first)";
            config.remap.enabled = mode == "on";
            if (hasSpec) {
                spec.hasRemap = true;
                spec.base.remap.enabled = config.remap.enabled;
            }
        } else if (arg == "--tier") {
            const char *v = need(i);
            const std::string mode = v ? v : "";
            if (mode != "on" && mode != "off")
                return "--tier must be 'on' or 'off'";
            config.tier.enabled = mode == "on";
            if (hasSpec) {
                spec.hasTier = true;
                spec.base.tier.enabled = config.tier.enabled;
            }
        } else if (arg == "--tier-policy") {
            const char *v = need(i);
            if (!v || !tryTierPolicyFromName(v, config.tier.policy))
                return "--tier-policy must be 'static_split', "
                       "'hotness_based', or 'alloy_cache'";
            if (!config.tier.enabled)
                return "--tier-policy applies to the tiered backend "
                       "only (put --tier on first)";
            if (hasSpec)
                spec.base.tier.policy = config.tier.policy;
        } else if (arg == "--tier-latency") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n > 1'000'000)
                return "--tier-latency needs a DRAM cycle count in "
                       "[0, 1000000]";
            if (!config.tier.enabled)
                return "--tier-latency applies to the tiered backend "
                       "only (put --tier on first)";
            config.tier.slowLatencyDramCycles =
                static_cast<std::uint32_t>(n);
            if (hasSpec)
                spec.base.tier.slowLatencyDramCycles =
                    config.tier.slowLatencyDramCycles;
        } else if (arg == "--tier-bw") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0 || n > 100)
                return "--tier-bw needs a percentage in [1, 100]";
            if (!config.tier.enabled)
                return "--tier-bw applies to the tiered backend only "
                       "(put --tier on first)";
            config.tier.slowBwPct = static_cast<std::uint32_t>(n);
            if (hasSpec)
                spec.base.tier.slowBwPct = config.tier.slowBwPct;
        } else if (arg == "--tier-capacity-pct") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0 || n > 100)
                return "--tier-capacity-pct needs a percentage in "
                       "[1, 100]";
            if (!config.tier.enabled)
                return "--tier-capacity-pct applies to the tiered "
                       "backend only (put --tier on first)";
            config.tier.fastCapacityPct = static_cast<std::uint32_t>(n);
            if (hasSpec)
                spec.base.tier.fastCapacityPct =
                    config.tier.fastCapacityPct;
        } else if (arg == "--channels") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0 || !isPowerOf2(n))
                return "--channels needs a power-of-two count";
            config.dram.channels = static_cast<std::uint32_t>(n);
            if (hasSpec)
                spec.channelCounts = {config.dram.channels};
        } else if (arg == "--warmup") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n))
                return "--warmup needs a cycle count";
            config.warmupCoreCycles = n;
        } else if (arg == "--measure") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0)
                return "--measure needs a nonzero cycle count";
            config.measureCoreCycles = n;
        } else if (arg == "--kernel-threads") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0 || n > 1024)
                return "--kernel-threads needs a count in [1, 1024]";
            config.kernelThreads = static_cast<std::uint32_t>(n);
        } else if (arg == "--seed") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n))
                return "--seed needs a number";
            config.seed = n;
        } else if (arg == "--fast") {
            const char *v = need(i);
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0)
                return "--fast needs a nonzero divisor";
            config.warmupCoreCycles /= n;
            config.measureCoreCycles =
                std::max<std::uint64_t>(config.measureCoreCycles / n,
                                        100'000);
        } else if (arg.rfind("--", 0) == 0) {
            return "unknown flag '" + arg + "'";
        } else {
            // A bare acronym selects the workload; anything else stays
            // positional for the tool to interpret.
            WorkloadId w;
            if (findWorkload(arg, w)) {
                workload = w;
                if (hasSpec)
                    spec.workloads = {w};
            } else {
                positional.push_back(arg);
            }
        }
    }
    return {};
}

std::string
ExperimentOptions::listText()
{
    std::ostringstream out;
    out << "schedulers:";
    for (auto k : kAllSchedulers)
        out << ' ' << schedulerKindName(k);
    out << "\npolicies:";
    for (auto k : kAllPagePolicies)
        out << ' ' << pagePolicyKindName(k);
    out << "\nmappings:";
    for (auto s : kExtendedMappingSchemes)
        out << ' ' << mappingSchemeName(s);
    out << "\ngroup mappings:";
    for (auto m : kAllBankGroupMappings)
        out << ' ' << bankGroupMappingName(m);
    out << "\nworkloads:";
    for (auto w : kAllWorkloads)
        out << ' ' << workloadAcronym(w);
    out << "\ndevices:\n";
    for (const DramDevice &d : dramDeviceRegistry()) {
        out << "  " << d.name << " (" << d.dataRateMtps << " MT/s, "
            << d.busMhz << " MHz bus, CL" << d.timings.tCAS << '-'
            << d.timings.tRCD << '-' << d.timings.tRP << ", "
            << d.geometry.banksPerRank << " banks/rank";
        if (d.geometry.bankGroupsPerRank > 1) {
            out << " in " << d.geometry.bankGroupsPerRank
                << " groups, tCCD " << d.timings.tCCD << '/'
                << d.timings.tCCDL;
        }
        if (d.timings.perBankRefresh)
            out << ", per-bank refresh";
        // Backend + vault-geometry columns; flat parts show '-'.
        out << ", " << (d.geometry.vaultsPerStack ? "stacked" : "flat")
            << " backend, vaults ";
        if (d.geometry.vaultsPerStack) {
            out << d.geometry.vaultsPerStack << " x "
                << d.geometry.banksPerRank << " banks";
            if (d.timings.tTSV)
                out << ", tTSV " << d.timings.tTSV;
        } else {
            out << '-';
        }
        out << ") — " << d.source << '\n';
    }
    return out.str();
}

std::string
ExperimentOptions::usage(const std::string &tool)
{
    std::ostringstream out;
    out << "usage: " << tool
        << " [workload] [--workload W] [--scheduler S] [--policy P]\n"
        << "       [--mapping M] [--group-mapping G] [--device D] "
           "[--config SPEC]\n"
        << "       [--backend flat|stacked] [--vaults N] [--remap "
           "on|off]\n"
        << "       [--tier on|off] [--tier-policy "
           "static_split|hotness_based|alloy_cache]\n"
        << "       [--tier-latency C] [--tier-bw PCT] "
           "[--tier-capacity-pct PCT]\n"
        << "       [--channels N] [--warmup C] [--measure C] [--seed N] "
           "[--fast D]\n"
        << "       [--kernel-threads N] [--csv] [--fairness] [--list]\n\n";
    out << listText();
    return out.str();
}

} // namespace mcsim
