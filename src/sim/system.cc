#include "system.hh"

#include <algorithm>

#include "common/log.hh"

namespace mcsim {

namespace {

constexpr std::uint32_t kBlockBytes = 64;

/** Fixed IO buffer placement: below the 1-channel capacity so DMA
 *  addresses are identical across channel-count sweeps. */
constexpr Addr kIoBufferBase = 7ull << 30;          // 7 GiB
constexpr std::uint64_t kIoBufferBytes = 512 << 20; // 512 MiB

} // namespace

System::System(const SimConfig &cfg, const WorkloadParams &workload)
    : cfg_(cfg), toMem_(cfg.clocks.coreToTicks(cfg.xbarLatencyCycles)),
      toCpu_(cfg.clocks.coreToTicks(cfg.xbarLatencyCycles))
{
    cfg_.numCores = workload.cores;
    cfg_.core.mlpWindow = cfg_.coreMlpOverride ? cfg_.coreMlpOverride
                                               : workload.mlpWindow;
    cfg_.core.storeBufferEntries = workload.storeBufferEntries;

    build(cfg_, cfg_.numCores);
    ownedGenerator_ = std::make_unique<SyntheticWorkload>(
        workload, backend_->capacityBytes());
    generator_ = ownedGenerator_.get();

    if (workload.ioWindow > 0) {
        io_.enabled = true;
        io_.window = workload.ioWindow;
        io_.burstBlocks = workload.ioBurstBlocks;
        io_.writeFrac = workload.ioWriteFrac;
        io_.thinkTicks = cfg_.clocks.dramToTicks(workload.ioThinkDramCycles);
        io_.bufferBase = kIoBufferBase;
        io_.bufferBlocks = kIoBufferBytes / kBlockBytes;
        io_.rng.reseed(workload.seed * 7919 + 17, 0x10);
        mc_assert(kIoBufferBase + kIoBufferBytes <=
                      backend_->capacityBytes(),
                  "IO buffer does not fit in DRAM");
    }

    for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
        cores_.push_back(std::make_unique<Core>(c, *generator_,
                                                *hierarchy_, cfg_.core));
    }
}

System::System(const SimConfig &cfg, WorkloadGenerator &generator,
               std::uint32_t numCores)
    : cfg_(cfg), toMem_(cfg.clocks.coreToTicks(cfg.xbarLatencyCycles)),
      toCpu_(cfg.clocks.coreToTicks(cfg.xbarLatencyCycles))
{
    cfg_.numCores = numCores;
    build(cfg_, numCores);
    generator_ = &generator;
    for (std::uint32_t c = 0; c < numCores; ++c) {
        cores_.push_back(std::make_unique<Core>(c, *generator_,
                                                *hierarchy_, cfg_.core));
    }
}

System::~System() = default;

void
System::build(const SimConfig &cfg, std::uint32_t numCores)
{
    backend_ = makeMemBackend(cfg, numCores);
    for (std::uint32_t ch = 0; ch < backend_->numQueues(); ++ch) {
        MemController &mc = backend_->queue(ch);
        mc.setCompletionCallback([this, ch](Request *req, Tick at) {
            onMemComplete(req, at, ch);
        });
        controllers_.push_back(&mc);
    }
    complStage_.resize(controllers_.size());
    chArrivals_.resize(controllers_.size());
    mergeIdx_.resize(controllers_.size());
    hierarchy_ = std::make_unique<CacheHierarchy>(numCores, cfg.hierarchy);
    hierarchy_->setSendMemRead(
        [this](CoreId core, Addr addr) { sendMemRead(core, addr); });
    hierarchy_->setSendMemWrite(
        [this](CoreId core, Addr addr) { sendMemWrite(core, addr); });
    hierarchy_->setWake([this](CoreId core, MissKind kind) {
        // Account the blocked stretch under the pre-wake flags before
        // the unblock mutates them.
        cores_[core]->catchUpTo(coreCycles_);
        cores_[core]->missReturned(kind);
        coreDueCycle_[core] = cores_[core]->nextActCycle();
    });
    ctlDueAt_.assign(controllers_.size(), Tick{});
    coreDueCycle_.assign(numCores, CoreCycle{});
}

Request *
System::allocRequest(CoreId core, Addr addr, bool isWrite, bool isIo)
{
    Request *req;
    if (!freeRequests_.empty()) {
        req = freeRequests_.back();
        freeRequests_.pop_back();
    } else {
        requestStorage_.push_back(std::make_unique<Request>());
        req = requestStorage_.back().get();
    }
    *req = Request{};
    req->id = ++nextRequestId_;
    req->core = core;
    req->addr = addr;
    req->isWrite = isWrite;
    req->isIo = isIo;
    // Backend routing (and any remap-policy state it evolves) happens
    // here, on the allocation path: every kernel — reference, event,
    // and the parallel kernel's core shard — allocates requests in the
    // same order at the same ticks, so backend policy decisions are
    // identical under all of them.
    backend_->route(*req, now_);
    return req;
}

void
System::freeRequest(Request *req)
{
    freeRequests_.push_back(req);
}

void
System::sendMemRead(CoreId core, Addr blockAddr)
{
    Request *req = allocRequest(core, blockAddr, false, false);
    if (parallelMode_) {
        reqStage_.push(coreParity_,
                       {now_ + toMem_.latency(), req, reqSeq_++});
        return;
    }
    toMem_.push(now_, req);
    memHorizonDirty_ = true;
}

void
System::sendMemWrite(CoreId core, Addr blockAddr)
{
    Request *req = allocRequest(core, blockAddr, true, false);
    if (parallelMode_) {
        reqStage_.push(coreParity_,
                       {now_ + toMem_.latency(), req, reqSeq_++});
        return;
    }
    toMem_.push(now_, req);
    memHorizonDirty_ = true;
}

void
System::onMemComplete(Request *req, Tick at, std::uint32_t channel)
{
    if (parallelMode_) {
        // Shard thread: park the completion; the core shard replays
        // it (toCpu_ latch + request recycling) in merge order at the
        // next epoch boundary. IO never runs here (parallelShards()
        // returns 0 for IO-enabled systems).
        ChannelStage &cs = complStage_[channel];
        cs.stage.push(cs.parity, {at, req});
        return;
    }
    if (req->isIo && !req->isWrite) {
        // IO reads are closed-loop; IO writes are posted (the device
        // got its ack at issue time and never held a window slot).
        mc_assert(io_.outstanding > 0, "spurious IO completion");
        --io_.outstanding;
        io_.nextIssueAt = at + io_.thinkTicks;
    } else if (!req->isIo && !req->isWrite) {
        toCpu_.push(at, {req->core, req->addr});
    }
    freeRequest(req);
}

void
System::ioStep()
{
    if (!io_.enabled || io_.outstanding >= io_.window ||
        now_ < io_.nextIssueAt) {
        return;
    }
    if (io_.burstLeft == 0) {
        io_.streamPos = io_.rng.below64(io_.bufferBlocks);
        io_.burstLeft = io_.burstBlocks;
    }
    const Addr addr = io_.bufferBase + io_.streamPos * kBlockBytes;
    io_.streamPos = (io_.streamPos + 1) % io_.bufferBlocks;
    --io_.burstLeft;
    const bool isWrite = io_.rng.chance(io_.writeFrac);
    toMem_.push(now_, allocRequest(kIoCoreId, addr, isWrite, true));
    if (isWrite) {
        // Posted: the device paces itself on the ack, not on DRAM.
        io_.nextIssueAt = now_ + io_.thinkTicks;
    } else {
        ++io_.outstanding;
    }
}

void
System::coreStep(bool eager)
{
    while (toCpu_.ready(now_)) {
        const CpuResponse resp = toCpu_.pop();
        hierarchy_->onMemResponse(resp.core, resp.addr);
    }
    const CoreCycle cycle = coreCycles_;
    CoreCycle minAct = kNeverCycle;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (eager || coreDueCycle_[i] <= cycle) {
            Core &core = *cores_[i];
            core.catchUpTo(cycle);
            core.tick();
            ++kernelStats_.coreTicksRun;
            coreDueCycle_[i] = core.nextActCycle();
        }
        if (coreDueCycle_[i] < minAct)
            minAct = coreDueCycle_[i];
    }
    coreCycles_ += CoreCycles{1};
    ++kernelStats_.coreStepsRun;
    coreActEventAt_ = minAct == kNeverCycle
                          ? kMaxTick
                          : cfg_.clocks.coreToTicks(minAct);
}

void
System::coreStepEvent()
{
    while (toCpu_.ready(now_)) {
        const CpuResponse resp = toCpu_.pop();
        hierarchy_->onMemResponse(resp.core, resp.addr);
    }
    const CoreCycle cycle = coreCycles_;
    CoreCycle minAct = kNeverCycle;
    // detlint-allow(raw-tick): counts tick() calls, not time
    std::uint64_t ticks = 0;
    std::uint64_t batchRuns = 0;
    std::uint64_t cyclesBatched = 0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (coreDueCycle_[i] <= cycle) {
            Core &core = *cores_[i];
            // Guarded inline: a core that batched to (or past) this
            // cycle has nothing to account, which is the common case
            // here — unlike the eager loop, where catch-up is almost
            // always a no-op and stays an out-of-line call.
            if (core.syncedCycles() < cycle)
                core.catchUpTo(cycle);
            core.tick();
            ++ticks;
            // Greedy batch: run the core ahead through provably
            // core-private cycles (L1 hits, compute commits) so the
            // kernel never has to revisit it for them.
            const std::uint64_t batched = core.runBatch(batchLimit_);
            if (batched > 0) {
                ++batchRuns;
                cyclesBatched += batched;
            }
            coreDueCycle_[i] = core.nextActCycle();
        }
        if (coreDueCycle_[i] < minAct)
            minAct = coreDueCycle_[i];
    }
    kernelStats_.coreTicksRun += ticks;
    kernelStats_.coreBatchRuns += batchRuns;
    kernelStats_.coreCyclesBatched += cyclesBatched;
    coreCycles_ += CoreCycles{1};
    ++kernelStats_.coreStepsRun;
    coreActEventAt_ = minAct == kNeverCycle
                          ? kMaxTick
                          : cfg_.clocks.coreToTicks(minAct);
}

void
System::memStep(bool eager)
{
    while (toMem_.ready(now_)) {
        Request *req = toMem_.pop();
        const auto ch = req->coord.channel;
        controllers_[ch]->enqueue(req, now_);
        ctlDueAt_[ch] = now_; // Arrivals re-arm a sleeping controller.
    }
    ioStep();
    for (std::size_t i = 0; i < controllers_.size(); ++i) {
        if (eager || ctlDueAt_[i] <= now_) {
            ctlDueAt_[i] = controllers_[i]->tick(now_);
            ++kernelStats_.ctlTicksRun;
        }
    }
    ++kernelStats_.memStepsRun;
}

void
System::syncCores()
{
    for (auto &core : cores_)
        core->catchUpTo(coreCycles_);
}

Tick
System::coreEventAt() const
{
    const Tick latch = toCpu_.nextReadyAt();
    return latch < coreActEventAt_ ? latch : coreActEventAt_;
}

Tick
System::ioEventAt() const
{
    if (!io_.enabled || io_.outstanding >= io_.window)
        return kMaxTick;
    return io_.nextIssueAt;
}

Tick
System::memEventAt() const
{
    Tick ev = toMem_.nextReadyAt();
    const Tick io = ioEventAt();
    if (io < ev)
        ev = io;
    for (const Tick due : ctlDueAt_) {
        if (due < ev)
            ev = due;
    }
    return ev;
}

namespace {

/** Round @p t up to the next boundary of @p step's grid, saturating. */
Tick
alignUp(Tick t, TickSpan step)
{
    if (t > kMaxTick - step)
        return kMaxTick;
    const TickSpan phase = t % step;
    return phase == TickSpan{0} ? t : t + (step - phase);
}

/**
 * Round @p t up to the next boundary of @p step's grid, given that
 * @p grid already is a boundary at or before the result. Event
 * horizons usually sit within a few boundaries of the pending one, so
 * a short walk from @p grid dodges alignUp()'s 64-bit division.
 */
Tick
alignUpFrom(Tick grid, Tick t, TickSpan step)
{
    if (t <= grid)
        return grid;
    if (t - grid <= std::uint64_t{8} * step) {
        if (t > kMaxTick - step)
            return kMaxTick;
        while (grid < t)
            grid += step;
        return grid;
    }
    return alignUp(t, step);
}

} // namespace

void
System::referenceAdvance(Tick end)
{
    const ClockDomains &clk = cfg_.clocks;
    while (now_ < end) {
        if (now_ % clk.ticksPerCore == TickSpan{0})
            coreStep(true);
        if (now_ % clk.ticksPerDram == TickSpan{0})
            memStep(true);
        now_ += TickSpan{1};
    }
}

void
System::advance(std::uint64_t coreCycles)
{
    const Tick end = now_ + cfg_.clocks.coreToTicks(coreCycles);
    if (referenceKernel_) {
        referenceAdvance(end);
        syncCores();
        return;
    }
    if (now_ < end && parallelShards() > 0) {
        advanceParallel(end);
        return;
    }
    advanceEvent(end);
}

void
System::advanceEvent(Tick end)
{
    // Pending step boundaries: the first tick of each domain's grid at
    // or after now_ that has not executed yet. The grid steps come from
    // the runtime clock domains, so the walk works for any core:DRAM
    // ratio (the baseline's 2:5 pattern repeating every LCM = 10 ticks
    // is just one instance).
    const TickSpan perCore = cfg_.clocks.ticksPerCore;
    const TickSpan perDram = cfg_.clocks.ticksPerDram;
    Tick nextCore = alignUp(now_, perCore);
    Tick nextMem = alignUp(now_, perDram);
    // Cached aligned horizons. A horizon only moves when its domain's
    // inputs move: the core horizon on a core step or a memory step
    // (which may latch a response toward the cores), the memory
    // horizon on a memory step or a crossbar push from the core side
    // (memHorizonDirty_, set by sendMemRead/Write). Idle boundary
    // elapses never invalidate either (a cached horizon past the
    // elapsed boundary stays on its grid ahead of the new pending
    // boundary), so most iterations skip the recompute entirely.
    Tick tCore{};
    Tick tMem{};
    bool coreDirty = true;
    memHorizonDirty_ = true;
    // Cap batches at the window's final cycle count. The bound is
    // invariant across the window: every boundary in [nextCore, end)
    // adds exactly one core cycle whether it is stepped, skipped, or
    // idle, so compute it once instead of re-deriving (with a 64-bit
    // division) at every stepped boundary.
    batchLimit_ =
        end > nextCore
            ? coreCycles_ +
                  CoreCycles{(end - nextCore - TickSpan{1}) / perCore + 1}
            : coreCycles_;
    while (true) {
        // Earliest boundary of each domain that must actually execute.
        // Events are computed from post-step state, and nothing runs
        // between here and that boundary, so every boundary before it
        // is a provable no-op.
        if (coreDirty) {
            tCore = alignUpFrom(nextCore, coreEventAt(), perCore);
            coreDirty = false;
        }
        if (memHorizonDirty_) {
            tMem = alignUpFrom(nextMem, memEventAt(), perDram);
            memHorizonDirty_ = false;
        }
        const Tick t = std::min(std::min(tCore, tMem), end);

        // Skipped core boundaries still elapse simulated core cycles;
        // the cores account theirs lazily against coreCycles_. Short
        // gaps (the common case) walk instead of dividing.
        if (nextCore < t) {
            std::uint64_t skipped;
            if (t - nextCore <= std::uint64_t{8} * perCore) {
                skipped = 0;
                while (nextCore < t) {
                    nextCore += perCore;
                    ++skipped;
                }
            } else {
                skipped = (t - nextCore - TickSpan{1}) / perCore + 1;
                nextCore += skipped * perCore;
            }
            coreCycles_ += CoreCycles{skipped};
        }
        if (nextMem < t) {
            if (t - nextMem <= std::uint64_t{8} * perDram) {
                while (nextMem < t)
                    nextMem += perDram;
            } else {
                nextMem +=
                    ((t - nextMem - TickSpan{1}) / perDram + 1) * perDram;
            }
        }

        now_ = t;
        if (t == end)
            break;
        // A boundary shared with the other domain may itself be idle
        // (tCore/tMem past t); it still elapses but needs no step.
        if (t == nextCore) {
            if (tCore <= t) {
                coreStepEvent();
                coreDirty = true;
            } else {
                coreCycles_ += CoreCycles{1};
            }
            nextCore += perCore;
        }
        if (t == nextMem) {
            if (tMem <= t) {
                memStep(false);
                memHorizonDirty_ = true;
                coreDirty = true; // A completion may have latched toCpu_.
            }
            nextMem += perDram;
        }
    }
    syncCores();
}

unsigned
System::parallelShards() const
{
    // The IO/DMA engine couples request-id allocation and completion
    // handling to the memory side with zero modeled latency, which
    // would drag the lookahead to zero; IO-enabled systems stay on the
    // serial kernel. A zero crossbar latency likewise leaves no
    // lookahead to shard over.
    if (cfg_.kernelThreads <= 1 || io_.enabled || controllers_.empty() ||
        toMem_.latency() == TickSpan{0} ||
        toCpu_.latency() == TickSpan{0}) {
        return 0;
    }
    return static_cast<unsigned>(
        std::min<std::size_t>(cfg_.kernelThreads - 1, controllers_.size()));
}

void
System::mergeStagedCompletions(unsigned parity)
{
    const std::size_t n = complStage_.size();
    bool any = false;
    for (std::size_t ch = 0; ch < n; ++ch) {
        mergeIdx_[ch] = 0;
        if (!complStage_[ch].stage.readBuf(parity).empty())
            any = true;
    }
    if (!any)
        return;
    // K-way merge in ascending (tick, channel) with within-channel
    // staging order preserved — exactly the serial kernel's completion
    // order, where memStep ticks controllers in channel-index order
    // and each controller completes in its own deterministic order.
    while (true) {
        std::size_t best = n;
        Tick bestAt = kMaxTick;
        for (std::size_t ch = 0; ch < n; ++ch) {
            const auto &buf = complStage_[ch].stage.readBuf(parity);
            if (mergeIdx_[ch] >= buf.size())
                continue;
            const Tick at = buf[mergeIdx_[ch]].at;
            if (best == n || at < bestAt) {
                best = ch;
                bestAt = at;
            }
        }
        if (best == n)
            break;
        const StagedCompletion &sc =
            complStage_[best].stage.readBuf(parity)[mergeIdx_[best]++];
        Request *req = sc.req;
        if (!req->isIo && !req->isWrite)
            toCpu_.push(sc.at, {req->core, req->addr});
        freeRequest(req);
    }
}

void
System::advanceParallel(Tick end)
{
    const unsigned memShards = parallelShards();
    const TickSpan perCore = cfg_.clocks.ticksPerCore;
    const TickSpan perDram = cfg_.clocks.ticksPerDram;

    // Lookahead: every cross-shard path pays at least the shorter
    // crossbar latency, so traffic staged during an epoch is never
    // deliverable before the next one starts.
    const TickSpan epochLen = std::min(toMem_.latency(), toCpu_.latency());
    const Tick start = now_;
    const std::uint64_t nEpochs =
        (end - start + epochLen - TickSpan{1}) / epochLen;

    if (!pool_)
        pool_ = std::make_unique<WorkerPool>(memShards);

    // Window-global batch cap, same formula as advanceEvent() so the
    // cores' batching decisions (and thus their lazy accounting and
    // stats) are identical to the serial kernel's.
    const Tick firstCore = alignUp(start, perCore);
    batchLimit_ =
        end > firstCore
            ? coreCycles_ +
                  CoreCycles{(end - firstCore - TickSpan{1}) / perCore + 1}
            : coreCycles_;

    // Prologue: hand toMem_'s backlog to the shards as pre-staged
    // arrivals, tagged with their FIFO position so the epilogue can
    // hand unconsumed entries back in the original push order. Epoch
    // 0's consumers read parity 1.
    reqSeq_ = 0;
    reqStage_.reset();
    while (toMem_.size() > 0) {
        auto [readyAt, req] = toMem_.takeFront();
        reqStage_.push(1, {readyAt, req, reqSeq_++});
    }

    std::vector<KernelStats> shardStats(memShards);
    SpinBarrier barrier(memShards + 1);
    parallelMode_ = true;

    pool_->run(memShards + 1, [&](unsigned shard) {
        if (shard == 0) {
            // ---- Core shard (calling thread): cores, caches, toCpu_
            // consumption, request allocation, the system clock and
            // the core-cycle counter — a core-domain-only copy of
            // advanceEvent()'s walk.
            Tick nextCore = alignUp(start, perCore);
            Tick tCore{};
            for (std::uint64_t e = 0; e < nEpochs; ++e) {
                const Tick e1 = std::min(start + (e + 1) * epochLen, end);
                coreParity_ = static_cast<unsigned>(e & 1);
                reqStage_.beginEpoch(coreParity_);
                // Completions the mem shards staged last epoch become
                // deliverable no earlier than this epoch; replaying
                // them before any boundary keeps toCpu_ in order.
                mergeStagedCompletions(coreParity_ ^ 1u);
                bool coreDirty = true;
                while (true) {
                    if (coreDirty) {
                        tCore =
                            alignUpFrom(nextCore, coreEventAt(), perCore);
                        coreDirty = false;
                    }
                    const Tick t = std::min(tCore, e1);
                    if (nextCore < t) {
                        std::uint64_t skipped;
                        if (t - nextCore <= std::uint64_t{8} * perCore) {
                            skipped = 0;
                            while (nextCore < t) {
                                nextCore += perCore;
                                ++skipped;
                            }
                        } else {
                            skipped =
                                (t - nextCore - TickSpan{1}) / perCore + 1;
                            nextCore += skipped * perCore;
                        }
                        coreCycles_ += CoreCycles{skipped};
                    }
                    now_ = t;
                    if (t == e1)
                        break;
                    coreStepEvent();
                    coreDirty = true;
                    nextCore += perCore;
                }
                barrier.arriveAndWait();
            }
        } else {
            // ---- Memory shard: the controllers of channels ch with
            // ch % memShards == shard-1, on a private copy of the
            // serial kernel's DRAM-boundary walk. Never reads now_.
            const unsigned s = shard - 1;
            KernelStats &ks = shardStats[s];
            Tick nextMem = alignUp(start, perDram);
            for (std::uint64_t e = 0; e < nEpochs; ++e) {
                const Tick e1 = std::min(start + (e + 1) * epochLen, end);
                const unsigned parity = static_cast<unsigned>(e & 1);
                for (std::size_t ch = s; ch < controllers_.size();
                     ch += memShards) {
                    complStage_[ch].stage.beginEpoch(parity);
                    complStage_[ch].parity =
                        static_cast<std::uint8_t>(parity);
                }
                // Absorb the requests the core shard staged last
                // epoch; per-channel order is global push order.
                for (const StagedRequest &sr :
                     reqStage_.readBuf(parity ^ 1u)) {
                    const auto ch = sr.req->coord.channel;
                    if (ch % memShards == s)
                        chArrivals_[ch].push_back(sr);
                }
                while (true) {
                    Tick ev = kMaxTick;
                    for (std::size_t ch = s; ch < controllers_.size();
                         ch += memShards) {
                        if (!chArrivals_[ch].empty() &&
                            chArrivals_[ch].front().readyAt < ev) {
                            ev = chArrivals_[ch].front().readyAt;
                        }
                        if (ctlDueAt_[ch] < ev)
                            ev = ctlDueAt_[ch];
                    }
                    const Tick t = alignUpFrom(nextMem, ev, perDram);
                    if (t >= e1)
                        break;
                    for (std::size_t ch = s; ch < controllers_.size();
                         ch += memShards) {
                        auto &dq = chArrivals_[ch];
                        while (!dq.empty() && dq.front().readyAt <= t) {
                            controllers_[ch]->enqueue(dq.front().req, t);
                            dq.pop_front();
                            ctlDueAt_[ch] = t;
                        }
                        if (ctlDueAt_[ch] <= t) {
                            ctlDueAt_[ch] = controllers_[ch]->tick(t);
                            ++ks.ctlTicksRun;
                        }
                    }
                    ++ks.memStepsRun;
                    nextMem = t + perDram;
                }
                barrier.arriveAndWait();
            }
        }
    });

    // ---- Epilogue (single-threaded again): restore the serial
    // kernel's invariants so serial and parallel windows interleave
    // freely on one System.
    parallelMode_ = false;
    for (const KernelStats &ks : shardStats) {
        kernelStats_.memStepsRun += ks.memStepsRun;
        kernelStats_.ctlTicksRun += ks.ctlTicksRun;
    }
    const unsigned lastParity = static_cast<unsigned>((nEpochs - 1) & 1);
    // In-flight requests nobody consumed — arrivals still waiting for
    // their first DRAM boundary plus the final epoch's unread staging
    // — go back into toMem_ in push order (seq ascending implies
    // readyAt nondecreasing, preserving the link's FIFO contract).
    std::vector<StagedRequest> leftovers;
    for (auto &dq : chArrivals_) {
        leftovers.insert(leftovers.end(), dq.begin(), dq.end());
        dq.clear();
    }
    for (const StagedRequest &sr : reqStage_.readBuf(lastParity))
        leftovers.push_back(sr);
    std::sort(leftovers.begin(), leftovers.end(),
              [](const StagedRequest &a, const StagedRequest &b) {
                  return a.seq < b.seq;
              });
    for (const StagedRequest &sr : leftovers)
        toMem_.pushAt(sr.readyAt, sr.req);
    reqStage_.reset();
    // The final epoch's completions were never replayed; their
    // delivery ticks land at or after end, matching what the serial
    // kernel would have left latched in toCpu_.
    mergeStagedCompletions(lastParity);
    for (auto &cs : complStage_) {
        cs.stage.reset();
        cs.parity = 0;
    }
    memHorizonDirty_ = true;
    syncCores();
}

void
System::resetStats()
{
    statsStartCycle_ = coreCycles_;
    for (auto &core : cores_)
        core->resetStats();
    hierarchy_->resetStats();
    backend_->resetStats(now_);
}

MetricSet
System::collect() const
{
    MetricSet m;
    m.measuredCycles = (coreCycles_ - statsStartCycle_).count();

    std::uint64_t committed = 0;
    for (const auto &core : cores_) {
        committed += core->stats().committedInstructions;
        m.perCoreIpc.push_back(core->stats().ipc());
        m.perCoreCommitted.push_back(core->stats().committedInstructions);
        m.perCoreCycles.push_back(core->stats().cycles);
    }
    if (!m.perCoreIpc.empty()) {
        const auto [lo, hi] = std::minmax_element(m.perCoreIpc.begin(),
                                                  m.perCoreIpc.end());
        m.ipcDisparity = *hi > 0.0 ? *lo / *hi : 1.0;
    }
    m.committedInstructions = committed;
    m.userIpc = m.measuredCycles
                    ? static_cast<double>(committed) /
                          static_cast<double>(m.measuredCycles)
                    : 0.0;
    m.l2Mpki = committed ? 1000.0 *
                               static_cast<double>(
                                   hierarchy_->stats().l2DemandMisses) /
                               static_cast<double>(committed)
                         : 0.0;

    std::uint64_t hits = 0, misses = 0, conflicts = 0;
    TickSpan latTicks;
    std::uint64_t latSamples = 0;
    std::uint64_t singles = 0, activations = 0;
    std::uint64_t casTotal = 0, casSameGroup = 0;
    LogHistogram latencyHist{24};
    for (const auto &mc : controllers_) {
        latencyHist.merge(mc->stats().readLatencyHist);
    }
    m.readLatencyP50 = latencyHist.percentile(0.50);
    m.readLatencyP95 = latencyHist.percentile(0.95);
    m.readLatencyP99 = latencyHist.percentile(0.99);
    for (const auto &mc : controllers_) {
        const auto &s = mc->stats();
        hits += s.rowHits;
        misses += s.rowMisses;
        conflicts += s.rowConflicts;
        latTicks += s.readLatencyTicks;
        latSamples += s.readLatencySamples;
        singles += s.activationAccesses.bucket(1);
        activations += s.activationAccesses.count();
        m.avgReadQueue += s.readQueueLen.mean(now_);
        m.avgWriteQueue += s.writeQueueLen.mean(now_);
        m.memReads += s.servedReads + s.forwardedReads;
        m.memWrites += s.servedWrites;
        const auto &ch = mc->channel().stats();
        casTotal += ch.reads + ch.writes;
        casSameGroup += ch.casSameGroup;
    }
    m.sameGroupCasPct =
        casTotal ? 100.0 * static_cast<double>(casSameGroup) /
                       static_cast<double>(casTotal)
                 : 0.0;
    const std::uint64_t cas = hits + misses + conflicts;
    m.rowHitRatePct =
        cas ? 100.0 * static_cast<double>(hits) / static_cast<double>(cas)
            : 0.0;
    m.avgReadLatency =
        latSamples ? static_cast<double>(latTicks.count()) /
                         static_cast<double>(latSamples) /
                         static_cast<double>(cfg_.clocks.ticksPerCore.count())
                   : 0.0;
    m.singleAccessPct = activations
                            ? 100.0 * static_cast<double>(singles) /
                                  static_cast<double>(activations)
                            : 0.0;
    // Media-side quantities — bus utilization, the energy model, and
    // (stacked backend) per-vault occupancy and remap counters — are
    // the backend's to report.
    backend_->collect(m, now_);
    return m;
}

MetricSet
System::run()
{
    advance(cfg_.warmupCoreCycles);
    resetStats();
    advance(cfg_.measureCoreCycles);
    return collect();
}

} // namespace mcsim
