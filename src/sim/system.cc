#include "system.hh"

#include <algorithm>

#include "common/log.hh"
#include "dram/energy.hh"

namespace mcsim {

namespace {

constexpr std::uint32_t kBlockBytes = 64;

/** Fixed IO buffer placement: below the 1-channel capacity so DMA
 *  addresses are identical across channel-count sweeps. */
constexpr Addr kIoBufferBase = 7ull << 30;          // 7 GiB
constexpr std::uint64_t kIoBufferBytes = 512 << 20; // 512 MiB

} // namespace

System::System(const SimConfig &cfg, const WorkloadParams &workload)
    : cfg_(cfg), toMem_(cfg.clocks.coreToTicks(cfg.xbarLatencyCycles)),
      toCpu_(cfg.clocks.coreToTicks(cfg.xbarLatencyCycles))
{
    cfg_.numCores = workload.cores;
    cfg_.core.mlpWindow = cfg_.coreMlpOverride ? cfg_.coreMlpOverride
                                               : workload.mlpWindow;
    cfg_.core.storeBufferEntries = workload.storeBufferEntries;

    build(cfg_, cfg_.numCores);
    ownedGenerator_ = std::make_unique<SyntheticWorkload>(
        workload, dram_->geometry().capacityBytes());
    generator_ = ownedGenerator_.get();

    if (workload.ioWindow > 0) {
        io_.enabled = true;
        io_.window = workload.ioWindow;
        io_.burstBlocks = workload.ioBurstBlocks;
        io_.writeFrac = workload.ioWriteFrac;
        io_.thinkTicks = cfg_.clocks.dramToTicks(workload.ioThinkDramCycles);
        io_.bufferBase = kIoBufferBase;
        io_.bufferBlocks = kIoBufferBytes / kBlockBytes;
        io_.rng.reseed(workload.seed * 7919 + 17, 0x10);
        mc_assert(kIoBufferBase + kIoBufferBytes <=
                      dram_->geometry().capacityBytes(),
                  "IO buffer does not fit in DRAM");
    }

    for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
        cores_.push_back(std::make_unique<Core>(c, *generator_,
                                                *hierarchy_, cfg_.core));
    }
}

System::System(const SimConfig &cfg, WorkloadGenerator &generator,
               std::uint32_t numCores)
    : cfg_(cfg), toMem_(cfg.clocks.coreToTicks(cfg.xbarLatencyCycles)),
      toCpu_(cfg.clocks.coreToTicks(cfg.xbarLatencyCycles))
{
    cfg_.numCores = numCores;
    build(cfg_, numCores);
    generator_ = &generator;
    for (std::uint32_t c = 0; c < numCores; ++c) {
        cores_.push_back(std::make_unique<Core>(c, *generator_,
                                                *hierarchy_, cfg_.core));
    }
}

System::~System() = default;

void
System::build(const SimConfig &cfg, std::uint32_t numCores)
{
    mapper_ = std::make_unique<AddressMapper>(cfg.dram, cfg.mapping,
                                              cfg.bankGroupMapping);
    dram_ = std::make_unique<DramSystem>(cfg.dram, cfg.timings,
                                         cfg.refreshEnabled, cfg.clocks);
    for (std::uint32_t ch = 0; ch < cfg.dram.channels; ++ch) {
        auto mc = std::make_unique<MemController>(
            dram_->channel(ch),
            makeScheduler(cfg.scheduler, numCores, cfg.schedulerParams,
                          cfg.clocks, cfg.timings),
            makePagePolicy(cfg.pagePolicy, cfg.clocks), numCores,
            cfg.controller);
        mc->setCompletionCallback(
            [this](Request *req) { onMemComplete(req); });
        controllers_.push_back(std::move(mc));
    }
    hierarchy_ = std::make_unique<CacheHierarchy>(numCores, cfg.hierarchy);
    hierarchy_->setSendMemRead(
        [this](CoreId core, Addr addr) { sendMemRead(core, addr); });
    hierarchy_->setSendMemWrite(
        [this](CoreId core, Addr addr) { sendMemWrite(core, addr); });
    hierarchy_->setWake([this](CoreId core, MissKind kind) {
        // Account the blocked stretch under the pre-wake flags before
        // the unblock mutates them.
        cores_[core]->catchUpTo(coreCycles_);
        cores_[core]->missReturned(kind);
        coreDueCycle_[core] = cores_[core]->nextActCycle();
    });
    ctlDueAt_.assign(controllers_.size(), Tick{});
    coreDueCycle_.assign(numCores, CoreCycle{});
}

Request *
System::allocRequest(CoreId core, Addr addr, bool isWrite, bool isIo)
{
    Request *req;
    if (!freeRequests_.empty()) {
        req = freeRequests_.back();
        freeRequests_.pop_back();
    } else {
        requestStorage_.push_back(std::make_unique<Request>());
        req = requestStorage_.back().get();
    }
    *req = Request{};
    req->id = ++nextRequestId_;
    req->core = core;
    req->addr = addr;
    req->isWrite = isWrite;
    req->isIo = isIo;
    req->coord = mapper_->decode(addr);
    return req;
}

void
System::freeRequest(Request *req)
{
    freeRequests_.push_back(req);
}

void
System::sendMemRead(CoreId core, Addr blockAddr)
{
    toMem_.push(now_, allocRequest(core, blockAddr, false, false));
    memHorizonDirty_ = true;
}

void
System::sendMemWrite(CoreId core, Addr blockAddr)
{
    toMem_.push(now_, allocRequest(core, blockAddr, true, false));
    memHorizonDirty_ = true;
}

void
System::onMemComplete(Request *req)
{
    if (req->isIo && !req->isWrite) {
        // IO reads are closed-loop; IO writes are posted (the device
        // got its ack at issue time and never held a window slot).
        mc_assert(io_.outstanding > 0, "spurious IO completion");
        --io_.outstanding;
        io_.nextIssueAt = now_ + io_.thinkTicks;
    } else if (!req->isIo && !req->isWrite) {
        toCpu_.push(now_, {req->core, req->addr});
    }
    freeRequest(req);
}

void
System::ioStep()
{
    if (!io_.enabled || io_.outstanding >= io_.window ||
        now_ < io_.nextIssueAt) {
        return;
    }
    if (io_.burstLeft == 0) {
        io_.streamPos = io_.rng.below64(io_.bufferBlocks);
        io_.burstLeft = io_.burstBlocks;
    }
    const Addr addr = io_.bufferBase + io_.streamPos * kBlockBytes;
    io_.streamPos = (io_.streamPos + 1) % io_.bufferBlocks;
    --io_.burstLeft;
    const bool isWrite = io_.rng.chance(io_.writeFrac);
    toMem_.push(now_, allocRequest(kIoCoreId, addr, isWrite, true));
    if (isWrite) {
        // Posted: the device paces itself on the ack, not on DRAM.
        io_.nextIssueAt = now_ + io_.thinkTicks;
    } else {
        ++io_.outstanding;
    }
}

void
System::coreStep(bool eager)
{
    while (toCpu_.ready(now_)) {
        const CpuResponse resp = toCpu_.pop();
        hierarchy_->onMemResponse(resp.core, resp.addr);
    }
    const CoreCycle cycle = coreCycles_;
    CoreCycle minAct = kNeverCycle;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (eager || coreDueCycle_[i] <= cycle) {
            Core &core = *cores_[i];
            core.catchUpTo(cycle);
            core.tick();
            ++kernelStats_.coreTicksRun;
            coreDueCycle_[i] = core.nextActCycle();
        }
        if (coreDueCycle_[i] < minAct)
            minAct = coreDueCycle_[i];
    }
    coreCycles_ += CoreCycles{1};
    ++kernelStats_.coreStepsRun;
    coreActEventAt_ = minAct == kNeverCycle
                          ? kMaxTick
                          : cfg_.clocks.coreToTicks(minAct);
}

void
System::coreStepEvent()
{
    while (toCpu_.ready(now_)) {
        const CpuResponse resp = toCpu_.pop();
        hierarchy_->onMemResponse(resp.core, resp.addr);
    }
    const CoreCycle cycle = coreCycles_;
    CoreCycle minAct = kNeverCycle;
    // detlint-allow(raw-tick): counts tick() calls, not time
    std::uint64_t ticks = 0;
    std::uint64_t batchRuns = 0;
    std::uint64_t cyclesBatched = 0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (coreDueCycle_[i] <= cycle) {
            Core &core = *cores_[i];
            // Guarded inline: a core that batched to (or past) this
            // cycle has nothing to account, which is the common case
            // here — unlike the eager loop, where catch-up is almost
            // always a no-op and stays an out-of-line call.
            if (core.syncedCycles() < cycle)
                core.catchUpTo(cycle);
            core.tick();
            ++ticks;
            // Greedy batch: run the core ahead through provably
            // core-private cycles (L1 hits, compute commits) so the
            // kernel never has to revisit it for them.
            const std::uint64_t batched = core.runBatch(batchLimit_);
            if (batched > 0) {
                ++batchRuns;
                cyclesBatched += batched;
            }
            coreDueCycle_[i] = core.nextActCycle();
        }
        if (coreDueCycle_[i] < minAct)
            minAct = coreDueCycle_[i];
    }
    kernelStats_.coreTicksRun += ticks;
    kernelStats_.coreBatchRuns += batchRuns;
    kernelStats_.coreCyclesBatched += cyclesBatched;
    coreCycles_ += CoreCycles{1};
    ++kernelStats_.coreStepsRun;
    coreActEventAt_ = minAct == kNeverCycle
                          ? kMaxTick
                          : cfg_.clocks.coreToTicks(minAct);
}

void
System::memStep(bool eager)
{
    while (toMem_.ready(now_)) {
        Request *req = toMem_.pop();
        const auto ch = req->coord.channel;
        controllers_[ch]->enqueue(req, now_);
        ctlDueAt_[ch] = now_; // Arrivals re-arm a sleeping controller.
    }
    ioStep();
    for (std::size_t i = 0; i < controllers_.size(); ++i) {
        if (eager || ctlDueAt_[i] <= now_) {
            ctlDueAt_[i] = controllers_[i]->tick(now_);
            ++kernelStats_.ctlTicksRun;
        }
    }
    ++kernelStats_.memStepsRun;
}

void
System::syncCores()
{
    for (auto &core : cores_)
        core->catchUpTo(coreCycles_);
}

Tick
System::coreEventAt() const
{
    const Tick latch = toCpu_.nextReadyAt();
    return latch < coreActEventAt_ ? latch : coreActEventAt_;
}

Tick
System::ioEventAt() const
{
    if (!io_.enabled || io_.outstanding >= io_.window)
        return kMaxTick;
    return io_.nextIssueAt;
}

Tick
System::memEventAt() const
{
    Tick ev = toMem_.nextReadyAt();
    const Tick io = ioEventAt();
    if (io < ev)
        ev = io;
    for (const Tick due : ctlDueAt_) {
        if (due < ev)
            ev = due;
    }
    return ev;
}

namespace {

/** Round @p t up to the next boundary of @p step's grid, saturating. */
Tick
alignUp(Tick t, TickSpan step)
{
    if (t > kMaxTick - step)
        return kMaxTick;
    const TickSpan phase = t % step;
    return phase == TickSpan{0} ? t : t + (step - phase);
}

/**
 * Round @p t up to the next boundary of @p step's grid, given that
 * @p grid already is a boundary at or before the result. Event
 * horizons usually sit within a few boundaries of the pending one, so
 * a short walk from @p grid dodges alignUp()'s 64-bit division.
 */
Tick
alignUpFrom(Tick grid, Tick t, TickSpan step)
{
    if (t <= grid)
        return grid;
    if (t - grid <= std::uint64_t{8} * step) {
        if (t > kMaxTick - step)
            return kMaxTick;
        while (grid < t)
            grid += step;
        return grid;
    }
    return alignUp(t, step);
}

} // namespace

void
System::referenceAdvance(Tick end)
{
    const ClockDomains &clk = cfg_.clocks;
    while (now_ < end) {
        if (now_ % clk.ticksPerCore == TickSpan{0})
            coreStep(true);
        if (now_ % clk.ticksPerDram == TickSpan{0})
            memStep(true);
        now_ += TickSpan{1};
    }
}

void
System::advance(std::uint64_t coreCycles)
{
    const Tick end = now_ + cfg_.clocks.coreToTicks(coreCycles);
    if (referenceKernel_) {
        referenceAdvance(end);
        syncCores();
        return;
    }

    // Pending step boundaries: the first tick of each domain's grid at
    // or after now_ that has not executed yet. The grid steps come from
    // the runtime clock domains, so the walk works for any core:DRAM
    // ratio (the baseline's 2:5 pattern repeating every LCM = 10 ticks
    // is just one instance).
    const TickSpan perCore = cfg_.clocks.ticksPerCore;
    const TickSpan perDram = cfg_.clocks.ticksPerDram;
    Tick nextCore = alignUp(now_, perCore);
    Tick nextMem = alignUp(now_, perDram);
    // Cached aligned horizons. A horizon only moves when its domain's
    // inputs move: the core horizon on a core step or a memory step
    // (which may latch a response toward the cores), the memory
    // horizon on a memory step or a crossbar push from the core side
    // (memHorizonDirty_, set by sendMemRead/Write). Idle boundary
    // elapses never invalidate either (a cached horizon past the
    // elapsed boundary stays on its grid ahead of the new pending
    // boundary), so most iterations skip the recompute entirely.
    Tick tCore{};
    Tick tMem{};
    bool coreDirty = true;
    memHorizonDirty_ = true;
    // Cap batches at the window's final cycle count. The bound is
    // invariant across the window: every boundary in [nextCore, end)
    // adds exactly one core cycle whether it is stepped, skipped, or
    // idle, so compute it once instead of re-deriving (with a 64-bit
    // division) at every stepped boundary.
    batchLimit_ =
        end > nextCore
            ? coreCycles_ +
                  CoreCycles{(end - nextCore - TickSpan{1}) / perCore + 1}
            : coreCycles_;
    while (true) {
        // Earliest boundary of each domain that must actually execute.
        // Events are computed from post-step state, and nothing runs
        // between here and that boundary, so every boundary before it
        // is a provable no-op.
        if (coreDirty) {
            tCore = alignUpFrom(nextCore, coreEventAt(), perCore);
            coreDirty = false;
        }
        if (memHorizonDirty_) {
            tMem = alignUpFrom(nextMem, memEventAt(), perDram);
            memHorizonDirty_ = false;
        }
        const Tick t = std::min(std::min(tCore, tMem), end);

        // Skipped core boundaries still elapse simulated core cycles;
        // the cores account theirs lazily against coreCycles_. Short
        // gaps (the common case) walk instead of dividing.
        if (nextCore < t) {
            std::uint64_t skipped;
            if (t - nextCore <= std::uint64_t{8} * perCore) {
                skipped = 0;
                while (nextCore < t) {
                    nextCore += perCore;
                    ++skipped;
                }
            } else {
                skipped = (t - nextCore - TickSpan{1}) / perCore + 1;
                nextCore += skipped * perCore;
            }
            coreCycles_ += CoreCycles{skipped};
        }
        if (nextMem < t) {
            if (t - nextMem <= std::uint64_t{8} * perDram) {
                while (nextMem < t)
                    nextMem += perDram;
            } else {
                nextMem +=
                    ((t - nextMem - TickSpan{1}) / perDram + 1) * perDram;
            }
        }

        now_ = t;
        if (t == end)
            break;
        // A boundary shared with the other domain may itself be idle
        // (tCore/tMem past t); it still elapses but needs no step.
        if (t == nextCore) {
            if (tCore <= t) {
                coreStepEvent();
                coreDirty = true;
            } else {
                coreCycles_ += CoreCycles{1};
            }
            nextCore += perCore;
        }
        if (t == nextMem) {
            if (tMem <= t) {
                memStep(false);
                memHorizonDirty_ = true;
                coreDirty = true; // A completion may have latched toCpu_.
            }
            nextMem += perDram;
        }
    }
    syncCores();
}

void
System::resetStats()
{
    statsStartCycle_ = coreCycles_;
    for (auto &core : cores_)
        core->resetStats();
    hierarchy_->resetStats();
    for (auto &mc : controllers_)
        mc->resetStats(now_);
}

MetricSet
System::collect() const
{
    MetricSet m;
    m.measuredCycles = (coreCycles_ - statsStartCycle_).count();

    std::uint64_t committed = 0;
    for (const auto &core : cores_) {
        committed += core->stats().committedInstructions;
        m.perCoreIpc.push_back(core->stats().ipc());
        m.perCoreCommitted.push_back(core->stats().committedInstructions);
        m.perCoreCycles.push_back(core->stats().cycles);
    }
    if (!m.perCoreIpc.empty()) {
        const auto [lo, hi] = std::minmax_element(m.perCoreIpc.begin(),
                                                  m.perCoreIpc.end());
        m.ipcDisparity = *hi > 0.0 ? *lo / *hi : 1.0;
    }
    m.committedInstructions = committed;
    m.userIpc = m.measuredCycles
                    ? static_cast<double>(committed) /
                          static_cast<double>(m.measuredCycles)
                    : 0.0;
    m.l2Mpki = committed ? 1000.0 *
                               static_cast<double>(
                                   hierarchy_->stats().l2DemandMisses) /
                               static_cast<double>(committed)
                         : 0.0;

    std::uint64_t hits = 0, misses = 0, conflicts = 0;
    TickSpan latTicks;
    std::uint64_t latSamples = 0;
    std::uint64_t singles = 0, activations = 0;
    std::uint64_t casTotal = 0, casSameGroup = 0;
    LogHistogram latencyHist{24};
    for (const auto &mc : controllers_) {
        latencyHist.merge(mc->stats().readLatencyHist);
    }
    m.readLatencyP50 = latencyHist.percentile(0.50);
    m.readLatencyP95 = latencyHist.percentile(0.95);
    m.readLatencyP99 = latencyHist.percentile(0.99);
    for (const auto &mc : controllers_) {
        const auto &s = mc->stats();
        hits += s.rowHits;
        misses += s.rowMisses;
        conflicts += s.rowConflicts;
        latTicks += s.readLatencyTicks;
        latSamples += s.readLatencySamples;
        singles += s.activationAccesses.bucket(1);
        activations += s.activationAccesses.count();
        m.avgReadQueue += s.readQueueLen.mean(now_);
        m.avgWriteQueue += s.writeQueueLen.mean(now_);
        m.memReads += s.servedReads + s.forwardedReads;
        m.memWrites += s.servedWrites;
        const auto &ch = mc->channel().stats();
        casTotal += ch.reads + ch.writes;
        casSameGroup += ch.casSameGroup;
    }
    m.sameGroupCasPct =
        casTotal ? 100.0 * static_cast<double>(casSameGroup) /
                       static_cast<double>(casTotal)
                 : 0.0;
    const std::uint64_t cas = hits + misses + conflicts;
    m.rowHitRatePct =
        cas ? 100.0 * static_cast<double>(hits) / static_cast<double>(cas)
            : 0.0;
    m.avgReadLatency =
        latSamples ? static_cast<double>(latTicks.count()) /
                         static_cast<double>(latSamples) /
                         static_cast<double>(cfg_.clocks.ticksPerCore.count())
                   : 0.0;
    m.singleAccessPct = activations
                            ? 100.0 * static_cast<double>(singles) /
                                  static_cast<double>(activations)
                            : 0.0;
    m.bwUtilPct = 100.0 * dram_->busUtilization(now_);

    const DramEnergyModel energyModel(cfg_.power, cfg_.timings,
                                      cfg_.dram.ranksPerChannel,
                                      cfg_.dram.banksPerRank,
                                      cfg_.clocks);
    // Every channel's stats window starts at the same resetStats()
    // tick, so the elapsed time is one number, not per-controller.
    const double elapsedNs =
        controllers_.empty()
            ? 0.0
            : cfg_.clocks.ticksToNs(
                  now_ -
                  controllers_.front()->channel().stats().statsStartTick);
    for (const auto &mc : controllers_) {
        m.dramEnergyNj +=
            energyModel.estimate(mc->channel().stats(), now_).totalNj();
    }
    m.dramAvgPowerMw =
        elapsedNs > 0.0 ? m.dramEnergyNj * 1e3 / elapsedNs : 0.0;
    return m;
}

MetricSet
System::run()
{
    advance(cfg_.warmupCoreCycles);
    resetStats();
    advance(cfg_.measureCoreCycles);
    return collect();
}

} // namespace mcsim
