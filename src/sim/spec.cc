#include "spec.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/bitutils.hh"
#include "dram/devices.hh"

namespace mcsim {

namespace {

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Split a comma-separated value list, trimming each element. */
std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = value.find(',', start);
        const std::string item = trim(
            comma == std::string::npos ? value.substr(start)
                                       : value.substr(start, comma - start));
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

bool
parseUint(const std::string &text, std::uint64_t &out)
{
    // Digits only: strtoull would silently wrap "-1" to 2^64-1.
    if (text.empty() ||
        !std::isdigit(static_cast<unsigned char>(text[0]))) {
        return false;
    }
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
findWorkload(const std::string &name, WorkloadId &out)
{
    for (auto w : kAllWorkloads) {
        if (name == workloadAcronym(w)) {
            out = w;
            return true;
        }
    }
    return false;
}

bool
findScheduler(const std::string &name, SchedulerKind &out)
{
    for (auto k : kAllSchedulers) {
        if (name == schedulerKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool
findPolicy(const std::string &name, PagePolicyKind &out)
{
    for (auto k : kAllPagePolicies) {
        if (name == pagePolicyKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool
findMapping(const std::string &name, MappingScheme &out)
{
    for (auto s : kExtendedMappingSchemes) {
        if (name == mappingSchemeName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

/** Parse one list-valued axis through a per-item name lookup. */
template <typename T, typename Lookup>
std::string
parseAxis(const std::string &value, const char *what, Lookup lookup,
          std::vector<T> &out)
{
    out.clear();
    for (const std::string &item : splitList(value)) {
        T parsed;
        if (!lookup(item, parsed))
            return std::string("unknown ") + what + " '" + item + "'";
        out.push_back(parsed);
    }
    if (out.empty())
        return std::string("empty ") + what + " list";
    return {};
}

} // namespace

std::size_t
ExperimentSpec::pointCount() const
{
    const auto n = [](std::size_t axis) { return axis ? axis : 1; };
    return n(devices.size()) * n(schedulers.size()) * n(policies.size()) *
           n(mappings.size()) * n(groupMappings.size()) *
           n(channelCounts.size()) * n(vaultCounts.size()) *
           n(workloads.size());
}

std::vector<ExperimentRunner::Point>
ExperimentSpec::points() const
{
    // Empty axes collapse to the base configuration's single value.
    const std::vector<std::string> devs =
        devices.empty() ? std::vector<std::string>{base.deviceName}
                        : devices;
    const auto scheds = schedulers.empty()
                            ? std::vector<SchedulerKind>{base.scheduler}
                            : schedulers;
    const auto pols = policies.empty()
                          ? std::vector<PagePolicyKind>{base.pagePolicy}
                          : policies;
    const auto maps = mappings.empty()
                          ? std::vector<MappingScheme>{base.mapping}
                          : mappings;
    const auto gmaps =
        groupMappings.empty()
            ? std::vector<BankGroupMapping>{base.bankGroupMapping}
            : groupMappings;
    const auto chans =
        channelCounts.empty() ? std::vector<std::uint32_t>{
                                    base.dram.channels}
                              : channelCounts;
    const auto wls = workloads.empty()
                         ? std::vector<WorkloadId>{WorkloadId::DS}
                         : workloads;
    // 0 = keep the device's registry vault count (also the flat case).
    const auto vaults = vaultCounts.empty()
                            ? std::vector<std::uint32_t>{0}
                            : vaultCounts;

    std::vector<ExperimentRunner::Point> out;
    out.reserve(devs.size() * scheds.size() * pols.size() * maps.size() *
                gmaps.size() * chans.size() * vaults.size() * wls.size());
    for (const std::string &dev : devs) {
        SimConfig devCfg = base;
        devCfg.applyDevice(dramDeviceOrDie(dev));
        for (auto sched : scheds) {
            for (auto pol : pols) {
                for (auto map : maps) {
                    for (auto gmap : gmaps) {
                        for (auto ch : chans) {
                            for (auto vc : vaults) {
                                SimConfig cfg = devCfg;
                                cfg.scheduler = sched;
                                cfg.pagePolicy = pol;
                                cfg.mapping = map;
                                cfg.bankGroupMapping = gmap;
                                cfg.dram.channels = ch;
                                if (vc)
                                    cfg.setVaults(vc);
                                for (auto wl : wls) {
                                    ExperimentRunner::Point p(wl, cfg);
                                    if (fairness) {
                                        ExperimentRunner::
                                            attachAloneBaseline(p);
                                    }
                                    out.push_back(std::move(p));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

std::string
parseExperimentSpec(const std::string &text, ExperimentSpec &out)
{
    out = ExperimentSpec{};
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    const auto err = [&lineNo](const std::string &msg) {
        return "line " + std::to_string(lineNo) + ": " + msg;
    };

    while (std::getline(in, line)) {
        ++lineNo;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return err("expected 'key = value', got '" + line + "'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            return err("missing key before '='");
        if (value.empty())
            return err("missing value for '" + key + "'");

        std::string axisErr;
        if (key == "device" || key == "devices") {
            axisErr = parseAxis<std::string>(
                value, "device",
                [](const std::string &n, std::string &o) {
                    if (!findDramDevice(n))
                        return false;
                    o = n;
                    return true;
                },
                out.devices);
        } else if (key == "scheduler" || key == "schedulers") {
            axisErr = parseAxis<SchedulerKind>(value, "scheduler",
                                               findScheduler,
                                               out.schedulers);
        } else if (key == "policy" || key == "policies") {
            axisErr = parseAxis<PagePolicyKind>(value, "page policy",
                                                findPolicy, out.policies);
        } else if (key == "mapping" || key == "mappings") {
            axisErr = parseAxis<MappingScheme>(value, "mapping scheme",
                                               findMapping, out.mappings);
        } else if (key == "group_mapping" || key == "group_mappings") {
            axisErr = parseAxis<BankGroupMapping>(
                value, "bank-group mapping",
                tryBankGroupMappingFromName, out.groupMappings);
        } else if (key == "workload" || key == "workloads") {
            axisErr = parseAxis<WorkloadId>(value, "workload",
                                            findWorkload, out.workloads);
        } else if (key == "channels") {
            axisErr = parseAxis<std::uint32_t>(
                value, "channel count",
                [](const std::string &n, std::uint32_t &o) {
                    std::uint64_t v = 0;
                    if (!parseUint(n, v) || v == 0 || !isPowerOf2(v))
                        return false;
                    o = static_cast<std::uint32_t>(v);
                    return true;
                },
                out.channelCounts);
        } else if (key == "core_mhz") {
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v == 0 || v > 1'000'000)
                return err("core_mhz needs an integer in [1, 1000000] "
                           "MHz, got '" +
                           value + "'");
            out.base.setCoreMhz(static_cast<std::uint32_t>(v));
        } else if (key == "warmup") {
            std::uint64_t v = 0;
            if (!parseUint(value, v))
                return err("warmup needs a cycle count, got '" + value +
                           "'");
            out.base.warmupCoreCycles = v;
        } else if (key == "measure") {
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v == 0)
                return err("measure needs a nonzero cycle count, got '" +
                           value + "'");
            out.base.measureCoreCycles = v;
        } else if (key == "kernel_threads") {
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v == 0 || v > 1024)
                return err("kernel_threads needs an integer in [1, 1024], "
                           "got '" +
                           value + "'");
            out.base.kernelThreads = static_cast<std::uint32_t>(v);
        } else if (key == "seed") {
            std::uint64_t v = 0;
            if (!parseUint(value, v))
                return err("seed needs an integer, got '" + value + "'");
            out.base.seed = v;
        } else if (key == "refresh") {
            if (value == "on")
                out.base.refreshEnabled = true;
            else if (value == "off")
                out.base.refreshEnabled = false;
            else
                return err("refresh must be 'on' or 'off', got '" + value +
                           "'");
        } else if (key == "fairness") {
            if (value == "on")
                out.fairness = true;
            else if (value == "off")
                out.fairness = false;
            else
                return err("fairness must be 'on' or 'off', got '" +
                           value + "'");
        } else if (key == "backend") {
            out.hasBackend = true;
            if (value == "flat")
                out.backendKind = MemBackendKind::FlatDram;
            else if (value == "stacked")
                out.backendKind = MemBackendKind::StackedDram;
            else
                return err("backend must be 'flat' or 'stacked', got '" +
                           value + "'");
        } else if (key == "vaults") {
            axisErr = parseAxis<std::uint32_t>(
                value, "vault count",
                [](const std::string &n, std::uint32_t &o) {
                    std::uint64_t v = 0;
                    if (!parseUint(n, v) || v == 0 || !isPowerOf2(v))
                        return false;
                    o = static_cast<std::uint32_t>(v);
                    return true;
                },
                out.vaultCounts);
        } else if (key == "remap") {
            out.hasRemap = true;
            if (value == "on")
                out.base.remap.enabled = true;
            else if (value == "off")
                out.base.remap.enabled = false;
            else
                return err("remap must be 'on' or 'off', got '" + value +
                           "'");
        } else if (key == "tier") {
            out.hasTier = true;
            if (value == "on")
                out.base.tier.enabled = true;
            else if (value == "off")
                out.base.tier.enabled = false;
            else
                return err("tier must be 'on' or 'off', got '" + value +
                           "'");
        } else if (key == "tier_policy") {
            if (out.tierOnlyKey.empty())
                out.tierOnlyKey = key;
            if (!tryTierPolicyFromName(value, out.base.tier.policy))
                return err("tier_policy must be 'static_split', "
                           "'hotness_based', or 'alloy_cache', got '" +
                           value + "'");
        } else if (key == "tier_latency") {
            if (out.tierOnlyKey.empty())
                out.tierOnlyKey = key;
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v > 1'000'000)
                return err("tier_latency needs a DRAM cycle count in "
                           "[0, 1000000], got '" +
                           value + "'");
            out.base.tier.slowLatencyDramCycles =
                static_cast<std::uint32_t>(v);
        } else if (key == "tier_bw") {
            if (out.tierOnlyKey.empty())
                out.tierOnlyKey = key;
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v == 0 || v > 100)
                return err("tier_bw needs a percentage in [1, 100], "
                           "got '" +
                           value + "'");
            out.base.tier.slowBwPct = static_cast<std::uint32_t>(v);
        } else if (key == "tier_capacity_pct") {
            if (out.tierOnlyKey.empty())
                out.tierOnlyKey = key;
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v == 0 || v > 100)
                return err("tier_capacity_pct needs a percentage in "
                           "[1, 100], got '" +
                           value + "'");
            out.base.tier.fastCapacityPct = static_cast<std::uint32_t>(v);
        } else if (key == "tier_hot_factor") {
            if (out.tierOnlyKey.empty())
                out.tierOnlyKey = key;
            char *end = nullptr;
            const double v = std::strtod(value.c_str(), &end);
            if (end != value.c_str() + value.size() || !(v > 0.0))
                return err("tier_hot_factor needs a number > 0, got '" +
                           value + "'");
            out.base.tier.hotFactor = v;
        } else if (key == "tier_migration_cycles") {
            if (out.tierOnlyKey.empty())
                out.tierOnlyKey = key;
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v == 0 || v > 1'000'000)
                return err("tier_migration_cycles needs a DRAM cycle "
                           "count in [1, 1000000], got '" +
                           value + "'");
            out.base.tier.migrationCyclesPerRow =
                static_cast<std::uint32_t>(v);
        } else if (key == "monitor_sample") {
            if (out.tierOnlyKey.empty())
                out.tierOnlyKey = key;
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v == 0 || v > 1'000'000)
                return err("monitor_sample needs an integer in "
                           "[1, 1000000], got '" +
                           value + "'");
            out.base.tier.monitorSampleEvery =
                static_cast<std::uint32_t>(v);
        } else if (key == "monitor_window") {
            if (out.tierOnlyKey.empty())
                out.tierOnlyKey = key;
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v == 0 || v > 100'000'000)
                return err("monitor_window needs an integer in "
                           "[1, 100000000], got '" +
                           value + "'");
            out.base.tier.monitorWindowSamples =
                static_cast<std::uint32_t>(v);
        } else if (key == "monitor_min_regions") {
            if (out.tierOnlyKey.empty())
                out.tierOnlyKey = key;
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v == 0 || v > 1'000'000)
                return err("monitor_min_regions needs an integer in "
                           "[1, 1000000], got '" +
                           value + "'");
            out.base.tier.monitorMinRegions =
                static_cast<std::uint32_t>(v);
        } else if (key == "monitor_max_regions") {
            if (out.tierOnlyKey.empty())
                out.tierOnlyKey = key;
            std::uint64_t v = 0;
            if (!parseUint(value, v) || v == 0 || v > 1'000'000)
                return err("monitor_max_regions needs an integer in "
                           "[1, 1000000], got '" +
                           value + "'");
            out.base.tier.monitorMaxRegions =
                static_cast<std::uint32_t>(v);
        } else {
            return err("unknown key '" + key + "'");
        }
        if (!axisErr.empty())
            return err(axisErr);
    }

    // `backend = stacked` with no device axis selects the stacked
    // reference part; `flat` is just an assertion over the sweep.
    if (out.hasBackend &&
        out.backendKind == MemBackendKind::StackedDram &&
        out.devices.empty()) {
        out.base.applyDevice(dramDeviceOrDie("HMC2-8GB"));
    }

    // Reconcile the backend key and the stacked-only keys against the
    // devices the sweep will actually build. Silently ignoring a remap
    // or vault knob on a flat part would masquerade as a null result,
    // so each mismatch is a named error.
    const std::vector<std::string> effDevs =
        out.devices.empty() ? std::vector<std::string>{out.base.deviceName}
                            : out.devices;
    for (const std::string &d : effDevs) {
        const bool stacked =
            dramDeviceOrDie(d).geometry.vaultsPerStack > 0;
        if (out.hasBackend &&
            out.backendKind == MemBackendKind::StackedDram && !stacked) {
            return "backend = stacked, but device '" + d +
                   "' is a flat JEDEC part";
        }
        if (out.hasBackend &&
            out.backendKind == MemBackendKind::FlatDram && stacked) {
            return "backend = flat, but device '" + d +
                   "' is a stacked part";
        }
        if (out.hasRemap && !stacked) {
            return "remap applies to the stacked backend only, but "
                   "device '" +
                   d + "' is a flat JEDEC part (set backend = stacked "
                       "or pick a stacked device)";
        }
        if (!out.vaultCounts.empty() && !stacked) {
            return "vaults applies to the stacked backend only, but "
                   "device '" +
                   d + "' is a flat JEDEC part (set backend = stacked "
                       "or pick a stacked device)";
        }
    }
    for (std::uint32_t vc : out.vaultCounts) {
        for (const std::string &d : effDevs) {
            const DramGeometry &g = dramDeviceOrDie(d).geometry;
            if (std::uint64_t(g.rowsPerBank) * g.vaultsPerStack % vc != 0)
                return "vault count " + std::to_string(vc) +
                       " cannot preserve device '" + d + "' capacity";
        }
    }

    // The tiered-only keys mirror the stacked-only ones: a tier_* or
    // monitor_* knob on a config that never composes the tiered
    // backend would be silently ignored, so it is a named error.
    if (!out.tierOnlyKey.empty() && !out.base.tier.enabled) {
        return "'" + out.tierOnlyKey +
               "' applies to the tiered backend only, but the spec "
               "does not enable it (put 'tier = on' first)";
    }
    if (out.base.tier.enabled &&
        out.base.tier.monitorMaxRegions < out.base.tier.monitorMinRegions) {
        return "monitor_max_regions (" +
               std::to_string(out.base.tier.monitorMaxRegions) +
               ") must be >= monitor_min_regions (" +
               std::to_string(out.base.tier.monitorMinRegions) + ")";
    }

    // Single-valued axes also shape the base config so a spec doubles
    // as a plain configuration file for one-off runs.
    if (out.devices.size() == 1)
        out.base.applyDevice(dramDeviceOrDie(out.devices.front()));
    if (out.schedulers.size() == 1)
        out.base.scheduler = out.schedulers.front();
    if (out.policies.size() == 1)
        out.base.pagePolicy = out.policies.front();
    if (out.mappings.size() == 1)
        out.base.mapping = out.mappings.front();
    if (out.groupMappings.size() == 1)
        out.base.bankGroupMapping = out.groupMappings.front();
    if (out.channelCounts.size() == 1)
        out.base.dram.channels = out.channelCounts.front();
    // (Guarded: with a multi-device stacked sweep the base config is
    // not any one device's, so the vault override applies per point.)
    if (out.vaultCounts.size() == 1 && out.base.dram.vaultsPerStack > 0)
        out.base.setVaults(out.vaultCounts.front());
    return {};
}

std::string
loadExperimentSpec(const std::string &path, ExperimentSpec &out)
{
    std::ifstream in(path);
    if (!in)
        return "cannot open spec file '" + path + "'";
    std::ostringstream text;
    text << in.rdbuf();
    return parseExperimentSpec(text.str(), out);
}

} // namespace mcsim
