/**
 * @file
 * Command-line configuration for the examples and one-off experiment
 * runs: parse `--scheduler/--policy/--channels/--mapping/--workload/
 * --device/--config/--warmup/--measure/--seed/--fast` style arguments
 * onto a SimConfig, a workload selection and (optionally) a sweep
 * spec, with generated usage/--list text. Keeps every tool's flag
 * vocabulary identical.
 */

#ifndef CLOUDMC_SIM_OPTIONS_HH
#define CLOUDMC_SIM_OPTIONS_HH

#include <string>
#include <vector>

#include "sim_config.hh"
#include "spec.hh"
#include "workload/presets.hh"

namespace mcsim {

/** Parsed command line for an experiment-style tool. */
struct ExperimentOptions
{
    SimConfig config = SimConfig::baseline();
    WorkloadId workload = WorkloadId::DS;
    bool csv = false;
    /** Set by --fairness: run alone-run baselines and report the
     *  slowdown/fairness metrics (also turned on by a spec's
     *  `fairness = on` key). */
    bool fairness = false;
    /** Leftover positional arguments, in order. */
    std::vector<std::string> positional;
    /** Set when --help was requested; the caller should print usage. */
    bool helpRequested = false;
    /** Set when --list was requested; print listText() and exit. */
    bool listRequested = false;
    /** Sweep spec loaded by --config (valid when hasSpec). Its base
     *  configuration is also merged into `config`, so tools that only
     *  run one point still honor the file's scalar keys. */
    ExperimentSpec spec;
    bool hasSpec = false;

    /**
     * Parse argv (excluding argv[0]). Returns an empty string on
     * success, or a one-line error describing the offending argument.
     * Recognized flags:
     *   --workload <acronym>      (also accepted as a positional)
     *   --scheduler <name>        FR-FCFS, FCFS, FCFS_banks, PAR-BS,
     *                             ATLAS, RL, FQM, TCM, STFM
     *   --policy <name>           OpenAdaptive, CloseAdaptive, RBPP,
     *                             ABPP, Open, Close, Timer, History
     *   --mapping <name>          RoRaBaCoCh, ..., PermBaXor, ...
     *   --group-mapping <name>    GroupInterleaved | GroupPacked
     *                             (bank-group bit placement)
     *   --device <name>           DRAM device registry name
     *   --config <file>           key=value experiment spec (sweeps)
     *   --backend <flat|stacked>  memory backend; `stacked` on a flat
     *                             configuration selects the HMC2-8GB
     *                             registry entry
     *   --vaults <n>              stacked only: capacity-preserving
     *                             vault-count override (power of two)
     *   --remap <on|off>          stacked only: dynamic hot-bank
     *                             vault remapping
     *   --channels <1|2|4|...>
     *   --warmup <core cycles>    --measure <core cycles>
     *   --seed <n>                --fast <divisor>   --csv
     *   --fairness                alone-run slowdown/fairness metrics
     *   --list                    --help
     * Flags apply in order: an axis flag after `--config` (e.g.
     * `--config sweep.spec --device DDR4-2400`) collapses that axis of
     * the loaded sweep to the flag's single value, and also shapes the
     * single-point `config`. Scalar flags (--warmup/--measure/--seed/
     * --fast) land in `config`; sweep runners should re-seat the
     * spec's base on it (see run_experiment) so they apply there too.
     */
    std::string parse(int argc, char **argv);

    /** Usage text listing every flag and legal value. */
    static std::string usage(const std::string &tool);

    /** The --list payload: every scheduler, page policy, mapping,
     *  DRAM device (with timings summary) and workload, one block
     *  each. Also appended to usage(). */
    static std::string listText();
};

} // namespace mcsim

#endif // CLOUDMC_SIM_OPTIONS_HH
