/**
 * @file
 * Command-line configuration for the examples and one-off experiment
 * runs: parse `--scheduler/--policy/--channels/--mapping/--workload/
 * --warmup/--measure/--seed/--fast` style arguments onto a SimConfig
 * and a workload selection, with a generated usage string. Keeps every
 * tool's flag vocabulary identical.
 */

#ifndef CLOUDMC_SIM_OPTIONS_HH
#define CLOUDMC_SIM_OPTIONS_HH

#include <string>
#include <vector>

#include "sim_config.hh"
#include "workload/presets.hh"

namespace mcsim {

/** Parsed command line for an experiment-style tool. */
struct ExperimentOptions
{
    SimConfig config = SimConfig::baseline();
    WorkloadId workload = WorkloadId::DS;
    bool csv = false;
    /** Leftover positional arguments, in order. */
    std::vector<std::string> positional;
    /** Set when --help was requested; the caller should print usage. */
    bool helpRequested = false;

    /**
     * Parse argv (excluding argv[0]). Returns an empty string on
     * success, or a one-line error describing the offending argument.
     * Recognized flags:
     *   --workload <acronym>      (also accepted as a positional)
     *   --scheduler <name>        FR-FCFS, FCFS, FCFS_banks, PAR-BS,
     *                             ATLAS, RL, FQM, TCM, STFM
     *   --policy <name>           OpenAdaptive, CloseAdaptive, RBPP,
     *                             ABPP, Open, Close, Timer, History
     *   --mapping <name>          RoRaBaCoCh, ..., PermBaXor, ...
     *   --channels <1|2|4|...>
     *   --warmup <core cycles>    --measure <core cycles>
     *   --seed <n>                --fast <divisor>   --csv   --help
     */
    std::string parse(int argc, char **argv);

    /** Usage text listing every flag and legal value. */
    static std::string usage(const std::string &tool);
};

} // namespace mcsim

#endif // CLOUDMC_SIM_OPTIONS_HH
