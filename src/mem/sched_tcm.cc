#include "sched_tcm.hh"

#include <algorithm>
#include <numeric>

namespace mcsim {

TcmScheduler::TcmScheduler(std::uint32_t numCores, TcmConfig cfg,
                           const ClockDomains &clk)
    : numCores_(numCores), clk_(clk), cfg_(cfg), rng_(cfg.seed, 0x7c4d),
      quantumEndsAt_(Tick{} + clk.coreToTicks(cfg.quantumCycles)),
      nextShuffleAt_(Tick{} + clk.coreToTicks(cfg.shuffleCycles)),
      arrived_(numCores + 1, 0), serviced_(numCores + 1, 0),
      latency_(numCores + 1, true), prio_(numCores + 1, 0)
{
    // Until the first quantum completes every core sits in the latency
    // cluster with equal priority: TCM degenerates to FR-FCFS.
}

void
TcmScheduler::onRequestArrived(const Request &req)
{
    ++arrived_[slot(req.core)];
}

void
TcmScheduler::onRequestServiced(const Request &req)
{
    ++serviced_[slot(req.core)];
}

void
TcmScheduler::newQuantum()
{
    ++quanta_;

    // Sort cores by memory intensity, least intensive first. The IO
    // pseudo-core always lands in the bandwidth cluster: DMA traffic
    // is throughput-bound by construction.
    std::vector<std::uint32_t> order(numCores_);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         return arrived_[a] < arrived_[b];
                     });

    const std::uint64_t totalBw =
        std::accumulate(serviced_.begin(), serviced_.end(),
                        std::uint64_t{0});
    const double budget = cfg_.clusterFrac * static_cast<double>(totalBw);

    std::fill(latency_.begin(), latency_.end(), false);
    bwCores_.clear();
    double used = 0.0;
    std::uint32_t nextPrio = 0;
    for (std::uint32_t c : order) {
        const double bw = static_cast<double>(serviced_[c]);
        if (used + bw <= budget) {
            used += bw;
            latency_[c] = true;
            prio_[c] = nextPrio++;
        } else {
            bwCores_.push_back(c);
        }
    }
    // Bandwidth-cluster cores follow, in (soon to be shuffled) order.
    for (std::uint32_t c : bwCores_)
        prio_[c] = nextPrio++;
    prio_[numCores_] = nextPrio; // IO pseudo-core: lowest priority.

    std::fill(arrived_.begin(), arrived_.end(), 0);
    std::fill(serviced_.begin(), serviced_.end(), 0);
}

void
TcmScheduler::shuffleBandwidthCluster()
{
    if (bwCores_.size() < 2)
        return;
    ++shuffles_;
    // Fisher-Yates with the scheduler's own deterministic stream.
    for (std::size_t i = bwCores_.size() - 1; i > 0; --i) {
        const auto j = rng_.below(static_cast<std::uint32_t>(i + 1));
        std::swap(bwCores_[i], bwCores_[j]);
    }
    const std::uint32_t base =
        static_cast<std::uint32_t>(numCores_ - bwCores_.size());
    for (std::size_t i = 0; i < bwCores_.size(); ++i)
        prio_[bwCores_[i]] = base + static_cast<std::uint32_t>(i);
}

void
TcmScheduler::tick(Tick now, const SchedulerContext &)
{
    if (now >= quantumEndsAt_) {
        newQuantum();
        quantumEndsAt_ = now + clk_.coreToTicks(cfg_.quantumCycles);
    }
    if (now >= nextShuffleAt_) {
        shuffleBandwidthCluster();
        nextShuffleAt_ = now + clk_.coreToTicks(cfg_.shuffleCycles);
    }
}

int
TcmScheduler::choose(const std::vector<Candidate> &cands, Tick now,
                     const SchedulerContext &)
{
    const TickSpan starveTicks = clk_.coreToTicks(cfg_.starvationCycles);
    int best = -1;

    const auto betterThan = [&](const Candidate &a,
                                const Candidate &b) -> bool {
        const bool aStarved = now - a.req->arrivedAt >= starveTicks;
        const bool bStarved = now - b.req->arrivedAt >= starveTicks;
        if (aStarved != bStarved)
            return aStarved;
        if (aStarved) // Among starved requests: strictly oldest first.
            return a.req->arrivedAt < b.req->arrivedAt;
        const auto pa = prio_[slot(a.req->core)];
        const auto pb = prio_[slot(b.req->core)];
        if (pa != pb)
            return pa < pb;
        if (a.isRowHit != b.isRowHit)
            return a.isRowHit;
        return a.req->arrivedAt < b.req->arrivedAt;
    };

    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!cands[i].issuableNow)
            continue;
        if (best < 0 || betterThan(cands[i], cands[best]))
            best = static_cast<int>(i);
    }
    return best;
}

} // namespace mcsim
