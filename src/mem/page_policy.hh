/**
 * @file
 * DRAM page (row-buffer) management policy interface.
 *
 * The policy decides when an open row should be *proactively* closed.
 * Conflict-driven closure (a PRE issued because a queued request needs
 * a different row) is part of request service and happens regardless
 * of the policy; the policy's shouldClose() controls idle closure.
 */

#ifndef CLOUDMC_MEM_PAGE_POLICY_HH
#define CLOUDMC_MEM_PAGE_POLICY_HH

#include <cstdint>

#include "common/types.hh"

namespace mcsim {

/** Snapshot of one open bank's state for a closure decision. */
struct PageQuery
{
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint64_t openRow = 0;
    std::uint32_t accessesThisActivation = 0;
    bool pendingHit = false;      ///< Pool has a request for the open row.
    bool pendingConflict = false; ///< Pool has a request for another row.
    Tick now;
    Tick lastAccessAt;
};

/** Abstract page management policy. */
class PagePolicy
{
  public:
    virtual ~PagePolicy() = default;

    /** Short policy name used in result tables. */
    virtual const char *name() const = 0;

    /** Should the controller issue an idle PRE to this bank now? */
    virtual bool shouldClose(const PageQuery &q) = 0;

    /**
     * Event-kernel contract: the earliest tick > q.now at which
     * shouldClose() could flip from false to true with the bank and
     * queue state in @p q unchanged. Policies that decide purely on
     * state (every policy except the timer) can only flip on a state
     * change, which re-arms the kernel anyway, so the default returns
     * kMaxTick. Time-driven policies return their deadline; an early
     * (conservative) answer is always safe, a late one is not.
     */
    virtual Tick
    nextCloseEventAt(const PageQuery &q) const
    {
        (void)q;
        return kMaxTick;
    }

    /** A row was activated in (rank, bank). */
    virtual void onActivate(std::uint32_t, std::uint32_t, std::uint64_t) {}

    /**
     * A row was closed after @p accesses column accesses (>= 1 unless
     * the activation was wasted).
     */
    virtual void
    onPrecharge(std::uint32_t, std::uint32_t, std::uint64_t,
                std::uint32_t)
    {
    }
};

} // namespace mcsim

#endif // CLOUDMC_MEM_PAGE_POLICY_HH
