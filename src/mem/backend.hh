/**
 * @file
 * MemBackend: the pluggable memory system behind the crossbar.
 *
 * A simulation composes a backend, not a hard-wired DramSystem. The
 * backend owns its channels/vaults and the MemController queue in
 * front of each, and exposes exactly the contracts the System kernels
 * already rely on:
 *
 *  - queue(i).enqueue()/tick(): one controller per backend queue;
 *    tick() returns the next-due tick (the event-kernel contract) and
 *    arrivals re-arm a sleeping queue. The epoch-sharded parallel
 *    kernel shards queues by index (i % shards), so a backend's queue
 *    numbering is also its parallel decomposition.
 *  - route(): stamp a request's DramCoord so coord.channel is the
 *    global queue index the System routes and shards by. route() is
 *    the only entry point that may mutate backend-global policy state
 *    (e.g. the stacked backend's remap tables): it runs on the core
 *    shard / serial thread in an order identical across the reference,
 *    event, and parallel kernels, which is what keeps dynamic
 *    remapping bit-identical under every kernel.
 *  - resetStats()/collect()/busUtilization(): the statistics window
 *    contract behind MetricSet, including the energy model.
 *
 * Implementations: FlatDramBackend (the paper's JEDEC DRAM system,
 * one controller per channel), StackedDramBackend (HMC-style stacks
 * with per-vault controllers, TSV return-path timing, and an optional
 * counters-driven hot-bank remapping layer with a migration cost
 * model), and TieredMemBackend (either of the above as the fast tier
 * composed with a slow CXL/NVM-like tier, fronted by a DAMON-style
 * HotnessMonitor and pluggable placement/migration policies).
 */

#ifndef CLOUDMC_MEM_BACKEND_HH
#define CLOUDMC_MEM_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"
#include "mem_controller.hh"
#include "request.hh"

namespace mcsim {

struct SimConfig;
struct MetricSet;

/** Which memory-backend implementation a SimConfig selects. */
enum class MemBackendKind : std::uint8_t {
    FlatDram,    ///< JEDEC channels behind one controller each.
    StackedDram, ///< HMC-style stacks of vaults, one controller per vault.
    /** Two-tier composition: a fast tier (flat or stacked, per the
     *  config's base backend kind) in front of a slow CXL/NVM-like
     *  tier. Never stored in SimConfig::backend (that names the fast
     *  tier); selected by SimConfig::tier.enabled. */
    Tiered,
};

const char *memBackendKindName(MemBackendKind k);

/** Placement/migration policy of the tiered backend. */
enum class TierPolicy : std::uint8_t {
    /** Fixed placement: a tier_capacity_pct share of tiles is fast,
     *  interleaved evenly across the space; no migration ever. */
    StaticSplit,
    /** DAMON-monitor-driven: each aggregation window may swap the
     *  hottest slow-resident tile with the coldest fast-resident one,
     *  charging the copy via Request::availableAt. */
    HotnessBased,
    /** Alloy-cache-like: the fast tier acts as a direct-mapped row
     *  cache of the whole space; every miss is served slow and fills
     *  the row's fast slot (one-row migration). */
    AlloyCache,
};

const char *tierPolicyName(TierPolicy p);
bool tryTierPolicyFromName(const std::string &name, TierPolicy &out);

/**
 * Tiered-memory knobs (TieredMemBackend; SimConfig::tier). The slow
 * tier reuses the device's media model with two modifications: extra
 * return-path latency (slowLatencyDramCycles, charged exactly like
 * the stacked tTSV crossing) and a bandwidth throttle modeled as
 * queue service-rate scaling (the column-to-column and burst timings
 * stretch by 100/slowBwPct). fastCapacityPct sets the fast tier's
 * share of the total address space; placement/migration granularity
 * is one "tile" (a power-of-two row multiple chosen so the tile map
 * stays bounded). The monitor fields configure the DAMON-style
 * HotnessMonitor in front of the placement policies.
 */
struct TierConfig
{
    bool enabled = false;
    TierPolicy policy = TierPolicy::HotnessBased;
    /** Extra slow-tier read return latency, DRAM cycles. */
    std::uint32_t slowLatencyDramCycles = 96;
    /** Slow-tier service rate as a percent of the fast tier's,
     *  in [1, 100]. */
    std::uint32_t slowBwPct = 50;
    /** Fast tier's share of the total address space, in [1, 100]. */
    std::uint32_t fastCapacityPct = 50;
    /** DAMON-style monitor knobs (the monitor_* spec keys). */
    std::uint32_t monitorSampleEvery = 4;
    std::uint32_t monitorWindowSamples = 2048;
    std::uint32_t monitorMinRegions = 16;
    std::uint32_t monitorMaxRegions = 256;
    /** Promote only when the hottest slow tile's sampled density
     *  exceeds hotFactor times the coldest fast tile's. */
    double hotFactor = 2.0;
    /** Migration cost: DRAM cycles per row copied; both tiles of a
     *  swap are gated (Request::availableAt) until the copy ends. */
    std::uint32_t migrationCyclesPerRow = 64;
};

/**
 * Dynamic vault/bank remapping policy knobs (stacked backend only).
 * The remapper counts accesses per logical bank slot; every
 * windowAccesses routed requests it compares the hottest and coldest
 * physical vaults and, when the hot one carries more than hotFactor
 * times the cold one's load, swaps the hottest logical bank in the hot
 * vault with the coldest logical bank in the cold vault. A swap copies
 * migrationRows rows at migrationCyclesPerRow DRAM cycles each; both
 * physical slots are unserviceable until the copy finishes (modeled as
 * a per-request earliest-service tick, Request::availableAt).
 */
struct RemapConfig
{
    bool enabled = false;
    std::uint32_t windowAccesses = 4096;
    double hotFactor = 4.0;
    std::uint32_t migrationRows = 16;
    std::uint32_t migrationCyclesPerRow = 64;
};

/** The memory system behind the crossbar: queues, media, statistics. */
class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    virtual MemBackendKind kind() const = 0;

    /** Independent controller queues (the parallel-kernel shards). */
    virtual std::uint32_t numQueues() const = 0;
    virtual MemController &queue(std::uint32_t i) = 0;

    /**
     * Stamp @p req.coord for this backend; coord.channel must be the
     * global queue index. May also stamp req.availableAt with an
     * earliest-service tick (migration cost). The only virtual that
     * may mutate policy state; called in identical order by every
     * kernel (see file comment).
     */
    virtual void route(Request &req, Tick now) = 0;

    /** Total addressable bytes (workload address-space sizing). */
    virtual std::uint64_t capacityBytes() const = 0;

    /** Open a new statistics window on queues and media. */
    virtual void resetStats(Tick now) = 0;

    /** Mean data-bus utilization across the media, in [0,1]. */
    virtual double busUtilization(Tick now) const = 0;

    /** Fill the backend-owned MetricSet fields (bus utilization,
     *  energy, per-vault occupancy, remap and tier counters). collect()
     *  FILLS, it never accumulates: calling it twice on the same
     *  MetricSet must leave identical values (list fields are cleared,
     *  scalars assigned or zeroed before any summation). */
    virtual void collect(MetricSet &m, Tick now) const = 0;
};

/** Build the backend a SimConfig selects (cfg.backend). */
std::unique_ptr<MemBackend> makeMemBackend(const SimConfig &cfg,
                                           std::uint32_t numCores);

} // namespace mcsim

#endif // CLOUDMC_MEM_BACKEND_HH
