/**
 * @file
 * TCM: Thread Cluster Memory scheduling (Kim et al., MICRO 2010).
 *
 * The paper's Section 5 notes TCM was excluded from the study because
 * "experiments with ATLAS and PAR-BS showed that fairness is not an
 * issue for scale-out workloads"; this implementation lets the repo
 * test that claim directly (see bench/ablation_tcm.cc).
 *
 * TCM divides time into quanta. During a quantum each core's memory
 * intensity (requests arriving at the controller) and attained
 * bandwidth (serviced CAS commands) are tracked. At the quantum
 * boundary cores are sorted by intensity and split into two clusters:
 *
 *  - the latency-sensitive cluster: the least intensive cores whose
 *    combined bandwidth stays below clusterFrac of the total; they are
 *    always prioritized, ranked least-intensive first.
 *  - the bandwidth-sensitive cluster: everybody else; their relative
 *    order is re-shuffled periodically ("insertion shuffle" in the
 *    original; a seeded random permutation here) so no core stays at
 *    the bottom long enough to be unfairly slowed.
 *
 * Priority order: starved requests, then cluster, then intra-cluster
 * rank, then row hits, then age. The original further weights the
 * shuffle by "niceness" (bank-level parallelism vs row locality);
 * that refinement is second-order for the studied workloads and is
 * documented as a simplification in DESIGN.md.
 */

#ifndef CLOUDMC_MEM_SCHED_TCM_HH
#define CLOUDMC_MEM_SCHED_TCM_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "scheduler.hh"

namespace mcsim {

/** TCM configuration (intervals in core cycles). */
struct TcmConfig
{
    std::uint64_t quantumCycles = 100'000; ///< Scaled like ATLAS's.
    std::uint64_t shuffleCycles = 800;     ///< BW-cluster re-ranking.
    double clusterFrac = 0.2; ///< Bandwidth share of the latency cluster.
    std::uint64_t starvationCycles = 50'000;
    std::uint64_t seed = 0x7c31;
};

/** Thread Cluster Memory scheduler. */
class TcmScheduler : public Scheduler
{
  public:
    explicit TcmScheduler(std::uint32_t numCores,
                          TcmConfig cfg = TcmConfig{},
                          const ClockDomains &clk = kBaselineClocks);

    const char *name() const override { return "TCM"; }
    int choose(const std::vector<Candidate> &cands, Tick now,
               const SchedulerContext &ctx) override;
    void onRequestArrived(const Request &req) override;
    void onRequestServiced(const Request &req) override;
    void tick(Tick now, const SchedulerContext &ctx) override;
    /** Next quantum or bandwidth-cluster shuffle deadline. */
    Tick
    nextEventAt(Tick) const override
    {
        return quantumEndsAt_ < nextShuffleAt_ ? quantumEndsAt_
                                               : nextShuffleAt_;
    }

    /** True if the core is in the latency-sensitive cluster. */
    bool inLatencyCluster(CoreId c) const { return latency_[slot(c)]; }

    /** Priority of a core (lower = served first); for tests. */
    std::uint32_t corePriority(CoreId c) const { return prio_[slot(c)]; }

    std::uint64_t quantaElapsed() const { return quanta_; }
    std::uint64_t shufflesDone() const { return shuffles_; }

  private:
    std::uint32_t slot(CoreId c) const
    {
        return c >= numCores_ ? numCores_ : c;
    }
    void newQuantum();
    void shuffleBandwidthCluster();

    std::uint32_t numCores_;
    ClockDomains clk_;
    TcmConfig cfg_;
    Pcg32 rng_;

    Tick quantumEndsAt_;
    Tick nextShuffleAt_;
    std::uint64_t quanta_ = 0;
    std::uint64_t shuffles_ = 0;

    std::vector<std::uint64_t> arrived_;  ///< Requests this quantum.
    std::vector<std::uint64_t> serviced_; ///< CAS issued this quantum.
    std::vector<bool> latency_;           ///< Cluster membership.
    std::vector<std::uint32_t> prio_;     ///< 0 = highest priority.
    std::vector<std::uint32_t> bwCores_;  ///< BW cluster, shuffle order.
};

} // namespace mcsim

#endif // CLOUDMC_MEM_SCHED_TCM_HH
