/**
 * @file
 * Reinforcement-learning memory scheduler (Ipek et al., ISCA 2008).
 *
 * A SARSA agent picks the DRAM command to issue each controller cycle.
 * The Q-function is approximated with CMAC-style hashed tile coding:
 * N small tables are indexed by independent hashes of the quantized
 * (state, action) features and their values are summed. With a small
 * probability epsilon the agent explores by picking a random legal
 * action. The reward is +1 when the chosen action is a column access
 * (a data-bus transfer — the throughput objective) and 0 otherwise.
 *
 * State features, quantized to small ranges (per the original design's
 * spirit): read queue length, write queue length, number of pending
 * requests that would row-hit, and the drain phase. Action features:
 * command type, row-hit flag, and the requesting core's load class.
 */

#ifndef CLOUDMC_MEM_SCHED_RL_HH
#define CLOUDMC_MEM_SCHED_RL_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "scheduler.hh"

namespace mcsim {

/** RL scheduler configuration (paper Table 3). */
struct RlConfig
{
    std::uint32_t numTables = 32;
    std::uint32_t tableSize = 256;
    double alpha = 0.1;    ///< Learning rate.
    double gamma = 0.95;   ///< Discount rate.
    double epsilon = 0.05; ///< Random action probability.
    /** Include no-action in the exploration set, as the original
     *  action vocabulary does. An exploratory no-op wastes the issue
     *  slot, which is precisely the overhead the paper blames for
     *  RL's losses on bandwidth-bound decision support workloads. */
    bool exploreNoAction = true;
    std::uint64_t starvationCycles = 10'000;
    std::uint64_t seed = 12345;
};

/** Self-optimizing RL-based scheduler. */
class RlScheduler : public Scheduler
{
  public:
    explicit RlScheduler(RlConfig cfg = RlConfig{},
                         const ClockDomains &clk = kBaselineClocks);

    const char *name() const override { return "RL"; }
    int choose(const std::vector<Candidate> &cands, Tick now,
               const SchedulerContext &ctx) override;
    bool unifiedQueues() const override { return true; }

    /** Q-value for a quantized feature vector; exposed for tests. */
    double qValue(std::uint64_t features) const;

    /** Number of exploration (random) actions taken; for tests. */
    std::uint64_t explorations() const { return explorations_; }
    std::uint64_t updates() const { return updates_; }

  private:
    std::uint64_t featurize(const Candidate &c,
                            const SchedulerContext &ctx,
                            std::size_t pendingHits) const;
    std::uint32_t tableHash(std::uint64_t features,
                            std::uint32_t table) const;
    void update(double reward, double nextQ);

    RlConfig cfg_;
    ClockDomains clk_;
    Pcg32 rng_;
    std::vector<float> tables_; ///< numTables x tableSize, flattened.

    bool havePrev_ = false;
    std::uint64_t prevFeatures_ = 0;
    double prevQ_ = 0.0;
    double prevReward_ = 0.0;
    std::uint64_t explorations_ = 0;
    std::uint64_t updates_ = 0;
};

} // namespace mcsim

#endif // CLOUDMC_MEM_SCHED_RL_HH
