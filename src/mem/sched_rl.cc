#include "sched_rl.hh"

#include <algorithm>

namespace mcsim {

namespace {

/** Quantize a queue length to 3 bits (0..7). */
std::uint64_t
quantizeLen(std::size_t len)
{
    if (len >= 32)
        return 7;
    if (len >= 16)
        return 6;
    if (len >= 8)
        return 5;
    return len >= 4 ? 4 : len;
}

/** splitmix64: cheap, well-mixed integer hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

RlScheduler::RlScheduler(RlConfig cfg, const ClockDomains &clk)
    : cfg_(cfg), clk_(clk), rng_(cfg.seed, 0x524cULL),
      tables_(static_cast<std::size_t>(cfg.numTables) * cfg.tableSize,
              0.0f)
{
}

std::uint64_t
RlScheduler::featurize(const Candidate &c, const SchedulerContext &ctx,
                       std::size_t pendingHits) const
{
    // Pack quantized state and action attributes into one word; the
    // tile hashes slice it per table.
    std::uint64_t f = 0;
    f |= quantizeLen(ctx.readQueueLen);             // 3 bits
    f |= quantizeLen(ctx.writeQueueLen) << 3;       // 3 bits
    f |= quantizeLen(pendingHits) << 6;             // 3 bits
    f |= static_cast<std::uint64_t>(ctx.drainingWrites) << 9;
    f |= static_cast<std::uint64_t>(c.cmd) << 10;   // 3 bits
    f |= static_cast<std::uint64_t>(c.isRowHit) << 13;
    f |= static_cast<std::uint64_t>(c.req->isWrite) << 14;
    f |= static_cast<std::uint64_t>(c.req->isIo) << 15;
    return f;
}

std::uint32_t
RlScheduler::tableHash(std::uint64_t features, std::uint32_t table) const
{
    return static_cast<std::uint32_t>(
        mix64(features ^ (0xabcd0123ULL * (table + 1))) % cfg_.tableSize);
}

double
RlScheduler::qValue(std::uint64_t features) const
{
    double q = 0.0;
    for (std::uint32_t t = 0; t < cfg_.numTables; ++t)
        q += tables_[static_cast<std::size_t>(t) * cfg_.tableSize +
                     tableHash(features, t)];
    return q;
}

void
RlScheduler::update(double reward, double nextQ)
{
    // SARSA: Q(s,a) += alpha * (r + gamma * Q(s',a') - Q(s,a)),
    // spread evenly across the CMAC tables.
    const double delta =
        cfg_.alpha * (reward + cfg_.gamma * nextQ - prevQ_);
    const auto perTable = static_cast<float>(delta / cfg_.numTables);
    for (std::uint32_t t = 0; t < cfg_.numTables; ++t) {
        tables_[static_cast<std::size_t>(t) * cfg_.tableSize +
                tableHash(prevFeatures_, t)] += perTable;
    }
    ++updates_;
}

int
RlScheduler::choose(const std::vector<Candidate> &cands, Tick now,
                    const SchedulerContext &ctx)
{
    std::size_t pendingHits = 0;
    for (const auto &c : cands) {
        if (c.isRowHit)
            ++pendingHits;
    }

    std::vector<int> legal;
    legal.reserve(cands.size());
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (cands[i].issuableNow)
            legal.push_back(static_cast<int>(i));
    }
    if (legal.empty()) {
        // No action this cycle; defer the SARSA update until a real
        // action is available (idle cycles carry zero reward).
        return -1;
    }

    // Starvation guard: requests waiting longer than the threshold are
    // serviced oldest-first, bypassing the learned policy.
    const TickSpan starveTicks = clk_.coreToTicks(cfg_.starvationCycles);
    int starvedIdx = -1;
    for (int idx : legal) {
        if (now - cands[idx].req->arrivedAt >= starveTicks) {
            if (starvedIdx < 0 || cands[idx].req->arrivedAt <
                                      cands[starvedIdx].req->arrivedAt) {
                starvedIdx = idx;
            }
        }
    }

    int chosen;
    if (starvedIdx >= 0) {
        chosen = starvedIdx;
    } else if (rng_.chance(cfg_.epsilon)) {
        // Explore uniformly among the legal commands, plus no-action
        // when configured (the original action vocabulary includes it;
        // an exploratory no-op burns the issue slot).
        const auto extra = cfg_.exploreNoAction ? 1u : 0u;
        const auto pick = rng_.below(
            static_cast<std::uint32_t>(legal.size()) + extra);
        ++explorations_;
        if (pick == legal.size()) {
            // No-action: defer the SARSA update to the next real
            // decision (idle cycles carry zero reward either way).
            return -1;
        }
        chosen = legal[pick];
    } else {
        chosen = legal[0];
        double bestQ = qValue(featurize(cands[chosen], ctx, pendingHits));
        for (std::size_t k = 1; k < legal.size(); ++k) {
            const double q =
                qValue(featurize(cands[legal[k]], ctx, pendingHits));
            if (q > bestQ) {
                bestQ = q;
                chosen = legal[k];
            }
        }
    }

    const std::uint64_t feats = featurize(cands[chosen], ctx, pendingHits);
    const double q = qValue(feats);
    if (havePrev_)
        update(prevReward_, q);

    prevFeatures_ = feats;
    prevQ_ = q;
    const auto cmd = cands[chosen].cmd;
    prevReward_ = (cmd == DramCommandType::Read ||
                   cmd == DramCommandType::Write)
                      ? 1.0
                      : 0.0;
    havePrev_ = true;
    return chosen;
}

} // namespace mcsim
