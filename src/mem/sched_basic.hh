/**
 * @file
 * The baseline scheduler family: FCFS, FCFS with per-bank queues, and
 * FR-FCFS (Rixner et al., ISCA 2000).
 */

#ifndef CLOUDMC_MEM_SCHED_BASIC_HH
#define CLOUDMC_MEM_SCHED_BASIC_HH

#include "scheduler.hh"

namespace mcsim {

/**
 * Strict first-come-first-served: only the single oldest request in
 * the pool may be advanced; if its next command cannot issue this
 * cycle, the controller idles. No row-buffer locality or bank-level
 * parallelism is exploited — this is the paper's simplicity extreme,
 * included as an ablation reference (the paper evaluates FCFS_banks).
 */
class FcfsScheduler : public Scheduler
{
  public:
    const char *name() const override { return "FCFS"; }
    int choose(const std::vector<Candidate> &cands, Tick now,
               const SchedulerContext &ctx) override;
};

/**
 * FCFS with logically separate per-bank queues: the oldest request
 * *per bank* is eligible, so independent banks proceed in parallel,
 * but requests to the same bank are never reordered (no row-hit
 * promotion). This is the paper's "FCFS_banks".
 */
class FcfsBanksScheduler : public Scheduler
{
  public:
    const char *name() const override { return "FCFS_banks"; }
    int choose(const std::vector<Candidate> &cands, Tick now,
               const SchedulerContext &ctx) override;
};

/**
 * First-Ready FCFS: among issuable candidates prefer column accesses
 * to open rows (row hits), then older requests. The paper's baseline.
 */
class FrFcfsScheduler : public Scheduler
{
  public:
    const char *name() const override { return "FR-FCFS"; }
    int choose(const std::vector<Candidate> &cands, Tick now,
               const SchedulerContext &ctx) override;
};

} // namespace mcsim

#endif // CLOUDMC_MEM_SCHED_BASIC_HH
