/**
 * @file
 * Physical-address-to-DRAM-coordinate mapping schemes.
 *
 * Scheme names list fields from most-significant to least-significant
 * address bits, after removing the block offset: e.g. RoRaBaCoCh puts
 * the channel-select bits at the lowest position (consecutive cache
 * blocks alternate between channels) and the row bits at the top.
 * These are the four schemes the paper studies (Section 4.3).
 */

#ifndef CLOUDMC_MEM_ADDRESS_MAPPING_HH
#define CLOUDMC_MEM_ADDRESS_MAPPING_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "dram/dram_params.hh"

namespace mcsim {

/**
 * The address interleaving schemes studied in the paper, plus two
 * permutation-based (XOR) extensions. The paper's Section 5 lists
 * permutation-based interleaving as unexplored future work; the XOR
 * schemes fold low row bits into the bank (and channel) index the way
 * Zhang et al.'s permutation-based page interleaving does, spreading
 * row-conflicting streams over banks without hurting row locality.
 */
enum class MappingScheme : std::uint8_t {
    RoRaBaCoCh, ///< Baseline: block interleave across channels.
    RoRaBaChCo, ///< Row-buffer-sized stripes per channel.
    RoRaChBaCo, ///< Channel above bank bits.
    RoChRaBaCo, ///< Channel just below row bits.
    PermBaXor,  ///< Extension: RoRaBaChCo with bank ^= low row bits.
    PermChBaXor, ///< Extension: RoRaChBaCo with ch and bank XOR-permuted.
};

/** The four schemes the paper's Section 4.3 studies, for sweeps. */
constexpr std::array<MappingScheme, 4> kAllMappingSchemes = {
    MappingScheme::RoRaBaCoCh, MappingScheme::RoRaBaChCo,
    MappingScheme::RoRaChBaCo, MappingScheme::RoChRaBaCo};

/** Every scheme including the XOR extensions (ablation sweeps). */
constexpr std::array<MappingScheme, 6> kExtendedMappingSchemes = {
    MappingScheme::RoRaBaCoCh, MappingScheme::RoRaBaChCo,
    MappingScheme::RoRaChBaCo, MappingScheme::RoChRaBaCo,
    MappingScheme::PermBaXor,  MappingScheme::PermChBaXor};

const char *mappingSchemeName(MappingScheme s);

/** Parse a scheme name; fatal on unknown names. */
MappingScheme mappingSchemeFromName(const std::string &name);

/**
 * How the bank-group bits of a grouped device (DDR4/DDR5) are placed
 * in the address. GroupInterleaved pulls the group-select bits down to
 * the lowest mapped position (above a block-granular channel field),
 * so consecutive cache blocks rotate across bank groups and streaming
 * CAS trains pay tCCD_S; GroupPacked keeps the whole bank field
 * contiguous where the scheme puts it, so a stream stays inside one
 * bank group and the tCCD_L/tRRD_L/tWTR_L timings bind. Irrelevant
 * (identical layouts) when bankGroupsPerRank == 1.
 */
enum class BankGroupMapping : std::uint8_t {
    GroupInterleaved, ///< Group bits at the lowest mapped position.
    GroupPacked,      ///< Bank field contiguous (group = high bank bits).
};

/** Both options, for sweeps. */
constexpr std::array<BankGroupMapping, 2> kAllBankGroupMappings = {
    BankGroupMapping::GroupInterleaved, BankGroupMapping::GroupPacked};

const char *bankGroupMappingName(BankGroupMapping m);

/** Parse a group-mapping name ("GroupInterleaved"/"GroupPacked", or
 *  the short forms "interleaved"/"packed"); false on unknown names. */
bool tryBankGroupMappingFromName(const std::string &name,
                                 BankGroupMapping &out);

/** As above, but fatal (user error) on unknown names. */
BankGroupMapping bankGroupMappingFromName(const std::string &name);

/**
 * Bidirectional mapper between physical block addresses and DRAM
 * coordinates for a given geometry and scheme.
 */
class AddressMapper
{
  public:
    AddressMapper(const DramGeometry &geom, MappingScheme scheme,
                  BankGroupMapping groupMapping =
                      BankGroupMapping::GroupInterleaved);

    /** Decode a byte address (block-aligned or not) to coordinates. */
    DramCoord decode(Addr addr) const;

    /** Inverse of decode(); returns the block-aligned byte address. */
    Addr encode(const DramCoord &coord) const;

    MappingScheme scheme() const { return scheme_; }
    BankGroupMapping groupMapping() const { return groupMapping_; }
    const DramGeometry &geometry() const { return geom_; }

    /** Number of address bits consumed above the block offset. */
    unsigned mappedBits() const;

  private:
    /** One field's position in the block-granular address. */
    struct Field
    {
        unsigned lsb = 0;
        unsigned width = 0;
    };

    DramGeometry geom_;
    MappingScheme scheme_;
    BankGroupMapping groupMapping_;
    Field chField_, raField_, baField_, roField_, coField_;
    /** Group-select bits when split out (GroupInterleaved on a
     *  grouped device); width 0 otherwise. */
    Field bgField_;
    unsigned blockShift_;
    unsigned bankBits_ = 0;   ///< log2(banksPerRank), bg + ba widths.
    bool xorBank_ = false;    ///< bank ^= row[0 .. bankBits_)
    bool xorChannel_ = false; ///< channel ^= row[bankBits_ .. +chW)
};

} // namespace mcsim

#endif // CLOUDMC_MEM_ADDRESS_MAPPING_HH
