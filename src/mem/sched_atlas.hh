/**
 * @file
 * ATLAS: Adaptive per-Thread Least-Attained-Service scheduling
 * (Kim et al., HPCA 2010).
 *
 * Time is divided into quanta. During a quantum each core accumulates
 * attained service (AS); at quantum boundaries cores are ranked by an
 * exponentially-weighted total attained service, least first. Priority
 * order during scheduling: over-threshold (starved) requests first,
 * then higher-ranked cores, then row hits, then age.
 *
 * The paper's Table 3 configuration uses a 10 M-cycle quantum with
 * alpha = 0.875 and a 50 K-cycle starvation threshold. Because this
 * reproduction runs measurement windows that are ~100x shorter than
 * the paper's 5 B-instruction samples, the default quantum here is
 * scaled to keep the number of quanta per run comparable; the
 * starvation threshold is an absolute latency bound and is kept as-is.
 */

#ifndef CLOUDMC_MEM_SCHED_ATLAS_HH
#define CLOUDMC_MEM_SCHED_ATLAS_HH

#include <cstdint>
#include <vector>

#include "scheduler.hh"

namespace mcsim {

/** ATLAS configuration (quantum/threshold in core cycles). */
struct AtlasConfig
{
    std::uint64_t quantumCycles = 100'000; ///< Scaled; paper uses 10 M.
    double alpha = 0.875;                  ///< Bias to current quantum.
    std::uint64_t starvationCycles = 50'000;
    double serviceUnitsPerCas = 1.0; ///< AS added per serviced CAS.
};

/** ATLAS scheduler. */
class AtlasScheduler : public Scheduler
{
  public:
    AtlasScheduler(std::uint32_t numCores, AtlasConfig cfg = AtlasConfig{},
                   const ClockDomains &clk = kBaselineClocks);

    const char *name() const override { return "ATLAS"; }
    int choose(const std::vector<Candidate> &cands, Tick now,
               const SchedulerContext &ctx) override;
    void onRequestServiced(const Request &req) override;
    void tick(Tick now, const SchedulerContext &ctx) override;
    /** Next quantum boundary (the only time-driven state change). */
    Tick nextEventAt(Tick) const override { return quantumEndsAt_; }

    /** Rank of a core (0 = highest priority); for tests. */
    std::uint32_t coreRank(CoreId c) const { return rank_[slot(c)]; }

    /** Smoothed total attained service of a core; for tests. */
    double totalService(CoreId c) const { return totalAs_[slot(c)]; }

    std::uint64_t quantaElapsed() const { return quanta_; }

  private:
    std::uint32_t slot(CoreId c) const
    {
        return c >= numCores_ ? numCores_ : c;
    }
    void newQuantum();

    std::uint32_t numCores_;
    AtlasConfig cfg_;
    ClockDomains clk_;
    Tick quantumEndsAt_;
    std::uint64_t quanta_ = 0;
    std::vector<double> quantumAs_; ///< AS in the current quantum.
    std::vector<double> totalAs_;   ///< Smoothed across quanta.
    std::vector<std::uint32_t> rank_;
};

} // namespace mcsim

#endif // CLOUDMC_MEM_SCHED_ATLAS_HH
