#include "sched_fqm.hh"

namespace mcsim {

FqmScheduler::FqmScheduler(std::uint32_t numCores) : numCores_(numCores) {}

std::uint64_t
FqmScheduler::virtualTime(CoreId core, std::uint32_t bankKey) const
{
    auto it = vtime_.find(bankKey);
    if (it == vtime_.end())
        return 0;
    return it->second[slot(core)];
}

void
FqmScheduler::onRequestServiced(const Request &req)
{
    auto &v = vtime_[req.coord.flatBankKey()];
    if (v.empty())
        v.assign(numCores_ + 1, 0);
    ++v[slot(req.core)];
}

int
FqmScheduler::choose(const std::vector<Candidate> &cands, Tick,
                     const SchedulerContext &)
{
    // Earliest virtual time at the target bank wins; row hits then age
    // break ties so the policy still exploits trivially available
    // locality.
    int best = -1;
    std::uint64_t bestVt = 0;
    auto vtOf = [&](const Candidate &c) {
        return virtualTime(c.req->core, c.req->coord.flatBankKey());
    };
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!cands[i].issuableNow)
            continue;
        const std::uint64_t vt = vtOf(cands[i]);
        if (best < 0 || vt < bestVt ||
            (vt == bestVt &&
             (cands[i].isRowHit > cands[best].isRowHit ||
              (cands[i].isRowHit == cands[best].isRowHit &&
               cands[i].req->arrivedAt < cands[best].req->arrivedAt)))) {
            best = static_cast<int>(i);
            bestVt = vt;
        }
    }
    return best;
}

} // namespace mcsim
