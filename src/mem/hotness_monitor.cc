#include "hotness_monitor.hh"

#include <algorithm>

namespace mcsim {

HotnessMonitor::HotnessMonitor(Addr spanBytes, Addr grainBytes,
                               const MonitorConfig &cfg)
    : cfg_(cfg), span_(spanBytes),
      grain_(grainBytes ? grainBytes : Addr{1})
{
    if (cfg_.sampleEvery == 0)
        cfg_.sampleEvery = 1;
    if (cfg_.windowSamples == 0)
        cfg_.windowSamples = 1;
    if (cfg_.minRegions == 0)
        cfg_.minRegions = 1;
    if (cfg_.maxRegions < cfg_.minRegions)
        cfg_.maxRegions = cfg_.minRegions;

    const Addr grains = span_ / grain_;
    if (grains == 0)
        return; // Zero-region monitor: record() is a no-op.
    // Initial map: minRegions (or fewer, on tiny spans) equal-size,
    // grain-aligned regions covering [0, grains * grain).
    const Addr k = std::min<Addr>(cfg_.minRegions, grains);
    Addr prev = 0;
    for (Addr i = 1; i <= k; ++i) {
        const Addr end = grain_ * (grains * i / k);
        if (end > prev)
            regions_.push_back({prev, end, 0});
        prev = end;
    }
}

std::size_t
HotnessMonitor::regionIndex(Addr addr) const
{
    // Last region whose start is <= addr; out-of-span addresses clamp
    // to the final region.
    std::size_t lo = 0, hi = regions_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi + 1) / 2;
        if (regions_[mid].start <= addr)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

double
HotnessMonitor::densityAt(Addr addr) const
{
    if (regions_.empty())
        return 0.0;
    const Region &r = regions_[regionIndex(addr)];
    const Addr grains = (r.end - r.start) / grain_;
    return grains ? static_cast<double>(r.count) /
                        static_cast<double>(grains)
                  : 0.0;
}

bool
HotnessMonitor::record(Addr addr)
{
    if (regions_.empty())
        return false;
    if (--sampleCountdown_ > 0)
        return false;
    sampleCountdown_ = cfg_.sampleEvery;
    ++regions_[regionIndex(addr)].count;
    if (++samplesInWindow_ < cfg_.windowSamples)
        return false;
    samplesInWindow_ = 0;
    ++windowsClosed_;
    return true;
}

void
HotnessMonitor::closeWindow()
{
    if (regions_.empty())
        return;

    // Merge FIRST, then split — DAMON's order. A split leaves two
    // halves with near-equal counts; merging afterwards in the same
    // pass would collapse them right back. Merged-then-split, the
    // halves live through the next window, whose recording
    // differentiates their counts before the next merge decision.

    // Merge: adjacent regions whose counts differ by at most 20% of
    // their sum collapse (cold space folds into wide regions), left to
    // right, down to the minRegions floor.
    std::vector<Region> merged;
    merged.reserve(regions_.size());
    std::size_t remaining = regions_.size();
    for (const Region &r : regions_) {
        if (!merged.empty() && remaining > cfg_.minRegions) {
            Region &p = merged.back();
            const std::uint64_t hi = std::max(p.count, r.count);
            const std::uint64_t lo = std::min(p.count, r.count);
            if ((hi - lo) * 5 <= hi + lo) {
                p.end = r.end;
                p.count += r.count;
                --remaining;
                continue;
            }
        }
        merged.push_back(r);
    }

    // Split: a region carrying more than twice the per-region average
    // count splits at its grain-aligned midpoint (the count divides in
    // two, remainder to the lower half), while the region budget
    // lasts.
    std::uint64_t total = 0;
    for (const Region &r : merged)
        total += r.count;
    const std::uint64_t avg = total / merged.size();
    std::size_t budget =
        cfg_.maxRegions > merged.size() ? cfg_.maxRegions - merged.size()
                                        : 0;
    regions_.clear();
    regions_.reserve(merged.size() + budget);
    for (const Region &r : merged) {
        const Addr grains = (r.end - r.start) / grain_;
        if (budget > 0 && grains >= 2 && avg > 0 && r.count > 2 * avg) {
            const Addr mid = r.start + grain_ * (grains / 2);
            regions_.push_back({r.start, mid, r.count - r.count / 2});
            regions_.push_back({mid, r.end, r.count / 2});
            --budget;
        } else {
            regions_.push_back(r);
        }
    }

    // Age: one halving per window, so a dead-hot phase decays in a few
    // windows instead of pinning the map forever.
    for (Region &r : regions_)
        r.count >>= 1;
}

} // namespace mcsim
