#include "page_policies.hh"

#include <algorithm>

namespace mcsim {

PredictivePolicyBase::PredictivePolicyBase(std::uint32_t entriesPerBank,
                                           bool recordZeroHitRows)
    : entriesPerBank_(entriesPerBank),
      recordZeroHitRows_(recordZeroHitRows)
{
}

std::vector<PredictivePolicyBase::Entry> &
PredictivePolicyBase::bankTable(std::uint32_t rank, std::uint32_t bank)
{
    auto &t = tables_[(rank << 8) | bank];
    if (t.empty())
        t.resize(entriesPerBank_);
    return t;
}

const std::vector<PredictivePolicyBase::Entry> *
PredictivePolicyBase::bankTableIfAny(std::uint32_t rank,
                                     std::uint32_t bank) const
{
    auto it = tables_.find((rank << 8) | bank);
    return it == tables_.end() ? nullptr : &it->second;
}

int
PredictivePolicyBase::predictedHits(std::uint32_t rank, std::uint32_t bank,
                                    std::uint64_t row) const
{
    const auto *t = bankTableIfAny(rank, bank);
    if (!t)
        return -1;
    for (const auto &e : *t) {
        if (e.valid && e.row == row)
            return static_cast<int>(e.hits);
    }
    return -1;
}

void
PredictivePolicyBase::onPrecharge(std::uint32_t rank, std::uint32_t bank,
                                  std::uint64_t row, std::uint32_t accesses)
{
    // Hits = column accesses beyond the first during the activation.
    const std::uint32_t hits = accesses > 0 ? accesses - 1 : 0;
    if (hits == 0 && !recordZeroHitRows_) {
        // RBPP only tracks rows that earned at least one hit; also
        // retire a stale entry predicting hits for this row.
        auto *t = bankTableIfAny(rank, bank);
        if (t) {
            for (auto &e : bankTable(rank, bank)) {
                if (e.valid && e.row == row)
                    e.valid = false;
            }
        }
        return;
    }
    auto &t = bankTable(rank, bank);
    ++lruClock_;
    Entry *victim = &t[0];
    for (auto &e : t) {
        if (e.valid && e.row == row) {
            e.hits = hits;
            e.lruStamp = lruClock_;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lruStamp < victim->lruStamp) {
            victim = &e;
        }
    }
    *victim = Entry{row, hits, lruClock_, true};
}

bool
PredictivePolicyBase::shouldClose(const PageQuery &q)
{
    if (q.pendingHit)
        return false;
    const int predicted = predictedHits(q.rank, q.bank, q.openRow);
    if (predicted < 0) {
        // Untracked row: behave like open-adaptive (stay open unless a
        // conflicting request is already waiting).
        return q.pendingConflict;
    }
    // Close once the row used up its predicted accesses (first access
    // plus `predicted` hits).
    return q.accessesThisActivation >=
           static_cast<std::uint32_t>(predicted) + 1;
}

HistoryPolicy::HistoryPolicy(std::uint32_t historyBits)
    : historyBits_(historyBits), historyMask_((1u << historyBits) - 1)
{
}

HistoryPolicy::BankPredictor &
HistoryPolicy::predictor(std::uint32_t rank, std::uint32_t bank)
{
    auto &p = banks_[(rank << 8) | bank];
    if (p.counters.empty()) {
        // Weakly predict "single access": Figure 8 shows 77%-90% of
        // activations get one access, so that is the better prior.
        p.counters.assign(std::size_t{1} << historyBits_, 2);
    }
    return p;
}

const HistoryPolicy::BankPredictor *
HistoryPolicy::predictorIfAny(std::uint32_t rank, std::uint32_t bank) const
{
    auto it = banks_.find((rank << 8) | bank);
    return it == banks_.end() ? nullptr : &it->second;
}

bool
HistoryPolicy::predictsSingleAccess(std::uint32_t rank,
                                    std::uint32_t bank) const
{
    const auto *p = predictorIfAny(rank, bank);
    if (!p || p->counters.empty())
        return true; // The constructor prior, without materializing.
    return p->counters[p->history & historyMask_] >= 2;
}

bool
HistoryPolicy::shouldClose(const PageQuery &q)
{
    if (q.pendingHit)
        return false;
    if (q.accessesThisActivation >= 1 &&
        predictsSingleAccess(q.rank, q.bank)) {
        return true;
    }
    // Predicted reuse: behave like open-adaptive.
    return q.pendingConflict;
}

void
HistoryPolicy::onPrecharge(std::uint32_t rank, std::uint32_t bank,
                           std::uint64_t, std::uint32_t accesses)
{
    BankPredictor &p = predictor(rank, bank);
    const bool single = accesses <= 1;
    std::uint8_t &ctr = p.counters[p.history & historyMask_];
    if (single) {
        ctr = static_cast<std::uint8_t>(std::min<int>(ctr + 1, 3));
    } else {
        ctr = static_cast<std::uint8_t>(std::max<int>(ctr - 1, 0));
    }
    p.history = ((p.history << 1) | (single ? 1u : 0u)) & historyMask_;
}

} // namespace mcsim
