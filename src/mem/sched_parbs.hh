/**
 * @file
 * Parallelism-Aware Batch Scheduling (Mutlu & Moscibroda, ISCA 2008).
 *
 * Requests are grouped into batches: when the current batch is fully
 * serviced, up to Batching-Cap of the oldest outstanding requests per
 * (core, bank) are marked. Marked requests are strictly prioritized
 * over unmarked ones (guaranteeing freedom from starvation). Within
 * the batch, cores are ranked shortest-job-first: the core whose
 * maximum per-bank marked-request count is smallest ranks highest.
 * Priority order: marked > row-hit > core rank > age.
 */

#ifndef CLOUDMC_MEM_SCHED_PARBS_HH
#define CLOUDMC_MEM_SCHED_PARBS_HH

#include <cstdint>
#include <vector>

#include "scheduler.hh"

namespace mcsim {

/** Configuration for PAR-BS (paper Table 3: Batching-Cap = 5). */
struct ParBsConfig
{
    std::uint32_t batchingCap = 5;
};

/** PAR-BS scheduler. */
class ParBsScheduler : public Scheduler
{
  public:
    explicit ParBsScheduler(std::uint32_t numCores,
                            ParBsConfig cfg = ParBsConfig{});

    const char *name() const override { return "PAR-BS"; }
    int choose(const std::vector<Candidate> &cands, Tick now,
               const SchedulerContext &ctx) override;
    void onRequestServiced(const Request &req) override;

    /** Number of batches formed so far (for tests). */
    std::uint64_t batchesFormed() const { return batchesFormed_; }

    /** Current rank of a core; lower value = higher priority. */
    std::uint32_t coreRank(CoreId c) const { return rank_[c]; }

  private:
    void formBatch(const std::vector<Candidate> &cands);
    void computeRanks(const std::vector<Candidate> &cands);

    std::uint32_t numCores_;
    ParBsConfig cfg_;
    std::uint64_t markedOutstanding_ = 0;
    std::uint64_t batchesFormed_ = 0;
    std::vector<std::uint32_t> rank_; ///< Per-core rank, 0 is best.
};

} // namespace mcsim

#endif // CLOUDMC_MEM_SCHED_PARBS_HH
