#include "sched_basic.hh"

#include <unordered_map>

namespace mcsim {

int
FcfsScheduler::choose(const std::vector<Candidate> &cands, Tick,
                      const SchedulerContext &)
{
    // Find the globally oldest request; issue only its command.
    int oldest = -1;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (oldest < 0 ||
            cands[i].req->arrivedAt < cands[oldest].req->arrivedAt) {
            oldest = static_cast<int>(i);
        }
    }
    if (oldest >= 0 && cands[oldest].issuableNow)
        return oldest;
    return -1;
}

int
FcfsBanksScheduler::choose(const std::vector<Candidate> &cands, Tick,
                           const SchedulerContext &)
{
    // Oldest request per (rank, bank) is eligible; among the eligible
    // and issuable ones, pick the oldest overall (age fairness across
    // banks; the bank queues themselves are strictly in order). The
    // map is insert/lookup-only; selection walks the candidate vector
    // in index order with an (arrivedAt, id) tie-break, so two banks
    // whose heads arrived on the same tick resolve identically on
    // every stdlib (hash iteration order is not deterministic).
    // detlint-allow(unordered-iter): headOfBank is never iterated.
    std::unordered_map<std::uint32_t, int> headOfBank;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const auto key = (cands[i].req->coord.rank << 8) |
                         cands[i].req->coord.bank;
        auto it = headOfBank.find(key);
        if (it == headOfBank.end() ||
            cands[i].req->arrivedAt < cands[it->second].req->arrivedAt) {
            headOfBank[key] = static_cast<int>(i);
        }
    }
    int best = -1;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const auto key = (cands[i].req->coord.rank << 8) |
                         cands[i].req->coord.bank;
        if (headOfBank[key] != static_cast<int>(i))
            continue; // Not the head of its bank queue.
        if (!cands[i].issuableNow)
            continue;
        const Request &r = *cands[i].req;
        if (best < 0 || r.arrivedAt < cands[best].req->arrivedAt ||
            (r.arrivedAt == cands[best].req->arrivedAt &&
             r.id < cands[best].req->id)) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

int
FrFcfsScheduler::choose(const std::vector<Candidate> &cands, Tick,
                        const SchedulerContext &)
{
    int bestHit = -1;
    int bestAny = -1;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!cands[i].issuableNow)
            continue;
        const int idx = static_cast<int>(i);
        if (cands[i].isRowHit) {
            if (bestHit < 0 ||
                cands[i].req->arrivedAt < cands[bestHit].req->arrivedAt) {
                bestHit = idx;
            }
        }
        if (bestAny < 0 ||
            cands[i].req->arrivedAt < cands[bestAny].req->arrivedAt) {
            bestAny = idx;
        }
    }
    return bestHit >= 0 ? bestHit : bestAny;
}

} // namespace mcsim
