/**
 * @file
 * Memory scheduling algorithm (MSA) interface.
 *
 * Each DRAM-clock cycle the controller enumerates, for every request
 * in the active pool (read queue, or write queue while draining), the
 * next DRAM command that request needs given current bank state, and
 * flags whether that command is issuable this cycle. The scheduler
 * picks one issuable candidate (or none). This factoring lets request-
 * level policies (FCFS, FR-FCFS, PAR-BS, ATLAS) and command-level
 * policies (RL) share one interface.
 */

#ifndef CLOUDMC_MEM_SCHEDULER_HH
#define CLOUDMC_MEM_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/commands.hh"
#include "request.hh"

namespace mcsim {

/** One service option the scheduler may pick this cycle. */
struct Candidate
{
    Request *req = nullptr;      ///< The request this command advances.
    DramCommandType cmd = DramCommandType::Activate;
    bool issuableNow = false;    ///< Legal per all DRAM constraints.
    bool isRowHit = false;       ///< CAS to an already-open row.
    /** Earliest tick the command becomes legal absent further issues
     *  (== now when issuableNow); the event kernel's wake-up hint. */
    Tick legalAt;
};

/** Controller state visible to schedulers (beyond the candidates). */
struct SchedulerContext
{
    std::uint32_t numCores = 16;
    std::size_t readQueueLen = 0;
    std::size_t writeQueueLen = 0;
    bool drainingWrites = false;
};

/**
 * Abstract memory scheduling algorithm.
 *
 * Implementations must be deterministic given their seed and the call
 * sequence; all randomness comes from an internal Pcg32.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Short policy name used in result tables. */
    virtual const char *name() const = 0;

    /**
     * Pick a candidate index to issue this cycle, or -1 to stay idle.
     * Only candidates with issuableNow set may be returned.
     */
    virtual int choose(const std::vector<Candidate> &cands, Tick now,
                       const SchedulerContext &ctx) = 0;

    /** A request entered the controller queues. */
    virtual void onRequestArrived(const Request &) {}

    /** The request's CAS was issued (it left the pool). */
    virtual void onRequestServiced(const Request &) {}

    /** Per controller-cycle bookkeeping (quantum counters etc.). */
    virtual void tick(Tick, const SchedulerContext &) {}

    /**
     * Event-kernel contract: the earliest tick > now at which tick()
     * would do anything, assuming no requests arrive or get serviced
     * in between. Policies whose tick() is a no-op (the default) or
     * whose state advances only on request events return kMaxTick;
     * quantum/decay/shuffle policies return their next deadline. The
     * kernel guarantees a tick() call at the first controller cycle at
     * or after the returned tick, which is exactly when the per-cycle
     * reference loop would have observed the deadline.
     */
    virtual Tick
    nextEventAt(Tick now) const
    {
        (void)now;
        return kMaxTick;
    }

    /**
     * True if the policy selects from reads and writes together every
     * cycle instead of using read/write drain phases. The paper notes
     * this for RL (Section 4.1.3): it "considers both reads and writes
     * when it selects the memory request to serve next".
     */
    virtual bool unifiedQueues() const { return false; }

  protected:
    /** Oldest issuable candidate; shared tie-break helper. -1 if none. */
    static int
    oldestIssuable(const std::vector<Candidate> &cands)
    {
        int best = -1;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (!cands[i].issuableNow)
                continue;
            if (best < 0 ||
                cands[i].req->arrivedAt < cands[best].req->arrivedAt) {
                best = static_cast<int>(i);
            }
        }
        return best;
    }
};

} // namespace mcsim

#endif // CLOUDMC_MEM_SCHEDULER_HH
