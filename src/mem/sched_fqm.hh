/**
 * @file
 * Fair Queuing Memory scheduler (Nesbit et al., MICRO 2006).
 *
 * Each (bank, core) pair keeps a virtual service-time counter that
 * advances when that core is serviced at that bank. A bank prioritizes
 * the core with the earliest virtual time — the core that has received
 * the least service from it — equalizing per-core bank bandwidth.
 *
 * The paper describes FQM in its background section but excludes it
 * from the evaluation because later schedulers dominate it; we
 * implement it as an extension and quantify it in the ablation bench.
 */

#ifndef CLOUDMC_MEM_SCHED_FQM_HH
#define CLOUDMC_MEM_SCHED_FQM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "scheduler.hh"

namespace mcsim {

/** FQM scheduler. */
class FqmScheduler : public Scheduler
{
  public:
    explicit FqmScheduler(std::uint32_t numCores);

    const char *name() const override { return "FQM"; }
    int choose(const std::vector<Candidate> &cands, Tick now,
               const SchedulerContext &ctx) override;
    void onRequestServiced(const Request &req) override;

    /** Virtual time of (core, bankKey); for tests. */
    std::uint64_t virtualTime(CoreId core, std::uint32_t bankKey) const;

  private:
    std::uint32_t slot(CoreId c) const
    {
        return c >= numCores_ ? numCores_ : c;
    }

    std::uint32_t numCores_;
    /** bankKey -> per-core virtual time. */
    // Keyed lookup/insert only (sched_fqm.cc); never iterated.
    // detlint-allow(unordered-iter): bucket order never observed
    std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> vtime_;
};

} // namespace mcsim

#endif // CLOUDMC_MEM_SCHED_FQM_HH
