#include "sched_parbs.hh"

#include <algorithm>
#include <map>

#include "common/log.hh"

namespace mcsim {

namespace {

/** Effective core index: IO engines share one rank slot at the end. */
std::uint32_t
coreSlot(const Request &req, std::uint32_t numCores)
{
    return req.core >= numCores ? numCores : req.core;
}

} // namespace

ParBsScheduler::ParBsScheduler(std::uint32_t numCores, ParBsConfig cfg)
    : numCores_(numCores), cfg_(cfg), rank_(numCores + 1, 0)
{
    mc_assert(cfg_.batchingCap >= 1, "PAR-BS batching cap must be >= 1");
}

void
ParBsScheduler::formBatch(const std::vector<Candidate> &cands)
{
    // Mark up to batchingCap oldest requests per (core, bank).
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             std::vector<Request *>> perCoreBank;
    for (const auto &c : cands) {
        const auto key =
            std::make_pair(coreSlot(*c.req, numCores_),
                           c.req->coord.flatBankKey());
        perCoreBank[key].push_back(c.req);
    }
    markedOutstanding_ = 0;
    for (auto &[key, reqs] : perCoreBank) {
        (void)key;
        std::sort(reqs.begin(), reqs.end(),
                  [](const Request *a, const Request *b) {
                      return a->arrivedAt < b->arrivedAt;
                  });
        const std::size_t n =
            std::min<std::size_t>(reqs.size(), cfg_.batchingCap);
        for (std::size_t i = 0; i < n; ++i) {
            reqs[i]->marked = true;
            ++markedOutstanding_;
        }
    }
    if (markedOutstanding_ > 0) {
        ++batchesFormed_;
        computeRanks(cands);
    }
}

void
ParBsScheduler::computeRanks(const std::vector<Candidate> &cands)
{
    // Shortest job first: rank cores by (max marked requests to any
    // bank, then total marked requests), ascending.
    struct Load
    {
        std::map<std::uint32_t, std::uint32_t> perBank;
        std::uint32_t total = 0;
    };
    std::vector<Load> load(numCores_ + 1);
    for (const auto &c : cands) {
        if (!c.req->marked)
            continue;
        auto &l = load[coreSlot(*c.req, numCores_)];
        ++l.perBank[c.req->coord.flatBankKey()];
        ++l.total;
    }
    std::vector<std::uint32_t> order(numCores_ + 1);
    for (std::uint32_t i = 0; i <= numCores_; ++i)
        order[i] = i;
    auto maxBank = [&](std::uint32_t core) {
        std::uint32_t m = 0;
        for (const auto &[b, n] : load[core].perBank) {
            (void)b;
            m = std::max(m, n);
        }
        return m;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         const auto ma = maxBank(a), mb = maxBank(b);
                         if (ma != mb)
                             return ma < mb;
                         return load[a].total < load[b].total;
                     });
    for (std::uint32_t pos = 0; pos < order.size(); ++pos)
        rank_[order[pos]] = pos;
}

void
ParBsScheduler::onRequestServiced(const Request &req)
{
    if (req.marked && markedOutstanding_ > 0)
        --markedOutstanding_;
}

int
ParBsScheduler::choose(const std::vector<Candidate> &cands, Tick,
                       const SchedulerContext &)
{
    if (markedOutstanding_ == 0 && !cands.empty())
        formBatch(cands);

    // Priority: marked > row-hit > rank > age.
    int best = -1;
    auto better = [&](const Candidate &a, const Candidate &b) {
        if (a.req->marked != b.req->marked)
            return a.req->marked;
        if (a.isRowHit != b.isRowHit)
            return a.isRowHit;
        const auto ra = rank_[coreSlot(*a.req, numCores_)];
        const auto rb = rank_[coreSlot(*b.req, numCores_)];
        if (ra != rb)
            return ra < rb;
        return a.req->arrivedAt < b.req->arrivedAt;
    };
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!cands[i].issuableNow)
            continue;
        if (best < 0 || better(cands[i], cands[best]))
            best = static_cast<int>(i);
    }
    return best;
}

} // namespace mcsim
