/**
 * @file
 * DAMON-style region-based access monitor (Park et al., Linux
 * mm/damon): the address space is covered by a bounded, ordered set of
 * contiguous regions, each carrying one sampled access counter, so
 * tracking cost is O(regions), not O(pages).
 *
 *  - Sampling: every sampleEvery-th recorded access is counted into
 *    the region covering its address (sampleEvery = 1 counts all).
 *  - Aggregation: after windowSamples counted samples the window
 *    closes; the caller reads the per-region counters, then calls
 *    closeWindow(), which adapts the region set (hot regions split at
 *    their midpoint, adjacent regions with similar counters merge,
 *    bounded by [minRegions, maxRegions]) and ages every counter by
 *    one halving so old phases decay instead of pinning the map.
 *
 * Everything is an ordered std::vector with lowest-index tie-breaks
 * and integer/bit arithmetic, so two monitors fed the same access
 * sequence stay bit-identical — the property the tiered backend's
 * route()-driven migration policies rely on under all three kernels.
 */

#ifndef CLOUDMC_MEM_HOTNESS_MONITOR_HH
#define CLOUDMC_MEM_HOTNESS_MONITOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mcsim {

/** DAMON-style monitor knobs (the spec's monitor_* keys). */
struct MonitorConfig
{
    /** Count every Nth recorded access (1 = count all). */
    std::uint32_t sampleEvery = 4;
    /** Counted samples per aggregation window. */
    std::uint32_t windowSamples = 2048;
    /** Region-count bounds for the split/merge adaptation. */
    std::uint32_t minRegions = 16;
    std::uint32_t maxRegions = 256;
};

/** Region-based access monitor over [0, spanBytes). */
class HotnessMonitor
{
  public:
    struct Region
    {
        Addr start = 0;            ///< Inclusive, grain-aligned.
        Addr end = 0;              ///< Exclusive, grain-aligned.
        std::uint64_t count = 0;   ///< Sampled accesses (aged per window).
    };

    /**
     * Monitor @p spanBytes of address space at @p grainBytes region
     * granularity. A degenerate span (spanBytes < grainBytes) yields a
     * zero-region monitor whose record() is a no-op — callers need no
     * special casing.
     */
    HotnessMonitor(Addr spanBytes, Addr grainBytes,
                   const MonitorConfig &cfg);

    /**
     * Record one access. Returns true when this access closed an
     * aggregation window: the caller may then inspect regions() (the
     * window's counters) and must finish with closeWindow().
     */
    bool record(Addr addr);

    /** Adapt the region set (split/merge) and age the counters. Call
     *  once after record() returns true. */
    void closeWindow();

    /** Current regions, ordered by address, covering the span. */
    const std::vector<Region> &regions() const { return regions_; }

    /** Sampled-count density (count per @p grain bytes) of the region
     *  covering @p addr; 0 on a zero-region monitor. */
    double densityAt(Addr addr) const;

    std::uint64_t windowsClosed() const { return windowsClosed_; }

  private:
    std::size_t regionIndex(Addr addr) const;

    MonitorConfig cfg_;
    Addr span_;
    Addr grain_;
    std::vector<Region> regions_;
    std::uint32_t sampleCountdown_ = 1;
    std::uint32_t samplesInWindow_ = 0;
    std::uint64_t windowsClosed_ = 0;
};

} // namespace mcsim

#endif // CLOUDMC_MEM_HOTNESS_MONITOR_HH
