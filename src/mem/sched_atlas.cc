#include "sched_atlas.hh"

#include <algorithm>
#include <numeric>

namespace mcsim {

AtlasScheduler::AtlasScheduler(std::uint32_t numCores, AtlasConfig cfg,
                               const ClockDomains &clk)
    : numCores_(numCores), cfg_(cfg), clk_(clk),
      quantumEndsAt_(Tick{} + clk.coreToTicks(cfg.quantumCycles)),
      quantumAs_(numCores + 1, 0.0), totalAs_(numCores + 1, 0.0),
      rank_(numCores + 1, 0)
{
}

void
AtlasScheduler::newQuantum()
{
    ++quanta_;
    for (std::uint32_t c = 0; c < totalAs_.size(); ++c) {
        totalAs_[c] =
            cfg_.alpha * quantumAs_[c] + (1.0 - cfg_.alpha) * totalAs_[c];
        quantumAs_[c] = 0.0;
    }
    // Least attained service ranks highest (rank value 0).
    std::vector<std::uint32_t> order(totalAs_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return totalAs_[a] < totalAs_[b];
                     });
    for (std::uint32_t pos = 0; pos < order.size(); ++pos)
        rank_[order[pos]] = pos;
}

void
AtlasScheduler::tick(Tick now, const SchedulerContext &)
{
    if (now >= quantumEndsAt_) {
        newQuantum();
        quantumEndsAt_ = now + clk_.coreToTicks(cfg_.quantumCycles);
    }
}

void
AtlasScheduler::onRequestServiced(const Request &req)
{
    quantumAs_[slot(req.core)] += cfg_.serviceUnitsPerCas;
}

int
AtlasScheduler::choose(const std::vector<Candidate> &cands, Tick now,
                       const SchedulerContext &)
{
    const TickSpan starveTicks = clk_.coreToTicks(cfg_.starvationCycles);
    auto starved = [&](const Candidate &c) {
        return now - c.req->arrivedAt >= starveTicks;
    };
    // Over-threshold > core rank (least attained service) > hit > age.
    auto better = [&](const Candidate &a, const Candidate &b) {
        const bool sa = starved(a), sb = starved(b);
        if (sa != sb)
            return sa;
        const auto ra = rank_[slot(a.req->core)];
        const auto rb = rank_[slot(b.req->core)];
        if (ra != rb)
            return ra < rb;
        if (a.isRowHit != b.isRowHit)
            return a.isRowHit;
        return a.req->arrivedAt < b.req->arrivedAt;
    };
    int best = -1;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!cands[i].issuableNow)
            continue;
        if (best < 0 || better(cands[i], cands[best]))
            best = static_cast<int>(i);
    }
    return best;
}

} // namespace mcsim
