/**
 * @file
 * The memory controller: request queues, write-drain state machine,
 * refresh handling, command generation under a pluggable scheduling
 * algorithm and page management policy, and the statistics behind
 * every figure in the paper.
 *
 * One controller instance drives one DRAM channel. tick() must be
 * called once per DRAM command cycle; at most one DRAM command issues
 * per tick, with priority: refresh bookkeeping > the scheduler's pick
 * > an idle page-policy precharge.
 */

#ifndef CLOUDMC_MEM_MEM_CONTROLLER_HH
#define CLOUDMC_MEM_MEM_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/channel.hh"
#include "page_policy.hh"
#include "request.hh"
#include "scheduler.hh"

namespace mcsim {

/** Controller tuning knobs. */
struct MemControllerConfig
{
    /** Enter write-drain mode when the write queue reaches this. */
    std::size_t writeDrainHigh = 24;
    /** Leave write-drain mode when the write queue falls to this. */
    std::size_t writeDrainLow = 12;
    /** Drain opportunistically when reads are idle and writes exceed
     *  this (avoids hoarding writes forever on read-light phases). */
    std::size_t writeDrainIdle = 16;
    /** With no pending reads for this many DRAM cycles, drain writes
     *  regardless of queue depth so parked writes cannot starve. */
    std::uint32_t writeIdleDrainCycles = 128;
    /** Latency of read-from-write-queue forwarding, in DRAM cycles. */
    std::uint32_t forwardLatencyCycles = 2;
};

/** Aggregated controller statistics over a measurement window. */
struct MemControllerStats
{
    std::uint64_t servedReads = 0;
    std::uint64_t servedWrites = 0;
    std::uint64_t forwardedReads = 0;

    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;

    TickSpan readLatencyTicks; ///< Sum over delivered reads.
    std::uint64_t readLatencySamples = 0;

    /** Read latency distribution in core cycles (tail reporting). */
    LogHistogram readLatencyHist{24};

    TimeWeightedStat readQueueLen;
    TimeWeightedStat writeQueueLen;

    /** Column accesses per activation, sampled at each precharge. */
    SmallHistogram activationAccesses{32};

    std::vector<std::uint64_t> perCoreReads;
    std::vector<TickSpan> perCoreLatencyTicks;

    /** Row-buffer hit rate in [0,1] over all serviced CAS requests. */
    double
    rowHitRate() const
    {
        const auto total = rowHits + rowMisses + rowConflicts;
        return total ? static_cast<double>(rowHits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Mean read latency in core cycles of the given clock grid. */
    double
    avgReadLatencyCycles(const ClockDomains &clk = kBaselineClocks) const
    {
        return readLatencySamples
                   ? static_cast<double>(readLatencyTicks.count()) /
                         static_cast<double>(readLatencySamples) /
                         static_cast<double>(clk.ticksPerCore.count())
                   : 0.0;
    }

    /** Fraction of activations receiving exactly one access. */
    double
    singleAccessFraction() const
    {
        return activationAccesses.fractionAt(1);
    }
};

/** Memory controller for one channel. */
class MemController
{
  public:
    /** Completion callback: the finished request plus the tick the
     *  controller completed it at (== the tick() argument). The
     *  explicit tick lets the epoch-sharded kernel stage completions
     *  from a shard thread without reading the system clock. */
    using CompletionFn = std::function<void(Request *, Tick)>;

    MemController(Channel &channel, std::unique_ptr<Scheduler> scheduler,
                  std::unique_ptr<PagePolicy> pagePolicy,
                  std::uint32_t numCores,
                  MemControllerConfig cfg = MemControllerConfig{});

    /**
     * Hand a request to the controller. The controller keeps the
     * pointer until the completion callback fires (reads: when the
     * last data beat returns; writes: when the CAS issues).
     */
    void enqueue(Request *req, Tick now);

    /**
     * Advance one DRAM command cycle.
     *
     * Returns the next tick at which tick() must run again for the
     * simulation to stay cycle-exact: the next command cycle when this
     * one did (or could soon do) any work, otherwise the earliest
     * upcoming event — pending response delivery, a scheduler quantum
     * deadline, a refresh deadline, the first tick a queued request's
     * next command becomes timing-legal, a write-drain idle flip, or a
     * page-policy closure. Skipping the cycles in between is a no-op:
     * the event kernel relies on that, and enqueue() re-arms the
     * controller on arrivals. May be conservative (early), never late.
     */
    Tick tick(Tick now);

    /** Called for every completed request (reads and writes). */
    void setCompletionCallback(CompletionFn fn) { onComplete_ = std::move(fn); }

    std::size_t readQueueLen() const { return readQ_.size(); }
    std::size_t writeQueueLen() const { return writeQ_.size(); }
    bool drainingWrites() const { return drainingWrites_; }

    Scheduler &scheduler() { return *scheduler_; }
    PagePolicy &pagePolicy() { return *pagePolicy_; }
    Channel &channel() { return channel_; }

    MemControllerStats &stats() { return stats_; }
    const MemControllerStats &stats() const { return stats_; }
    void resetStats(Tick now);

  private:
    /**
     * Per-bank pending-row summary of the active transaction pool,
     * computed in one pass instead of one queue scan per bank. Banks
     * beyond 64 fall back to scanBankPool (no modeled geometry gets
     * there today).
     */
    struct BankPending
    {
        std::uint64_t hit = 0;      ///< Bit per bank: open-row match.
        std::uint64_t conflict = 0; ///< Bit per bank: other-row request.
        bool valid = false;
    };
    BankPending gatherBankPending() const;
    void pendingOf(const BankPending &bp, std::uint32_t rank,
                   std::uint32_t bank, std::uint64_t openRow,
                   bool &pendingHit, bool &pendingConflict) const;

    /**
     * Earliest upcoming event for a quiescent controller (see tick()).
     * @p policyCloseEvent is the page-policy closure event computed by
     * this cycle's tryPolicyPrecharge() pass, so the bank scan is not
     * repeated.
     */
    Tick nextEventAt(Tick now, Tick policyCloseEvent);
    void deliverResponses(Tick now);
    void updateDrainMode(Tick now);
    bool tryRefresh(Tick now);
    void buildCandidates(Tick now);
    bool issueCandidate(const Candidate &cand, Tick now);
    /**
     * Issue a page-policy precharge if one is wanted and legal.
     * When nothing issues, @p nextCloseEvent (if non-null) receives
     * the earliest tick a closure could fire: a wanted-but-illegal
     * precharge's next-legal tick or the policy's own deadline.
     */
    bool tryPolicyPrecharge(Tick now, Tick *nextCloseEvent = nullptr);
    void serviceCas(Request *req, Tick now, Tick dataReadyAt);
    void recordPrecharge(std::uint32_t rank, std::uint32_t bank,
                         std::uint64_t row, std::uint32_t accesses);
    void scanBankPool(std::uint32_t rank, std::uint32_t bank,
                      std::uint64_t openRow, bool &pendingHit,
                      bool &pendingConflict) const;
    void removeFromQueue(std::vector<Request *> &q, Request *req);

    Channel &channel_;
    ClockDomains clk_; ///< Mirrored from the channel at construction.
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<PagePolicy> pagePolicy_;
    std::uint32_t numCores_;
    MemControllerConfig cfg_;

    std::vector<Request *> readQ_;
    std::vector<Request *> writeQ_;
    std::vector<Candidate> cands_; ///< Reused each cycle.

    struct PendingResponse
    {
        Tick readyAt;
        Request *req;
        bool operator>(const PendingResponse &o) const
        {
            return readyAt > o.readyAt;
        }
    };
    std::priority_queue<PendingResponse, std::vector<PendingResponse>,
                        std::greater<PendingResponse>> responses_;

    bool drainingWrites_ = false;
    Tick lastReadPendingAt_; ///< Last tick the read queue was non-empty.
    CompletionFn onComplete_;
    MemControllerStats stats_;
};

} // namespace mcsim

#endif // CLOUDMC_MEM_MEM_CONTROLLER_HH
