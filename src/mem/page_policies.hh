/**
 * @file
 * The page management policies studied in the paper (Section 2.2 /
 * 4.2) plus the timer-based extension:
 *
 *  - OpenPolicy:          keep rows open until a conflict forces a PRE.
 *  - ClosePolicy:         precharge immediately after every access.
 *  - OpenAdaptivePolicy:  close only when no pending hit exists AND a
 *                         pending request needs another row (baseline).
 *  - CloseAdaptivePolicy: close as soon as no pending hit exists.
 *  - RbppPolicy:          Row-Based Page Policy (Shen et al.): a few
 *                         most-accessed-row registers per bank record
 *                         the hit counts of recently accessed rows that
 *                         received at least one hit; a row stays open
 *                         until it reaches its predicted hits.
 *  - AbppPolicy:          Access-Based Page Policy (Awasthi et al.):
 *                         per-bank tables predict a row receives the
 *                         same number of hits as last activation.
 *  - TimerPolicy:         close after a fixed idle interval (extension;
 *                         the paper cites but does not evaluate it).
 *  - HistoryPolicy:       branch-predictor-style two-level closure
 *                         predictor (extension; adapts the single-core
 *                         proposals of Xu et al. and Park & Park that
 *                         the paper cites in Section 2.2 but excludes).
 */

#ifndef CLOUDMC_MEM_PAGE_POLICIES_HH
#define CLOUDMC_MEM_PAGE_POLICIES_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "page_policy.hh"

namespace mcsim {

/** Open-page: rows close only on conflict. */
class OpenPolicy : public PagePolicy
{
  public:
    const char *name() const override { return "Open"; }
    bool shouldClose(const PageQuery &) override { return false; }
};

/** Close-page: precharge right after each column access. */
class ClosePolicy : public PagePolicy
{
  public:
    const char *name() const override { return "Close"; }
    bool
    shouldClose(const PageQuery &q) override
    {
        return q.accessesThisActivation >= 1;
    }
};

/** Open-adaptive (the paper's baseline). */
class OpenAdaptivePolicy : public PagePolicy
{
  public:
    const char *name() const override { return "OpenAdaptive"; }
    bool
    shouldClose(const PageQuery &q) override
    {
        return !q.pendingHit && q.pendingConflict;
    }
};

/** Close-adaptive. */
class CloseAdaptivePolicy : public PagePolicy
{
  public:
    const char *name() const override { return "CloseAdaptive"; }
    bool
    shouldClose(const PageQuery &q) override
    {
        return q.accessesThisActivation >= 1 && !q.pendingHit;
    }
};

/**
 * Shared machinery for the two predictive policies: a per-bank,
 * LRU-replaced table mapping row -> hits observed during its previous
 * activation. The policies differ in admission (RBPP records only rows
 * that earned at least one hit, into a handful of registers; ABPP
 * records every row into a larger table).
 */
class PredictivePolicyBase : public PagePolicy
{
  public:
    PredictivePolicyBase(std::uint32_t entriesPerBank,
                         bool recordZeroHitRows);

    bool shouldClose(const PageQuery &q) override;
    void onPrecharge(std::uint32_t rank, std::uint32_t bank,
                     std::uint64_t row, std::uint32_t accesses) override;

    /** Predicted hit count for a row, or -1 when untracked. */
    int predictedHits(std::uint32_t rank, std::uint32_t bank,
                      std::uint64_t row) const;

  private:
    struct Entry
    {
        std::uint64_t row = 0;
        std::uint32_t hits = 0;
        std::uint64_t lruStamp = 0;
        bool valid = false;
    };

    std::vector<Entry> &bankTable(std::uint32_t rank, std::uint32_t bank);
    const std::vector<Entry> *bankTableIfAny(std::uint32_t rank,
                                             std::uint32_t bank) const;

    std::uint32_t entriesPerBank_;
    bool recordZeroHitRows_;
    std::uint64_t lruClock_ = 0;
    // Keyed lookup/insert only (page_policies.cc); never iterated.
    // detlint-allow(unordered-iter): bucket order never observed
    std::unordered_map<std::uint32_t, std::vector<Entry>> tables_;
};

/** Row-Based Page Policy: 4 most-accessed-row registers per bank. */
class RbppPolicy : public PredictivePolicyBase
{
  public:
    explicit RbppPolicy(std::uint32_t marrsPerBank = 4)
        : PredictivePolicyBase(marrsPerBank, false)
    {
    }
    const char *name() const override { return "RBPP"; }
};

/** Access-Based Page Policy: 16-entry per-bank history table. */
class AbppPolicy : public PredictivePolicyBase
{
  public:
    explicit AbppPolicy(std::uint32_t entriesPerBank = 16)
        : PredictivePolicyBase(entriesPerBank, true)
    {
    }
    const char *name() const override { return "ABPP"; }
};

/** Timer-based closure: precharge after a fixed idle time. */
class TimerPolicy : public PagePolicy
{
  public:
    /** @param idleDramCycles Idle cycles before closing the row. */
    explicit TimerPolicy(std::uint32_t idleDramCycles = 32,
                         const ClockDomains &clk = kBaselineClocks)
        : idleTicks_(clk.dramToTicks(DramCycles{idleDramCycles}))
    {
    }

    const char *name() const override { return "Timer"; }
    bool
    shouldClose(const PageQuery &q) override
    {
        return !q.pendingHit && q.now - q.lastAccessAt >= idleTicks_;
    }
    Tick
    nextCloseEventAt(const PageQuery &q) const override
    {
        return q.pendingHit ? kMaxTick : q.lastAccessAt + idleTicks_;
    }

  private:
    TickSpan idleTicks_;
};

/**
 * Two-level adaptive closure predictor.
 *
 * Each bank keeps a history register of the last @p historyBits
 * activation outcomes (1 = the activation received exactly one access,
 * so eager closure would have been right) indexing a table of 2-bit
 * saturating counters, exactly like a local branch predictor. While
 * the counter predicts "single access", the policy closes the row as
 * soon as it has been accessed and no queued hit remains; otherwise it
 * behaves like open-adaptive and waits for a pending conflict.
 */
class HistoryPolicy : public PagePolicy
{
  public:
    explicit HistoryPolicy(std::uint32_t historyBits = 4);

    const char *name() const override { return "History"; }
    bool shouldClose(const PageQuery &q) override;
    void onPrecharge(std::uint32_t rank, std::uint32_t bank,
                     std::uint64_t row, std::uint32_t accesses) override;

    /** True if the bank's predictor currently predicts single access. */
    bool predictsSingleAccess(std::uint32_t rank, std::uint32_t bank) const;

  private:
    struct BankPredictor
    {
        std::uint32_t history = 0;
        std::vector<std::uint8_t> counters; ///< 2-bit, init weakly-taken.
    };

    BankPredictor &predictor(std::uint32_t rank, std::uint32_t bank);
    const BankPredictor *predictorIfAny(std::uint32_t rank,
                                        std::uint32_t bank) const;

    std::uint32_t historyBits_;
    std::uint32_t historyMask_;
    // Keyed lookup/insert only (page_policies.cc); never iterated.
    // detlint-allow(unordered-iter): bucket order never observed
    std::unordered_map<std::uint32_t, BankPredictor> banks_;
};

} // namespace mcsim

#endif // CLOUDMC_MEM_PAGE_POLICIES_HH
