/**
 * @file
 * STFM: Stall-Time Fair Memory scheduling (Mutlu & Moscibroda,
 * MICRO 2007) — the paper's reference [9], cited as one of the
 * fairness proposals FR-FCFS outperforms on server workloads.
 *
 * STFM estimates each core's memory slowdown S = T_shared / T_alone
 * (time its requests actually waited vs. what they would have waited
 * with the memory system to themselves) and, whenever the unfairness
 * ratio max(S)/min(S) exceeds a threshold alpha, elevates the most
 * slowed-down core's requests over the FR-FCFS order.
 *
 * Estimation here is candidate-level: when a CAS is selected, the
 * winning request contributes (now - arrival) to its core's T_shared,
 * and a contention-free service estimate — derived from whether the
 * request needed a precharge and/or activate — to T_alone. Counters
 * decay periodically so the estimate tracks phase changes. This is a
 * faithful simplification of the original's per-bank interference
 * bookkeeping, adapted to the shared candidate interface.
 */

#ifndef CLOUDMC_MEM_SCHED_STFM_HH
#define CLOUDMC_MEM_SCHED_STFM_HH

#include <cstdint>
#include <vector>

#include "dram/dram_params.hh"
#include "scheduler.hh"

namespace mcsim {

/** STFM configuration. */
struct StfmConfig
{
    double alpha = 1.10;              ///< Unfairness trigger threshold.
    std::uint64_t decayCycles = 100'000; ///< Counter half-life interval.
    double decayFactor = 0.5;
    std::uint64_t starvationCycles = 50'000;
};

/** Stall-time fair scheduler. */
class StfmScheduler : public Scheduler
{
  public:
    /**
     * @param clk Clock domains for the cycle-denominated thresholds.
     * @param timings Device timings behind the contention-free service
     *        estimate (T_alone), so the estimate tracks the simulated
     *        device rather than assuming DDR3-1600.
     */
    explicit StfmScheduler(
        std::uint32_t numCores, StfmConfig cfg = StfmConfig{},
        const ClockDomains &clk = kBaselineClocks,
        const DramTimings &timings = DramTimings::ddr3_1600());

    const char *name() const override { return "STFM"; }
    int choose(const std::vector<Candidate> &cands, Tick now,
               const SchedulerContext &ctx) override;
    void tick(Tick now, const SchedulerContext &ctx) override;
    /** Next service-estimate decay (the only time-driven change). */
    Tick nextEventAt(Tick) const override { return nextDecayAt_; }

    /** Estimated slowdown of @p core (1.0 when idle); for tests. */
    double slowdownOf(CoreId core) const;

    /** Current max/min slowdown ratio across active cores. */
    double unfairness() const;

  private:
    std::uint32_t slot(CoreId c) const
    {
        return c >= numCores_ ? numCores_ : c;
    }
    /** The core to elevate, or -1 when the system is fair. */
    int victimCore() const;
    TickSpan aloneServiceTicks(const Request &req, bool isRowHit) const;
    void accountService(const Candidate &c, Tick now);

    std::uint32_t numCores_;
    StfmConfig cfg_;
    ClockDomains clk_;
    DramTimings tm_;
    Tick nextDecayAt_;
    std::vector<double> sharedTicks_; ///< Observed waiting time.
    std::vector<double> aloneTicks_;  ///< Contention-free estimate.
};

} // namespace mcsim

#endif // CLOUDMC_MEM_SCHED_STFM_HH
