#include "address_mapping.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace mcsim {

const char *
mappingSchemeName(MappingScheme s)
{
    switch (s) {
      case MappingScheme::RoRaBaCoCh: return "RoRaBaCoCh";
      case MappingScheme::RoRaBaChCo: return "RoRaBaChCo";
      case MappingScheme::RoRaChBaCo: return "RoRaChBaCo";
      case MappingScheme::RoChRaBaCo: return "RoChRaBaCo";
      case MappingScheme::PermBaXor: return "PermBaXor";
      case MappingScheme::PermChBaXor: return "PermChBaXor";
    }
    return "???";
}

MappingScheme
mappingSchemeFromName(const std::string &name)
{
    for (auto s : kExtendedMappingSchemes) {
        if (name == mappingSchemeName(s))
            return s;
    }
    mc_fatal("unknown mapping scheme '", name, "'");
}

AddressMapper::AddressMapper(const DramGeometry &geom, MappingScheme scheme)
    : geom_(geom), scheme_(scheme)
{
    geom_.validate();
    blockShift_ = floorLog2(geom_.blockBytes);

    const unsigned chW = floorLog2(geom_.channels);
    const unsigned raW = floorLog2(geom_.ranksPerChannel);
    const unsigned baW = floorLog2(geom_.banksPerRank);
    const unsigned coW = floorLog2(geom_.blocksPerRow());
    const unsigned roW = floorLog2(geom_.rowsPerBank);

    // Scheme names are MSB-first; lay fields out LSB-first (reversed).
    struct Item
    {
        Field *field;
        unsigned width;
    };
    std::array<Item, 5> order{};
    Field *ch = &chField_, *ra = &raField_, *ba = &baField_,
          *ro = &roField_, *co = &coField_;
    switch (scheme_) {
      case MappingScheme::RoRaBaCoCh:
        order = {{{ch, chW}, {co, coW}, {ba, baW}, {ra, raW}, {ro, roW}}};
        break;
      case MappingScheme::RoRaBaChCo:
        order = {{{co, coW}, {ch, chW}, {ba, baW}, {ra, raW}, {ro, roW}}};
        break;
      case MappingScheme::RoRaChBaCo:
        order = {{{co, coW}, {ba, baW}, {ch, chW}, {ra, raW}, {ro, roW}}};
        break;
      case MappingScheme::RoChRaBaCo:
        order = {{{co, coW}, {ba, baW}, {ra, raW}, {ch, chW}, {ro, roW}}};
        break;
      case MappingScheme::PermBaXor:
        order = {{{co, coW}, {ch, chW}, {ba, baW}, {ra, raW}, {ro, roW}}};
        xorBank_ = true;
        break;
      case MappingScheme::PermChBaXor:
        order = {{{co, coW}, {ba, baW}, {ch, chW}, {ra, raW}, {ro, roW}}};
        xorBank_ = true;
        xorChannel_ = true;
        break;
    }
    unsigned lsb = 0;
    for (auto &item : order) {
        item.field->lsb = lsb;
        item.field->width = item.width;
        lsb += item.width;
    }
}

unsigned
AddressMapper::mappedBits() const
{
    return chField_.width + raField_.width + baField_.width +
           roField_.width + coField_.width;
}

DramCoord
AddressMapper::decode(Addr addr) const
{
    const Addr blk = addr >> blockShift_;
    DramCoord c;
    c.channel = static_cast<std::uint32_t>(
        extractBits(blk, chField_.lsb, chField_.width));
    c.rank = static_cast<std::uint32_t>(
        extractBits(blk, raField_.lsb, raField_.width));
    c.bank = static_cast<std::uint32_t>(
        extractBits(blk, baField_.lsb, baField_.width));
    c.row = extractBits(blk, roField_.lsb, roField_.width);
    c.column = static_cast<std::uint32_t>(
        extractBits(blk, coField_.lsb, coField_.width));
    // XOR permutation: the stored bank/channel bits are the logical
    // index XORed with (disjoint slices of) the row; XOR again to
    // recover. Involutive, so encode() applies the same operation.
    if (xorBank_ && baField_.width) {
        c.bank ^= static_cast<std::uint32_t>(c.row) &
                  ((1u << baField_.width) - 1);
    }
    if (xorChannel_ && chField_.width) {
        c.channel ^= static_cast<std::uint32_t>(c.row >> baField_.width) &
                     ((1u << chField_.width) - 1);
    }
    return c;
}

Addr
AddressMapper::encode(const DramCoord &coord) const
{
    std::uint32_t bank = coord.bank;
    std::uint32_t channel = coord.channel;
    if (xorBank_ && baField_.width) {
        bank ^= static_cast<std::uint32_t>(coord.row) &
                ((1u << baField_.width) - 1);
    }
    if (xorChannel_ && chField_.width) {
        channel ^=
            static_cast<std::uint32_t>(coord.row >> baField_.width) &
            ((1u << chField_.width) - 1);
    }
    Addr blk = 0;
    blk = insertBits(blk, chField_.lsb, chField_.width, channel);
    blk = insertBits(blk, raField_.lsb, raField_.width, coord.rank);
    blk = insertBits(blk, baField_.lsb, baField_.width, bank);
    blk = insertBits(blk, roField_.lsb, roField_.width, coord.row);
    blk = insertBits(blk, coField_.lsb, coField_.width, coord.column);
    return blk << blockShift_;
}

} // namespace mcsim
