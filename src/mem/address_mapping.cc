#include "address_mapping.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace mcsim {

const char *
mappingSchemeName(MappingScheme s)
{
    switch (s) {
      case MappingScheme::RoRaBaCoCh: return "RoRaBaCoCh";
      case MappingScheme::RoRaBaChCo: return "RoRaBaChCo";
      case MappingScheme::RoRaChBaCo: return "RoRaChBaCo";
      case MappingScheme::RoChRaBaCo: return "RoChRaBaCo";
      case MappingScheme::PermBaXor: return "PermBaXor";
      case MappingScheme::PermChBaXor: return "PermChBaXor";
    }
    return "???";
}

MappingScheme
mappingSchemeFromName(const std::string &name)
{
    for (auto s : kExtendedMappingSchemes) {
        if (name == mappingSchemeName(s))
            return s;
    }
    mc_fatal("unknown mapping scheme '", name, "'");
}

const char *
bankGroupMappingName(BankGroupMapping m)
{
    switch (m) {
      case BankGroupMapping::GroupInterleaved: return "GroupInterleaved";
      case BankGroupMapping::GroupPacked: return "GroupPacked";
    }
    return "???";
}

bool
tryBankGroupMappingFromName(const std::string &name, BankGroupMapping &out)
{
    for (auto m : kAllBankGroupMappings) {
        if (name == bankGroupMappingName(m)) {
            out = m;
            return true;
        }
    }
    if (name == "interleaved") {
        out = BankGroupMapping::GroupInterleaved;
        return true;
    }
    if (name == "packed") {
        out = BankGroupMapping::GroupPacked;
        return true;
    }
    return false;
}

BankGroupMapping
bankGroupMappingFromName(const std::string &name)
{
    BankGroupMapping m;
    if (!tryBankGroupMappingFromName(name, m))
        mc_fatal("unknown bank-group mapping '", name, "'");
    return m;
}

AddressMapper::AddressMapper(const DramGeometry &geom, MappingScheme scheme,
                             BankGroupMapping groupMapping)
    : geom_(geom), scheme_(scheme), groupMapping_(groupMapping)
{
    geom_.validate();
    blockShift_ = floorLog2(geom_.blockBytes);

    const unsigned chW = floorLog2(geom_.channels);
    const unsigned raW = floorLog2(geom_.ranksPerChannel);
    const unsigned baW = floorLog2(geom_.banksPerRank);
    const unsigned coW = floorLog2(geom_.blocksPerRow());
    const unsigned roW = floorLog2(geom_.rowsPerBank);
    // GroupInterleaved splits the group-select bits out of the bank
    // field and sinks them to the lowest mapped position.
    const unsigned bgW =
        groupMapping_ == BankGroupMapping::GroupInterleaved
            ? floorLog2(geom_.bankGroupsPerRank)
            : 0;
    bankBits_ = baW;

    // Scheme names are MSB-first; lay fields out LSB-first (reversed).
    struct Item
    {
        Field *field;
        unsigned width;
    };
    std::array<Item, 6> order{};
    std::size_t n = 0;
    Field *ch = &chField_, *ra = &raField_, *ba = &baField_,
          *ro = &roField_, *co = &coField_, *bg = &bgField_;
    const auto layout = [&](std::array<Item, 5> items) {
        // The group bits go below everything except a block-granular
        // channel interleave (RoRaBaCoCh keeps the channel lowest).
        if (bgW && items[0].field == ch)
            order[n++] = items[0];
        if (bgW)
            order[n++] = {bg, bgW};
        for (auto &item : items) {
            if (bgW && item.field == ch && &item == &items[0])
                continue;
            order[n++] = item;
        }
    };
    switch (scheme_) {
      case MappingScheme::RoRaBaCoCh:
        layout({{{ch, chW}, {co, coW}, {ba, baW - bgW}, {ra, raW},
                 {ro, roW}}});
        break;
      case MappingScheme::RoRaBaChCo:
        layout({{{co, coW}, {ch, chW}, {ba, baW - bgW}, {ra, raW},
                 {ro, roW}}});
        break;
      case MappingScheme::RoRaChBaCo:
        layout({{{co, coW}, {ba, baW - bgW}, {ch, chW}, {ra, raW},
                 {ro, roW}}});
        break;
      case MappingScheme::RoChRaBaCo:
        layout({{{co, coW}, {ba, baW - bgW}, {ra, raW}, {ch, chW},
                 {ro, roW}}});
        break;
      case MappingScheme::PermBaXor:
        layout({{{co, coW}, {ch, chW}, {ba, baW - bgW}, {ra, raW},
                 {ro, roW}}});
        xorBank_ = true;
        break;
      case MappingScheme::PermChBaXor:
        layout({{{co, coW}, {ba, baW - bgW}, {ch, chW}, {ra, raW},
                 {ro, roW}}});
        xorBank_ = true;
        xorChannel_ = true;
        break;
    }
    unsigned lsb = 0;
    for (std::size_t i = 0; i < n; ++i) {
        order[i].field->lsb = lsb;
        order[i].field->width = order[i].width;
        lsb += order[i].width;
    }
}

unsigned
AddressMapper::mappedBits() const
{
    return chField_.width + raField_.width + baField_.width +
           bgField_.width + roField_.width + coField_.width;
}

DramCoord
AddressMapper::decode(Addr addr) const
{
    const Addr blk = addr >> blockShift_;
    DramCoord c;
    c.channel = static_cast<std::uint32_t>(
        extractBits(blk, chField_.lsb, chField_.width));
    c.rank = static_cast<std::uint32_t>(
        extractBits(blk, raField_.lsb, raField_.width));
    c.bank = static_cast<std::uint32_t>(
        extractBits(blk, baField_.lsb, baField_.width));
    if (bgField_.width) {
        // Physical convention: the high bank bits select the group.
        const auto group = static_cast<std::uint32_t>(
            extractBits(blk, bgField_.lsb, bgField_.width));
        c.bank |= group << (bankBits_ - bgField_.width);
    }
    c.row = extractBits(blk, roField_.lsb, roField_.width);
    c.column = static_cast<std::uint32_t>(
        extractBits(blk, coField_.lsb, coField_.width));
    // XOR permutation: the stored bank/channel bits are the logical
    // index XORed with (disjoint slices of) the row; XOR again to
    // recover. Involutive, so encode() applies the same operation.
    if (xorBank_ && bankBits_) {
        c.bank ^= static_cast<std::uint32_t>(c.row) &
                  ((1u << bankBits_) - 1);
    }
    if (xorChannel_ && chField_.width) {
        c.channel ^= static_cast<std::uint32_t>(c.row >> bankBits_) &
                     ((1u << chField_.width) - 1);
    }
    return c;
}

Addr
AddressMapper::encode(const DramCoord &coord) const
{
    std::uint32_t bank = coord.bank;
    std::uint32_t channel = coord.channel;
    if (xorBank_ && bankBits_) {
        bank ^= static_cast<std::uint32_t>(coord.row) &
                ((1u << bankBits_) - 1);
    }
    if (xorChannel_ && chField_.width) {
        channel ^=
            static_cast<std::uint32_t>(coord.row >> bankBits_) &
            ((1u << chField_.width) - 1);
    }
    Addr blk = 0;
    blk = insertBits(blk, chField_.lsb, chField_.width, channel);
    blk = insertBits(blk, raField_.lsb, raField_.width, coord.rank);
    if (bgField_.width) {
        blk = insertBits(blk, bgField_.lsb, bgField_.width,
                         bank >> (bankBits_ - bgField_.width));
        blk = insertBits(blk, baField_.lsb, baField_.width,
                         bank & ((1u << baField_.width) - 1));
    } else {
        blk = insertBits(blk, baField_.lsb, baField_.width, bank);
    }
    blk = insertBits(blk, roField_.lsb, roField_.width, coord.row);
    blk = insertBits(blk, coField_.lsb, coField_.width, coord.column);
    return blk << blockShift_;
}

} // namespace mcsim
