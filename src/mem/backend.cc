#include "backend.hh"

#include <algorithm>
#include <numeric>

#include "address_mapping.hh"
#include "common/log.hh"
#include "dram/dram_system.hh"
#include "dram/energy.hh"
#include "factory.hh"
#include "hotness_monitor.hh"
#include "sim/metrics.hh"
#include "sim/sim_config.hh"

namespace mcsim {

const char *
memBackendKindName(MemBackendKind k)
{
    switch (k) {
      case MemBackendKind::FlatDram:
        return "flat";
      case MemBackendKind::StackedDram:
        return "stacked";
      case MemBackendKind::Tiered:
        return "tiered";
    }
    return "?";
}

const char *
tierPolicyName(TierPolicy p)
{
    switch (p) {
      case TierPolicy::StaticSplit:
        return "static_split";
      case TierPolicy::HotnessBased:
        return "hotness_based";
      case TierPolicy::AlloyCache:
        return "alloy_cache";
    }
    return "?";
}

bool
tryTierPolicyFromName(const std::string &name, TierPolicy &out)
{
    for (TierPolicy p : {TierPolicy::StaticSplit, TierPolicy::HotnessBased,
                         TierPolicy::AlloyCache}) {
        if (name == tierPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

namespace {

/**
 * The flat JEDEC backend: the paper's memory system. One DramSystem
 * channel per queue, one MemController in front of each, the scheme's
 * AddressMapper doing the routing. Statistics collection reproduces
 * the pre-backend System::collect() arithmetic bit for bit.
 */
class FlatDramBackend final : public MemBackend
{
  public:
    FlatDramBackend(const SimConfig &cfg, std::uint32_t numCores)
        : power_(cfg.power), timings_(cfg.timings), clk_(cfg.clocks),
          ranksPerChannel_(cfg.dram.ranksPerChannel),
          banksPerRank_(cfg.dram.banksPerRank),
          mapper_(cfg.dram, cfg.mapping, cfg.bankGroupMapping),
          dram_(cfg.dram, cfg.timings, cfg.refreshEnabled, cfg.clocks)
    {
        for (std::uint32_t ch = 0; ch < dram_.numChannels(); ++ch) {
            controllers_.push_back(std::make_unique<MemController>(
                dram_.channel(ch),
                makeScheduler(cfg.scheduler, numCores, cfg.schedulerParams,
                              cfg.clocks, cfg.timings),
                makePagePolicy(cfg.pagePolicy, cfg.clocks), numCores,
                cfg.controller));
        }
    }

    MemBackendKind kind() const override { return MemBackendKind::FlatDram; }

    std::uint32_t
    numQueues() const override
    {
        return static_cast<std::uint32_t>(controllers_.size());
    }

    MemController &queue(std::uint32_t i) override { return *controllers_[i]; }

    void
    route(Request &req, Tick) override
    {
        req.coord = mapper_.decode(req.addr);
    }

    std::uint64_t
    capacityBytes() const override
    {
        return dram_.geometry().capacityBytes();
    }

    void
    resetStats(Tick now) override
    {
        for (auto &mc : controllers_)
            mc->resetStats(now);
    }

    double
    busUtilization(Tick now) const override
    {
        return dram_.busUtilization(now);
    }

    void
    collect(MetricSet &m, Tick now) const override
    {
        m.bwUtilPct = 100.0 * dram_.busUtilization(now);

        const DramEnergyModel energyModel(power_, timings_,
                                          ranksPerChannel_, banksPerRank_,
                                          clk_);
        // Every channel's stats window starts at the same resetStats()
        // tick, so the elapsed time is one number, not per-controller.
        const double elapsedNs =
            controllers_.empty()
                ? 0.0
                : clk_.ticksToNs(
                      now -
                      controllers_.front()->channel().stats().statsStartTick);
        // collect() fills, it never accumulates: zero the sum before
        // adding so a second collect() into the same MetricSet is
        // idempotent.
        m.dramEnergyNj = 0.0;
        for (const auto &mc : controllers_) {
            m.dramEnergyNj +=
                energyModel.estimate(mc->channel().stats(), now).totalNj();
        }
        m.dramAvgPowerMw =
            elapsedNs > 0.0 ? m.dramEnergyNj * 1e3 / elapsedNs : 0.0;
    }

  private:
    DramPowerParams power_;
    DramTimings timings_;
    ClockDomains clk_;
    std::uint32_t ranksPerChannel_;
    std::uint32_t banksPerRank_;
    AddressMapper mapper_;
    DramSystem dram_;
    std::vector<std::unique_ptr<MemController>> controllers_;
};

/**
 * Per-stack dynamic remapping table: a permutation over the stack's
 * vaults x banks logical slots, driven by per-slot access counters.
 * Everything is an ordered std::vector walked by index with
 * lowest-index tie-breaks, so decisions are deterministic; mutation
 * happens only inside recordAccess(), i.e. on the route() path.
 */
class VaultRemapper
{
  public:
    VaultRemapper(std::uint32_t vaults, std::uint32_t banks,
                  const RemapConfig &cfg, TickSpan migrationTicks)
        : vaults_(vaults), banks_(banks), cfg_(cfg),
          migrationTicks_(migrationTicks),
          logToPhys_(static_cast<std::size_t>(vaults) * banks),
          counts_(logToPhys_.size(), 0), busyUntil_(logToPhys_.size())
    {
        std::iota(logToPhys_.begin(), logToPhys_.end(), 0u);
        windowLeft_ = cfg_.windowAccesses;
    }

    /** Count an access to a logical slot; at each window boundary,
     *  consider one hot-to-cold bank swap. */
    void
    recordAccess(std::uint32_t logicalSlot, Tick now)
    {
        ++counts_[logicalSlot];
        if (cfg_.windowAccesses == 0 || --windowLeft_ > 0)
            return;
        windowLeft_ = cfg_.windowAccesses;
        maybeMigrate(now);
    }

    std::uint32_t
    physSlot(std::uint32_t logicalSlot) const
    {
        return logToPhys_[logicalSlot];
    }

    Tick busyUntil(std::uint32_t phys) const { return busyUntil_[phys]; }

    std::uint64_t migrations() const { return migrations_; }
    std::uint64_t migratedRows() const { return migratedRows_; }

    /** Window stats reset: the learned table (and its counters, which
     *  keep learning across the warmup/measure boundary) persist. */
    void
    resetStats()
    {
        migrations_ = 0;
        migratedRows_ = 0;
    }

  private:
    void
    maybeMigrate(Tick now)
    {
        // Physical-vault load: sum each logical slot's count into the
        // vault its physical slot lives in.
        std::vector<std::uint64_t> load(vaults_, 0);
        for (std::size_t l = 0; l < logToPhys_.size(); ++l)
            load[logToPhys_[l] / banks_] += counts_[l];
        std::uint32_t hot = 0, cold = 0;
        for (std::uint32_t v = 1; v < vaults_; ++v) {
            if (load[v] > load[hot])
                hot = v; // Strict '>': lowest index wins ties.
            if (load[v] < load[cold])
                cold = v;
        }
        if (hot == cold ||
            static_cast<double>(load[hot]) <=
                cfg_.hotFactor *
                    static_cast<double>(std::max<std::uint64_t>(load[cold],
                                                                1))) {
            return;
        }
        // Hottest logical slot currently in the hot vault, coldest in
        // the cold vault (again lowest-index tie-breaks).
        std::size_t lHot = logToPhys_.size(), lCold = logToPhys_.size();
        for (std::size_t l = 0; l < logToPhys_.size(); ++l) {
            const std::uint32_t pv = logToPhys_[l] / banks_;
            if (pv == hot &&
                (lHot == logToPhys_.size() || counts_[l] > counts_[lHot]))
                lHot = l;
            if (pv == cold &&
                (lCold == logToPhys_.size() || counts_[l] < counts_[lCold]))
                lCold = l;
        }
        if (lHot == logToPhys_.size() || lCold == logToPhys_.size())
            return;
        std::swap(logToPhys_[lHot], logToPhys_[lCold]);
        const Tick doneAt = now + migrationTicks_;
        busyUntil_[logToPhys_[lHot]] = doneAt;
        busyUntil_[logToPhys_[lCold]] = doneAt;
        ++migrations_;
        migratedRows_ += 2ull * cfg_.migrationRows; // Both directions.
        // Decay so old phases do not pin the table forever.
        for (auto &c : counts_)
            c >>= 1;
    }

    std::uint32_t vaults_;
    std::uint32_t banks_;
    RemapConfig cfg_;
    TickSpan migrationTicks_;
    std::vector<std::uint32_t> logToPhys_; ///< logical slot -> physical slot.
    std::vector<std::uint64_t> counts_;    ///< Accesses per logical slot.
    std::vector<Tick> busyUntil_;          ///< Migration gate per phys slot.
    std::uint32_t windowLeft_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t migratedRows_ = 0;
};

/**
 * HMC-style stacked DRAM: cfg.dram.channels stacks, each with
 * geometry.vaultsPerStack vaults of banksPerRank banks. Every vault
 * is its own single-channel Channel (so the vault-local command/data
 * buses and refresh are modeled independently) with a MemController
 * queue in front; the global queue index is stack * vaults + vault,
 * which is what coord.channel carries, so the event kernel's routing
 * and the parallel kernel's per-channel sharding decompose per vault
 * group with no kernel changes. The TSV return-path crossing is the
 * device's tTSV timing, charged by the Channel on read data return.
 *
 * Static routing comes from an AddressMapper over the flattened
 * geometry (stacks * vaults "channels" of one rank), i.e. the
 * vault-interleave the mapping scheme implies. With remapping enabled
 * a per-stack VaultRemapper permutes (vault, bank) slots under it.
 */
class StackedDramBackend final : public MemBackend
{
  public:
    StackedDramBackend(const SimConfig &cfg, std::uint32_t numCores)
        : power_(cfg.power), timings_(cfg.timings), clk_(cfg.clocks),
          stacks_(cfg.dram.channels), vaults_(cfg.dram.vaultsPerStack),
          banks_(cfg.dram.banksPerRank), remapCfg_(cfg.remap),
          mapper_(flattenedGeometry(cfg.dram), cfg.mapping,
                  cfg.bankGroupMapping)
    {
        mc_assert(vaults_ > 0,
                  "stacked backend needs geometry.vaultsPerStack > 0");
        mc_assert(cfg.dram.ranksPerChannel == 1,
                  "stacked backend models one rank per vault");
        DramGeometry vaultGeom = cfg.dram;
        vaultGeom.channels = 1;
        vaultGeom.vaultsPerStack = 0; // One vault's worth of banks.
        vaultGeom.validate();
        const TickSpan migrationTicks = clk_.dramToTicks(
            static_cast<std::uint64_t>(cfg.remap.migrationRows) *
            cfg.remap.migrationCyclesPerRow);
        for (std::uint32_t s = 0; s < stacks_; ++s)
            remappers_.emplace_back(vaults_, banks_, cfg.remap,
                                    migrationTicks);
        for (std::uint32_t q = 0; q < stacks_ * vaults_; ++q) {
            channels_.push_back(std::make_unique<Channel>(
                vaultGeom, cfg.timings, cfg.refreshEnabled, cfg.clocks));
            controllers_.push_back(std::make_unique<MemController>(
                *channels_.back(),
                makeScheduler(cfg.scheduler, numCores, cfg.schedulerParams,
                              cfg.clocks, cfg.timings),
                makePagePolicy(cfg.pagePolicy, cfg.clocks), numCores,
                cfg.controller));
        }
    }

    MemBackendKind
    kind() const override
    {
        return MemBackendKind::StackedDram;
    }

    std::uint32_t
    numQueues() const override
    {
        return static_cast<std::uint32_t>(controllers_.size());
    }

    MemController &queue(std::uint32_t i) override { return *controllers_[i]; }

    void
    route(Request &req, Tick now) override
    {
        req.coord = mapper_.decode(req.addr);
        const std::uint32_t stack = req.coord.channel / vaults_;
        std::uint32_t vault = req.coord.channel % vaults_;
        std::uint32_t bank = req.coord.bank;
        if (remapCfg_.enabled) {
            VaultRemapper &rm = remappers_[stack];
            const std::uint32_t logicalSlot = vault * banks_ + bank;
            rm.recordAccess(logicalSlot, now);
            const std::uint32_t phys = rm.physSlot(logicalSlot);
            vault = phys / banks_;
            bank = phys % banks_;
            const Tick busy = rm.busyUntil(phys);
            if (busy > req.availableAt)
                req.availableAt = busy;
        }
        req.coord.channel = stack * vaults_ + vault;
        req.coord.bank = bank;
        req.coord.rank = 0;
    }

    std::uint64_t
    capacityBytes() const override
    {
        return mapper_.geometry().capacityBytes();
    }

    void
    resetStats(Tick now) override
    {
        for (auto &mc : controllers_)
            mc->resetStats(now);
        for (auto &rm : remappers_)
            rm.resetStats();
    }

    double
    busUtilization(Tick now) const override
    {
        if (channels_.empty())
            return 0.0;
        double sum = 0.0;
        for (const auto &ch : channels_)
            sum += ch->stats().busUtilization(now);
        return sum / static_cast<double>(channels_.size());
    }

    void
    collect(MetricSet &m, Tick now) const override
    {
        m.bwUtilPct = 100.0 * busUtilization(now);

        // One rank of banks_ banks per vault.
        const DramEnergyModel energyModel(power_, timings_, 1, banks_,
                                          clk_);
        const double elapsedNs =
            controllers_.empty()
                ? 0.0
                : clk_.ticksToNs(
                      now -
                      controllers_.front()->channel().stats().statsStartTick);
        // collect() fills, it never accumulates: zero/clear every
        // summed field up front so a second collect() into the same
        // MetricSet reproduces identical values instead of doubling
        // the energy, duplicating every vault's queue entry (which
        // would also skew vaultQueueImbalance via the doubled mean),
        // and double-counting the remap migrations.
        m.dramEnergyNj = 0.0;
        for (const auto &mc : controllers_) {
            m.dramEnergyNj +=
                energyModel.estimate(mc->channel().stats(), now).totalNj();
        }
        m.dramAvgPowerMw =
            elapsedNs > 0.0 ? m.dramEnergyNj * 1e3 / elapsedNs : 0.0;

        m.perVaultReadQueue.clear();
        double sum = 0.0, peak = 0.0;
        for (const auto &mc : controllers_) {
            const double q = mc->stats().readQueueLen.mean(now);
            m.perVaultReadQueue.push_back(q);
            sum += q;
            peak = std::max(peak, q);
        }
        const double mean =
            controllers_.empty()
                ? 0.0
                : sum / static_cast<double>(controllers_.size());
        m.vaultQueueImbalance = mean > 0.0 ? peak / mean : 0.0;
        m.remapMigrations = 0;
        m.remapMigratedRows = 0;
        for (const auto &rm : remappers_) {
            m.remapMigrations += rm.migrations();
            m.remapMigratedRows += rm.migratedRows();
        }
    }

  private:
    /** The mapper's view: one "channel" per vault, one rank each, so
     *  the scheme's channel bits interleave blocks over every vault in
     *  the system. Capacity is identical to the stacked geometry's. */
    static DramGeometry
    flattenedGeometry(const DramGeometry &g)
    {
        DramGeometry flat = g;
        flat.channels = g.channels * g.vaultsPerStack;
        flat.ranksPerChannel = 1;
        flat.vaultsPerStack = 0;
        flat.validate();
        return flat;
    }

    DramPowerParams power_;
    DramTimings timings_;
    ClockDomains clk_;
    std::uint32_t stacks_;
    std::uint32_t vaults_;
    std::uint32_t banks_;
    RemapConfig remapCfg_;
    AddressMapper mapper_;
    std::vector<VaultRemapper> remappers_; ///< One per stack.
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<std::unique_ptr<MemController>> controllers_;
};

/**
 * Two-tier memory: the SimConfig's base backend (flat or stacked) as
 * the fast tier, composed with a slow CXL/NVM-like tier built from
 * the same media model with extra return-path latency (charged via
 * the tTSV hook, exactly like a stacked part's vault-to-logic-layer
 * crossing) and a service-rate bandwidth throttle (the tCCD/tCCD_L/
 * tBURST timings stretch by 100/slowBwPct). The slow tier adds
 * cfg.dram.channels queues after the fast tier's, so the event
 * kernel's routing and the parallel kernel's per-queue sharding
 * decompose over both tiers with no kernel changes.
 *
 * Placement is tracked per "tile" — a power-of-two span of whole rows
 * sized so the tile map stays bounded (<= 64 Ki tiles). The address
 * space is the fast tier's capacity scaled by 100/fastCapacityPct;
 * initially a fastCapacityPct share of the tiles is fast-resident,
 * interleaved evenly across the space (the static_split policy stops
 * there — CXLMemSim's static_balanced). A DAMON-style HotnessMonitor
 * samples every routed access; with the hotness_based policy each
 * closed aggregation window may swap the hottest slow-resident tile
 * with the coldest fast-resident tile, counting the copied rows and
 * gating both tiles until the copy's end via Request::availableAt —
 * the same migration cost model as the vault remapper. The
 * alloy_cache policy instead treats the fast tier as a direct-mapped
 * row cache: a tag hit routes fast, a miss routes slow and fills the
 * row's slot (a one-row migration with the same availableAt gate).
 *
 * All policy state (tile map, monitor, tags) mutates only inside
 * route(), which every kernel calls in identical global order — the
 * property that keeps tiered runs bit-identical across the reference,
 * event, and parallel kernels.
 */
class TieredMemBackend final : public MemBackend
{
  public:
    TieredMemBackend(const SimConfig &cfg, std::uint32_t numCores)
        : tier_(cfg.tier), clk_(cfg.clocks), power_(cfg.power),
          slowTimings_(slowTierTimings(cfg.timings, cfg.tier)),
          slowGeom_(slowTierGeometry(cfg.dram)),
          slowMapper_(slowGeom_, cfg.mapping, cfg.bankGroupMapping),
          inner_(cfg.backend == MemBackendKind::StackedDram
                     ? std::unique_ptr<MemBackend>(
                           std::make_unique<StackedDramBackend>(cfg,
                                                                numCores))
                     : std::make_unique<FlatDramBackend>(cfg, numCores)),
          monitor_(0, 1, MonitorConfig{})
    {
        mc_assert(tier_.fastCapacityPct >= 1 &&
                      tier_.fastCapacityPct <= 100,
                  "tier_capacity_pct must be in [1, 100]");
        mc_assert(tier_.slowBwPct >= 1 && tier_.slowBwPct <= 100,
                  "tier_bw must be in [1, 100]");
        innerQueues_ = inner_->numQueues();
        fastBytes_ = inner_->capacityBytes();
        rowBytes_ = cfg.dram.rowBufferBytes;
        slowSpan_ = slowGeom_.capacityBytes();

        // Tile sizing: start at one row and double until the whole
        // (fast + slow) space fits in the tile-map budget.
        const std::uint64_t rawSlow =
            fastBytes_ * (100ull - tier_.fastCapacityPct) /
            tier_.fastCapacityPct;
        tileBytes_ = rowBytes_;
        while ((fastBytes_ + rawSlow) / tileBytes_ > kMaxTiles)
            tileBytes_ <<= 1;
        totalTiles_ =
            static_cast<std::uint32_t>(fastBytes_ / tileBytes_) +
            static_cast<std::uint32_t>(rawSlow / tileBytes_);
        tileRows_ = tileBytes_ / rowBytes_;
        // Initial placement: a fastCapacityPct share of tiles is
        // fast-resident, spread evenly across the space (Bresenham
        // interleave) rather than packed at the bottom — workloads lay
        // their footprints from address 0 up, so a contiguous split
        // would leave the slow tier idle under every real footprint.
        tileTier_.assign(totalTiles_, 0);
        std::uint32_t fastCount = 0;
        for (std::uint32_t t = 0; t < totalTiles_; ++t) {
            if (static_cast<std::uint64_t>(t) * tier_.fastCapacityPct %
                    100 <
                tier_.fastCapacityPct) {
                tileTier_[t] = 1;
                ++fastCount;
            }
        }
        fastTiles_ = fastCount;
        slowTiles_ = totalTiles_ - fastCount;

        MonitorConfig mon;
        mon.sampleEvery = tier_.monitorSampleEvery;
        mon.windowSamples = tier_.monitorWindowSamples;
        mon.minRegions = tier_.monitorMinRegions;
        mon.maxRegions = tier_.monitorMaxRegions;
        monitor_ = HotnessMonitor(capacityBytes(), tileBytes_, mon);

        tileMigrationTicks_ = clk_.dramToTicks(
            2ull * tileRows_ * tier_.migrationCyclesPerRow);
        if (tier_.policy == TierPolicy::AlloyCache) {
            const std::uint64_t slots = std::min<std::uint64_t>(
                std::max<std::uint64_t>(fastBytes_ / rowBytes_, 1),
                kMaxAlloySlots);
            alloyTags_.assign(static_cast<std::size_t>(slots),
                              ~std::uint64_t{0});
            alloyBusy_.assign(static_cast<std::size_t>(slots), Tick{});
            alloyFillTicks_ =
                clk_.dramToTicks(tier_.migrationCyclesPerRow);
        }

        // The slow tier: one Channel + MemController per fast-tier
        // stack/channel, built from the device's media model with the
        // tier latency/bandwidth modifications.
        DramGeometry chGeom = slowGeom_;
        chGeom.channels = 1;
        chGeom.validate();
        for (std::uint32_t c = 0; c < slowGeom_.channels; ++c) {
            channels_.push_back(std::make_unique<Channel>(
                chGeom, slowTimings_, cfg.refreshEnabled, cfg.clocks));
            controllers_.push_back(std::make_unique<MemController>(
                *channels_.back(),
                makeScheduler(cfg.scheduler, numCores, cfg.schedulerParams,
                              cfg.clocks, cfg.timings),
                makePagePolicy(cfg.pagePolicy, cfg.clocks), numCores,
                cfg.controller));
        }
    }

    MemBackendKind kind() const override { return MemBackendKind::Tiered; }

    std::uint32_t
    numQueues() const override
    {
        return innerQueues_ +
               static_cast<std::uint32_t>(controllers_.size());
    }

    MemController &
    queue(std::uint32_t i) override
    {
        return i < innerQueues_ ? inner_->queue(i)
                                : *controllers_[i - innerQueues_];
    }

    void
    route(Request &req, Tick now) override
    {
        const Addr addr = req.addr;
        const std::uint32_t tile = tileOf(addr);
        bool fast;
        if (tier_.policy == TierPolicy::AlloyCache) {
            const Addr row = addr / rowBytes_;
            const std::size_t slot =
                static_cast<std::size_t>(row % alloyTags_.size());
            fast = alloyTags_[slot] == row;
            if (fast) {
                // A hit during the slot's fill waits for the copy.
                if (alloyBusy_[slot] > req.availableAt)
                    req.availableAt = alloyBusy_[slot];
            } else {
                // Miss: served from the slow tier; the row fills its
                // direct-mapped fast slot behind the access.
                alloyTags_[slot] = row;
                alloyBusy_[slot] = now + alloyFillTicks_;
                ++migrations_;
                ++migratedRows_;
            }
        } else {
            fast = tileTier_[tile] != 0;
        }
        if (monitor_.record(addr)) {
            if (tier_.policy == TierPolicy::HotnessBased)
                maybeMigrate(now);
            monitor_.closeWindow();
        }
        if (fast) {
            ++fastRouted_;
            // Fold into the fast tier's physical space: a promoted
            // slow-region address borrows the frame its fold lands in
            // (a performance model, not a functional allocator).
            req.addr = addr % fastBytes_;
            inner_->route(req, now);
            req.addr = addr;
        } else {
            ++slowRouted_;
            req.coord = slowMapper_.decode(addr % slowSpan_);
            req.coord.channel += innerQueues_;
        }
        // A tile mid-migration gates its requests (either direction of
        // the swap) until the copy finishes.
        for (const TileGate &g : migrating_) {
            if (g.tile == tile && g.until > req.availableAt &&
                g.until > now) {
                req.availableAt = g.until;
            }
        }
    }

    std::uint64_t
    capacityBytes() const override
    {
        return static_cast<std::uint64_t>(totalTiles_) * tileBytes_;
    }

    void
    resetStats(Tick now) override
    {
        inner_->resetStats(now);
        for (auto &mc : controllers_)
            mc->resetStats(now);
        // Window counters reset; the learned state (tile map, monitor
        // regions, alloy tags) keeps learning across the boundary,
        // like the vault remapper's table.
        fastRouted_ = 0;
        slowRouted_ = 0;
        migrations_ = 0;
        migratedRows_ = 0;
    }

    double
    busUtilization(Tick now) const override
    {
        double sum = inner_->busUtilization(now) *
                     static_cast<double>(innerQueues_);
        for (const auto &ch : channels_)
            sum += ch->stats().busUtilization(now);
        const std::size_t n = innerQueues_ + channels_.size();
        return n ? sum / static_cast<double>(n) : 0.0;
    }

    void
    collect(MetricSet &m, Tick now) const override
    {
        // Fast-tier fields first (bus util, energy, any stacked
        // quantities); the inner collect() fills idempotently, so this
        // whole method stays fill-not-accumulate too.
        inner_->collect(m, now);

        // Fold the slow tier into the media-wide quantities.
        m.bwUtilPct = 100.0 * busUtilization(now);
        const DramEnergyModel energyModel(power_, slowTimings_,
                                          slowGeom_.ranksPerChannel,
                                          slowGeom_.banksPerRank, clk_);
        for (const auto &mc : controllers_) {
            m.dramEnergyNj +=
                energyModel.estimate(mc->channel().stats(), now).totalNj();
        }
        const double elapsedNs =
            controllers_.empty()
                ? 0.0
                : clk_.ticksToNs(
                      now -
                      controllers_.front()->channel().stats().statsStartTick);
        m.dramAvgPowerMw =
            elapsedNs > 0.0 ? m.dramEnergyNj * 1e3 / elapsedNs : 0.0;

        // Tier quantities (schema v7). Every ratio guards its empty
        // set: a run with no routed accesses reports a 0 hit fraction,
        // and a slow tier that served no reads reports a 0 p99 (the
        // histogram percentile of an empty merge is 0 by contract).
        const std::uint64_t total = fastRouted_ + slowRouted_;
        m.fastTierHitPct =
            total ? 100.0 * static_cast<double>(fastRouted_) /
                        static_cast<double>(total)
                  : 0.0;
        LogHistogram slowHist{24};
        for (const auto &mc : controllers_)
            slowHist.merge(mc->stats().readLatencyHist);
        m.slowTierReadLatencyP99 = slowHist.percentile(0.99);
        m.tierMigrations = migrations_;
        m.tierMigratedRows = migratedRows_;
    }

  private:
    /** Tile-map and alloy-tag budgets: bounded state, coarser tiles on
     *  bigger spaces rather than unbounded vectors. */
    static constexpr std::uint64_t kMaxTiles = 1ull << 16;
    static constexpr std::uint64_t kMaxAlloySlots = 1ull << 18;

    struct TileGate
    {
        std::uint32_t tile;
        Tick until;
    };

    /** Slow-tier media timing: the device's, with the tier link
     *  latency on the read return path (the tTSV hook; flat devices
     *  carry 0 there) and the column/burst cadence stretched to the
     *  throttled service rate. */
    static DramTimings
    slowTierTimings(const DramTimings &t, const TierConfig &tier)
    {
        DramTimings slow = t;
        slow.tTSV += tier.slowLatencyDramCycles;
        const auto scale = [&tier](std::uint32_t v) {
            return static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(v) * 100 + tier.slowBwPct -
                 1) /
                tier.slowBwPct);
        };
        slow.tCCD = scale(t.tCCD);
        slow.tCCDL = scale(t.tCCDL);
        slow.tBURST = scale(t.tBURST);
        return slow;
    }

    /** Slow-tier geometry: the device's channel shape with the vault
     *  dimension flattened away; slow-resident addresses fold into it
     *  modulo its capacity (an aliasing performance model). */
    static DramGeometry
    slowTierGeometry(const DramGeometry &g)
    {
        DramGeometry slow = g;
        slow.vaultsPerStack = 0;
        slow.validate();
        return slow;
    }

    std::uint32_t
    tileOf(Addr addr) const
    {
        const std::uint64_t t = addr / tileBytes_;
        return static_cast<std::uint32_t>(
            t < totalTiles_ ? t : totalTiles_ - 1);
    }

    /**
     * One tile swap per closed monitor window, at most: the hottest
     * slow-resident tile (by its covering region's sampled density)
     * swaps with the coldest fast-resident tile when the density gap
     * exceeds hotFactor. Lowest tile index wins every tie, so the
     * decision is deterministic.
     */
    void
    maybeMigrate(Tick now)
    {
        // Expired gates prune here (bounded: 2 entries per window).
        std::size_t keep = 0;
        for (const TileGate &g : migrating_) {
            if (g.until > now)
                migrating_[keep++] = g;
        }
        migrating_.resize(keep);
        if (fastTiles_ == 0 || slowTiles_ == 0)
            return;

        // Walk tiles and monitor regions in lockstep (both address-
        // ordered): a tile's heat is its region's count per tile.
        const auto &regions = monitor_.regions();
        if (regions.empty())
            return;
        std::uint32_t hotTile = totalTiles_, coldTile = totalTiles_;
        double hotHeat = 0.0, coldHeat = 0.0;
        std::size_t r = 0;
        for (std::uint32_t t = 0; t < totalTiles_; ++t) {
            const Addr start = static_cast<Addr>(t) * tileBytes_;
            while (r + 1 < regions.size() && regions[r].end <= start)
                ++r;
            const Addr regTiles =
                (regions[r].end - regions[r].start) / tileBytes_;
            const double heat =
                regTiles ? static_cast<double>(regions[r].count) /
                               static_cast<double>(regTiles)
                         : 0.0;
            if (tileTier_[t] == 0) {
                if (hotTile == totalTiles_ || heat > hotHeat) {
                    hotTile = t;
                    hotHeat = heat;
                }
            } else if (coldTile == totalTiles_ || heat < coldHeat) {
                coldTile = t;
                coldHeat = heat;
            }
        }
        if (hotTile == totalTiles_ || coldTile == totalTiles_)
            return;
        if (hotHeat <= tier_.hotFactor * std::max(coldHeat, 1.0))
            return;

        tileTier_[hotTile] = 1;
        tileTier_[coldTile] = 0;
        const Tick doneAt = now + tileMigrationTicks_;
        migrating_.push_back({hotTile, doneAt});
        migrating_.push_back({coldTile, doneAt});
        ++migrations_;
        migratedRows_ += 2ull * tileRows_; // Both directions of the swap.
    }

    TierConfig tier_;
    ClockDomains clk_;
    DramPowerParams power_;
    DramTimings slowTimings_;
    DramGeometry slowGeom_;
    AddressMapper slowMapper_;
    std::unique_ptr<MemBackend> inner_; ///< The fast tier.
    HotnessMonitor monitor_;

    std::uint32_t innerQueues_ = 0;
    std::uint64_t fastBytes_ = 0;
    std::uint64_t slowSpan_ = 0;
    std::uint64_t rowBytes_ = 0;
    std::uint64_t tileBytes_ = 0;
    std::uint64_t tileRows_ = 0;
    std::uint32_t fastTiles_ = 0;
    std::uint32_t slowTiles_ = 0;
    std::uint32_t totalTiles_ = 0;
    std::vector<std::uint8_t> tileTier_; ///< 1 = fast-resident.
    std::vector<TileGate> migrating_;    ///< In-flight tile copies.
    TickSpan tileMigrationTicks_{};

    std::vector<std::uint64_t> alloyTags_; ///< Direct-mapped row tags.
    std::vector<Tick> alloyBusy_;          ///< Fill gate per slot.
    TickSpan alloyFillTicks_{};

    std::uint64_t fastRouted_ = 0;
    std::uint64_t slowRouted_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t migratedRows_ = 0;

    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<std::unique_ptr<MemController>> controllers_;
};

} // namespace

std::unique_ptr<MemBackend>
makeMemBackend(const SimConfig &cfg, std::uint32_t numCores)
{
    if (cfg.tier.enabled)
        return std::make_unique<TieredMemBackend>(cfg, numCores);
    if (cfg.backend == MemBackendKind::StackedDram)
        return std::make_unique<StackedDramBackend>(cfg, numCores);
    return std::make_unique<FlatDramBackend>(cfg, numCores);
}

} // namespace mcsim
