#include "backend.hh"

#include <algorithm>
#include <numeric>

#include "address_mapping.hh"
#include "common/log.hh"
#include "dram/dram_system.hh"
#include "dram/energy.hh"
#include "factory.hh"
#include "sim/metrics.hh"
#include "sim/sim_config.hh"

namespace mcsim {

const char *
memBackendKindName(MemBackendKind k)
{
    switch (k) {
      case MemBackendKind::FlatDram:
        return "flat";
      case MemBackendKind::StackedDram:
        return "stacked";
    }
    return "?";
}

namespace {

/**
 * The flat JEDEC backend: the paper's memory system. One DramSystem
 * channel per queue, one MemController in front of each, the scheme's
 * AddressMapper doing the routing. Statistics collection reproduces
 * the pre-backend System::collect() arithmetic bit for bit.
 */
class FlatDramBackend final : public MemBackend
{
  public:
    FlatDramBackend(const SimConfig &cfg, std::uint32_t numCores)
        : power_(cfg.power), timings_(cfg.timings), clk_(cfg.clocks),
          ranksPerChannel_(cfg.dram.ranksPerChannel),
          banksPerRank_(cfg.dram.banksPerRank),
          mapper_(cfg.dram, cfg.mapping, cfg.bankGroupMapping),
          dram_(cfg.dram, cfg.timings, cfg.refreshEnabled, cfg.clocks)
    {
        for (std::uint32_t ch = 0; ch < dram_.numChannels(); ++ch) {
            controllers_.push_back(std::make_unique<MemController>(
                dram_.channel(ch),
                makeScheduler(cfg.scheduler, numCores, cfg.schedulerParams,
                              cfg.clocks, cfg.timings),
                makePagePolicy(cfg.pagePolicy, cfg.clocks), numCores,
                cfg.controller));
        }
    }

    MemBackendKind kind() const override { return MemBackendKind::FlatDram; }

    std::uint32_t
    numQueues() const override
    {
        return static_cast<std::uint32_t>(controllers_.size());
    }

    MemController &queue(std::uint32_t i) override { return *controllers_[i]; }

    void
    route(Request &req, Tick) override
    {
        req.coord = mapper_.decode(req.addr);
    }

    std::uint64_t
    capacityBytes() const override
    {
        return dram_.geometry().capacityBytes();
    }

    void
    resetStats(Tick now) override
    {
        for (auto &mc : controllers_)
            mc->resetStats(now);
    }

    double
    busUtilization(Tick now) const override
    {
        return dram_.busUtilization(now);
    }

    void
    collect(MetricSet &m, Tick now) const override
    {
        m.bwUtilPct = 100.0 * dram_.busUtilization(now);

        const DramEnergyModel energyModel(power_, timings_,
                                          ranksPerChannel_, banksPerRank_,
                                          clk_);
        // Every channel's stats window starts at the same resetStats()
        // tick, so the elapsed time is one number, not per-controller.
        const double elapsedNs =
            controllers_.empty()
                ? 0.0
                : clk_.ticksToNs(
                      now -
                      controllers_.front()->channel().stats().statsStartTick);
        for (const auto &mc : controllers_) {
            m.dramEnergyNj +=
                energyModel.estimate(mc->channel().stats(), now).totalNj();
        }
        m.dramAvgPowerMw =
            elapsedNs > 0.0 ? m.dramEnergyNj * 1e3 / elapsedNs : 0.0;
    }

  private:
    DramPowerParams power_;
    DramTimings timings_;
    ClockDomains clk_;
    std::uint32_t ranksPerChannel_;
    std::uint32_t banksPerRank_;
    AddressMapper mapper_;
    DramSystem dram_;
    std::vector<std::unique_ptr<MemController>> controllers_;
};

/**
 * Per-stack dynamic remapping table: a permutation over the stack's
 * vaults x banks logical slots, driven by per-slot access counters.
 * Everything is an ordered std::vector walked by index with
 * lowest-index tie-breaks, so decisions are deterministic; mutation
 * happens only inside recordAccess(), i.e. on the route() path.
 */
class VaultRemapper
{
  public:
    VaultRemapper(std::uint32_t vaults, std::uint32_t banks,
                  const RemapConfig &cfg, TickSpan migrationTicks)
        : vaults_(vaults), banks_(banks), cfg_(cfg),
          migrationTicks_(migrationTicks),
          logToPhys_(static_cast<std::size_t>(vaults) * banks),
          counts_(logToPhys_.size(), 0), busyUntil_(logToPhys_.size())
    {
        std::iota(logToPhys_.begin(), logToPhys_.end(), 0u);
        windowLeft_ = cfg_.windowAccesses;
    }

    /** Count an access to a logical slot; at each window boundary,
     *  consider one hot-to-cold bank swap. */
    void
    recordAccess(std::uint32_t logicalSlot, Tick now)
    {
        ++counts_[logicalSlot];
        if (cfg_.windowAccesses == 0 || --windowLeft_ > 0)
            return;
        windowLeft_ = cfg_.windowAccesses;
        maybeMigrate(now);
    }

    std::uint32_t
    physSlot(std::uint32_t logicalSlot) const
    {
        return logToPhys_[logicalSlot];
    }

    Tick busyUntil(std::uint32_t phys) const { return busyUntil_[phys]; }

    std::uint64_t migrations() const { return migrations_; }
    std::uint64_t migratedRows() const { return migratedRows_; }

    /** Window stats reset: the learned table (and its counters, which
     *  keep learning across the warmup/measure boundary) persist. */
    void
    resetStats()
    {
        migrations_ = 0;
        migratedRows_ = 0;
    }

  private:
    void
    maybeMigrate(Tick now)
    {
        // Physical-vault load: sum each logical slot's count into the
        // vault its physical slot lives in.
        std::vector<std::uint64_t> load(vaults_, 0);
        for (std::size_t l = 0; l < logToPhys_.size(); ++l)
            load[logToPhys_[l] / banks_] += counts_[l];
        std::uint32_t hot = 0, cold = 0;
        for (std::uint32_t v = 1; v < vaults_; ++v) {
            if (load[v] > load[hot])
                hot = v; // Strict '>': lowest index wins ties.
            if (load[v] < load[cold])
                cold = v;
        }
        if (hot == cold ||
            static_cast<double>(load[hot]) <=
                cfg_.hotFactor *
                    static_cast<double>(std::max<std::uint64_t>(load[cold],
                                                                1))) {
            return;
        }
        // Hottest logical slot currently in the hot vault, coldest in
        // the cold vault (again lowest-index tie-breaks).
        std::size_t lHot = logToPhys_.size(), lCold = logToPhys_.size();
        for (std::size_t l = 0; l < logToPhys_.size(); ++l) {
            const std::uint32_t pv = logToPhys_[l] / banks_;
            if (pv == hot &&
                (lHot == logToPhys_.size() || counts_[l] > counts_[lHot]))
                lHot = l;
            if (pv == cold &&
                (lCold == logToPhys_.size() || counts_[l] < counts_[lCold]))
                lCold = l;
        }
        if (lHot == logToPhys_.size() || lCold == logToPhys_.size())
            return;
        std::swap(logToPhys_[lHot], logToPhys_[lCold]);
        const Tick doneAt = now + migrationTicks_;
        busyUntil_[logToPhys_[lHot]] = doneAt;
        busyUntil_[logToPhys_[lCold]] = doneAt;
        ++migrations_;
        migratedRows_ += 2ull * cfg_.migrationRows; // Both directions.
        // Decay so old phases do not pin the table forever.
        for (auto &c : counts_)
            c >>= 1;
    }

    std::uint32_t vaults_;
    std::uint32_t banks_;
    RemapConfig cfg_;
    TickSpan migrationTicks_;
    std::vector<std::uint32_t> logToPhys_; ///< logical slot -> physical slot.
    std::vector<std::uint64_t> counts_;    ///< Accesses per logical slot.
    std::vector<Tick> busyUntil_;          ///< Migration gate per phys slot.
    std::uint32_t windowLeft_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t migratedRows_ = 0;
};

/**
 * HMC-style stacked DRAM: cfg.dram.channels stacks, each with
 * geometry.vaultsPerStack vaults of banksPerRank banks. Every vault
 * is its own single-channel Channel (so the vault-local command/data
 * buses and refresh are modeled independently) with a MemController
 * queue in front; the global queue index is stack * vaults + vault,
 * which is what coord.channel carries, so the event kernel's routing
 * and the parallel kernel's per-channel sharding decompose per vault
 * group with no kernel changes. The TSV return-path crossing is the
 * device's tTSV timing, charged by the Channel on read data return.
 *
 * Static routing comes from an AddressMapper over the flattened
 * geometry (stacks * vaults "channels" of one rank), i.e. the
 * vault-interleave the mapping scheme implies. With remapping enabled
 * a per-stack VaultRemapper permutes (vault, bank) slots under it.
 */
class StackedDramBackend final : public MemBackend
{
  public:
    StackedDramBackend(const SimConfig &cfg, std::uint32_t numCores)
        : power_(cfg.power), timings_(cfg.timings), clk_(cfg.clocks),
          stacks_(cfg.dram.channels), vaults_(cfg.dram.vaultsPerStack),
          banks_(cfg.dram.banksPerRank), remapCfg_(cfg.remap),
          mapper_(flattenedGeometry(cfg.dram), cfg.mapping,
                  cfg.bankGroupMapping)
    {
        mc_assert(vaults_ > 0,
                  "stacked backend needs geometry.vaultsPerStack > 0");
        mc_assert(cfg.dram.ranksPerChannel == 1,
                  "stacked backend models one rank per vault");
        DramGeometry vaultGeom = cfg.dram;
        vaultGeom.channels = 1;
        vaultGeom.vaultsPerStack = 0; // One vault's worth of banks.
        vaultGeom.validate();
        const TickSpan migrationTicks = clk_.dramToTicks(
            static_cast<std::uint64_t>(cfg.remap.migrationRows) *
            cfg.remap.migrationCyclesPerRow);
        for (std::uint32_t s = 0; s < stacks_; ++s)
            remappers_.emplace_back(vaults_, banks_, cfg.remap,
                                    migrationTicks);
        for (std::uint32_t q = 0; q < stacks_ * vaults_; ++q) {
            channels_.push_back(std::make_unique<Channel>(
                vaultGeom, cfg.timings, cfg.refreshEnabled, cfg.clocks));
            controllers_.push_back(std::make_unique<MemController>(
                *channels_.back(),
                makeScheduler(cfg.scheduler, numCores, cfg.schedulerParams,
                              cfg.clocks, cfg.timings),
                makePagePolicy(cfg.pagePolicy, cfg.clocks), numCores,
                cfg.controller));
        }
    }

    MemBackendKind
    kind() const override
    {
        return MemBackendKind::StackedDram;
    }

    std::uint32_t
    numQueues() const override
    {
        return static_cast<std::uint32_t>(controllers_.size());
    }

    MemController &queue(std::uint32_t i) override { return *controllers_[i]; }

    void
    route(Request &req, Tick now) override
    {
        req.coord = mapper_.decode(req.addr);
        const std::uint32_t stack = req.coord.channel / vaults_;
        std::uint32_t vault = req.coord.channel % vaults_;
        std::uint32_t bank = req.coord.bank;
        if (remapCfg_.enabled) {
            VaultRemapper &rm = remappers_[stack];
            const std::uint32_t logicalSlot = vault * banks_ + bank;
            rm.recordAccess(logicalSlot, now);
            const std::uint32_t phys = rm.physSlot(logicalSlot);
            vault = phys / banks_;
            bank = phys % banks_;
            const Tick busy = rm.busyUntil(phys);
            if (busy > req.availableAt)
                req.availableAt = busy;
        }
        req.coord.channel = stack * vaults_ + vault;
        req.coord.bank = bank;
        req.coord.rank = 0;
    }

    std::uint64_t
    capacityBytes() const override
    {
        return mapper_.geometry().capacityBytes();
    }

    void
    resetStats(Tick now) override
    {
        for (auto &mc : controllers_)
            mc->resetStats(now);
        for (auto &rm : remappers_)
            rm.resetStats();
    }

    double
    busUtilization(Tick now) const override
    {
        if (channels_.empty())
            return 0.0;
        double sum = 0.0;
        for (const auto &ch : channels_)
            sum += ch->stats().busUtilization(now);
        return sum / static_cast<double>(channels_.size());
    }

    void
    collect(MetricSet &m, Tick now) const override
    {
        m.bwUtilPct = 100.0 * busUtilization(now);

        // One rank of banks_ banks per vault.
        const DramEnergyModel energyModel(power_, timings_, 1, banks_,
                                          clk_);
        const double elapsedNs =
            controllers_.empty()
                ? 0.0
                : clk_.ticksToNs(
                      now -
                      controllers_.front()->channel().stats().statsStartTick);
        for (const auto &mc : controllers_) {
            m.dramEnergyNj +=
                energyModel.estimate(mc->channel().stats(), now).totalNj();
        }
        m.dramAvgPowerMw =
            elapsedNs > 0.0 ? m.dramEnergyNj * 1e3 / elapsedNs : 0.0;

        double sum = 0.0, peak = 0.0;
        for (const auto &mc : controllers_) {
            const double q = mc->stats().readQueueLen.mean(now);
            m.perVaultReadQueue.push_back(q);
            sum += q;
            peak = std::max(peak, q);
        }
        const double mean =
            controllers_.empty()
                ? 0.0
                : sum / static_cast<double>(controllers_.size());
        m.vaultQueueImbalance = mean > 0.0 ? peak / mean : 0.0;
        for (const auto &rm : remappers_) {
            m.remapMigrations += rm.migrations();
            m.remapMigratedRows += rm.migratedRows();
        }
    }

  private:
    /** The mapper's view: one "channel" per vault, one rank each, so
     *  the scheme's channel bits interleave blocks over every vault in
     *  the system. Capacity is identical to the stacked geometry's. */
    static DramGeometry
    flattenedGeometry(const DramGeometry &g)
    {
        DramGeometry flat = g;
        flat.channels = g.channels * g.vaultsPerStack;
        flat.ranksPerChannel = 1;
        flat.vaultsPerStack = 0;
        flat.validate();
        return flat;
    }

    DramPowerParams power_;
    DramTimings timings_;
    ClockDomains clk_;
    std::uint32_t stacks_;
    std::uint32_t vaults_;
    std::uint32_t banks_;
    RemapConfig remapCfg_;
    AddressMapper mapper_;
    std::vector<VaultRemapper> remappers_; ///< One per stack.
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<std::unique_ptr<MemController>> controllers_;
};

} // namespace

std::unique_ptr<MemBackend>
makeMemBackend(const SimConfig &cfg, std::uint32_t numCores)
{
    if (cfg.backend == MemBackendKind::StackedDram)
        return std::make_unique<StackedDramBackend>(cfg, numCores);
    return std::make_unique<FlatDramBackend>(cfg, numCores);
}

} // namespace mcsim
