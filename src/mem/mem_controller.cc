#include "mem_controller.hh"

#include <algorithm>

#include "common/log.hh"

namespace mcsim {

MemController::MemController(Channel &channel,
                             std::unique_ptr<Scheduler> scheduler,
                             std::unique_ptr<PagePolicy> pagePolicy,
                             std::uint32_t numCores,
                             MemControllerConfig cfg)
    : channel_(channel), clk_(channel.clocks()),
      scheduler_(std::move(scheduler)),
      pagePolicy_(std::move(pagePolicy)), numCores_(numCores),
      cfg_(std::move(cfg))
{
    mc_assert(scheduler_ && pagePolicy_,
              "controller needs a scheduler and a page policy");
    mc_assert(cfg_.writeDrainLow < cfg_.writeDrainHigh,
              "write drain watermarks inverted");
    stats_.perCoreReads.assign(numCores_ + 1, 0);
    stats_.perCoreLatencyTicks.assign(numCores_ + 1, TickSpan{});
}

void
MemController::resetStats(Tick now)
{
    MemControllerStats fresh;
    fresh.perCoreReads.assign(numCores_ + 1, 0);
    fresh.perCoreLatencyTicks.assign(numCores_ + 1, TickSpan{});
    fresh.readQueueLen.reset(now);
    fresh.writeQueueLen.reset(now);
    fresh.readQueueLen.update(now, static_cast<double>(readQ_.size()));
    fresh.writeQueueLen.update(now, static_cast<double>(writeQ_.size()));
    stats_ = std::move(fresh);
    channel_.resetStats(now);
}

void
MemController::enqueue(Request *req, Tick now)
{
    req->arrivedAt = now;
    if (!req->isWrite) {
        // Read-around-write forwarding: a read that matches a queued
        // write is satisfied from the write queue.
        for (const Request *w : writeQ_) {
            if (w->addr == req->addr) {
                ++stats_.forwardedReads;
                req->completedAt =
                    now + clk_.dramToTicks(cfg_.forwardLatencyCycles);
                responses_.push({req->completedAt, req});
                return;
            }
        }
        readQ_.push_back(req);
        stats_.readQueueLen.update(now, static_cast<double>(readQ_.size()));
    } else {
        writeQ_.push_back(req);
        stats_.writeQueueLen.update(now,
                                    static_cast<double>(writeQ_.size()));
    }
    scheduler_->onRequestArrived(*req);
}

void
MemController::deliverResponses(Tick now)
{
    while (!responses_.empty() && responses_.top().readyAt <= now) {
        Request *req = responses_.top().req;
        responses_.pop();
        const TickSpan latency = req->completedAt - req->arrivedAt;
        ++stats_.readLatencySamples;
        stats_.readLatencyTicks += latency;
        stats_.readLatencyHist.sample(clk_.ticksToCore(latency).count());
        const auto slot =
            req->core >= numCores_ ? numCores_ : req->core;
        ++stats_.perCoreReads[slot];
        stats_.perCoreLatencyTicks[slot] += latency;
        if (onComplete_)
            onComplete_(req, now);
    }
}

void
MemController::updateDrainMode(Tick now)
{
    if (!readQ_.empty())
        lastReadPendingAt_ = now;
    const bool readsLongIdle =
        readQ_.empty() &&
        now - lastReadPendingAt_ >=
            clk_.dramToTicks(cfg_.writeIdleDrainCycles);

    if (drainingWrites_) {
        // The long-idle drain keeps going; the watermark drain stops at
        // the low mark so arriving reads see a short write burst at most.
        if (!readsLongIdle &&
            (writeQ_.size() <= cfg_.writeDrainLow || writeQ_.empty())) {
            drainingWrites_ = false;
        }
    } else {
        if (writeQ_.size() >= cfg_.writeDrainHigh ||
            (readQ_.empty() && writeQ_.size() >= cfg_.writeDrainIdle) ||
            (readsLongIdle && !writeQ_.empty())) {
            drainingWrites_ = true;
        }
    }
    if (writeQ_.empty())
        drainingWrites_ = false;
}

bool
MemController::tryRefresh(Tick now)
{
    const int rankIdx = channel_.refreshDueRank(now);
    if (rankIdx < 0)
        return false;
    const auto r = static_cast<std::uint32_t>(rankIdx);
    const Rank &rank = channel_.rank(r);

    if (channel_.perBankRefresh()) {
        // REFpb targets one bank round-robin; only it must be closed,
        // the rest of the rank stays schedulable.
        const std::uint32_t b = rank.refreshDueBank();
        if (rank.bank(b).isOpen()) {
            const auto pre = DramCommand::precharge(r, b);
            if (channel_.canIssue(pre, now)) {
                recordPrecharge(r, b, rank.bank(b).openRow(),
                                rank.bank(b).accessesThisActivation());
                channel_.issue(pre, now);
                return true;
            }
            return false; // Target bank not yet precharge-able; wait.
        }
        const auto ref = DramCommand::refreshBank(r, b);
        if (channel_.canIssue(ref, now)) {
            channel_.issue(ref, now);
            return true;
        }
        return false;
    }

    // All-bank refresh: close any open bank in the rank first.
    for (std::uint32_t b = 0; b < rank.numBanks(); ++b) {
        if (!rank.bank(b).isOpen())
            continue;
        const auto pre = DramCommand::precharge(r, b);
        if (channel_.canIssue(pre, now)) {
            recordPrecharge(r, b, rank.bank(b).openRow(),
                            rank.bank(b).accessesThisActivation());
            channel_.issue(pre, now);
            return true;
        }
        return false; // Open bank not yet precharge-able; wait.
    }
    const auto ref = DramCommand::refresh(r);
    if (channel_.canIssue(ref, now)) {
        channel_.issue(ref, now);
        return true;
    }
    return false;
}

void
MemController::scanBankPool(std::uint32_t rank, std::uint32_t bank,
                            std::uint64_t openRow, bool &pendingHit,
                            bool &pendingConflict) const
{
    // Page policies see the *active* transaction pool: the read queue
    // in read mode, the write queue while draining. Parked writes are
    // not serviceable, so treating them as pending conflicts would
    // collapse open-adaptive into close-adaptive whenever the write
    // queue holds a few random writebacks.
    pendingHit = false;
    pendingConflict = false;
    auto scan = [&](const std::vector<Request *> &q) {
        for (const Request *req : q) {
            if (req->coord.rank != rank || req->coord.bank != bank)
                continue;
            if (req->coord.row == openRow)
                pendingHit = true;
            else
                pendingConflict = true;
        }
    };
    if (scheduler_->unifiedQueues()) {
        scan(readQ_);
        scan(writeQ_);
    } else if (drainingWrites_) {
        scan(writeQ_);
    } else {
        scan(readQ_);
    }
}

void
MemController::buildCandidates(Tick now)
{
    cands_.clear();
    auto addPool = [&](std::vector<Request *> &q) {
        for (Request *req : q) {
            const Bank &bank =
                channel_.bank(req->coord.rank, req->coord.bank);
            Candidate c;
            c.req = req;
            if (!bank.isOpen()) {
                c.cmd = DramCommandType::Activate;
                c.legalAt = channel_.nextLegalAt(
                    DramCommand::activate(req->coord), now);
            } else if (bank.openRow() == req->coord.row) {
                c.cmd = req->isWrite ? DramCommandType::Write
                                     : DramCommandType::Read;
                c.isRowHit = true;
                const auto cmd = req->isWrite
                                     ? DramCommand::write(req->coord)
                                     : DramCommand::read(req->coord);
                c.legalAt = channel_.nextLegalAt(cmd, now);
            } else {
                c.cmd = DramCommandType::Precharge;
                c.legalAt = channel_.nextLegalAt(
                    DramCommand::precharge(req->coord.rank,
                                           req->coord.bank),
                    now);
            }
            // A backend-imposed earliest-service tick (a remap
            // migration in flight over this request's slot) delays
            // whichever command the request needs next. Zero for every
            // flat-backend request.
            if (req->availableAt > c.legalAt)
                c.legalAt = req->availableAt;
            // nextLegalAt clamps to now, so legality now is equivalent
            // to canIssue() (test_event_kernel cross-checks the two;
            // the availableAt clamp above only moves legalAt past now
            // for mid-migration stacked-backend requests).
            c.issuableNow = c.legalAt <= now;
            cands_.push_back(c);
        }
    };
    if (scheduler_->unifiedQueues()) {
        addPool(readQ_);
        addPool(writeQ_);
    } else if (drainingWrites_) {
        addPool(writeQ_);
    } else {
        addPool(readQ_);
    }
}

void
MemController::removeFromQueue(std::vector<Request *> &q, Request *req)
{
    auto it = std::find(q.begin(), q.end(), req);
    mc_assert(it != q.end(), "request not in its queue");
    q.erase(it);
}

void
MemController::serviceCas(Request *req, Tick now, Tick dataReadyAt)
{
    // Classify the row outcome for the hit-rate statistics.
    if (req->preIssued) {
        req->outcome = RowOutcome::Conflict;
        ++stats_.rowConflicts;
    } else if (req->actIssued) {
        req->outcome = RowOutcome::Miss;
        ++stats_.rowMisses;
    } else {
        req->outcome = RowOutcome::Hit;
        ++stats_.rowHits;
    }

    scheduler_->onRequestServiced(*req);
    if (req->isWrite) {
        removeFromQueue(writeQ_, req);
        stats_.writeQueueLen.update(now,
                                    static_cast<double>(writeQ_.size()));
        ++stats_.servedWrites;
        req->completedAt = now;
        if (onComplete_)
            onComplete_(req, now);
    } else {
        removeFromQueue(readQ_, req);
        stats_.readQueueLen.update(now, static_cast<double>(readQ_.size()));
        ++stats_.servedReads;
        req->completedAt = dataReadyAt;
        responses_.push({dataReadyAt, req});
    }
}

void
MemController::recordPrecharge(std::uint32_t rank, std::uint32_t bank,
                               std::uint64_t row, std::uint32_t accesses)
{
    stats_.activationAccesses.sample(accesses);
    pagePolicy_->onPrecharge(rank, bank, row, accesses);
}

bool
MemController::issueCandidate(const Candidate &cand, Tick now)
{
    Request *req = cand.req;
    switch (cand.cmd) {
      case DramCommandType::Precharge: {
        const Bank &bank = channel_.bank(req->coord.rank, req->coord.bank);
        recordPrecharge(req->coord.rank, req->coord.bank, bank.openRow(),
                        bank.accessesThisActivation());
        channel_.issue(
            DramCommand::precharge(req->coord.rank, req->coord.bank), now);
        req->preIssued = true;
        return true;
      }
      case DramCommandType::Activate:
        channel_.issue(DramCommand::activate(req->coord), now);
        pagePolicy_->onActivate(req->coord.rank, req->coord.bank,
                                req->coord.row);
        req->actIssued = true;
        return true;
      case DramCommandType::Read: {
        const auto res = channel_.issue(DramCommand::read(req->coord), now);
        serviceCas(req, now, res.dataReadyAt);
        return true;
      }
      case DramCommandType::Write:
        channel_.issue(DramCommand::write(req->coord), now);
        serviceCas(req, now, Tick{});
        return true;
      default:
        mc_panic("unexpected candidate command");
    }
    return false;
}

MemController::BankPending
MemController::gatherBankPending() const
{
    BankPending bp;
    const std::uint32_t banksPerRank =
        channel_.numRanks() ? channel_.rank(0).numBanks() : 0;
    if (static_cast<std::uint64_t>(channel_.numRanks()) * banksPerRank >
        64) {
        return bp; // Fall back to per-bank scans.
    }
    auto scan = [&](const std::vector<Request *> &q) {
        for (const Request *req : q) {
            const Bank &bank =
                channel_.bank(req->coord.rank, req->coord.bank);
            if (!bank.isOpen())
                continue;
            const std::uint64_t bit =
                1ull << (req->coord.rank * banksPerRank + req->coord.bank);
            if (req->coord.row == bank.openRow())
                bp.hit |= bit;
            else
                bp.conflict |= bit;
        }
    };
    if (scheduler_->unifiedQueues()) {
        scan(readQ_);
        scan(writeQ_);
    } else if (drainingWrites_) {
        scan(writeQ_);
    } else {
        scan(readQ_);
    }
    bp.valid = true;
    return bp;
}

void
MemController::pendingOf(const BankPending &bp, std::uint32_t rank,
                         std::uint32_t bank, std::uint64_t openRow,
                         bool &pendingHit, bool &pendingConflict) const
{
    if (!bp.valid) {
        scanBankPool(rank, bank, openRow, pendingHit, pendingConflict);
        return;
    }
    const std::uint64_t bit =
        1ull << (rank * channel_.rank(0).numBanks() + bank);
    pendingHit = (bp.hit & bit) != 0;
    pendingConflict = (bp.conflict & bit) != 0;
}

bool
MemController::tryPolicyPrecharge(Tick now, Tick *nextCloseEvent)
{
    const BankPending bp = gatherBankPending();
    const auto consider = [nextCloseEvent](Tick t) {
        if (nextCloseEvent && t < *nextCloseEvent)
            *nextCloseEvent = t;
    };
    for (std::uint32_t r = 0; r < channel_.numRanks(); ++r) {
        const Rank &rank = channel_.rank(r);
        for (std::uint32_t b = 0; b < rank.numBanks(); ++b) {
            const Bank &bank = rank.bank(b);
            if (!bank.isOpen())
                continue;
            PageQuery q;
            q.rank = r;
            q.bank = b;
            q.openRow = bank.openRow();
            q.accessesThisActivation = bank.accessesThisActivation();
            q.now = now;
            q.lastAccessAt = bank.lastAccessAt();
            pendingOf(bp, r, b, q.openRow, q.pendingHit, q.pendingConflict);
            const auto pre = DramCommand::precharge(r, b);
            if (!pagePolicy_->shouldClose(q)) {
                consider(pagePolicy_->nextCloseEventAt(q));
                continue;
            }
            if (!channel_.canIssue(pre, now)) {
                consider(channel_.nextLegalAt(pre, now));
                continue;
            }
            recordPrecharge(r, b, q.openRow, q.accessesThisActivation);
            channel_.issue(pre, now);
            return true;
        }
    }
    return false;
}

Tick
MemController::tick(Tick now)
{
    const Tick nextCycle = now + clk_.dramToTicks(1);
    deliverResponses(now);
    updateDrainMode(now);

    SchedulerContext ctx;
    ctx.numCores = numCores_;
    ctx.readQueueLen = readQ_.size();
    ctx.writeQueueLen = writeQ_.size();
    ctx.drainingWrites = drainingWrites_;
    scheduler_->tick(now, ctx);

    // Time-weighted queue statistics observe every executed cycle;
    // skipped cycles leave the piecewise-constant value untouched, so
    // the next update accrues the identical area.
    stats_.readQueueLen.update(now, static_cast<double>(readQ_.size()));
    stats_.writeQueueLen.update(now, static_cast<double>(writeQ_.size()));

    if (tryRefresh(now))
        return nextCycle;

    buildCandidates(now);
    if (!cands_.empty()) {
        const int pick = scheduler_->choose(cands_, now, ctx);
        if (pick >= 0) {
            mc_assert(pick < static_cast<int>(cands_.size()) &&
                          cands_[pick].issuableNow,
                      "scheduler chose an illegal candidate");
            issueCandidate(cands_[pick], now);
            return nextCycle;
        }
    }
    Tick policyCloseEvent = kMaxTick;
    if (tryPolicyPrecharge(now, &policyCloseEvent))
        return nextCycle;

    // Quiescent cycle: nothing issued and nothing can issue before the
    // next event. Ticks in between would be exact no-ops.
    const Tick ev = nextEventAt(now, policyCloseEvent);
    return ev > nextCycle ? ev : nextCycle;
}

Tick
MemController::nextEventAt(Tick now, Tick policyCloseEvent)
{
    Tick ev = kMaxTick;
    const auto consider = [&ev](Tick t) {
        if (t < ev)
            ev = t;
    };

    if (!responses_.empty())
        consider(responses_.top().readyAt);

    consider(scheduler_->nextEventAt(now));

    // A refresh already due but blocked (open bank awaiting its
    // precharge window) must retry every cycle.
    if (channel_.refreshDueRank(now) >= 0)
        return now + clk_.dramToTicks(1);
    consider(channel_.nextRefreshDueAt());

    // First tick any queued request's next command becomes legal —
    // already computed by this cycle's buildCandidates() pass.
    for (const Candidate &c : cands_)
        consider(c.legalAt);

    // Parked writes enter the idle drain once reads have been absent
    // for writeIdleDrainCycles (the only time-driven drain flip).
    if (!drainingWrites_ && readQ_.empty() && !writeQ_.empty()) {
        consider(lastReadPendingAt_ +
                 clk_.dramToTicks(cfg_.writeIdleDrainCycles));
    }

    // Page-policy closures of open banks: a close already wanted waits
    // on precharge legality, otherwise on the policy's own deadline —
    // computed by this cycle's tryPolicyPrecharge() scan.
    consider(policyCloseEvent);
    return ev;
}

} // namespace mcsim
