/**
 * @file
 * The memory request type exchanged between the cache hierarchy and
 * the memory controller.
 */

#ifndef CLOUDMC_MEM_REQUEST_HH
#define CLOUDMC_MEM_REQUEST_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/dram_params.hh"

namespace mcsim {

/** How a serviced request found its target row. */
enum class RowOutcome : std::uint8_t {
    Unknown,  ///< Not yet serviced.
    Hit,      ///< Row already open; CAS only.
    Miss,     ///< Bank was precharged; ACT + CAS.
    Conflict, ///< Another row was open; PRE + ACT + CAS.
};

/** A block-granularity memory request at the controller. */
struct Request
{
    std::uint64_t id = 0;
    CoreId core = 0;
    bool isWrite = false;
    bool isIo = false; ///< Issued by a DMA/IO engine, not a core.

    Addr addr = 0;       ///< Block-aligned physical address.
    DramCoord coord;     ///< Decoded channel/rank/bank/row/column.

    Tick arrivedAt;   ///< Enqueue tick at the controller.
    Tick completedAt; ///< Read: last data beat; write: CAS issue.

    /** Earliest tick the backend will service this request (default 0:
     *  immediately). Stamped by MemBackend::route() when the target
     *  slot is mid-migration (stacked backend's remap cost model); the
     *  controller clamps every command's legal tick to it. */
    Tick availableAt;

    RowOutcome outcome = RowOutcome::Unknown;

    // --- scheduler scratch state ---
    bool marked = false;   ///< PAR-BS batch membership.
    bool preIssued = false; ///< A conflict PRE was issued for us.
    bool actIssued = false; ///< An ACT was issued for us.
};

} // namespace mcsim

#endif // CLOUDMC_MEM_REQUEST_HH
