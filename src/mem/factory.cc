#include "factory.hh"

#include "common/log.hh"
#include "page_policies.hh"
#include "sched_basic.hh"
#include "sched_fqm.hh"

namespace mcsim {

const char *
schedulerKindName(SchedulerKind k)
{
    switch (k) {
      case SchedulerKind::FrFcfs: return "FR-FCFS";
      case SchedulerKind::FcfsBanks: return "FCFS_banks";
      case SchedulerKind::ParBs: return "PAR-BS";
      case SchedulerKind::Atlas: return "ATLAS";
      case SchedulerKind::Rl: return "RL";
      case SchedulerKind::Fcfs: return "FCFS";
      case SchedulerKind::Fqm: return "FQM";
      case SchedulerKind::Tcm: return "TCM";
      case SchedulerKind::Stfm: return "STFM";
    }
    return "???";
}

SchedulerKind
schedulerKindFromName(const std::string &name)
{
    for (auto k : kAllSchedulers) {
        if (name == schedulerKindName(k))
            return k;
    }
    mc_fatal("unknown scheduler '", name, "'");
}

const char *
pagePolicyKindName(PagePolicyKind k)
{
    switch (k) {
      case PagePolicyKind::OpenAdaptive: return "OpenAdaptive";
      case PagePolicyKind::CloseAdaptive: return "CloseAdaptive";
      case PagePolicyKind::Rbpp: return "RBPP";
      case PagePolicyKind::Abpp: return "ABPP";
      case PagePolicyKind::Open: return "Open";
      case PagePolicyKind::Close: return "Close";
      case PagePolicyKind::Timer: return "Timer";
      case PagePolicyKind::History: return "History";
    }
    return "???";
}

PagePolicyKind
pagePolicyKindFromName(const std::string &name)
{
    for (auto k : kAllPagePolicies) {
        if (name == pagePolicyKindName(k))
            return k;
    }
    mc_fatal("unknown page policy '", name, "'");
}

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind, std::uint32_t numCores,
              const SchedulerParams &params, const ClockDomains &clk,
              const DramTimings &timings)
{
    switch (kind) {
      case SchedulerKind::FrFcfs:
        return std::make_unique<FrFcfsScheduler>();
      case SchedulerKind::FcfsBanks:
        return std::make_unique<FcfsBanksScheduler>();
      case SchedulerKind::ParBs:
        return std::make_unique<ParBsScheduler>(numCores, params.parBs);
      case SchedulerKind::Atlas:
        return std::make_unique<AtlasScheduler>(numCores, params.atlas,
                                                clk);
      case SchedulerKind::Rl:
        return std::make_unique<RlScheduler>(params.rl, clk);
      case SchedulerKind::Fcfs:
        return std::make_unique<FcfsScheduler>();
      case SchedulerKind::Fqm:
        return std::make_unique<FqmScheduler>(numCores);
      case SchedulerKind::Tcm:
        return std::make_unique<TcmScheduler>(numCores, params.tcm, clk);
      case SchedulerKind::Stfm:
        return std::make_unique<StfmScheduler>(numCores, params.stfm, clk,
                                               timings);
    }
    mc_panic("unreachable scheduler kind");
}

std::unique_ptr<PagePolicy>
makePagePolicy(PagePolicyKind kind, const ClockDomains &clk)
{
    switch (kind) {
      case PagePolicyKind::OpenAdaptive:
        return std::make_unique<OpenAdaptivePolicy>();
      case PagePolicyKind::CloseAdaptive:
        return std::make_unique<CloseAdaptivePolicy>();
      case PagePolicyKind::Rbpp:
        return std::make_unique<RbppPolicy>();
      case PagePolicyKind::Abpp:
        return std::make_unique<AbppPolicy>();
      case PagePolicyKind::Open:
        return std::make_unique<OpenPolicy>();
      case PagePolicyKind::Close:
        return std::make_unique<ClosePolicy>();
      case PagePolicyKind::Timer:
        return std::make_unique<TimerPolicy>(32, clk);
      case PagePolicyKind::History:
        return std::make_unique<HistoryPolicy>();
    }
    mc_panic("unreachable page policy kind");
}

} // namespace mcsim
