/**
 * @file
 * Factories that construct schedulers and page policies by name, for
 * the experiment harness and command-line tools.
 */

#ifndef CLOUDMC_MEM_FACTORY_HH
#define CLOUDMC_MEM_FACTORY_HH

#include <array>
#include <memory>
#include <string>

#include "page_policy.hh"
#include "scheduler.hh"
#include "sched_atlas.hh"
#include "sched_parbs.hh"
#include "sched_rl.hh"
#include "sched_stfm.hh"
#include "sched_tcm.hh"

namespace mcsim {

/** All scheduling algorithms available. */
enum class SchedulerKind : std::uint8_t {
    FrFcfs,    ///< Paper baseline.
    FcfsBanks, ///< Paper's simple contender.
    ParBs,
    Atlas,
    Rl,
    Fcfs, ///< Strict single-queue FCFS (ablation).
    Fqm,  ///< Fair queuing (extension).
    Tcm,  ///< Thread Cluster Memory (extension; paper Section 5).
    Stfm, ///< Stall-Time Fair Memory (extension; paper reference [9]).
};

/** The five schedulers the paper's Figures 1-7 sweep, paper order. */
constexpr std::array<SchedulerKind, 5> kPaperSchedulers = {
    SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks, SchedulerKind::ParBs,
    SchedulerKind::Atlas, SchedulerKind::Rl};

/** Every scheduler, paper set first, then the extensions. */
constexpr std::array<SchedulerKind, 9> kAllSchedulers = {
    SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks, SchedulerKind::ParBs,
    SchedulerKind::Atlas,  SchedulerKind::Rl,        SchedulerKind::Fcfs,
    SchedulerKind::Fqm,    SchedulerKind::Tcm,       SchedulerKind::Stfm};

/** All page management policies available. */
enum class PagePolicyKind : std::uint8_t {
    OpenAdaptive, ///< Paper baseline.
    CloseAdaptive,
    Rbpp,
    Abpp,
    Open,    ///< Pure open-page (ablation).
    Close,   ///< Pure close-page (ablation).
    Timer,   ///< Timer-based closure (extension).
    History, ///< Two-level closure predictor (extension).
};

/** The four policies the paper's Figures 9-11 sweep, paper order. */
constexpr std::array<PagePolicyKind, 4> kPaperPagePolicies = {
    PagePolicyKind::OpenAdaptive, PagePolicyKind::CloseAdaptive,
    PagePolicyKind::Rbpp, PagePolicyKind::Abpp};

/** Every page policy, paper set first, then the extensions. */
constexpr std::array<PagePolicyKind, 8> kAllPagePolicies = {
    PagePolicyKind::OpenAdaptive, PagePolicyKind::CloseAdaptive,
    PagePolicyKind::Rbpp,         PagePolicyKind::Abpp,
    PagePolicyKind::Open,         PagePolicyKind::Close,
    PagePolicyKind::Timer,        PagePolicyKind::History};

/** Tunables for the parameterized schedulers (paper Table 3). */
struct SchedulerParams
{
    ParBsConfig parBs;
    AtlasConfig atlas;
    RlConfig rl;
    TcmConfig tcm;
    StfmConfig stfm;
};

const char *schedulerKindName(SchedulerKind k);
SchedulerKind schedulerKindFromName(const std::string &name);

const char *pagePolicyKindName(PagePolicyKind k);
PagePolicyKind pagePolicyKindFromName(const std::string &name);

/**
 * Construct a scheduler instance.
 * @param clk Clock domains the cycle-denominated tunables (quanta,
 *        starvation thresholds, decay intervals) are converted on.
 * @param timings Device timings for schedulers that model service
 *        latency (STFM's contention-free estimate).
 */
std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind, std::uint32_t numCores,
              const SchedulerParams &params = SchedulerParams{},
              const ClockDomains &clk = kBaselineClocks,
              const DramTimings &timings = DramTimings::ddr3_1600());

/** Construct a page policy instance. */
std::unique_ptr<PagePolicy>
makePagePolicy(PagePolicyKind kind,
               const ClockDomains &clk = kBaselineClocks);

} // namespace mcsim

#endif // CLOUDMC_MEM_FACTORY_HH
