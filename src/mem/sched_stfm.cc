#include "sched_stfm.hh"

#include "dram/dram_params.hh"

namespace mcsim {

StfmScheduler::StfmScheduler(std::uint32_t numCores, StfmConfig cfg,
                             const ClockDomains &clk,
                             const DramTimings &timings)
    : numCores_(numCores), cfg_(cfg), clk_(clk), tm_(timings),
      nextDecayAt_(Tick{} + clk.coreToTicks(cfg.decayCycles)),
      sharedTicks_(numCores + 1, 0.0), aloneTicks_(numCores + 1, 0.0)
{
}

/** Contention-free CAS service estimate in ticks, by row outcome. */
TickSpan
StfmScheduler::aloneServiceTicks(const Request &req, bool isRowHit) const
{
    std::uint32_t cycles = tm_.tCAS + tm_.tBURST;
    if (!isRowHit) {
        cycles += tm_.tRCD;
        if (req.preIssued)
            cycles += tm_.tRP;
    }
    return clk_.dramToTicks(cycles);
}

double
StfmScheduler::slowdownOf(CoreId core) const
{
    const auto s = slot(core);
    if (aloneTicks_[s] <= 0.0)
        return 1.0;
    const double ratio = sharedTicks_[s] / aloneTicks_[s];
    return ratio < 1.0 ? 1.0 : ratio;
}

double
StfmScheduler::unfairness() const
{
    double lo = 0.0, hi = 0.0;
    for (std::uint32_t c = 0; c <= numCores_; ++c) {
        if (aloneTicks_[c] <= 0.0)
            continue; // Idle cores do not define fairness.
        const double s = slowdownOf(c);
        if (hi == 0.0 || s > hi)
            hi = s;
        if (lo == 0.0 || s < lo)
            lo = s;
    }
    return lo > 0.0 ? hi / lo : 1.0;
}

int
StfmScheduler::victimCore() const
{
    if (unfairness() <= cfg_.alpha)
        return -1;
    int victim = -1;
    double worst = 0.0;
    for (std::uint32_t c = 0; c <= numCores_; ++c) {
        if (aloneTicks_[c] <= 0.0)
            continue;
        const double s = slowdownOf(c);
        if (victim < 0 || s > worst) {
            worst = s;
            victim = static_cast<int>(c);
        }
    }
    return victim;
}

void
StfmScheduler::accountService(const Candidate &c, Tick now)
{
    const auto s = slot(c.req->core);
    sharedTicks_[s] += static_cast<double>((now - c.req->arrivedAt).count());
    aloneTicks_[s] += static_cast<double>(
        aloneServiceTicks(*c.req, c.isRowHit).count());
}

void
StfmScheduler::tick(Tick now, const SchedulerContext &)
{
    if (now < nextDecayAt_)
        return;
    nextDecayAt_ = now + clk_.coreToTicks(cfg_.decayCycles);
    for (std::uint32_t c = 0; c <= numCores_; ++c) {
        sharedTicks_[c] *= cfg_.decayFactor;
        aloneTicks_[c] *= cfg_.decayFactor;
    }
}

int
StfmScheduler::choose(const std::vector<Candidate> &cands, Tick now,
                      const SchedulerContext &)
{
    const TickSpan starveTicks = clk_.coreToTicks(cfg_.starvationCycles);
    const int victim = victimCore();

    const auto better = [&](const Candidate &a,
                            const Candidate &b) -> bool {
        const bool aStarved = now - a.req->arrivedAt >= starveTicks;
        const bool bStarved = now - b.req->arrivedAt >= starveTicks;
        if (aStarved != bStarved)
            return aStarved;
        if (victim >= 0) {
            const bool aVictim =
                slot(a.req->core) == static_cast<std::uint32_t>(victim);
            const bool bVictim =
                slot(b.req->core) == static_cast<std::uint32_t>(victim);
            if (aVictim != bVictim)
                return aVictim;
        }
        // FR-FCFS order otherwise: row hits, then age.
        if (a.isRowHit != b.isRowHit)
            return a.isRowHit;
        return a.req->arrivedAt < b.req->arrivedAt;
    };

    int best = -1;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!cands[i].issuableNow)
            continue;
        if (best < 0 || better(cands[i], cands[best]))
            best = static_cast<int>(i);
    }
    if (best >= 0) {
        const auto cmd = cands[best].cmd;
        if (cmd == DramCommandType::Read || cmd == DramCommandType::Write)
            accountService(cands[best], now);
    }
    return best;
}

} // namespace mcsim
