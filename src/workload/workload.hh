/**
 * @file
 * Workload generator interface: the instruction/address stream a core
 * executes. Generators are shared objects holding per-core state so
 * cores can be driven independently.
 */

#ifndef CLOUDMC_WORKLOAD_WORKLOAD_HH
#define CLOUDMC_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mcsim {

/** One dynamic operation in a core's instruction stream. */
struct Op
{
    enum class Kind : std::uint8_t { Compute, Load, Store };

    Kind kind = Kind::Compute;
    /** Data address for Load/Store. */
    Addr addr = 0;
    /** For Compute: number of back-to-back non-memory instructions. */
    std::uint32_t length = 1;
};

/** Abstract instruction-stream generator. */
class WorkloadGenerator
{
  public:
    virtual ~WorkloadGenerator() = default;

    /** Workload display name. */
    virtual const char *name() const = 0;

    /** Produce the next operation for @p core. */
    virtual Op nextOp(CoreId core) = 0;

    /**
     * Produce the next operation for @p core only if doing so touches
     * no state shared with other cores (per-core RNG and cursors
     * only). Used by the batched core loop to pull ops ahead of the
     * global cycle order; a refusal means the op must come from a
     * plain nextOp() call at the core's globally ordered turn, and the
     * generator must then produce exactly the op it refused here (any
     * per-core draws already consumed are stashed, not redrawn).
     *
     * The default refuses always, which is safe for any generator.
     */
    virtual bool
    tryNextOpLocal(CoreId core, Op &out)
    {
        (void)core;
        (void)out;
        return false;
    }

    /**
     * Produce the next instruction-fetch block address for @p core.
     * Called by the core each time it consumes a fetch block's worth
     * of instructions.
     */
    virtual Addr nextFetchBlock(CoreId core) = 0;
};

} // namespace mcsim

#endif // CLOUDMC_WORKLOAD_WORKLOAD_HH
