/**
 * @file
 * Workload generator interface: the instruction/address stream a core
 * executes. Generators are shared objects holding per-core state so
 * cores can be driven independently.
 */

#ifndef CLOUDMC_WORKLOAD_WORKLOAD_HH
#define CLOUDMC_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mcsim {

/** One dynamic operation in a core's instruction stream. */
struct Op
{
    enum class Kind : std::uint8_t { Compute, Load, Store };

    Kind kind = Kind::Compute;
    /** Data address for Load/Store. */
    Addr addr = 0;
    /** For Compute: number of back-to-back non-memory instructions. */
    std::uint32_t length = 1;
};

/** Abstract instruction-stream generator. */
class WorkloadGenerator
{
  public:
    virtual ~WorkloadGenerator() = default;

    /** Workload display name. */
    virtual const char *name() const = 0;

    /** Produce the next operation for @p core. */
    virtual Op nextOp(CoreId core) = 0;

    /**
     * Produce the next instruction-fetch block address for @p core.
     * Called by the core each time it consumes a fetch block's worth
     * of instructions.
     */
    virtual Addr nextFetchBlock(CoreId core) = 0;
};

} // namespace mcsim

#endif // CLOUDMC_WORKLOAD_WORKLOAD_HH
