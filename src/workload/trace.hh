/**
 * @file
 * Trace capture and replay.
 *
 * A trace records the per-core op stream a generator produced so runs
 * can be repeated exactly across configurations or exported for
 * offline analysis. The format is a simple packed binary: a small
 * header followed by fixed-width records.
 */

#ifndef CLOUDMC_WORKLOAD_TRACE_HH
#define CLOUDMC_WORKLOAD_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "workload.hh"

namespace mcsim {

/** One serialized trace record. */
struct TraceRecord
{
    enum class Type : std::uint8_t { Op, Fetch };

    Type type = Type::Op;
    std::uint8_t kind = 0; ///< Op::Kind for Op records.
    CoreId core = 0;
    std::uint32_t length = 1;
    Addr addr = 0;
};

/** Streams records to a binary trace file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path, std::uint32_t numCores);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void record(const TraceRecord &rec);
    std::uint64_t recordsWritten() const { return written_; }

  private:
    std::FILE *file_;
    std::uint64_t written_ = 0;
};

/**
 * Wraps another generator and records everything it produces, so a
 * live synthetic run can be captured for later replay.
 */
class RecordingWorkload : public WorkloadGenerator
{
  public:
    RecordingWorkload(WorkloadGenerator &inner, TraceWriter &writer)
        : inner_(inner), writer_(writer)
    {
    }

    const char *name() const override { return inner_.name(); }

    Op
    nextOp(CoreId core) override
    {
        const Op op = inner_.nextOp(core);
        TraceRecord rec;
        rec.type = TraceRecord::Type::Op;
        rec.kind = static_cast<std::uint8_t>(op.kind);
        rec.core = core;
        rec.length = op.length;
        rec.addr = op.addr;
        writer_.record(rec);
        return op;
    }

    Addr
    nextFetchBlock(CoreId core) override
    {
        const Addr a = inner_.nextFetchBlock(core);
        TraceRecord rec;
        rec.type = TraceRecord::Type::Fetch;
        rec.core = core;
        rec.addr = a;
        writer_.record(rec);
        return rec.addr;
    }

  private:
    WorkloadGenerator &inner_;
    TraceWriter &writer_;
};

/**
 * Replays a trace file as a generator. Each core consumes its own
 * record sub-stream; the trace loops when exhausted so replays can be
 * longer than the capture.
 */
class TraceWorkload : public WorkloadGenerator
{
  public:
    explicit TraceWorkload(const std::string &path);

    const char *name() const override { return name_.c_str(); }
    Op nextOp(CoreId core) override;
    Addr nextFetchBlock(CoreId core) override;

    std::uint32_t numCores() const { return numCores_; }
    std::uint64_t numRecords() const { return totalRecords_; }

  private:
    struct PerCore
    {
        std::vector<TraceRecord> ops;
        std::vector<Addr> fetches;
        std::size_t opCursor = 0;
        std::size_t fetchCursor = 0;
    };

    std::string name_ = "TraceReplay";
    std::uint32_t numCores_ = 0;
    std::uint64_t totalRecords_ = 0;
    std::vector<PerCore> cores_;
};

} // namespace mcsim

#endif // CLOUDMC_WORKLOAD_TRACE_HH
