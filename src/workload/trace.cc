#include "trace.hh"

#include <cstring>

#include "common/log.hh"

namespace mcsim {

namespace {

constexpr char kMagic[8] = {'c', 'm', 'c', 't', 'r', 'c', '0', '1'};

struct FileHeader
{
    char magic[8];
    std::uint32_t numCores;
    std::uint32_t reserved;
};

struct FileRecord
{
    std::uint8_t type;
    std::uint8_t kind;
    std::uint16_t core;
    std::uint32_t length;
    std::uint64_t addr;
};

static_assert(sizeof(FileRecord) == 16, "trace record must be packed");

} // namespace

TraceWriter::TraceWriter(const std::string &path, std::uint32_t numCores)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        mc_fatal("cannot open trace file '", path, "' for writing");
    FileHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.numCores = numCores;
    if (std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1)
        mc_fatal("cannot write trace header to '", path, "'");
}

TraceWriter::~TraceWriter()
{
    if (file_)
        std::fclose(file_);
}

void
TraceWriter::record(const TraceRecord &rec)
{
    // The on-disk record narrows CoreId to 16 bits; silently wrapping
    // would scatter a >64K-core capture across bogus small core ids.
    if (rec.core > 0xFFFFu) {
        mc_fatal("trace record core ", rec.core,
                 " exceeds the format's 16-bit core field");
    }
    FileRecord fr{};
    fr.type = static_cast<std::uint8_t>(rec.type);
    fr.kind = rec.kind;
    fr.core = static_cast<std::uint16_t>(rec.core);
    fr.length = rec.length;
    fr.addr = rec.addr;
    if (std::fwrite(&fr, sizeof(fr), 1, file_) != 1)
        mc_fatal("trace write failed");
    ++written_;
}

TraceWorkload::TraceWorkload(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        mc_fatal("cannot open trace file '", path, "'");
    FileHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, f) != 1 ||
        std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0) {
        std::fclose(f);
        mc_fatal("'", path, "' is not a cloudmc trace");
    }
    numCores_ = hdr.numCores;
    cores_.resize(numCores_);

    FileRecord fr{};
    while (true) {
        // Byte-granular read so a trailing partial record (a capture
        // killed mid-write) is diagnosed instead of silently dropped.
        const std::size_t n = std::fread(&fr, 1, sizeof(fr), f);
        if (n == 0)
            break;
        if (n != sizeof(fr)) {
            std::fclose(f);
            mc_fatal("trace '", path, "' ends mid-record (", n,
                     " trailing bytes); truncated capture?");
        }
        if (fr.core >= numCores_) {
            std::fclose(f);
            mc_fatal("trace record core ", fr.core, " out of range");
        }
        ++totalRecords_;
        if (fr.type == static_cast<std::uint8_t>(TraceRecord::Type::Fetch)) {
            cores_[fr.core].fetches.push_back(fr.addr);
        } else {
            TraceRecord rec;
            rec.type = TraceRecord::Type::Op;
            rec.kind = fr.kind;
            rec.core = fr.core;
            rec.length = fr.length;
            rec.addr = fr.addr;
            cores_[fr.core].ops.push_back(rec);
        }
    }
    std::fclose(f);
    if (totalRecords_ == 0)
        mc_fatal("trace '", path, "' contains no records");
    // A trace may cover only a subset of the declared cores (e.g. a
    // capture filtered to one core); replaying an uncovered core is
    // diagnosed lazily in nextOp()/nextFetchBlock().
}

Op
TraceWorkload::nextOp(CoreId core)
{
    mc_assert(core < numCores_, "trace replay core out of range");
    PerCore &pc = cores_[core];
    mc_assert(!pc.ops.empty(), "trace has no ops for core ", core);
    const TraceRecord &rec = pc.ops[pc.opCursor];
    pc.opCursor = (pc.opCursor + 1) % pc.ops.size();
    Op op;
    op.kind = static_cast<Op::Kind>(rec.kind);
    op.length = rec.length;
    op.addr = rec.addr;
    return op;
}

Addr
TraceWorkload::nextFetchBlock(CoreId core)
{
    mc_assert(core < numCores_, "trace replay core out of range");
    PerCore &pc = cores_[core];
    mc_assert(!pc.fetches.empty(), "trace has no fetches for core ", core);
    const Addr a = pc.fetches[pc.fetchCursor];
    pc.fetchCursor = (pc.fetchCursor + 1) % pc.fetches.size();
    return a;
}

} // namespace mcsim
