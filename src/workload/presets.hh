/**
 * @file
 * The twelve paper workloads (Table 1) as calibrated synthetic
 * presets: six CloudSuite scale-out workloads, three transactional
 * workloads, and three TPC-H decision-support queries.
 *
 * Each preset's region mixture is calibrated so the baseline system
 * (FR-FCFS, open-adaptive, 1 channel) reproduces the workload's
 * published characteristics; see DESIGN.md section 6 for targets and
 * EXPERIMENTS.md for measured values.
 */

#ifndef CLOUDMC_WORKLOAD_PRESETS_HH
#define CLOUDMC_WORKLOAD_PRESETS_HH

#include <array>
#include <string>
#include <vector>

#include "synthetic.hh"

namespace mcsim {

/** Identifiers for the paper's workloads, in figure order. */
enum class WorkloadId : std::uint8_t {
    DS,      ///< Data Serving
    MR,      ///< MapReduce
    SS,      ///< SAT Solver
    WF,      ///< Web Frontend (8 cores)
    WS,      ///< Web Search
    MS,      ///< Media Streaming
    WSPEC99, ///< SPECweb99
    TPCC1,   ///< TPC-C vendor A
    TPCC2,   ///< TPC-C vendor B
    TPCHQ2,  ///< TPC-H Q2
    TPCHQ6,  ///< TPC-H Q6
    TPCHQ17, ///< TPC-H Q17
};

/** All workloads in the paper's figure order. */
constexpr std::array<WorkloadId, 12> kAllWorkloads = {
    WorkloadId::DS,      WorkloadId::MR,     WorkloadId::SS,
    WorkloadId::WF,      WorkloadId::WS,     WorkloadId::MS,
    WorkloadId::WSPEC99, WorkloadId::TPCC1,  WorkloadId::TPCC2,
    WorkloadId::TPCHQ2,  WorkloadId::TPCHQ6, WorkloadId::TPCHQ17};

/** Build the calibrated parameter set for one workload. */
WorkloadParams workloadPreset(WorkloadId id);

/** Acronym used in the paper's figures (DS, MR, ...). */
const char *workloadAcronym(WorkloadId id);

/** Category of a workload. */
WorkloadCategory workloadCategory(WorkloadId id);

/** Workloads belonging to @p cat, in figure order. */
std::vector<WorkloadId> workloadsInCategory(WorkloadCategory cat);

} // namespace mcsim

#endif // CLOUDMC_WORKLOAD_PRESETS_HH
