#include "mixed.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace mcsim {

MixedWorkload::MixedWorkload(const std::vector<MixPart> &parts,
                             Addr addressSpace, std::uint64_t seedSalt)
{
    mc_assert(!parts.empty(), "a mix needs at least one part");

    // Equal power-of-two slices keep every inner address in-bounds and
    // the partition arithmetic exact.
    Addr slice = addressSpace / parts.size();
    while (!isPowerOf2(slice))
        slice &= slice - 1; // Clear lowest set bit until one remains.
    mc_assert(slice > 0, "address space too small for the mix");

    name_ = "Mix(";
    for (std::size_t p = 0; p < parts.size(); ++p) {
        WorkloadParams params = workloadPreset(parts[p].workload);
        params.cores = parts[p].cores;
        // Distinct streams per part even when presets repeat.
        params.seed += 7919 * (p + 1) + seedSalt;
        inner_.push_back(
            std::make_unique<SyntheticWorkload>(params, slice));
        bases_.push_back(static_cast<Addr>(p) * slice);

        for (CoreId c = 0; c < parts[p].cores; ++c) {
            route_.push_back({static_cast<std::uint32_t>(p), c});
        }
        name_ += workloadAcronym(parts[p].workload);
        name_ += ':';
        name_ += std::to_string(parts[p].cores);
        name_ += p + 1 < parts.size() ? "," : "";
    }
    name_ += ')';
    totalCores_ = static_cast<std::uint32_t>(route_.size());
}

Op
MixedWorkload::nextOp(CoreId core)
{
    mc_assert(core < totalCores_, "mix core out of range");
    const Route &r = route_[core];
    Op op = inner_[r.part]->nextOp(r.localCore);
    if (op.kind != Op::Kind::Compute)
        op.addr += bases_[r.part];
    return op;
}

Addr
MixedWorkload::nextFetchBlock(CoreId core)
{
    mc_assert(core < totalCores_, "mix core out of range");
    const Route &r = route_[core];
    return inner_[r.part]->nextFetchBlock(r.localCore) + bases_[r.part];
}

} // namespace mcsim
