#include "synthetic.hh"

#include <algorithm>
#include <cmath>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace mcsim {

namespace {

constexpr std::uint32_t kBlockBytes = 64;

/** Bijective index scrambler over a power-of-two domain. */
std::uint64_t
scrambleIndex(std::uint64_t idx, std::uint64_t mask)
{
    return (idx * 0x9E3779B97F4A7C15ULL) & mask;
}

/** Cheap well-mixed hash for intra-window jitter. */
std::uint64_t
jitterHash(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return x;
}

} // namespace

const char *
workloadCategoryName(WorkloadCategory c)
{
    switch (c) {
      case WorkloadCategory::ScaleOut: return "Scale-out";
      case WorkloadCategory::Transactional: return "Transactional";
      case WorkloadCategory::DecisionSupport: return "Decision Support";
    }
    return "???";
}

const char *
workloadCategoryAcronym(WorkloadCategory c)
{
    switch (c) {
      case WorkloadCategory::ScaleOut: return "SCO";
      case WorkloadCategory::Transactional: return "TRS";
      case WorkloadCategory::DecisionSupport: return "DSP";
    }
    return "???";
}

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &params,
                                     Addr addressSpace)
    : params_(params)
{
    mc_assert(!params_.regions.empty(), "workload '", params_.name,
              "' has no data regions");
    mc_assert(params_.cores >= 1, "workload needs at least one core");

    // Lay out code, then the data regions, packed from the bottom of
    // the address space. Footprints round up to power-of-two blocks so
    // the scramble permutation stays bijective.
    Addr cursor = 0;
    auto reserve = [&](std::uint64_t bytes) {
        const std::uint64_t blocks = std::max<std::uint64_t>(
            1, (bytes + kBlockBytes - 1) / kBlockBytes);
        const std::uint64_t rounded = isPowerOf2(blocks)
                                          ? blocks
                                          : (1ull << ceilLog2(blocks));
        const Addr base = cursor;
        cursor += rounded * kBlockBytes;
        return std::make_pair(base, rounded);
    };

    std::tie(codeBase_, codeBlocks_) = reserve(params_.codeFootprintBytes);
    codeBlockMask_ = codeBlocks_ - 1;
    codeZipf_ = std::make_unique<ZipfianGenerator>(
        codeBlocks_, params_.codeZipfTheta);

    // Region entry weights: a region that captures `stickyRefs`
    // consecutive references enters with weight share/stickyRefs so
    // its long-run reference share remains `share`.
    double shareSum = 0.0;
    for (const auto &spec : params_.regions) {
        RegionState rs;
        rs.spec = spec;
        mc_assert(isPowerOf2(spec.spreadFactor),
                  "spreadFactor must be a power of two");
        std::tie(rs.base, rs.blocks) =
            reserve(spec.footprintBytes * spec.spreadFactor);
        rs.blocks /= spec.spreadFactor;
        rs.blockMask = rs.blocks - 1;
        if (spec.seqBurstBlocks == 0) {
            rs.zipf = std::make_unique<ZipfianGenerator>(rs.blocks,
                                                         spec.zipfTheta);
        }
        mc_assert(spec.stickyRefs >= 1, "stickyRefs must be >= 1");
        shareSum += spec.share / spec.stickyRefs;
        regions_.push_back(std::move(rs));
        regionCdf_.push_back(shareSum);
    }
    mc_assert(shareSum > 0.0, "region shares sum to zero");
    for (auto &c : regionCdf_)
        c /= shareSum;

    mc_assert(cursor <= addressSpace, "workload '", params_.name,
              "' footprint ", cursor, " exceeds address space ",
              addressSpace);

    cores_.resize(params_.cores);
    for (std::uint32_t c = 0; c < params_.cores; ++c) {
        CoreState &cs = cores_[c];
        cs.rng.reseed(params_.seed * 0x51ed27f1ULL + c, c + 1);
        cs.baseMemProb = params_.memRefPerInstr * intensityOf(c);
        cs.memProb = std::min(0.95, std::max(0.001, cs.baseMemProb));
        cs.log1mMemProb = std::log1p(-cs.memProb);
        // Stagger initial phases across cores.
        cs.phaseIsHigh = (c % 2) == 0;
        cs.phaseInstrsLeft =
            static_cast<std::int64_t>(params_.phaseMeanInstrs) * (c + 1) /
            params_.cores;
        cs.streamPos.assign(regions_.size(), 0);
        cs.burstLeft.assign(regions_.size(), 0);
        cs.repeatLeft.assign(regions_.size(), 0);
        cs.codeBlock = scrambleIndex(c * 977, codeBlockMask_);
        rebuildRunThresh(cs);
    }
}

double
SyntheticWorkload::intensityOf(CoreId core) const
{
    if (params_.intensitySpread <= 0.0 || params_.cores <= 1)
        return 1.0;
    const double pos = 2.0 * static_cast<double>(core) /
                           static_cast<double>(params_.cores - 1) -
                       1.0;
    return 1.0 + params_.intensitySpread * pos;
}

Addr
SyntheticWorkload::regionAddress(RegionState &region, CoreState &cs,
                                 std::size_t regionIdx)
{
    const RegionSpec &spec = region.spec;
    if (spec.seqBurstBlocks > 0) {
        // Streaming: word-granular sweeps over consecutive blocks;
        // repeatsPerBlock models the intra-block accesses the L1
        // filters out.
        auto &repeat = cs.repeatLeft[regionIdx];
        auto &burst = cs.burstLeft[regionIdx];
        auto &pos = cs.streamPos[regionIdx];
        if (repeat > 0) {
            --repeat;
        } else {
            if (burst == 0) {
                if (spec.sharedFrontier) {
                    // Bursts are consecutive slices of one shared
                    // scan; occasionally the frontier jumps to a new
                    // random extent (a new file/buffer).
                    if (cs.rng.chance(0.02)) {
                        region.frontier =
                            cs.rng.below64(region.blocks);
                    }
                    pos = region.frontier;
                    region.frontier = (region.frontier +
                                       spec.seqBurstBlocks) &
                                      region.blockMask;
                } else {
                    pos = cs.rng.below64(region.blocks);
                }
                burst = spec.seqBurstBlocks;
            }
            pos = (pos + 1) & region.blockMask;
            --burst;
            repeat = spec.repeatsPerBlock > 0 ? spec.repeatsPerBlock - 1
                                              : 0;
        }
        return region.base + pos * kBlockBytes;
    }
    std::uint64_t idx = region.zipf->sample(cs.rng);
    if (spec.scramble)
        idx = scrambleIndex(idx, region.blockMask);
    // Sparse placement: each block owns a spreadFactor-sized window
    // and sits at a pseudo-random (but fixed) offset inside it, which
    // keeps cache set-index bits diverse while spreading the region
    // across many DRAM rows. Bijective, so footprint is preserved.
    if (spec.spreadFactor > 1) {
        idx = idx * spec.spreadFactor +
              (jitterHash(idx) & (spec.spreadFactor - 1));
    }
    return region.base + idx * kBlockBytes;
}

void
SyntheticWorkload::advancePhase(CoreState &cs, std::uint32_t instrs)
{
    if (params_.phaseMeanInstrs == 0)
        return;
    cs.phaseInstrsLeft -= instrs;
    if (cs.phaseInstrsLeft > 0)
        return;
    cs.phaseIsHigh = !cs.phaseIsHigh;
    // Geometric phase length around the configured mean.
    const double u = std::max(1e-9, cs.rng.nextDouble());
    cs.phaseInstrsLeft = static_cast<std::int64_t>(
        -std::log(u) * static_cast<double>(params_.phaseMeanInstrs));
    // Normalize so the long-run mean intensity multiplier is 1.
    const double norm = (params_.phaseHigh + params_.phaseLow) / 2.0;
    const double factor =
        (cs.phaseIsHigh ? params_.phaseHigh : params_.phaseLow) / norm;
    cs.memProb =
        std::min(0.95, std::max(0.001, cs.baseMemProb * factor));
    cs.log1mMemProb = std::log1p(-cs.memProb);
    rebuildRunThresh(cs);
}

void
SyntheticWorkload::rebuildRunThresh(CoreState &cs)
{
    for (std::size_t k = 0; k < kRunLevels; ++k) {
        cs.runThresh[k] =
            -std::expm1(cs.log1mMemProb * static_cast<double>(k + 1));
    }
}

std::uint32_t
SyntheticWorkload::runLength(const CoreState &cs, double u) const
{
    // runThresh[k] is the geometric CDF at k, so run == k exactly when
    // runThresh[k-1] <= u < runThresh[k]. A table compare replaces the
    // per-op log1p()+divide; draws within kRunMargin of a boundary
    // (where the table and the closed form could round differently)
    // fall through to the original formula, keeping results
    // bit-identical to it.
    for (std::size_t k = 0; k < kRunLevels; ++k) {
        if (u < cs.runThresh[k] - kRunMargin) {
            if (k > 0 && u < cs.runThresh[k - 1] + kRunMargin)
                break;
            return static_cast<std::uint32_t>(k);
        }
    }
    return static_cast<std::uint32_t>(std::log1p(-u) / cs.log1mMemProb);
}

std::size_t
SyntheticWorkload::pickRegion(CoreState &cs)
{
    // Continue a sticky run, or pick a region by entry weight.
    if (cs.stickyRegion >= 0 && cs.stickyLeft > 0) {
        --cs.stickyLeft;
        return static_cast<std::size_t>(cs.stickyRegion);
    }
    const double u = cs.rng.nextDouble();
    std::size_t idx = 0;
    while (idx + 1 < regionCdf_.size() && u > regionCdf_[idx])
        ++idx;
    if (regions_[idx].spec.stickyRefs > 1) {
        cs.stickyRegion = static_cast<int>(idx);
        cs.stickyLeft = regions_[idx].spec.stickyRefs - 1;
    } else {
        cs.stickyRegion = -1;
        cs.stickyLeft = 0;
    }
    return idx;
}

Op
SyntheticWorkload::finishMemoryOp(CoreState &cs, std::size_t idx)
{
    Op op;
    op.addr = regionAddress(regions_[idx], cs, idx);
    op.kind = cs.rng.chance(params_.storeFrac) ? Op::Kind::Store
                                               : Op::Kind::Load;
    return op;
}

Op
SyntheticWorkload::nextOp(CoreId core)
{
    CoreState &cs = cores_[core];

    if (cs.resumePending) {
        // tryNextOpLocal() already consumed this reference's run and
        // region draws; finish it here, at the globally ordered turn,
        // where touching the shared frontier is legal.
        cs.resumePending = false;
        return finishMemoryOp(cs, cs.resumeRegion);
    }

    if (!cs.pendingMem) {
        // Choose the length of the next non-memory run. Under a
        // Bernoulli(p) per-instruction memory-reference model the run
        // length is geometric.
        const std::uint32_t run = runLength(cs, cs.rng.nextDouble());
        if (run > 0) {
            cs.pendingMem = true;
            Op op;
            op.kind = Op::Kind::Compute;
            op.length = std::min<std::uint32_t>(run, 512);
            advancePhase(cs, op.length);
            return op;
        }
    }
    cs.pendingMem = false;
    advancePhase(cs, 1);
    return finishMemoryOp(cs, pickRegion(cs));
}

bool
SyntheticWorkload::tryNextOpLocal(CoreId core, Op &out)
{
    CoreState &cs = cores_[core];
    if (cs.resumePending)
        return false; // The stashed reference must go first, ordered.

    if (!cs.pendingMem) {
        const std::uint32_t run = runLength(cs, cs.rng.nextDouble());
        if (run > 0) {
            cs.pendingMem = true;
            out = Op{};
            out.kind = Op::Kind::Compute;
            out.length = std::min<std::uint32_t>(run, 512);
            advancePhase(cs, out.length);
            return true;
        }
    }
    cs.pendingMem = false;
    advancePhase(cs, 1);
    const std::size_t idx = pickRegion(cs);
    const RegionState &r = regions_[idx];
    if (r.spec.seqBurstBlocks > 0 && r.spec.sharedFrontier &&
        cs.repeatLeft[idx] == 0 && cs.burstLeft[idx] == 0) {
        // Starting a new burst consumes the region-wide shared
        // frontier. Stash the pick; the next nextOp() call resumes it.
        cs.resumePending = true;
        cs.resumeRegion = static_cast<std::uint32_t>(idx);
        return false;
    }
    out = finishMemoryOp(cs, idx);
    return true;
}

Addr
SyntheticWorkload::nextFetchBlock(CoreId core)
{
    CoreState &cs = cores_[core];
    if (cs.rng.chance(params_.codeJumpProb)) {
        std::uint64_t target = codeZipf_->sample(cs.rng);
        cs.codeBlock = scrambleIndex(target, codeBlockMask_);
    } else {
        cs.codeBlock = (cs.codeBlock + 1) & codeBlockMask_;
    }
    return codeBase_ + cs.codeBlock * kBlockBytes;
}

} // namespace mcsim
