/**
 * @file
 * Statistical workload synthesis.
 *
 * The paper drives its study with full-system CloudSuite / TPC / SPEC
 * traffic. Those stacks are not reproducible offline, so cloudmc
 * substitutes a region-mixture model: each data access picks a region
 * (hot cacheable set, streaming buffers, cold random heap, ...) and an
 * address within it, and the real cache hierarchy filters the stream.
 * The presets in presets.hh are calibrated so the FR-FCFS / OAPM /
 * 1-channel baseline reproduces each workload's published row-buffer
 * hit rate, L2 MPKI, single-access activation fraction, and bandwidth
 * utilization (see DESIGN.md section 6 and EXPERIMENTS.md).
 */

#ifndef CLOUDMC_WORKLOAD_SYNTHETIC_HH
#define CLOUDMC_WORKLOAD_SYNTHETIC_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "workload.hh"

namespace mcsim {

/** Workload categories, paper Table 1. */
enum class WorkloadCategory : std::uint8_t {
    ScaleOut,        ///< SCOW: CloudSuite.
    Transactional,   ///< TRSW: SPECweb99, TPC-C.
    DecisionSupport, ///< DSPW: TPC-H.
};

const char *workloadCategoryName(WorkloadCategory c);
const char *workloadCategoryAcronym(WorkloadCategory c);

/** One component of the data-access mixture. */
struct RegionSpec
{
    double share = 1.0;          ///< Probability mass among data refs.
    std::uint64_t footprintBytes = 1u << 20;
    double zipfTheta = 0.0;      ///< Skew for random regions.
    std::uint32_t seqBurstBlocks = 0; ///< >0: streaming bursts.
    std::uint32_t repeatsPerBlock = 1; ///< Word-granular reuse of a block.
    bool scramble = true;        ///< Permute indices of random regions.
    /**
     * Once entered, the region captures this many consecutive memory
     * references (a memcpy-like phase). The entry probability is
     * share / stickyRefs, so the long-run reference share stays equal
     * to `share` while consecutive misses land close enough in time to
     * produce row-buffer hits.
     */
    std::uint32_t stickyRefs = 1;
    /**
     * Physical sparsity: the region's blocks are strided this many
     * block slots apart, so a small cache footprint does not collapse
     * onto a handful of DRAM rows (hot heap objects are scattered
     * across a large heap in real systems). Must be a power of two.
     */
    std::uint32_t spreadFactor = 1;
    /**
     * Streaming regions only: burst start positions are handed out
     * from one region-wide advancing frontier instead of per-core
     * random restarts, modeling cores that scan shared files/buffers.
     * Concurrent bursts from different cores then touch the same DRAM
     * rows, which is where much of a server workload's row-buffer
     * locality comes from.
     */
    bool sharedFrontier = false;
};

/** Full parameterization of one synthetic workload. */
struct WorkloadParams
{
    std::string name = "Synthetic";
    std::string acronym = "SYN";
    WorkloadCategory category = WorkloadCategory::ScaleOut;

    std::uint32_t cores = 16; ///< Web Frontend uses 8 (paper Sec. 3.2).

    double memRefPerInstr = 0.30; ///< Loads+stores per instruction.
    double storeFrac = 0.25;      ///< Stores among memory references.
    std::vector<RegionSpec> regions;

    std::uint64_t codeFootprintBytes = 4u << 20;
    double codeJumpProb = 0.02;  ///< Taken-jump rate per fetch block.
    double codeZipfTheta = 0.45; ///< Function popularity skew.

    std::uint32_t mlpWindow = 1; ///< Outstanding load misses per core.
    std::uint32_t storeBufferEntries = 8;

    /**
     * Per-core intensity spread in [0,1): core i's memory intensity is
     * scaled by 1 + spread * (2*i/(cores-1) - 1). Models the per-core
     * imbalance (stragglers, skewed shards) that long-quantum ranking
     * schedulers such as ATLAS react badly to.
     */
    double intensitySpread = 0.0;

    /**
     * Per-core execution phases: cores alternate between memory-heavy
     * and compute-heavy phases (map vs. reduce, request bursts vs.
     * parsing). Phase lengths are geometric with this mean, in
     * instructions; 0 disables phases. The high/low intensity
     * multipliers are normalized so the long-run mean stays 1.
     */
    std::uint64_t phaseMeanInstrs = 0;
    double phaseHigh = 2.0;
    double phaseLow = 0.5;

    // --- DMA/IO engine (Web Frontend, Media Streaming, Data Serving)
    std::uint32_t ioWindow = 0; ///< Outstanding IO requests; 0 = none.
    std::uint32_t ioBurstBlocks = 64; ///< Sequential blocks per DMA burst.
    double ioWriteFrac = 0.3;
    std::uint32_t ioThinkDramCycles = 0; ///< Gap between IO completions.

    std::uint64_t seed = 1;
};

/** Region-mixture instruction stream generator. */
class SyntheticWorkload : public WorkloadGenerator
{
  public:
    /**
     * @param params         Workload description.
     * @param addressSpace   Total physical bytes the generator may
     *                       touch (the DRAM capacity).
     */
    SyntheticWorkload(const WorkloadParams &params, Addr addressSpace);

    const char *name() const override { return params_.name.c_str(); }
    Op nextOp(CoreId core) override;
    bool tryNextOpLocal(CoreId core, Op &out) override;
    Addr nextFetchBlock(CoreId core) override;

    const WorkloadParams &params() const { return params_; }

    /** Effective memory intensity multiplier of @p core. */
    double intensityOf(CoreId core) const;

  private:
    /** Geometric run-length fast path: CDF boundaries precomputed up
     *  to this run length; longer runs fall back to the log formula. */
    static constexpr std::size_t kRunLevels = 64;
    /** Draws within this distance of a CDF boundary also fall back,
     *  so the fast path is bit-identical to the closed form. */
    static constexpr double kRunMargin = 1e-9;

    struct RegionState
    {
        RegionSpec spec;
        Addr base = 0;
        std::uint64_t blocks = 0;     ///< Rounded to a power of two.
        std::uint64_t blockMask = 0;
        std::uint64_t frontier = 0; ///< Shared burst hand-out cursor.
        std::unique_ptr<ZipfianGenerator> zipf;
    };

    struct CoreState
    {
        Pcg32 rng;
        double memProb = 0.3;
        /** log1p(-memProb), hoisted out of the per-op run-length draw
         *  (it only changes on phase transitions). */
        double log1mMemProb = 0.0;
        bool pendingMem = false;
        // Per-region streaming cursors.
        std::vector<std::uint64_t> streamPos;
        std::vector<std::uint32_t> burstLeft;
        std::vector<std::uint32_t> repeatLeft;
        // Sticky-region run state.
        int stickyRegion = -1;
        std::uint32_t stickyLeft = 0;
        // Phase state.
        bool phaseIsHigh = false;
        std::int64_t phaseInstrsLeft = 0;
        double baseMemProb = 0.3;
        // Instruction fetch.
        std::uint64_t codeBlock = 0;
        /**
         * A memory reference refused by tryNextOpLocal() because its
         * address would consume the shared streaming frontier. All
         * per-core draws for it are already consumed and its region is
         * stashed here; the next nextOp() call — which happens at the
         * core's globally ordered turn — finishes exactly this
         * reference instead of drawing a new one.
         */
        bool resumePending = false;
        std::uint32_t resumeRegion = 0;
        /** runThresh[k] = P(run <= k) = 1 - (1-memProb)^(k+1); rebuilt
         *  whenever memProb changes (see runLength()). */
        std::array<double, kRunLevels> runThresh{};
    };

    Addr regionAddress(RegionState &region, CoreState &cs,
                       std::size_t regionIdx);
    void advancePhase(CoreState &cs, std::uint32_t instrs);
    /** Pick the region of the next memory reference (sticky or CDF). */
    std::size_t pickRegion(CoreState &cs);
    /** Address + load/store draw for a reference in region @p idx. */
    Op finishMemoryOp(CoreState &cs, std::size_t idx);
    /** Non-memory run length for uniform draw @p u (geometric). */
    std::uint32_t runLength(const CoreState &cs, double u) const;
    static void rebuildRunThresh(CoreState &cs);

    WorkloadParams params_;
    std::vector<RegionState> regions_;
    std::vector<double> regionCdf_;
    Addr codeBase_ = 0;
    std::uint64_t codeBlocks_ = 0;
    std::uint64_t codeBlockMask_ = 0;
    std::unique_ptr<ZipfianGenerator> codeZipf_;
    std::vector<CoreState> cores_;
};

} // namespace mcsim

#endif // CLOUDMC_WORKLOAD_SYNTHETIC_HH
