#include "presets.hh"

#include <algorithm>

#include "common/log.hh"

namespace mcsim {

namespace {

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

/** Hot, L2-resident working set. */
RegionSpec
hot(double share, std::uint64_t footprint, double theta = 0.85)
{
    RegionSpec r;
    r.share = share;
    r.footprintBytes = footprint;
    r.zipfTheta = theta;
    // Hot objects are scattered across the heap: stride them 64 block
    // slots apart so the cacheable footprint does not collapse onto a
    // handful of DRAM rows.
    r.spreadFactor = 64;
    return r;
}

/** Cold random heap, far larger than the LLC. */
RegionSpec
cold(double share, std::uint64_t footprint, double theta = 0.2)
{
    RegionSpec r;
    r.share = share;
    r.footprintBytes = footprint;
    r.zipfTheta = theta;
    return r;
}

/** Streaming buffers: sequential bursts, word-granular reuse. The
 *  whole burst is a sticky memcpy-like phase so its block misses land
 *  close together in time — the source of row-buffer hits. */
RegionSpec
stream(double share, std::uint64_t footprint, std::uint32_t burstBlocks,
       std::uint32_t repeats)
{
    RegionSpec r;
    r.share = share;
    r.footprintBytes = footprint;
    r.seqBurstBlocks = burstBlocks;
    r.repeatsPerBlock = repeats;
    r.scramble = false;
    r.stickyRefs = std::min<std::uint32_t>(burstBlocks * repeats, 768);
    r.sharedFrontier = true;
    return r;
}

} // namespace

WorkloadParams
workloadPreset(WorkloadId id)
{
    WorkloadParams p;
    p.memRefPerInstr = 0.30;
    p.storeFrac = 0.25;

    switch (id) {
      case WorkloadId::DS:
        // Data Serving (Cassandra): key-value lookups over a large
        // on-disk dataset with a memtable/cache layer; modest DMA from
        // the storage path.
        p.name = "Data Serving";
        p.acronym = "DS";
        p.category = WorkloadCategory::ScaleOut;
        p.regions = {hot(0.965, 640 * KiB, 0.92),
                     stream(0.025, 96 * MiB, 24, 4),
                     cold(0.013, 1 * GiB, 0.3)};
        p.codeFootprintBytes = 1 * MiB;
        p.codeZipfTheta = 0.85;
        p.intensitySpread = 0.30;
        p.ioWindow = 2;
        p.ioBurstBlocks = 48;
        p.ioThinkDramCycles = 60;
        p.phaseMeanInstrs = 60'000;
        p.phaseHigh = 2.2;
        p.phaseLow = 0.4;
        p.seed = 101;
        break;

      case WorkloadId::MR:
        // MapReduce (Hadoop text classification): scan-heavy map phase
        // with skewed per-core shard sizes (stragglers).
        p.name = "MapReduce";
        p.acronym = "MR";
        p.category = WorkloadCategory::ScaleOut;
        p.regions = {hot(0.975, 768 * KiB, 0.9),
                     stream(0.018, 192 * MiB, 32, 6),
                     cold(0.010, 768 * MiB, 0.25)};
        p.codeFootprintBytes = 768 * KiB;
        p.codeZipfTheta = 0.85;
        p.intensitySpread = 0.70;
        p.phaseMeanInstrs = 40'000;
        p.phaseHigh = 3.0;
        p.phaseLow = 0.25;
        p.seed = 102;
        break;

      case WorkloadId::SS:
        // SAT Solver (Klee): pointer chasing across clause databases;
        // almost no spatial locality, modest intensity.
        p.name = "SAT Solver";
        p.acronym = "SS";
        p.category = WorkloadCategory::ScaleOut;
        p.regions = {hot(0.970, 1 * MiB, 0.9),
                     stream(0.018, 32 * MiB, 16, 4),
                     cold(0.015, 1536 * MiB, 0.15)};
        p.codeFootprintBytes = 640 * KiB;
        p.codeZipfTheta = 0.85;
        p.intensitySpread = 0.25;
        p.phaseMeanInstrs = 60'000;
        p.phaseHigh = 1.8;
        p.phaseLow = 0.55;
        p.seed = 103;
        break;

      case WorkloadId::WF:
        // Web Frontend (PHP/web serving): 8-core configuration; high
        // row locality from request/response buffers and heavy DMA.
        p.name = "Web Frontend";
        p.acronym = "WF";
        p.category = WorkloadCategory::ScaleOut;
        p.cores = 8;
        p.regions = {hot(0.9700, 512 * KiB, 0.93),
                     stream(0.0235, 64 * MiB, 48, 8),
                     cold(0.0065, 512 * MiB, 0.3)};
        p.codeFootprintBytes = 1536 * KiB;
        p.codeZipfTheta = 0.88;
        p.codeJumpProb = 0.03;
        p.intensitySpread = 0.50;
        p.ioWindow = 2;
        p.ioBurstBlocks = 64;
        p.ioThinkDramCycles = 40;
        p.phaseMeanInstrs = 30'000;
        p.phaseHigh = 2.6;
        p.phaseLow = 0.3;
        p.seed = 104;
        break;

      case WorkloadId::WS:
        // Web Search (Nutch): index traversal dominated by a hot
        // posting-list cache; low off-chip intensity.
        p.name = "Web Search";
        p.acronym = "WS";
        p.category = WorkloadCategory::ScaleOut;
        p.regions = {hot(0.982, 640 * KiB, 0.93),
                     stream(0.010, 128 * MiB, 32, 6),
                     cold(0.008, 1 * GiB, 0.25)};
        p.codeFootprintBytes = 1 * MiB;
        p.codeZipfTheta = 0.88;
        p.intensitySpread = 0.30;
        p.phaseMeanInstrs = 60'000;
        p.phaseHigh = 1.8;
        p.phaseLow = 0.55;
        p.seed = 105;
        break;

      case WorkloadId::MS:
        // Media Streaming (Darwin): long sequential media buffers
        // pushed by DMA; bimodal row reuse (Fig. 8's 76% / 24% split).
        p.name = "Media Streaming";
        p.acronym = "MS";
        p.category = WorkloadCategory::ScaleOut;
        p.regions = {hot(0.947, 768 * KiB, 0.92),
                     stream(0.048, 256 * MiB, 128, 8),
                     cold(0.010, 768 * MiB, 0.3)};
        p.codeFootprintBytes = 640 * KiB;
        p.codeZipfTheta = 0.85;
        p.intensitySpread = 0.25;
        p.ioWindow = 3;
        p.ioBurstBlocks = 128;
        p.ioThinkDramCycles = 40;
        p.phaseMeanInstrs = 50'000;
        p.phaseHigh = 2.0;
        p.phaseLow = 0.5;
        p.seed = 106;
        break;

      case WorkloadId::WSPEC99:
        // SPECweb99: static/dynamic web serving; moderate locality,
        // noticeable per-core imbalance across connection handlers.
        p.name = "SPECweb99";
        p.acronym = "WSPEC99";
        p.category = WorkloadCategory::Transactional;
        p.regions = {hot(0.963, 768 * KiB, 0.92),
                     stream(0.028, 96 * MiB, 48, 5),
                     cold(0.013, 1 * GiB, 0.25)};
        p.codeFootprintBytes = 1 * MiB;
        p.codeZipfTheta = 0.85;
        p.intensitySpread = 0.60;
        p.phaseMeanInstrs = 40'000;
        p.phaseHigh = 2.5;
        p.phaseLow = 0.3;
        p.seed = 107;
        break;

      case WorkloadId::TPCC1:
        // TPC-C on DBMS vendor A: OLTP B-tree walks, random rows.
        p.name = "TPC-C1";
        p.acronym = "TPC-C1";
        p.category = WorkloadCategory::Transactional;
        p.regions = {hot(0.963, 1 * MiB, 0.92),
                     stream(0.024, 64 * MiB, 32, 4),
                     cold(0.023, 2 * GiB, 0.2)};
        p.codeFootprintBytes = 1536 * KiB;
        p.codeZipfTheta = 0.88;
        p.intensitySpread = 0.25;
        p.phaseMeanInstrs = 60'000;
        p.phaseHigh = 1.8;
        p.phaseLow = 0.55;
        p.seed = 108;
        break;

      case WorkloadId::TPCC2:
        // TPC-C on DBMS vendor B: similar mix, slightly more logging
        // (stream) traffic.
        p.name = "TPC-C2";
        p.acronym = "TPC-C2";
        p.category = WorkloadCategory::Transactional;
        p.regions = {hot(0.960, 1 * MiB, 0.92),
                     stream(0.028, 64 * MiB, 32, 4),
                     cold(0.022, 2 * GiB, 0.2)};
        p.codeFootprintBytes = 1536 * KiB;
        p.codeZipfTheta = 0.88;
        p.intensitySpread = 0.25;
        p.phaseMeanInstrs = 60'000;
        p.phaseHigh = 1.8;
        p.phaseLow = 0.55;
        p.seed = 109;
        break;

      case WorkloadId::TPCHQ2:
        // TPC-H Q2: join-intensive; index probes over large tables
        // with some scan traffic; MLP from independent probes.
        p.name = "TPC-H Q2";
        p.acronym = "TPCH-Q2";
        p.category = WorkloadCategory::DecisionSupport;
        p.regions = {hot(0.942, 1 * MiB, 0.92),
                     stream(0.034, 512 * MiB, 24, 2),
                     cold(0.036, 3 * GiB, 0.1)};
        p.codeFootprintBytes = 512 * KiB;
        p.codeZipfTheta = 0.85;
        p.mlpWindow = 4;
        p.intensitySpread = 0.15;
        p.phaseMeanInstrs = 80'000;
        p.phaseHigh = 1.5;
        p.phaseLow = 0.7;
        p.seed = 110;
        break;

      case WorkloadId::TPCHQ6:
        // TPC-H Q6: select-intensive scan; the most memory-hungry.
        p.name = "TPC-H Q6";
        p.acronym = "TPCH-Q6";
        p.category = WorkloadCategory::DecisionSupport;
        p.regions = {hot(0.924, 1 * MiB, 0.92),
                     stream(0.046, 1 * GiB, 24, 2),
                     cold(0.043, 3 * GiB, 0.1)};
        p.codeFootprintBytes = 384 * KiB;
        p.codeZipfTheta = 0.85;
        p.mlpWindow = 4;
        p.intensitySpread = 0.15;
        p.phaseMeanInstrs = 80'000;
        p.phaseHigh = 1.5;
        p.phaseLow = 0.7;
        p.seed = 111;
        break;

      case WorkloadId::TPCHQ17:
        // TPC-H Q17: select-join mix between Q2 and Q6.
        p.name = "TPC-H Q17";
        p.acronym = "TPCH-Q17";
        p.category = WorkloadCategory::DecisionSupport;
        p.regions = {hot(0.933, 1 * MiB, 0.92),
                     stream(0.040, 768 * MiB, 24, 2),
                     cold(0.039, 3 * GiB, 0.1)};
        p.codeFootprintBytes = 512 * KiB;
        p.codeZipfTheta = 0.85;
        p.mlpWindow = 4;
        p.intensitySpread = 0.15;
        p.phaseMeanInstrs = 80'000;
        p.phaseHigh = 1.5;
        p.phaseLow = 0.7;
        p.seed = 112;
        break;
    }
    // Shares are calibrated as relative weights; publish them
    // normalized so the preset reads as a probability split.
    double shareSum = 0.0;
    for (const auto &r : p.regions)
        shareSum += r.share;
    mc_assert(shareSum > 0.0, "preset has no region weight");
    for (auto &r : p.regions)
        r.share /= shareSum;
    return p;
}

const char *
workloadAcronym(WorkloadId id)
{
    switch (id) {
      case WorkloadId::DS: return "DS";
      case WorkloadId::MR: return "MR";
      case WorkloadId::SS: return "SS";
      case WorkloadId::WF: return "WF";
      case WorkloadId::WS: return "WS";
      case WorkloadId::MS: return "MS";
      case WorkloadId::WSPEC99: return "WSPEC99";
      case WorkloadId::TPCC1: return "TPC-C1";
      case WorkloadId::TPCC2: return "TPC-C2";
      case WorkloadId::TPCHQ2: return "TPCH-Q2";
      case WorkloadId::TPCHQ6: return "TPCH-Q6";
      case WorkloadId::TPCHQ17: return "TPCH-Q17";
    }
    return "???";
}

WorkloadCategory
workloadCategory(WorkloadId id)
{
    switch (id) {
      case WorkloadId::DS:
      case WorkloadId::MR:
      case WorkloadId::SS:
      case WorkloadId::WF:
      case WorkloadId::WS:
      case WorkloadId::MS:
        return WorkloadCategory::ScaleOut;
      case WorkloadId::WSPEC99:
      case WorkloadId::TPCC1:
      case WorkloadId::TPCC2:
        return WorkloadCategory::Transactional;
      case WorkloadId::TPCHQ2:
      case WorkloadId::TPCHQ6:
      case WorkloadId::TPCHQ17:
        return WorkloadCategory::DecisionSupport;
    }
    mc_panic("bad workload id");
}

std::vector<WorkloadId>
workloadsInCategory(WorkloadCategory cat)
{
    std::vector<WorkloadId> out;
    for (auto id : kAllWorkloads) {
        if (workloadCategory(id) == cat)
            out.push_back(id);
    }
    return out;
}

} // namespace mcsim
