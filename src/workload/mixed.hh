/**
 * @file
 * Heterogeneous multiprogrammed workload mixes.
 *
 * The paper observes (Sections 4.1.5 and 5) that PAR-BS, ATLAS and TCM
 * were designed for *multiprogrammed heterogeneous* memory-intensity
 * mixes, which homogeneous scale-out workloads are not. MixedWorkload
 * builds exactly that adversarial setting from the existing presets:
 * each mix part runs one preset on a subset of the cores inside its
 * own address-space partition (separate VMs / processes on one pod).
 * bench/ablation_mixed.cc uses it to show the fairness schedulers do
 * win on their home turf — evidence that the reproduction's ATLAS/TCM
 * are not strawmen when they lose on the paper's workloads.
 */

#ifndef CLOUDMC_WORKLOAD_MIXED_HH
#define CLOUDMC_WORKLOAD_MIXED_HH

#include <memory>
#include <string>
#include <vector>

#include "presets.hh"
#include "synthetic.hh"

namespace mcsim {

/** One part of a mix: a preset pinned to a number of cores. */
struct MixPart
{
    WorkloadId workload = WorkloadId::DS;
    std::uint32_t cores = 8;
};

/** Multiprogrammed mix of presets, partitioned in space and cores. */
class MixedWorkload : public WorkloadGenerator
{
  public:
    /**
     * @param parts        The mix composition; total cores is the sum.
     * @param addressSpace Physical bytes available; each part receives
     *                     an equal power-of-two slice.
     * @param seedSalt     Distinguishes repeated instances of the same
     *                     preset within one mix.
     */
    MixedWorkload(const std::vector<MixPart> &parts, Addr addressSpace,
                  std::uint64_t seedSalt = 0);

    const char *name() const override { return name_.c_str(); }
    Op nextOp(CoreId core) override;
    Addr nextFetchBlock(CoreId core) override;

    std::uint32_t totalCores() const { return totalCores_; }
    std::uint32_t numParts() const
    {
        return static_cast<std::uint32_t>(inner_.size());
    }

    /** Which mix part a core belongs to. */
    std::uint32_t partOf(CoreId core) const { return route_[core].part; }

    /** Base byte offset of a part's address-space slice. */
    Addr partBase(std::uint32_t part) const { return bases_[part]; }

  private:
    struct Route
    {
        std::uint32_t part = 0;
        CoreId localCore = 0;
    };

    std::string name_;
    std::uint32_t totalCores_ = 0;
    std::vector<std::unique_ptr<SyntheticWorkload>> inner_;
    std::vector<Addr> bases_;
    std::vector<Route> route_;
};

} // namespace mcsim

#endif // CLOUDMC_WORKLOAD_MIXED_HH
