/**
 * @file
 * Independent DRAM protocol checker.
 *
 * Validates a stream of (tick, command) pairs against the JEDEC-style
 * constraints, implemented separately from the Channel model so tests
 * can cross-check the two. Used by the integration tests and available
 * as an always-on tripwire in debug runs.
 */

#ifndef CLOUDMC_DRAM_TIMING_CHECKER_HH
#define CLOUDMC_DRAM_TIMING_CHECKER_HH

#include <deque>
#include <string>
#include <vector>

#include "commands.hh"
#include "dram_params.hh"

namespace mcsim {

/** Replay-style constraint checker for one channel's command stream. */
class TimingChecker
{
  public:
    TimingChecker(const DramGeometry &geom, const DramTimings &tm,
                  const ClockDomains &clk = kBaselineClocks);

    /**
     * Check and record a command.
     * @return empty string when legal; otherwise a human-readable
     *         description of the violated constraint.
     */
    std::string check(const DramCommand &cmd, Tick now);

    /** Total commands accepted. */
    std::uint64_t accepted() const { return accepted_; }

  private:
    struct CmdRecord
    {
        DramCommand cmd;
        Tick tick;
    };

    /** Most recent command of @p type to (rank, bank); null if none. */
    const CmdRecord *lastOf(DramCommandType type, std::uint32_t rank,
                            std::uint32_t bank, bool anyBank = false) const;

    DramGeometry geom_;
    DramTimings tm_;
    ClockDomains clk_;
    std::deque<CmdRecord> history_;
    std::vector<bool> bankOpen_;   ///< [rank*banks + bank]
    std::vector<Tick> lastCasEnd_; ///< data-bus end per channel (size 1)
    std::uint64_t accepted_ = 0;

    static constexpr std::size_t kHistoryDepth = 256;
};

} // namespace mcsim

#endif // CLOUDMC_DRAM_TIMING_CHECKER_HH
