/**
 * @file
 * Independent DRAM protocol checker.
 *
 * Validates a stream of (tick, command) pairs against the JEDEC-style
 * constraints, implemented separately from the Channel model so tests
 * can cross-check the two. Used by the integration tests and available
 * as an always-on tripwire in debug runs.
 */

#ifndef CLOUDMC_DRAM_TIMING_CHECKER_HH
#define CLOUDMC_DRAM_TIMING_CHECKER_HH

#include <deque>
#include <string>
#include <vector>

#include "commands.hh"
#include "dram_params.hh"

namespace mcsim {

/** Replay-style constraint checker for one channel's command stream. */
class TimingChecker
{
  public:
    TimingChecker(const DramGeometry &geom, const DramTimings &tm,
                  const ClockDomains &clk = kBaselineClocks);

    /**
     * Check and record a command.
     * @return empty string when legal; otherwise a human-readable
     *         description of the violated constraint.
     */
    std::string check(const DramCommand &cmd, Tick now);

    /** Total commands accepted. */
    std::uint64_t accepted() const { return accepted_; }

  private:
    struct CmdRecord
    {
        DramCommand cmd;
        Tick tick;
    };

    /**
     * Most recent command of @p type to (rank, bank), or null when
     * none exists within @p windowTicks of @p now — records older
     * than the caller's constraint window cannot violate it, so the
     * scan stops there instead of walking the whole (tRFC-deep)
     * history.
     */
    const CmdRecord *lastOf(DramCommandType type, std::uint32_t rank,
                            std::uint32_t bank, bool anyBank, Tick now,
                            TickSpan windowTicks) const;

    /**
     * Most recent command of @p type to any bank of (rank, group), or
     * null when none exists within @p windowTicks of @p now. Records
     * older than the caller's constraint window cannot violate it, so
     * the scan stops there instead of walking the whole history.
     */
    const CmdRecord *lastOfGroup(DramCommandType type, std::uint32_t rank,
                                 std::uint32_t group, Tick now,
                                 TickSpan windowTicks) const;

    DramGeometry geom_;
    DramTimings tm_;
    ClockDomains clk_;
    std::deque<CmdRecord> history_;
    std::vector<bool> bankOpen_;   ///< [rank*banks + bank]
    std::vector<Tick> lastCasEnd_; ///< data-bus end per channel (size 1)
    std::uint64_t accepted_ = 0;

    /**
     * Retained command records. Commands are spaced >= 1 tCK by the
     * command-bus rule, so covering the largest timing window in
     * cycles guarantees no constraint's witness is evicted early —
     * e.g. a rank's REF must stay visible while the other rank
     * legally issues one command per cycle for all of tRFC (708
     * cycles on DDR5-4800, past the old fixed 256-entry depth).
     * Derived in the constructor from the timing set.
     */
    std::size_t historyDepth_ = 256;
};

} // namespace mcsim

#endif // CLOUDMC_DRAM_TIMING_CHECKER_HH
