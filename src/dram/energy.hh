/**
 * @file
 * DRAM energy estimation from channel activity counters.
 *
 * The paper's Section 5 defers energy and power to future work while
 * arguing that the best-performing (simplest) policies would also be
 * the cheapest; this model lets the repo quantify the DRAM side of
 * that claim (see bench/ablation_energy.cc).
 *
 * The model follows the Micron system-power methodology (TN-41-01),
 * simplified to the counters the channel keeps:
 *
 *   activate/precharge : (IDD0*tRC - IDD3N*tRAS - IDD2N*(tRC-tRAS)) * VDD
 *   read  burst        : (IDD4R - IDD3N) * tBURST * VDD
 *   write burst        : (IDD4W - IDD3N) * tBURST * VDD
 *   refresh            : (IDD5B - IDD3N) * tRFC * VDD per all-bank REF;
 *                        a per-bank REFpb burst refreshes 1/banks of
 *                        the die, so its above-standby current scales
 *                        to (IDD5B - IDD3N)/banksPerRank over tRFCpb
 *                        (the IDD5PB approximation)
 *   background         : IDD3N while a rank has an open bank
 *                        (active standby), IDD2N otherwise
 *
 * Currents are per device; a rank multiplies them by devicesPerRank.
 * I/O and termination power are omitted (they depend on board-level
 * ODT settings the simulator does not model); treat results as DRAM
 * core energy, suitable for comparing policies, not for sizing PSUs.
 */

#ifndef CLOUDMC_DRAM_ENERGY_HH
#define CLOUDMC_DRAM_ENERGY_HH

#include <cstdint>

#include "channel.hh"
#include "dram_params.hh"

namespace mcsim {

/** Energy totals over a measurement window, in nanojoules. */
struct DramEnergyBreakdown
{
    double actPreNj = 0.0;
    double readNj = 0.0;
    double writeNj = 0.0;
    double refreshNj = 0.0;
    double backgroundNj = 0.0;

    double
    totalNj() const
    {
        return actPreNj + readNj + writeNj + refreshNj + backgroundNj;
    }

    /** Average power over @p elapsedNs, in milliwatts (nJ/ns = W). */
    double
    avgPowerMw(double elapsedNs) const
    {
        return elapsedNs > 0.0 ? totalNj() * 1e3 / elapsedNs : 0.0;
    }
};

/** Stateless estimator: counters in, energy out. */
class DramEnergyModel
{
  public:
    /**
     * @param banksPerRank Scales the per-REFpb refresh energy when
     *        @p tm uses per-bank refresh; unused otherwise.
     * @param clk Clock domains the counters were collected under; sets
     *        the wall-clock length of a tick and a DRAM cycle (the
     *        JEDEC timing fields are in DRAM cycles).
     */
    DramEnergyModel(const DramPowerParams &power, const DramTimings &tm,
                    std::uint32_t ranksPerChannel,
                    std::uint32_t banksPerRank,
                    const ClockDomains &clk = kBaselineClocks);

    /**
     * Estimate the energy behind @p stats, a window ending at @p now.
     * The window is [stats.statsStartTick, now].
     */
    DramEnergyBreakdown estimate(const ChannelStats &stats, Tick now) const;

    /** Per-event energies in nJ (exposed for tests and reports). */
    double actPreEnergyNj() const { return actPreNj_; }
    double readEnergyNj() const { return readNj_; }
    double writeEnergyNj() const { return writeNj_; }
    double refreshEnergyNj() const { return refreshNj_; }

  private:
    DramPowerParams p_;
    std::uint32_t ranksPerChannel_;
    double nsPerTick_; ///< From the clock domains at construction.
    double actPreNj_;
    double readNj_;
    double writeNj_;
    double refreshNj_;
    double activeStandbyMwPerRank_;    ///< IDD3N * VDD * devices.
    double prechargeStandbyMwPerRank_; ///< IDD2N * VDD * devices.
};

} // namespace mcsim

#endif // CLOUDMC_DRAM_ENERGY_HH
