/**
 * @file
 * A DRAM channel: ranks plus the shared command and data buses.
 *
 * The channel is the single authority on command legality. The memory
 * controller proposes a command at the current tick; canIssue() checks
 * every device- and bus-level constraint and issue() applies the state
 * transitions. Constraints modeled:
 *
 *  - bank: tRCD, tRAS, tRC, tRP, tRTP, write recovery (tCWL+tBURST+tWR)
 *  - bank group: tRRD_L ACT spacing, tCCD_L CAS spacing, tWTR_L
 *          write-to-read turnaround (all within one rank's group)
 *  - rank: tRRD_S, tFAW (counted across groups), write-to-read
 *          turnaround (tCWL+tBURST+tWTR_S), refresh (tREFI staggered
 *          per rank; all-bank tRFC, or round-robin per-bank tRFCpb
 *          blocking only the refreshed bank)
 *  - channel: one command per tCK, tCCD_S CAS spacing, read-to-write
 *          turnaround (tRTW), data-bus occupancy, rank-to-rank data
 *          switch penalty (tCS)
 *
 * Simplification vs. real devices: the write-to-read turnaround is
 * applied per rank (correct) while read-after-write to a *different*
 * rank is gated by the data bus, tCS, and a channel-wide tCCD_S floor
 * between any pair of column commands, which matches DDR3/DDR4
 * behavior closely enough for scheduling studies. A per-bank refresh
 * is not charged against tRRD/tFAW (JEDEC counts REFpb as an
 * activation; both the channel and the TimingChecker omit that).
 */

#ifndef CLOUDMC_DRAM_CHANNEL_HH
#define CLOUDMC_DRAM_CHANNEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "commands.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram_params.hh"
#include "rank.hh"

namespace mcsim {

/** Result of issuing a command. */
struct IssueResult
{
    /** For Read: tick at which the last data beat is on the bus (the
     *  request's data is complete). Zero for non-read commands. */
    Tick dataReadyAt;
};

/** Channel statistics (reset with resetStats()). */
struct ChannelStats
{
    std::uint64_t activates = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;
    /** CAS commands issued to the same (rank, bank group) as the
     *  immediately preceding CAS on this channel — the population the
     *  tCCD_L floor (rather than tCCD_S) spaces. On a single-group
     *  device this counts same-rank back-to-back CAS. */
    std::uint64_t casSameGroup = 0;
    TickSpan dataBusBusyTicks;
    /** Sum over ranks of time spent with at least one bank open
     *  (active-standby time, the energy model's background input). */
    TickSpan rankActiveTicks;
    Tick statsStartTick;

    void
    reset(Tick now)
    {
        activates = reads = writes = precharges = refreshes = 0;
        casSameGroup = 0;
        dataBusBusyTicks = TickSpan{0};
        rankActiveTicks = TickSpan{0};
        statsStartTick = now;
    }

    /** Data-bus utilization in [0,1] over the measurement window. */
    double
    busUtilization(Tick now) const
    {
        const TickSpan elapsed = now - statsStartTick;
        return elapsed.count()
                   ? static_cast<double>(dataBusBusyTicks.count()) /
                         static_cast<double>(elapsed.count())
                   : 0.0;
    }
};

/** One DRAM channel with its ranks and buses. */
class Channel
{
  public:
    /**
     * @param clk Clock domains; timing fields (in DRAM cycles) are
     *        converted to ticks on this grid.
     */
    Channel(const DramGeometry &geom, const DramTimings &timings,
            bool enableRefresh, const ClockDomains &clk = kBaselineClocks);

    /** True iff @p cmd satisfies every timing constraint at @p now. */
    bool canIssue(const DramCommand &cmd, Tick now) const;

    /**
     * Apply @p cmd at @p now. The caller must have checked canIssue();
     * violating constraints is a simulator bug and panics.
     */
    IssueResult issue(const DramCommand &cmd, Tick now);

    /** Bank accessor used by the controller for open-row queries. */
    const Bank &
    bank(std::uint32_t rank, std::uint32_t bankIdx) const
    {
        return ranks_[rank].bank(bankIdx);
    }

    Rank &rank(std::uint32_t r) { return ranks_[r]; }
    const Rank &rank(std::uint32_t r) const { return ranks_[r]; }
    std::uint32_t numRanks() const
    {
        return static_cast<std::uint32_t>(ranks_.size());
    }

    /** Rank index whose refresh deadline has passed, or -1. */
    int refreshDueRank(Tick now) const;

    /** True when this channel refreshes one bank at a time (REFpb). */
    bool perBankRefresh() const { return tm_.perBankRefresh; }

    /** Earliest refresh deadline over all ranks; kMaxTick when
     *  refresh is disabled. */
    Tick nextRefreshDueAt() const;

    /**
     * Event-kernel contract: the earliest tick >= now at which
     * canIssue(cmd, ·) would hold, assuming no further command issues
     * on this channel in between. Every constraint canIssue() checks
     * is a "now >= threshold" comparison against state that only
     * command issues move, so the result is exact under that
     * assumption. Returns kMaxTick when the command needs a bank state
     * change first (e.g. an activate to an open bank), which during an
     * idle-skip window cannot happen.
     */
    Tick nextLegalAt(const DramCommand &cmd, Tick now) const;

    ChannelStats &stats() { return stats_; }
    const ChannelStats &stats() const { return stats_; }
    void resetStats(Tick now);

    /**
     * Observe every command as it issues (after legality checks, before
     * state updates). For protocol validation tests and command-trace
     * debugging; unset in normal operation.
     */
    using CommandHook = std::function<void(const DramCommand &, Tick)>;
    void setCommandHook(CommandHook hook) { hook_ = std::move(hook); }

    const DramTimings &timings() const { return tm_; }
    const DramGeometry &geometry() const { return geom_; }
    const ClockDomains &clocks() const { return clk_; }

  private:
    /** DRAM cycles to ticks on this channel's clock grid. */
    TickSpan
    dct(std::uint64_t cycles) const
    {
        return clk_.dramToTicks(cycles);
    }
    TickSpan ticksRd() const { return dct(tm_.tCAS); }
    TickSpan ticksWr() const { return dct(tm_.tCWL); }
    TickSpan ticksBurst() const { return dct(tm_.tBURST); }

    bool canIssueCas(const DramCommand &cmd, Tick now, bool isRead) const;

    /** Bank group of a command's bank (geometry convention). */
    std::uint32_t groupOf(const DramCommand &cmd) const
    {
        return geom_.bankGroupOf(cmd.bank);
    }

    DramGeometry geom_;
    DramTimings tm_;
    ClockDomains clk_;
    std::vector<Rank> ranks_;

    Tick cmdBusFreeAt_;  ///< One command per tCK.
    Tick nextRdAt_;      ///< tCCD_S spacing between reads.
    Tick nextWrAt_;      ///< tCCD_S spacing + tRTW after reads.
    Tick dataBusFreeAt_; ///< End of the burst in flight.
    int lastDataRank_ = -1;  ///< For the tCS rank-switch penalty.
    int lastCasGroupKey_ = -1; ///< (rank, group) of the last CAS (stats).

    // Active-standby accounting for the energy model.
    std::vector<std::uint32_t> rankOpenBanks_;
    std::vector<Tick> rankActiveSince_;

    CommandHook hook_;

    ChannelStats stats_;
};

} // namespace mcsim

#endif // CLOUDMC_DRAM_CHANNEL_HH
