#include "devices.hh"

#include "common/log.hh"

namespace mcsim {

namespace {

/**
 * Build the registry once. Cycle counts follow datasheet practice:
 * ns-specified parameters are divided by the device tCK and rounded
 * up; nCK-specified minimums are applied afterwards. tRTW is the
 * derived bus-turnaround cycles the channel model charges between a
 * read and a write command: tCAS + tBURST - tCWL + 2.
 */
std::vector<DramDevice>
buildRegistry()
{
    std::vector<DramDevice> out;

    const DramGeometry ddr3Geom{}; // 2 ranks x 8 banks x 64 K x 8 KB.

    { // DDR3-1066E, CL7, tCK = 1.875 ns, 4 Gb x8.
        DramDevice d;
        d.name = "DDR3-1066";
        d.dataRateMtps = 1066;
        d.busMhz = 533;
        d.timings.tCAS = 7;
        d.timings.tRCD = 7;
        d.timings.tRP = 7;
        d.timings.tRAS = 20;   // 37.5 ns
        d.timings.tRC = 27;    // 50.6 ns
        d.timings.tWR = 8;     // 15 ns
        d.timings.tWTR = 4;    // max(4 nCK, 7.5 ns)
        d.timings.tWTRL = 4;   // No bank groups: _L == _S.
        d.timings.tRTP = 4;    // max(4 nCK, 7.5 ns)
        d.timings.tRRD = 4;    // 7.5 ns (1 KB page)
        d.timings.tRRDL = 4;
        d.timings.tFAW = 20;   // 37.5 ns (1 KB page)
        d.timings.tCWL = 6;
        d.timings.tRTW = 7;    // 7 + 4 - 6 + 2
        d.timings.tREFI = 4160; // 7.8 us
        d.timings.tRFC = 139;   // 260 ns (4 Gb)
        d.geometry = ddr3Geom;
        d.power.idd0 = 85.0;
        d.power.idd2n = 40.0;
        d.power.idd3n = 42.0;
        d.power.idd4r = 140.0;
        d.power.idd4w = 145.0;
        d.power.idd5b = 200.0;
        d.source = "JESD79-3F DDR3-1066E bin; Micron MT41J 4Gb IDD";
        out.push_back(std::move(d));
    }

    { // DDR3-1333H, CL9, tCK = 1.5 ns, 4 Gb x8.
        DramDevice d;
        d.name = "DDR3-1333";
        d.dataRateMtps = 1333;
        d.busMhz = 667;
        d.timings.tCAS = 9;
        d.timings.tRCD = 9;
        d.timings.tRP = 9;
        d.timings.tRAS = 24;   // 36 ns
        d.timings.tRC = 33;    // 49.5 ns
        d.timings.tWR = 10;    // 15 ns
        d.timings.tWTR = 5;    // 7.5 ns
        d.timings.tWTRL = 5;   // No bank groups: _L == _S.
        d.timings.tRTP = 5;    // 7.5 ns
        d.timings.tRRD = 4;    // 6 ns (1 KB page)
        d.timings.tRRDL = 4;
        d.timings.tFAW = 20;   // 30 ns (1 KB page)
        d.timings.tCWL = 7;
        d.timings.tRTW = 8;    // 9 + 4 - 7 + 2
        d.timings.tREFI = 5200;
        d.timings.tRFC = 174;  // 260 ns
        d.geometry = ddr3Geom;
        d.power.idd0 = 90.0;
        d.power.idd2n = 41.0;
        d.power.idd3n = 43.0;
        d.power.idd4r = 160.0;
        d.power.idd4w = 165.0;
        d.power.idd5b = 205.0;
        d.source = "JESD79-3F DDR3-1333H bin; Micron MT41J 4Gb IDD";
        out.push_back(std::move(d));
    }

    { // DDR3-1600K, CL11, tCK = 1.25 ns — the paper's Table 2 device.
        DramDevice d;
        d.name = "DDR3-1600";
        d.dataRateMtps = 1600;
        d.busMhz = 800;
        d.timings = DramTimings::ddr3_1600();
        d.geometry = ddr3Geom;
        d.power = DramPowerParams::ddr3_1600();
        d.source = "JESD79-3F DDR3-1600K bin (paper Table 2); "
                   "Micron MT41J 4Gb IDD";
        out.push_back(std::move(d));
    }

    { // DDR3-1866M, CL13, tCK = 1.0714 ns, 4 Gb x8.
        DramDevice d;
        d.name = "DDR3-1866";
        d.dataRateMtps = 1866;
        d.busMhz = 933;
        d.timings.tCAS = 13;
        d.timings.tRCD = 13;
        d.timings.tRP = 13;
        d.timings.tRAS = 32;   // 34 ns
        d.timings.tRC = 45;    // 47.9 ns
        d.timings.tWR = 14;    // 15 ns
        d.timings.tWTR = 7;    // 7.5 ns
        d.timings.tWTRL = 7;   // No bank groups: _L == _S.
        d.timings.tRTP = 7;    // 7.5 ns
        d.timings.tRRD = 5;    // 5 ns (1 KB page)
        d.timings.tRRDL = 5;
        d.timings.tFAW = 26;   // 27 ns (1 KB page)
        d.timings.tCWL = 9;
        d.timings.tRTW = 10;   // 13 + 4 - 9 + 2
        d.timings.tREFI = 7280;
        d.timings.tRFC = 243;  // 260 ns
        d.geometry = ddr3Geom;
        d.power.idd0 = 100.0;
        d.power.idd2n = 44.0;
        d.power.idd3n = 47.0;
        d.power.idd4r = 195.0;
        d.power.idd4w = 200.0;
        d.power.idd5b = 220.0;
        d.source = "JESD79-3F DDR3-1866M bin; Micron MT41J 4Gb IDD";
        out.push_back(std::move(d));
    }

    { // DDR4-2400T, CL17, tCK = 0.8333 ns, 4 Gb x8, 4 groups x 4 banks.
        DramDevice d;
        d.name = "DDR4-2400";
        d.dataRateMtps = 2400;
        d.busMhz = 1200;
        d.timings.tCAS = 17;
        d.timings.tRCD = 17;
        d.timings.tRP = 17;
        d.timings.tRAS = 39;   // 32 ns
        d.timings.tRC = 56;    // tRAS + tRP
        d.timings.tWR = 18;    // 15 ns
        d.timings.tWTR = 3;    // tWTR_S, 2.5 ns
        d.timings.tWTRL = 9;   // tWTR_L, 7.5 ns
        d.timings.tRTP = 9;    // 7.5 ns
        d.timings.tRRD = 4;    // tRRD_S, max(4 nCK, 3.3 ns), 1 KB page
        d.timings.tRRDL = 6;   // tRRD_L, 4.9 ns
        d.timings.tFAW = 26;   // 21 ns (1 KB page)
        d.timings.tCWL = 12;
        d.timings.tBURST = 4;
        d.timings.tCCD = 4;    // tCCD_S, 4 nCK
        d.timings.tCCDL = 6;   // tCCD_L, 5 ns
        d.timings.tRTW = 11;   // 17 + 4 - 12 + 2
        d.timings.tREFI = 9360;
        d.timings.tRFC = 312;  // tRFC1, 260 ns (4 Gb)
        d.geometry = ddr3Geom;
        d.geometry.banksPerRank = 16;       // 4 groups x 4 banks.
        d.geometry.bankGroupsPerRank = 4;
        d.geometry.rowsPerBank = 1u << 15;  // Same 8 GiB/channel capacity.
        d.power.vdd = 1.2;
        d.power.idd0 = 55.0;
        d.power.idd2n = 34.0;
        d.power.idd3n = 40.0;
        d.power.idd4r = 145.0;
        d.power.idd4w = 145.0;
        d.power.idd5b = 190.0;
        d.source = "JESD79-4B DDR4-2400T bin; Micron MT40A 4Gb IDD";
        out.push_back(std::move(d));
    }

    { // DDR5-4800B, CL40, tCK = 0.4167 ns, 16 Gb x8, 8 groups x 4 banks.
        DramDevice d;
        d.name = "DDR5-4800";
        d.dataRateMtps = 4800;
        d.busMhz = 2400;
        d.timings.tCAS = 40;
        d.timings.tRCD = 40;
        d.timings.tRP = 40;
        d.timings.tRAS = 77;   // 32 ns
        d.timings.tRC = 117;   // tRAS + tRP
        d.timings.tWR = 72;    // 30 ns
        d.timings.tWTR = 6;    // tWTR_S, 2.5 ns
        d.timings.tWTRL = 24;  // tWTR_L, 10 ns
        d.timings.tRTP = 18;   // 7.5 ns
        d.timings.tRRD = 8;    // tRRD_S, 8 nCK
        d.timings.tRRDL = 12;  // tRRD_L, 5 ns
        d.timings.tFAW = 32;   // 13.33 ns (x8)
        d.timings.tCWL = 38;   // CL - 2
        d.timings.tBURST = 8;  // BL16 on a DDR bus.
        d.timings.tCCD = 8;    // tCCD_S, 8 nCK
        d.timings.tCCDL = 12;  // tCCD_L, 5 ns
        d.timings.tRTW = 12;   // 40 + 8 - 38 + 2
        d.timings.tREFI = 9360; // tREFI1, 3.9 us
        d.timings.tRFC = 708;   // tRFC1, 295 ns (16 Gb)
        d.geometry = ddr3Geom;
        d.geometry.banksPerRank = 32;       // 8 groups x 4 banks.
        d.geometry.bankGroupsPerRank = 8;
        d.geometry.rowsPerBank = 1u << 14;  // Same 8 GiB/channel capacity.
        d.power.vdd = 1.1;
        d.power.idd0 = 65.0;
        d.power.idd2n = 45.0;
        d.power.idd3n = 55.0;
        d.power.idd4r = 250.0;
        d.power.idd4w = 240.0;
        d.power.idd5b = 295.0;
        d.source = "JESD79-5B DDR5-4800B bin; Micron 16Gb DDR5 IDD";
        out.push_back(std::move(d));
    }

    { // LPDDR3-1600, RL12/WL6 (set A), tCK = 1.25 ns, 4 Gb x32.
        DramDevice d;
        d.name = "LPDDR3-1600";
        d.dataRateMtps = 1600;
        d.busMhz = 800;
        d.timings.tCAS = 12;   // RL
        d.timings.tRCD = 15;   // 18 ns
        d.timings.tRP = 15;    // tRPpb, 18 ns
        d.timings.tRAS = 34;   // 42 ns
        d.timings.tRC = 49;    // tRAS + tRPpb
        d.timings.tWR = 12;    // 15 ns
        d.timings.tWTR = 6;    // 7.5 ns
        d.timings.tWTRL = 6;   // No bank groups: _L == _S.
        d.timings.tRTP = 6;    // 7.5 ns
        d.timings.tRRD = 8;    // 10 ns
        d.timings.tRRDL = 8;
        d.timings.tFAW = 40;   // 50 ns
        d.timings.tCWL = 6;    // WL set A
        d.timings.tRTW = 12;   // 12 + 4 - 6 + 2
        d.timings.tREFI = 3120; // tREFIab, 3.9 us (4 Gb)
        d.timings.tRFC = 104;   // tRFCab, 130 ns (4 Gb)
        d.timings.perBankRefresh = true; // REFpb, one bank at a time.
        d.timings.tRFCpb = 48;  // tRFCpb, 60 ns (4 Gb)
        d.geometry = ddr3Geom;  // 2 x32 devices give the same 8 KB row.
        d.power.vdd = 1.2;      // VDD2 rail.
        d.power.idd0 = 35.0;
        d.power.idd2n = 1.5;
        d.power.idd3n = 4.0;
        d.power.idd4r = 150.0;
        d.power.idd4w = 140.0;
        d.power.idd5b = 130.0;
        d.power.devicesPerRank = 2; // Two x32 devices per 64-bit rank.
        d.source = "JESD209-3C LPDDR3-1600 set A; Micron EDF8132A IDD";
        out.push_back(std::move(d));
    }

    { // HMC2-like stack: 16 vaults x 8 banks, 8 GiB, tCK = 0.8 ns.
        DramDevice d;
        d.name = "HMC2-8GB";
        d.dataRateMtps = 2500;
        d.busMhz = 1250;
        d.timings.tCAS = 14;   // 11.2 ns vault DRAM access.
        d.timings.tRCD = 14;   // 11.2 ns
        d.timings.tRP = 14;    // 11.2 ns
        d.timings.tRAS = 27;   // 21.6 ns
        d.timings.tRC = 42;    // 33.6 ns
        d.timings.tWR = 19;    // 15 ns
        d.timings.tWTR = 4;    // Short vault-local turnaround.
        d.timings.tWTRL = 4;   // No bank groups: _L == _S.
        d.timings.tRTP = 8;
        d.timings.tRRD = 4;
        d.timings.tRRDL = 4;
        d.timings.tFAW = 16;   // Small per-vault arrays relax tFAW.
        d.timings.tCWL = 10;
        d.timings.tBURST = 4;  // 32 B vault payload on a fast TSV bus.
        d.timings.tCCD = 4;
        d.timings.tCCDL = 4;
        d.timings.tRTW = 10;   // 14 + 4 - 10 + 2
        d.timings.tREFI = 9750; // 7.8 us
        d.timings.tRFC = 325;   // 260 ns
        d.timings.tTSV = 3;     // Vault-to-logic-layer data return.
        d.geometry = ddr3Geom;
        d.geometry.ranksPerChannel = 1;     // One rank of banks per vault.
        d.geometry.banksPerRank = 8;        // Banks per vault.
        d.geometry.vaultsPerStack = 16;
        d.geometry.rowsPerBank = 1u << 18;
        d.geometry.rowBufferBytes = 256;    // Small stacked-DRAM pages.
        d.power.vdd = 1.2;
        d.power.idd0 = 45.0;
        d.power.idd2n = 25.0;
        d.power.idd3n = 30.0;
        d.power.idd4r = 120.0;
        d.power.idd4w = 125.0;
        d.power.idd5b = 150.0;
        d.source = "representative HMC2-like stack (vault timings "
                   "modeled after HMC Gen2 literature, not a JEDEC bin)";
        out.push_back(std::move(d));
    }

    return out;
}

} // namespace

const std::vector<DramDevice> &
dramDeviceRegistry()
{
    static const std::vector<DramDevice> registry = buildRegistry();
    return registry;
}

const DramDevice *
findDramDevice(const std::string &name)
{
    for (const DramDevice &d : dramDeviceRegistry()) {
        if (d.name == name)
            return &d;
    }
    return nullptr;
}

const DramDevice &
dramDeviceOrDie(const std::string &name)
{
    const DramDevice *d = findDramDevice(name);
    if (!d)
        mc_fatal("unknown DRAM device '", name, "'");
    return *d;
}

} // namespace mcsim
