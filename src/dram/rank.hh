/**
 * @file
 * Per-rank DRAM constraints: tRRD_S/tRRD_L activate spacing, the tFAW
 * rolling four-activate window (counted across bank groups), the
 * tCCD_L same-group CAS floor, write-to-read turnaround (tWTR_S rank-
 * wide, tWTR_L per bank group), and refresh state (all-bank or
 * round-robin per-bank).
 */

#ifndef CLOUDMC_DRAM_RANK_HH
#define CLOUDMC_DRAM_RANK_HH

#include <array>
#include <cstdint>
#include <vector>

#include "bank.hh"
#include "common/types.hh"

namespace mcsim {

/** DRAM rank: a set of bank groups sharing activate-window constraints. */
class Rank
{
  public:
    Rank(std::uint32_t banks, std::uint32_t groups)
        : banks_(banks), groupRrdAllowedAt_(groups, Tick{}),
          groupRdAllowedAt_(groups, Tick{}), groupCasAllowedAt_(groups, Tick{})
    {
    }

    Bank &bank(std::uint32_t i) { return banks_[i]; }
    const Bank &bank(std::uint32_t i) const { return banks_[i]; }
    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }
    std::uint32_t numGroups() const
    {
        return static_cast<std::uint32_t>(groupRrdAllowedAt_.size());
    }

    /** Earliest tick an activate may issue to a bank of @p group. */
    Tick
    actAllowedAt(std::uint32_t group) const
    {
        // tFAW: the 4th-most-recent activate gates the next one;
        // tRRD_L adds the same-group floor on top of the rank-wide
        // tRRD_S one.
        return maxT(maxT(rrdAllowedAt_, fawWindow_[fawIdx_]),
                    groupRrdAllowedAt_[group]);
    }

    /** Record an activate at @p now into @p group. */
    void
    activated(Tick now, TickSpan rrdTicks, TickSpan rrdLTicks,
              TickSpan fawTicks, std::uint32_t group)
    {
        rrdAllowedAt_ = now + rrdTicks;
        groupRrdAllowedAt_[group] = now + rrdLTicks;
        fawWindow_[fawIdx_] = now + fawTicks;
        fawIdx_ = (fawIdx_ + 1) % fawWindow_.size();
    }

    /** Earliest tick a read may issue to @p group (tWTR gating). */
    Tick
    rdAllowedAt(std::uint32_t group) const
    {
        return maxT(rdAllowedAt_, groupRdAllowedAt_[group]);
    }

    /** Record a write burst into @p group; reads blocked until the
     *  write-to-read turnaround (short rank-wide, long same-group). */
    void
    wrote(Tick now, TickSpan wtrGapTicks, TickSpan wtrLGapTicks,
          std::uint32_t group)
    {
        rdAllowedAt_ = maxT(rdAllowedAt_, now + wtrGapTicks);
        groupRdAllowedAt_[group] =
            maxT(groupRdAllowedAt_[group], now + wtrLGapTicks);
    }

    /** Earliest tick any CAS may issue to @p group (tCCD_L floor; the
     *  channel applies the rank-agnostic tCCD_S floor itself). */
    Tick casAllowedAt(std::uint32_t group) const
    {
        return groupCasAllowedAt_[group];
    }

    /** Record a CAS into @p group at @p now. */
    void
    casIssued(Tick now, TickSpan ccdLTicks, std::uint32_t group)
    {
        groupCasAllowedAt_[group] = now + ccdLTicks;
    }

    /** True iff every bank in the rank is precharged. */
    bool
    allBanksClosed() const
    {
        for (const auto &b : banks_) {
            if (b.isOpen())
                return false;
        }
        return true;
    }

    /** Apply an all-bank refresh at @p now; banks blocked for tRFC. */
    void
    refresh(Tick now, TickSpan rfcTicks)
    {
        for (auto &b : banks_)
            b.blockUntil(now + rfcTicks);
        rrdAllowedAt_ = maxT(rrdAllowedAt_, now + rfcTicks);
        nextRefreshDue_ += refreshInterval_;
    }

    /** Apply a per-bank refresh (REFpb) to @p bank at @p now: only
     *  that bank is blocked, for tRFCpb, and the round-robin pointer
     *  advances to the next bank. */
    void
    refreshBank(std::uint32_t bank, Tick now, TickSpan rfcPbTicks)
    {
        banks_[bank].blockUntil(now + rfcPbTicks);
        refreshBankIdx_ = (refreshBankIdx_ + 1) % numBanks();
        nextRefreshDue_ += refreshInterval_;
    }

    /** The bank the next per-bank refresh targets (round-robin). */
    std::uint32_t refreshDueBank() const { return refreshBankIdx_; }

    /** Configure periodic refresh; @p firstDue staggers ranks. */
    void
    scheduleRefresh(Tick firstDue, TickSpan interval)
    {
        nextRefreshDue_ = firstDue;
        refreshInterval_ = interval;
    }

    Tick nextRefreshDue() const { return nextRefreshDue_; }
    bool refreshEnabled() const { return refreshInterval_ != TickSpan{0}; }

  private:
    static Tick maxT(Tick a, Tick b) { return a > b ? a : b; }

    std::vector<Bank> banks_;
    Tick rrdAllowedAt_;
    Tick rdAllowedAt_;
    std::vector<Tick> groupRrdAllowedAt_; ///< tRRD_L per bank group.
    std::vector<Tick> groupRdAllowedAt_;  ///< tWTR_L per bank group.
    std::vector<Tick> groupCasAllowedAt_; ///< tCCD_L per bank group.
    std::array<Tick, 4> fawWindow_{};
    std::size_t fawIdx_ = 0;
    std::uint32_t refreshBankIdx_ = 0;
    Tick nextRefreshDue_ = kMaxTick;
    TickSpan refreshInterval_;
};

} // namespace mcsim

#endif // CLOUDMC_DRAM_RANK_HH
