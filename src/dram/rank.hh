/**
 * @file
 * Per-rank DRAM constraints: tRRD activate spacing, the tFAW rolling
 * four-activate window, write-to-read turnaround, and refresh state.
 */

#ifndef CLOUDMC_DRAM_RANK_HH
#define CLOUDMC_DRAM_RANK_HH

#include <array>
#include <cstdint>
#include <vector>

#include "bank.hh"
#include "common/types.hh"

namespace mcsim {

/** DRAM rank: a set of banks sharing activate-window constraints. */
class Rank
{
  public:
    explicit Rank(std::uint32_t banks) : banks_(banks) {}

    Bank &bank(std::uint32_t i) { return banks_[i]; }
    const Bank &bank(std::uint32_t i) const { return banks_[i]; }
    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    /** Earliest tick an activate may issue to any bank of this rank. */
    Tick
    actAllowedAt() const
    {
        // tFAW: the 4th-most-recent activate gates the next one.
        return std::max(rrdAllowedAt_, fawWindow_[fawIdx_]);
    }

    /** Record an activate at @p now. */
    void
    activated(Tick now, Tick rrdTicks, Tick fawTicks)
    {
        rrdAllowedAt_ = now + rrdTicks;
        fawWindow_[fawIdx_] = now + fawTicks;
        fawIdx_ = (fawIdx_ + 1) % fawWindow_.size();
    }

    /** Earliest tick a read may issue to this rank (tWTR gating). */
    Tick rdAllowedAt() const { return rdAllowedAt_; }

    /** Record a write burst; reads blocked until write-to-read done. */
    void
    wrote(Tick now, Tick wtrGapTicks)
    {
        rdAllowedAt_ = std::max(rdAllowedAt_, now + wtrGapTicks);
    }

    /** True iff every bank in the rank is precharged. */
    bool
    allBanksClosed() const
    {
        for (const auto &b : banks_) {
            if (b.isOpen())
                return false;
        }
        return true;
    }

    /** Apply a refresh at @p now; banks blocked for tRFC. */
    void
    refresh(Tick now, Tick rfcTicks)
    {
        for (auto &b : banks_)
            b.blockUntil(now + rfcTicks);
        rrdAllowedAt_ = std::max(rrdAllowedAt_, now + rfcTicks);
        nextRefreshDue_ += refreshInterval_;
    }

    /** Configure periodic refresh; @p firstDue staggers ranks. */
    void
    scheduleRefresh(Tick firstDue, Tick interval)
    {
        nextRefreshDue_ = firstDue;
        refreshInterval_ = interval;
    }

    Tick nextRefreshDue() const { return nextRefreshDue_; }
    bool refreshEnabled() const { return refreshInterval_ != 0; }

  private:
    std::vector<Bank> banks_;
    Tick rrdAllowedAt_ = 0;
    Tick rdAllowedAt_ = 0;
    std::array<Tick, 4> fawWindow_{};
    std::size_t fawIdx_ = 0;
    Tick nextRefreshDue_ = kMaxTick;
    Tick refreshInterval_ = 0;
};

} // namespace mcsim

#endif // CLOUDMC_DRAM_RANK_HH
