/**
 * @file
 * DRAM geometry and timing parameters.
 *
 * Timing values are expressed in DRAM command-bus cycles (tCK); the
 * device model converts them to global ticks internally. The default
 * preset matches the paper's Table 2: DDR3-1600 (800 MHz), 2 ranks,
 * 8 banks per rank, 8 KB row buffer, 11-11-11-28 primary timings.
 */

#ifndef CLOUDMC_DRAM_DRAM_PARAMS_HH
#define CLOUDMC_DRAM_DRAM_PARAMS_HH

#include <cstdint>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace mcsim {

/**
 * DRAM device timing parameters in DRAM cycles.
 *
 * Bank-group devices (DDR4/DDR5) split the CAS-to-CAS, ACT-to-ACT and
 * write-to-read constraints into a short different-bank-group value
 * and a long same-bank-group value. The unsuffixed fields (tCCD,
 * tRRD, tWTR) are the *short* (_S) values and apply between any pair;
 * the `L`-suffixed fields apply on top when both commands target the
 * same bank group of the same rank. Devices without bank groups
 * (DramGeometry::bankGroupsPerRank == 1) set the pairs equal, which
 * reproduces the single-tCCD model exactly.
 */
struct DramTimings
{
    std::uint32_t tCAS = 11;  ///< CL: read command to first data.
    std::uint32_t tRCD = 11;  ///< ACT to internal read/write.
    std::uint32_t tRP = 11;   ///< PRE to ACT.
    std::uint32_t tRAS = 28;  ///< ACT to PRE (same bank).
    std::uint32_t tRC = 39;   ///< ACT to ACT (same bank).
    std::uint32_t tWR = 12;   ///< Write recovery (end of write data to PRE).
    std::uint32_t tWTR = 6;   ///< tWTR_S: write-to-read, same rank.
    std::uint32_t tWTRL = 6;  ///< tWTR_L: write-to-read, same bank group.
    std::uint32_t tRTP = 6;   ///< Read to PRE (same bank).
    std::uint32_t tRRD = 5;   ///< tRRD_S: ACT to ACT, same rank.
    std::uint32_t tRRDL = 5;  ///< tRRD_L: ACT to ACT, same bank group.
    std::uint32_t tFAW = 24;  ///< Four-activate window (per rank,
                              ///< counted across bank groups).
    std::uint32_t tCWL = 8;   ///< Write command to first data.
    std::uint32_t tBURST = 4; ///< Data burst length on the bus (BL8, DDR).
    std::uint32_t tCCD = 4;   ///< tCCD_S: CAS to CAS (same channel).
    std::uint32_t tCCDL = 4;  ///< tCCD_L: CAS to CAS, same bank group.
    std::uint32_t tRTW = 9;   ///< Read cmd to write cmd bus turnaround.
    std::uint32_t tCS = 2;    ///< Rank-to-rank data bus switch penalty.
    std::uint32_t tREFI = 6240; ///< Average refresh interval (7.8 us).
    std::uint32_t tRFC = 208;   ///< Refresh cycle time (260 ns, 4 Gb die).

    /** Per-bank refresh (LPDDR REFpb): refresh cycles one bank at a
     *  time every tREFI / banksPerRank, blocking only that bank for
     *  tRFCpb while the others stay schedulable. */
    bool perBankRefresh = false;
    std::uint32_t tRFCpb = 0; ///< Per-bank refresh cycle time.

    /** Stacked devices only: TSV/return-path crossing from the vault
     *  to the logic layer, charged on read data return. 0 (flat
     *  devices) reproduces the JEDEC model exactly. */
    std::uint32_t tTSV = 0;

    /** The paper's DDR3-1600 configuration (Table 2). */
    static DramTimings ddr3_1600() { return DramTimings{}; }
};

/** Per-device electrical parameters (defaults: DDR3-1600, 4 Gb x8). */
struct DramPowerParams
{
    double vdd = 1.5;       ///< Supply voltage (V).
    double idd0 = 95.0;     ///< ACT-PRE cycling current (mA).
    double idd2n = 42.0;    ///< Precharge standby current (mA).
    double idd3n = 45.0;    ///< Active standby current (mA).
    double idd4r = 180.0;   ///< Read burst current (mA).
    double idd4w = 185.0;   ///< Write burst current (mA).
    double idd5b = 215.0;   ///< Burst refresh current (mA).
    std::uint32_t devicesPerRank = 8; ///< x8 devices on a 64-bit rank.

    /** The defaults; spelled out for call-site readability. */
    static DramPowerParams ddr3_1600() { return DramPowerParams{}; }
};

/** DRAM organization parameters. All counts must be powers of two. */
struct DramGeometry
{
    std::uint32_t channels = 1;
    std::uint32_t ranksPerChannel = 2;
    std::uint32_t banksPerRank = 8;
    /** Bank groups per rank (DDR4: 4, DDR5: 8). 1 disables the
     *  same-group timing constraints (tCCD_L/tRRD_L/tWTR_L). The
     *  physical convention: bank index = group * banksPerGroup() +
     *  index-within-group, i.e. the high bank bits select the group. */
    std::uint32_t bankGroupsPerRank = 1;
    std::uint64_t rowsPerBank = 1u << 16; ///< 64 K rows => 16 GB @ 1ch.
    std::uint32_t rowBufferBytes = 8192;  ///< 8 KB row buffer.
    std::uint32_t blockBytes = 64;        ///< Cache block / burst payload.
    /**
     * Stacked (HMC-style) devices: vaults per stack, 0 for flat JEDEC
     * parts. When nonzero, `channels` counts stacks and the per-"rank"
     * bank/row fields describe ONE vault, so capacity scales by the
     * vault count and the stacked backend builds channels *
     * vaultsPerStack controller queues (one per vault).
     */
    std::uint32_t vaultsPerStack = 0;

    /** Cache blocks per row (columns at block granularity). */
    std::uint32_t
    blocksPerRow() const
    {
        return rowBufferBytes / blockBytes;
    }

    /** Banks in one bank group. */
    std::uint32_t
    banksPerGroup() const
    {
        return banksPerRank / bankGroupsPerRank;
    }

    /** Bank group of a bank index (high bank bits select the group). */
    std::uint32_t
    bankGroupOf(std::uint32_t bank) const
    {
        return bank / banksPerGroup();
    }

    /** Total addressable bytes across all channels (and vaults). */
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(channels) * ranksPerChannel *
               banksPerRank * rowsPerBank * rowBufferBytes *
               (vaultsPerStack ? vaultsPerStack : 1);
    }

    /** Validate power-of-two-ness; fatal on user error. */
    void
    validate() const
    {
        mc_assert(isPowerOf2(channels) && isPowerOf2(ranksPerChannel) &&
                      isPowerOf2(banksPerRank) && isPowerOf2(rowsPerBank) &&
                      isPowerOf2(rowBufferBytes) && isPowerOf2(blockBytes),
                  "DRAM geometry fields must be powers of two");
        mc_assert(isPowerOf2(bankGroupsPerRank) &&
                      bankGroupsPerRank <= banksPerRank,
                  "bank groups must be a power of two dividing the banks");
        mc_assert(rowBufferBytes >= blockBytes,
                  "row buffer smaller than a block");
        mc_assert(vaultsPerStack == 0 || isPowerOf2(vaultsPerStack),
                  "vault count must be zero (flat) or a power of two");
    }
};

/** Coordinates of a block within the DRAM system. */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint32_t column = 0; ///< Block-granularity column index.

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank &&
               row == o.row && column == o.column;
    }

    /** Flat bank index within the channel. */
    std::uint32_t
    flatBank(const DramGeometry &g) const
    {
        return rank * g.banksPerRank + bank;
    }

    /** Geometry-independent (rank, bank) key for maps and sets. */
    std::uint32_t
    flatBankKey() const
    {
        return (rank << 8) | bank;
    }
};

} // namespace mcsim

#endif // CLOUDMC_DRAM_DRAM_PARAMS_HH
