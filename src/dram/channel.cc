#include "channel.hh"

#include "common/log.hh"

namespace mcsim {

const char *
dramCommandName(DramCommandType t)
{
    switch (t) {
      case DramCommandType::Activate: return "ACT";
      case DramCommandType::Read: return "RD";
      case DramCommandType::Write: return "WR";
      case DramCommandType::Precharge: return "PRE";
      case DramCommandType::Refresh: return "REF";
    }
    return "???";
}

Channel::Channel(const DramGeometry &geom, const DramTimings &timings,
                 bool enableRefresh, const ClockDomains &clk)
    : geom_(geom), tm_(timings), clk_(clk)
{
    geom_.validate();
    mc_assert(!tm_.perBankRefresh || tm_.tRFCpb > 0,
              "per-bank refresh needs a nonzero tRFCpb");
    ranks_.reserve(geom_.ranksPerChannel);
    for (std::uint32_t r = 0; r < geom_.ranksPerChannel; ++r)
        ranks_.emplace_back(geom_.banksPerRank, geom_.bankGroupsPerRank);
    rankOpenBanks_.assign(geom_.ranksPerChannel, 0);
    rankActiveSince_.assign(geom_.ranksPerChannel, Tick{});
    if (enableRefresh) {
        // Per-bank refresh spreads the rank's tREFI budget round-robin
        // over its banks (tREFIpb = tREFI / banks).
        const TickSpan interval = tm_.perBankRefresh
                                      ? dct(tm_.tREFI) / geom_.banksPerRank
                                      : dct(tm_.tREFI);
        for (std::uint32_t r = 0; r < geom_.ranksPerChannel; ++r) {
            // Stagger ranks so refreshes do not pile up on one tick.
            const Tick firstDue =
                Tick{} + interval + r * (interval / geom_.ranksPerChannel);
            ranks_[r].scheduleRefresh(firstDue, interval);
        }
    }
}

bool
Channel::canIssueCas(const DramCommand &cmd, Tick now, bool isRead) const
{
    const Rank &rk = ranks_[cmd.rank];
    const Bank &bk = rk.bank(cmd.bank);
    if (!bk.isOpen() || bk.openRow() != cmd.row)
        return false;
    const std::uint32_t group = groupOf(cmd);
    if (now < rk.casAllowedAt(group)) // tCCD_L same-group floor.
        return false;
    if (isRead) {
        if (now < bk.rdAllowedAt() || now < rk.rdAllowedAt(group) ||
            now < nextRdAt_) {
            return false;
        }
    } else {
        if (now < bk.wrAllowedAt() || now < nextWrAt_)
            return false;
    }
    // Data-bus availability, including the rank-switch gap.
    Tick dataStart = now + (isRead ? ticksRd() : ticksWr());
    Tick busFree = dataBusFreeAt_;
    if (lastDataRank_ >= 0 &&
        lastDataRank_ != static_cast<int>(cmd.rank)) {
        busFree += dct(tm_.tCS);
    }
    return dataStart >= busFree;
}

bool
Channel::canIssue(const DramCommand &cmd, Tick now) const
{
    if (now < cmdBusFreeAt_)
        return false;
    mc_assert(cmd.rank < ranks_.size(), "rank out of range");
    const Rank &rk = ranks_[cmd.rank];

    switch (cmd.type) {
      case DramCommandType::Activate: {
        const Bank &bk = rk.bank(cmd.bank);
        return !bk.isOpen() && now >= bk.actAllowedAt() &&
               now >= rk.actAllowedAt(groupOf(cmd));
      }
      case DramCommandType::Read:
        return canIssueCas(cmd, now, true);
      case DramCommandType::Write:
        return canIssueCas(cmd, now, false);
      case DramCommandType::Precharge: {
        const Bank &bk = rk.bank(cmd.bank);
        return bk.isOpen() && now >= bk.preAllowedAt();
      }
      case DramCommandType::Refresh: {
        if (tm_.perBankRefresh) {
            const Bank &bk = rk.bank(cmd.bank);
            return !bk.isOpen() && now >= bk.actAllowedAt();
        }
        if (!rk.allBanksClosed())
            return false;
        for (std::uint32_t b = 0; b < rk.numBanks(); ++b) {
            if (now < rk.bank(b).actAllowedAt())
                return false;
        }
        return true;
      }
    }
    return false;
}

IssueResult
Channel::issue(const DramCommand &cmd, Tick now)
{
    mc_assert(canIssue(cmd, now), "illegal ", dramCommandName(cmd.type),
              " to rank ", cmd.rank, " bank ", cmd.bank, " at tick ", now);

    if (hook_)
        hook_(cmd, now);

    Rank &rk = ranks_[cmd.rank];
    IssueResult res;
    cmdBusFreeAt_ = now + dct(1);

    const auto onCas = [this, &cmd, &rk](Tick at) {
        const std::uint32_t group = groupOf(cmd);
        rk.casIssued(at, dct(tm_.tCCDL), group);
        const int key =
            static_cast<int>(cmd.rank * geom_.bankGroupsPerRank + group);
        if (key == lastCasGroupKey_)
            ++stats_.casSameGroup;
        lastCasGroupKey_ = key;
    };

    switch (cmd.type) {
      case DramCommandType::Activate:
        rk.bank(cmd.bank).activate(cmd.row, now,
                                   dct(tm_.tRCD),
                                   dct(tm_.tRAS),
                                   dct(tm_.tRC));
        rk.activated(now, dct(tm_.tRRD), dct(tm_.tRRDL),
                     dct(tm_.tFAW), groupOf(cmd));
        if (rankOpenBanks_[cmd.rank]++ == 0)
            rankActiveSince_[cmd.rank] = now;
        ++stats_.activates;
        break;

      case DramCommandType::Read: {
        rk.bank(cmd.bank).read(now, dct(tm_.tRTP));
        const Tick dataStart = now + ticksRd();
        dataBusFreeAt_ = dataStart + ticksBurst();
        lastDataRank_ = static_cast<int>(cmd.rank);
        nextRdAt_ = now + dct(tm_.tCCD);
        // tCCD_S spaces any pair of column commands on the channel
        // (the same-group tCCD_L floor lives in the rank); tRTW covers
        // the read-to-write bus turnaround on top of it.
        nextWrAt_ = std::max(nextWrAt_,
                             now + dct(
                                       std::max(tm_.tRTW, tm_.tCCD)));
        onCas(now);
        stats_.dataBusBusyTicks += ticksBurst();
        ++stats_.reads;
        // Stacked parts add the vault-to-logic-layer TSV crossing on
        // the data return; tTSV = 0 (flat JEDEC parts) is a no-op. The
        // vault-local data bus frees at the burst end regardless.
        res.dataReadyAt = dataStart + ticksBurst() + dct(tm_.tTSV);
        break;
      }

      case DramCommandType::Write: {
        rk.bank(cmd.bank).write(
            now, ticksWr() + ticksBurst() + dct(tm_.tWR));
        const Tick dataStart = now + ticksWr();
        dataBusFreeAt_ = dataStart + ticksBurst();
        lastDataRank_ = static_cast<int>(cmd.rank);
        nextWrAt_ = now + dct(tm_.tCCD);
        // Same-rank write-to-read is gated by tWTR inside the rank; the
        // channel-level tCCD_S floor covers cross-rank read-after-write.
        nextRdAt_ = std::max(nextRdAt_, now + dct(tm_.tCCD));
        rk.wrote(now, ticksWr() + ticksBurst() + dct(tm_.tWTR),
                 ticksWr() + ticksBurst() + dct(tm_.tWTRL),
                 groupOf(cmd));
        onCas(now);
        stats_.dataBusBusyTicks += ticksBurst();
        ++stats_.writes;
        break;
      }

      case DramCommandType::Precharge:
        rk.bank(cmd.bank).precharge(now, dct(tm_.tRP));
        mc_assert(rankOpenBanks_[cmd.rank] > 0, "PRE with no open bank");
        if (--rankOpenBanks_[cmd.rank] == 0) {
            stats_.rankActiveTicks +=
                now - std::max(rankActiveSince_[cmd.rank],
                               stats_.statsStartTick);
        }
        ++stats_.precharges;
        break;

      case DramCommandType::Refresh:
        if (tm_.perBankRefresh)
            rk.refreshBank(cmd.bank, now, dct(tm_.tRFCpb));
        else
            rk.refresh(now, dct(tm_.tRFC));
        ++stats_.refreshes;
        break;
    }
    return res;
}

void
Channel::resetStats(Tick now)
{
    stats_.reset(now);
    // In-flight active periods restart at the window boundary so the
    // new window's active-standby time never reaches back before it.
    for (std::uint32_t r = 0; r < rankOpenBanks_.size(); ++r) {
        if (rankOpenBanks_[r] > 0)
            rankActiveSince_[r] = now;
    }
}

Tick
Channel::nextRefreshDueAt() const
{
    Tick due = kMaxTick;
    for (const Rank &rk : ranks_) {
        if (rk.refreshEnabled() && rk.nextRefreshDue() < due)
            due = rk.nextRefreshDue();
    }
    return due;
}

Tick
Channel::nextLegalAt(const DramCommand &cmd, Tick now) const
{
    // Mirrors canIssue() constraint for constraint; keep the two in
    // sync (test_event_kernel cross-checks them).
    const auto maxT = [](Tick a, Tick b) { return a > b ? a : b; };
    Tick t = cmdBusFreeAt_;
    const Rank &rk = ranks_[cmd.rank];

    switch (cmd.type) {
      case DramCommandType::Activate: {
        const Bank &bk = rk.bank(cmd.bank);
        if (bk.isOpen())
            return kMaxTick;
        t = maxT(t, maxT(bk.actAllowedAt(),
                         rk.actAllowedAt(groupOf(cmd))));
        break;
      }
      case DramCommandType::Read:
      case DramCommandType::Write: {
        const bool isRead = cmd.type == DramCommandType::Read;
        const Bank &bk = rk.bank(cmd.bank);
        if (!bk.isOpen() || bk.openRow() != cmd.row)
            return kMaxTick;
        const std::uint32_t group = groupOf(cmd);
        t = maxT(t, rk.casAllowedAt(group)); // tCCD_L floor.
        if (isRead) {
            t = maxT(t, maxT(bk.rdAllowedAt(), rk.rdAllowedAt(group)));
            t = maxT(t, nextRdAt_);
        } else {
            t = maxT(t, maxT(bk.wrAllowedAt(), nextWrAt_));
        }
        // Data-bus availability: dataStart(t) = t + CAS lead must be
        // at or past the (rank-switch adjusted) bus-free tick.
        Tick busFree = dataBusFreeAt_;
        if (lastDataRank_ >= 0 &&
            lastDataRank_ != static_cast<int>(cmd.rank)) {
            busFree += dct(tm_.tCS);
        }
        const TickSpan lead = isRead ? ticksRd() : ticksWr();
        if (busFree - Tick{} > lead)
            t = maxT(t, busFree - lead);
        break;
      }
      case DramCommandType::Precharge: {
        const Bank &bk = rk.bank(cmd.bank);
        if (!bk.isOpen())
            return kMaxTick;
        t = maxT(t, bk.preAllowedAt());
        break;
      }
      case DramCommandType::Refresh: {
        if (tm_.perBankRefresh) {
            const Bank &bk = rk.bank(cmd.bank);
            if (bk.isOpen())
                return kMaxTick;
            t = maxT(t, bk.actAllowedAt());
            break;
        }
        if (!rk.allBanksClosed())
            return kMaxTick;
        for (std::uint32_t b = 0; b < rk.numBanks(); ++b)
            t = maxT(t, rk.bank(b).actAllowedAt());
        break;
      }
    }
    return maxT(t, now);
}

int
Channel::refreshDueRank(Tick now) const
{
    for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
        if (ranks_[r].refreshEnabled() && now >= ranks_[r].nextRefreshDue())
            return static_cast<int>(r);
    }
    return -1;
}

} // namespace mcsim
