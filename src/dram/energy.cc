#include "energy.hh"

namespace mcsim {

DramEnergyModel::DramEnergyModel(const DramPowerParams &power,
                                 const DramTimings &tm,
                                 std::uint32_t ranksPerChannel,
                                 std::uint32_t banksPerRank,
                                 const ClockDomains &clk)
    : p_(power), ranksPerChannel_(ranksPerChannel),
      nsPerTick_(clk.nsPerTick())
{
    const double nsPerDramCycle = clk.nsPerDramCycle();
    const double devices = static_cast<double>(p_.devicesPerRank);
    // mA * V = mW; mW * ns = pJ; /1000 = nJ.
    const auto nj = [&](double ma, double cycles) {
        return ma * p_.vdd * cycles * nsPerDramCycle * devices * 1e-3;
    };
    actPreNj_ = nj(p_.idd0, tm.tRC) - nj(p_.idd3n, tm.tRAS) -
                nj(p_.idd2n, tm.tRC - tm.tRAS);
    readNj_ = nj(p_.idd4r - p_.idd3n, tm.tBURST);
    writeNj_ = nj(p_.idd4w - p_.idd3n, tm.tBURST);
    // Per-bank refresh issues banksPerRank short REFpb bursts per
    // tREFI instead of one rank-wide burst; each refreshes 1/banks of
    // the die, so its above-standby current scales down accordingly
    // (the IDD5PB approximation) over its own cycle time tRFCpb.
    refreshNj_ =
        tm.perBankRefresh
            ? nj((p_.idd5b - p_.idd3n) /
                     static_cast<double>(banksPerRank),
                 tm.tRFCpb)
            : nj(p_.idd5b - p_.idd3n, tm.tRFC);
    activeStandbyMwPerRank_ = p_.idd3n * p_.vdd * devices;
    prechargeStandbyMwPerRank_ = p_.idd2n * p_.vdd * devices;
}

DramEnergyBreakdown
DramEnergyModel::estimate(const ChannelStats &stats, Tick now) const
{
    DramEnergyBreakdown e;
    e.actPreNj = actPreNj_ * static_cast<double>(stats.activates);
    e.readNj = readNj_ * static_cast<double>(stats.reads);
    e.writeNj = writeNj_ * static_cast<double>(stats.writes);
    e.refreshNj = refreshNj_ * static_cast<double>(stats.refreshes);

    const double elapsedNs =
        static_cast<double>((now - stats.statsStartTick).count()) *
        nsPerTick_;
    const double activeNs =
        static_cast<double>(stats.rankActiveTicks.count()) * nsPerTick_;
    const double totalRankNs =
        elapsedNs * static_cast<double>(ranksPerChannel_);
    // rankActiveTicks only accumulates at the closing precharge, so a
    // window that ends with banks still open can see active < total by
    // construction; clamp for safety against ever exceeding it.
    const double clampedActiveNs =
        activeNs > totalRankNs ? totalRankNs : activeNs;
    e.backgroundNj =
        (activeStandbyMwPerRank_ * clampedActiveNs +
         prechargeStandbyMwPerRank_ * (totalRankNs - clampedActiveNs)) *
        1e-3;
    return e;
}

} // namespace mcsim
